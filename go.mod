module r3dla

go 1.24
