package exp

import (
	"fmt"

	"r3dla/internal/core"
	"r3dla/internal/energy"
	"r3dla/internal/rival"
	"r3dla/internal/stats"
)

// suiteOrder is the presentation order of Fig. 9/10/12/13.
var suiteOrder = []string{"spec", "crono", "star", "npb", "all"}

// perSuite runs f over every workload (concurrently, on the worker pool)
// and aggregates per suite (geomean + range). Aggregation happens in
// workload order after all runs finish, so the rows are deterministic
// regardless of scheduling.
func perSuite(c *Context, f func(p *Prepared) float64) map[string][]float64 {
	names := SuiteNames("all")
	res := make([]float64, len(names))
	preps := make([]*Prepared, len(names))
	c.ParallelEach(len(names), func(i int) {
		p := c.Prep(names[i])
		preps[i] = p
		res[i] = f(p)
	})
	vals := make(map[string][]float64)
	for i, name := range names {
		v := res[i]
		vals[preps[i].W.Suite] = append(vals[preps[i].W.Suite], v)
		vals["all"] = append(vals["all"], v)
		c.Logf("  %-9s %-6s %.3f\n", name, preps[i].W.Suite, v)
	}
	return vals
}

// eachWorkload maps f over every workload concurrently, returning results
// in workload order.
func eachWorkload(c *Context, f func(p *Prepared) float64) []float64 {
	names := SuiteNames("all")
	res := make([]float64, len(names))
	c.ParallelEach(len(names), func(i int) {
		res[i] = f(c.Prep(names[i]))
	})
	return res
}

// baselineIPC computes the normalization baseline (BL+BOP IPC) for every
// workload, keyed by name.
func baselineIPC(c *Context) map[string]float64 {
	names := SuiteNames("all")
	ipcs := eachWorkload(c, func(p *Prepared) float64 {
		return c.RunCached("BL", p, core.Options{Disable: true, WithBOP: true}).IPC()
	})
	base := make(map[string]float64, len(names))
	for i, name := range names {
		base[name] = ipcs[i]
	}
	return base
}

func summarizeSuites(t *stats.Table, label string, vals map[string][]float64) {
	cells := []string{label}
	for _, s := range suiteOrder {
		lo, hi := stats.MinMax(vals[s])
		cells = append(cells, fmt.Sprintf("%.2f [%.2f-%.2f]", stats.Geomean(vals[s]), lo, hi))
	}
	t.AddRow(cells...)
}

// Fig9a regenerates Fig. 9-a: speedups of BL / DLA / R3-DLA with and
// without the BOP prefetcher, normalized to BL+BOP, per suite.
func Fig9a(c *Context) *Report {
	type cfg struct {
		name string
		opt  core.Options
	}
	cfgs := []cfg{
		{"BL (noPF)", core.Options{Disable: true}},
		{"BL", core.Options{Disable: true, WithBOP: true}},
		{"DLA (noPF)", core.Options{}},
		{"DLA", core.DLAOptions()},
		{"R3-DLA (noPF)", func() core.Options { o := core.R3Options(); o.WithBOP = false; return o }()},
		{"R3-DLA", core.R3Options()},
	}

	base := baselineIPC(c)

	t := &stats.Table{
		Title:  "Fig. 9-a: speedup over BL+BOP (geomean [min-max])",
		Header: append([]string{"config"}, suiteOrder...),
	}
	for _, cf := range cfgs {
		vals := perSuite(c, func(p *Prepared) float64 {
			return c.RunCached(cf.name, p, cf.opt).IPC() / base[p.W.Name]
		})
		summarizeSuites(t, cf.name, vals)
	}
	return NewReport(t)
}

// Fig9b regenerates Fig. 9-b: the all-suite comparison against B-Fetch,
// SlipStream, CRE, DLA and R3-DLA.
func Fig9b(c *Context) *Report {
	base := baselineIPC(c)
	runners := []struct {
		name string
		f    func(p *Prepared) float64
	}{
		{"B-Fetch", func(p *Prepared) float64 {
			var ipc float64
			c.Do(func() { ipc = rival.RunBFetch(p.Prog, p.Setup, c.Budget).IPC() })
			return ipc
		}},
		{"S-Stream", func(p *Prepared) float64 {
			var ipc float64
			c.Do(func() { ipc = rival.RunSlipStream(p.Prog, p.Setup, p.Prof, c.Budget).IPC() })
			return ipc
		}},
		{"CRE", func(p *Prepared) float64 {
			var ipc float64
			c.Do(func() { ipc = rival.RunCRE(p.Prog, p.Setup, p.Prof, c.Budget).IPC() })
			return ipc
		}},
		{"DLA", func(p *Prepared) float64 { return c.RunCached("DLA", p, core.DLAOptions()).IPC() }},
		{"R3-DLA", func(p *Prepared) float64 { return c.RunCached("R3-DLA", p, core.R3Options()).IPC() }},
	}
	t := &stats.Table{
		Title:  "Fig. 9-b: all-suite speedup over BL+BOP",
		Header: []string{"design", "speedup (geomean)", "range"},
	}
	names := SuiteNames("all")
	for _, r := range runners {
		ipcs := eachWorkload(c, r.f)
		var vals []float64
		for i, name := range names {
			vals = append(vals, ipcs[i]/base[name])
		}
		lo, hi := stats.MinMax(vals)
		t.AddRow(r.name, fmt.Sprintf("%.2f", stats.Geomean(vals)), fmt.Sprintf("[%.2f-%.2f]", lo, hi))
	}
	return NewReport(t)
}

// Table2 regenerates Table II: D/X/C activity, dynamic energy/power and
// static power of LT and MT under DLA and R3-DLA, normalized to baseline.
func Table2(c *Context) *Report {
	p := energy.DefaultParams()

	// One workload contributes 7 normalized metrics to each of the four
	// (config, thread) rows; compute all contributions concurrently, then
	// aggregate in workload order.
	type contrib struct {
		d, x, cc, de, dp, sp, pw float64
	}
	keys := []string{"DLA LT", "DLA MT", "R3 LT", "R3 MT"}
	names := SuiteNames("all")
	per := make([]map[string]contrib, len(names))

	c.ParallelEach(len(names), func(wi int) {
		pr := c.Prep(names[wi])
		bl := c.RunCached("BL", pr, core.Options{Disable: true, WithBOP: true})
		bAct := energy.ActivityOf(bl.MT)
		bEn := energy.Core(energy.CoreActivity{
			Metrics: bl.MT, L1I: &bl.MTMem.L1I.Stats, L1D: &bl.MTMem.L1D.Stats,
			L2: &bl.MTMem.L2.Stats, WallCycles: bl.MT.Cycles,
		}, p)
		out := make(map[string]contrib, 4)
		mk := func(act energy.Activity, e energy.Breakdown) contrib {
			ar := act.Ratio(bAct)
			return contrib{
				d: ar.D, x: ar.X, cc: ar.C,
				de: e.DynamicJ / bEn.DynamicJ,
				dp: e.DynPowerW() / bEn.DynPowerW(),
				sp: e.StatPowerW() / bEn.StatPowerW(),
				pw: e.PowerW() / bEn.PowerW(),
			}
		}
		for _, cfgName := range []string{"DLA", "R3"} {
			opt := core.DLAOptions()
			if cfgName == "R3" {
				opt = core.R3Options()
			}
			r := c.RunCached(cfgName+"dla-r3", pr, opt)
			wall := r.MT.Cycles
			mtEn := energy.Core(energy.CoreActivity{
				Metrics: r.MT, L1I: &r.MTMem.L1I.Stats, L1D: &r.MTMem.L1D.Stats,
				L2: &r.MTMem.L2.Stats, WallCycles: wall,
			}, p)
			ltEn := energy.Core(energy.CoreActivity{
				Metrics: r.LT, L1I: &r.LTMem.L1I.Stats, L1D: &r.LTMem.L1D.Stats,
				L2: &r.LTMem.L2.Stats, WallCycles: wall,
			}, p)
			out[cfgName+" MT"] = mk(energy.ActivityOf(r.MT), mtEn)
			out[cfgName+" LT"] = mk(energy.ActivityOf(r.LT), ltEn)
		}
		per[wi] = out
	})

	agg := make(map[string]*[7][]float64, len(keys))
	for _, k := range keys {
		agg[k] = &[7][]float64{}
	}
	for _, out := range per {
		for _, k := range keys {
			cb := out[k]
			a := agg[k]
			for j, v := range []float64{cb.d, cb.x, cb.cc, cb.de, cb.dp, cb.sp, cb.pw} {
				a[j] = append(a[j], v)
			}
		}
	}

	t := &stats.Table{
		Title:  "Table II: activities, energy and power normalized to baseline (means)",
		Header: []string{"", "D", "X", "C", "Dyn.Energy", "Dyn.Power", "Static Power", "Power"},
	}
	for _, key := range keys {
		a := agg[key]
		row := []string{key}
		for j := 0; j < 7; j++ {
			row = append(row, pct(stats.Mean(a[j])))
		}
		t.AddRow(row...)
	}
	return NewReport(t)
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// Fig10 regenerates Fig. 10: CPU and DRAM energy of DLA and R3-DLA
// normalized to baseline, per suite.
func Fig10(c *Context) *Report {
	p := energy.DefaultParams()
	rep := NewReport()
	for _, part := range []string{"cpu", "dram"} {
		t := &stats.Table{
			Title:  fmt.Sprintf("Fig. 10 (%s energy normalized to baseline)", part),
			Header: append([]string{"config"}, suiteOrder...),
		}
		for _, cfgName := range []string{"DLA", "R3-DLA"} {
			vals := perSuite(c, func(pr *Prepared) float64 {
				bl := c.RunCached("BL", pr, core.Options{Disable: true, WithBOP: true})
				opt := core.DLAOptions()
				if cfgName == "R3-DLA" {
					opt = core.R3Options()
				}
				r := c.RunCached(cfgName+"dla-r3fig10", pr, opt)
				rc, rd := RunEnergy(r, p)
				bc, bd := RunEnergy(bl, p)
				if part == "cpu" {
					return rc / bc
				}
				return rd / bd
			})
			summarizeSuites(t, cfgName, vals)
		}
		rep.Add(t)
	}
	return rep
}
