package exp

import (
	"fmt"
	"strings"

	"r3dla/internal/core"
	"r3dla/internal/energy"
	"r3dla/internal/rival"
	"r3dla/internal/stats"
)

// suiteOrder is the presentation order of Fig. 9/10/12/13.
var suiteOrder = []string{"spec", "crono", "star", "npb", "all"}

// perSuite runs f over every workload and aggregates per suite (geomean +
// range), returning rows keyed by suiteOrder.
func perSuite(c *Context, f func(p *Prepared) float64) map[string][]float64 {
	vals := make(map[string][]float64)
	for _, name := range SuiteNames("all") {
		p := c.Prep(name)
		v := f(p)
		vals[p.W.Suite] = append(vals[p.W.Suite], v)
		vals["all"] = append(vals["all"], v)
		if c.Verbose {
			fmt.Printf("  %-9s %-6s %.3f\n", name, p.W.Suite, v)
		}
	}
	return vals
}

func summarizeSuites(t *stats.Table, label string, vals map[string][]float64) {
	cells := []string{label}
	for _, s := range suiteOrder {
		lo, hi := stats.MinMax(vals[s])
		cells = append(cells, fmt.Sprintf("%.2f [%.2f-%.2f]", stats.Geomean(vals[s]), lo, hi))
	}
	t.AddRow(cells...)
}

// Fig9a regenerates Fig. 9-a: speedups of BL / DLA / R3-DLA with and
// without the BOP prefetcher, normalized to BL+BOP, per suite.
func Fig9a(c *Context) string {
	type cfg struct {
		name string
		opt  core.Options
	}
	cfgs := []cfg{
		{"BL (noPF)", core.Options{Disable: true}},
		{"BL", core.Options{Disable: true, WithBOP: true}},
		{"DLA (noPF)", core.Options{}},
		{"DLA", core.DLAOptions()},
		{"R3-DLA (noPF)", func() core.Options { o := core.R3Options(); o.WithBOP = false; return o }()},
		{"R3-DLA", core.R3Options()},
	}

	// Normalization baseline: BL+BOP IPC per workload.
	base := make(map[string]float64)
	for _, name := range SuiteNames("all") {
		p := c.Prep(name)
		base[name] = c.RunCached("BL", p, core.Options{Disable: true, WithBOP: true}).IPC()
	}

	t := &stats.Table{
		Title:  "Fig. 9-a: speedup over BL+BOP (geomean [min-max])",
		Header: append([]string{"config"}, suiteOrder...),
	}
	for _, cf := range cfgs {
		vals := perSuite(c, func(p *Prepared) float64 {
			return c.RunCached(cf.name, p, cf.opt).IPC() / base[p.W.Name]
		})
		summarizeSuites(t, cf.name, vals)
	}
	return t.String()
}

// Fig9b regenerates Fig. 9-b: the all-suite comparison against B-Fetch,
// SlipStream, CRE, DLA and R3-DLA.
func Fig9b(c *Context) string {
	base := make(map[string]float64)
	for _, name := range SuiteNames("all") {
		p := c.Prep(name)
		base[name] = c.RunCached("BL", p, core.Options{Disable: true, WithBOP: true}).IPC()
	}
	runners := []struct {
		name string
		f    func(p *Prepared) float64
	}{
		{"B-Fetch", func(p *Prepared) float64 {
			return rival.RunBFetch(p.Prog, p.Setup, c.Budget).IPC()
		}},
		{"S-Stream", func(p *Prepared) float64 {
			return rival.RunSlipStream(p.Prog, p.Setup, p.Prof, c.Budget).IPC()
		}},
		{"CRE", func(p *Prepared) float64 {
			return rival.RunCRE(p.Prog, p.Setup, p.Prof, c.Budget).IPC()
		}},
		{"DLA", func(p *Prepared) float64 { return c.RunCached("DLA", p, core.DLAOptions()).IPC() }},
		{"R3-DLA", func(p *Prepared) float64 { return c.RunCached("R3-DLA", p, core.R3Options()).IPC() }},
	}
	t := &stats.Table{
		Title:  "Fig. 9-b: all-suite speedup over BL+BOP",
		Header: []string{"design", "speedup (geomean)", "range"},
	}
	for _, r := range runners {
		var vals []float64
		for _, name := range SuiteNames("all") {
			p := c.Prep(name)
			vals = append(vals, r.f(p)/base[name])
		}
		lo, hi := stats.MinMax(vals)
		t.AddRow(r.name, fmt.Sprintf("%.2f", stats.Geomean(vals)), fmt.Sprintf("[%.2f-%.2f]", lo, hi))
	}
	return t.String()
}

// Table2 regenerates Table II: D/X/C activity, dynamic energy/power and
// static power of LT and MT under DLA and R3-DLA, normalized to baseline.
func Table2(c *Context) string {
	p := energy.DefaultParams()
	type row struct {
		d, x, cc, de, dp, sp, pw []float64
	}
	agg := map[string]*row{"DLA LT": {}, "DLA MT": {}, "R3 LT": {}, "R3 MT": {}}

	push := func(key string, act, bact energy.Activity, e, be energy.Breakdown) {
		r := agg[key]
		ar := act.Ratio(bact)
		r.d = append(r.d, ar.D)
		r.x = append(r.x, ar.X)
		r.cc = append(r.cc, ar.C)
		r.de = append(r.de, e.DynamicJ/be.DynamicJ)
		r.dp = append(r.dp, e.DynPowerW()/be.DynPowerW())
		r.sp = append(r.sp, e.StatPowerW()/be.StatPowerW())
		r.pw = append(r.pw, e.PowerW()/be.PowerW())
	}

	for _, name := range SuiteNames("all") {
		pr := c.Prep(name)
		bl := c.RunCached("BL", pr, core.Options{Disable: true, WithBOP: true})
		bAct := energy.ActivityOf(bl.MT)
		bEn := energy.Core(energy.CoreActivity{
			Metrics: bl.MT, L1I: &bl.MTMem.L1I.Stats, L1D: &bl.MTMem.L1D.Stats,
			L2: &bl.MTMem.L2.Stats, WallCycles: bl.MT.Cycles,
		}, p)
		for _, cfgName := range []string{"DLA", "R3"} {
			opt := core.DLAOptions()
			if cfgName == "R3" {
				opt = core.R3Options()
			}
			r := c.RunCached(cfgName+"dla-r3", pr, opt)
			wall := r.MT.Cycles
			mtEn := energy.Core(energy.CoreActivity{
				Metrics: r.MT, L1I: &r.MTMem.L1I.Stats, L1D: &r.MTMem.L1D.Stats,
				L2: &r.MTMem.L2.Stats, WallCycles: wall,
			}, p)
			ltEn := energy.Core(energy.CoreActivity{
				Metrics: r.LT, L1I: &r.LTMem.L1I.Stats, L1D: &r.LTMem.L1D.Stats,
				L2: &r.LTMem.L2.Stats, WallCycles: wall,
			}, p)
			push(cfgName+" MT", energy.ActivityOf(r.MT), bAct, mtEn, bEn)
			push(cfgName+" LT", energy.ActivityOf(r.LT), bAct, ltEn, bEn)
		}
	}

	t := &stats.Table{
		Title:  "Table II: activities, energy and power normalized to baseline (means)",
		Header: []string{"", "D", "X", "C", "Dyn.Energy", "Dyn.Power", "Static Power", "Power"},
	}
	for _, key := range []string{"DLA LT", "DLA MT", "R3 LT", "R3 MT"} {
		r := agg[key]
		t.AddRow(key,
			pct(stats.Mean(r.d)), pct(stats.Mean(r.x)), pct(stats.Mean(r.cc)),
			pct(stats.Mean(r.de)), pct(stats.Mean(r.dp)), pct(stats.Mean(r.sp)), pct(stats.Mean(r.pw)))
	}
	return t.String()
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// Fig10 regenerates Fig. 10: CPU and DRAM energy of DLA and R3-DLA
// normalized to baseline, per suite.
func Fig10(c *Context) string {
	p := energy.DefaultParams()
	var b strings.Builder
	for _, part := range []string{"cpu", "dram"} {
		t := &stats.Table{
			Title:  fmt.Sprintf("Fig. 10 (%s energy normalized to baseline)", part),
			Header: append([]string{"config"}, suiteOrder...),
		}
		for _, cfgName := range []string{"DLA", "R3-DLA"} {
			vals := perSuite(c, func(pr *Prepared) float64 {
				bl := c.RunCached("BL", pr, core.Options{Disable: true, WithBOP: true})
				opt := core.DLAOptions()
				if cfgName == "R3-DLA" {
					opt = core.R3Options()
				}
				r := c.RunCached(cfgName+"dla-r3fig10", pr, opt)
				if part == "cpu" {
					return cpuEnergy(r, p) / cpuEnergy(bl, p)
				}
				return dramEnergy(r, p) / dramEnergy(bl, p)
			})
			summarizeSuites(t, cfgName, vals)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// cpuEnergy totals core + shared-cache energy of a run.
func cpuEnergy(r *core.Results, p energy.Params) float64 {
	wall := r.MT.Cycles
	e := energy.Core(energy.CoreActivity{
		Metrics: r.MT, L1I: &r.MTMem.L1I.Stats, L1D: &r.MTMem.L1D.Stats,
		L2: &r.MTMem.L2.Stats, WallCycles: wall,
	}, p).TotalJ()
	if r.LT != nil {
		e += energy.Core(energy.CoreActivity{
			Metrics: r.LT, L1I: &r.LTMem.L1I.Stats, L1D: &r.LTMem.L1D.Stats,
			L2: &r.LTMem.L2.Stats, WallCycles: wall,
		}, p).TotalJ()
	}
	e += energy.Shared(&r.Shared.L3.Stats, wall, p).TotalJ()
	return e
}

// dramEnergy totals memory energy of a run.
func dramEnergy(r *core.Results, p energy.Params) float64 {
	return energy.DRAM(&r.Shared.DRAM.Stats, r.MT.Cycles, p).TotalJ()
}
