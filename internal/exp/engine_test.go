package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"r3dla/internal/core"
)

// engineIDs is a mix of experiments that share prepared workloads and
// memoized runs, small enough to run at a reduced budget under -race.
var engineIDs = []string{"tab1", "fig15", "fig13c", "fig5"}

// render concatenates the text rendering of a result set.
func render(t *testing.T, results []Result) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		b.WriteString(r.Report.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelMatchesSerial asserts the engine's central contract: the
// rendered output of a concurrent run is byte-identical to the serial
// (-jobs 1) run, and preparation executed exactly once per workload.
func TestParallelMatchesSerial(t *testing.T) {
	serial := NewContext(6_000)
	serial.Jobs = 1
	sres, err := Run(context.Background(), serial, engineIDs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, sres)

	parallel := NewContext(6_000)
	parallel.Jobs = 8
	pres, err := Run(context.Background(), parallel, engineIDs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := render(t, pres)

	if got != want {
		t.Fatalf("parallel output differs from serial output:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	for _, name := range SuiteNames("all") {
		if n := parallel.PrepCount(name); n > 1 {
			t.Errorf("workload %s prepared %d times, want at most 1", name, n)
		}
	}
	// fig15/fig13c cover every spec workload; those must have prepared.
	if n := parallel.PrepCount("mcf"); n != 1 {
		t.Errorf("mcf prepared %d times, want 1", n)
	}
}

// TestRunCachedSingleflight hammers one (workload, key) pair from many
// goroutines: the simulation must execute once and every caller must see
// the same *Results.
func TestRunCachedSingleflight(t *testing.T) {
	c := NewContext(6_000)
	c.Jobs = 8
	var runs int
	var mu sync.Mutex
	c.Progress = func(ev Event) {
		if ev.Stage == "run" {
			mu.Lock()
			runs++
			mu.Unlock()
		}
	}
	p := c.Prep("bzip")
	const n = 16
	got := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.RunCached("BL", p, core.Options{Disable: true, WithBOP: true})
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("RunCached returned distinct results under concurrency")
		}
	}
	if runs != 1 {
		t.Fatalf("simulation ran %d times, want 1", runs)
	}
}

// TestOrderedDelivery asserts onResult sees results in id order even
// though experiments complete out of order.
func TestOrderedDelivery(t *testing.T) {
	c := NewContext(6_000)
	var order []string
	var mu sync.Mutex
	_, err := Run(context.Background(), c, engineIDs, func(r Result) {
		mu.Lock()
		order = append(order, r.ID)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(engineIDs) {
		t.Fatalf("delivered %d results, want %d", len(order), len(engineIDs))
	}
	for i, id := range engineIDs {
		if order[i] != id {
			t.Fatalf("delivery order %v, want %v", order, engineIDs)
		}
	}
}

// TestCancellation asserts a canceled context aborts the run with its
// error instead of hanging or panicking.
func TestCancellation(t *testing.T) {
	c := NewContext(6_000)
	c.Jobs = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: nothing should run
	results, err := Run(ctx, c, engineIDs, nil)
	if err == nil {
		t.Fatal("Run returned nil error on canceled context")
	}
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("%s completed despite cancellation", r.ID)
		}
	}
	// A canceled run must not poison the memoization entries: reusing the
	// same Context with a live context recomputes and succeeds.
	results, err = Run(context.Background(), c, []string{"tab1", "fig5"}, nil)
	if err != nil {
		t.Fatalf("reuse after cancellation: %v", err)
	}
	for _, r := range results {
		if r.Err != nil || r.Report == nil {
			t.Fatalf("reuse after cancellation: %s: %v", r.ID, r.Err)
		}
	}
}

// TestCancellationMidRun cancels while experiments are in flight.
func TestCancellationMidRun(t *testing.T) {
	c := NewContext(6_000)
	c.Jobs = 2
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Run(ctx, c, engineIDs, nil)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestUnknownExperiment asserts Run rejects bad ids up front.
func TestUnknownExperiment(t *testing.T) {
	if _, err := Run(context.Background(), NewContext(6_000), []string{"nope"}, nil); err == nil {
		t.Fatal("Run accepted an unknown experiment id")
	}
}

// TestReportSerialization checks the JSON and CSV forms carry the same
// rows as the text rendering.
func TestReportSerialization(t *testing.T) {
	c := NewContext(6_000)
	rep := Table1(c)
	rep.ID, rep.Title = "tab1", "Table I"

	var jbuf bytes.Buffer
	if err := rep.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(jbuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "tab1" || len(back.Tables) != 1 {
		t.Fatalf("JSON roundtrip mangled report: %+v", back)
	}
	if len(back.Tables[0].Rows) != len(rep.Tables[0].Rows) {
		t.Fatal("JSON roundtrip dropped rows")
	}

	var cbuf bytes.Buffer
	if err := rep.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	csv := cbuf.String()
	if !strings.Contains(csv, "# Table I: system configuration") {
		t.Fatalf("CSV missing title comment:\n%s", csv)
	}
	if !strings.Contains(csv, "unit,configuration") {
		t.Fatalf("CSV missing header row:\n%s", csv)
	}
	if !strings.Contains(csv, "BOQ 512") {
		t.Fatalf("CSV missing data rows:\n%s", csv)
	}
}
