package exp

import (
	"testing"
	"time"
)

// TestSingleflightWaiterCancel pins the entry contract the service
// depends on: a waiter whose cancellation fires while another caller's
// computation is in flight aborts immediately (via onCancel) instead of
// blocking for the leader's whole run; the leader is unaffected, and its
// value is served to later callers.
func TestSingleflightWaiterCancel(t *testing.T) {
	e := &entry[int]{}
	block := make(chan struct{})
	leaderStarted := make(chan struct{})
	leaderDone := make(chan int, 1)
	go func() {
		leaderDone <- e.do(nil, nil, func() int {
			close(leaderStarted)
			<-block
			return 42
		})
	}()
	<-leaderStarted

	// A canceled waiter must bail out through onCancel promptly.
	canceledCh := make(chan struct{})
	close(canceledCh)
	type sentinel struct{}
	aborted := make(chan struct{})
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(sentinel); ok {
					close(aborted)
				}
			}
		}()
		e.do(canceledCh, func() { panic(sentinel{}) }, func() int {
			t.Error("canceled waiter became the leader")
			return 0
		})
	}()
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter stayed blocked behind the leader")
	}

	// The leader completes normally and fills the entry for everyone else.
	close(block)
	if v := <-leaderDone; v != 42 {
		t.Fatalf("leader got %d", v)
	}
	if v := e.do(nil, nil, func() int { t.Error("recomputed a filled entry"); return 0 }); v != 42 {
		t.Fatalf("follower got %d", v)
	}
}

// TestSingleflightLeaderPanicRetries pins the retry contract: a leader
// that panics (cancellation) leaves the entry empty, a waiter takes over
// as the new leader, and the value it computes is memoized.
func TestSingleflightLeaderPanicRetries(t *testing.T) {
	e := &entry[int]{}
	block := make(chan struct{})
	leaderStarted := make(chan struct{})
	leaderPanicked := make(chan struct{})
	go func() {
		defer func() {
			recover()
			close(leaderPanicked)
		}()
		e.do(nil, nil, func() int {
			close(leaderStarted)
			<-block
			panic(canceled{nil})
		})
	}()
	<-leaderStarted

	followerDone := make(chan int, 1)
	go func() {
		followerDone <- e.do(nil, nil, func() int { return 7 })
	}()
	close(block)
	<-leaderPanicked
	select {
	case v := <-followerDone:
		if v != 7 {
			t.Fatalf("follower retry got %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never took over after the leader panicked")
	}
	if v := e.do(nil, nil, func() int { t.Error("recomputed"); return 0 }); v != 7 {
		t.Fatalf("entry not filled by the retry: %d", v)
	}
}
