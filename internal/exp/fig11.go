package exp

import (
	"fmt"

	"r3dla/internal/branch"
	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/memsys"
	"r3dla/internal/pipeline"
	"r3dla/internal/stats"
	"r3dla/internal/workloads"
)

// runSMTPair runs two copies of the workload on two half-cores sharing
// one private cache stack (the SMT usage point of Fig. 11) and returns
// the combined throughput in instructions per cycle.
func runSMTPair(p *Prepared, budget uint64) float64 {
	shared := memsys.NewShared()
	priv := memsys.NewPrivate(shared, memsys.Options{WithBOP: true})
	half := pipeline.HalfConfig()

	mk := func() *pipeline.Core {
		mem := emu.NewMemory()
		p.Setup(mem)
		mach := emu.NewMachine(p.Prog, mem)
		feed := &pipeline.MachineFeeder{M: mach}
		dir := &pipeline.TageSource{P: branch.NewPredictor(branch.DefaultConfig())}
		c := pipeline.New(half, feed, dir, priv.L1I, priv.L1D)
		c.Hooks.OnLoadAccess = priv.LoadHook()
		return c
	}
	c1, c2 := mk(), mk()
	guard := budget*2000 + 1_000_000
	for c1.M.Committed+c2.M.Committed < budget {
		c1.Tick()
		c2.Tick()
		if c1.M.Cycles > guard {
			break
		}
	}
	return float64(c1.M.Committed+c2.M.Committed) / float64(c1.M.Cycles)
}

// Fig11 regenerates Fig. 11: throughput of the wide core (FC), DLA and
// R3-DLA on two half-cores, and two-copy SMT, all normalized to a single
// half-core (HC). Workloads are evaluated concurrently; each workload's
// five design points are sequential within one pool task.
func Fig11(c *Context) *Report {
	half := pipeline.HalfConfig()
	wide := pipeline.WideConfig()

	t := &stats.Table{
		Title:  "Fig. 11: SMT-core throughput normalized to a half-core",
		Header: []string{"bench", "FC", "DLA", "R3-DLA", "SMT"},
	}
	all := workloads.All()
	type row struct{ fc, dla, r3, smt float64 }
	rows := make([]row, len(all))
	c.ParallelEach(len(all), func(i int) {
		p := c.Prep(all[i].Name)
		budget := c.Budget / 2

		var hcIPC, fcIPC, smt float64
		c.Do(func() {
			hc, _ := BaselineMetricsOn(p, half, budget, true)
			fc, _ := BaselineMetricsOn(p, wide, budget, true)
			hcIPC, fcIPC = hc.IPC(), fc.IPC()
			smt = runSMTPair(p, budget)
		})

		dlaOpt := core.DLAOptions()
		dlaOpt.CoreCfg = &half
		dla := c.RunDLA(p, dlaOpt)

		r3Opt := core.R3Options()
		r3Opt.CoreCfg = &half
		r3 := c.RunDLA(p, r3Opt)

		rows[i] = row{fcIPC / hcIPC, dla.IPC() / hcIPC, r3.IPC() / hcIPC, smt / hcIPC}
	})
	var fcs, dlas, r3s, smts []float64
	for i, w := range all {
		r := rows[i]
		fcs = append(fcs, r.fc)
		dlas = append(dlas, r.dla)
		r3s = append(r3s, r.r3)
		smts = append(smts, r.smt)
		t.AddRow(w.Name, f2(r.fc), f2(r.dla), f2(r.r3), f2(r.smt))
	}
	t.AddRow("gmean", f2(stats.Geomean(fcs)), f2(stats.Geomean(dlas)),
		f2(stats.Geomean(r3s)), f2(stats.Geomean(smts)))
	return NewReport(t)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
