package exp

import (
	"encoding/json"
	"io"
	"strings"

	"r3dla/internal/stats"
)

// Report is the structured result of one experiment: an ordered list of
// tables, each a header plus rows of cells. The text rendering mirrors
// the paper artifact; JSON and CSV expose the same rows machine-readably.
type Report struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	Tables []*stats.Table `json:"tables"`
}

// NewReport collects tables into a report (ID/Title are stamped by the
// engine from the registry entry).
func NewReport(tables ...*stats.Table) *Report {
	return &Report{Tables: tables}
}

// Add appends a table.
func (r *Report) Add(t *stats.Table) { r.Tables = append(r.Tables, t) }

// String renders every table as fixed-width text, in order.
func (r *Report) String() string {
	var b strings.Builder
	for i, t := range r.Tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// WriteJSON writes the report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes every table as RFC-4180 CSV: a `# title` comment line,
// the header row, then the data rows, with a blank line between tables.
func (r *Report) WriteCSV(w io.Writer) error {
	for i, t := range r.Tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := t.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}
