package exp

import (
	"strings"
	"testing"

	"r3dla/internal/core"
)

// tiny context for fast tests.
func testCtx() *Context { return NewContext(8_000) }

func TestPrepMemoizes(t *testing.T) {
	c := testCtx()
	p1 := c.Prep("bzip")
	p2 := c.Prep("bzip")
	if p1 != p2 {
		t.Fatal("Prep not memoized")
	}
	if p1.Set == nil || p1.Prof == nil {
		t.Fatal("Prep incomplete")
	}
}

func TestRunCachedMemoizes(t *testing.T) {
	c := testCtx()
	p := c.Prep("bzip")
	r1 := c.RunCached("BL", p, core.Options{Disable: true, WithBOP: true})
	r2 := c.RunCached("BL", p, core.Options{Disable: true, WithBOP: true})
	if r1 != r2 {
		t.Fatal("RunCached not memoized")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"tab1", "fig1", "fig5", "fig9a", "fig9b", "tab2",
		"fig10", "fig11", "tab3", "fig12", "fig13a", "fig13b", "fig13c",
		"fig14", "fig15"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Registry), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %s missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id resolved")
	}
	if len(IDs()) != len(want) {
		t.Fatal("IDs() incomplete")
	}
}

func TestTable1Renders(t *testing.T) {
	out := Table1(testCtx()).String()
	for _, want := range []string{"192 ROB", "BOQ 512", "TAGE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5AndFig14Render(t *testing.T) {
	c := testCtx()
	out := Fig5(c).String()
	if !strings.Contains(out, "P(queue length)") || !strings.Contains(out, "expected fetch bubbles") {
		t.Fatalf("Fig5 incomplete:\n%s", out)
	}
	out14 := Fig14(c).String()
	if !strings.Contains(out14, "theoretical") || !strings.Contains(out14, "simulated") {
		t.Fatalf("Fig14 incomplete:\n%s", out14)
	}
}

func TestFig1Renders(t *testing.T) {
	out := Fig1(testCtx()).String()
	if !strings.Contains(out, "ideal:2048") || !strings.Contains(out, "gmean") {
		t.Fatalf("Fig1 incomplete:\n%s", out)
	}
}

// TestSmallFig9a exercises the bottom-line experiment on a reduced
// context: smoke coverage of the full BL/DLA/R3 matrix.
func TestSmallFig9a(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := Fig9a(testCtx()).String()
	if !strings.Contains(out, "R3-DLA") || !strings.Contains(out, "spec") {
		t.Fatalf("Fig9a incomplete:\n%s", out)
	}
}

func TestSuiteNames(t *testing.T) {
	if len(SuiteNames("all")) != 25 {
		t.Fatal("all-suite name list incomplete")
	}
	if len(SuiteNames("crono")) != 5 {
		t.Fatal("crono suite wrong size")
	}
}
