package exp

import (
	"r3dla/internal/core"
	"r3dla/internal/energy"
)

// RunEnergy totals one run's energy under p: cpuJ covers both cores plus
// the shared L3 (the CPU total of Fig. 10a), dramJ the memory system
// (Fig. 10b). Wall time for every component is the MT's cycle count —
// the coupled system runs until the main thread retires its budget, so
// static energy accrues for that duration on both cores. The Lab's
// RunResult energy fields and the Fig. 10 experiment both derive from
// this one accounting, so a run's reported joules and the paper artifact
// can never disagree.
func RunEnergy(r *core.Results, p energy.Params) (cpuJ, dramJ float64) {
	wall := r.MT.Cycles
	cpuJ = energy.Core(energy.CoreActivity{
		Metrics: r.MT, L1I: &r.MTMem.L1I.Stats, L1D: &r.MTMem.L1D.Stats,
		L2: &r.MTMem.L2.Stats, WallCycles: wall,
	}, p).TotalJ()
	if r.LT != nil {
		cpuJ += energy.Core(energy.CoreActivity{
			Metrics: r.LT, L1I: &r.LTMem.L1I.Stats, L1D: &r.LTMem.L1D.Stats,
			L2: &r.LTMem.L2.Stats, WallCycles: wall,
		}, p).TotalJ()
	}
	cpuJ += energy.Shared(&r.Shared.L3.Stats, wall, p).TotalJ()
	dramJ = energy.DRAM(&r.Shared.DRAM.Stats, wall, p).TotalJ()
	return cpuJ, dramJ
}
