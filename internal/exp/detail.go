package exp

import (
	"fmt"

	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/pipeline"
	"r3dla/internal/stats"
)

// Table3 regenerates Table III: L1 MPKI split between strided and
// non-strided accesses under BL, BL+stride, DLA, and DLA+T1.
func Table3(c *Context) *Report {
	cfgs := []struct {
		name string
		opt  core.Options
	}{
		{"BL", core.Options{Disable: true, WithBOP: true}},
		{"BL+stride", core.Options{Disable: true, WithBOP: true, WithStride: true}},
		{"DLA", core.DLAOptions()},
		{"DLA+T1", core.Options{WithBOP: true, T1: true}},
	}

	names := SuiteNames("all")
	type mpki struct{ strided, others float64 }
	// Strided classification from the training profile, once per workload.
	classify := make([]map[int]bool, len(names))
	c.ParallelEach(len(names), func(wi int) {
		p := c.Prep(names[wi])
		stridedPC := make(map[int]bool)
		for pc := range p.Prog.Insts {
			if p.Prog.Insts[pc].Op.IsLoad() && p.Prof.PCs[pc].Strided() {
				stridedPC[pc] = true
			}
		}
		classify[wi] = stridedPC
	})
	// per[workload][config]; the instrumented runs are not memoizable (they
	// hook the MT load path), so each (workload, config) pair is its own
	// pool task.
	per := make([][]mpki, len(names))
	for i := range per {
		per[i] = make([]mpki, len(cfgs))
	}
	c.ParallelEach(len(names)*len(cfgs), func(k int) {
		wi, ci := k/len(cfgs), k%len(cfgs)
		p := c.Prep(names[wi])
		stridedPC := classify[wi]
		c.Do(func() {
			var sMiss, oMiss uint64
			sys := core.NewSystemWithMemory(p.Prog, p.Image().Fork(), p.Set, p.Prof, cfgs[ci].opt)
			prev := sys.MTLoadHook()
			sys.SetMTLoadHook(func(d *emu.DynInst, level int, done, now uint64) {
				prev(d, level, done, now)
				if level >= 2 {
					if stridedPC[d.PC] {
						sMiss++
					} else {
						oMiss++
					}
				}
			})
			r := sys.Run(c.Budget)
			kinsts := float64(r.MT.Committed) / 1000
			per[wi][ci] = mpki{float64(sMiss) / kinsts, float64(oMiss) / kinsts}
		})
	})

	t := &stats.Table{
		Title:  "Table III: L1 MPKI, strided vs non-strided accesses",
		Header: []string{"config", "strided mean", "strided median", "others mean", "others median"},
	}
	for ci, cf := range cfgs {
		var strided, others []float64
		for wi := range names {
			strided = append(strided, per[wi][ci].strided)
			others = append(others, per[wi][ci].others)
		}
		t.AddRow(cf.name,
			fmt.Sprintf("%.1f", stats.Mean(strided)),
			fmt.Sprintf("%.1f", stats.Median(strided)),
			fmt.Sprintf("%.1f", stats.Mean(others)),
			fmt.Sprintf("%.1f", stats.Median(others)))
	}
	return NewReport(t)
}

// Fig12 regenerates Fig. 12: speedup and memory traffic of DLA+Stride vs
// DLA+T1, normalized to plain DLA.
func Fig12(c *Context) *Report {
	rep := NewReport()
	for _, metric := range []string{"speedup", "traffic"} {
		t := &stats.Table{
			Title:  fmt.Sprintf("Fig. 12 (%s normalized to DLA)", metric),
			Header: append([]string{"config"}, suiteOrder...),
		}
		for _, cf := range []struct {
			name string
			opt  core.Options
		}{
			{"DLA+Stride", core.Options{WithBOP: true, WithStride: true}},
			{"DLA+T1", core.Options{WithBOP: true, T1: true}},
		} {
			vals := perSuite(c, func(p *Prepared) float64 {
				dla := c.RunCached("DLA", p, core.DLAOptions())
				r := c.RunCached("f12"+cf.name, p, cf.opt)
				if metric == "speedup" {
					return r.IPC() / dla.IPC()
				}
				return float64(r.Shared.DRAM.Traffic()) / float64(dla.Shared.DRAM.Traffic())
			})
			summarizeSuites(t, cf.name, vals)
		}
		rep.Add(t)
	}
	return rep
}

// Fig13a regenerates Fig. 13-a: the fetch buffer's gain over the baseline
// vs over DLA.
func Fig13a(c *Context) *Report {
	t := &stats.Table{
		Title:  "Fig. 13-a: 32-entry fetch buffer speedup",
		Header: append([]string{"config"}, suiteOrder...),
	}
	// Over baseline: plain core, fetch buffer 8 vs 32 (own predictor).
	vals := perSuite(c, func(p *Prepared) float64 {
		var ipc float64
		c.Do(func() {
			cfg := pipeline.DefaultConfig()
			base, _ := BaselineMetricsOn(p, cfg, c.Budget, true)
			cfg.FetchBufSize = 32
			fb, _ := BaselineMetricsOn(p, cfg, c.Budget, true)
			ipc = fb.IPC() / base.IPC()
		})
		return ipc
	})
	summarizeSuites(t, "FB over BL", vals)
	// Over DLA: BOQ-driven.
	vals = perSuite(c, func(p *Prepared) float64 {
		dla := c.RunCached("DLA", p, core.DLAOptions())
		fb := c.RunCached("DLA+FB", p, core.Options{WithBOP: true, FetchBuffer: true})
		return fb.IPC() / dla.IPC()
	})
	summarizeSuites(t, "FB over DLA", vals)
	return NewReport(t)
}

// Fig13b regenerates Fig. 13-b: dynamic (online) vs static (training-
// input) recycle tuning, normalized to plain DLA.
func Fig13b(c *Context) *Report {
	t := &stats.Table{
		Title:  "Fig. 13-b: skeleton recycling, dynamic vs static tuning (speedup over DLA)",
		Header: append([]string{"mode"}, suiteOrder...),
	}
	vals := perSuite(c, func(p *Prepared) float64 {
		dla := c.RunCached("DLA", p, core.DLAOptions())
		dyn := c.RunCached("DLA+RC", p, core.Options{WithBOP: true, Recycle: true})
		return dyn.IPC() / dla.IPC()
	})
	summarizeSuites(t, "Dynamic", vals)
	vals = perSuite(c, func(p *Prepared) float64 {
		dla := c.RunCached("DLA", p, core.DLAOptions())
		// Train the LCT on the training input, then run statically.
		var lct map[int]int
		c.Do(func() {
			trainProg, trainSetup := p.W.Build(TrainSeed)
			trainSet := core.Generate(trainProg, p.Prof)
			trainSys := core.NewSystem(trainProg, trainSetup, trainSet, p.Prof,
				core.Options{WithBOP: true, Recycle: true})
			trainSys.Run(c.Budget / 2)
			lct = trainSys.LCTSnapshot()
		})
		st := c.RunDLA(p, core.Options{WithBOP: true, StaticLCT: lct})
		return st.IPC() / dla.IPC()
	})
	summarizeSuites(t, "Static", vals)
	return NewReport(t)
}

// Fig13c regenerates Fig. 13-c: each optimization applied first (over
// baseline DLA) vs last (completing R3-DLA) — the synergy result.
func Fig13c(c *Context) *Report {
	techs := []struct {
		key      string
		alone    core.Options // DLA + only this technique
		disabled core.Options // R3-DLA minus this technique
	}{
		{"AS (T1 offload)",
			core.Options{WithBOP: true, T1: true},
			func() core.Options { o := core.R3Options(); o.T1 = false; return o }()},
		{"VR (value reuse)",
			core.Options{WithBOP: true, ValueReuse: true},
			func() core.Options { o := core.R3Options(); o.ValueReuse = false; return o }()},
		{"FB (fetch buffer)",
			core.Options{WithBOP: true, FetchBuffer: true},
			func() core.Options { o := core.R3Options(); o.FetchBuffer = false; return o }()},
	}
	t := &stats.Table{
		Title:  "Fig. 13-c: technique applied first vs last (all-suite geomean)",
		Header: []string{"technique", "first (DLA+X / DLA)", "last (R3 / R3-X)"},
	}
	for _, tech := range techs {
		type pair struct{ first, last float64 }
		names := SuiteNames("all")
		per := make([]pair, len(names))
		c.ParallelEach(len(names), func(i int) {
			p := c.Prep(names[i])
			dla := c.RunCached("DLA", p, core.DLAOptions())
			r3 := c.RunCached("R3-DLA", p, core.R3Options())
			alone := c.RunCached("alone-"+tech.key, p, tech.alone)
			minus := c.RunCached("minus-"+tech.key, p, tech.disabled)
			per[i] = pair{alone.IPC() / dla.IPC(), r3.IPC() / minus.IPC()}
		})
		var first, last []float64
		for _, pr := range per {
			first = append(first, pr.first)
			last = append(last, pr.last)
		}
		t.AddRow(tech.key,
			fmt.Sprintf("%.3f", stats.Geomean(first)),
			fmt.Sprintf("%.3f", stats.Geomean(last)))
	}
	return NewReport(t)
}
