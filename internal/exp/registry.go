package exp

import (
	"sort"
)

// Experiment is one regenerable artifact of the paper. Run returns the
// structured report; the engine stamps its ID/Title from the registry.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) *Report
}

// Registry lists every experiment by id.
var Registry = []Experiment{
	{"tab1", "Table I: system configuration", Table1},
	{"fig1", "Fig. 1: implicit parallelism limit study", Fig1},
	{"fig5", "Fig. 5: analytic fetch-buffer model", Fig5},
	{"fig9a", "Fig. 9-a: bottom-line speedups per suite", Fig9a},
	{"fig9b", "Fig. 9-b: comparison with related designs", Fig9b},
	{"tab2", "Table II: activity/energy/power breakdown", Table2},
	{"fig10", "Fig. 10: CPU and DRAM energy", Fig10},
	{"fig11", "Fig. 11: SMT usage scenario", Fig11},
	{"tab3", "Table III: strided vs other L1 MPKI", Table3},
	{"fig12", "Fig. 12: T1 offload vs stride prefetcher", Fig12},
	{"fig13a", "Fig. 13-a: fetch buffer over BL vs over DLA", Fig13a},
	{"fig13b", "Fig. 13-b: dynamic vs static recycling", Fig13b},
	{"fig13c", "Fig. 13-c: optimization synergy", Fig13c},
	{"fig14", "Fig. 14: fetch-buffer theory vs simulation", Fig14},
	{"fig15", "Fig. 15: skeleton version distribution", Fig15},
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, e := range Registry {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
