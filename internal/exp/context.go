// Package exp is the experiment harness: one driver per table and figure
// of the paper's evaluation (see DESIGN.md §4 for the index). Drivers
// produce structured Reports (tables of rows) that render as text
// mirroring the original artifact, and serialize to JSON/CSV. A Context
// dispatches per-workload preparation and simulation runs to a bounded
// worker pool with concurrency-safe memoization, so experiments sharing
// a prepared workload or a standard configuration never repeat work; Run
// executes a set of experiments concurrently with deterministic output.
package exp

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"r3dla/internal/branch"
	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
	"r3dla/internal/memsys"
	"r3dla/internal/pipeline"
	"r3dla/internal/workloads"
)

// Seeds for the training and evaluation inputs (the paper profiles on
// training inputs and evaluates on reference inputs).
const (
	TrainSeed = 1
	EvalSeed  = 2
)

// Event is one progress notification from the engine: a workload was
// prepared, a simulation finished, or an experiment completed.
type Event struct {
	Stage    string // "prep", "run", or "exp"
	Exp      string // experiment id ("exp" stage only)
	Workload string // workload name ("prep"/"run" stages)
	Key      string // configuration key ("run" stage only)
	Elapsed  time.Duration
}

// Context carries budgets, memoizes per-workload preparation (profiling +
// skeleton generation) and standard-configuration runs across
// experiments, and owns the bounded worker pool every simulation is
// dispatched to. A Context is safe for concurrent use: memoization is
// singleflight-style (two experiments asking for the same prepared
// workload block on one preparation instead of repeating it), and all
// results are deterministic regardless of scheduling order.
type Context struct {
	Budget      uint64 // evaluation budget (committed MT instructions)
	TrainBudget uint64
	Verbose     bool

	// Jobs bounds how many simulations run concurrently; <= 0 means
	// runtime.GOMAXPROCS(0). Set before first use.
	Jobs int

	// Progress, when non-nil, receives an Event after every completed
	// preparation and memoized run. It may be called from multiple
	// goroutines and must be safe for that.
	Progress func(Event)

	// LogW receives Verbose per-workload detail lines (default
	// os.Stdout). Writes are serialized by the Context.
	LogW io.Writer

	// Cache, when non-nil, persists preparation artifacts across
	// processes (see internal/prepcache): prep consults it before
	// running the training simulation and stores what it generates.
	// Set before first use.
	Cache PrepCache

	ctx context.Context // cancellation; nil means background

	state *sharedState // pool + memoization, shared with WithCancel copies
}

// sharedState is the concurrency machinery a Context and its WithCancel
// copies share: the bounded worker pool and the memoization tables.
type sharedState struct {
	logMu sync.Mutex

	semOnce sync.Once
	sem     chan struct{}

	mu        sync.Mutex
	prepared  map[string]*prepEntry
	runs      map[string]*runEntry
	prepCount map[string]int // times preparation actually executed, per workload
	runCount  int            // memoized simulations actually executed (cache misses)
}

// entry is a panic-safe singleflight cell: the first caller (the
// leader) computes while later callers for the same key wait. Unlike
// sync.Once, a panicking computation (cancellation aborts runs by
// panicking out of the pool) leaves the entry unfilled, so reusing the
// Context after a canceled run recomputes instead of returning nil.
type entry[T any] struct {
	mu      sync.Mutex
	running bool
	done    bool
	val     T
	wake    chan struct{} // closed when the current leader finishes (either way)
}

// do returns the memoized value, computing it via f if needed. f runs
// at most once concurrently; on panic the entry stays empty for retry
// (a waiter takes over as the new leader). Waiters are interruptible:
// when cancel fires they call onCancel (which must not return normally
// — it panics the engine's cancellation sentinel) instead of blocking
// for the leader's whole simulation. A nil cancel channel never fires.
func (e *entry[T]) do(cancel <-chan struct{}, onCancel func(), f func() T) T {
	e.mu.Lock()
	for {
		if e.done {
			v := e.val
			e.mu.Unlock()
			return v
		}
		if !e.running {
			break // become the leader
		}
		wake := e.wake
		e.mu.Unlock()
		select {
		case <-wake:
		case <-cancel:
			onCancel()
		}
		e.mu.Lock()
	}
	e.running = true
	wake := make(chan struct{})
	e.wake = wake
	e.mu.Unlock()

	ok := false
	var v T
	defer func() {
		e.mu.Lock()
		e.running = false
		if ok {
			e.val, e.done = v, true
		}
		e.wake = nil
		e.mu.Unlock()
		close(wake)
	}()
	v = f()
	ok = true
	return v
}

type prepEntry = entry[*Prepared]
type runEntry = entry[*core.Results]

// NewContext returns a Context with the given evaluation budget (0 means
// the default 150k instructions).
func NewContext(budget uint64) *Context {
	if budget == 0 {
		budget = 150_000
	}
	return &Context{
		Budget:      budget,
		TrainBudget: budget / 2,
		state: &sharedState{
			prepared:  make(map[string]*prepEntry),
			runs:      make(map[string]*runEntry),
			prepCount: make(map[string]int),
		},
	}
}

// WithCancel returns a shallow copy of c whose operations abort once ctx
// is canceled. The worker pool and memoization state stay shared with c.
func (c *Context) WithCancel(ctx context.Context) *Context {
	cc := *c
	cc.ctx = ctx
	return &cc
}

// WithProgress returns a shallow copy of c whose operations report events
// to f (replacing any previous observer). The worker pool and memoization
// state stay shared with c, so per-request observers (the service's NDJSON
// streams) still hit the shared caches.
func (c *Context) WithProgress(f func(Event)) *Context {
	cc := *c
	cc.Progress = f
	return &cc
}

func (c *Context) initSem() {
	n := c.Jobs
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c.state.sem = make(chan struct{}, n)
}

// canceled is the sentinel the pool panics with when the Context's
// cancellation fires; Run recovers it into the experiment's error.
type canceled struct{ err error }

// CancelError unwraps the panic value the engine uses to abort canceled
// work. Callers layered on top of the Context (the lab client) recover
// it back into an ordinary error; any other panic value returns false.
func CancelError(r any) (error, bool) {
	if cp, ok := r.(canceled); ok {
		return cp.err, true
	}
	return nil, false
}

func (c *Context) checkCanceled() {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			panic(canceled{err})
		}
	}
}

// cancelCh returns the channel singleflight waiters select on; nil (a
// never-firing channel) when the Context has no cancellation.
func (c *Context) cancelCh() <-chan struct{} {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Done()
}

// Do runs f on the worker pool: it blocks for a slot (respecting Jobs),
// runs f, and releases the slot. Prep, RunDLA and RunCached acquire a
// slot themselves; Do is for compute-heavy leaf work that bypasses them
// (direct BaselineMetricsOn / limit-study / rival runs). f must not call
// Do, Prep, RunDLA or RunCached — nested acquisition would deadlock a
// one-slot pool.
func (c *Context) Do(f func()) {
	c.checkCanceled()
	c.state.semOnce.Do(c.initSem)
	c.state.sem <- struct{}{}
	defer func() { <-c.state.sem }()
	c.checkCanceled()
	f()
}

// ParallelEach runs f(0..n-1) concurrently and returns when all are
// done. It spawns one goroutine per index; actual compute stays bounded
// because every heavy operation inside f (Prep, RunDLA, RunCached, Do)
// acquires a worker-pool slot. Callers get deterministic results by
// writing to index i of a preallocated slice. A panic in any f
// (including cancellation) is re-raised in the caller.
func (c *Context) ParallelEach(n int, f func(i int)) {
	if n == 0 {
		return
	}
	var wg sync.WaitGroup
	var pmu sync.Mutex
	var pval any
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if pval == nil {
						pval = r
					}
					pmu.Unlock()
				}
			}()
			c.checkCanceled()
			f(i)
		}(i)
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}

// Logf writes one Verbose detail line (serialized across goroutines).
func (c *Context) Logf(format string, args ...any) {
	if !c.Verbose {
		return
	}
	w := c.LogW
	if w == nil {
		w = os.Stdout
	}
	c.state.logMu.Lock()
	fmt.Fprintf(w, format, args...)
	c.state.logMu.Unlock()
}

func (c *Context) emit(ev Event) {
	if c.Progress != nil {
		c.Progress(ev)
	}
}

// RunCached memoizes a DLA run under an explicit configuration key, so
// experiments sharing the standard configurations (BL/DLA/R3…) reuse each
// other's runs. Concurrent callers with the same key block on a single
// simulation (singleflight).
func (c *Context) RunCached(key string, p *Prepared, opt core.Options) *core.Results {
	return c.RunCachedAt(key, p, opt, c.Budget)
}

// RunCachedAt is RunCached at an explicit budget (the service lets each
// request pick its own); the budget is folded into the memoization key so
// different budgets never alias.
func (c *Context) RunCachedAt(key string, p *Prepared, opt core.Options, budget uint64) *core.Results {
	k := fmt.Sprintf("%s/%s@%d", p.W.Name, key, budget)
	c.state.mu.Lock()
	e, ok := c.state.runs[k]
	if !ok {
		e = &runEntry{}
		c.state.runs[k] = e
	}
	c.state.mu.Unlock()
	r := e.do(c.cancelCh(), c.checkCanceled, func() *core.Results {
		start := time.Now()
		res := c.RunDLAAt(p, opt, budget)
		c.state.mu.Lock()
		c.state.runCount++
		c.state.mu.Unlock()
		c.emit(Event{Stage: "run", Workload: p.W.Name, Key: key, Elapsed: time.Since(start)})
		return res
	})
	c.checkCanceled()
	return r
}

// Prepared is a workload ready to run: evaluation program + profile and
// skeletons from the training input. All fields are read-only after
// preparation, so one Prepared is safely shared by concurrent runs.
type Prepared struct {
	W     *workloads.Workload
	Prog  *isa.Program
	Setup func(*emu.Memory)
	Prof  *core.Profile
	Set   *core.Set

	imgOnce sync.Once
	img     *emu.Memory
}

// Image returns the workload's initialized data-memory image, built by
// running Setup exactly once per Prepared and frozen afterwards. Runs fork
// it copy-on-write (emu.Memory.Fork) instead of re-executing Setup, which
// the heap profile showed dominating per-run allocation. The image must
// never be written directly — only forks are.
func (p *Prepared) Image() *emu.Memory {
	p.imgOnce.Do(func() {
		m := emu.NewMemory()
		if p.Setup != nil {
			p.Setup(m)
		}
		p.img = m
	})
	return p.img
}

// Prep profiles and generates skeletons for one workload. Preparation is
// memoized with singleflight semantics: under concurrency it executes
// exactly once per workload, and every caller gets the same *Prepared.
func (c *Context) Prep(name string) *Prepared {
	c.state.mu.Lock()
	e, ok := c.state.prepared[name]
	if !ok {
		e = &prepEntry{}
		c.state.prepared[name] = e
	}
	c.state.mu.Unlock()
	p := e.do(c.cancelCh(), c.checkCanceled, func() *Prepared {
		start := time.Now()
		var val *Prepared
		c.Do(func() { val = c.prep(name) })
		c.state.mu.Lock()
		c.state.prepCount[name]++
		c.state.mu.Unlock()
		c.emit(Event{Stage: "prep", Workload: name, Elapsed: time.Since(start)})
		return val
	})
	c.checkCanceled()
	return p
}

// PrepCache persists preparation artifacts across processes. Load returns
// ok=false on any problem (missing, stale, corrupt) — misses are silent
// and the Context regenerates; Store failures are likewise non-fatal.
// internal/prepcache provides the on-disk implementation.
type PrepCache interface {
	Load(key string, train, eval *isa.Program) (*core.Profile, *core.Set, bool)
	Store(key string, train, eval *isa.Program, prof *core.Profile, set *core.Set) error
}

func (c *Context) prep(name string) *Prepared {
	w := workloads.ByName(name)
	if w == nil {
		panic(fmt.Sprintf("exp: unknown workload %q", name))
	}
	trainProg, trainSetup := w.Build(TrainSeed)
	evalProg, evalSetup := w.Build(EvalSeed)
	key := fmt.Sprintf("%s@%d", name, c.TrainBudget)
	if c.Cache != nil {
		if prof, set, ok := c.Cache.Load(key, trainProg, evalProg); ok {
			c.Logf("  [prep] %-9s loaded from prep cache\n", name)
			return &Prepared{W: w, Prog: evalProg, Setup: evalSetup, Prof: prof, Set: set}
		}
	}
	prof := core.Collect(trainProg, trainSetup, c.TrainBudget)
	set := core.Generate(evalProg, prof)
	if c.Cache != nil {
		if err := c.Cache.Store(key, trainProg, evalProg, prof, set); err != nil {
			c.Logf("  [prep] %-9s prep-cache store failed: %v\n", name, err)
		}
	}
	return &Prepared{W: w, Prog: evalProg, Setup: evalSetup, Prof: prof, Set: set}
}

// PrepCount reports how many times preparation actually executed for a
// workload (test instrumentation: it must be at most 1 regardless of
// concurrency).
func (c *Context) PrepCount(name string) int {
	c.state.mu.Lock()
	defer c.state.mu.Unlock()
	return c.state.prepCount[name]
}

// RunCount reports how many memoized simulations actually executed
// (cache misses through RunCached/RunCachedAt). Resume and cache-sharing
// tests use it to assert journaled or overlapping work is not repeated.
func (c *Context) RunCount() int {
	c.state.mu.Lock()
	defer c.state.mu.Unlock()
	return c.state.runCount
}

// RunDLA runs one DLA/R3 configuration on a prepared workload, on the
// worker pool.
func (c *Context) RunDLA(p *Prepared, opt core.Options) *core.Results {
	return c.RunDLAAt(p, opt, c.Budget)
}

// RunDLAAt is RunDLA at an explicit budget. The recycle trial window
// scales with the budget (each version needs to run well past the BOQ
// depth, but six trials must not eat a short run). Runs poll the
// Context's cancellation cooperatively, so a canceled Context aborts
// even mid-simulation.
func (c *Context) RunDLAAt(p *Prepared, opt core.Options, budget uint64) *core.Results {
	if opt.TrialInsts == 0 {
		t := budget / 20
		if t < 1500 {
			t = 1500
		}
		if t > 12000 {
			t = 12000
		}
		opt.TrialInsts = t
	}
	var r *core.Results
	c.Do(func() {
		sys := core.NewSystemWithMemory(p.Prog, p.Image().Fork(), p.Set, p.Prof, opt)
		res, err := sys.RunContext(c.ctx, budget)
		if err != nil {
			panic(canceled{err})
		}
		r = res
	})
	return r
}

// RunBaseline runs the plain single-core baseline (optionally with BOP).
func (c *Context) RunBaseline(p *Prepared, bop bool) *core.Results {
	return c.RunDLA(p, core.Options{Disable: true, WithBOP: bop})
}

// BaselineMetricsOn runs a standalone baseline core with an arbitrary
// pipeline config (used by the fetch-buffer and SMT studies).
func BaselineMetricsOn(p *Prepared, cfg pipeline.Config, budget uint64, bop bool) (*pipeline.Metrics, *memsys.Private) {
	mach := emu.NewMachine(p.Prog, p.Image().Fork())
	feed := &pipeline.MachineFeeder{M: mach}
	dir := &pipeline.TageSource{P: branch.NewPredictor(branch.DefaultConfig())}
	coreC, priv, _ := memsys.NewBaselineCore(cfg, feed, dir, memsys.Options{WithBOP: bop})
	m := coreC.Run(budget)
	return m, priv
}

// SuiteNames lists workload names of a suite (or all for "all").
func SuiteNames(suite string) []string {
	var out []string
	if suite == "all" {
		for _, w := range workloads.All() {
			out = append(out, w.Name)
		}
		return out
	}
	for _, w := range workloads.BySuite(suite) {
		out = append(out, w.Name)
	}
	return out
}
