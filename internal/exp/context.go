// Package exp is the experiment harness: one driver per table and figure
// of the paper's evaluation (see DESIGN.md §4 for the index). Every
// driver renders its result as text mirroring the original artifact's
// rows/series.
package exp

import (
	"fmt"

	"r3dla/internal/branch"
	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
	"r3dla/internal/memsys"
	"r3dla/internal/pipeline"
	"r3dla/internal/workloads"
)

// Seeds for the training and evaluation inputs (the paper profiles on
// training inputs and evaluates on reference inputs).
const (
	TrainSeed = 1
	EvalSeed  = 2
)

// Context carries budgets and memoizes per-workload preparation
// (profiling + skeleton generation) across experiments.
type Context struct {
	Budget      uint64 // evaluation budget (committed MT instructions)
	TrainBudget uint64
	Verbose     bool

	prepared map[string]*Prepared
	runs     map[string]*core.Results
}

// NewContext returns a Context with the given evaluation budget (0 means
// the default 150k instructions).
func NewContext(budget uint64) *Context {
	if budget == 0 {
		budget = 150_000
	}
	return &Context{
		Budget:      budget,
		TrainBudget: budget / 2,
		prepared:    make(map[string]*Prepared),
		runs:        make(map[string]*core.Results),
	}
}

// RunCached memoizes a DLA run under an explicit configuration key, so
// experiments sharing the standard configurations (BL/DLA/R3…) reuse each
// other's runs.
func (c *Context) RunCached(key string, p *Prepared, opt core.Options) *core.Results {
	k := p.W.Name + "/" + key
	if r, ok := c.runs[k]; ok {
		return r
	}
	r := c.RunDLA(p, opt)
	c.runs[k] = r
	return r
}

// Prepared is a workload ready to run: evaluation program + profile and
// skeletons from the training input.
type Prepared struct {
	W     *workloads.Workload
	Prog  *isa.Program
	Setup func(*emu.Memory)
	Prof  *core.Profile
	Set   *core.Set
}

// Prep profiles and generates skeletons for one workload (memoized).
func (c *Context) Prep(name string) *Prepared {
	if p, ok := c.prepared[name]; ok {
		return p
	}
	w := workloads.ByName(name)
	if w == nil {
		panic(fmt.Sprintf("exp: unknown workload %q", name))
	}
	trainProg, trainSetup := w.Build(TrainSeed)
	prof := core.Collect(trainProg, trainSetup, c.TrainBudget)
	evalProg, evalSetup := w.Build(EvalSeed)
	set := core.Generate(evalProg, prof)
	p := &Prepared{W: w, Prog: evalProg, Setup: evalSetup, Prof: prof, Set: set}
	c.prepared[name] = p
	return p
}

// RunDLA runs one DLA/R3 configuration on a prepared workload. The
// recycle trial window scales with the budget (each version needs to run
// well past the BOQ depth, but six trials must not eat a short run).
func (c *Context) RunDLA(p *Prepared, opt core.Options) *core.Results {
	if opt.TrialInsts == 0 {
		t := c.Budget / 20
		if t < 1500 {
			t = 1500
		}
		if t > 12000 {
			t = 12000
		}
		opt.TrialInsts = t
	}
	sys := core.NewSystem(p.Prog, p.Setup, p.Set, p.Prof, opt)
	return sys.Run(c.Budget)
}

// RunBaseline runs the plain single-core baseline (optionally with BOP).
func (c *Context) RunBaseline(p *Prepared, bop bool) *core.Results {
	return c.RunDLA(p, core.Options{Disable: true, WithBOP: bop})
}

// BaselineMetricsOn runs a standalone baseline core with an arbitrary
// pipeline config (used by the fetch-buffer and SMT studies).
func BaselineMetricsOn(p *Prepared, cfg pipeline.Config, budget uint64, bop bool) (*pipeline.Metrics, *memsys.Private) {
	mem := emu.NewMemory()
	p.Setup(mem)
	mach := emu.NewMachine(p.Prog, mem)
	feed := &pipeline.MachineFeeder{M: mach}
	dir := &pipeline.TageSource{P: branch.NewPredictor(branch.DefaultConfig())}
	coreC, priv, _ := memsys.NewBaselineCore(cfg, feed, dir, memsys.Options{WithBOP: bop})
	m := coreC.Run(budget)
	return m, priv
}

// SuiteNames lists workload names of a suite (or all for "all").
func SuiteNames(suite string) []string {
	var out []string
	if suite == "all" {
		for _, w := range workloads.All() {
			out = append(out, w.Name)
		}
		return out
	}
	for _, w := range workloads.BySuite(suite) {
		out = append(out, w.Name)
	}
	return out
}
