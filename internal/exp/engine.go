package exp

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Result is the outcome of running one experiment through Run.
type Result struct {
	ID      string
	Title   string
	Report  *Report // nil when Err is set
	Err     error
	Elapsed time.Duration
}

// RunOrdered fans out do(i) for i in [0, n) — one goroutine per index —
// and delivers results in index order: onResult (when non-nil) receives
// each result as soon as its ordered prefix completes, so a live consumer
// still sees deterministic output regardless of scheduling. It is the
// scheduling core of Run, shared with the fleet's distributed experiment
// dispatch, where "do" is an HTTP request instead of a local driver.
func RunOrdered(n int, do func(i int) Result, onResult func(Result)) []Result {
	results := make([]Result, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := make([]bool, n)
	next := 0
	finish := func(i int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = r
		done[i] = true
		for next < n && done[next] {
			if onResult != nil {
				onResult(results[next])
			}
			next++
		}
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			finish(i, do(i))
		}(i)
	}
	wg.Wait()
	return results
}

// Run executes the named experiments on c's worker pool and returns their
// results in the order of ids. Experiments run concurrently, sharing
// prepared workloads and memoized configuration runs through c, but all
// compute is dispatched through the bounded pool so total parallelism
// respects c.Jobs; results are deterministic regardless of scheduling.
//
// onResult, when non-nil, is invoked with each result in id order as soon
// as that ordered prefix completes (a live consumer that still sees
// deterministic output). A panicking experiment is reported as that
// result's Err; cancellation of ctx aborts outstanding work and yields
// ctx's error for every unfinished experiment.
func Run(ctx context.Context, c *Context, ids []string, onResult func(Result)) ([]Result, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("exp: unknown experiment %q", id)
		}
		exps[i] = e
	}
	cc := c
	if ctx != nil {
		cc = c.WithCancel(ctx)
	}

	results := RunOrdered(len(exps), func(i int) Result {
		e := exps[i]
		start := time.Now()
		r := Result{ID: e.ID, Title: e.Title}
		func() {
			defer func() {
				if p := recover(); p != nil {
					r.Report = nil
					if cp, ok := p.(canceled); ok {
						r.Err = cp.err
					} else {
						r.Err = fmt.Errorf("exp %s panicked: %v", e.ID, p)
					}
				}
			}()
			cc.checkCanceled()
			rep := e.Run(cc)
			rep.ID, rep.Title = e.ID, e.Title
			r.Report = rep
		}()
		r.Elapsed = time.Since(start)
		cc.emit(Event{Stage: "exp", Exp: e.ID, Elapsed: r.Elapsed})
		return r
	}, onResult)

	for _, r := range results {
		if r.Err != nil && ctx != nil && ctx.Err() != nil {
			return results, ctx.Err()
		}
	}
	return results, nil
}
