package exp

import (
	"fmt"
	"strings"

	"r3dla/internal/analytic"
	"r3dla/internal/core"
	"r3dla/internal/limit"
	"r3dla/internal/pipeline"
	"r3dla/internal/stats"
	"r3dla/internal/workloads"
)

// Fig1 regenerates Fig. 1: implicit parallelism of the spec-like
// workloads with moving windows of 128/512/2048, ideal vs real supply.
func Fig1(c *Context) string {
	windows := []int{128, 512, 2048}
	t := &stats.Table{
		Title: "Fig. 1: implicit parallelism (IPC), ideal vs real supply",
		Header: []string{"bench",
			"ideal:128", "ideal:512", "ideal:2048",
			"real:128", "real:512", "real:2048"},
	}
	geo := make([][]float64, 6)
	for _, w := range workloads.BySuite("spec") {
		prog, setup := w.Build(EvalSeed)
		row := []string{w.Name}
		for i, real := range []bool{false, true} {
			for j, win := range windows {
				ipc := limit.IPC(prog, setup, limit.Config{
					Window: win, Real: real, Budget: c.Budget / 4,
				})
				row = append(row, fmt.Sprintf("%.2f", ipc))
				geo[i*3+j] = append(geo[i*3+j], ipc)
			}
		}
		t.AddRow(row...)
	}
	grow := []string{"gmean"}
	for _, g := range geo {
		grow = append(grow, fmt.Sprintf("%.2f", stats.Geomean(g)))
	}
	t.AddRow(grow...)
	return t.String()
}

// fbWorkload is the Fig. 5 case-study workload (the paper uses povray,
// the application with the most pronounced I-cache/trace-cache gap; our
// stand-in is the branchy recursive search gobmk, whose taken-branch
// breaks make the two supply mechanisms differ most).
const fbWorkload = "gobmk"

// measureSupplyDemand extracts the empirical supply and demand
// distributions of Appendix B: demand under a perfect frontend, supply
// under an infinite backend (with and without taken-branch fetch breaks
// to model a trace cache).
func measureSupplyDemand(c *Context, p *Prepared) (demand, supplyIC, supplyTC []float64) {
	run := func(mut func(*pipeline.Config)) *pipeline.Metrics {
		cfg := pipeline.DefaultConfig()
		cfg.FetchWidth = 16   // Appendix B case study: 16-wide I-cache fetch
		cfg.FetchBufSize = 64 // don't let the buffer cap the supply measure
		mut(&cfg)
		m, _ := BaselineMetricsOn(p, cfg, c.Budget/4, true)
		return m
	}
	d := run(func(cfg *pipeline.Config) { cfg.PerfectFrontend = true; cfg.TrackDemand = true })
	s1 := run(func(cfg *pipeline.Config) { cfg.InfiniteBackend = true; cfg.TrackSupply = true })
	s2 := run(func(cfg *pipeline.Config) {
		cfg.InfiniteBackend = true
		cfg.TrackSupply = true
		cfg.NoFetchBreakOnTaken = true
	})
	return d.Demand.Dist(), s1.Supply.Dist(), s2.Supply.Dist()
}

// Fig5 regenerates Fig. 5: the analytic queue-length distributions for
// capacities 8 and 32 under I-cache and trace-cache supply (a), and the
// expected fetch bubbles as capacity varies (b).
func Fig5(c *Context) string {
	p := c.Prep(fbWorkload)
	demand, supplyIC, supplyTC := measureSupplyDemand(c, p)
	mIC := analytic.NewModel(demand, supplyIC)
	mTC := analytic.NewModel(demand, supplyTC)

	var b strings.Builder
	fmt.Fprintf(&b, "== Fig. 5-a: P(queue length), workload %s ==\n", fbWorkload)
	fmt.Fprintf(&b, "%-6s %-14s %-14s %-14s %-14s\n", "len",
		"icache cap8", "icache cap32", "trace cap8", "trace cap32")
	q8, q32 := mIC.QueueDist(8), mIC.QueueDist(32)
	t8, t32 := mTC.QueueDist(8), mTC.QueueDist(32)
	for i := 0; i <= 32; i++ {
		get := func(q []float64) string {
			if i < len(q) {
				return fmt.Sprintf("%.4f", q[i])
			}
			return "-"
		}
		fmt.Fprintf(&b, "%-6d %-14s %-14s %-14s %-14s\n", i, get(q8), get(q32), get(t8), get(t32))
	}
	b.WriteString("\n== Fig. 5-b: expected fetch bubbles vs capacity ==\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s\n", "capacity", "I-cache", "Trace-cache")
	for cap := 8; cap <= 32; cap += 4 {
		fmt.Fprintf(&b, "%-10d %-12.3f %-12.3f\n", cap, mIC.ExpectedBubbles(cap), mTC.ExpectedBubbles(cap))
	}
	return b.String()
}

// Fig14 regenerates Fig. 14: theoretical vs simulated fetch-buffer
// queue-length distribution.
func Fig14(c *Context) string {
	p := c.Prep(fbWorkload)
	demand, supplyIC, _ := measureSupplyDemand(c, p)
	model := analytic.NewModel(demand, supplyIC)
	theory := model.QueueDist(32)

	cfg := pipeline.DefaultConfig()
	cfg.FetchWidth = 16
	cfg.FetchBufSize = 32
	cfg.TrackFetchQOcc = true
	m, _ := BaselineMetricsOn(p, cfg, c.Budget/4, true)
	sim := m.FetchQOcc.Dist()

	var b strings.Builder
	fmt.Fprintf(&b, "== Fig. 14: fetch buffer occupancy, theory vs simulation (%s) ==\n", fbWorkload)
	fmt.Fprintf(&b, "%-6s %-12s %-12s\n", "len", "theoretical", "simulated")
	for i := 0; i <= 32; i++ {
		tv, sv := 0.0, 0.0
		if i < len(theory) {
			tv = theory[i]
		}
		if i < len(sim) {
			sv = sim[i]
		}
		fmt.Fprintf(&b, "%-6d %-12.4f %-12.4f\n", i, tv, sv)
	}
	return b.String()
}

// Fig15 regenerates Fig. 15: the distribution of skeleton versions chosen
// by online recycling, per spec workload.
func Fig15(c *Context) string {
	t := &stats.Table{
		Title:  "Fig. 15: fraction of instructions under each skeleton version (online recycle)",
		Header: []string{"bench", "a", "b", "c", "d", "e", "f"},
	}
	for _, w := range workloads.BySuite("spec") {
		p := c.Prep(w.Name)
		r := c.RunCached("R3-DLA", p, core.R3Options())
		var total uint64
		for _, u := range r.SkeletonUse {
			total += u
		}
		row := []string{w.Name}
		for _, u := range r.SkeletonUse {
			f := 0.0
			if total > 0 {
				f = float64(u) / float64(total)
			}
			row = append(row, fmt.Sprintf("%.2f", f))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Table1 prints the modeled system configuration.
func Table1(c *Context) string {
	cfg := pipeline.DefaultConfig()
	var b strings.Builder
	b.WriteString("== Table I: system configuration (as modeled) ==\n")
	fmt.Fprintf(&b, "Core: %d-wide OoO, %d ROB, %d LSQ, %dINT/%dFP PRF, %dINT/%dMEM/%dFP FUs\n",
		cfg.DecodeWidth, cfg.ROB, cfg.LSQ, cfg.IntPRF, cfg.FPPRF, cfg.IntFUs, cfg.MemFUs, cfg.FPFUs)
	fmt.Fprintf(&b, "Frontend: fetch %d/cycle, fetch buffer %d, redirect penalty %d\n",
		cfg.FetchWidth, cfg.FetchBufSize, cfg.RedirectPenalty)
	fmt.Fprintf(&b, "Predictor: TAGE-lite + %d-entry BTB + %d-entry RAS\n", 1<<cfg.BTBBits, cfg.RASEntries)
	b.WriteString("L1: 32KB I + 32KB D, 4-way, 64B, 3 cyc; L2: 256KB 8-way 9 cyc (+BOP); L3: 2MB 16-way 36 cyc\n")
	b.WriteString("DRAM: DDR3-1600-like, 2 channels, 16 banks/chan, open row\n")
	b.WriteString("DLA: BOQ 512, FQ 128, VPT 32, T1 16 entries, LCT 16 entries, reboot 64 cyc\n")
	return b.String()
}
