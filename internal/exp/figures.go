package exp

import (
	"fmt"

	"r3dla/internal/analytic"
	"r3dla/internal/core"
	"r3dla/internal/limit"
	"r3dla/internal/pipeline"
	"r3dla/internal/stats"
	"r3dla/internal/workloads"
)

// Fig1 regenerates Fig. 1: implicit parallelism of the spec-like
// workloads with moving windows of 128/512/2048, ideal vs real supply.
func Fig1(c *Context) *Report {
	windows := []int{128, 512, 2048}
	t := &stats.Table{
		Title: "Fig. 1: implicit parallelism (IPC), ideal vs real supply",
		Header: []string{"bench",
			"ideal:128", "ideal:512", "ideal:2048",
			"real:128", "real:512", "real:2048"},
	}
	suite := workloads.BySuite("spec")
	ipcs := make([][6]float64, len(suite))
	c.ParallelEach(len(suite), func(wi int) {
		c.Do(func() {
			prog, setup := suite[wi].Build(EvalSeed)
			for i, real := range []bool{false, true} {
				for j, win := range windows {
					ipcs[wi][i*3+j] = limit.IPC(prog, setup, limit.Config{
						Window: win, Real: real, Budget: c.Budget / 4,
					})
				}
			}
		})
	})
	geo := make([][]float64, 6)
	for wi, w := range suite {
		row := []string{w.Name}
		for k, ipc := range ipcs[wi] {
			row = append(row, fmt.Sprintf("%.2f", ipc))
			geo[k] = append(geo[k], ipc)
		}
		t.AddRow(row...)
	}
	grow := []string{"gmean"}
	for _, g := range geo {
		grow = append(grow, fmt.Sprintf("%.2f", stats.Geomean(g)))
	}
	t.AddRow(grow...)
	return NewReport(t)
}

// fbWorkload is the Fig. 5 case-study workload (the paper uses povray,
// the application with the most pronounced I-cache/trace-cache gap; our
// stand-in is the branchy recursive search gobmk, whose taken-branch
// breaks make the two supply mechanisms differ most).
const fbWorkload = "gobmk"

// measureSupplyDemand extracts the empirical supply and demand
// distributions of Appendix B at the figures' standard measurement
// budget (a quarter of the evaluation budget).
func measureSupplyDemand(c *Context, p *Prepared) (demand, supplyIC, supplyTC []float64) {
	return MeasureSupplyDemand(c, p, c.Budget/4)
}

// MeasureSupplyDemand extracts the empirical supply and demand
// distributions of Appendix B: demand under a perfect frontend, supply
// under an infinite backend (with and without taken-branch fetch breaks
// to model a trace cache). The three measurement runs are independent and
// dispatched to the worker pool. The tier package's calibrator runs this
// at its own (short) calibration budget, so the budget is a parameter.
func MeasureSupplyDemand(c *Context, p *Prepared, budget uint64) (demand, supplyIC, supplyTC []float64) {
	muts := []func(*pipeline.Config){
		func(cfg *pipeline.Config) { cfg.PerfectFrontend = true; cfg.TrackDemand = true },
		func(cfg *pipeline.Config) { cfg.InfiniteBackend = true; cfg.TrackSupply = true },
		func(cfg *pipeline.Config) {
			cfg.InfiniteBackend = true
			cfg.TrackSupply = true
			cfg.NoFetchBreakOnTaken = true
		},
	}
	ms := make([]*pipeline.Metrics, len(muts))
	c.ParallelEach(len(muts), func(i int) {
		c.Do(func() {
			cfg := pipeline.DefaultConfig()
			cfg.FetchWidth = 16   // Appendix B case study: 16-wide I-cache fetch
			cfg.FetchBufSize = 64 // don't let the buffer cap the supply measure
			muts[i](&cfg)
			ms[i], _ = BaselineMetricsOn(p, cfg, budget, true)
		})
	})
	return ms[0].Demand.Dist(), ms[1].Supply.Dist(), ms[2].Supply.Dist()
}

// mustModel builds the Appendix B model from measured histograms.
// Histogram distributions are non-negative by construction, so a
// rejection here is a programming error, not a data condition.
func mustModel(demand, supply []float64) *analytic.Model {
	m, err := analytic.NewModel(demand, supply)
	if err != nil {
		panic(fmt.Sprintf("exp: measured distributions rejected: %v", err))
	}
	return m
}

// Fig5 regenerates Fig. 5: the analytic queue-length distributions for
// capacities 8 and 32 under I-cache and trace-cache supply (a), and the
// expected fetch bubbles as capacity varies (b).
func Fig5(c *Context) *Report {
	p := c.Prep(fbWorkload)
	demand, supplyIC, supplyTC := measureSupplyDemand(c, p)
	mIC := mustModel(demand, supplyIC)
	mTC := mustModel(demand, supplyTC)

	ta := &stats.Table{
		Title:  fmt.Sprintf("Fig. 5-a: P(queue length), workload %s", fbWorkload),
		Header: []string{"len", "icache cap8", "icache cap32", "trace cap8", "trace cap32"},
	}
	q8, q32 := mIC.QueueDist(8), mIC.QueueDist(32)
	t8, t32 := mTC.QueueDist(8), mTC.QueueDist(32)
	for i := 0; i <= 32; i++ {
		get := func(q []float64) string {
			if i < len(q) {
				return fmt.Sprintf("%.4f", q[i])
			}
			return "-"
		}
		ta.AddRow(fmt.Sprint(i), get(q8), get(q32), get(t8), get(t32))
	}
	tb := &stats.Table{
		Title:  "Fig. 5-b: expected fetch bubbles vs capacity",
		Header: []string{"capacity", "I-cache", "Trace-cache"},
	}
	for cap := 8; cap <= 32; cap += 4 {
		tb.AddRow(fmt.Sprint(cap),
			fmt.Sprintf("%.3f", mIC.ExpectedBubbles(cap)),
			fmt.Sprintf("%.3f", mTC.ExpectedBubbles(cap)))
	}
	return NewReport(ta, tb)
}

// Fig14 regenerates Fig. 14: theoretical vs simulated fetch-buffer
// queue-length distribution.
func Fig14(c *Context) *Report {
	p := c.Prep(fbWorkload)
	demand, supplyIC, _ := measureSupplyDemand(c, p)
	model := mustModel(demand, supplyIC)
	theory := model.QueueDist(32)

	var sim []float64
	c.Do(func() {
		cfg := pipeline.DefaultConfig()
		cfg.FetchWidth = 16
		cfg.FetchBufSize = 32
		cfg.TrackFetchQOcc = true
		m, _ := BaselineMetricsOn(p, cfg, c.Budget/4, true)
		sim = m.FetchQOcc.Dist()
	})

	t := &stats.Table{
		Title:  fmt.Sprintf("Fig. 14: fetch buffer occupancy, theory vs simulation (%s)", fbWorkload),
		Header: []string{"len", "theoretical", "simulated"},
	}
	for i := 0; i <= 32; i++ {
		tv, sv := 0.0, 0.0
		if i < len(theory) {
			tv = theory[i]
		}
		if i < len(sim) {
			sv = sim[i]
		}
		t.AddRow(fmt.Sprint(i), fmt.Sprintf("%.4f", tv), fmt.Sprintf("%.4f", sv))
	}
	return NewReport(t)
}

// Fig15 regenerates Fig. 15: the distribution of skeleton versions chosen
// by online recycling, per spec workload.
func Fig15(c *Context) *Report {
	t := &stats.Table{
		Title:  "Fig. 15: fraction of instructions under each skeleton version (online recycle)",
		Header: []string{"bench", "a", "b", "c", "d", "e", "f"},
	}
	suite := workloads.BySuite("spec")
	use := make([][]uint64, len(suite))
	c.ParallelEach(len(suite), func(i int) {
		p := c.Prep(suite[i].Name)
		use[i] = c.RunCached("R3-DLA", p, core.R3Options()).SkeletonUse
	})
	for i, w := range suite {
		var total uint64
		for _, u := range use[i] {
			total += u
		}
		row := []string{w.Name}
		for _, u := range use[i] {
			f := 0.0
			if total > 0 {
				f = float64(u) / float64(total)
			}
			row = append(row, fmt.Sprintf("%.2f", f))
		}
		t.AddRow(row...)
	}
	return NewReport(t)
}

// Table1 prints the modeled system configuration.
func Table1(c *Context) *Report {
	cfg := pipeline.DefaultConfig()
	t := &stats.Table{
		Title:  "Table I: system configuration (as modeled)",
		Header: []string{"unit", "configuration"},
	}
	t.AddRow("Core", fmt.Sprintf("%d-wide OoO, %d ROB, %d LSQ, %dINT/%dFP PRF, %dINT/%dMEM/%dFP FUs",
		cfg.DecodeWidth, cfg.ROB, cfg.LSQ, cfg.IntPRF, cfg.FPPRF, cfg.IntFUs, cfg.MemFUs, cfg.FPFUs))
	t.AddRow("Frontend", fmt.Sprintf("fetch %d/cycle, fetch buffer %d, redirect penalty %d",
		cfg.FetchWidth, cfg.FetchBufSize, cfg.RedirectPenalty))
	t.AddRow("Predictor", fmt.Sprintf("TAGE-lite + %d-entry BTB + %d-entry RAS", 1<<cfg.BTBBits, cfg.RASEntries))
	t.AddRow("Caches", "L1: 32KB I + 32KB D, 4-way, 64B, 3 cyc; L2: 256KB 8-way 9 cyc (+BOP); L3: 2MB 16-way 36 cyc")
	t.AddRow("DRAM", "DDR3-1600-like, 2 channels, 16 banks/chan, open row")
	t.AddRow("DLA", "BOQ 512, FQ 128, VPT 32, T1 16 entries, LCT 16 entries, reboot 64 cyc")
	return NewReport(t)
}
