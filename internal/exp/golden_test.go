package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"r3dla/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenReport is a hand-built representative report: two tables (so the
// between-table separators are covered), a suite-summary shape and a
// per-bench shape, cells with the brackets/percent/dash characters the
// real drivers emit.
func goldenReport() *Report {
	t1 := &stats.Table{
		Title:  "Fig. 9-a: speedup over BL+BOP (geomean [min-max])",
		Header: []string{"config", "spec", "crono", "star", "npb", "all"},
	}
	t1.AddRow("BL (noPF)", "0.81 [0.60-0.97]", "0.92 [0.85-0.99]", "0.88 [0.70-1.00]", "0.86 [0.74-0.95]", "0.86 [0.60-1.00]")
	t1.AddRow("DLA", "1.21 [0.99-1.63]", "1.18 [1.07-1.32]", "1.10 [1.00-1.29]", "1.16 [1.04-1.36]", "1.16 [0.99-1.63]")
	t1.AddRow("R3-DLA", "1.29 [1.01-1.87]", "1.24 [1.10-1.41]", "1.14 [1.01-1.35]", "1.23 [1.08-1.47]", "1.23 [1.01-1.87]")

	t2 := &stats.Table{
		Title:  "Fig. 15: fraction of instructions under each skeleton version (online recycle)",
		Header: []string{"bench", "a", "b", "c", "d", "e", "f"},
	}
	t2.AddRow("mcf", "0.42", "0.13", "0.00", "0.45", "0.00", "0.00")
	t2.AddRow("libq", "1.00", "0.00", "0.00", "0.00", "0.00", "0.00")
	t2.AddRow("gobmk", "0.25", "0.25", "0.25", "0.00", "0.25", "-")

	rep := NewReport(t1, t2)
	rep.ID, rep.Title = "fig9a", "Fig. 9-a: bottom-line speedups per suite"
	return rep
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/exp -run TestReportGolden -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// TestReportGoldenText pins the fixed-width text rendering the CLI
// prints to stdout.
func TestReportGoldenText(t *testing.T) {
	checkGolden(t, "report.txt", []byte(goldenReport().String()))
}

// TestReportGoldenJSON pins the WriteJSON document — the exact bytes
// `r3dla -format json` writes and the r3dlad service serves from
// POST /v1/experiments/{id}.
func TestReportGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", buf.Bytes())
}

// TestReportGoldenCSV pins the RFC-4180 rendering of `-format csv`.
func TestReportGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.csv", buf.Bytes())
}
