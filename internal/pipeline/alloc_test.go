package pipeline

import (
	"testing"

	"r3dla/internal/emu"
)

// The per-cycle path (commit → issue → dispatch → fetch) must be
// allocation-free in steady state: one heap object per cycle — which is
// what the escaping fetch-hint local used to cost — dominates the whole
// simulator's allocation profile (see DESIGN.md §8). The core is warmed
// up first so one-time growth (predictor tables, cold cache fills) is
// excluded. A TargetHint hook is installed even though this program has
// no indirect branches: escape analysis is static, so if fetch ever goes
// back to passing &local to the hook, every fetched instruction allocates
// whether or not the hook fires — exactly what this test must catch.
func TestTickSteadyStateAllocFree(t *testing.T) {
	c := newTestCore(independentALUProgram(10_000_000), 80, nil)
	c.Hooks.TargetHint = func(d *emu.DynInst) (int, bool) { return 0, false }
	c.Run(20_000) // warm-up: budget stops the run long before the program halts
	if c.Done() {
		t.Fatal("warm-up ran the program to completion; steady-state measurement needs remaining work")
	}
	allocs := testing.AllocsPerRun(20_000, func() { c.Tick() })
	if allocs != 0 {
		t.Errorf("steady-state Tick allocates %.2f objects per cycle, want 0", allocs)
	}
}
