package pipeline

import (
	"math/rand"
	"testing"

	"r3dla/internal/branch"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

// randomProgram generates a structurally-valid random program: straight-
// line ALU/memory work with bounded loops (always terminating via a
// counter), exercising the pipeline against arbitrary dependency shapes.
func randomProgram(seed int64) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("rand")
	b.Li(1, int64(rng.Intn(200)+50)) // loop counter
	b.Li(2, 1<<20)                   // base address
	b.Label("loop")
	n := rng.Intn(30) + 5
	for i := 0; i < n; i++ {
		rd := uint8(rng.Intn(12) + 3)
		rs1 := uint8(rng.Intn(12) + 3)
		rs2 := uint8(rng.Intn(12) + 3)
		switch rng.Intn(8) {
		case 0:
			b.R(isa.ADD, rd, rs1, rs2)
		case 1:
			b.R(isa.MUL, rd, rs1, rs2)
		case 2:
			b.I(isa.ADDI, rd, rs1, int64(rng.Intn(100)))
		case 3:
			b.R(isa.XOR, rd, rs1, rs2)
		case 4:
			b.Ld(rd, 2, int64(rng.Intn(64)*8))
		case 5:
			b.St(rs1, 2, int64(rng.Intn(64)*8))
		case 6:
			b.I(isa.SHLI, rd, rs1, int64(rng.Intn(8)))
		case 7:
			b.R(isa.SUB, rd, rs1, rs2)
		}
	}
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "loop")
	b.Halt()
	return b.Program()
}

// Property: for any random program, the pipeline commits exactly the
// functional instruction stream (same count, in order), never deadlocks,
// and IPC stays within physical bounds.
func TestPipelineCommitsFunctionalStream(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		prog := randomProgram(seed)

		// Functional reference count.
		ref := emu.NewMachine(prog, emu.NewMemory())
		refN := ref.Run(1_000_000, nil)

		c := newTestCore(prog, 80, nil)
		var commits uint64
		var lastSeq uint64
		ordered := true
		c.Hooks.OnCommit = func(d *emu.DynInst, now uint64) {
			if commits > 0 && d.Seq != lastSeq+1 {
				ordered = false
			}
			lastSeq = d.Seq
			commits++
		}
		m := c.Run(0)
		if m.Deadlocked {
			t.Fatalf("seed %d: deadlock", seed)
		}
		if commits != refN {
			t.Fatalf("seed %d: committed %d, functional %d", seed, commits, refN)
		}
		if !ordered {
			t.Fatalf("seed %d: out-of-order commit", seed)
		}
		if ipc := m.IPC(); ipc > float64(c.Cfg.CommitWidth) {
			t.Fatalf("seed %d: IPC %.2f exceeds commit width", seed, ipc)
		}
	}
}

// Property: issued count never exceeds dispatched, committed never
// exceeds issued+skipped, and loads+stores are consistent.
func TestPipelineCountInvariants(t *testing.T) {
	for seed := int64(30); seed <= 40; seed++ {
		c := newTestCore(randomProgram(seed), 120, nil)
		m := c.Run(0)
		if m.Issued > m.Dispatched {
			t.Fatalf("issued %d > dispatched %d", m.Issued, m.Dispatched)
		}
		if m.Committed > m.Issued+m.Skipped {
			t.Fatalf("committed %d > issued+skipped %d", m.Committed, m.Issued+m.Skipped)
		}
		if m.Dispatched > m.Fetched {
			t.Fatalf("dispatched %d > fetched %d", m.Dispatched, m.Fetched)
		}
	}
}

// Property: the same program on the same seed is cycle-deterministic.
func TestPipelineDeterminism(t *testing.T) {
	prog := randomProgram(99)
	run := func() (uint64, uint64) {
		c := newTestCore(prog, 100, nil)
		m := c.Run(0)
		return m.Cycles, m.Committed
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, n1, c2, n2)
	}
}

// Property: widening the machine never slows it down on random programs.
func TestWiderCoreNotSlower(t *testing.T) {
	for seed := int64(50); seed <= 55; seed++ {
		prog := randomProgram(seed)
		narrow := newTestCore(prog, 100, func(c *Config) {
			c.DecodeWidth, c.IssueWidth, c.CommitWidth = 2, 2, 2
			c.IntFUs, c.MemFUs = 2, 1
		})
		wideC := newTestCore(prog, 100, func(c *Config) { *c = WideConfig() })
		mn, mw := narrow.Run(0), wideC.Run(0)
		if mw.Cycles > mn.Cycles+mn.Cycles/10 {
			t.Fatalf("seed %d: wide core slower (%d vs %d cycles)", seed, mw.Cycles, mn.Cycles)
		}
	}
}

// Property: the SMT half-core configs halve the wide core's resources.
func TestHalfConfigIsHalf(t *testing.T) {
	w, h := WideConfig(), HalfConfig()
	if h.ROB*2 != w.ROB || h.IssueWidth*2 != w.IssueWidth || h.IntFUs*2 != w.IntFUs {
		t.Fatalf("half config not half: %+v vs %+v", h, w)
	}
}

// TAGE direction source must behave identically through the interface.
func TestTageSourceMatchesPredictor(t *testing.T) {
	p1 := branch.NewPredictor(branch.DefaultConfig())
	p2 := branch.NewPredictor(branch.DefaultConfig())
	src := &TageSource{P: p2}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		pc := rng.Intn(64) * 4
		actual := rng.Intn(3) > 0
		d1 := p1.Predict(pc)
		p1.Update(pc, actual)
		d2, ok := src.PredictAndTrain(pc, actual, uint64(i))
		if !ok || d1 != d2 {
			t.Fatalf("divergence at %d: %v vs %v", i, d1, d2)
		}
	}
}
