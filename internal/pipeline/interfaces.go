package pipeline

import (
	"r3dla/internal/branch"
	"r3dla/internal/emu"
	"r3dla/internal/stats"
)

// Feeder supplies the committed-path dynamic instruction stream. Peek
// returns the next instruction without consuming it (fetch may stall and
// retry); Advance consumes it.
type Feeder interface {
	Peek() (emu.DynInst, bool)
	Advance()
}

// MachineFeeder adapts an emu.Machine into a Feeder (functional execution
// happens at Peek — execute-at-fetch).
type MachineFeeder struct {
	M      *emu.Machine
	cur    emu.DynInst
	have   bool
	Budget uint64 // stop after this many instructions (0 = unlimited)
	fed    uint64
}

// Peek returns the next dynamic instruction.
func (f *MachineFeeder) Peek() (emu.DynInst, bool) {
	if f.have {
		return f.cur, true
	}
	if f.M.Halted || (f.Budget > 0 && f.fed >= f.Budget) {
		return emu.DynInst{}, false
	}
	f.cur = f.M.Step()
	f.have = true
	f.fed++
	return f.cur, true
}

// Advance consumes the peeked instruction.
func (f *MachineFeeder) Advance() { f.have = false }

// DirectionSource provides conditional-branch direction predictions.
// PredictAndTrain is called once per fetched conditional branch with the
// actual outcome (trace-driven discipline: the source trains immediately;
// the timing cost of a wrong prediction is charged at resolve). ok=false
// means no prediction is available this cycle and fetch must stall (the
// DLA Branch Outcome Queue does this when empty). now is the fetch cycle,
// used by the BOQ to release just-in-time prefetch hints on dequeue.
type DirectionSource interface {
	PredictAndTrain(pc int, actual bool, now uint64) (pred bool, ok bool)
}

// TageSource adapts the TAGE predictor as a DirectionSource.
type TageSource struct {
	P *branch.Predictor
}

// PredictAndTrain predicts and immediately trains.
func (t *TageSource) PredictAndTrain(pc int, actual bool, now uint64) (bool, bool) {
	pred := t.P.Predict(pc)
	t.P.Update(pc, actual)
	return pred, true
}

// DirFunc adapts a function to the DirectionSource interface.
type DirFunc func(pc int, actual bool, now uint64) (bool, bool)

// PredictAndTrain calls the function.
func (f DirFunc) PredictAndTrain(pc int, actual bool, now uint64) (bool, bool) {
	return f(pc, actual, now)
}

// ValueSource provides value predictions (DLA value reuse). Lookup is
// consulted at dispatch for every value-producing instruction.
type ValueSource interface {
	Lookup(d *emu.DynInst) (val uint64, ok bool)
	// OnOutcome reports whether the prediction matched the architectural
	// value (confidence maintenance: the SIF drops offenders).
	OnOutcome(d *emu.DynInst, correct bool)
}

// Hooks are optional observation/intervention points used by the DLA
// layer, prefetch wiring, and profilers.
type Hooks struct {
	// OnCommit fires for every committed instruction.
	OnCommit func(d *emu.DynInst, now uint64)
	// OnBranchResolve fires when a control instruction executes.
	OnBranchResolve func(d *emu.DynInst, mispredicted bool, now uint64)
	// OnIssue fires when an instruction enters execution.
	OnIssue func(d *emu.DynInst, dispatchCycle, execDone uint64)
	// OnLoadAccess fires after a load's cache access with the supplying
	// level (1..4) and the completion cycle. Prefetchers attach here.
	OnLoadAccess func(d *emu.DynInst, level int, done, now uint64)
	// TargetHint supplies indirect-branch target predictions (FQ hints);
	// consulted before BTB/RAS.
	TargetHint func(d *emu.DynInst) (target int, ok bool)
	// FetchTag, if set, stamps every fetched instruction's Tag field
	// (the DLA layer uses it to record the BOQ epoch at fetch, aligning
	// FQ payloads with dynamic instances).
	FetchTag func() uint64
}

// Metrics aggregates everything a Core measures in one run.
type Metrics struct {
	Cycles     uint64
	Fetched    uint64
	Dispatched uint64
	Issued     uint64
	Skipped    uint64 // validations skipped by the decode scoreboard
	Committed  uint64

	CondBranches      uint64
	DirMispredicts    uint64
	TargetMispredicts uint64
	FetchStallBOQ     uint64 // cycles fetch stalled on an empty BOQ

	ValuePreds    uint64
	ValueMispreds uint64

	Loads, Stores uint64
	LoadLevelHits [5]uint64 // index = supplying level (1..4)

	FetchBubbles uint64 // decode slots the fetch unit failed to fill

	// Dispatch-to-execute latency accumulation (value-reuse targeting).
	DispExecSum   uint64
	DispExecCount uint64

	// Wrong-path activity estimates (for energy accounting; the timing
	// model charges bubbles instead of simulating wrong-path work).
	WrongPathDecoded  uint64
	WrongPathExecuted uint64

	Deadlocked bool

	FetchQOcc *stats.Histogram
	Supply    *stats.Histogram
	Demand    *stats.Histogram
}

// IPC reports committed instructions per cycle.
func (m *Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Committed) / float64(m.Cycles)
}

// BranchMPKI reports direction mispredicts per kilo committed instruction.
func (m *Metrics) BranchMPKI() float64 {
	if m.Committed == 0 {
		return 0
	}
	return float64(m.DirMispredicts) / float64(m.Committed) * 1000
}
