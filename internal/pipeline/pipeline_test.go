package pipeline

import (
	"testing"

	"r3dla/internal/branch"
	"r3dla/internal/cache"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

// fixedMem is a flat backing store standing in for L2+ in unit tests.
type fixedMem struct{ lat uint64 }

func (f *fixedMem) Access(addr uint64, write, prefetch bool, now uint64) cache.Result {
	return cache.Result{Done: now + f.lat, Level: 4}
}

func testCaches(memLat uint64) (*cache.Cache, *cache.Cache) {
	next := &fixedMem{lat: memLat}
	l1i := cache.New(cache.Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 4, BlockBits: 6, Latency: 3, MSHRs: 8}, next)
	l1d := cache.New(cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 4, BlockBits: 6, Latency: 3, MSHRs: 32}, next)
	return l1i, l1d
}

func newTestCore(p *isa.Program, memLat uint64, mut func(*Config)) *Core {
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	mem := emu.NewMemory()
	m := emu.NewMachine(p, mem)
	feed := &MachineFeeder{M: m}
	dir := &TageSource{P: branch.NewPredictor(branch.DefaultConfig())}
	l1i, l1d := testCaches(memLat)
	return New(cfg, feed, dir, l1i, l1d)
}

// independentALUProgram: long runs of independent ALU ops in a loop.
func independentALUProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("alu")
	b.Li(1, iters)
	b.Label("loop")
	for i := uint8(2); i < 14; i++ {
		b.I(isa.ADDI, i, i, 1)
	}
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "loop")
	b.Halt()
	return b.Program()
}

// serialChainProgram: every instruction depends on the previous one.
func serialChainProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("chain")
	b.Li(1, iters)
	b.Label("loop")
	for i := 0; i < 12; i++ {
		b.I(isa.ADDI, 2, 2, 1)
	}
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "loop")
	b.Halt()
	return b.Program()
}

func TestIndependentALUReachesWideIPC(t *testing.T) {
	c := newTestCore(independentALUProgram(2000), 100, nil)
	m := c.Run(0)
	if m.Deadlocked {
		t.Fatal("deadlock")
	}
	if ipc := m.IPC(); ipc < 2.5 {
		t.Fatalf("independent ALU IPC = %.2f, want >= 2.5 (4-wide)", ipc)
	}
}

func TestSerialChainIPCNearOne(t *testing.T) {
	c := newTestCore(serialChainProgram(2000), 100, nil)
	m := c.Run(0)
	ipc := m.IPC()
	if ipc > 1.35 || ipc < 0.55 {
		t.Fatalf("serial chain IPC = %.2f, want ~1", ipc)
	}
}

func TestDependencyOrderingRespected(t *testing.T) {
	// IPC of serial chain must be well below independent stream.
	ci := newTestCore(independentALUProgram(1000), 100, nil)
	cs := newTestCore(serialChainProgram(1000), 100, nil)
	mi, ms := ci.Run(0), cs.Run(0)
	if mi.IPC() <= ms.IPC()*1.5 {
		t.Fatalf("dataflow not limiting: independent %.2f vs serial %.2f", mi.IPC(), ms.IPC())
	}
}

// pointerChaseProgram walks a linked ring with a cache-busting stride.
func pointerChaseProgram(nodes, iters int64) *isa.Program {
	b := isa.NewBuilder("chase")
	// Build the ring in memory first: node i at addr base + i*4096,
	// next pointer stored at the node.
	base := int64(1 << 20)
	b.Li(1, nodes) // counter
	b.Li(2, base)  // current
	b.Li(5, 4096)  // stride
	b.Label("init")
	b.R(isa.ADD, 3, 2, 5) // next = cur + stride
	b.St(3, 2, 0)
	b.Mov(2, 3)
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "init")
	// Close the ring.
	b.Li(4, base)
	b.St(4, 2, 0)
	// Chase.
	b.Li(1, iters)
	b.Li(2, base)
	b.Label("chase")
	b.Ld(2, 2, 0)
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "chase")
	b.Halt()
	return b.Program()
}

func TestPointerChaseIsMemoryBound(t *testing.T) {
	c := newTestCore(pointerChaseProgram(512, 3000), 200, nil)
	m := c.Run(0)
	if ipc := m.IPC(); ipc > 0.5 {
		t.Fatalf("pointer chase IPC = %.2f, want < 0.5 (memory bound)", ipc)
	}
	if m.LoadLevelHits[4] == 0 {
		t.Fatal("no loads reached memory")
	}
}

func TestMemoryLatencySlowsExecution(t *testing.T) {
	fast := newTestCore(pointerChaseProgram(512, 2000), 20, nil)
	slow := newTestCore(pointerChaseProgram(512, 2000), 400, nil)
	mf, ms := fast.Run(0), slow.Run(0)
	if mf.IPC() <= ms.IPC() {
		t.Fatalf("latency has no effect: fast %.3f vs slow %.3f", mf.IPC(), ms.IPC())
	}
}

// randomBranchProgram has a data-dependent unpredictable branch (via a
// xorshift PRNG computed in registers).
func randomBranchProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("randbr")
	b.Li(1, iters)
	b.Li(2, 88172645463325252) // xorshift state
	b.Label("loop")
	// xorshift64
	b.I(isa.SHLI, 3, 2, 13)
	b.R(isa.XOR, 2, 2, 3)
	b.I(isa.SHRI, 3, 2, 7)
	b.R(isa.XOR, 2, 2, 3)
	b.I(isa.SHLI, 3, 2, 17)
	b.R(isa.XOR, 2, 2, 3)
	b.I(isa.ANDI, 4, 2, 1)
	b.Br(isa.BEQ, 4, isa.RegZero, "skip")
	b.I(isa.ADDI, 5, 5, 1)
	b.Label("skip")
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "loop")
	b.Halt()
	return b.Program()
}

func TestUnpredictableBranchesCostCycles(t *testing.T) {
	c := newTestCore(randomBranchProgram(3000), 50, nil)
	m := c.Run(0)
	if m.DirMispredicts < 1000 {
		t.Fatalf("expected ~1500 mispredicts, got %d", m.DirMispredicts)
	}
	if ipc := m.IPC(); ipc > 2.0 {
		t.Fatalf("random-branch IPC = %.2f, too high for mispredict-bound code", ipc)
	}
}

func TestPerfectDirectionSourceSpeedsUp(t *testing.T) {
	p := randomBranchProgram(3000)
	base := newTestCore(p, 50, nil)
	mb := base.Run(0)

	oracle := newTestCore(p, 50, nil)
	oracle.Dir = oracleDir{}
	mo := oracle.Run(0)
	if mo.DirMispredicts != 0 {
		t.Fatalf("oracle mispredicted %d times", mo.DirMispredicts)
	}
	if mo.IPC() <= mb.IPC()*1.1 {
		t.Fatalf("oracle direction source did not help: %.2f vs %.2f", mo.IPC(), mb.IPC())
	}
}

type oracleDir struct{}

func (oracleDir) PredictAndTrain(pc int, actual bool, now uint64) (bool, bool) {
	return actual, true
}

// stallDir returns ok=false for the first n queries (BOQ-empty modeling).
type stallDir struct {
	n     int
	inner DirectionSource
}

func (s *stallDir) PredictAndTrain(pc int, actual bool, now uint64) (bool, bool) {
	if s.n > 0 {
		s.n--
		return false, false
	}
	return s.inner.PredictAndTrain(pc, actual, now)
}

func TestEmptyDirectionSourceStallsFetchNotForever(t *testing.T) {
	p := independentALUProgram(500)
	c := newTestCore(p, 50, nil)
	c.Dir = &stallDir{n: 300, inner: oracleDir{}}
	m := c.Run(0)
	if m.Deadlocked {
		t.Fatal("deadlocked on temporarily-empty direction source")
	}
	if m.FetchStallBOQ == 0 {
		t.Fatal("BOQ stalls not counted")
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// store to A, immediately load A in a tight loop: loads must not pay
	// memory latency.
	b := isa.NewBuilder("fwd")
	b.Li(1, 2000)
	b.Li(2, 1<<20)
	b.Label("loop")
	b.St(1, 2, 0)
	b.Ld(3, 2, 0)
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "loop")
	b.Halt()
	c := newTestCore(b.Program(), 500, nil)
	m := c.Run(0)
	if ipc := m.IPC(); ipc < 0.8 {
		t.Fatalf("forwarding broken: IPC %.2f with 500-cycle memory", ipc)
	}
}

func TestROBLimitsMemoryParallelism(t *testing.T) {
	// Independent loads with a tiny ROB vs a big ROB.
	prog := func() *isa.Program {
		b := isa.NewBuilder("mlp")
		b.Li(1, 400)
		b.Li(2, 1<<20)
		b.Label("loop")
		for i := 0; i < 8; i++ {
			b.Ld(uint8(3+i), 2, int64(i*4096))
		}
		b.I(isa.ADDI, 2, 2, 64*1024)
		b.I(isa.ADDI, 1, 1, -1)
		b.Br(isa.BNE, 1, isa.RegZero, "loop")
		b.Halt()
		return b.Program()
	}
	small := newTestCore(prog(), 300, func(c *Config) { c.ROB = 16; c.LSQ = 8 })
	big := newTestCore(prog(), 300, nil)
	msmall, mbig := small.Run(0), big.Run(0)
	if mbig.IPC() <= msmall.IPC()*1.2 {
		t.Fatalf("ROB size has no effect on MLP: %0.3f vs %0.3f", mbig.IPC(), msmall.IPC())
	}
}

func TestCommitIsInOrderAndComplete(t *testing.T) {
	p := independentALUProgram(100)
	var lastSeq uint64
	first := true
	c := newTestCore(p, 50, nil)
	c.Hooks.OnCommit = func(d *emu.DynInst, now uint64) {
		if !first && d.Seq != lastSeq+1 {
			t.Fatalf("commit out of order: %d after %d", d.Seq, lastSeq)
		}
		lastSeq = d.Seq
		first = false
	}
	m := c.Run(0)
	if m.Committed == 0 || m.Committed != m.Dispatched {
		t.Fatalf("committed %d != dispatched %d", m.Committed, m.Dispatched)
	}
}

func TestValueSourceAcceleratesLongLatencyChain(t *testing.T) {
	// A chain through loads that miss: value prediction should help.
	p := pointerChaseProgram(512, 1500)
	base := newTestCore(p, 300, nil)
	mb := base.Run(0)

	vp := newTestCore(p, 300, nil)
	vp.Vals = perfectValues{}
	mv := vp.Run(0)
	if mv.ValuePreds == 0 {
		t.Fatal("value source never consulted")
	}
	if mv.IPC() <= mb.IPC()*1.3 {
		t.Fatalf("perfect value prediction did not accelerate chase: %.3f vs %.3f", mv.IPC(), mb.IPC())
	}
}

type perfectValues struct{}

func (perfectValues) Lookup(d *emu.DynInst) (uint64, bool) { return d.Val, true }
func (perfectValues) OnOutcome(d *emu.DynInst, ok bool)    {}

type wrongValues struct{ preds, wrong int }

func (w *wrongValues) Lookup(d *emu.DynInst) (uint64, bool) {
	w.preds++
	return d.Val + 1, true
}
func (w *wrongValues) OnOutcome(d *emu.DynInst, ok bool) {
	if !ok {
		w.wrong++
	}
}

func TestWrongValuePredictionsArePenalized(t *testing.T) {
	p := independentALUProgram(500)
	base := newTestCore(p, 50, nil)
	mb := base.Run(0)

	bad := newTestCore(p, 50, nil)
	w := &wrongValues{}
	bad.Vals = w
	mw := bad.Run(0)
	if w.wrong == 0 {
		t.Fatal("outcome callback not invoked")
	}
	if mw.IPC() >= mb.IPC() {
		t.Fatalf("wrong value predictions should hurt: %.3f vs %.3f", mw.IPC(), mb.IPC())
	}
}

func TestFetchBufferOccupancyTracked(t *testing.T) {
	c := newTestCore(independentALUProgram(500), 50, func(cfg *Config) { cfg.TrackFetchQOcc = true })
	m := c.Run(0)
	if m.FetchQOcc == nil || m.FetchQOcc.Total == 0 {
		t.Fatal("fetch queue occupancy not tracked")
	}
}

func TestInfiniteBackendCountsSupply(t *testing.T) {
	c := newTestCore(independentALUProgram(500), 50, func(cfg *Config) {
		cfg.InfiniteBackend = true
		cfg.TrackSupply = true
	})
	m := c.Run(0)
	if m.Supply == nil || m.Supply.Total == 0 {
		t.Fatal("supply histogram empty")
	}
	if m.Committed == 0 {
		t.Fatal("infinite backend did not drain")
	}
}

func TestPerfectFrontendDemand(t *testing.T) {
	c := newTestCore(independentALUProgram(500), 50, func(cfg *Config) {
		cfg.PerfectFrontend = true
		cfg.TrackDemand = true
	})
	m := c.Run(0)
	if m.Demand == nil || m.Demand.Total == 0 {
		t.Fatal("demand histogram empty")
	}
	if m.DirMispredicts != 0 {
		t.Fatal("perfect frontend should not mispredict")
	}
}

func TestCallReturnPredictedByRAS(t *testing.T) {
	b := isa.NewBuilder("callret")
	b.Li(1, 1000)
	b.Label("loop")
	b.Call("fn")
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "loop")
	b.Halt()
	b.Label("fn")
	b.I(isa.ADDI, 2, 2, 1)
	b.Ret()
	c := newTestCore(b.Program(), 50, nil)
	m := c.Run(0)
	// After warmup, returns predicted by the RAS: very few target misses.
	if m.TargetMispredicts > 20 {
		t.Fatalf("RAS ineffective: %d target mispredicts over 1000 calls", m.TargetMispredicts)
	}
}

func TestBudgetStopsRun(t *testing.T) {
	c := newTestCore(independentALUProgram(1_000_000), 50, nil)
	m := c.Run(5000)
	if m.Committed < 5000 || m.Committed > 5000+uint64(c.Cfg.CommitWidth) {
		t.Fatalf("budget not honored: %d committed", m.Committed)
	}
}
