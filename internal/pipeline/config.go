// Package pipeline implements the cycle-level out-of-order core timing
// model: a decoupled fetch unit with a configurable fetch buffer, branch
// prediction (or an external direction source such as the DLA Branch
// Outcome Queue), ROB/LSQ/PRF-constrained dispatch, functional-unit
// constrained out-of-order issue with load/store handling against the
// cache hierarchy, and in-order commit.
//
// The model is trace-driven with execute-at-fetch functional semantics:
// the Feeder supplies the committed-path dynamic instruction stream, and
// wrong-path work is modeled as fetch-redirect bubbles.
package pipeline

import "r3dla/internal/isa"

// Config sizes one core. The default mirrors the paper's Table I
// processing node; the SMT experiments use WideConfig and HalfConfig.
type Config struct {
	FetchWidth  int // instructions fetched per cycle (up to a taken branch)
	DecodeWidth int // fetch buffer -> ROB dispatch width
	IssueWidth  int // max instructions entering execution per cycle
	CommitWidth int

	ROB int
	LSQ int

	IntPRF int // integer physical registers
	FPPRF  int

	IntFUs int // simple-int units (ALU + branch resolution)
	MemFUs int // load/store ports
	FPFUs  int

	FetchBufSize int // decoupling queue between fetch and decode

	FrontendDepth      uint64 // frontend pipe depth (part of redirect cost)
	RedirectPenalty    uint64 // total frontend-refill bubble after a resolved mispredict
	ValueReplayPenalty uint64 // recovery cost of a wrong value prediction

	BTBBits    int
	RASEntries int

	// Modeling switches used by analyses.
	PerfectFrontend     bool // ideal fetch: no stalls, no mispredicts
	InfiniteBackend     bool // ideal backend: dispatch drains instantly
	NoFetchBreakOnTaken bool // trace-cache-like supply (no taken-branch break)
	SkipValidation      bool // decode scoreboard skips validated ALU ops

	// Measurement switches (cost memory; off by default).
	TrackFetchQOcc bool // histogram of fetch buffer occupancy per cycle
	TrackSupply    bool // histogram of instructions fetched per cycle
	TrackDemand    bool // histogram of instructions dispatched per cycle
}

// DefaultConfig returns the Table I processing node: 20-stage, 4-wide
// out-of-order, 192 ROB, 96 LSQ, 128 INT / 128 FP PRF, 4 INT / 2 MEM /
// 4 FP functional units, 4K-entry BTB, 32-entry RAS.
func DefaultConfig() Config {
	return Config{
		FetchWidth:         8,
		DecodeWidth:        4,
		IssueWidth:         4,
		CommitWidth:        4,
		ROB:                192,
		LSQ:                96,
		IntPRF:             128,
		FPPRF:              128,
		IntFUs:             4,
		MemFUs:             2,
		FPFUs:              4,
		FetchBufSize:       8,
		FrontendDepth:      8,  // ~20-stage pipeline frontend
		RedirectPenalty:    14, // frontend refill after a resolved mispredict
		ValueReplayPenalty: 10,
		BTBBits:            12, // 4K entries
		RASEntries:         32,
	}
}

// WideConfig returns the POWER9-SMT8-like wide core of Sec. IV-B3:
// 16/12/16/16 widths with 512 ROB entries.
func WideConfig() Config {
	c := DefaultConfig()
	c.FetchWidth = 16
	c.DecodeWidth = 12
	c.IssueWidth = 16
	c.CommitWidth = 16
	c.ROB = 512
	c.LSQ = 256
	c.IntPRF = 320
	c.FPPRF = 320
	c.IntFUs = 8
	c.MemFUs = 4
	c.FPFUs = 8
	c.FetchBufSize = 16
	return c
}

// HalfConfig returns one half-core of the wide SMT core (the paper's "HC"
// normalization point): the wide core split evenly in two.
func HalfConfig() Config {
	c := WideConfig()
	c.FetchWidth /= 2
	c.DecodeWidth /= 2
	c.IssueWidth /= 2
	c.CommitWidth /= 2
	c.ROB /= 2
	c.LSQ /= 2
	c.IntPRF /= 2
	c.FPPRF /= 2
	c.IntFUs /= 2
	c.MemFUs /= 2
	c.FPFUs /= 2
	c.FetchBufSize /= 2
	return c
}

// execLatency returns the execution latency of a non-memory op class.
func execLatency(c isa.Class) uint64 {
	switch c {
	case isa.ClassALU:
		return 1
	case isa.ClassMul:
		return 3
	case isa.ClassDiv:
		return 12
	case isa.ClassFP:
		return 4
	case isa.ClassFDiv:
		return 16
	case isa.ClassBranch, isa.ClassJump:
		return 1
	case isa.ClassStore:
		return 1 // address generation; data written at commit
	default:
		return 1
	}
}

// fuKind maps an op class onto a functional-unit pool.
type fuKind uint8

const (
	fuInt fuKind = iota
	fuMem
	fuFP
	fuNone
)

func fuOf(c isa.Class) fuKind {
	switch c {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassBranch, isa.ClassJump:
		return fuInt
	case isa.ClassLoad, isa.ClassStore:
		return fuMem
	case isa.ClassFP, isa.ClassFDiv:
		return fuFP
	default:
		return fuNone
	}
}
