package pipeline

import (
	"r3dla/internal/branch"
	"r3dla/internal/cache"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
	"r3dla/internal/stats"
)

// robEntry is one in-flight instruction.
type robEntry struct {
	d             emu.DynInst
	seq           uint64 // core-local monotonically increasing id
	live          bool
	dispatchCycle uint64
	issued        bool
	execDone      uint64
	mispred       bool // direction or target mispredicted at fetch

	valPred    bool
	valCorrect bool
	skipVal    bool

	prod    [2]int32 // ROB slots of register producers (-1 = ready)
	prodSeq [2]uint64
	fwd     int32 // ROB slot of forwarding store (-1 = none)
	fwdSeq  uint64

	intDest bool
	fpDest  bool
}

type fqEntry struct {
	d          emu.DynInst
	fetchCycle uint64
	mispred    bool
}

// Core is one simulated core. Construct with New, then Run (or Tick in a
// multi-core harness such as the DLA driver).
type Core struct {
	Cfg   Config
	Feed  Feeder
	Dir   DirectionSource
	Vals  ValueSource
	Hooks Hooks

	L1I, L1D *cache.Cache

	btb *branch.BTB
	ras *branch.RAS

	// fetch state. The fetch queue is a fixed ring (capacity
	// FetchBufSize): fetch pushes at the tail, dispatch pops at the
	// head, and no per-cycle slice reallocation ever happens — the seed
	// implementation's append/reslice churn here accounted for ~98% of
	// the simulator's allocated objects.
	fetchQ        []fqEntry
	fqHead, fqLen int
	lastBlock     uint64
	haveBlock     bool
	fetchStall    uint64 // no fetch before this cycle
	blockedOnSpec bool   // stop fetch until the mispredicted branch issues
	feederDone    bool

	// hintScratch is the DynInst handed to the TargetHint hook. Passing
	// &local would make every fetched instruction escape to the heap —
	// one allocation per fetch, the dominant object count in the seed's
	// heap profile — so fetch copies into this core-owned slot instead.
	hintScratch emu.DynInst

	// backend state
	rob          []robEntry
	head, tail   int // ring indices
	count        int
	issuedPrefix int // consecutive issued entries at the ROB head (scan skip)
	lsqCount     int
	seqCounter   uint64
	lastWriter   [isa.NumRegs]int32
	writerSeq    [isa.NumRegs]uint64
	freeInt      int
	freeFP       int
	scoreboard   [isa.NumRegs]bool // value-validated marks (skip-validation)

	now uint64

	M Metrics
}

// New constructs a core over the given caches with its own BTB/RAS.
func New(cfg Config, feed Feeder, dir DirectionSource, l1i, l1d *cache.Cache) *Core {
	ringCap := cfg.FetchBufSize
	if ringCap < 1 {
		ringCap = 1
	}
	c := &Core{
		Cfg:     cfg,
		Feed:    feed,
		Dir:     dir,
		L1I:     l1i,
		L1D:     l1d,
		btb:     branch.NewBTB(cfg.BTBBits),
		ras:     branch.NewRAS(cfg.RASEntries),
		fetchQ:  make([]fqEntry, ringCap),
		rob:     make([]robEntry, cfg.ROB),
		freeInt: cfg.IntPRF - isa.NumIntRegs,
		freeFP:  cfg.FPPRF - isa.NumFPRegs,
	}
	for i := range c.lastWriter {
		c.lastWriter[i] = -1
	}
	if cfg.TrackFetchQOcc {
		c.M.FetchQOcc = stats.NewHistogram(cfg.FetchBufSize)
	}
	if cfg.TrackSupply {
		c.M.Supply = stats.NewHistogram(cfg.FetchWidth)
	}
	if cfg.TrackDemand {
		c.M.Demand = stats.NewHistogram(cfg.DecodeWidth)
	}
	return c
}

// Now reports the core's current cycle.
func (c *Core) Now() uint64 { return c.now }

// Done reports whether the core has drained: feeder exhausted and no
// in-flight work.
func (c *Core) Done() bool {
	return c.feederDone && c.fqLen == 0 && c.count == 0
}

// fqPush appends one entry at the tail of the fetch ring. Callers check
// capacity (fqLen < Cfg.FetchBufSize) before pushing.
func (c *Core) fqPush(e fqEntry) {
	idx := c.fqHead + c.fqLen
	if idx >= len(c.fetchQ) {
		idx -= len(c.fetchQ)
	}
	c.fetchQ[idx] = e
	c.fqLen++
}

// fqPop drops the head entry of the fetch ring.
func (c *Core) fqPop() {
	c.fqHead++
	if c.fqHead == len(c.fetchQ) {
		c.fqHead = 0
	}
	c.fqLen--
}

// Tick advances the core by one cycle. Stages run commit -> issue ->
// dispatch -> fetch so that same-cycle resource frees are visible
// upstream, matching the usual reverse-order stage evaluation.
func (c *Core) Tick() {
	c.commit()
	c.issue()
	c.dispatch()
	c.fetch()
	if c.M.FetchQOcc != nil {
		c.M.FetchQOcc.Add(c.fqLen)
	}
	c.now++
	c.M.Cycles++
}

// StallTick advances the clock one cycle without doing any work. The DLA
// driver uses it to stall the look-ahead core (full BOQ, reboot window)
// while keeping both cores on the same clock.
func (c *Core) StallTick() {
	c.now++
	c.M.Cycles++
	if c.M.FetchQOcc != nil {
		c.M.FetchQOcc.Add(c.fqLen)
	}
}

// Flush squashes all in-flight work: the fetch queue and every ROB entry
// are discarded and resource counts reset. The feeder, caches, predictors
// and metrics are untouched. The DLA reboot path uses this to reset the
// look-ahead core.
func (c *Core) Flush() {
	c.fqHead, c.fqLen = 0, 0
	for i := range c.rob {
		c.rob[i].live = false
	}
	c.head, c.tail, c.count = 0, 0, 0
	c.issuedPrefix = 0
	c.lsqCount = 0
	c.freeInt = c.Cfg.IntPRF - isa.NumIntRegs
	c.freeFP = c.Cfg.FPPRF - isa.NumFPRegs
	for i := range c.lastWriter {
		c.lastWriter[i] = -1
		c.scoreboard[i] = false
	}
	c.blockedOnSpec = false
	c.haveBlock = false
	c.feederDone = false
}

// Run executes until the feeder drains or maxInsts commit. It returns the
// metrics (also available as c.M).
func (c *Core) Run(maxInsts uint64) *Metrics {
	guard := maxInsts*1000 + 1_000_000
	for !c.Done() && (maxInsts == 0 || c.M.Committed < maxInsts) {
		c.Tick()
		if c.M.Cycles > guard {
			c.M.Deadlocked = true
			break
		}
	}
	return &c.M
}

func (c *Core) slot(i int32) *robEntry { return &c.rob[i] }

// producerReady reports when the value produced by slot/seq becomes
// available, or (0,true) if the producer already left the ROB.
func (c *Core) producerReady(slotIdx int32, seq uint64) (uint64, bool) {
	if slotIdx < 0 {
		return 0, true
	}
	e := c.slot(slotIdx)
	if !e.live || e.seq != seq {
		return 0, true // committed: value architecturally available
	}
	if e.skipVal || (e.valPred && e.valCorrect) {
		return e.dispatchCycle + 1, true
	}
	if !e.issued {
		return 0, false
	}
	return e.execDone, true
}

// ---------------------------------------------------------------- commit

func (c *Core) commit() {
	for n := 0; n < c.Cfg.CommitWidth && c.count > 0; n++ {
		e := &c.rob[c.head]
		if !e.issued || e.execDone > c.now {
			return
		}
		if e.d.In.Op.IsStore() {
			c.L1D.Access(e.d.EA, true, false, c.now)
		}
		if e.d.In.Op.IsMem() {
			c.lsqCount--
		}
		if e.intDest {
			c.freeInt++
		}
		if e.fpDest {
			c.freeFP++
		}
		if c.Hooks.OnCommit != nil {
			c.Hooks.OnCommit(&e.d, c.now)
		}
		e.live = false
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		if c.issuedPrefix > 0 {
			c.issuedPrefix--
		}
		c.M.Committed++
	}
}

// ----------------------------------------------------------------- issue

func (c *Core) issue() {
	fuLeft := [3]int{c.Cfg.IntFUs, c.Cfg.MemFUs, c.Cfg.FPFUs}
	issued := 0
	// issuedPrefix counts consecutive already-issued entries at the ROB
	// head: the scan starts past them instead of re-skipping the same
	// entries every cycle (the seed's head-first scan was the single
	// hottest function in the CPU profile).
	start := c.issuedPrefix
	if start > c.count {
		start = c.count
	}
	rob := c.rob
	now := c.now
	idx := c.head + start
	if idx >= len(rob) {
		idx -= len(rob)
	}
	for k := start; k < c.count && issued < c.Cfg.IssueWidth; k++ {
		e := &rob[idx]
		if idx++; idx == len(rob) {
			idx = 0
		}
		if e.issued {
			continue
		}
		if e.dispatchCycle+1 > now {
			break // younger entries dispatched no earlier; all not ready
		}
		// Skip-validation entries complete without execution.
		if e.skipVal {
			e.issued = true
			e.execDone = e.dispatchCycle + 1
			continue
		}
		ready := uint64(0)
		ok := true
		for p := 0; p < 2; p++ {
			t, r := c.producerReady(e.prod[p], e.prodSeq[p])
			if !r {
				ok = false
				break
			}
			if t > ready {
				ready = t
			}
		}
		if !ok || ready > now {
			continue
		}
		fu := fuOf(e.d.In.Op.Class())
		if fu != fuNone {
			if fuLeft[fu] == 0 {
				continue
			}
			fuLeft[fu]--
		}
		issued++
		c.M.Issued++
		e.issued = true
		c.execOne(e)
		if c.Hooks.OnIssue != nil {
			c.Hooks.OnIssue(&e.d, e.dispatchCycle, e.execDone)
		}
		c.M.DispExecSum += e.execDone - e.dispatchCycle
		c.M.DispExecCount++
	}
	// Extend the issued prefix over any newly contiguous issued entries.
	for c.issuedPrefix < c.count {
		i := c.head + c.issuedPrefix
		if i >= len(c.rob) {
			i -= len(c.rob)
		}
		if !c.rob[i].issued {
			break
		}
		c.issuedPrefix++
	}
}

// execOne computes the completion time of an issuing instruction and
// performs its side effects (cache access, branch resolution scheduling).
func (c *Core) execOne(e *robEntry) {
	op := e.d.In.Op
	switch {
	case op.IsLoad():
		c.M.Loads++
		if e.fwd >= 0 {
			fe := c.slot(e.fwd)
			if fe.live && fe.seq == e.fwdSeq {
				// Store-to-load forwarding: one cycle after the store's
				// address/data are ready.
				t := fe.execDone
				if !fe.issued {
					t = c.now + 1 // should not happen; be safe
				}
				if t < c.now {
					t = c.now
				}
				e.execDone = t + 1
				break
			}
		}
		res := c.L1D.Access(e.d.EA, false, false, c.now)
		e.execDone = res.Done
		if res.Level >= 1 && res.Level <= 4 {
			c.M.LoadLevelHits[res.Level]++
		}
		if c.Hooks.OnLoadAccess != nil {
			c.Hooks.OnLoadAccess(&e.d, res.Level, res.Done, c.now)
		}
	case op.IsStore():
		c.M.Stores++
		e.execDone = c.now + execLatency(isa.ClassStore)
	default:
		e.execDone = c.now + execLatency(op.Class())
	}

	if op.IsControl() {
		if e.mispred {
			resume := e.execDone + c.Cfg.RedirectPenalty
			if resume > c.fetchStall {
				c.fetchStall = resume
			}
			c.blockedOnSpec = false
			c.M.WrongPathDecoded += uint64(c.Cfg.DecodeWidth) * (c.Cfg.FrontendDepth + 4) / 2
			c.M.WrongPathExecuted += uint64(c.Cfg.IssueWidth) * 3
		}
		if c.Hooks.OnBranchResolve != nil {
			c.Hooks.OnBranchResolve(&e.d, e.mispred, e.execDone)
		}
	}

	if e.valPred && !e.valCorrect {
		// Wrong value prediction: replay recovery charged as a frontend
		// bubble; the architectural value is available at execDone.
		resume := e.execDone + c.Cfg.ValueReplayPenalty
		if resume > c.fetchStall {
			c.fetchStall = resume
		}
		if c.Vals != nil {
			c.Vals.OnOutcome(&e.d, false)
		}
	} else if e.valPred && c.Vals != nil {
		c.Vals.OnOutcome(&e.d, true)
	}
}

// -------------------------------------------------------------- dispatch

func (c *Core) dispatch() {
	if c.Cfg.InfiniteBackend {
		// Ideal backend: decode drains everything fetched in earlier
		// cycles.
		for c.fqLen > 0 && c.fetchQ[c.fqHead].fetchCycle < c.now {
			c.fqPop()
			c.M.Dispatched++
			c.M.Committed++
		}
		return
	}
	if c.Cfg.PerfectFrontend {
		c.dispatchPerfectFrontend()
		return
	}

	n := 0
	starved := false
	for n < c.Cfg.DecodeWidth {
		if c.fqLen == 0 || c.fetchQ[c.fqHead].fetchCycle >= c.now {
			starved = true
			break
		}
		if c.count >= c.Cfg.ROB {
			break
		}
		fe := &c.fetchQ[c.fqHead]
		if !c.tryDispatch(fe) {
			break
		}
		c.fqPop()
		n++
	}
	c.M.Dispatched += uint64(n)
	if starved && n < c.Cfg.DecodeWidth && c.count < c.Cfg.ROB {
		c.M.FetchBubbles += uint64(c.Cfg.DecodeWidth - n)
	}
	if c.M.Demand != nil {
		c.M.Demand.Add(n)
	}
}

// dispatchPerfectFrontend pulls directly from the feeder, bypassing fetch.
func (c *Core) dispatchPerfectFrontend() {
	n := 0
	for n < c.Cfg.DecodeWidth && c.count < c.Cfg.ROB {
		d, ok := c.Feed.Peek()
		if !ok {
			c.feederDone = true
			break
		}
		fe := fqEntry{d: d, fetchCycle: c.now}
		if !c.tryDispatch(&fe) {
			break
		}
		c.Feed.Advance()
		n++
	}
	c.M.Dispatched += uint64(n)
	c.M.Fetched += uint64(n)
	if c.M.Demand != nil {
		c.M.Demand.Add(n)
	}
}

// tryDispatch inserts one fetched instruction into the ROB; false means a
// structural hazard (LSQ/PRF) blocks dispatch this cycle.
func (c *Core) tryDispatch(fe *fqEntry) bool {
	d := &fe.d
	isMem := d.In.Op.IsMem()
	if isMem && c.lsqCount >= c.Cfg.LSQ {
		return false
	}
	dest := d.In.Dest()
	intDest := dest != isa.NoReg && dest != isa.RegZero && dest < isa.FPRegBase
	fpDest := dest != isa.NoReg && dest >= isa.FPRegBase
	if intDest && c.freeInt == 0 {
		return false
	}
	if fpDest && c.freeFP == 0 {
		return false
	}

	e := &c.rob[c.tail]
	c.seqCounter++
	*e = robEntry{
		d:             *d,
		seq:           c.seqCounter,
		live:          true,
		dispatchCycle: c.now,
		mispred:       fe.mispred,
		prod:          [2]int32{-1, -1},
		fwd:           -1,
		intDest:       intDest,
		fpDest:        fpDest,
	}

	// Register dependencies.
	var srcBuf [2]uint8
	srcs := d.In.Sources(srcBuf[:0])
	for i, r := range srcs {
		if r == isa.RegZero {
			continue
		}
		if w := c.lastWriter[r]; w >= 0 {
			we := c.slot(w)
			if we.live && we.seq == c.writerSeq[r] {
				e.prod[i] = w
				e.prodSeq[i] = c.writerSeq[r]
			}
		}
	}

	// Store-to-load forwarding: the youngest older store to the same word.
	if d.In.Op.IsLoad() {
		word := d.EA >> 3
		for k, idx := 1, (c.tail-1+len(c.rob))%len(c.rob); k <= c.count; k, idx = k+1, (idx-1+len(c.rob))%len(c.rob) {
			se := &c.rob[idx]
			if !se.live {
				break
			}
			if se.d.In.Op.IsStore() && se.d.EA>>3 == word {
				e.fwd = int32(idx)
				e.fwdSeq = se.seq
				break
			}
		}
	}

	// Value prediction (DLA value reuse).
	if c.Vals != nil && d.HasVal {
		if pv, ok := c.Vals.Lookup(d); ok {
			e.valPred = true
			e.valCorrect = pv == d.Val
			c.M.ValuePreds++
			if !e.valCorrect {
				c.M.ValueMispreds++
			}
			if c.Cfg.SkipValidation && d.In.Op.Class() == isa.ClassALU && c.sourcesValidated(srcs) {
				e.skipVal = true
				c.M.Skipped++
			}
		}
	}
	c.updateScoreboard(d, e.valPred)

	if intDest {
		c.freeInt--
	}
	if fpDest {
		c.freeFP--
	}
	if dest != isa.NoReg && dest != isa.RegZero {
		c.lastWriter[dest] = int32(c.tail)
		c.writerSeq[dest] = e.seq
	}
	if isMem {
		c.lsqCount++
	}
	c.tail = (c.tail + 1) % len(c.rob)
	c.count++
	return true
}

func (c *Core) sourcesValidated(srcs []uint8) bool {
	for _, r := range srcs {
		if r == isa.RegZero {
			continue
		}
		if !c.scoreboard[r] {
			return false
		}
	}
	return true
}

// updateScoreboard implements the decode-stage validation scoreboard of
// Sec. III-D1: ALU instructions producing a value prediction mark their
// destination validated; any other writer clears it.
func (c *Core) updateScoreboard(d *emu.DynInst, valPred bool) {
	dest := d.In.Dest()
	if dest == isa.NoReg || dest == isa.RegZero {
		return
	}
	c.scoreboard[dest] = valPred && d.In.Op.Class() == isa.ClassALU
}

// ----------------------------------------------------------------- fetch

func (c *Core) fetch() {
	if c.Cfg.PerfectFrontend {
		return
	}
	if c.now < c.fetchStall || c.blockedOnSpec {
		return
	}
	fetched := 0
	for fetched < c.Cfg.FetchWidth && c.fqLen < c.Cfg.FetchBufSize {
		d, ok := c.Feed.Peek()
		if !ok {
			c.feederDone = true
			break
		}
		if c.Hooks.FetchTag != nil {
			d.Tag = c.Hooks.FetchTag()
		}

		// I-cache: one access per block transition.
		blk := isa.PCAddr(d.PC) >> c.L1I.BlockBits()
		if !c.haveBlock || blk != c.lastBlock {
			res := c.L1I.Access(isa.PCAddr(d.PC), false, false, c.now)
			c.lastBlock, c.haveBlock = blk, true
			if res.Level > 1 {
				// I-cache miss: fetch resumes when the fill returns.
				c.fetchStall = res.Done
				break
			}
		}

		mispred := false
		op := d.In.Op
		switch {
		case op.IsCondBranch():
			pred, ok := c.Dir.PredictAndTrain(d.PC, d.Taken, c.now)
			if !ok {
				c.M.FetchStallBOQ++
				return // direction source empty (BOQ): retry next cycle
			}
			c.M.CondBranches++
			if pred != d.Taken {
				mispred = true
				c.M.DirMispredicts++
			}
		case op.IsIndirect():
			var target int
			var okT bool
			if c.Hooks.TargetHint != nil {
				c.hintScratch = d
				target, okT = c.Hooks.TargetHint(&c.hintScratch)
			}
			if !okT {
				if op == isa.RET {
					target, okT = c.ras.Pop()
				} else {
					target, okT = c.btb.Lookup(d.PC)
				}
			} else if op == isa.RET {
				c.ras.Pop() // keep the stack aligned even when hinted
			}
			if op == isa.CALR {
				c.ras.Push(d.PC + 1)
			}
			if !okT || target != d.NextPC {
				mispred = true
				c.M.TargetMispredicts++
			}
			c.btb.Update(d.PC, d.NextPC)
		case op == isa.CALL:
			c.ras.Push(d.PC + 1)
		}

		c.Feed.Advance()
		c.M.Fetched++
		fetched++
		c.fqPush(fqEntry{d: d, fetchCycle: c.now, mispred: mispred})

		if mispred {
			c.blockedOnSpec = true // wrong path beyond here: stall until resolve
			break
		}
		if op.IsControl() && d.Taken {
			c.haveBlock = false // redirect: next fetch touches a new block
			if !c.Cfg.NoFetchBreakOnTaken {
				break
			}
		}
	}
	if c.M.Supply != nil {
		c.M.Supply.Add(fetched)
	}
}
