package branch

// BTB is a direct-mapped branch target buffer mapping branch PCs to their
// most recent targets (Table I: 4K entries).
type BTB struct {
	mask    int
	tags    []int32
	targets []int32
	Lookups uint64
	Misses  uint64
}

// NewBTB returns a BTB with 2^bits entries.
func NewBTB(bits int) *BTB {
	n := 1 << bits
	b := &BTB{mask: n - 1, tags: make([]int32, n), targets: make([]int32, n)}
	for i := range b.tags {
		b.tags[i] = -1
	}
	return b
}

// Lookup returns the stored target for pc, if present.
func (b *BTB) Lookup(pc int) (target int, ok bool) {
	b.Lookups++
	i := pc & b.mask
	if b.tags[i] == int32(pc) {
		return int(b.targets[i]), true
	}
	b.Misses++
	return 0, false
}

// Update installs (or refreshes) the target for pc.
func (b *BTB) Update(pc, target int) {
	i := pc & b.mask
	b.tags[i] = int32(pc)
	b.targets[i] = int32(target)
}

// RAS is a return address stack with wrap-around overflow (Table I: 32
// entries).
type RAS struct {
	stack []int
	top   int
	depth int
}

// NewRAS returns a RAS with the given capacity.
func NewRAS(n int) *RAS {
	return &RAS{stack: make([]int, n)}
}

// Push records a return address at a call.
func (r *RAS) Push(addr int) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. Popping an empty stack returns
// (0, false).
func (r *RAS) Pop() (addr int, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	a := r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return a, true
}
