package branch

import (
	"math/rand"
	"testing"
)

func TestPredictorLearnsAlwaysTaken(t *testing.T) {
	p := NewPredictor(DefaultConfig())
	miss := 0
	for i := 0; i < 1000; i++ {
		if !p.Predict(0x40) {
			miss++
		}
		p.Update(0x40, true)
	}
	if miss > 5 {
		t.Fatalf("always-taken branch mispredicted %d/1000 times", miss)
	}
}

func TestPredictorLearnsAlternating(t *testing.T) {
	p := NewPredictor(DefaultConfig())
	miss := 0
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		if p.Predict(0x80) != taken {
			miss++
		}
		p.Update(0x80, taken)
	}
	// History-based tables must capture a period-2 pattern after warmup.
	if miss > 400 {
		t.Fatalf("alternating branch mispredicted %d/4000 times", miss)
	}
}

func TestPredictorLearnsLoopExit(t *testing.T) {
	// A loop of 8 iterations: 7 taken, 1 not-taken, repeating. TAGE with
	// history >= 8 should learn the exit.
	p := NewPredictor(DefaultConfig())
	miss := 0
	total := 0
	for rep := 0; rep < 600; rep++ {
		for i := 0; i < 8; i++ {
			taken := i != 7
			total++
			if rep > 100 { // after warmup
				if p.Predict(0x100) != taken {
					miss++
				}
			} else {
				p.Predict(0x100)
			}
			p.Update(0x100, taken)
		}
	}
	rate := float64(miss) / float64(4000)
	if rate > 0.05 {
		t.Fatalf("loop-exit misprediction rate %.3f too high", rate)
	}
}

func TestPredictorRandomIsBounded(t *testing.T) {
	p := NewPredictor(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	miss := 0
	const n = 20000
	for i := 0; i < n; i++ {
		taken := rng.Intn(2) == 0
		if p.Predict(0x200) != taken {
			miss++
		}
		p.Update(0x200, taken)
	}
	rate := float64(miss) / n
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("random branch misprediction rate %.3f outside [0.35,0.65]", rate)
	}
}

func TestPredictorManyBranchesNoAliasCatastrophe(t *testing.T) {
	p := NewPredictor(DefaultConfig())
	// 512 branches, each biased taken.
	miss := 0
	total := 0
	for rep := 0; rep < 50; rep++ {
		for b := 0; b < 512; b++ {
			pc := 0x1000 + b*4
			if rep >= 2 {
				total++
				if !p.Predict(pc) {
					miss++
				}
			} else {
				p.Predict(pc)
			}
			p.Update(pc, true)
		}
	}
	if rate := float64(miss) / float64(total); rate > 0.02 {
		t.Fatalf("aliasing misprediction rate %.3f too high", rate)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(4)
	if _, ok := b.Lookup(100); ok {
		t.Fatal("empty BTB hit")
	}
	b.Update(100, 200)
	if tgt, ok := b.Lookup(100); !ok || tgt != 200 {
		t.Fatalf("BTB lookup = %d,%v", tgt, ok)
	}
	// Conflicting entry evicts (direct mapped, 16 entries).
	b.Update(100+16, 300)
	if _, ok := b.Lookup(100); ok {
		t.Fatal("conflict did not evict")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := 3; want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("RAS not empty after pops")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Fatalf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Fatalf("pop = %d, want 2", v)
	}
	// Depth capped at capacity: the overwritten entry is gone, but a stale
	// slot may remain readable; capacity-2 RAS holds at most 2 values.
	if _, ok := r.Pop(); ok {
		t.Fatal("RAS depth exceeded capacity")
	}
}

func TestMispredictRate(t *testing.T) {
	p := NewPredictor(DefaultConfig())
	if p.MispredictRate() != 0 {
		t.Fatal("empty predictor rate nonzero")
	}
	for i := 0; i < 100; i++ {
		p.Predict(4)
		p.Update(4, true)
	}
	if r := p.MispredictRate(); r < 0 || r > 1 {
		t.Fatalf("rate %f out of range", r)
	}
}
