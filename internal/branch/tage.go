// Package branch implements the control-flow prediction substrate: a
// TAGE-style conditional direction predictor (a reduced Tage-SC-L, matching
// the paper's predictor class), a branch target buffer, and a return
// address stack.
package branch

// Config sizes the predictor. DefaultConfig approximates the storage class
// of the 256-kbit Tage-SC-L configuration named in the paper's Table I.
type Config struct {
	BimodalBits  int   // log2 entries of the bimodal base table
	TableBits    int   // log2 entries of each tagged table
	TagBits      int   // tag width in each tagged table
	HistLengths  []int // geometric history lengths, shortest first
	UsefulResetK int   // clock period for useful-counter aging
}

// DefaultConfig returns the predictor configuration used everywhere unless
// an experiment overrides it.
func DefaultConfig() Config {
	return Config{
		BimodalBits:  14,
		TableBits:    10,
		TagBits:      11,
		HistLengths:  []int{5, 11, 22, 44, 88, 176},
		UsefulResetK: 1 << 18,
	}
}

type tageEntry struct {
	tag    uint32
	ctr    int8 // 3-bit signed counter, taken if >= 0
	useful uint8
}

// Predictor is a TAGE-lite global-history direction predictor.
type Predictor struct {
	cfg     Config
	bimodal []int8 // 2-bit counters, taken if >= 0
	tables  [][]tageEntry
	hist    uint64 // global history (newest outcome in bit 0)
	phist   uint64 // path history
	clock   uint64

	// prediction bookkeeping between Predict and Update
	lastPC       int
	provider     int // table index of provider, -1 = bimodal
	providerIdx  uint32
	altPred      bool
	providerPred bool

	// stats
	Lookups uint64
	Mispred uint64
}

// NewPredictor returns a predictor with the given configuration.
func NewPredictor(cfg Config) *Predictor {
	p := &Predictor{cfg: cfg}
	p.bimodal = make([]int8, 1<<cfg.BimodalBits)
	p.tables = make([][]tageEntry, len(cfg.HistLengths))
	for i := range p.tables {
		p.tables[i] = make([]tageEntry, 1<<cfg.TableBits)
	}
	return p
}

// fold compresses the low n bits of h into bits.
func fold(h uint64, n, bits int) uint32 {
	var f uint32
	mask := uint64(1)<<uint(bits) - 1
	for n > 0 {
		take := bits
		if n < take {
			take = n
		}
		f ^= uint32(h & mask)
		h >>= uint(take)
		n -= take
	}
	return f & uint32(mask)
}

func (p *Predictor) index(pc, table int) uint32 {
	hl := p.cfg.HistLengths[table]
	h := fold(p.hist, hl, p.cfg.TableBits)
	ph := fold(p.phist, min(hl, 16), p.cfg.TableBits)
	return (uint32(pc) ^ uint32(pc>>4) ^ h ^ (ph << 1)) & (1<<p.cfg.TableBits - 1)
}

func (p *Predictor) tag(pc, table int) uint32 {
	hl := p.cfg.HistLengths[table]
	h := fold(p.hist, hl, p.cfg.TagBits)
	return (uint32(pc) ^ (uint32(pc) >> 7) ^ (h << 1)) & (1<<p.cfg.TagBits - 1)
}

func (p *Predictor) bimodalIdx(pc int) int {
	return pc & (1<<p.cfg.BimodalBits - 1)
}

// Predict returns the predicted direction for the conditional branch at pc.
// The caller must invoke Update with the actual outcome before the next
// Predict (standard in-order predict/update discipline of trace-driven
// simulation).
func (p *Predictor) Predict(pc int) bool {
	p.Lookups++
	p.lastPC = pc
	p.provider = -1
	p.altPred = p.bimodal[p.bimodalIdx(pc)] >= 0
	p.providerPred = p.altPred
	for t := len(p.tables) - 1; t >= 0; t-- {
		idx := p.index(pc, t)
		e := &p.tables[t][idx]
		if e.tag == p.tag(pc, t) {
			if p.provider < 0 {
				p.provider = t
				p.providerIdx = idx
				p.providerPred = e.ctr >= 0
			} else {
				p.altPred = e.ctr >= 0
				break
			}
		}
	}
	if p.provider >= 0 {
		return p.providerPred
	}
	return p.altPred
}

// Update trains the predictor with the actual outcome of the branch most
// recently passed to Predict.
func (p *Predictor) Update(pc int, taken bool) {
	if pc != p.lastPC {
		// Out-of-order update (e.g. after a squash); retrain bimodal only.
		p.updateBimodal(pc, taken)
		p.pushHistory(pc, taken)
		return
	}
	correct := false
	if p.provider >= 0 {
		correct = p.providerPred == taken
		e := &p.tables[p.provider][p.providerIdx]
		e.ctr = satInc(e.ctr, taken, 3)
		if p.providerPred != p.altPred {
			if correct {
				if e.useful < 3 {
					e.useful++
				}
			} else if e.useful > 0 {
				e.useful--
			}
		}
	} else {
		correct = p.altPred == taken
		p.updateBimodal(pc, taken)
	}
	if !correct {
		p.Mispred++
		p.allocate(pc, taken)
	}
	p.clock++
	if p.cfg.UsefulResetK > 0 && p.clock%uint64(p.cfg.UsefulResetK) == 0 {
		p.ageUseful()
	}
	p.pushHistory(pc, taken)
}

func (p *Predictor) updateBimodal(pc int, taken bool) {
	i := p.bimodalIdx(pc)
	p.bimodal[i] = satInc(p.bimodal[i], taken, 2)
}

// allocate claims an entry in a longer-history table after a misprediction.
func (p *Predictor) allocate(pc int, taken bool) {
	start := p.provider + 1
	for t := start; t < len(p.tables); t++ {
		idx := p.index(pc, t)
		e := &p.tables[t][idx]
		if e.useful == 0 {
			e.tag = p.tag(pc, t)
			e.useful = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	// No free entry: decay usefulness along the path.
	for t := start; t < len(p.tables); t++ {
		e := &p.tables[t][p.index(pc, t)]
		if e.useful > 0 {
			e.useful--
		}
	}
}

func (p *Predictor) ageUseful() {
	for _, tbl := range p.tables {
		for i := range tbl {
			tbl[i].useful >>= 1
		}
	}
}

func (p *Predictor) pushHistory(pc int, taken bool) {
	p.hist = p.hist<<1 | b2u(taken)
	p.phist = p.phist<<1 | uint64(pc&1)
}

// MispredictRate reports the fraction of mispredicted lookups so far.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispred) / float64(p.Lookups)
}

// satInc saturating-increments (taken) or -decrements counter ctr of the
// given bit width (counters range [-2^(w-1), 2^(w-1)-1]).
func satInc(ctr int8, up bool, width int) int8 {
	hi := int8(1<<(width-1) - 1)
	lo := int8(-(1 << (width - 1)))
	if up {
		if ctr < hi {
			return ctr + 1
		}
		return ctr
	}
	if ctr > lo {
		return ctr - 1
	}
	return ctr
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
