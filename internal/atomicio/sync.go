package atomicio

import (
	"errors"
	"syscall"
	"time"
)

// isSyncUnsupported reports errors meaning "this filesystem can't fsync
// a directory" (EINVAL/ENOTSUP on some network and FUSE filesystems) —
// not real I/O failures.
func isSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}

// sleep is a seam so tests can observe injected delays without real
// wall-clock stalls dominating the suite.
var sleep = time.Sleep
