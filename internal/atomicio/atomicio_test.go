package atomicio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"r3dla/internal/faultinject"
)

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frame")
	data := []byte("the quick brown fox")
	if err := WriteFile(path, data, 0o600, nil, ""); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", fi.Mode().Perm())
	}
	// No temp litter left behind.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteFileOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("old old old"), 0o644, nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644, nil, ""); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q, want %q", got, "new")
	}
}

// A torn write must leave a strictly truncated image at the final path
// and report an injected error — the crash state downstream readers have
// to treat as a silent miss.
func TestTornWriteLeavesPartialFrame(t *testing.T) {
	p := faultinject.New(21)
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.Torn, Limit: 1})
	path := filepath.Join(t.TempDir(), "frame")
	data := bytes.Repeat([]byte("x"), 1024)
	err := WriteFile(path, data, 0o644, p, faultinject.ResultStorePut)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn write returned %v, want ErrInjected", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("torn write left no file: %v", rerr)
	}
	if len(got) >= len(data) {
		t.Fatalf("torn write kept %d bytes of %d — not truncated", len(got), len(data))
	}
	// The plane's Limit is spent: the next write goes through clean.
	if err := WriteFile(path, data, 0o644, p, faultinject.ResultStorePut); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, data) {
		t.Fatal("post-fault write not intact")
	}
}

// Corruption is silent: WriteFile reports success but exactly one byte
// differs from what the caller handed in.
func TestCorruptWriteFlipsOneByte(t *testing.T) {
	p := faultinject.New(22)
	p.MustArm(faultinject.Policy{Point: faultinject.PrepCacheStore, Mode: faultinject.Corrupt, Limit: 1})
	path := filepath.Join(t.TempDir(), "entry")
	data := bytes.Repeat([]byte("y"), 512)
	if err := WriteFile(path, data, 0o644, p, faultinject.PrepCacheStore); err != nil {
		t.Fatalf("corrupt write should report success, got %v", err)
	}
	got, _ := os.ReadFile(path)
	if len(got) != len(data) {
		t.Fatalf("corrupt write changed length: %d vs %d", len(got), len(data))
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	// The caller's buffer is untouched (corruption copies).
	if !bytes.Equal(data, bytes.Repeat([]byte("y"), 512)) {
		t.Fatal("caller's buffer was mutated")
	}
}

func TestENOSPCAndErrorFaults(t *testing.T) {
	p := faultinject.New(23)
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.ENOSPC, Limit: 1})
	path := filepath.Join(t.TempDir(), "f")
	err := WriteFile(path, []byte("data"), 0o644, p, faultinject.ResultStorePut)
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("got %v, want injected ENOSPC", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatal("failed write should leave no file")
	}
}

func TestDelayFaultStalls(t *testing.T) {
	var slept time.Duration
	old := sleep
	sleep = func(d time.Duration) { slept = d }
	defer func() { sleep = old }()

	p := faultinject.New(24)
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.Delay, Delay: 42 * time.Millisecond, Limit: 1})
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("data"), 0o644, p, faultinject.ResultStorePut); err != nil {
		t.Fatal(err)
	}
	if slept != 42*time.Millisecond {
		t.Fatalf("slept %v, want 42ms", slept)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "data" {
		t.Fatal("delayed write not intact")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a tempdir: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing dir should error")
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644, nil, "")
	if err == nil {
		t.Fatal("write into a missing directory should error")
	}
}
