// Package atomicio is the one place the repo writes files atomically
// and durably. Every store that used hand-rolled temp+rename
// (resultstore frames, prepcache entries) had the same gap: nothing
// called Sync, so a power loss after rename could leave a
// renamed-but-empty frame — the name survived, the bytes didn't.
// WriteFile closes that gap with the full discipline: write to a
// pid-unique temp file in the destination directory, fsync the file,
// rename over the target, then fsync the parent directory so the rename
// itself is durable.
//
// The helper also hosts the write-side fault hooks: given a non-nil
// fault plane and point name it can tear the write (a partial frame at
// the final path — exactly the crash state the fsync discipline
// prevents), flip a byte silently (media corruption the reader's
// checksum must absorb), fail with ENOSPC, or stall. Readers built on
// "any anomaly is a silent miss" get exercised against the real damage
// shapes instead of synthetic ones.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"

	"r3dla/internal/faultinject"
)

// WriteFile writes data to path atomically and durably. faults may be
// nil (the production path); with a plane armed at point, injected
// write faults apply before any bytes move.
func WriteFile(path string, data []byte, perm os.FileMode, faults *faultinject.Plane, point string) error {
	if faults != nil {
		o := faults.At(point)
		if o.Delay > 0 {
			sleep(o.Delay)
		}
		if o.Err != nil {
			return o.Err
		}
		if o.Torn {
			// A crash mid-write: a truncated image lands at the final
			// path (no fsync, no rename ceremony — that's the point) and
			// the caller sees the failure a real crash would leave behind.
			n := int(o.Frac * float64(len(data)))
			if n >= len(data) && len(data) > 0 {
				n = len(data) - 1
			}
			if err := os.WriteFile(path, data[:n], perm); err != nil {
				return err
			}
			return fmt.Errorf("%w: torn write at %s", faultinject.ErrInjected, point)
		}
		if o.Corrupt && len(data) > 0 {
			// Silent single-byte corruption: the write "succeeds" and
			// only the reader's checksum can tell.
			i := int(o.Frac * float64(len(data)))
			if i >= len(data) {
				i = len(data) - 1
			}
			mutated := make([]byte, len(data))
			copy(mutated, data)
			mutated[i] ^= 0xff
			data = mutated
		}
	}

	dir := filepath.Dir(path)
	// Pid-unique pattern: temp names can never collide across processes
	// sharing the directory (two servers pointed at one cache dir).
	f, err := os.CreateTemp(dir, fmt.Sprintf(".tmp-%d-*", os.Getpid()))
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if err := f.Chmod(perm); err != nil {
		cleanup()
		return err
	}
	if _, err := f.Write(data); err != nil {
		cleanup()
		return err
	}
	// Sync before rename: once the new name is visible it must point at
	// complete bytes, not a page cache promise.
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Sync the parent so the rename (the commit point) survives power
	// loss too. Best-effort on filesystems that refuse directory fsync.
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making renames and creates within it
// durable. Errors from filesystems that don't support directory fsync
// are swallowed — the write already succeeded, durability is as good as
// the platform allows.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}
