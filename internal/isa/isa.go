// Package isa defines the register-transfer instruction set used by every
// simulated program in this repository.
//
// The ISA is a small load/store RISC: 32 integer registers (R0 hardwired to
// zero, R31 is the link register), 32 floating-point registers, 64-bit
// memory words, PC-relative control flow expressed as static instruction
// indices. It is deliberately simple — the paper's mechanisms (skeleton
// extraction, look-ahead, value reuse) depend only on dataflow, control
// flow, and memory behaviour, all of which this ISA expresses directly.
package isa

import "fmt"

// Op enumerates instruction opcodes.
type Op uint8

// Opcode space. Grouped by functional class; the groups matter to the
// timing model (functional unit selection and latency).
const (
	NOP Op = iota

	// Integer ALU, register-register.
	ADD
	SUB
	MUL
	DIV
	AND
	OR
	XOR
	SHL
	SHR
	SLT // set if less-than (signed)

	// Integer ALU, register-immediate.
	ADDI
	ANDI
	ORI
	XORI
	SHLI
	SHRI
	SLTI
	LUI // load upper immediate: Rd = Imm << 32

	// Floating point (operates on the F register file).
	FADD
	FSUB
	FMUL
	FDIV
	FCVT // int reg -> float reg
	FCMP // float compare: int Rd = (Fa < Fb)

	// Memory. Effective address = IReg[Rs1] + Imm, 8-byte words.
	LD  // Rd = mem[ea]
	ST  // mem[ea] = Rs2
	FLD // Fd = mem[ea]
	FST // mem[ea] = Fs2

	// Control flow. Targ is a static instruction index.
	BEQ  // if Rs1 == Rs2 goto Targ
	BNE  // if Rs1 != Rs2 goto Targ
	BLT  // if Rs1 <  Rs2 (signed) goto Targ
	BGE  // if Rs1 >= Rs2 (signed) goto Targ
	JMP  // unconditional direct jump
	JR   // indirect jump through Rs1
	CALL // R31 = return index; goto Targ
	CALR // indirect call through Rs1
	RET  // goto R31

	HALT // stop the program

	numOps
)

// NumOps reports the size of the opcode space (for table sizing).
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", SLT: "slt",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SHLI: "shli", SHRI: "shri", SLTI: "slti", LUI: "lui",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FCVT: "fcvt", FCMP: "fcmp",
	LD: "ld", ST: "st", FLD: "fld", FST: "fst",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	JMP: "jmp", JR: "jr", CALL: "call", CALR: "calr", RET: "ret",
	HALT: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class buckets opcodes by the functional unit they occupy.
type Class uint8

// Functional-unit classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassFP
	ClassFDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional control (jmp/jr/call/calr/ret)
)

// Class reports the functional-unit class of the opcode.
func (o Op) Class() Class {
	switch o {
	case ADD, SUB, AND, OR, XOR, SHL, SHR, SLT,
		ADDI, ANDI, ORI, XORI, SHLI, SHRI, SLTI, LUI:
		return ClassALU
	case MUL:
		return ClassMul
	case DIV:
		return ClassDiv
	case FADD, FSUB, FMUL, FCVT, FCMP:
		return ClassFP
	case FDIV:
		return ClassFDiv
	case LD, FLD:
		return ClassLoad
	case ST, FST:
		return ClassStore
	case BEQ, BNE, BLT, BGE:
		return ClassBranch
	case JMP, JR, CALL, CALR, RET, HALT:
		return ClassJump
	default:
		return ClassNop
	}
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool { return o.Class() == ClassBranch }

// IsControl reports whether the opcode redirects control flow.
func (o Op) IsControl() bool {
	c := o.Class()
	return c == ClassBranch || c == ClassJump
}

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool {
	c := o.Class()
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether the opcode reads data memory.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// IsIndirect reports whether the control target comes from a register.
func (o Op) IsIndirect() bool { return o == JR || o == CALR || o == RET }

// Register file layout: a single 64-entry architectural space. Integer
// registers occupy [0,32), floating-point registers occupy [32,64). Reg 0
// is hardwired to zero; RegLink (R31) holds return indices.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs
	RegZero    = 0
	RegLink    = 31
	FPRegBase  = NumIntRegs
	NoReg      = 0xFF // sentinel: operand slot unused
	InstBytes  = 4    // instruction footprint for I-cache addressing
	WordBytes  = 8    // data memory word size
)

// FReg converts an FP register number (0..31) to its architectural index.
func FReg(n uint8) uint8 { return FPRegBase + n }

// Inst is a single static instruction.
type Inst struct {
	Op   Op
	Rd   uint8 // destination register (NoReg if none)
	Rs1  uint8 // first source (NoReg if none)
	Rs2  uint8 // second source (NoReg if none)
	Imm  int64 // immediate operand / memory displacement
	Targ int32 // direct control-flow target (static instruction index)
}

// Dests returns the destination register or NoReg.
func (in *Inst) Dest() uint8 {
	switch in.Op {
	case ST, FST, BEQ, BNE, BLT, BGE, JMP, JR, RET, HALT, NOP:
		return NoReg
	case CALL, CALR:
		return RegLink
	}
	return in.Rd
}

// Sources appends the source architectural registers of the instruction to
// dst and returns it. RegZero sources are included (they read as zero but
// create no dependence in practice; callers may filter).
func (in *Inst) Sources(dst []uint8) []uint8 {
	switch in.Op {
	case NOP, HALT, JMP, CALL, LUI:
		return dst
	case ADDI, ANDI, ORI, XORI, SHLI, SHRI, SLTI, LD, FLD, JR, CALR:
		return append(dst, in.Rs1)
	case RET:
		return append(dst, RegLink)
	case ST, FST:
		return append(dst, in.Rs1, in.Rs2)
	case FCVT:
		return append(dst, in.Rs1)
	default: // three-operand ALU/FP/branch forms
		return append(dst, in.Rs1, in.Rs2)
	}
}

func (in *Inst) String() string {
	switch in.Op.Class() {
	case ClassLoad:
		return fmt.Sprintf("%-5s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case ClassStore:
		return fmt.Sprintf("%-5s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%-5s r%d, r%d, @%d", in.Op, in.Rs1, in.Rs2, in.Targ)
	case ClassJump:
		if in.Op.IsIndirect() {
			return fmt.Sprintf("%-5s r%d", in.Op, in.Rs1)
		}
		return fmt.Sprintf("%-5s @%d", in.Op, in.Targ)
	default:
		return fmt.Sprintf("%-5s r%d, r%d, r%d, #%d", in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm)
	}
}

// Program is a static program: a flat instruction sequence plus metadata.
// PCs are static instruction indices; the I-cache address of index i is
// uint64(i) * InstBytes.
type Program struct {
	Name   string
	Insts  []Inst
	Entry  int
	Labels map[string]int // label -> instruction index (for tooling)
}

// PCAddr converts a static instruction index to its I-cache byte address.
func PCAddr(pc int) uint64 { return uint64(pc) * InstBytes }

// Validate checks structural invariants: targets in range, register
// numbers in range. It returns the first problem found.
func (p *Program) Validate() error {
	n := int32(len(p.Insts))
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op >= numOps {
			return fmt.Errorf("%s@%d: bad opcode %d", p.Name, i, in.Op)
		}
		if in.Op.IsControl() && !in.Op.IsIndirect() && in.Op != HALT {
			if in.Targ < 0 || in.Targ >= n {
				return fmt.Errorf("%s@%d: %s target %d out of range [0,%d)", p.Name, i, in.Op, in.Targ, n)
			}
		}
		for _, r := range []uint8{in.Rd, in.Rs1, in.Rs2} {
			if r != NoReg && r >= NumRegs {
				return fmt.Errorf("%s@%d: register %d out of range", p.Name, i, r)
			}
		}
	}
	if p.Entry < 0 || p.Entry >= len(p.Insts) {
		return fmt.Errorf("%s: entry %d out of range", p.Name, p.Entry)
	}
	return nil
}
