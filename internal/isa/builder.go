package isa

import "fmt"

// Builder assembles a Program with symbolic labels. It is the "assembler"
// every workload in internal/workloads uses. Branch and jump targets may
// reference labels that are defined later; they are resolved by Program().
type Builder struct {
	name   string
	insts  []Inst
	labels map[string]int
	fixups []fixup
	errs   []error
}

type fixup struct {
	inst  int
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Len reports the number of instructions emitted so far (== the index the
// next emitted instruction will receive).
func (b *Builder) Len() int { return len(b.insts) }

// Label defines a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("%s: duplicate label %q", b.name, name))
		return
	}
	b.labels[name] = len(b.insts)
}

func (b *Builder) emit(in Inst) int {
	b.insts = append(b.insts, in)
	return len(b.insts) - 1
}

// R emits a three-register instruction: op rd, rs1, rs2.
func (b *Builder) R(op Op, rd, rs1, rs2 uint8) int {
	return b.emit(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// I emits a register-immediate instruction: op rd, rs1, imm.
func (b *Builder) I(op Op, rd, rs1 uint8, imm int64) int {
	return b.emit(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li loads a 64-bit constant into rd (one or two instructions).
func (b *Builder) Li(rd uint8, v int64) {
	hi := v >> 32
	lo := v & 0xFFFFFFFF
	if hi != 0 {
		b.I(LUI, rd, RegZero, hi)
		b.I(ORI, rd, rd, lo)
	} else {
		b.I(ADDI, rd, RegZero, lo)
	}
}

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs uint8) int { return b.I(ADDI, rd, rs, 0) }

// Ld emits rd = mem[rs1+imm].
func (b *Builder) Ld(rd, rs1 uint8, imm int64) int {
	return b.emit(Inst{Op: LD, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits mem[rs1+imm] = rs2.
func (b *Builder) St(rs2, rs1 uint8, imm int64) int {
	return b.emit(Inst{Op: ST, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Fld emits fd = mem[rs1+imm] (fd is an architectural index; use FReg).
func (b *Builder) Fld(fd, rs1 uint8, imm int64) int {
	return b.emit(Inst{Op: FLD, Rd: fd, Rs1: rs1, Imm: imm})
}

// Fst emits mem[rs1+imm] = fs (fs is an architectural index; use FReg).
func (b *Builder) Fst(fs, rs1 uint8, imm int64) int {
	return b.emit(Inst{Op: FST, Rs1: rs1, Rs2: fs, Imm: imm})
}

// Br emits a conditional branch to a label.
func (b *Builder) Br(op Op, rs1, rs2 uint8, label string) int {
	i := b.emit(Inst{Op: op, Rs1: rs1, Rs2: rs2})
	b.fixups = append(b.fixups, fixup{i, label})
	return i
}

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) int {
	i := b.emit(Inst{Op: JMP})
	b.fixups = append(b.fixups, fixup{i, label})
	return i
}

// Call emits a direct call to a label.
func (b *Builder) Call(label string) int {
	i := b.emit(Inst{Op: CALL})
	b.fixups = append(b.fixups, fixup{i, label})
	return i
}

// CallR emits an indirect call through rs1.
func (b *Builder) CallR(rs1 uint8) int { return b.emit(Inst{Op: CALR, Rs1: rs1}) }

// Jr emits an indirect jump through rs1.
func (b *Builder) Jr(rs1 uint8) int { return b.emit(Inst{Op: JR, Rs1: rs1}) }

// Ret emits a return.
func (b *Builder) Ret() int { return b.emit(Inst{Op: RET}) }

// Halt emits a HALT.
func (b *Builder) Halt() int { return b.emit(Inst{Op: HALT}) }

// Nop emits a NOP.
func (b *Builder) Nop() int { return b.emit(Inst{Op: NOP}) }

// LabelAddr emits code loading the instruction index of label into rd
// (for indirect jumps/calls through tables built at run time the workloads
// instead store indices into memory; this handles the direct case).
func (b *Builder) LabelAddr(rd uint8, label string) {
	i := b.I(ADDI, rd, RegZero, 0)
	b.fixups = append(b.fixups, fixup{i, label})
}

// Program resolves labels and returns the assembled program. It panics on
// assembly errors (undefined labels, duplicate labels): workloads are
// compiled into the binary, so a failure here is a programming bug, not a
// runtime condition.
func (b *Builder) Program() *Program {
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("%s: undefined label %q", b.name, f.label))
			continue
		}
		in := &b.insts[f.inst]
		if in.Op == ADDI { // LabelAddr fixup
			in.Imm = int64(idx)
		} else {
			in.Targ = int32(idx)
		}
	}
	if len(b.errs) > 0 {
		panic(b.errs[0])
	}
	p := &Program{Name: b.name, Insts: b.insts, Labels: b.labels}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}
