package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassCoverage(t *testing.T) {
	for op := NOP; op < Op(NumOps); op++ {
		// Every opcode must stringify and classify without panicking.
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
		_ = op.Class()
	}
}

func TestClassPredicatesConsistent(t *testing.T) {
	for op := NOP; op < Op(NumOps); op++ {
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%v is both load and store", op)
		}
		if op.IsCondBranch() && !op.IsControl() {
			t.Errorf("%v cond branch but not control", op)
		}
		if op.IsMem() && op.IsControl() {
			t.Errorf("%v both mem and control", op)
		}
		if op.IsIndirect() && !op.IsControl() {
			t.Errorf("%v indirect but not control", op)
		}
	}
}

func TestInstSourcesAndDest(t *testing.T) {
	cases := []struct {
		in   Inst
		srcs []uint8
		dest uint8
	}{
		{Inst{Op: ADD, Rd: 3, Rs1: 1, Rs2: 2}, []uint8{1, 2}, 3},
		{Inst{Op: ADDI, Rd: 3, Rs1: 1, Imm: 5}, []uint8{1}, 3},
		{Inst{Op: LD, Rd: 4, Rs1: 2, Imm: 8}, []uint8{2}, 4},
		{Inst{Op: ST, Rs1: 2, Rs2: 5, Imm: 8}, []uint8{2, 5}, NoReg},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Targ: 7}, []uint8{1, 2}, NoReg},
		{Inst{Op: JMP, Targ: 7}, nil, NoReg},
		{Inst{Op: CALL, Targ: 7}, nil, RegLink},
		{Inst{Op: RET}, []uint8{RegLink}, NoReg},
		{Inst{Op: JR, Rs1: 9}, []uint8{9}, NoReg},
		{Inst{Op: LUI, Rd: 6, Imm: 1}, nil, 6},
	}
	for _, c := range cases {
		got := c.in.Sources(nil)
		if len(got) != len(c.srcs) {
			t.Errorf("%v: sources %v, want %v", c.in.Op, got, c.srcs)
			continue
		}
		for i := range got {
			if got[i] != c.srcs[i] {
				t.Errorf("%v: sources %v, want %v", c.in.Op, got, c.srcs)
			}
		}
		if d := c.in.Dest(); d != c.dest {
			t.Errorf("%v: dest %d, want %d", c.in.Op, d, c.dest)
		}
	}
}

func TestBuilderLabelsResolve(t *testing.T) {
	b := NewBuilder("t")
	b.Li(1, 10)
	b.Label("loop")
	b.I(ADDI, 1, 1, -1)
	b.Br(BNE, 1, RegZero, "loop")
	b.Halt()
	p := b.Program()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	loop := p.Labels["loop"]
	var br *Inst
	for i := range p.Insts {
		if p.Insts[i].Op == BNE {
			br = &p.Insts[i]
		}
	}
	if br == nil || int(br.Targ) != loop {
		t.Fatalf("branch target not resolved to label: %+v (loop=%d)", br, loop)
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undefined label")
		}
	}()
	b := NewBuilder("t")
	b.Jmp("nowhere")
	b.Program()
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate label")
		}
	}()
	b := NewBuilder("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Program()
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := &Program{Name: "bad", Insts: []Inst{{Op: JMP, Targ: 99}}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected out-of-range target error")
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := &Program{Name: "bad", Insts: []Inst{{Op: ADD, Rd: 70, Rs1: 1, Rs2: 2}}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected register range error")
	}
}

// Property: for any opcode, Sources never returns more than 2 registers and
// Dest is always a valid register or NoReg.
func TestSourcesDestBounds(t *testing.T) {
	f := func(op8, rd, rs1, rs2 uint8) bool {
		in := Inst{Op: Op(int(op8) % NumOps), Rd: rd % NumRegs, Rs1: rs1 % NumRegs, Rs2: rs2 % NumRegs}
		srcs := in.Sources(nil)
		if len(srcs) > 2 {
			return false
		}
		d := in.Dest()
		return d == NoReg || d < NumRegs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPCAddr(t *testing.T) {
	if PCAddr(0) != 0 || PCAddr(3) != 12 {
		t.Fatalf("PCAddr wrong: %d %d", PCAddr(0), PCAddr(3))
	}
}
