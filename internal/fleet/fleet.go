// Package fleet distributes simulation work across a pool of backends.
// A Backend executes one run or experiment; Local wraps the in-process
// Lab client, Remote speaks the r3dlad wire format over HTTP, and Pool
// routes requests across many backends — least-loaded dispatch with
// per-backend inflight accounting, health probing with backoff for dead
// members, bounded retries that exclude the backend that failed, and
// optional hedging of straggler requests.
//
// The contract that makes distribution safe is determinism: every run is
// a pure function of (workload, config, budget), keyed canonically as
// workload|configKey@budget. Any backend may execute any cell, a retried
// or hedged cell returns the same bytes as the first attempt, and output
// assembled from a fleet is byte-identical to a fully local run. The
// sweep journal and the singleflight result cache both sit on the client
// side of the Backend boundary, so checkpoint/resume and cross-request
// dedup behave identically whether cells run locally or remotely.
package fleet

import (
	"context"
	"errors"

	"r3dla/internal/lab"
)

// Typed dispatch errors. Request-validation failures keep their lab
// sentinels (lab.ErrInvalid, lab.ErrUnknownWorkload, …) so callers'
// errors.Is checks work unchanged across the network; the errors below
// classify backend faults, which the pool treats as retryable.
var (
	// ErrUnavailable marks a backend that cannot take the request right
	// now: connection refused or dropped, or a request timeout. Retrying
	// elsewhere is safe; the member is presumed dead until re-probed.
	ErrUnavailable = errors.New("fleet: backend unavailable")

	// ErrOverloaded marks a 503 from the server's admission control: the
	// backend is alive but shedding load. The pool treats it as
	// backpressure — prefer another member, or wait for capacity — not
	// as a death; an overloaded member is never marked down.
	ErrOverloaded = errors.New("fleet: backend at capacity")

	// ErrBackend marks a backend-side failure (5xx, malformed response,
	// truncated stream). Deterministic work is safe to retry elsewhere.
	ErrBackend = errors.New("fleet: backend error")

	// ErrNoBackends means no backend was eligible to take the request
	// (every member excluded or the pool is empty).
	ErrNoBackends = errors.New("fleet: no eligible backends")
)

// Backend executes simulation work. Implementations must be safe for
// concurrent use; all results are deterministic functions of the request,
// so identical requests to different backends are interchangeable.
type Backend interface {
	// Name identifies the backend in errors and logs.
	Name() string

	// Run executes one simulation request.
	Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error)

	// Experiment regenerates one paper artifact by id, at the backend's
	// default budget.
	Experiment(ctx context.Context, id string) (*lab.Report, error)

	// Check probes liveness; nil means the backend can take work.
	Check(ctx context.Context) error

	// Close releases the backend's resources.
	Close() error
}

// loadReporter is the optional Backend extension the pool uses to fold
// real server load into routing: Remote implements it via GET /v1/stats.
type loadReporter interface {
	Stats(ctx context.Context) (lab.Stats, error)
}

// Retryable reports whether err is a backend fault worth retrying on a
// different member (as opposed to a validation error or the caller's own
// cancellation, which would fail identically everywhere).
func Retryable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrOverloaded) || errors.Is(err, ErrBackend)
}
