package fleet

import (
	"sync"
	"time"
)

// breaker is a per-member circuit breaker, the layer of protection the
// health prober cannot provide: the prober asks "does /v1/healthz
// answer?", the breaker asks "do real requests keep failing?". A member
// whose healthz revives but whose runs still die would otherwise flap —
// revived by the prober, demoted by the next dispatch, forever. The
// breaker remembers consecutive hard faults across that cycle and keeps
// the member out of rotation until a half-open probe request proves it.
//
// States: closed (normal) → open after threshold consecutive hard
// faults; open → half-open when the cooldown expires; half-open admits
// one trial request (only while the member is idle) — success closes the
// breaker, failure reopens it with the cooldown doubled (capped).
type breaker struct {
	threshold int           // consecutive hard faults to open
	base      time.Duration // first cooldown
	max       time.Duration // cooldown cap

	mu        sync.Mutex
	state     brkState
	consec    int           // consecutive hard faults while closed
	cooldown  time.Duration // current open duration
	openUntil time.Time
}

type brkState int

const (
	brkClosed brkState = iota
	brkOpen
	brkHalfOpen
)

func (s brkState) String() string {
	switch s {
	case brkOpen:
		return "open"
	case brkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// newBreaker builds a breaker; threshold <= 0 disables breaking entirely
// (returns nil — every method is nil-safe and permissive).
func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, base: cooldown, max: 8 * cooldown}
}

// blocked reports whether the member must be skipped right now. An open
// breaker whose cooldown has expired transitions to half-open here; a
// half-open breaker admits a request only while the member is idle
// (inflight == 0), so exactly one class of trial traffic probes it
// instead of a thundering herd.
func (b *breaker) blocked(now time.Time, inflight int64) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brkClosed:
		return false
	case brkOpen:
		if now.Before(b.openUntil) {
			return true
		}
		b.state = brkHalfOpen
	}
	return inflight > 0
}

// success records a request the member answered (including 503 sheds —
// an overloaded member is alive): the breaker closes and the failure
// streak and cooldown reset.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = brkClosed
	b.consec = 0
	b.cooldown = 0
	b.mu.Unlock()
}

// failure records a hard fault (the same class that marks a member
// down). While closed it counts toward the threshold; a half-open trial
// failure reopens immediately with the cooldown doubled.
func (b *breaker) failure(now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brkHalfOpen:
		b.cooldown *= 2
		if b.cooldown > b.max {
			b.cooldown = b.max
		}
		b.state = brkOpen
		b.openUntil = now.Add(b.cooldown)
	case brkClosed:
		b.consec++
		if b.consec >= b.threshold {
			b.state = brkOpen
			b.cooldown = b.base
			b.openUntil = now.Add(b.cooldown)
		}
	case brkOpen:
		// A straggling in-flight request failed after the breaker already
		// opened; the open window stands.
	}
}

// status renders the current state for MemberStatus.
func (b *breaker) status() string {
	if b == nil {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
