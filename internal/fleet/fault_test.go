package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"r3dla/internal/faultinject"
	"r3dla/internal/lab"
)

// streamHandler serves a healthy NDJSON run response (progress + result).
func streamHandler(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	fmt.Fprintln(w, `{"event":"prep","workload":"mcf"}`)
	fmt.Fprintln(w, `{"event":"run","workload":"mcf","key":"k"}`)
	fmt.Fprintln(w, `{"event":"result","result":{"workload":"mcf","config":"k","budget":100,"ipc":1.25,"cycles":80,"committed":100,"reboots":0,"boq_wrong":0,"l1d_mpki":0.5,"dram_traffic":64}}`)
}

// TestRemoteInjectedConnectFault: an armed connect error surfaces as a
// retryable ErrUnavailable — indistinguishable from a refused socket, so
// the pool's retry machinery handles it unchanged.
func TestRemoteInjectedConnectFault(t *testing.T) {
	p := faultinject.New(61)
	p.MustArm(faultinject.Policy{Point: faultinject.RemoteConnect, Mode: faultinject.Error, Limit: 1})
	r := fakeServer(t, streamHandler, WithFaults(p))

	_, err := r.Run(context.Background(), testReq(100))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
	if !Retryable(err) {
		t.Fatalf("injected connect fault %v not retryable", err)
	}
	// The fault budget is spent: the retry succeeds on the same Remote.
	if res, err := r.Run(context.Background(), testReq(100)); err != nil || res.IPC != 1.25 {
		t.Fatalf("post-fault request: res=%+v err=%v", res, err)
	}
}

// TestRemoteInjectedStreamCut: a mid-stream body cut (armed Drop) kills
// the response before its terminal line; the Remote must classify it as
// a retryable ErrUnavailable exactly like a dying backend.
func TestRemoteInjectedStreamCut(t *testing.T) {
	p := faultinject.New(62)
	// The healthy stream is ~3 lines; cut after 40 bytes, mid progress.
	p.MustArm(faultinject.Policy{Point: faultinject.RemoteStream, Mode: faultinject.Drop, Drop: 40, Limit: 1})
	r := fakeServer(t, streamHandler, WithFaults(p))

	_, err := r.Run(context.Background(), testReq(100))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
	if res, err := r.Run(context.Background(), testReq(100)); err != nil || res.Workload != "mcf" {
		t.Fatalf("post-fault request: res=%+v err=%v", res, err)
	}
}

// TestRemoteInjectedLatencySpike: an armed connect delay stalls the
// request but it still completes; the caller's cancellation cuts the
// stall short.
func TestRemoteInjectedLatencySpike(t *testing.T) {
	p := faultinject.New(63)
	p.MustArm(faultinject.Policy{Point: faultinject.RemoteConnect, Mode: faultinject.Delay, Delay: 20 * time.Millisecond, Limit: 1})
	r := fakeServer(t, streamHandler, WithFaults(p))

	start := time.Now()
	if _, err := r.Run(context.Background(), testReq(100)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("latency spike did not stall: %v", elapsed)
	}

	p2 := faultinject.New(63)
	p2.MustArm(faultinject.Policy{Point: faultinject.RemoteConnect, Mode: faultinject.Delay, Delay: 10 * time.Second, Limit: 1})
	r2 := fakeServer(t, streamHandler, WithFaults(p2))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start = time.Now()
	_, err := r2.Run(ctx, testReq(100))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled stall returned %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not cut the injected stall short")
	}
}

// TestPoolReoffersHardFaultedMembers: transient hard faults on every
// member must not fail a request while retry budget remains — the
// dispatcher re-offers hard-faulted members after a backoff instead of
// treating a reset connection as a permanently dead backend. (Before
// this, two transient faults could kill a request on a 2-member fleet
// no matter how large the retry budget was.)
func TestPoolReoffersHardFaultedMembers(t *testing.T) {
	var calls atomic.Int64
	flaky := &fakeBackend{name: "flaky", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		if calls.Add(1) <= 2 {
			return nil, fmt.Errorf("%w: connection reset", ErrUnavailable)
		}
		return okRun("flaky")(ctx, req)
	}}
	p := newTestPool(t, []Backend{flaky}, WithRetries(4))
	res, err := p.Run(context.Background(), testReq(100))
	if err != nil {
		t.Fatalf("request failed despite remaining retry budget: %v", err)
	}
	if res.Config != "flaky" {
		t.Fatalf("unexpected result %+v", res)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("backend saw %d calls, want 3 (2 faults + 1 success)", got)
	}

	// The budget still bounds the loop: a member that never recovers
	// exhausts the retries and surfaces its real error.
	dead := &fakeBackend{name: "dead", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: connection reset", ErrUnavailable)
	}}
	p2 := newTestPool(t, []Backend{dead}, WithRetries(3))
	if _, err := p2.Run(context.Background(), testReq(101)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dead backend: got %v, want ErrUnavailable", err)
	}
	if got := dead.calls.Load(); got > 3 {
		t.Fatalf("dead backend saw %d calls; retry budget 3 did not bound the loop", got)
	}
}

// TestRemoteOwnsBoundedTransport pins the satellite fix: a plain
// NewRemote must NOT ride http.DefaultClient — it owns a transport with
// every limit pinned.
func TestRemoteOwnsBoundedTransport(t *testing.T) {
	r, err := NewRemote("127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.hc == http.DefaultClient {
		t.Fatal("Remote inherited http.DefaultClient")
	}
	tr := r.owned
	if tr == nil {
		t.Fatal("Remote does not own its transport")
	}
	if tr.MaxIdleConnsPerHost != 32 || tr.MaxIdleConns != 128 {
		t.Fatalf("idle-conn limits: perHost=%d total=%d", tr.MaxIdleConnsPerHost, tr.MaxIdleConns)
	}
	if tr.TLSHandshakeTimeout != 10*time.Second {
		t.Fatalf("TLS handshake timeout %v", tr.TLSHandshakeTimeout)
	}
	if tr.ResponseHeaderTimeout != 5*time.Minute {
		t.Fatalf("response header timeout %v", tr.ResponseHeaderTimeout)
	}
	if tr.IdleConnTimeout != 90*time.Second {
		t.Fatalf("idle conn timeout %v", tr.IdleConnTimeout)
	}
	if tr.DialContext == nil {
		t.Fatal("no bounded dialer")
	}
}

// TestRemoteBorrowedClientUntouched: WithHTTPClient keeps borrow
// semantics — Close tears nothing down and WithFaults wraps a clone, so
// a shared client's transport is never mutated.
func TestRemoteBorrowedClientUntouched(t *testing.T) {
	shared := &http.Client{}
	p := faultinject.New(64)
	p.MustArm(faultinject.Policy{Point: faultinject.RemoteConnect, Mode: faultinject.Error})
	r, err := NewRemote("127.0.0.1:9", WithHTTPClient(shared), WithFaults(p))
	if err != nil {
		t.Fatal(err)
	}
	if r.owned != nil {
		t.Fatal("borrowed client marked as owned")
	}
	if shared.Transport != nil {
		t.Fatal("WithFaults mutated the shared client's transport")
	}
	if _, ok := r.hc.Transport.(*faultTransport); !ok {
		t.Fatalf("fault wrap missing: %T", r.hc.Transport)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(context.Background(), testReq(100))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("injected fault through borrowed client: %v", err)
	}
}
