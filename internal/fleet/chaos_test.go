package fleet

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"r3dla/internal/sweep"
)

// TestFleetSweep503Injection: a backend that sheds every /v1/runs
// request with 503 stays in the pool (admission shedding is
// backpressure, not death — the member is alive and keeps answering
// healthz), its cells overflow to the other member, and the sweep
// completes with output byte-identical to local.
func TestFleetSweep503Injection(t *testing.T) {
	want := localSweep(t)

	flakySrv, _ := newBackendServer(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/runs" {
				http.Error(w, `{"error":"server at capacity, retry later"}`, http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	okSrv, _ := newBackendServer(t, nil)

	var backends []Backend
	for _, u := range []string{flakySrv.URL, okSrv.URL} {
		r, err := NewRemote(u)
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, r)
	}
	pool, err := NewPool(backends)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })

	res, err := sweep.Run(context.Background(), pool, multiAxisSpec(), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderSweep(t, res); !bytes.Equal(got, want) {
		t.Fatal("sweep output with 503 injection differs from local run")
	}
	if st := pool.Status(); !st[0].Healthy {
		t.Fatal("a shedding backend was marked down; overload is backpressure, not death")
	}
}

// TestFleetSweepBackendHardKill kills one backend mid-sweep — its
// connections dropped with cells in flight — and asserts those cells are
// retried on the survivors, the aggregate output stays byte-identical to
// a local run, the journal is left consistent, and a resume re-dispatches
// nothing.
func TestFleetSweepBackendHardKill(t *testing.T) {
	want := localSweep(t)
	journal := filepath.Join(t.TempDir(), "sweep.ndjson")

	// The victim traps /v1/runs requests until the kill, so it completes
	// zero cells and dies holding work — the worst-case failure point.
	trapped := make(chan struct{})
	hasTraffic := make(chan struct{})
	var trafficOnce sync.Once
	victim, _ := newBackendServer(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/runs" {
				trafficOnce.Do(func() { close(hasTraffic) })
				select {
				case <-trapped:
				case <-r.Context().Done():
				}
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	s1, _ := newBackendServer(t, nil)
	s2, _ := newBackendServer(t, nil)

	var backends []Backend
	for _, u := range []string{victim.URL, s1.URL, s2.URL} {
		r, err := NewRemote(u)
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, r)
	}
	pool, err := NewPool(backends)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })

	// Kill once the victim holds cells AND the survivors have made
	// progress (a genuine mid-sweep failure); the fallback timer keeps
	// the test live even under pathological scheduling where every cell
	// lands on the victim first.
	progressed := make(chan struct{})
	var progressOnce sync.Once
	go func() {
		<-hasTraffic
		select {
		case <-progressed:
		case <-time.After(20 * time.Second):
		}
		// Hard-kill: release the trap and sever every open connection,
		// so in-flight cells surface as dropped streams at the client.
		close(trapped)
		victim.CloseClientConnections()
	}()

	var mu sync.Mutex
	completed := 0
	res, err := sweep.Run(context.Background(), pool, multiAxisSpec(), sweep.Options{
		Journal: journal,
		Progress: func(sweep.Event) {
			mu.Lock()
			completed++
			if completed == 2 {
				progressOnce.Do(func() { close(progressed) })
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderSweep(t, res); !bytes.Equal(got, want) {
		t.Fatal("sweep output after a mid-sweep backend kill differs from local run")
	}
	if st := pool.Status(); st[0].Healthy {
		t.Fatal("the killed backend was not marked down")
	}

	// The journal the failover left behind is complete and consistent: a
	// resume through a fresh pool restores every cell without a single
	// backend call, and renders the same bytes.
	freshBackends := make([]Backend, 0, 2)
	for _, u := range []string{s1.URL, s2.URL} {
		r, err := NewRemote(u)
		if err != nil {
			t.Fatal(err)
		}
		freshBackends = append(freshBackends, r)
	}
	fresh, err := NewPool(freshBackends)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fresh.Close() })
	resumed, err := sweep.Run(context.Background(), fresh, multiAxisSpec(),
		sweep.Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != len(res.Cells) {
		t.Fatalf("resume restored %d cells, want %d", resumed.Resumed, len(res.Cells))
	}
	if fresh.BackendCalls() != 0 {
		t.Fatalf("resume issued %d backend calls, want 0", fresh.BackendCalls())
	}
	if got := renderSweep(t, resumed); !bytes.Equal(got, want) {
		t.Fatal("resumed sweep output differs from local run")
	}
}

// TestFleetSweepClientKillResume kills the *client* mid-sweep (context
// cancellation after two checkpointed cells) and resumes through a fresh
// pool: only the missing cells are dispatched, and the final output is
// byte-identical to an uninterrupted local run.
func TestFleetSweepClientKillResume(t *testing.T) {
	want := localSweep(t)
	journal := filepath.Join(t.TempDir(), "sweep.ndjson")

	servers := make([]*httptest.Server, 2)
	for i := range servers {
		servers[i], _ = newBackendServer(t, nil)
	}
	mkPool := func() *Pool {
		var backends []Backend
		for _, srv := range servers {
			r, err := NewRemote(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			backends = append(backends, r)
		}
		p, err := NewPool(backends)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	completed := 0
	_, err := sweep.Run(ctx, mkPool(), multiAxisSpec(), sweep.Options{
		Journal: journal,
		Progress: func(sweep.Event) {
			mu.Lock()
			completed++
			if completed == 2 {
				cancel()
			}
			mu.Unlock()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error: %v", err)
	}

	cells, cerr := multiAxisSpec().Expand()
	if cerr != nil {
		t.Fatal(cerr)
	}
	fresh := mkPool()
	resumed, err := sweep.Run(context.Background(), fresh, multiAxisSpec(),
		sweep.Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed < 2 || resumed.Resumed >= len(cells) {
		t.Fatalf("resume restored %d of %d cells", resumed.Resumed, len(cells))
	}
	if got, wantCalls := fresh.BackendCalls(), int64(len(cells)-resumed.Resumed); got != wantCalls {
		t.Fatalf("resume issued %d backend calls, want %d (journaled cells re-dispatched)", got, wantCalls)
	}
	if got := renderSweep(t, resumed); !bytes.Equal(got, want) {
		t.Fatal("resumed distributed sweep output differs from uninterrupted local run")
	}
}
