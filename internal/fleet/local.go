package fleet

import (
	"context"

	"r3dla/internal/lab"
)

// Local is the in-process Backend: requests execute on the wrapped Lab's
// worker pool and hit its singleflight caches directly. A Local member in
// a pool lets one process contribute its own cores alongside remote
// r3dlad instances.
type Local struct {
	lab *lab.Lab
}

// NewLocal wraps a Lab as a Backend.
func NewLocal(l *lab.Lab) *Local { return &Local{lab: l} }

// Lab returns the wrapped Lab (the CLI reads its cache instrumentation).
func (b *Local) Lab() *lab.Lab { return b.lab }

func (b *Local) Name() string { return "local" }

func (b *Local) Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
	return b.lab.Run(ctx, req)
}

func (b *Local) Experiment(ctx context.Context, id string) (*lab.Report, error) {
	return b.lab.Experiment(ctx, lab.ExperimentRequest{ID: id})
}

// Check always succeeds: an in-process backend is alive by construction.
func (b *Local) Check(ctx context.Context) error { return nil }

func (b *Local) Close() error { return nil }
