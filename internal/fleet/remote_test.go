package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"r3dla/internal/lab"
)

// fakeServer serves a scripted handler and returns a Remote pointed at it.
func fakeServer(t *testing.T, h http.HandlerFunc, opts ...RemoteOption) *Remote {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	r, err := NewRemote(srv.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRemoteErrorMapping pins the wire-to-typed-error taxonomy: the
// lab's sentinels survive the HTTP round-trip, and infrastructure faults
// classify as retryable.
func TestRemoteErrorMapping(t *testing.T) {
	for _, tc := range []struct {
		name      string
		status    int
		body      string
		want      error
		retryable bool
	}{
		{"validation 400", http.StatusBadRequest, `{"error":"lab: invalid request: budget"}`, lab.ErrInvalid, false},
		{"unknown 404", http.StatusNotFound, `{"error":"lab: unknown workload: \"nope\""}`, lab.ErrUnknownWorkload, false},
		{"admission 503", http.StatusServiceUnavailable, `{"error":"server at capacity"}`, ErrOverloaded, true},
		{"fault 500", http.StatusInternalServerError, `boom`, ErrBackend, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := fakeServer(t, func(w http.ResponseWriter, req *http.Request) {
				w.WriteHeader(tc.status)
				fmt.Fprint(w, tc.body)
			})
			_, err := r.Run(context.Background(), testReq(100))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if Retryable(err) != tc.retryable {
				t.Fatalf("Retryable(%v) = %v, want %v", err, Retryable(err), tc.retryable)
			}
		})
	}
}

// TestRemoteExperimentNotFound: 404 on the experiment endpoint maps to
// the experiment sentinel, not the workload one.
func TestRemoteExperimentNotFound(t *testing.T) {
	r := fakeServer(t, func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"lab: unknown experiment"}`)
	})
	if _, err := r.Experiment(context.Background(), "nope"); !errors.Is(err, lab.ErrUnknownExperiment) {
		t.Fatalf("got %v, want ErrUnknownExperiment", err)
	}
}

// TestRemoteConnectionRefused: a dead address is retryable.
func TestRemoteConnectionRefused(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := srv.URL
	srv.Close()
	r, err := NewRemote(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), testReq(100)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
}

// TestRemoteRunStream parses the NDJSON run protocol: progress lines are
// drained, the terminal result line carries the payload.
func TestRemoteRunStream(t *testing.T) {
	r := fakeServer(t, func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("stream") == "" {
			t.Error("client did not request the NDJSON stream")
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"event":"prep","workload":"mcf"}`)
		fmt.Fprintln(w, `{"event":"run","workload":"mcf","key":"k"}`)
		fmt.Fprintln(w, `{"event":"result","result":{"workload":"mcf","config":"k","budget":100,"ipc":1.25,"cycles":80,"committed":100,"reboots":0,"boq_wrong":0,"l1d_mpki":0.5,"dram_traffic":64}}`)
	})
	res, err := r.Run(context.Background(), testReq(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "mcf" || res.IPC != 1.25 || res.Cycles != 80 {
		t.Fatalf("decoded result wrong: %+v", res)
	}
}

// TestRemoteRunStreamTerminalError: a server-side error line is a
// retryable backend fault (validation was rejected before streaming).
func TestRemoteRunStreamTerminalError(t *testing.T) {
	r := fakeServer(t, func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, `{"event":"error","error":"simulation exploded"}`)
	})
	_, err := r.Run(context.Background(), testReq(100))
	if !errors.Is(err, ErrBackend) {
		t.Fatalf("got %v, want ErrBackend", err)
	}
}

// TestRemoteRunStreamTruncated: a stream that dies before its terminal
// line (a killed backend) is retryable, so the pool reruns the cell
// elsewhere.
func TestRemoteRunStreamTruncated(t *testing.T) {
	r := fakeServer(t, func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, `{"event":"prep","workload":"mcf"}`)
		// Connection ends here — no terminal line.
	})
	_, err := r.Run(context.Background(), testReq(100))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
}

// TestRemoteRequestTimeout: the per-request cap fires as a retryable
// fault; the caller's own cancellation does not.
func TestRemoteRequestTimeout(t *testing.T) {
	blocked := make(chan struct{})
	h := func(w http.ResponseWriter, req *http.Request) {
		select {
		case <-blocked:
		case <-req.Context().Done():
		}
	}
	r := fakeServer(t, h, WithRequestTimeout(20*time.Millisecond))
	defer close(blocked)
	if _, err := r.Run(context.Background(), testReq(100)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("timeout: got %v, want ErrUnavailable", err)
	}

	slow := fakeServer(t, h)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := slow.Run(ctx, testReq(100)); !errors.Is(err, context.Canceled) {
		t.Fatalf("caller cancel: got %v, want context.Canceled", err)
	}
}

// TestRemoteStats decodes the /v1/stats body the router balances on.
func TestRemoteStats(t *testing.T) {
	r := fakeServer(t, func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/v1/stats" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, `{"inflight":3,"capacity":64,"max_budget":10000000,"budget":150000,"completed":9,"canceled":1,"runs":7}`)
	})
	st, err := r.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Inflight != 3 || st.Capacity != 64 || st.Runs != 7 {
		t.Fatalf("decoded stats wrong: %+v", st)
	}
}

// TestNewRemoteValidation rejects unusable addresses up front.
func TestNewRemoteValidation(t *testing.T) {
	if _, err := NewRemote("://bad"); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("bad address: %v", err)
	}
}
