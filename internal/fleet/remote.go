package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"r3dla/internal/faultinject"
	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// Remote is the HTTP Backend: it speaks r3dlad's wire format — JSON
// requests, NDJSON streaming responses for runs and sweeps — and maps
// HTTP statuses back onto the lab's typed errors, so a caller cannot tell
// a remote validation failure from a local one. Runs always use
// ?stream=1: progress lines keep the connection demonstrably alive during
// long simulations, and a connection dropped mid-run surfaces as a
// retryable ErrUnavailable instead of a hang.
type Remote struct {
	name     string
	base     string // http://host:port, no trailing slash
	hc       *http.Client
	owned    *http.Transport // the transport this Remote built (nil if the client was borrowed)
	timeout  time.Duration   // per-request cap; 0 = none (simulations can be long)
	priority string          // admission class sent with every request ("" = server default)
	faults   *faultinject.Plane
}

// RemoteOption configures a Remote.
type RemoteOption func(*Remote)

// WithHTTPClient substitutes the HTTP client (tests, custom transports).
// The Remote borrows it: Close will not tear down its connections.
func WithHTTPClient(hc *http.Client) RemoteOption {
	return func(r *Remote) { r.hc, r.owned = hc, nil }
}

// WithFaults threads a fault-injection plane into the Remote's transport
// (chaos testing only): connect errors, latency spikes and mid-stream
// body cuts, all seed-deterministic. The wrap clones the client struct,
// so a shared client is never mutated.
func WithFaults(p *faultinject.Plane) RemoteOption {
	return func(r *Remote) { r.faults = p }
}

// WithRequestTimeout caps each request's total duration; on expiry the
// request fails with ErrUnavailable so the pool retries it elsewhere
// (0 = no cap — simulation requests are legitimately slow).
func WithRequestTimeout(d time.Duration) RemoteOption {
	return func(r *Remote) { r.timeout = d }
}

// WithPriority stamps every request with an admission class
// (lab.PriorityInteractive or lab.PriorityBatch) via the
// lab.PriorityHeader header, so the server's fair-share admission knows
// bulk traffic from interactive traffic. Empty (the default) sends no
// header, which the server treats as interactive.
func WithPriority(class string) RemoteOption {
	return func(r *Remote) { r.priority = class }
}

// NewRemote builds a Backend for one r3dlad instance. addr is a host:port
// or an http(s) URL.
func NewRemote(addr string, opts ...RemoteOption) (*Remote, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("%w: backend address %q", lab.ErrInvalid, addr)
	}
	tr := newTransport()
	r := &Remote{name: addr, base: strings.TrimRight(base, "/"), hc: &http.Client{Transport: tr}, owned: tr}
	for _, o := range opts {
		o(r)
	}
	if r.faults != nil {
		// Clone the client so a borrowed one is never mutated; the fault
		// wrapper sits in front of whatever transport the client uses.
		base := r.hc.Transport
		if base == nil {
			base = http.DefaultTransport
		}
		hc := *r.hc
		hc.Transport = &faultTransport{base: base, plane: r.faults}
		r.hc = &hc
	}
	return r, nil
}

func (r *Remote) Name() string { return r.name }

// Close releases the Remote's own transport's idle connections; a client
// supplied via WithHTTPClient is borrowed and left untouched.
func (r *Remote) Close() error {
	if r.owned != nil {
		r.owned.CloseIdleConnections()
	}
	return nil
}

// reqCtx applies the per-request timeout on top of the caller's context.
func (r *Remote) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.timeout > 0 {
		return context.WithTimeout(ctx, r.timeout)
	}
	return context.WithCancel(ctx)
}

// wrapNetErr classifies a transport-level failure: the caller's own
// cancellation passes through untouched (retrying elsewhere would fail
// identically), everything else — refused connections, dropped streams,
// the per-request timeout — is a retryable ErrUnavailable.
func (r *Remote) wrapNetErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("%w: %s: %v", ErrUnavailable, r.name, err)
}

// apiError mirrors the server's JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// statusErr maps a non-200 response onto the typed error taxonomy.
// notFound names the sentinel a 404 means for this endpoint (unknown
// workload for runs, unknown experiment for artifacts).
func (r *Remote) statusErr(resp *http.Response, notFound error) error {
	var body apiError
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &body) != nil || body.Error == "" {
		body.Error = strings.TrimSpace(string(data))
		if body.Error == "" {
			body.Error = resp.Status
		}
	}
	switch {
	case resp.StatusCode == http.StatusBadRequest:
		return fmt.Errorf("%w: %s: %s", lab.ErrInvalid, r.name, body.Error)
	case resp.StatusCode == http.StatusNotFound:
		return fmt.Errorf("%w: %s: %s", notFound, r.name, body.Error)
	case resp.StatusCode == http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s: %s", ErrOverloaded, r.name, body.Error)
	default:
		return fmt.Errorf("%w: %s: status %d: %s", ErrBackend, r.name, resp.StatusCode, body.Error)
	}
}

func (r *Remote) postJSON(ctx context.Context, path string, payload any) (*http.Response, error) {
	var body io.Reader
	if payload != nil {
		data, err := json.Marshal(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", lab.ErrInvalid, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBackend, r.name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if r.priority != "" {
		req.Header.Set(lab.PriorityHeader, r.priority)
	}
	return r.hc.Do(req)
}

// streamLine is the client's view of one NDJSON response line; Result
// stays raw until the terminal line's concrete type is known.
type streamLine struct {
	Event  string          `json:"event"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

// readStream consumes an NDJSON response until its terminal line and
// decodes the terminal payload into out. Non-terminal lines (progress,
// sweep cells) are passed raw to onLine when it is non-nil, otherwise
// drained. A stream that ends without a terminal line means the backend
// died mid-request, which is retryable.
func (r *Remote) readStream(ctx context.Context, body io.Reader, out any, onLine func(raw []byte) error) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// A connection cut mid-line arrives as a partial trailing
			// token: that is a died-backend signal (retryable), not a
			// protocol violation. Only a malformed line with more data
			// behind it means the backend is actually speaking garbage.
			if !sc.Scan() {
				if serr := sc.Err(); serr != nil {
					return r.wrapNetErr(ctx, serr)
				}
				return fmt.Errorf("%w: %s: stream cut mid-line", ErrUnavailable, r.name)
			}
			return fmt.Errorf("%w: %s: malformed stream line: %v", ErrBackend, r.name, err)
		}
		switch line.Event {
		case "result":
			if err := json.Unmarshal(line.Result, out); err != nil {
				return fmt.Errorf("%w: %s: malformed result: %v", ErrBackend, r.name, err)
			}
			return nil
		case "error":
			// Post-validation server-side failures are infrastructure
			// faults from the client's perspective (validation errors were
			// rejected before the stream committed to 200).
			return fmt.Errorf("%w: %s: %s", ErrBackend, r.name, line.Error)
		default:
			if onLine != nil {
				if err := onLine(sc.Bytes()); err != nil {
					return err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return r.wrapNetErr(ctx, err)
	}
	return fmt.Errorf("%w: %s: stream ended without a result", ErrUnavailable, r.name)
}

// Run executes one simulation on the backend through POST
// /v1/runs?stream=1 and returns the terminal result.
func (r *Remote) Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
	rctx, cancel := r.reqCtx(ctx)
	defer cancel()
	resp, err := r.postJSON(rctx, "/v1/runs?stream=1", req)
	if err != nil {
		return nil, r.wrapNetErr(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, r.statusErr(resp, lab.ErrUnknownWorkload)
	}
	var res lab.RunResult
	if err := r.readStream(ctx, resp.Body, &res, nil); err != nil {
		return nil, err
	}
	return &res, nil
}

// Experiment regenerates one artifact through POST /v1/experiments/{id}.
// The body is the server's WriteJSON rendering, which round-trips into an
// identical Report — text/JSON/CSV output from a remote report is
// byte-identical to a local run at the same budget.
func (r *Remote) Experiment(ctx context.Context, id string) (*lab.Report, error) {
	rctx, cancel := r.reqCtx(ctx)
	defer cancel()
	resp, err := r.postJSON(rctx, "/v1/experiments/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, r.wrapNetErr(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, r.statusErr(resp, lab.ErrUnknownExperiment)
	}
	var rep lab.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, r.wrapNetErr(ctx, err)
	}
	return &rep, nil
}

// Sweep executes a whole sweep on this backend through POST /v1/sweeps,
// forwarding each NDJSON cell line to onCell (may be nil) and returning
// the terminal aggregate report. The pool routes sweeps cell-by-cell for
// balancing and retry; Sweep is the coarse-grained alternative when one
// backend should own the entire grid (the CI probe drives it).
func (r *Remote) Sweep(ctx context.Context, spec sweep.Spec, onCell func(sweep.StreamLine)) (*lab.Report, error) {
	rctx, cancel := r.reqCtx(ctx)
	defer cancel()
	resp, err := r.postJSON(rctx, "/v1/sweeps", spec)
	if err != nil {
		return nil, r.wrapNetErr(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, r.statusErr(resp, lab.ErrUnknownWorkload)
	}
	var rep lab.Report
	err = r.readStream(ctx, resp.Body, &rep, func(raw []byte) error {
		if onCell == nil {
			return nil
		}
		var line sweep.StreamLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return fmt.Errorf("%w: %s: malformed cell line: %v", ErrBackend, r.name, err)
		}
		if line.Event == "cell" {
			onCell(line)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// Health fetches the backend's /v1/healthz body (liveness plus the
// advertised default budget, which the CLI verifies before distributing
// experiments — experiments run at the server's budget).
func (r *Remote) Health(ctx context.Context) (lab.Health, error) {
	var h lab.Health
	err := r.getJSON(ctx, "/v1/healthz", &h)
	return h, err
}

// Stats fetches the backend's /v1/stats body: admission occupancy and
// capacity plus cache counters, the real-load signal the pool folds into
// least-loaded routing.
func (r *Remote) Stats(ctx context.Context) (lab.Stats, error) {
	var s lab.Stats
	err := r.getJSON(ctx, "/v1/stats", &s)
	return s, err
}

// Check probes liveness through /v1/healthz.
func (r *Remote) Check(ctx context.Context) error {
	_, err := r.Health(ctx)
	return err
}

func (r *Remote) getJSON(ctx context.Context, path string, out any) error {
	rctx, cancel := r.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, r.base+path, nil)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBackend, r.name, err)
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return r.wrapNetErr(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return r.statusErr(resp, ErrBackend)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return r.wrapNetErr(ctx, err)
	}
	return nil
}
