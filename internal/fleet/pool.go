package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"r3dla/internal/exp"
	"r3dla/internal/lab"
)

// Pool routes requests across a set of backends. Dispatch is least-loaded
// (client-side inflight accounting, refined by the server-reported load
// from /v1/stats when a member exposes it); a member whose request fails
// with a backend fault is marked down and the cell is retried on a
// different member (bounded attempts, failed members excluded); a
// background prober revives dead members with exponential backoff; and an
// optional hedge duplicates straggler requests onto a second member —
// safe because every request is deterministic, so whichever copy finishes
// first carries the same bytes.
//
// The pool memoizes run results under the canonical
// workload|configKey@budget key with singleflight semantics, mirroring
// the Lab's own cache: concurrent identical cells collapse onto one
// dispatch, and overlapping sweeps share results client-side no matter
// which backend computed them.
type Pool struct {
	members []*member

	retries      int           // max attempts per request
	hedge        time.Duration // 0 = no hedging
	probeEvery   time.Duration
	probeTimeout time.Duration
	maxBackoff   time.Duration
	jobs         chan struct{} // total-dispatch semaphore; nil = unlimited
	brkThreshold int           // consecutive hard faults to open a member's breaker (0 = disabled)
	brkCooldown  time.Duration // first open window (0 = probeEvery)

	mu      sync.Mutex
	results map[string]*lab.RunResult
	calls   map[string]*flight

	calls64 atomic.Int64 // backend calls actually issued (retries and hedges count)

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// member wraps one backend with its routing state.
type member struct {
	b        Backend
	inflight atomic.Int64 // requests this pool currently has on the member
	load     atomic.Int64 // server-reported inflight at the last stats probe
	healthy  atomic.Bool
	brk      *breaker // consecutive-failure circuit breaker (nil = disabled)

	mu        sync.Mutex
	backoff   time.Duration
	nextProbe time.Time
	lastErr   error
}

// flight is one in-progress singleflight dispatch.
type flight struct {
	done chan struct{}
	res  *lab.RunResult
	err  error
}

// PoolOption configures a Pool.
type PoolOption func(*Pool)

// WithRetries bounds how many backends one request may be attempted on
// before its last error surfaces (default 3; each attempt excludes the
// members that already failed it).
func WithRetries(n int) PoolOption {
	return func(p *Pool) {
		if n > 0 {
			p.retries = n
		}
	}
}

// WithHedgeAfter duplicates a request onto a second backend when the
// first has not answered within d; the first successful copy wins and the
// other is canceled. 0 (the default) disables hedging.
func WithHedgeAfter(d time.Duration) PoolOption {
	return func(p *Pool) { p.hedge = d }
}

// WithProbeEvery sets the health-probe cadence for dead members (default
// 5s; the re-probe backoff starts here and doubles up to 8x).
func WithProbeEvery(d time.Duration) PoolOption {
	return func(p *Pool) {
		if d > 0 {
			p.probeEvery = d
		}
	}
}

// WithProbeTimeout caps each health probe (default 3s).
func WithProbeTimeout(d time.Duration) PoolOption {
	return func(p *Pool) {
		if d > 0 {
			p.probeTimeout = d
		}
	}
}

// WithJobs bounds how many requests the pool has in flight across all
// members (<= 0 = unlimited, the default: each backend already bounds its
// own compute, and admission control sheds the rest).
func WithJobs(n int) PoolOption {
	return func(p *Pool) {
		if n > 0 {
			p.jobs = make(chan struct{}, n)
		}
	}
}

// WithBreaker tunes the per-member circuit breaker: threshold
// consecutive hard faults open a member's breaker for cooldown, after
// which one idle-time trial request decides between closing it and
// doubling the cooldown. threshold <= 0 disables breaking; cooldown <= 0
// defaults to the probe cadence. The default is threshold 5.
//
// The breaker composes with (not replaces) the health prober: the
// prober's healthz revival restores routing eligibility, but a member
// whose healthz answers while its runs keep failing stays broken until a
// real request survives — no flapping between the two signals.
func WithBreaker(threshold int, cooldown time.Duration) PoolOption {
	return func(p *Pool) {
		p.brkThreshold = threshold
		p.brkCooldown = cooldown
	}
}

// NewPool builds a router over the given backends and starts its health
// prober. Members start healthy (the first failed dispatch demotes them);
// Close stops the prober and closes every backend.
func NewPool(backends []Backend, opts ...PoolOption) (*Pool, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("%w: empty pool", ErrNoBackends)
	}
	p := &Pool{
		retries:      3,
		probeEvery:   5 * time.Second,
		probeTimeout: 3 * time.Second,
		brkThreshold: 5,
		results:      make(map[string]*lab.RunResult),
		calls:        make(map[string]*flight),
		stop:         make(chan struct{}),
	}
	for _, b := range backends {
		m := &member{b: b}
		m.healthy.Store(true)
		p.members = append(p.members, m)
	}
	for _, o := range opts {
		o(p)
	}
	p.maxBackoff = 8 * p.probeEvery
	cooldown := p.brkCooldown
	if cooldown <= 0 {
		cooldown = p.probeEvery
	}
	for _, m := range p.members {
		m.brk = newBreaker(p.brkThreshold, cooldown)
	}
	p.wg.Add(1)
	go p.prober()
	return p, nil
}

func (p *Pool) Name() string { return fmt.Sprintf("fleet(%d)", len(p.members)) }

// Close stops the health prober and closes every member backend.
func (p *Pool) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.stop)
		p.wg.Wait()
		for _, m := range p.members {
			if cerr := m.b.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// BackendCalls reports how many requests were actually issued to members
// (cache hits excluded; retries and hedges each count). The resume and
// dedup tests assert against it the way lab.RunCount is asserted locally.
func (p *Pool) BackendCalls() int64 { return p.calls64.Load() }

// MemberStatus is one member's routing view.
type MemberStatus struct {
	Name     string
	Healthy  bool
	Inflight int64
	Breaker  string // "closed", "open", "half-open", or "disabled"
}

// Status snapshots every member's routing state in construction order.
func (p *Pool) Status() []MemberStatus {
	out := make([]MemberStatus, len(p.members))
	for i, m := range p.members {
		out[i] = MemberStatus{
			Name: m.b.Name(), Healthy: m.healthy.Load(),
			Inflight: m.inflight.Load(), Breaker: m.brk.status(),
		}
	}
	return out
}

// ------------------------------------------------------------- dispatch

// Run executes one simulation somewhere in the fleet. Identical
// concurrent requests collapse onto one dispatch, and completed results
// are served from the client-side cache (results are deterministic, so
// the cache never goes stale).
func (p *Pool) Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
	cfg, err := req.Config.Config()
	if err != nil {
		return nil, err
	}
	key := lab.RunKey(req.Workload, cfg, req.Budget)
	for {
		p.mu.Lock()
		if res, ok := p.results[key]; ok {
			p.mu.Unlock()
			return res, nil
		}
		if fl, ok := p.calls[key]; ok {
			p.mu.Unlock()
			select {
			case <-fl.done:
				if fl.err == nil {
					return fl.res, nil
				}
				// The leader failed. If it failed because its own caller
				// went away, take over as the new leader; any other error
				// (validation, exhausted retries) is this caller's too.
				if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) {
					continue
				}
				return nil, fl.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		fl := &flight{done: make(chan struct{})}
		p.calls[key] = fl
		p.mu.Unlock()

		res, err := dispatch(ctx, p, key, func(ctx context.Context, m *member) (*lab.RunResult, error) {
			return m.b.Run(ctx, req)
		})
		p.mu.Lock()
		delete(p.calls, key)
		if err == nil {
			p.results[key] = res
		}
		p.mu.Unlock()
		fl.res, fl.err = res, err
		close(fl.done)
		return res, err
	}
}

// Experiment regenerates one artifact somewhere in the fleet (at the
// serving backend's budget — the CLI verifies the fleet is homogeneous).
func (p *Pool) Experiment(ctx context.Context, id string) (*lab.Report, error) {
	return dispatch(ctx, p, "", func(ctx context.Context, m *member) (*lab.Report, error) {
		return m.b.Experiment(ctx, id)
	})
}

// Experiments regenerates several artifacts concurrently across the
// fleet, delivering results in id order exactly like lab.Experiments —
// assembled output is byte-identical to a local run at the same budget.
func (p *Pool) Experiments(ctx context.Context, ids []string, onResult func(lab.ExperimentResult)) ([]lab.ExperimentResult, error) {
	infos := make([]lab.ExperimentInfo, len(ids))
	for i, id := range ids {
		info, ok := lab.ExperimentByID(id)
		if !ok {
			return nil, fmt.Errorf("%w: %q", lab.ErrUnknownExperiment, id)
		}
		infos[i] = info
	}
	results := exp.RunOrdered(len(ids), func(i int) exp.Result {
		start := time.Now()
		rep, err := p.Experiment(ctx, ids[i])
		return exp.Result{ID: infos[i].ID, Title: infos[i].Title, Report: rep, Err: err, Elapsed: time.Since(start)}
	}, onResult)
	if ctx.Err() != nil {
		for _, r := range results {
			if r.Err != nil {
				return results, ctx.Err()
			}
		}
	}
	return results, nil
}

// Overload backpressure: when a member sheds a request with 503 it is
// soft-excluded so the next pick prefers a different member; when every
// candidate is shedding, the dispatcher waits (doubling from
// overloadWait up to overloadWaitMax) and tries the whole pool again, up
// to overloadRounds waits before the overload surfaces as the error.
// Capacity normally frees as the pool's own in-flight requests complete,
// so a sweep larger than the fleet's admission capacity drains instead
// of failing.
const (
	overloadRounds  = 10
	overloadWait    = 25 * time.Millisecond
	overloadWaitMax = time.Second
)

// dispatch runs call against the fleet: the key's cache-affinity member
// first when key is non-empty (least-loaded otherwise), bounded retries
// on different members for hard faults, backpressure waits for overload,
// the first attempt optionally hedged. Non-retryable errors (validation,
// the caller's cancellation) surface immediately.
func dispatch[T any](ctx context.Context, p *Pool, key string, call func(context.Context, *member) (T, error)) (T, error) {
	var zero T
	if p.jobs != nil {
		select {
		case p.jobs <- struct{}{}:
			defer func() { <-p.jobs }()
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	excluded := make(map[*member]bool) // hard faults: avoided; re-offered with backoff while attempts remain
	shedding := make(map[*member]bool) // overloaded: avoided, then re-offered
	var lastErr error
	rounds, wait := 0, overloadWait
	for attempt := 0; attempt < p.retries; {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		avoid := excluded
		if len(shedding) > 0 {
			avoid = make(map[*member]bool, len(excluded)+len(shedding))
			for m := range excluded {
				avoid[m] = true
			}
			for m := range shedding {
				avoid[m] = true
			}
		}
		m := p.pickKeyed(key, avoid)
		if m == nil {
			reoffer := false
			switch {
			case len(shedding) > 0 && rounds < overloadRounds:
				reoffer = true
			case len(excluded) > 0 && attempt < p.retries:
				// Every candidate hard-faulted during this dispatch, but
				// retry budget remains: a reset connection or a restarting
				// backend is transient, not terminal. Re-offer the excluded
				// members after the same backoff rather than failing a
				// request the fleet could still serve. Termination holds —
				// each hard fault consumes an attempt, so this path runs at
				// most p.retries times.
				reoffer = true
			}
			if !reoffer {
				break
			}
			rounds++
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return zero, ctx.Err()
			}
			if wait *= 2; wait > overloadWaitMax {
				wait = overloadWaitMax
			}
			clear(shedding) // re-offer everyone; capacity may have freed
			clear(excluded)
			continue
		}
		res, fails := hedged(ctx, p, m, avoid, call, attempt == 0)
		if fails == nil {
			return res, nil
		}
		// Classify every member that failed this attempt (with hedging,
		// the primary and the hedge can fail differently — each failure
		// is attributed to the member that produced it).
		for _, f := range fails {
			if !Retryable(f.err) {
				return zero, f.err
			}
			lastErr = f.err
			if errors.Is(f.err, ErrOverloaded) {
				shedding[f.m] = true // alive, just busy — no attempt consumed
			} else {
				excluded[f.m] = true
				attempt++
			}
		}
	}
	if lastErr == nil {
		return zero, ErrNoBackends
	}
	return zero, fmt.Errorf("fleet: request failed on %d backend(s), last: %w", len(excluded)+len(shedding), lastErr)
}

// runMember issues one call on m with inflight accounting; a hard
// backend fault demotes the member so the prober owns its recovery (an
// overloaded member stays healthy — it answered, it is just full).
func runMember[T any](ctx context.Context, p *Pool, m *member, call func(context.Context, *member) (T, error)) (T, error) {
	p.calls64.Add(1)
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	res, err := call(ctx, m)
	switch {
	case err != nil && Retryable(err) && !errors.Is(err, ErrOverloaded):
		// A hard fault feeds both recovery tracks: the prober owns
		// liveness, the breaker owns consecutive-failure streaks.
		p.markDown(m, err)
		m.brk.failure(time.Now())
	case err == nil || errors.Is(err, ErrOverloaded):
		// The member answered (a 503 shed is an answer); the streak ends.
		m.brk.success()
	}
	return res, err
}

// memberFail attributes one failed attempt to the member that produced
// it, so the dispatcher sheds or excludes the right one.
type memberFail struct {
	m   *member
	err error
}

// hedged runs one attempt on m; when hedging is enabled and m has not
// answered within the hedge delay, the same request is duplicated onto a
// different member and the first success wins (the loser is canceled).
// On success fails is nil; otherwise it lists every member that failed,
// each with its own error. The hedge launch borrows a jobs slot
// non-blockingly — hedging uses spare capacity, it never exceeds the
// pool's in-flight bound.
func hedged[T any](ctx context.Context, p *Pool, m *member, avoid map[*member]bool, call func(context.Context, *member) (T, error), mayHedge bool) (T, []memberFail) {
	var zero T
	if p.hedge <= 0 || !mayHedge {
		res, err := runMember(ctx, p, m, call)
		if err == nil {
			return res, nil
		}
		return zero, []memberFail{{m, err}}
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		m   *member
		res T
		err error
	}
	outc := make(chan outcome, 2)
	go func() {
		res, err := runMember(actx, p, m, call)
		outc <- outcome{m, res, err}
	}()
	outstanding := 1
	hedgeAt := time.After(p.hedge)
	var fails []memberFail
	for {
		select {
		case o := <-outc:
			outstanding--
			if o.err == nil {
				return o.res, nil
			}
			fails = append(fails, memberFail{o.m, o.err})
			if outstanding == 0 {
				return zero, fails
			}
		case <-hedgeAt:
			hedgeAt = nil // fire at most once; a nil channel never selects
			ex := make(map[*member]bool, len(avoid)+1)
			for k := range avoid {
				ex[k] = true
			}
			ex[m] = true
			h := p.pick(ex)
			if h == nil {
				continue
			}
			release := func() {}
			if p.jobs != nil {
				select {
				case p.jobs <- struct{}{}:
					release = func() { <-p.jobs }
				default:
					continue // no spare capacity; don't hedge
				}
			}
			outstanding++
			go func() {
				res, err := runMember(actx, p, h, call)
				release()
				outc <- outcome{h, res, err}
			}()
		}
	}
}

// pickKeyed selects the member to serve one keyed request: the key's
// rendezvous-hash owner when that member is no busier than the
// least-loaded candidate, the least-loaded member otherwise. Every
// client hashing the same workload|configKey@budget key picks the same
// owner, so fleet members (r3dlad instances with result stores) become a
// coherent caching tier — repeated requests land where the answer
// already is — while a busy owner still overflows to idle members rather
// than queueing behind itself. An empty key (experiments) is pure
// least-loaded.
func (p *Pool) pickKeyed(key string, excluded map[*member]bool) *member {
	best := p.pick(excluded)
	if best == nil || key == "" {
		return best
	}
	now := time.Now()
	var aff *member
	var affScore uint64
	for _, m := range p.members {
		if excluded[m] || !m.healthy.Load() || m.brk.blocked(now, m.inflight.Load()) {
			continue
		}
		if score := rendezvousScore(key, m.b.Name()); aff == nil || score > affScore {
			aff, affScore = m, score
		}
	}
	if aff != nil && aff.inflight.Load() <= best.inflight.Load() {
		return aff
	}
	return best
}

// rendezvousScore is the highest-random-weight hash of (member, key):
// each member scores every key independently, so removing a member only
// remaps the keys it owned. The key is hashed before the name: FNV-1a
// mixes trailing differences far better than leading ones, and member
// names often differ only in their final characters (b0/b1, :8123/:8124)
// — name-first scoring would hand whole key ranges to one member.
func rendezvousScore(key, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return h.Sum64()
}

// pick selects the least-loaded eligible member: healthy and not
// excluded, ordered by this pool's inflight count, then the
// server-reported load from the last stats probe, then construction
// order. When every healthy member is excluded it falls back to unproven
// members — a backend that just came back serves traffic before the
// prober notices.
func (p *Pool) pick(excluded map[*member]bool) *member {
	best := p.pickFrom(excluded, true)
	if best == nil {
		best = p.pickFrom(excluded, false)
	}
	return best
}

func (p *Pool) pickFrom(excluded map[*member]bool, needHealthy bool) *member {
	now := time.Now()
	var best *member
	var bestIn, bestLoad int64
	for _, m := range p.members {
		if excluded[m] || (needHealthy && !m.healthy.Load()) {
			continue
		}
		in, load := m.inflight.Load(), m.load.Load()
		// An open breaker vetoes the member on the healthy pass only: the
		// unproven fallback (everything else excluded or down) may still
		// try it — failing fast there beats failing with ErrNoBackends.
		if needHealthy && m.brk.blocked(now, in) {
			continue
		}
		if best == nil || in < bestIn || (in == bestIn && load < bestLoad) {
			best, bestIn, bestLoad = m, in, load
		}
	}
	return best
}

// --------------------------------------------------------------- health

// Check reports whether any member can take work.
func (p *Pool) Check(ctx context.Context) error {
	for _, m := range p.members {
		if m.healthy.Load() {
			return nil
		}
	}
	var lastErr error
	for _, m := range p.members {
		if err := m.b.Check(ctx); err == nil {
			p.revive(m)
			return nil
		} else {
			lastErr = err
		}
	}
	return fmt.Errorf("%w: last probe: %v", ErrNoBackends, lastErr)
}

// markDown demotes a member after a backend fault; the prober re-probes
// it with backoff until it answers again.
func (p *Pool) markDown(m *member, err error) {
	if m.healthy.CompareAndSwap(true, false) {
		// The last probed load is dead data now; a revived member starts
		// from a clean slate instead of biasing routing with its past.
		m.load.Store(0)
		m.mu.Lock()
		m.backoff = p.probeEvery
		m.nextProbe = time.Now().Add(m.backoff)
		m.lastErr = err
		m.mu.Unlock()
	}
}

func (p *Pool) revive(m *member) {
	m.mu.Lock()
	m.backoff = 0
	m.lastErr = nil
	m.mu.Unlock()
	m.healthy.Store(true)
}

// prober periodically re-probes dead members (with per-member exponential
// backoff) and refreshes healthy members' server-reported load.
func (p *Pool) prober() {
	defer p.wg.Done()
	t := time.NewTicker(p.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

func (p *Pool) probeAll() {
	now := time.Now()
	for _, m := range p.members {
		if m.healthy.Load() {
			if lr, ok := m.b.(loadReporter); ok {
				ctx, cancel := context.WithTimeout(context.Background(), p.probeTimeout)
				if st, err := lr.Stats(ctx); err == nil {
					m.load.Store(st.Inflight)
				} else {
					// A failing stats endpoint means the last value is
					// stale; forget it rather than keep routing on dead
					// data (the member itself may still serve fine).
					m.load.Store(0)
				}
				cancel()
			}
			continue
		}
		m.mu.Lock()
		due := !now.Before(m.nextProbe)
		m.mu.Unlock()
		if !due {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.probeTimeout)
		err := m.b.Check(ctx)
		cancel()
		if err == nil {
			p.revive(m)
			continue
		}
		m.mu.Lock()
		m.backoff *= 2
		if m.backoff > p.maxBackoff {
			m.backoff = p.maxBackoff
		}
		if m.backoff == 0 {
			m.backoff = p.probeEvery
		}
		m.nextProbe = time.Now().Add(m.backoff)
		m.lastErr = err
		m.mu.Unlock()
	}
}
