package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"r3dla/internal/lab"
)

// fakeBackend is a scriptable in-process Backend for router tests: no
// HTTP, no simulation — just the behaviors the pool routes around.
type fakeBackend struct {
	name  string
	calls atomic.Int64
	run   func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error)
	exp   func(ctx context.Context, id string) (*lab.Report, error)
	check func(ctx context.Context) error
}

func (f *fakeBackend) Name() string { return f.name }
func (f *fakeBackend) Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
	f.calls.Add(1)
	return f.run(ctx, req)
}
func (f *fakeBackend) Experiment(ctx context.Context, id string) (*lab.Report, error) {
	f.calls.Add(1)
	if f.exp == nil {
		return &lab.Report{ID: id}, nil
	}
	return f.exp(ctx, id)
}
func (f *fakeBackend) Check(ctx context.Context) error {
	if f.check == nil {
		return nil
	}
	return f.check(ctx)
}
func (f *fakeBackend) Close() error { return nil }

// okRun returns a canned deterministic result.
func okRun(name string) func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
	return func(_ context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		return &lab.RunResult{Workload: req.Workload, Config: name, Budget: req.Budget, IPC: 1}, nil
	}
}

// testReq builds a valid request; distinct budgets make distinct cache keys.
func testReq(budget uint64) lab.RunRequest {
	return lab.RunRequest{Workload: "mcf", Config: lab.ConfigSpec{Preset: "dla"}, Budget: budget}
}

// runKeyFor derives the canonical routing key for a request, the same way
// the pool does before picking a member.
func runKeyFor(t *testing.T, req lab.RunRequest) string {
	t.Helper()
	cfg, err := req.Config.Config()
	if err != nil {
		t.Fatal(err)
	}
	return lab.RunKey(req.Workload, cfg, req.Budget)
}

// ownerIndex returns which of names wins the rendezvous hash for key —
// on an idle fleet that member serves the request, so tests that inject
// faults must inject them into the owner, not a fixed slot.
func ownerIndex(key string, names []string) int {
	best, bestScore := -1, uint64(0)
	for i, n := range names {
		if s := rendezvousScore(key, n); best < 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

func newTestPool(t *testing.T, backends []Backend, opts ...PoolOption) *Pool {
	t.Helper()
	p, err := NewPool(backends, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPoolLeastLoaded pins the routing rule: with one member busy, the
// next request goes to the idle one — even when the busy member is the
// second key's cache-affinity owner.
func TestPoolLeastLoaded(t *testing.T) {
	names := []string{"b0", "b1"}
	busy := ownerIndex(runKeyFor(t, testReq(100)), names)
	idle := 1 - busy

	release := make(chan struct{})
	backends := make([]Backend, 2)
	for i, n := range names {
		run := okRun(n)
		if i == busy {
			inner := run
			run = func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return inner(ctx, req)
			}
		}
		backends[i] = &fakeBackend{name: n, run: run}
	}
	p := newTestPool(t, backends)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Run(context.Background(), testReq(100)); err != nil {
			t.Errorf("blocked run: %v", err)
		}
	}()
	// Wait until the first request occupies its owner, then dispatch another.
	for i := 0; ; i++ {
		if p.Status()[busy].Inflight == 1 {
			break
		}
		if i > 500 {
			t.Fatalf("first request never reached its owner %s", names[busy])
		}
		time.Sleep(2 * time.Millisecond)
	}
	res, err := p.Run(context.Background(), testReq(200))
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != names[idle] {
		t.Fatalf("second request served by %s, want the idle %s", res.Config, names[idle])
	}
	close(release)
	wg.Wait()
}

// TestPoolRetryExcludesFailedBackend: a member that hard-faults is
// excluded from the retry, which lands on the other member; the faulty
// member is marked down for the prober to revive.
func TestPoolRetryExcludesFailedBackend(t *testing.T) {
	names := []string{"b0", "b1"}
	faulty := ownerIndex(runKeyFor(t, testReq(100)), names)
	other := 1 - faulty

	backends := make([]*fakeBackend, 2)
	for i, n := range names {
		backends[i] = &fakeBackend{name: n, run: okRun(n)}
	}
	backends[faulty].run = func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: injected connection drop", ErrUnavailable)
	}
	p := newTestPool(t, []Backend{backends[0], backends[1]})

	res, err := p.Run(context.Background(), testReq(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != names[other] {
		t.Fatalf("served by %s, want the retry on %s", res.Config, names[other])
	}
	if got := backends[faulty].calls.Load(); got != 1 {
		t.Fatalf("%s called %d times, want 1", names[faulty], got)
	}
	if st := p.Status(); st[faulty].Healthy || !st[other].Healthy {
		t.Fatalf("health after fault: %+v", st)
	}
	// With the faulty member down, fresh requests route to the survivor.
	if _, err := p.Run(context.Background(), testReq(200)); err != nil {
		t.Fatal(err)
	}
	if got := backends[faulty].calls.Load(); got != 1 {
		t.Fatalf("down member still receiving traffic (%d calls)", got)
	}
}

// TestPoolBoundedAttempts: when every member faults, the request fails
// after at most WithRetries attempts, wrapping the last backend error.
func TestPoolBoundedAttempts(t *testing.T) {
	fail := func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: down", ErrUnavailable)
	}
	b := []Backend{
		&fakeBackend{name: "b0", run: fail},
		&fakeBackend{name: "b1", run: fail},
		&fakeBackend{name: "b2", run: fail},
	}
	p := newTestPool(t, b, WithRetries(2))
	_, err := p.Run(context.Background(), testReq(100))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if got := p.BackendCalls(); got != 2 {
		t.Fatalf("issued %d backend calls, want 2 (bounded attempts)", got)
	}
}

// TestPoolNonRetryableFailsFast: validation-class errors surface
// immediately instead of burning attempts on other members.
func TestPoolNonRetryableFailsFast(t *testing.T) {
	names := []string{"b0", "b1"}
	owner := ownerIndex(runKeyFor(t, testReq(100)), names)

	backends := make([]*fakeBackend, 2)
	for i, n := range names {
		backends[i] = &fakeBackend{name: n, run: okRun(n)}
	}
	backends[owner].run = func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: %q", lab.ErrUnknownWorkload, "mcf")
	}
	p := newTestPool(t, []Backend{backends[0], backends[1]})
	_, err := p.Run(context.Background(), testReq(100))
	if !errors.Is(err, lab.ErrUnknownWorkload) {
		t.Fatalf("want ErrUnknownWorkload, got %v", err)
	}
	if got := p.BackendCalls(); got != 1 {
		t.Fatalf("issued %d backend calls, want 1 (no retry on validation errors)", got)
	}
	if !p.Status()[owner].Healthy {
		t.Fatal("validation error must not mark the member down")
	}
	// A locally invalid config never reaches a backend at all.
	bad := lab.RunRequest{Workload: "mcf", Config: lab.ConfigSpec{Preset: "nope"}}
	if _, err := p.Run(context.Background(), bad); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("invalid config: %v", err)
	}
	if got := p.BackendCalls(); got != 1 {
		t.Fatalf("invalid config was dispatched (%d calls)", got)
	}
}

// TestPoolSingleflight: concurrent identical requests collapse onto one
// dispatch, and completed results are served from the client-side cache.
func TestPoolSingleflight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	b0 := &fakeBackend{name: "b0", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		close(started)
		<-release
		return okRun("b0")(ctx, req)
	}}
	p := newTestPool(t, []Backend{b0})

	var wg sync.WaitGroup
	results := make([]*lab.RunResult, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.Run(context.Background(), testReq(100))
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	<-started
	// Both callers are now keyed to the same flight; release the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := p.BackendCalls(); got != 1 {
		t.Fatalf("identical concurrent requests issued %d backend calls, want 1", got)
	}
	if results[0] != results[1] {
		t.Fatal("waiters did not share the leader's result")
	}
	// Completed results are cached: a later identical request is free.
	if _, err := p.Run(context.Background(), testReq(100)); err != nil {
		t.Fatal(err)
	}
	if got := p.BackendCalls(); got != 1 {
		t.Fatalf("cache miss on a completed key (%d calls)", got)
	}
}

// TestPoolOverloadBackpressure: admission-control shedding (503) is
// backpressure, not death — the pool prefers another member, or waits
// for capacity, and the shedding member is never marked down.
func TestPoolOverloadBackpressure(t *testing.T) {
	// A single member that sheds twice before admitting: the request must
	// wait it out and succeed, with the member healthy throughout.
	var rejections atomic.Int64
	solo := &fakeBackend{name: "solo", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		if rejections.Add(1) <= 2 {
			return nil, fmt.Errorf("%w: at capacity", ErrOverloaded)
		}
		return okRun("solo")(ctx, req)
	}}
	p := newTestPool(t, []Backend{solo})
	res, err := p.Run(context.Background(), testReq(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "solo" || solo.calls.Load() != 3 {
		t.Fatalf("overloaded member result %+v after %d calls, want success on call 3", res, solo.calls.Load())
	}
	if !p.Status()[0].Healthy {
		t.Fatal("shedding marked the member down; overload is not death")
	}

	// With an idle sibling available, shed work overflows immediately
	// instead of waiting.
	busy := &fakeBackend{name: "busy", run: func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: at capacity", ErrOverloaded)
	}}
	idle := &fakeBackend{name: "idle", run: okRun("idle")}
	p2 := newTestPool(t, []Backend{busy, idle})
	res, err = p2.Run(context.Background(), testReq(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "idle" {
		t.Fatalf("shed request served by %s, want the overflow to idle", res.Config)
	}
	if !p2.Status()[0].Healthy {
		t.Fatal("persistently shedding member was marked down")
	}

	// Everyone persistently shedding: the overload surfaces after the
	// bounded waits rather than hanging.
	p3 := newTestPool(t, []Backend{
		&fakeBackend{name: "f0", run: busy.run},
		&fakeBackend{name: "f1", run: busy.run},
	})
	if _, err := p3.Run(context.Background(), testReq(100)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("fully overloaded pool: %v, want ErrOverloaded", err)
	}
}

// TestPoolHedging: a straggling first attempt is duplicated onto the
// second member after the hedge delay, and the fast copy's (identical)
// result wins without waiting for the straggler.
func TestPoolHedging(t *testing.T) {
	names := []string{"b0", "b1"}
	slow := ownerIndex(runKeyFor(t, testReq(100)), names)
	fast := 1 - slow

	backends := make([]*fakeBackend, 2)
	for i, n := range names {
		backends[i] = &fakeBackend{name: n, run: okRun(n)}
	}
	backends[slow].run = func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		<-ctx.Done() // straggles until the winner cancels it
		return nil, ctx.Err()
	}
	p := newTestPool(t, []Backend{backends[0], backends[1]}, WithHedgeAfter(5*time.Millisecond))

	done := make(chan struct{})
	var res *lab.RunResult
	var err error
	go func() {
		defer close(done)
		res, err = p.Run(context.Background(), testReq(100))
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hedged request never completed")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != names[fast] {
		t.Fatalf("served by %s, want the hedge on %s", res.Config, names[fast])
	}
	if got := p.BackendCalls(); got != 2 {
		t.Fatalf("issued %d backend calls, want 2 (primary + hedge)", got)
	}
}

// TestPoolProbeRevivesDeadBackend: a member marked down by a dispatch
// fault returns to rotation once its health probe passes again.
func TestPoolProbeRevivesDeadBackend(t *testing.T) {
	names := []string{"b0", "b1"}
	faulty := ownerIndex(runKeyFor(t, testReq(100)), names)

	var down atomic.Bool
	down.Store(true)
	backends := make([]*fakeBackend, 2)
	for i, n := range names {
		backends[i] = &fakeBackend{name: n, run: okRun(n)}
	}
	inner := okRun(names[faulty])
	backends[faulty].run = func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		if down.Load() {
			return nil, fmt.Errorf("%w: down", ErrUnavailable)
		}
		return inner(ctx, req)
	}
	backends[faulty].check = func(context.Context) error {
		if down.Load() {
			return fmt.Errorf("%w: still down", ErrUnavailable)
		}
		return nil
	}
	p := newTestPool(t, []Backend{backends[0], backends[1]}, WithProbeEvery(5*time.Millisecond))

	if _, err := p.Run(context.Background(), testReq(100)); err != nil {
		t.Fatal(err)
	}
	if p.Status()[faulty].Healthy {
		t.Fatal("faulting member not marked down")
	}
	down.Store(false)
	for i := 0; ; i++ {
		if p.Status()[faulty].Healthy {
			break
		}
		if i > 2000 {
			t.Fatal("prober never revived the recovered member")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolExperimentsOrdered: distributed experiments are delivered in id
// order no matter which backend answers first.
func TestPoolExperimentsOrdered(t *testing.T) {
	slowFirst := func(ctx context.Context, id string) (*lab.Report, error) {
		if id == "tab1" {
			time.Sleep(20 * time.Millisecond) // the first id answers last
		}
		return &lab.Report{ID: id, Title: id}, nil
	}
	p := newTestPool(t, []Backend{
		&fakeBackend{name: "b0", exp: slowFirst, run: okRun("b0")},
		&fakeBackend{name: "b1", exp: slowFirst, run: okRun("b1")},
	})
	ids := []string{"tab1", "fig9a", "fig15"}
	var order []string
	results, err := p.Experiments(context.Background(), ids, func(r lab.ExperimentResult) {
		order = append(order, r.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if order[i] != id || results[i].ID != id || results[i].Report.ID != id {
			t.Fatalf("delivery order %v / results %+v, want %v", order, results, ids)
		}
	}
	if _, err := p.Experiments(context.Background(), []string{"nope"}, nil); !errors.Is(err, lab.ErrUnknownExperiment) {
		t.Fatalf("unknown id: %v", err)
	}
}

// statsBackend is a fakeBackend that also reports server load the way a
// real r3dlad /v1/stats endpoint does (it implements loadReporter, so
// the prober folds its answers into routing).
type statsBackend struct {
	fakeBackend
	stats func(ctx context.Context) (lab.Stats, error)
}

func (s *statsBackend) Stats(ctx context.Context) (lab.Stats, error) { return s.stats(ctx) }

// TestPoolStaleLoadReset pins the stale-signal fix: a member whose stats
// endpoint dies must not keep biasing least-loaded dispatch with its
// last reported load — the signal resets and traffic rebalances back.
func TestPoolStaleLoadReset(t *testing.T) {
	var b0statsDown atomic.Bool
	b0 := &statsBackend{
		fakeBackend: fakeBackend{name: "b0", run: okRun("b0"), exp: func(_ context.Context, id string) (*lab.Report, error) {
			return &lab.Report{ID: id, Title: "b0"}, nil
		}},
		stats: func(context.Context) (lab.Stats, error) {
			if b0statsDown.Load() {
				return lab.Stats{}, fmt.Errorf("%w: stats endpoint gone", ErrUnavailable)
			}
			return lab.Stats{Inflight: 5}, nil
		},
	}
	b1 := &statsBackend{
		fakeBackend: fakeBackend{name: "b1", run: okRun("b1"), exp: func(_ context.Context, id string) (*lab.Report, error) {
			return &lab.Report{ID: id, Title: "b1"}, nil
		}},
		stats: func(context.Context) (lab.Stats, error) {
			return lab.Stats{Inflight: 3}, nil
		},
	}
	// A long probe cadence so only our explicit probeAll calls move the
	// load signals.
	p := newTestPool(t, []Backend{b0, b1}, WithProbeEvery(time.Hour))

	// While b0 honestly reports heavier load, dispatch prefers b1.
	p.probeAll()
	rep, err := p.Experiment(context.Background(), "tab1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Title != "b1" {
		t.Fatalf("with b0 at load 5 and b1 at 3, dispatch chose %s, want b1", rep.Title)
	}

	// b0's stats endpoint dies (the member itself still serves). Its last
	// value (5) is dead data now: after the next probe round the pool
	// must forget it and rebalance onto b0 (probed load 0 beats b1's 3).
	b0statsDown.Store(true)
	p.probeAll()
	if load := p.members[0].load.Load(); load != 0 {
		t.Fatalf("b0 load %d after failed probe, want 0 (stale signal kept)", load)
	}
	rep, err = p.Experiment(context.Background(), "tab1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Title != "b0" {
		t.Fatalf("after b0's stats died, dispatch chose %s, want the rebalance to b0", rep.Title)
	}

	// Markdown also clears the signal: a revived member starts clean.
	b0statsDown.Store(false)
	p.probeAll()
	if load := p.members[0].load.Load(); load != 5 {
		t.Fatalf("b0 load %d after healthy probe, want 5", load)
	}
	p.markDown(p.members[0], fmt.Errorf("%w: fault", ErrUnavailable))
	if load := p.members[0].load.Load(); load != 0 {
		t.Fatalf("b0 load %d after markdown, want 0", load)
	}
}

// TestPoolCacheAffinity pins the rendezvous routing contract: with an
// idle fleet, every pool (every client) sends one key to the same
// member — fleet result stores become a coherent caching tier — and the
// hash actually spreads distinct keys. A busy owner overflows to the
// least-loaded member instead of queueing behind itself.
func TestPoolCacheAffinity(t *testing.T) {
	names := []string{"b0", "b1", "b2"}
	build := func() []Backend {
		var bs []Backend
		for _, n := range names {
			bs = append(bs, &fakeBackend{name: n, run: okRun(n)})
		}
		return bs
	}
	p1 := newTestPool(t, build())
	p2 := newTestPool(t, build())

	owners := make(map[string]bool)
	for i := 0; i < 16; i++ {
		req := testReq(uint64(1000 + i))
		cfg, err := req.Config.Config()
		if err != nil {
			t.Fatal(err)
		}
		key := lab.RunKey(req.Workload, cfg, req.Budget)
		// The owner is the rendezvous winner, deterministically.
		wantOwner, wantScore := "", uint64(0)
		for _, n := range names {
			if s := rendezvousScore(key, n); wantOwner == "" || s > wantScore {
				wantOwner, wantScore = n, s
			}
		}
		m1, m2 := p1.pickKeyed(key, nil), p2.pickKeyed(key, nil)
		if m1.b.Name() != wantOwner || m2.b.Name() != wantOwner {
			t.Fatalf("key %s routed to %s/%s, want the rendezvous owner %s",
				key, m1.b.Name(), m2.b.Name(), wantOwner)
		}
		// End to end: the dispatch itself lands on the owner.
		res, err := p1.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Config != wantOwner {
			t.Fatalf("key %s served by %s, want owner %s", key, res.Config, wantOwner)
		}
		owners[wantOwner] = true
	}
	if len(owners) != len(names) {
		t.Fatalf("16 keys landed on only %d of %d members; rendezvous hash is degenerate", len(owners), len(names))
	}

	// A busy owner is bypassed: affinity must not queue work behind a
	// member that is measurably busier than an idle sibling.
	req := testReq(77)
	cfg, _ := req.Config.Config()
	key := lab.RunKey(req.Workload, cfg, req.Budget)
	owner := p1.pickKeyed(key, nil)
	owner.inflight.Add(3)
	if got := p1.pickKeyed(key, nil); got == owner {
		t.Fatal("busy owner still preferred over idle members")
	} else if got.inflight.Load() != 0 {
		t.Fatalf("overflow went to a busy member (inflight %d)", got.inflight.Load())
	}
	owner.inflight.Add(-3)
}
