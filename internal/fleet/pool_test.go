package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"r3dla/internal/lab"
)

// fakeBackend is a scriptable in-process Backend for router tests: no
// HTTP, no simulation — just the behaviors the pool routes around.
type fakeBackend struct {
	name  string
	calls atomic.Int64
	run   func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error)
	exp   func(ctx context.Context, id string) (*lab.Report, error)
	check func(ctx context.Context) error
}

func (f *fakeBackend) Name() string { return f.name }
func (f *fakeBackend) Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
	f.calls.Add(1)
	return f.run(ctx, req)
}
func (f *fakeBackend) Experiment(ctx context.Context, id string) (*lab.Report, error) {
	f.calls.Add(1)
	if f.exp == nil {
		return &lab.Report{ID: id}, nil
	}
	return f.exp(ctx, id)
}
func (f *fakeBackend) Check(ctx context.Context) error {
	if f.check == nil {
		return nil
	}
	return f.check(ctx)
}
func (f *fakeBackend) Close() error { return nil }

// okRun returns a canned deterministic result.
func okRun(name string) func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
	return func(_ context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		return &lab.RunResult{Workload: req.Workload, Config: name, Budget: req.Budget, IPC: 1}, nil
	}
}

// testReq builds a valid request; distinct budgets make distinct cache keys.
func testReq(budget uint64) lab.RunRequest {
	return lab.RunRequest{Workload: "mcf", Config: lab.ConfigSpec{Preset: "dla"}, Budget: budget}
}

func newTestPool(t *testing.T, backends []Backend, opts ...PoolOption) *Pool {
	t.Helper()
	p, err := NewPool(backends, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPoolLeastLoaded pins the routing rule: with the first member busy,
// the next request goes to the idle one.
func TestPoolLeastLoaded(t *testing.T) {
	release := make(chan struct{})
	b0 := &fakeBackend{name: "b0", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return okRun("b0")(ctx, req)
	}}
	b1 := &fakeBackend{name: "b1", run: okRun("b1")}
	p := newTestPool(t, []Backend{b0, b1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Run(context.Background(), testReq(100)); err != nil {
			t.Errorf("blocked run: %v", err)
		}
	}()
	// Wait until the first request occupies b0, then dispatch another.
	for i := 0; ; i++ {
		if p.Status()[0].Inflight == 1 {
			break
		}
		if i > 500 {
			t.Fatal("first request never reached b0")
		}
		time.Sleep(2 * time.Millisecond)
	}
	res, err := p.Run(context.Background(), testReq(200))
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "b1" {
		t.Fatalf("second request served by %s, want the idle b1", res.Config)
	}
	close(release)
	wg.Wait()
}

// TestPoolRetryExcludesFailedBackend: a member that hard-faults is
// excluded from the retry, which lands on the other member; the faulty
// member is marked down for the prober to revive.
func TestPoolRetryExcludesFailedBackend(t *testing.T) {
	b0 := &fakeBackend{name: "b0", run: func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: injected connection drop", ErrUnavailable)
	}}
	b1 := &fakeBackend{name: "b1", run: okRun("b1")}
	p := newTestPool(t, []Backend{b0, b1})

	res, err := p.Run(context.Background(), testReq(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "b1" {
		t.Fatalf("served by %s, want the retry on b1", res.Config)
	}
	if got := b0.calls.Load(); got != 1 {
		t.Fatalf("b0 called %d times, want 1", got)
	}
	if st := p.Status(); st[0].Healthy || !st[1].Healthy {
		t.Fatalf("health after fault: %+v", st)
	}
	// With b0 down, fresh requests route straight to b1.
	if _, err := p.Run(context.Background(), testReq(200)); err != nil {
		t.Fatal(err)
	}
	if got := b0.calls.Load(); got != 1 {
		t.Fatalf("down member still receiving traffic (%d calls)", got)
	}
}

// TestPoolBoundedAttempts: when every member faults, the request fails
// after at most WithRetries attempts, wrapping the last backend error.
func TestPoolBoundedAttempts(t *testing.T) {
	fail := func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: down", ErrUnavailable)
	}
	b := []Backend{
		&fakeBackend{name: "b0", run: fail},
		&fakeBackend{name: "b1", run: fail},
		&fakeBackend{name: "b2", run: fail},
	}
	p := newTestPool(t, b, WithRetries(2))
	_, err := p.Run(context.Background(), testReq(100))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if got := p.BackendCalls(); got != 2 {
		t.Fatalf("issued %d backend calls, want 2 (bounded attempts)", got)
	}
}

// TestPoolNonRetryableFailsFast: validation-class errors surface
// immediately instead of burning attempts on other members.
func TestPoolNonRetryableFailsFast(t *testing.T) {
	b0 := &fakeBackend{name: "b0", run: func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: %q", lab.ErrUnknownWorkload, "mcf")
	}}
	b1 := &fakeBackend{name: "b1", run: okRun("b1")}
	p := newTestPool(t, []Backend{b0, b1})
	_, err := p.Run(context.Background(), testReq(100))
	if !errors.Is(err, lab.ErrUnknownWorkload) {
		t.Fatalf("want ErrUnknownWorkload, got %v", err)
	}
	if got := p.BackendCalls(); got != 1 {
		t.Fatalf("issued %d backend calls, want 1 (no retry on validation errors)", got)
	}
	if !p.Status()[0].Healthy {
		t.Fatal("validation error must not mark the member down")
	}
	// A locally invalid config never reaches a backend at all.
	bad := lab.RunRequest{Workload: "mcf", Config: lab.ConfigSpec{Preset: "nope"}}
	if _, err := p.Run(context.Background(), bad); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("invalid config: %v", err)
	}
	if got := p.BackendCalls(); got != 1 {
		t.Fatalf("invalid config was dispatched (%d calls)", got)
	}
}

// TestPoolSingleflight: concurrent identical requests collapse onto one
// dispatch, and completed results are served from the client-side cache.
func TestPoolSingleflight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	b0 := &fakeBackend{name: "b0", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		close(started)
		<-release
		return okRun("b0")(ctx, req)
	}}
	p := newTestPool(t, []Backend{b0})

	var wg sync.WaitGroup
	results := make([]*lab.RunResult, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.Run(context.Background(), testReq(100))
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	<-started
	// Both callers are now keyed to the same flight; release the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := p.BackendCalls(); got != 1 {
		t.Fatalf("identical concurrent requests issued %d backend calls, want 1", got)
	}
	if results[0] != results[1] {
		t.Fatal("waiters did not share the leader's result")
	}
	// Completed results are cached: a later identical request is free.
	if _, err := p.Run(context.Background(), testReq(100)); err != nil {
		t.Fatal(err)
	}
	if got := p.BackendCalls(); got != 1 {
		t.Fatalf("cache miss on a completed key (%d calls)", got)
	}
}

// TestPoolOverloadBackpressure: admission-control shedding (503) is
// backpressure, not death — the pool prefers another member, or waits
// for capacity, and the shedding member is never marked down.
func TestPoolOverloadBackpressure(t *testing.T) {
	// A single member that sheds twice before admitting: the request must
	// wait it out and succeed, with the member healthy throughout.
	var rejections atomic.Int64
	solo := &fakeBackend{name: "solo", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		if rejections.Add(1) <= 2 {
			return nil, fmt.Errorf("%w: at capacity", ErrOverloaded)
		}
		return okRun("solo")(ctx, req)
	}}
	p := newTestPool(t, []Backend{solo})
	res, err := p.Run(context.Background(), testReq(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "solo" || solo.calls.Load() != 3 {
		t.Fatalf("overloaded member result %+v after %d calls, want success on call 3", res, solo.calls.Load())
	}
	if !p.Status()[0].Healthy {
		t.Fatal("shedding marked the member down; overload is not death")
	}

	// With an idle sibling available, shed work overflows immediately
	// instead of waiting.
	busy := &fakeBackend{name: "busy", run: func(context.Context, lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: at capacity", ErrOverloaded)
	}}
	idle := &fakeBackend{name: "idle", run: okRun("idle")}
	p2 := newTestPool(t, []Backend{busy, idle})
	res, err = p2.Run(context.Background(), testReq(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "idle" {
		t.Fatalf("shed request served by %s, want the overflow to idle", res.Config)
	}
	if !p2.Status()[0].Healthy {
		t.Fatal("persistently shedding member was marked down")
	}

	// Everyone persistently shedding: the overload surfaces after the
	// bounded waits rather than hanging.
	p3 := newTestPool(t, []Backend{
		&fakeBackend{name: "f0", run: busy.run},
		&fakeBackend{name: "f1", run: busy.run},
	})
	if _, err := p3.Run(context.Background(), testReq(100)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("fully overloaded pool: %v, want ErrOverloaded", err)
	}
}

// TestPoolHedging: a straggling first attempt is duplicated onto the
// second member after the hedge delay, and the fast copy's (identical)
// result wins without waiting for the straggler.
func TestPoolHedging(t *testing.T) {
	b0 := &fakeBackend{name: "b0", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		<-ctx.Done() // straggles until the winner cancels it
		return nil, ctx.Err()
	}}
	b1 := &fakeBackend{name: "b1", run: okRun("b1")}
	p := newTestPool(t, []Backend{b0, b1}, WithHedgeAfter(5*time.Millisecond))

	done := make(chan struct{})
	var res *lab.RunResult
	var err error
	go func() {
		defer close(done)
		res, err = p.Run(context.Background(), testReq(100))
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hedged request never completed")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "b1" {
		t.Fatalf("served by %s, want the hedge on b1", res.Config)
	}
	if got := p.BackendCalls(); got != 2 {
		t.Fatalf("issued %d backend calls, want 2 (primary + hedge)", got)
	}
}

// TestPoolProbeRevivesDeadBackend: a member marked down by a dispatch
// fault returns to rotation once its health probe passes again.
func TestPoolProbeRevivesDeadBackend(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	b0 := &fakeBackend{
		name: "b0",
		run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
			if down.Load() {
				return nil, fmt.Errorf("%w: down", ErrUnavailable)
			}
			return okRun("b0")(ctx, req)
		},
		check: func(context.Context) error {
			if down.Load() {
				return fmt.Errorf("%w: still down", ErrUnavailable)
			}
			return nil
		},
	}
	b1 := &fakeBackend{name: "b1", run: okRun("b1")}
	p := newTestPool(t, []Backend{b0, b1}, WithProbeEvery(5*time.Millisecond))

	if _, err := p.Run(context.Background(), testReq(100)); err != nil {
		t.Fatal(err)
	}
	if p.Status()[0].Healthy {
		t.Fatal("faulting member not marked down")
	}
	down.Store(false)
	for i := 0; ; i++ {
		if p.Status()[0].Healthy {
			break
		}
		if i > 2000 {
			t.Fatal("prober never revived the recovered member")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolExperimentsOrdered: distributed experiments are delivered in id
// order no matter which backend answers first.
func TestPoolExperimentsOrdered(t *testing.T) {
	slowFirst := func(ctx context.Context, id string) (*lab.Report, error) {
		if id == "tab1" {
			time.Sleep(20 * time.Millisecond) // the first id answers last
		}
		return &lab.Report{ID: id, Title: id}, nil
	}
	p := newTestPool(t, []Backend{
		&fakeBackend{name: "b0", exp: slowFirst, run: okRun("b0")},
		&fakeBackend{name: "b1", exp: slowFirst, run: okRun("b1")},
	})
	ids := []string{"tab1", "fig9a", "fig15"}
	var order []string
	results, err := p.Experiments(context.Background(), ids, func(r lab.ExperimentResult) {
		order = append(order, r.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if order[i] != id || results[i].ID != id || results[i].Report.ID != id {
			t.Fatalf("delivery order %v / results %+v, want %v", order, results, ids)
		}
	}
	if _, err := p.Experiments(context.Background(), []string{"nope"}, nil); !errors.Is(err, lab.ErrUnknownExperiment) {
		t.Fatalf("unknown id: %v", err)
	}
}
