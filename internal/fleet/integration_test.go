package fleet

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// testBudget keeps integration simulations CI-sized; every server and the
// local reference Lab share it so outputs are comparable byte-for-byte.
const testBudget = 2000

// newBackendServer boots one full r3dlad-shaped service (lab server plus
// the sweep extension route, exactly as cmd/r3dlad wires it), optionally
// wrapped in mw, and returns the httptest server plus its shared Lab.
func newBackendServer(t *testing.T, mw func(http.Handler) http.Handler) (*httptest.Server, *lab.Lab) {
	t.Helper()
	l, err := lab.New(lab.WithBudget(testBudget), lab.WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	h := lab.NewServer(l)
	h.Handle("POST /v1/sweeps", sweep.NewHandler(l, h))
	var handler http.Handler = h
	if mw != nil {
		handler = mw(h)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, l
}

// newFleet boots n backend servers and a pool routing across them.
func newFleet(t *testing.T, n int, opts ...PoolOption) (*Pool, []*httptest.Server) {
	t.Helper()
	var backends []Backend
	var servers []*httptest.Server
	for i := 0; i < n; i++ {
		srv, _ := newBackendServer(t, nil)
		servers = append(servers, srv)
		r, err := NewRemote(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, r)
	}
	p, err := NewPool(backends, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, servers
}

// multiAxisSpec is the integration grid: two workloads x two presets x
// two BOQ depths = 8 cells, the same shape the sweep engine tests pin.
func multiAxisSpec() sweep.Spec {
	return sweep.Spec{
		Workloads: []string{"mcf", "libq"},
		Budget:    testBudget,
		Axes: sweep.Axes{
			Preset:  []string{"dla", "r3"},
			BOQSize: []int{64, 512},
		},
	}
}

// renderSweep renders a sweep result every way the CLI surfaces it.
func renderSweep(t *testing.T, r *sweep.Result) []byte {
	t.Helper()
	rep := r.Report()
	var b bytes.Buffer
	b.WriteString(rep.String())
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// localSweep is the single-process reference output.
func localSweep(t *testing.T) []byte {
	t.Helper()
	l, err := lab.New(lab.WithBudget(testBudget), lab.WithJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(context.Background(), l, multiAxisSpec(), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return renderSweep(t, res)
}

// TestFleetSweepByteIdentical is the determinism contract end to end: a
// multi-axis sweep routed across three live backends produces output
// byte-identical to the same sweep run fully in-process, for a serial
// fleet (jobs=1) and a wide one alike (run under -race in CI).
func TestFleetSweepByteIdentical(t *testing.T) {
	want := localSweep(t)
	for _, jobs := range []int{1, 8} {
		pool, _ := newFleet(t, 3, WithJobs(jobs))
		res, err := sweep.Run(context.Background(), pool, multiAxisSpec(), sweep.Options{})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		got := renderSweep(t, res)
		if !bytes.Equal(got, want) {
			t.Fatalf("jobs=%d: distributed sweep output differs from local:\n--- fleet ---\n%s\n--- local ---\n%s", jobs, got, want)
		}
		if calls := pool.BackendCalls(); calls != 8 {
			t.Errorf("jobs=%d: fleet issued %d backend calls, want 8 (one per cell)", jobs, calls)
		}
	}
}

// renderExperiments renders ordered experiment results the way the CLI
// writes stdout plus the JSON/CSV file bodies.
func renderExperiments(t *testing.T, results []lab.ExperimentResult) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		b.WriteString(r.Report.String())
		b.WriteByte('\n')
		if err := r.Report.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if err := r.Report.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.Bytes()
}

// TestFleetExperimentsByteIdentical distributes `-exp all` across three
// backends and asserts the assembled output (text, JSON and CSV for every
// artifact, in id order) is byte-identical to the local engine's.
func TestFleetExperimentsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry across a fleet; skipped in -short")
	}
	ids := make([]string, 0, len(lab.ListExperiments()))
	for _, e := range lab.ListExperiments() {
		ids = append(ids, e.ID)
	}

	l, err := lab.New(lab.WithBudget(testBudget))
	if err != nil {
		t.Fatal(err)
	}
	localResults, err := l.Experiments(context.Background(), ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := renderExperiments(t, localResults)

	pool, _ := newFleet(t, 3)
	var streamed []string
	fleetResults, err := pool.Experiments(context.Background(), ids, func(r lab.ExperimentResult) {
		streamed = append(streamed, r.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	got := renderExperiments(t, fleetResults)
	if !bytes.Equal(got, want) {
		t.Fatal("distributed -exp all output differs from local run")
	}
	for i, id := range ids {
		if streamed[i] != id {
			t.Fatalf("ordered delivery broken: %v", streamed)
		}
	}
}

// TestRemoteWholeSweep drives the coarse-grained path: one backend owns
// the whole grid through POST /v1/sweeps, and the streamed aggregate
// report matches the local engine's rendering byte for byte.
func TestRemoteWholeSweep(t *testing.T) {
	srv, _ := newBackendServer(t, nil)
	r, err := NewRemote(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	rep, err := r.Sweep(context.Background(), multiAxisSpec(), func(line sweep.StreamLine) { cells++ })
	if err != nil {
		t.Fatal(err)
	}
	if cells != 8 {
		t.Fatalf("streamed %d cell lines, want 8", cells)
	}

	l, err := lab.New(lab.WithBudget(testBudget), lab.WithJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(context.Background(), l, multiAxisSpec(), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := rep.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if err := res.Report().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("whole-sweep report differs from local rendering")
	}
}

// TestFleetBudgetVerification: the healthz body advertises the server's
// default budget, which the CLI compares before distributing experiments.
func TestFleetBudgetVerification(t *testing.T) {
	srv, _ := newBackendServer(t, nil)
	r, err := NewRemote(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Budget != testBudget {
		t.Fatalf("advertised budget %d, want %d", h.Budget, testBudget)
	}
}
