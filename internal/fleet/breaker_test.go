package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"r3dla/internal/lab"
)

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 100*time.Millisecond)
	now := time.Now()

	if b.blocked(now, 0) {
		t.Fatal("fresh breaker blocked")
	}
	b.failure(now)
	b.failure(now)
	if b.blocked(now, 0) {
		t.Fatal("blocked below the threshold")
	}
	b.failure(now) // third consecutive: open
	if !b.blocked(now, 0) {
		t.Fatal("breaker did not open at the threshold")
	}
	if got := b.status(); got != "open" {
		t.Fatalf("status %q, want open", got)
	}
	// Still inside the cooldown.
	if !b.blocked(now.Add(50*time.Millisecond), 0) {
		t.Fatal("open breaker admitted a request mid-cooldown")
	}
	// Cooldown expired: half-open admits an idle-member trial...
	later := now.Add(150 * time.Millisecond)
	if b.blocked(later, 0) {
		t.Fatal("expired breaker refused the half-open trial")
	}
	if got := b.status(); got != "half-open" {
		t.Fatalf("status %q, want half-open", got)
	}
	// ...but not while the member is busy with the trial.
	if !b.blocked(later, 1) {
		t.Fatal("half-open admitted a second concurrent request")
	}
	// Trial failure reopens with the cooldown doubled.
	b.failure(later)
	if !b.blocked(later.Add(150*time.Millisecond), 0) {
		t.Fatal("reopened breaker should hold for the doubled cooldown")
	}
	if b.blocked(later.Add(250*time.Millisecond), 0) {
		t.Fatal("doubled cooldown never expired")
	}
	// Trial success closes and resets everything.
	b.success()
	if b.blocked(time.Now(), 5) || b.status() != "closed" {
		t.Fatal("success did not close the breaker")
	}
	// A fresh streak must need the full threshold again.
	b.failure(now)
	if b.blocked(now, 0) {
		t.Fatal("closed breaker reopened below the threshold after reset")
	}
}

func TestBreakerCooldownCap(t *testing.T) {
	b := newBreaker(1, 100*time.Millisecond)
	now := time.Now()
	b.failure(now) // open at base
	for i := 0; i < 10; i++ {
		now = now.Add(24 * time.Hour) // expire whatever the cooldown is
		if b.blocked(now, 0) {
			t.Fatalf("round %d: cooldown never expired", i)
		}
		b.failure(now) // half-open trial fails, cooldown doubles
	}
	// Cap is 8x base: 800ms later the breaker must be probe-able again.
	if b.blocked(now.Add(801*time.Millisecond), 0) {
		t.Fatal("cooldown exceeded its 8x cap")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second)
	if b != nil {
		t.Fatal("threshold 0 should disable the breaker")
	}
	// All methods are nil-safe and permissive.
	b.failure(time.Now())
	b.success()
	if b.blocked(time.Now(), 99) {
		t.Fatal("nil breaker blocked")
	}
	if b.status() != "disabled" {
		t.Fatalf("nil breaker status %q", b.status())
	}
}

// TestPoolBreakerOpensAndRoutesAround: after threshold consecutive hard
// faults the failing member leaves rotation even though its healthz still
// answers — the exact flapping case the prober alone cannot fix — and
// traffic continues on the survivor.
func TestPoolBreakerOpensAndRoutesAround(t *testing.T) {
	var sickCalls atomic.Int64
	sick := &fakeBackend{name: "sick", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		sickCalls.Add(1)
		return nil, fmt.Errorf("%w: runs broken", ErrBackend)
	}}
	// healthz answers fine: the prober would revive this member forever.
	sick.check = func(ctx context.Context) error { return nil }
	well := &fakeBackend{name: "well", run: okRun("well")}

	p := newTestPool(t, []Backend{sick, well},
		WithRetries(4),
		WithProbeEvery(10*time.Millisecond), // prober aggressively revives
		WithBreaker(2, time.Hour),           // once open, stays open for the test
	)

	// Drive requests until the sick member has eaten 2 hard faults. Each
	// distinct budget is a fresh key; retries land on the survivor so
	// every request still succeeds. The first fault marks the member down,
	// so wait out a prober cycle between requests — each healthz revival
	// sets up the next fault, exactly the flapping under test.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; sickCalls.Load() < 2 && time.Now().Before(deadline); i++ {
		if _, err := p.Run(context.Background(), testReq(uint64(1000+i))); err != nil {
			t.Fatalf("request %d failed despite a healthy survivor: %v", i, err)
		}
		time.Sleep(15 * time.Millisecond)
	}
	if sickCalls.Load() < 2 {
		t.Fatalf("sick member saw only %d calls; cannot open the breaker", sickCalls.Load())
	}

	// Give the prober time to "revive" the sick member via healthz...
	time.Sleep(50 * time.Millisecond)
	before := sickCalls.Load()
	// ...then send more traffic: the open breaker must keep it drained.
	for i := 0; i < 10; i++ {
		if _, err := p.Run(context.Background(), testReq(uint64(2000+i))); err != nil {
			t.Fatalf("request with open breaker failed: %v", err)
		}
	}
	if got := sickCalls.Load(); got != before {
		t.Fatalf("open breaker leaked %d calls to the broken member", got-before)
	}
	for _, st := range p.Status() {
		if st.Name == "sick" && st.Breaker != "open" {
			t.Fatalf("sick member breaker %q, want open", st.Breaker)
		}
		if st.Name == "well" && st.Breaker != "closed" {
			t.Fatalf("well member breaker %q, want closed", st.Breaker)
		}
	}
}

// TestPoolBreakerHalfOpenRecovery: when the cooldown expires, one trial
// request reaches the member; a success closes the breaker and restores
// full routing.
func TestPoolBreakerHalfOpenRecovery(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var calls atomic.Int64
	flaky := &fakeBackend{name: "flaky", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		calls.Add(1)
		if fail.Load() {
			return nil, fmt.Errorf("%w: down", ErrBackend)
		}
		return okRun("flaky")(ctx, req)
	}}
	other := &fakeBackend{name: "other", run: okRun("other")}
	p := newTestPool(t, []Backend{flaky, other},
		WithRetries(4),
		WithProbeEvery(10*time.Millisecond),
		WithBreaker(1, 30*time.Millisecond),
	)

	// One hard fault opens the breaker (threshold 1).
	for i := 0; calls.Load() == 0 && i < 20; i++ {
		if _, err := p.Run(context.Background(), testReq(uint64(3000+i))); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() == 0 {
		t.Fatal("flaky member never saw traffic")
	}

	// Heal the backend, let the cooldown lapse, and keep sending: the
	// half-open trial must land, succeed, and close the breaker.
	fail.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	recovered := false
	for i := 0; time.Now().Before(deadline); i++ {
		if _, err := p.Run(context.Background(), testReq(uint64(4000+i))); err != nil {
			t.Fatal(err)
		}
		for _, st := range p.Status() {
			if st.Name == "flaky" && st.Breaker == "closed" && st.Healthy {
				recovered = true
			}
		}
		if recovered {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("breaker never closed after the backend healed")
	}
}

// TestPoolBreakerIgnores503: overload sheds are answers, not faults — a
// member that sheds every request must never trip its breaker (it is
// alive and will drain).
func TestPoolBreakerIgnores503(t *testing.T) {
	shedder := &fakeBackend{name: "shedder", run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
		return nil, fmt.Errorf("%w: full", ErrOverloaded)
	}}
	worker := &fakeBackend{name: "worker", run: okRun("worker")}
	p := newTestPool(t, []Backend{shedder, worker}, WithBreaker(1, time.Hour))

	for i := 0; i < 10; i++ {
		if _, err := p.Run(context.Background(), testReq(uint64(5000+i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range p.Status() {
		if st.Name == "shedder" && (st.Breaker != "closed" || !st.Healthy) {
			t.Fatalf("shedding member: breaker=%q healthy=%v, want closed+healthy", st.Breaker, st.Healthy)
		}
	}
}

// TestPoolBreakerFallbackWhenAllOpen: with every breaker open the pool
// falls back to trying a broken member rather than refusing outright —
// an error from a real attempt beats a synthetic ErrNoBackends.
func TestPoolBreakerFallbackWhenAllOpen(t *testing.T) {
	mkBroken := func(name string) *fakeBackend {
		return &fakeBackend{name: name, run: func(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
			return nil, fmt.Errorf("%w: %s broken", ErrBackend, name)
		}}
	}
	p := newTestPool(t, []Backend{mkBroken("a"), mkBroken("b")},
		WithRetries(2), WithBreaker(1, time.Hour))

	// First request trips both breakers (one per retry attempt).
	if _, err := p.Run(context.Background(), testReq(6000)); err == nil {
		t.Fatal("all-broken pool succeeded")
	}
	// Later requests still produce a real backend error, not ErrNoBackends.
	_, err := p.Run(context.Background(), testReq(6001))
	if err == nil {
		t.Fatal("all-broken pool succeeded")
	}
	if errors.Is(err, ErrNoBackends) {
		t.Fatalf("open breakers caused %v; want a real attempt's error", err)
	}
	if !errors.Is(err, ErrBackend) {
		t.Fatalf("fallback attempt error %v, want ErrBackend", err)
	}
}
