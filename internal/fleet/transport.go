package fleet

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"r3dla/internal/faultinject"
)

// newTransport builds the Remote's default transport with every limit
// pinned explicitly. http.DefaultClient's zero values mean no dial
// timeout, no TLS handshake cap, no response-header deadline and two
// idle connections per host — exactly the unbounded behaviors a fleet
// client must not inherit: one unresponsive backend would pin goroutines
// forever instead of failing fast into the retry path.
func newTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout: 10 * time.Second,
		// Sweeps fan many concurrent cells at few hosts: the default 2
		// idle conns per host would churn through ephemeral ports.
		MaxIdleConns:        128,
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
		// Generous on purpose: non-streaming endpoints (experiments) do
		// their full simulation before the header. This bounds a *dead*
		// backend, not a slow one; WithRequestTimeout bounds totals.
		ResponseHeaderTimeout: 5 * time.Minute,
		ExpectContinueTimeout: 1 * time.Second,
	}
}

// faultTransport wraps a RoundTripper with the plane's network fault
// points: connect errors and latency spikes before the round trip,
// mid-stream body cuts and first-byte stalls after it.
type faultTransport struct {
	base  http.RoundTripper
	plane *faultinject.Plane
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	o := t.plane.At(faultinject.RemoteConnect)
	if o.Delay > 0 {
		timer := time.NewTimer(o.Delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
	if o.Err != nil {
		return nil, o.Err
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	so := t.plane.At(faultinject.RemoteStream)
	if so.Delay > 0 {
		timer := time.NewTimer(so.Delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			resp.Body.Close()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
	if so.Drop {
		// The body dies after DropBytes — the reader sees a mid-stream
		// error, which the Remote classifies as retryable ErrUnavailable.
		resp.Body = &cutBody{rc: resp.Body, remain: so.DropBytes}
	}
	return resp, nil
}

// cutBody passes through remain bytes, then fails every further read.
type cutBody struct {
	rc     io.ReadCloser
	remain int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		return 0, fmt.Errorf("%w: stream cut", faultinject.ErrInjected)
	}
	if int64(len(p)) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.rc.Read(p)
	c.remain -= int64(n)
	if err == nil && c.remain <= 0 {
		err = fmt.Errorf("%w: stream cut", faultinject.ErrInjected)
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }
