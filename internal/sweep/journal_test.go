package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"r3dla/internal/faultinject"
)

// TestJournalQuarantineMiddleLines is the quarantine contract: corrupt
// *middle* lines (not just a torn tail) are moved to the quarantine
// file, the journal is rewritten with only intact lines, the affected
// cells re-run, and the resumed output is byte-identical to an
// uninterrupted sweep.
func TestJournalQuarantineMiddleLines(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.ndjson")

	if _, err := Run(context.Background(), newTestLab(t, 4), testSpec(), Options{Journal: journal}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("journal has %d lines, want 8", len(lines))
	}

	// Corrupt two middle lines in place — a NUL smashed into the JSON and
	// a bit flip that destroys the framing — while the tail stays intact.
	corrupt2 := []byte(lines[2])
	corrupt2[len(corrupt2)/2] = 0x00
	lines[2] = string(corrupt2)
	lines[5] = strings.Replace(lines[5], `"key"`, `"kXy"`, 1) // decodes but Key==""
	if err := os.WriteFile(journal, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var warnMu sync.Mutex
	var warns []string
	l := newTestLab(t, 4)
	res, err := Run(context.Background(), l, testSpec(), Options{
		Journal: journal, Resume: true,
		Warn: func(format string, args ...any) {
			warnMu.Lock()
			warns = append(warns, fmt.Sprintf(format, args...))
			warnMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 6 || res.Quarantined != 2 {
		t.Fatalf("resumed=%d quarantined=%d, want 6 and 2", res.Resumed, res.Quarantined)
	}
	if l.RunCount() != 2 {
		t.Fatalf("quarantine recovery executed %d simulations, want 2", l.RunCount())
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "quarantined 2") {
		t.Fatalf("warn log %q, want one quarantine notice", warns)
	}

	// The damaged lines landed in the quarantine file, none of them
	// decodable as a journal line.
	qdata, err := os.ReadFile(journal + quarantineExt)
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	qlines := strings.Split(strings.TrimSuffix(string(qdata), "\n"), "\n")
	if len(qlines) != 2 {
		t.Fatalf("quarantine holds %d lines, want 2", len(qlines))
	}
	for _, q := range qlines {
		var jl journalLine
		if err := json.Unmarshal([]byte(q), &jl); err == nil && jl.Key != "" && jl.Result != nil {
			t.Fatalf("quarantine holds a healthy line: %q", q)
		}
	}

	// The rewritten journal (plus the re-run appends) is fully parseable:
	// nothing damaged survived in it.
	lj, err := loadJournal(journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lj.bad) != 0 {
		t.Fatalf("rewritten journal still holds %d damaged lines", len(lj.bad))
	}
	if len(lj.results) != 8 {
		t.Fatalf("rewritten journal has %d cells, want 8", len(lj.results))
	}

	// Byte-identity: the quarantined resume equals a clean run.
	full, err := Run(context.Background(), newTestLab(t, 4), testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, res), renderAll(t, full)) {
		t.Fatal("quarantined resume output differs from clean run")
	}

	// A second resume restores everything — the quarantine healed.
	l2 := newTestLab(t, 4)
	again, err := Run(context.Background(), l2, testSpec(), Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Resumed != 8 || again.Quarantined != 0 || l2.RunCount() != 0 {
		t.Fatalf("post-quarantine resume: resumed=%d quarantined=%d runs=%d",
			again.Resumed, again.Quarantined, l2.RunCount())
	}
}

// TestJournalInjectedAppendDamage drives the same recovery through the
// fault plane: seeded torn and corrupt appends damage the journal as it
// is written, and the next resume quarantines and heals — the
// crash-before-sync test for the append path.
func TestJournalInjectedAppendDamage(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.ndjson")

	p := faultinject.New(51)
	p.MustArm(faultinject.Policy{Point: faultinject.JournalAppend, Mode: faultinject.Torn, Limit: 1, After: 2})
	p.MustArm(faultinject.Policy{Point: faultinject.JournalAppend, Mode: faultinject.Corrupt, Limit: 1, After: 4})

	if _, err := Run(context.Background(), newTestLab(t, 1), testSpec(), Options{
		Journal: journal, Faults: p,
	}); err != nil {
		t.Fatal(err) // torn/corrupt appends are silent; the sweep completes
	}
	if got := p.Fires()[faultinject.JournalAppend]; got != 2 {
		t.Fatalf("append faults fired %d times, want 2", got)
	}

	l := newTestLab(t, 4)
	res, err := Run(context.Background(), l, testSpec(), Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	// The torn line may vanish entirely (truncated to nothing) or leave a
	// fragment; the corrupt line always survives as damage. Either way
	// every missing cell re-runs and the output matches a clean run.
	if res.Resumed+l.RunCount() != 8 {
		t.Fatalf("resumed %d + reran %d != 8 cells", res.Resumed, l.RunCount())
	}
	if l.RunCount() < 1 {
		t.Fatal("injected damage did not force any re-run")
	}
	full, err := Run(context.Background(), newTestLab(t, 4), testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, res), renderAll(t, full)) {
		t.Fatal("resume after injected append damage differs from clean run")
	}
}

// TestJournalAppendENOSPCAbortsSweep: a hard append failure (disk full)
// aborts the sweep with the injected error — checkpoints must never be
// silently lost — and a later resume completes the work.
func TestJournalAppendENOSPCAbortsSweep(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.ndjson")

	p := faultinject.New(52)
	p.MustArm(faultinject.Policy{Point: faultinject.JournalAppend, Mode: faultinject.ENOSPC, After: 3, Limit: 1})

	_, err := Run(context.Background(), newTestLab(t, 1), testSpec(), Options{
		Journal: journal, Faults: p,
	})
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("sweep error %v, want injected ENOSPC", err)
	}

	l := newTestLab(t, 4)
	res, err := Run(context.Background(), l, testSpec(), Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed < 3 {
		t.Fatalf("resumed %d cells, want the >=3 checkpointed before ENOSPC", res.Resumed)
	}
	full, err := Run(context.Background(), newTestLab(t, 4), testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, res), renderAll(t, full)) {
		t.Fatal("resume after ENOSPC differs from clean run")
	}
}

// TestJournalLoadFaultSurfaces: an injected load failure is an error (a
// resume that can't read its journal must not silently start over).
func TestJournalLoadFaultSurfaces(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.ndjson")
	if _, err := Run(context.Background(), newTestLab(t, 4), testSpec(), Options{Journal: journal}); err != nil {
		t.Fatal(err)
	}
	p := faultinject.New(53)
	p.MustArm(faultinject.Policy{Point: faultinject.JournalLoad, Mode: faultinject.Error, Limit: 1})
	_, err := Run(context.Background(), newTestLab(t, 4), testSpec(), Options{
		Journal: journal, Resume: true, Faults: p,
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("resume with injected load fault: %v, want ErrInjected", err)
	}
}
