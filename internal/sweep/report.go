package sweep

import (
	"fmt"
	"strings"

	"r3dla/internal/exp"
	"r3dla/internal/stats"
)

// Report renders the sweep as an experiment-style report: one long-form
// grid table (one row per cell, coordinate columns then metrics) followed
// by a marginal table per axis with at least two values (and one over
// workloads when the set has several). It reuses the experiment report
// machinery, so text/JSON/CSV rendering and file output are identical to
// the canned experiments'. The output is a pure function of the cells in
// expansion order — byte-identical for any worker count.
func (r *Result) Report() *exp.Report {
	axes := r.Spec.AxisNames()

	grid := &stats.Table{Title: r.title()}
	grid.Header = append(append([]string{"workload"}, axes...),
		"ipc", "cycles", "committed", "reboots", "l1d_mpki", "dram_traffic")
	for _, c := range r.Cells {
		row := append([]string{c.Workload}, c.Coords...)
		row = append(row,
			fmt.Sprintf("%.4f", c.Result.IPC),
			fmt.Sprintf("%d", c.Result.Cycles),
			fmt.Sprintf("%d", c.Result.Committed),
			fmt.Sprintf("%d", c.Result.Reboots),
			fmt.Sprintf("%.3f", c.Result.L1DMPKI),
			fmt.Sprintf("%d", c.Result.DRAMTraffic),
		)
		grid.AddRow(row...)
	}

	rep := exp.NewReport(grid)
	rep.ID = "sweep"
	rep.Title = grid.Title

	cellList := make([]Cell, len(r.Cells))
	for i, c := range r.Cells {
		cellList[i] = c.Cell
	}
	marginal := func(name string, values []string, of func(CellResult) string) {
		if len(values) < 2 {
			return
		}
		t := &stats.Table{
			Title:  fmt.Sprintf("marginal over %s (IPC across all other cells)", name),
			Header: []string{name, "n", "ipc_geomean", "ipc_mean", "ipc_min", "ipc_max"},
		}
		for _, v := range values {
			var xs []float64
			for _, c := range r.Cells {
				if of(c) == v {
					xs = append(xs, c.Result.IPC)
				}
			}
			s := stats.Summarize(xs)
			t.AddRow(v, fmt.Sprintf("%d", s.N),
				fmt.Sprintf("%.4f", s.Geomean), fmt.Sprintf("%.4f", s.Mean),
				fmt.Sprintf("%.4f", s.Min), fmt.Sprintf("%.4f", s.Max))
		}
		rep.Add(t)
	}

	marginal("workload", workloadOrder(cellList), func(c CellResult) string { return c.Workload })
	for i, name := range axes {
		i := i
		marginal(name, labelOrder(cellList, i), func(c CellResult) string { return c.Coords[i] })
	}
	return rep
}

// title summarizes the grid shape deterministically.
func (r *Result) title() string {
	var dims []string
	cellList := make([]Cell, len(r.Cells))
	for i, c := range r.Cells {
		cellList[i] = c.Cell
	}
	dims = append(dims, fmt.Sprintf("%d workloads", len(workloadOrder(cellList))))
	for i, name := range r.Spec.AxisNames() {
		dims = append(dims, fmt.Sprintf("%s(%d)", name, len(labelOrder(cellList, i))))
	}
	return fmt.Sprintf("parameter sweep: %d cells over %s", len(r.Cells), strings.Join(dims, " x "))
}
