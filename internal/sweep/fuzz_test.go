package sweep

import (
	"encoding/json"
	"testing"
)

// FuzzSweepSpecRoundtrip asserts the sweep-spec invariant: any spec that
// parses and expands must survive marshal → unmarshal → expand with an
// identical cell matrix (same keys, same order, same coordinates).
// Committed seeds live in testdata/fuzz/FuzzSweepSpecRoundtrip and run as
// ordinary cases under plain `go test`.
func FuzzSweepSpecRoundtrip(f *testing.F) {
	for _, seed := range []string{
		`{"workloads":["mcf"]}`,
		`{"workloads":["all"],"budget":3000}`,
		`{"workloads":["mcf","libq"],"budget":2000,"axes":{"preset":["dla","r3"],"boq_size":[64,512]}}`,
		`{"workloads":["crono"],"base":{"preset":"dla"},"axes":{"version":[0,1,2,3,4,5]}}`,
		`{"workloads":["mcf"],"base":{"preset":"dla"},"axes":{"t1":[true,false],"value_reuse":[true,false],"fetch_buffer":[true,false]}}`,
		`{"workloads":["mcf"],"axes":{"cores":[{"model":"default"},{"model":"wide"},{"model":"half","rob":512}]}}`,
		`{"workloads":["spec","npb"],"budget":5000,"base":{"preset":"r3"},"axes":{"boq_size":[128,256,512,1024]}}`,
		`{"workloads":["mcf"],"base":{"preset":"r3"},"axes":{"recycle":[true,false],"bop":[true,false],"stride":[false]}}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := ParseSpec([]byte(data))
		if err != nil {
			t.Skip() // not a sweep spec
		}
		cells, err := spec.Expand()
		if err != nil {
			return // invalid grids may reject; the invariant is for valid ones
		}

		wire, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		spec2, err := ParseSpec(wire)
		if err != nil {
			t.Fatalf("marshaled spec does not re-parse: %s: %v", wire, err)
		}
		cells2, err := spec2.Expand()
		if err != nil {
			t.Fatalf("round-tripped spec no longer expands: %s: %v", wire, err)
		}
		if len(cells) != len(cells2) {
			t.Fatalf("round trip changed the matrix: %d cells vs %d", len(cells), len(cells2))
		}
		for i := range cells {
			if cells[i].Key != cells2[i].Key {
				t.Fatalf("cell %d key changed:\n before %s\n after  %s", i, cells[i].Key, cells2[i].Key)
			}
			for j := range cells[i].Coords {
				if cells[i].Coords[j] != cells2[i].Coords[j] {
					t.Fatalf("cell %d coord %d changed: %s vs %s",
						i, j, cells[i].Coords[j], cells2[i].Coords[j])
				}
			}
		}
	})
}
