package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"r3dla/internal/lab"
)

// testSpec is the grid the engine tests share: small enough to run under
// -race, wide enough to exercise two axes and two workloads.
func testSpec() Spec {
	return Spec{
		Workloads: []string{"mcf", "libq"},
		Budget:    2000,
		Axes: Axes{
			Preset:  []string{"dla", "r3"},
			BOQSize: []int{64, 512},
		},
	}
}

func newTestLab(t *testing.T, jobs int) *lab.Lab {
	t.Helper()
	l, err := lab.New(lab.WithBudget(2000), lab.WithJobs(jobs))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// renderAll renders a sweep result every way the CLI surfaces it.
func renderAll(t *testing.T, r *Result) []byte {
	t.Helper()
	rep := r.Report()
	var b bytes.Buffer
	b.WriteString(rep.String())
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestSweepDeterministicAcrossJobs mirrors the engine's `-exp all`
// guarantee for sweeps: the rendered output is byte-identical for one
// worker and many, regardless of scheduling (run under -race in CI).
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	serial, err := Run(context.Background(), newTestLab(t, 1), testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), newTestLab(t, 8), testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderAll(t, serial), renderAll(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("-jobs 1 and -jobs 8 sweep output differ:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
	}
}

// TestSweepJournalAndResume kills a sweep partway (context cancellation
// after two completed cells), then resumes from the journal on a fresh
// Lab: the journaled cells must not re-execute (RunCount/PrepCount), and
// the final aggregate output must be byte-identical to an uninterrupted
// run's.
func TestSweepJournalAndResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.ndjson")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	completed := 0
	_, err := Run(ctx, newTestLab(t, 2), testSpec(), Options{
		Journal: journal,
		Progress: func(ev Event) {
			mu.Lock()
			completed++
			if completed == 2 {
				cancel()
			}
			mu.Unlock()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error: %v", err)
	}
	lj, err := loadJournal(journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	chk := lj.results
	if len(chk) < 2 {
		t.Fatalf("journal has %d cells, want >= 2", len(chk))
	}
	cells, _ := testSpec().Expand()
	if len(chk) >= len(cells) {
		t.Fatalf("journal already complete (%d cells); interruption did not interrupt", len(chk))
	}

	// Resume on a fresh Lab: only the missing cells may execute.
	l := newTestLab(t, 2)
	resumed, err := Run(context.Background(), l, testSpec(), Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != len(chk) {
		t.Fatalf("resumed %d cells, journal had %d", resumed.Resumed, len(chk))
	}
	if got, want := l.RunCount(), len(cells)-len(chk); got != want {
		t.Fatalf("resume executed %d simulations, want %d (journaled cells re-ran)", got, want)
	}

	// The resumed aggregate equals an uninterrupted run's, byte for byte.
	full, err := Run(context.Background(), newTestLab(t, 2), testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, resumed), renderAll(t, full)) {
		t.Fatal("resumed sweep output differs from uninterrupted run")
	}

	// A second resume finds everything journaled and runs nothing.
	l2 := newTestLab(t, 2)
	again, err := Run(context.Background(), l2, testSpec(), Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Resumed != len(cells) || l2.RunCount() != 0 || l2.PrepCount("mcf") != 0 {
		t.Fatalf("full resume still ran work: resumed %d, runs %d, preps %d",
			again.Resumed, l2.RunCount(), l2.PrepCount("mcf"))
	}
}

// TestSweepJournalDamageTolerance feeds resume a journal with a
// truncated final line and duplicated cells: both must be tolerated (the
// torn line re-runs, duplicates collapse).
func TestSweepJournalDamageTolerance(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.ndjson")

	// Produce a complete journal first.
	if _, err := Run(context.Background(), newTestLab(t, 4), testSpec(), Options{Journal: journal}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("journal has %d lines, want 8", len(lines))
	}

	// Damage it: duplicate the first two intact lines, then truncate the
	// final line mid-JSON (what a kill -9 during an append leaves).
	last := lines[len(lines)-1]
	damaged := strings.Join(lines[:len(lines)-1], "") + lines[0] + lines[1] + last[:len(last)/2]
	if err := os.WriteFile(journal, []byte(damaged), 0o644); err != nil {
		t.Fatal(err)
	}

	l := newTestLab(t, 4)
	res, err := Run(context.Background(), l, testSpec(), Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	// 7 intact distinct cells restored; only the torn one re-ran.
	if res.Resumed != 7 {
		t.Fatalf("resumed %d cells, want 7", res.Resumed)
	}
	if l.RunCount() != 1 {
		t.Fatalf("damage recovery executed %d simulations, want 1", l.RunCount())
	}
	full, err := Run(context.Background(), newTestLab(t, 4), testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, res), renderAll(t, full)) {
		t.Fatal("damaged-journal resume output differs from clean run")
	}
}

// TestSweepSharesResultCache runs two overlapping sweeps through one Lab:
// the shared singleflight cache must serve the overlap, so total executed
// simulations equal the union of distinct cells.
func TestSweepSharesResultCache(t *testing.T) {
	l := newTestLab(t, 4)
	a := Spec{Workloads: []string{"mcf"}, Budget: 2000, Axes: Axes{Preset: []string{"dla", "r3"}}}
	b := Spec{Workloads: []string{"mcf"}, Budget: 2000, Axes: Axes{Preset: []string{"r3", "baseline"}}}
	if _, err := Run(context.Background(), l, a, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), l, b, Options{}); err != nil {
		t.Fatal(err)
	}
	// dla, r3, baseline: three distinct cells despite four requested.
	if l.RunCount() != 3 {
		t.Fatalf("executed %d simulations, want 3 (overlap not shared)", l.RunCount())
	}
	if l.PrepCount("mcf") != 1 {
		t.Fatalf("mcf prepared %d times, want 1", l.PrepCount("mcf"))
	}
}

// TestSweepResumeRequiresJournal pins the option contract.
func TestSweepResumeRequiresJournal(t *testing.T) {
	if _, err := Run(context.Background(), newTestLab(t, 1), testSpec(), Options{Resume: true}); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("resume without journal: %v", err)
	}
}

// TestSweepTierProvenance pins the explicit-provenance contract: an
// estimator-fidelity sweep stamps every CellResult with its tier, tags
// its journal keys with the tier, and resumes from those tagged keys —
// while a cycle sweep over the same cells keeps untagged keys and an
// empty (JSON-omitted) tier, so pre-tier journals and outputs are
// unchanged.
func TestSweepTierProvenance(t *testing.T) {
	l := newTestLab(t, 4)
	spec := testSpec()
	spec.Fidelity = "analytic"
	journal := filepath.Join(t.TempDir(), "tier.ndjson")

	tiers := &TierRunners{Lab: l}
	runner, err := tiers.Runner(spec.Fidelity, spec.Budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), runner, spec, Options{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Tier != TierAnalytic {
			t.Fatalf("cell %s carries tier %q, want %q", c.Key, c.Tier, TierAnalytic)
		}
	}

	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if !strings.Contains(line, `"key":"analytic!`) {
			t.Fatalf("journal line missing tier tag: %s", line)
		}
	}

	// Resume restores every cell from the tagged keys without re-running.
	resumed, err := Run(context.Background(), runner, spec, Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != len(resumed.Cells) {
		t.Fatalf("resumed %d of %d cells", resumed.Resumed, len(resumed.Cells))
	}
	a, b := renderAll(t, res), renderAll(t, resumed)
	if !bytes.Equal(a, b) {
		t.Fatal("resumed analytic sweep output differs from the uninterrupted run")
	}

	// A cycle sweep over the same journal must NOT hit the analytic
	// checkpoints: its (untagged) keys miss, and its results stay
	// tier-less on the wire.
	cycle := testSpec()
	cres, err := Run(context.Background(), l, cycle, Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Resumed != 0 {
		t.Fatalf("cycle sweep resumed %d cells from analytic checkpoints", cres.Resumed)
	}
	enc, err := json.Marshal(cres.Cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), `"tier"`) {
		t.Fatalf("cycle-tier cell serializes a tier field: %s", enc)
	}
}

// TestSweepFidelityValidation rejects unknown fidelity values at spec
// validation time.
func TestSweepFidelityValidation(t *testing.T) {
	spec := testSpec()
	spec.Fidelity = "quantum"
	if _, err := spec.Expand(); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("fidelity %q: error %v, want ErrInvalid", spec.Fidelity, err)
	}
}

// TestTierRunnersDeterministic: the handler-side runner factory must
// hand out estimators whose results match a freshly-built tier runner's
// (shared calibrators change cost, never results).
func TestTierRunnersDeterministic(t *testing.T) {
	l := newTestLab(t, 2)
	tiers := &TierRunners{Lab: l}
	r1, err := tiers.Runner("mc", 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tiers.Runner("mc", 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	req := lab.RunRequest{Workload: "mcf", Config: lab.ConfigSpec{Preset: "r3"}, Budget: 2000}
	a, err := r1.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runners from one factory disagree:\n%+v\n%+v", a, b)
	}
}
