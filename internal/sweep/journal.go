package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"r3dla/internal/atomicio"
	"r3dla/internal/faultinject"
	"r3dla/internal/lab"
)

// journalLine is one checkpoint record: a completed cell's canonical key
// and its result. The journal is NDJSON — one line per completed cell,
// appended as cells finish, in completion order (which varies with
// scheduling; the aggregate table does not depend on it).
type journalLine struct {
	Key    string         `json:"key"`
	Result *lab.RunResult `json:"result"`
}

// quarantineExt is appended to the journal path to form the quarantine
// file: damaged lines are moved there instead of being silently dropped.
const quarantineExt = ".quarantine"

// loadedJournal is a parsed checkpoint journal: decoded results by cell
// key, plus the raw lines split into intact and damaged — the engine
// quarantines the damaged ones and rewrites the journal from the intact
// ones, so corruption never silently shrinks a resume.
type loadedJournal struct {
	results map[string]*lab.RunResult
	good    [][]byte // intact raw lines, original order
	bad     [][]byte // undecodable raw lines, original order
}

// loadJournal reads a checkpoint journal. Damage a crash or a bad disk
// can leave behind — a truncated final line, a corrupted middle line —
// lands in bad rather than being skipped; duplicate keys collapse (last
// write wins — results are deterministic, so duplicates agree anyway). A
// missing file is an empty journal.
func loadJournal(path string, faults *faultinject.Plane) (*loadedJournal, error) {
	if faults != nil {
		o := faults.At(faultinject.JournalLoad)
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Err != nil {
			return nil, fmt.Errorf("sweep: journal: %w", o.Err)
		}
	}
	lj := &loadedJournal{results: make(map[string]*lab.RunResult)}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return lj, nil
		}
		return nil, fmt.Errorf("sweep: journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := append([]byte(nil), sc.Bytes()...)
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var l journalLine
		if err := json.Unmarshal(raw, &l); err != nil || l.Key == "" || l.Result == nil {
			lj.bad = append(lj.bad, raw)
			continue
		}
		lj.results[l.Key] = l.Result
		lj.good = append(lj.good, raw)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: journal: %w", err)
	}
	return lj, nil
}

// quarantine moves a journal's damaged lines aside: they are appended
// (durably) to <journal>.quarantine for postmortem, and the journal is
// atomically rewritten holding only the intact lines in their original
// order. The damaged lines' cells simply re-run — results are
// deterministic, so the repaired journal plus the re-runs reproduce the
// uninterrupted output byte for byte.
func quarantine(path string, lj *loadedJournal) error {
	q, err := os.OpenFile(path+quarantineExt, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: quarantine: %w", err)
	}
	for _, line := range lj.bad {
		if _, err := q.Write(append(line, '\n')); err != nil {
			q.Close()
			return fmt.Errorf("sweep: quarantine: %w", err)
		}
	}
	if err := q.Sync(); err != nil {
		q.Close()
		return fmt.Errorf("sweep: quarantine: %w", err)
	}
	if err := q.Close(); err != nil {
		return fmt.Errorf("sweep: quarantine: %w", err)
	}

	var clean bytes.Buffer
	for _, line := range lj.good {
		clean.Write(line)
		clean.WriteByte('\n')
	}
	if err := atomicio.WriteFile(path, clean.Bytes(), 0o644, nil, ""); err != nil {
		return fmt.Errorf("sweep: quarantine: rewrite: %w", err)
	}
	return nil
}

// journalWriter appends checkpoint lines to the journal file, serialized
// across the sweep's worker goroutines. Each line is written, then
// fsynced, so a crash after append returns cannot lose the checkpoint —
// at most the line being written is torn, and quarantine absorbs that on
// resume.
type journalWriter struct {
	mu     sync.Mutex
	f      *os.File
	faults *faultinject.Plane
}

// openJournal opens (creating if needed) the journal for appending, and
// syncs the parent directory so the file's existence is durable.
func openJournal(path string, faults *faultinject.Plane) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: journal: %w", err)
	}
	if err := atomicio.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: journal: %w", err)
	}
	return &journalWriter{f: f, faults: faults}, nil
}

// append writes one completed cell and fsyncs. Errors are returned so
// the engine can abort the sweep rather than silently losing
// checkpoints. Injected torn/corrupt faults damage the line *silently*
// (the sweep continues) — that is the crash shape quarantine has to
// catch on the next resume.
func (w *journalWriter) append(key string, res *lab.RunResult) error {
	data, err := json.Marshal(journalLine{Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("sweep: journal: %w", err)
	}
	data = append(data, '\n')
	if w.faults != nil {
		o := w.faults.At(faultinject.JournalAppend)
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Err != nil {
			return fmt.Errorf("sweep: journal: %w", o.Err)
		}
		if o.Torn {
			// A killed process mid-append: a line prefix with no
			// terminator. Keep at least one byte off the end so the line
			// can never parse.
			n := int(o.Frac * float64(len(data)-1))
			data = data[:n]
		}
		if o.Corrupt && len(data) > 1 {
			// Smash a byte inside the line (never the terminator) to NUL:
			// the line stays a line but can never decode — JSON rejects
			// control characters everywhere, so the damage is always
			// caught (an XOR flip inside a string could still parse).
			i := int(o.Frac * float64(len(data)-1))
			mutated := append([]byte(nil), data...)
			mutated[i] = 0x00
			data = mutated
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(data) > 0 {
		if _, err := w.f.Write(data); err != nil {
			return fmt.Errorf("sweep: journal: %w", err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("sweep: journal: %w", err)
	}
	return nil
}

func (w *journalWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
