package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"r3dla/internal/lab"
)

// journalLine is one checkpoint record: a completed cell's canonical key
// and its result. The journal is NDJSON — one line per completed cell,
// appended as cells finish, in completion order (which varies with
// scheduling; the aggregate table does not depend on it).
type journalLine struct {
	Key    string         `json:"key"`
	Result *lab.RunResult `json:"result"`
}

// loadJournal reads a checkpoint journal and returns completed results by
// cell key. Damage a crash can leave behind is tolerated: a truncated or
// otherwise malformed line (typically the final line of a killed sweep)
// is skipped, and duplicate keys collapse (last write wins — results are
// deterministic, so duplicates agree anyway). A missing file is an empty
// journal.
func loadJournal(path string) (map[string]*lab.RunResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]*lab.RunResult{}, nil
		}
		return nil, fmt.Errorf("sweep: journal: %w", err)
	}
	defer f.Close()

	out := make(map[string]*lab.RunResult)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l journalLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil || l.Key == "" || l.Result == nil {
			continue // torn write from a killed sweep
		}
		out[l.Key] = l.Result
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: journal: %w", err)
	}
	return out, nil
}

// journalWriter appends checkpoint lines to the journal file, serialized
// across the sweep's worker goroutines. Each line is written and flushed
// atomically with respect to other appends, so a crash loses at most the
// line being written.
type journalWriter struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (creating if needed) the journal for appending.
func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: journal: %w", err)
	}
	return &journalWriter{f: f}, nil
}

// append writes one completed cell. Errors are returned so the engine can
// abort the sweep rather than silently losing checkpoints.
func (w *journalWriter) append(key string, res *lab.RunResult) error {
	data, err := json.Marshal(journalLine{Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("sweep: journal: %w", err)
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(data); err != nil {
		return fmt.Errorf("sweep: journal: %w", err)
	}
	return nil
}

func (w *journalWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
