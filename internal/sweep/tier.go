package sweep

import (
	"fmt"

	"r3dla/internal/lab"
)

// Evaluation tiers. The tier names a Result's provenance: which kind of
// runner produced each cell. The cycle-accurate tier is the empty string
// so that every pre-tier Result, journal and report remains byte-for-byte
// valid — tier tags only ever appear for estimated results.
const (
	TierCycle    = ""         // cycle-accurate simulation (the default)
	TierAnalytic = "analytic" // Markov fetch-buffer model (internal/tier)
	TierMC       = "mc"       // Monte-Carlo sampling tier (internal/tier)
)

// TierOf canonicalizes a spec's fidelity field to a tier constant:
// "" and "cycle" are the cycle-accurate tier, "analytic" and "mc" the
// estimator tiers. Anything else is a validation error.
func TierOf(fidelity string) (string, error) {
	switch fidelity {
	case "", "cycle":
		return TierCycle, nil
	case TierAnalytic:
		return TierAnalytic, nil
	case TierMC:
		return TierMC, nil
	}
	return "", fmt.Errorf("%w: fidelity %q (want cycle, analytic or mc)", lab.ErrInvalid, fidelity)
}

// journalKey tags a cell's canonical key with its tier, so one journal
// can hold the same cell evaluated at several fidelities without the
// tiers colliding on resume. Cycle-accurate keys stay untagged — every
// existing journal remains a valid cycle-tier journal.
func journalKey(tier, key string) string {
	if tier == TierCycle {
		return key
	}
	return tier + "!" + key
}
