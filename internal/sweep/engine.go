package sweep

import (
	"context"
	"fmt"
	"sync"
	"time"

	"r3dla/internal/faultinject"
	"r3dla/internal/lab"
)

// Event is one progress notification: a cell completed (freshly simulated
// or restored from the journal on resume).
type Event struct {
	Cell    Cell
	Result  *lab.RunResult
	Resumed bool // restored from the checkpoint journal, not re-run
	Done    int  // cells completed so far (including this one)
	Total   int
	Elapsed time.Duration // zero for resumed cells
}

// Options configure one sweep execution.
type Options struct {
	// Journal, when non-empty, is the checkpoint file: every completed
	// cell is appended as one NDJSON line, so a killed sweep can resume.
	Journal string

	// Resume loads the journal before running and skips every cell whose
	// key is already checkpointed. Requires Journal.
	Resume bool

	// Progress, when non-nil, receives an Event per completed cell. It
	// may be called from multiple goroutines and must be safe for that.
	Progress func(Event)

	// Warn, when non-nil, receives human-readable notices about damage
	// the engine absorbed (quarantined journal lines). Never required
	// for correctness.
	Warn func(format string, args ...any)

	// Faults, when non-nil, threads a fault-injection plane through the
	// journal (chaos testing only; nil in production).
	Faults *faultinject.Plane
}

// Result is a completed sweep: the expanded cells in deterministic
// expansion order, each with its RunResult. Everything derived from it
// (the report tables, JSON, CSV) is byte-identical regardless of worker
// count or resume history.
type Result struct {
	Spec    Spec         `json:"spec"`
	Cells   []CellResult `json:"cells"`
	Resumed int          `json:"resumed"` // cells restored from the journal
	// Quarantined counts damaged journal lines moved to the quarantine
	// file on resume; their cells re-ran, so the output is still
	// byte-identical to an uninterrupted sweep.
	Quarantined int `json:"quarantined,omitempty"`
}

// CellResult pairs one cell with its simulation outcome. Tier records
// the result's provenance explicitly (TierCycle for cycle-accurate
// simulation, TierAnalytic/TierMC for estimates) — consumers must never
// infer fidelity from Budget or any other result field. The empty cycle
// tier is omitted from JSON, so pre-tier outputs are unchanged byte for
// byte.
type CellResult struct {
	Cell
	Tier   string         `json:"tier,omitempty"`
	Result *lab.RunResult `json:"result"`
}

// Runner executes one simulation cell. *lab.Lab is the in-process Runner
// (cells run on its worker pool through its singleflight caches); the
// fleet pool is the distributed one (cells are routed across r3dlad
// backends). Because every cell is a deterministic function of its
// request, the engine's output is byte-identical either way.
type Runner interface {
	Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error)
}

// Run executes the sweep through r: the spec expands into its
// deduplicated cell matrix, journaled cells (on resume) are restored
// without re-running, and the rest are dispatched concurrently — one
// goroutine per cell, with actual compute bounded by the Runner (the
// Lab's worker pool locally, per-backend admission across a fleet). The
// journal and resume logic sit on this side of the Runner boundary, so
// checkpointing works identically for local and distributed sweeps. The
// first cell error (or ctx cancellation) aborts outstanding cells;
// completed cells stay checkpointed, so a failed or killed sweep resumes
// where it stopped.
func Run(ctx context.Context, r Runner, spec Spec, opts Options) (*Result, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	return RunCells(ctx, r, spec, cells, opts)
}

// RunCells is Run on an already-constructed cell list: the HTTP handler
// expands once for up-front validation and reuses the cells here, and
// the dse searchers feed sampled batches from a lazily-enumerated space
// through it — journal checkpointing, resume restoration, progress
// ordering and the deterministic Result layout all apply identically.
// spec supplies the per-cell budget and is carried into the Result;
// cells need not come from spec.Expand().
func RunCells(ctx context.Context, l Runner, spec Spec, cells []Cell, opts Options) (*Result, error) {
	var err error
	if opts.Resume && opts.Journal == "" {
		return nil, fmt.Errorf("%w: resume requires a journal path", lab.ErrInvalid)
	}
	tier, err := TierOf(spec.Fidelity)
	if err != nil {
		return nil, err
	}

	journaled := map[string]*lab.RunResult{}
	quarantined := 0
	if opts.Resume {
		lj, err := loadJournal(opts.Journal, opts.Faults)
		if err != nil {
			return nil, err
		}
		journaled = lj.results
		if len(lj.bad) > 0 {
			// Damaged lines are moved aside, not silently dropped: the
			// journal is rewritten with only intact lines and the cells
			// behind the damage re-run below.
			if err := quarantine(opts.Journal, lj); err != nil {
				return nil, err
			}
			quarantined = len(lj.bad)
			if opts.Warn != nil {
				opts.Warn("sweep: quarantined %d damaged journal line(s) to %s; affected cells will re-run",
					quarantined, opts.Journal+quarantineExt)
			}
		}
	}
	var jw *journalWriter
	if opts.Journal != "" {
		if jw, err = openJournal(opts.Journal, opts.Faults); err != nil {
			return nil, err
		}
		defer jw.close()
	}

	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := &Result{Spec: spec, Cells: make([]CellResult, len(cells)), Quarantined: quarantined}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards done, firstErr and Progress ordering
		done     int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	complete := func(i int, r *lab.RunResult, resumed bool, elapsed time.Duration) {
		// Progress runs under mu so observers see Done counts in emission
		// order (the NDJSON stream's done field must never regress).
		mu.Lock()
		defer mu.Unlock()
		res.Cells[i] = CellResult{Cell: cells[i], Tier: tier, Result: r}
		done++
		if opts.Progress != nil {
			opts.Progress(Event{
				Cell: cells[i], Result: r, Resumed: resumed,
				Done: done, Total: len(cells), Elapsed: elapsed,
			})
		}
	}

	for i := range cells {
		// Journal lookups and appends go through the tier-tagged key, so
		// one journal can checkpoint the same cell at several fidelities
		// (the dse ladder's rungs) without cross-tier collisions.
		if r, ok := journaled[journalKey(tier, cells[i].Key)]; ok {
			res.Resumed++
			complete(i, r, true, 0)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			r, err := l.Run(runCtx, lab.RunRequest{
				Workload: cells[i].Workload,
				Config:   cells[i].Config,
				Budget:   spec.Budget,
			})
			if err != nil {
				fail(fmt.Errorf("cell %s: %w", cells[i].Key, err))
				return
			}
			if jw != nil {
				if err := jw.append(journalKey(tier, cells[i].Key), r); err != nil {
					fail(err)
					return
				}
			}
			complete(i, r, false, time.Since(start))
		}(i)
	}
	wg.Wait()

	if firstErr != nil {
		// Prefer the caller's cancellation cause over the per-cell wrap,
		// so callers can errors.Is against their own context.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, firstErr
	}
	return res, nil
}
