// Package sweep is the parameter-space exploration engine: a declarative
// grid Spec (axes over configuration fields plus a workload set) expands
// into a deduplicated run matrix, cells are dispatched through a Runner —
// the in-process Lab client, or a fleet pool routing across r3dlad
// backends — completed cells are checkpointed to an NDJSON journal so an
// interrupted sweep resumes without repeating work, and results
// aggregate into a long-form table with per-axis marginals. Because
// every cell runs through the Runner's singleflight result cache (the
// Lab's locally, the pool's across the wire), overlapping sweeps (and
// sweeps overlapping plain runs) share simulations instead of repeating
// them; and because cells are deterministic, the rendered output is
// byte-identical whichever Runner executed them.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"r3dla/internal/lab"
	"r3dla/internal/workloads"
)

// MaxCells caps how many cells one sweep may expand to; larger grids are
// rejected at validation time (split them into several sweeps).
const MaxCells = 4096

// Spec is the declarative description of one parameter sweep: the
// workload set, the per-cell simulation budget, a base configuration
// every cell starts from, and the axes to vary. The grid is the cartesian
// product of all non-empty axes over all workloads; axes left empty keep
// the base configuration's value.
type Spec struct {
	// Workloads names the workload set: workload names, suite names
	// ("spec", "crono", "star", "npb"), or "all". Order is preserved;
	// duplicates collapse.
	Workloads []string `json:"workloads"`

	// Budget is the per-cell evaluation budget in committed MT
	// instructions (0 = the Lab default).
	Budget uint64 `json:"budget,omitempty"`

	// Base is the configuration each cell starts from before axis values
	// are applied ({} means the baseline preset).
	Base lab.ConfigSpec `json:"base,omitempty"`

	// Axes are the dimensions to vary.
	Axes Axes `json:"axes"`

	// Fidelity selects the evaluation tier for every cell: "" or "cycle"
	// for the cycle-accurate simulator, "analytic" for the Markov
	// fetch-buffer estimator, "mc" for the Monte-Carlo sampling tier
	// (see internal/tier). Estimated results carry their tier in the
	// output and in journal keys.
	Fidelity string `json:"fidelity,omitempty"`
}

// Axes lists the values to sweep per configuration field. Each non-empty
// list becomes one grid dimension, in the (fixed) field order below.
type Axes struct {
	Preset       []string `json:"preset,omitempty"`
	T1           []bool   `json:"t1,omitempty"`
	ValueReuse   []bool   `json:"value_reuse,omitempty"`
	FetchBuffer  []bool   `json:"fetch_buffer,omitempty"`
	Recycle      []bool   `json:"recycle,omitempty"`
	BOP          []bool   `json:"bop,omitempty"`
	Stride       []bool   `json:"stride,omitempty"`
	PrefetchOnly []bool   `json:"prefetch_only,omitempty"`

	BOQSize []int `json:"boq_size,omitempty"`
	FQSize  []int `json:"fq_size,omitempty"`
	VQSize  []int `json:"vq_size,omitempty"`

	Version []int `json:"version,omitempty"`

	Cores []lab.CoreSpec `json:"cores,omitempty"`
}

// Axis is one active grid dimension: a name for table columns and error
// messages, the rendered value labels, and a setter applying value i to a
// cell's ConfigSpec. Axes are how the grid is described symbolically —
// the dse explorer walks them to index cells without ever materializing
// the cartesian product.
type Axis struct {
	name   string
	labels []string
	apply  func(s *lab.ConfigSpec, i int)
}

// Name is the axis's column name ("preset", "boq_size", …).
func (a Axis) Name() string { return a.name }

// Len is the number of values on the axis.
func (a Axis) Len() int { return len(a.labels) }

// Label renders value i for tables and error messages.
func (a Axis) Label(i int) string { return a.labels[i] }

// Apply sets value i on a cell's ConfigSpec.
func (a Axis) Apply(s *lab.ConfigSpec, i int) { a.apply(s, i) }

func boolAxis(name string, vals []bool, set func(s *lab.ConfigSpec, v *bool)) Axis {
	labels := make([]string, len(vals))
	for i, v := range vals {
		labels[i] = strconv.FormatBool(v)
	}
	return Axis{name, labels, func(s *lab.ConfigSpec, i int) { v := vals[i]; set(s, &v) }}
}

func intAxis(name string, vals []int, set func(s *lab.ConfigSpec, v *int)) Axis {
	labels := make([]string, len(vals))
	for i, v := range vals {
		labels[i] = strconv.Itoa(v)
	}
	return Axis{name, labels, func(s *lab.ConfigSpec, i int) { v := vals[i]; set(s, &v) }}
}

// Active returns the spec's active axes in fixed field order.
func (a Axes) Active() []Axis {
	var out []Axis
	if len(a.Preset) > 0 {
		out = append(out, Axis{"preset", a.Preset, func(s *lab.ConfigSpec, i int) { s.Preset = a.Preset[i] }})
	}
	add := func(ax Axis) { out = append(out, ax) }
	if len(a.T1) > 0 {
		add(boolAxis("t1", a.T1, func(s *lab.ConfigSpec, v *bool) { s.T1 = v }))
	}
	if len(a.ValueReuse) > 0 {
		add(boolAxis("value_reuse", a.ValueReuse, func(s *lab.ConfigSpec, v *bool) { s.ValueReuse = v }))
	}
	if len(a.FetchBuffer) > 0 {
		add(boolAxis("fetch_buffer", a.FetchBuffer, func(s *lab.ConfigSpec, v *bool) { s.FetchBuffer = v }))
	}
	if len(a.Recycle) > 0 {
		add(boolAxis("recycle", a.Recycle, func(s *lab.ConfigSpec, v *bool) { s.Recycle = v }))
	}
	if len(a.BOP) > 0 {
		add(boolAxis("bop", a.BOP, func(s *lab.ConfigSpec, v *bool) { s.BOP = v }))
	}
	if len(a.Stride) > 0 {
		add(boolAxis("stride", a.Stride, func(s *lab.ConfigSpec, v *bool) { s.Stride = v }))
	}
	if len(a.PrefetchOnly) > 0 {
		add(boolAxis("prefetch_only", a.PrefetchOnly, func(s *lab.ConfigSpec, v *bool) { s.PrefetchOnly = v }))
	}
	if len(a.BOQSize) > 0 {
		add(intAxis("boq_size", a.BOQSize, func(s *lab.ConfigSpec, v *int) { s.BOQSize = v }))
	}
	if len(a.FQSize) > 0 {
		add(intAxis("fq_size", a.FQSize, func(s *lab.ConfigSpec, v *int) { s.FQSize = v }))
	}
	if len(a.VQSize) > 0 {
		add(intAxis("vq_size", a.VQSize, func(s *lab.ConfigSpec, v *int) { s.VQSize = v }))
	}
	if len(a.Version) > 0 {
		add(intAxis("version", a.Version, func(s *lab.ConfigSpec, v *int) { s.Version = v }))
	}
	if len(a.Cores) > 0 {
		labels := make([]string, len(a.Cores))
		for i, c := range a.Cores {
			labels[i] = c.Key()
		}
		add(Axis{"cores", labels, func(s *lab.ConfigSpec, i int) { c := a.Cores[i]; s.Cores = &c }})
	}
	return out
}

// AxisNames lists the active axis names in grid order (the coordinate
// columns of the long-form table).
func (s Spec) AxisNames() []string {
	var out []string
	for _, ax := range s.Axes.Active() {
		out = append(out, ax.name)
	}
	return out
}

// Cell is one point of the expanded run matrix.
type Cell struct {
	// Index is the cell's position in deterministic expansion order
	// (workloads outer, then each axis in field order).
	Index int `json:"cell"`

	// Workload and Config fully determine the simulation.
	Workload string         `json:"workload"`
	Config   lab.ConfigSpec `json:"config"`

	// Coords are the cell's axis value labels, aligned with AxisNames.
	Coords []string `json:"coords,omitempty"`

	// Key is the cell's canonical identity: workload, resolved
	// configuration key, and budget. Equal keys mean identical simulation
	// semantics; the journal and the dedup step match on it.
	Key string `json:"key"`
}

// ParseSpec decodes a JSON sweep spec, rejecting unknown fields.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: sweep spec: %v", lab.ErrInvalid, err)
	}
	// Trailing garbage after the spec object is a malformed spec too.
	if dec.More() {
		return Spec{}, fmt.Errorf("%w: sweep spec: trailing data after JSON object", lab.ErrInvalid)
	}
	return s, nil
}

// resolveWorkloads expands workload/suite/"all" entries into a
// deduplicated workload-name list, preserving first-mention order.
func resolveWorkloads(entries []string) ([]string, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: workloads: empty (name workloads, suites, or \"all\")", lab.ErrInvalid)
	}
	seen := make(map[string]bool)
	var out []string
	addW := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for i, e := range entries {
		switch {
		case e == "all":
			for _, w := range workloads.All() {
				addW(w.Name)
			}
		case workloads.ByName(e) != nil:
			addW(e)
		default:
			if ws := workloads.BySuite(e); len(ws) > 0 {
				for _, w := range ws {
					addW(w.Name)
				}
				continue
			}
			return nil, fmt.Errorf("%w: workloads[%d]: unknown workload or suite %q", lab.ErrInvalid, i, e)
		}
	}
	return out, nil
}

// MaxSpace caps how many cells a lazily-enumerated space may describe:
// large enough that no realistic axis set hits it, small enough that
// size arithmetic can never overflow int64.
const MaxSpace = int64(1) << 40

// Enum is the lazy view of a spec's grid: workloads resolved, axes
// activated, total size computed — but no cell materialized. Cells are
// constructed on demand by enumeration index, so a 10^6-point space
// costs nothing to describe; the dse samplers and searchers draw from
// exactly this. Enumeration order matches Expand: workloads outermost,
// then each active axis in field order, last axis fastest.
type Enum struct {
	spec Spec
	wls  []string
	axes []Axis
	size int64
}

// Enumerate validates the spec's workloads and axes and returns the lazy
// grid view. Unlike Expand it enforces no MaxCells cap — only the
// arithmetic-overflow guard MaxSpace.
func (s Spec) Enumerate() (*Enum, error) {
	wls, err := resolveWorkloads(s.Workloads)
	if err != nil {
		return nil, err
	}
	if _, err := TierOf(s.Fidelity); err != nil {
		return nil, err
	}
	axes := s.Axes.Active()
	for _, ax := range axes {
		vals := make(map[string]bool, ax.Len())
		for _, l := range ax.labels {
			if vals[l] {
				return nil, fmt.Errorf("%w: axes.%s: duplicate value %s", lab.ErrInvalid, ax.name, l)
			}
			vals[l] = true
		}
	}
	size := int64(len(wls))
	for _, ax := range axes {
		if size > MaxSpace/int64(ax.Len()) {
			return nil, fmt.Errorf("%w: space exceeds %d cells", lab.ErrInvalid, MaxSpace)
		}
		size *= int64(ax.Len())
	}
	return &Enum{spec: s, wls: wls, axes: axes, size: size}, nil
}

// Size is the total cell count of the space (before any dedup of
// aliasing configurations).
func (e *Enum) Size() int64 { return e.size }

// Workloads lists the resolved workload names in enumeration order.
func (e *Enum) Workloads() []string { return e.wls }

// Axes lists the active axes in enumeration order.
func (e *Enum) Axes() []Axis { return e.axes }

// CellAt constructs the cell at enumeration index i, keyed at the given
// budget (the successive-halving searcher re-evaluates the same indices
// at rising budgets, so the budget is a parameter rather than read from
// the spec). Cell.Index is the enumeration index; unlike Expand, no
// cross-cell dedup happens here — aliasing indices yield equal Keys, and
// callers collapse on those.
func (e *Enum) CellAt(i int64, budget uint64) (Cell, error) {
	if i < 0 || i >= e.size {
		return Cell{}, fmt.Errorf("%w: cell index %d outside space of %d", lab.ErrInvalid, i, e.size)
	}
	idx := make([]int, len(e.axes))
	rem := i
	for d := len(e.axes) - 1; d >= 0; d-- {
		n := int64(e.axes[d].Len())
		idx[d] = int(rem % n)
		rem /= n
	}
	wl := e.wls[rem]
	spec := e.spec.Base
	coords := make([]string, len(e.axes))
	for d, ax := range e.axes {
		ax.apply(&spec, idx[d])
		coords[d] = ax.labels[idx[d]]
	}
	cfg, err := spec.Config()
	if err != nil {
		return Cell{}, fmt.Errorf("cell %s: %w", cellName(wl, e.axes, idx), err)
	}
	return Cell{
		Index:    int(i),
		Workload: wl,
		Config:   spec,
		Coords:   coords,
		Key:      lab.RunKey(wl, cfg, budget),
	}, nil
}

// Cell is CellAt at the spec's own budget.
func (e *Enum) Cell(i int64) (Cell, error) { return e.CellAt(i, e.spec.Budget) }

// Expand validates the spec and materializes its deduplicated run matrix
// in deterministic order: workloads outermost, then each active axis in
// field order. Cells whose resolved configurations coincide (axis values
// that alias after preset resolution) collapse to the first occurrence.
// Any invalid cell fails the whole expansion with the cell's coordinates
// in the error.
func (s Spec) Expand() ([]Cell, error) {
	e, err := s.Enumerate()
	if err != nil {
		return nil, err
	}
	if e.size > MaxCells {
		return nil, fmt.Errorf("%w: grid exceeds %d cells (search it with `r3dla explore`, or split the sweep)", lab.ErrInvalid, MaxCells)
	}
	seen := make(map[string]bool, e.size)
	var cells []Cell
	for i := int64(0); i < e.size; i++ {
		c, err := e.CellAt(i, s.Budget)
		if err != nil {
			return nil, err
		}
		if !seen[c.Key] {
			seen[c.Key] = true
			c.Index = len(cells)
			cells = append(cells, c)
		}
	}
	return cells, nil
}

// cellName renders a cell's coordinates for error messages.
func cellName(wl string, axes []Axis, idx []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s", wl)
	for i, ax := range axes {
		fmt.Fprintf(&b, " %s=%s", ax.name, ax.labels[idx[i]])
	}
	return b.String()
}

// labelOrder returns an axis's labels in first-seen cell order; used by
// the marginal tables so rows follow the spec's declared value order.
func labelOrder(cells []Cell, axisIdx int) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range cells {
		l := c.Coords[axisIdx]
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// workloadOrder lists distinct workloads in cell order.
func workloadOrder(cells []Cell) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			out = append(out, c.Workload)
		}
	}
	return out
}
