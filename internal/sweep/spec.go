// Package sweep is the parameter-space exploration engine: a declarative
// grid Spec (axes over configuration fields plus a workload set) expands
// into a deduplicated run matrix, cells are dispatched through a Runner —
// the in-process Lab client, or a fleet pool routing across r3dlad
// backends — completed cells are checkpointed to an NDJSON journal so an
// interrupted sweep resumes without repeating work, and results
// aggregate into a long-form table with per-axis marginals. Because
// every cell runs through the Runner's singleflight result cache (the
// Lab's locally, the pool's across the wire), overlapping sweeps (and
// sweeps overlapping plain runs) share simulations instead of repeating
// them; and because cells are deterministic, the rendered output is
// byte-identical whichever Runner executed them.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"r3dla/internal/lab"
	"r3dla/internal/workloads"
)

// MaxCells caps how many cells one sweep may expand to; larger grids are
// rejected at validation time (split them into several sweeps).
const MaxCells = 4096

// Spec is the declarative description of one parameter sweep: the
// workload set, the per-cell simulation budget, a base configuration
// every cell starts from, and the axes to vary. The grid is the cartesian
// product of all non-empty axes over all workloads; axes left empty keep
// the base configuration's value.
type Spec struct {
	// Workloads names the workload set: workload names, suite names
	// ("spec", "crono", "star", "npb"), or "all". Order is preserved;
	// duplicates collapse.
	Workloads []string `json:"workloads"`

	// Budget is the per-cell evaluation budget in committed MT
	// instructions (0 = the Lab default).
	Budget uint64 `json:"budget,omitempty"`

	// Base is the configuration each cell starts from before axis values
	// are applied ({} means the baseline preset).
	Base lab.ConfigSpec `json:"base,omitempty"`

	// Axes are the dimensions to vary.
	Axes Axes `json:"axes"`
}

// Axes lists the values to sweep per configuration field. Each non-empty
// list becomes one grid dimension, in the (fixed) field order below.
type Axes struct {
	Preset       []string `json:"preset,omitempty"`
	T1           []bool   `json:"t1,omitempty"`
	ValueReuse   []bool   `json:"value_reuse,omitempty"`
	FetchBuffer  []bool   `json:"fetch_buffer,omitempty"`
	Recycle      []bool   `json:"recycle,omitempty"`
	BOP          []bool   `json:"bop,omitempty"`
	Stride       []bool   `json:"stride,omitempty"`
	PrefetchOnly []bool   `json:"prefetch_only,omitempty"`

	BOQSize []int `json:"boq_size,omitempty"`
	FQSize  []int `json:"fq_size,omitempty"`
	VQSize  []int `json:"vq_size,omitempty"`

	Version []int `json:"version,omitempty"`

	Cores []lab.CoreSpec `json:"cores,omitempty"`
}

// axis is one active grid dimension: a name for table columns and error
// messages, the rendered value labels, and a setter applying value i to a
// cell's ConfigSpec.
type axis struct {
	name   string
	labels []string
	apply  func(s *lab.ConfigSpec, i int)
}

func boolAxis(name string, vals []bool, set func(s *lab.ConfigSpec, v *bool)) axis {
	labels := make([]string, len(vals))
	for i, v := range vals {
		labels[i] = strconv.FormatBool(v)
	}
	return axis{name, labels, func(s *lab.ConfigSpec, i int) { v := vals[i]; set(s, &v) }}
}

func intAxis(name string, vals []int, set func(s *lab.ConfigSpec, v *int)) axis {
	labels := make([]string, len(vals))
	for i, v := range vals {
		labels[i] = strconv.Itoa(v)
	}
	return axis{name, labels, func(s *lab.ConfigSpec, i int) { v := vals[i]; set(s, &v) }}
}

// active returns the spec's active axes in fixed field order.
func (a Axes) active() []axis {
	var out []axis
	if len(a.Preset) > 0 {
		out = append(out, axis{"preset", a.Preset, func(s *lab.ConfigSpec, i int) { s.Preset = a.Preset[i] }})
	}
	add := func(ax axis) { out = append(out, ax) }
	if len(a.T1) > 0 {
		add(boolAxis("t1", a.T1, func(s *lab.ConfigSpec, v *bool) { s.T1 = v }))
	}
	if len(a.ValueReuse) > 0 {
		add(boolAxis("value_reuse", a.ValueReuse, func(s *lab.ConfigSpec, v *bool) { s.ValueReuse = v }))
	}
	if len(a.FetchBuffer) > 0 {
		add(boolAxis("fetch_buffer", a.FetchBuffer, func(s *lab.ConfigSpec, v *bool) { s.FetchBuffer = v }))
	}
	if len(a.Recycle) > 0 {
		add(boolAxis("recycle", a.Recycle, func(s *lab.ConfigSpec, v *bool) { s.Recycle = v }))
	}
	if len(a.BOP) > 0 {
		add(boolAxis("bop", a.BOP, func(s *lab.ConfigSpec, v *bool) { s.BOP = v }))
	}
	if len(a.Stride) > 0 {
		add(boolAxis("stride", a.Stride, func(s *lab.ConfigSpec, v *bool) { s.Stride = v }))
	}
	if len(a.PrefetchOnly) > 0 {
		add(boolAxis("prefetch_only", a.PrefetchOnly, func(s *lab.ConfigSpec, v *bool) { s.PrefetchOnly = v }))
	}
	if len(a.BOQSize) > 0 {
		add(intAxis("boq_size", a.BOQSize, func(s *lab.ConfigSpec, v *int) { s.BOQSize = v }))
	}
	if len(a.FQSize) > 0 {
		add(intAxis("fq_size", a.FQSize, func(s *lab.ConfigSpec, v *int) { s.FQSize = v }))
	}
	if len(a.VQSize) > 0 {
		add(intAxis("vq_size", a.VQSize, func(s *lab.ConfigSpec, v *int) { s.VQSize = v }))
	}
	if len(a.Version) > 0 {
		add(intAxis("version", a.Version, func(s *lab.ConfigSpec, v *int) { s.Version = v }))
	}
	if len(a.Cores) > 0 {
		labels := make([]string, len(a.Cores))
		for i, c := range a.Cores {
			labels[i] = c.Key()
		}
		add(axis{"cores", labels, func(s *lab.ConfigSpec, i int) { c := a.Cores[i]; s.Cores = &c }})
	}
	return out
}

// AxisNames lists the active axis names in grid order (the coordinate
// columns of the long-form table).
func (s Spec) AxisNames() []string {
	var out []string
	for _, ax := range s.Axes.active() {
		out = append(out, ax.name)
	}
	return out
}

// Cell is one point of the expanded run matrix.
type Cell struct {
	// Index is the cell's position in deterministic expansion order
	// (workloads outer, then each axis in field order).
	Index int `json:"cell"`

	// Workload and Config fully determine the simulation.
	Workload string         `json:"workload"`
	Config   lab.ConfigSpec `json:"config"`

	// Coords are the cell's axis value labels, aligned with AxisNames.
	Coords []string `json:"coords,omitempty"`

	// Key is the cell's canonical identity: workload, resolved
	// configuration key, and budget. Equal keys mean identical simulation
	// semantics; the journal and the dedup step match on it.
	Key string `json:"key"`
}

// ParseSpec decodes a JSON sweep spec, rejecting unknown fields.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: sweep spec: %v", lab.ErrInvalid, err)
	}
	// Trailing garbage after the spec object is a malformed spec too.
	if dec.More() {
		return Spec{}, fmt.Errorf("%w: sweep spec: trailing data after JSON object", lab.ErrInvalid)
	}
	return s, nil
}

// resolveWorkloads expands workload/suite/"all" entries into a
// deduplicated workload-name list, preserving first-mention order.
func resolveWorkloads(entries []string) ([]string, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: workloads: empty (name workloads, suites, or \"all\")", lab.ErrInvalid)
	}
	seen := make(map[string]bool)
	var out []string
	addW := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for i, e := range entries {
		switch {
		case e == "all":
			for _, w := range workloads.All() {
				addW(w.Name)
			}
		case workloads.ByName(e) != nil:
			addW(e)
		default:
			if ws := workloads.BySuite(e); len(ws) > 0 {
				for _, w := range ws {
					addW(w.Name)
				}
				continue
			}
			return nil, fmt.Errorf("%w: workloads[%d]: unknown workload or suite %q", lab.ErrInvalid, i, e)
		}
	}
	return out, nil
}

// Expand validates the spec and materializes its deduplicated run matrix
// in deterministic order: workloads outermost, then each active axis in
// field order. Cells whose resolved configurations coincide (axis values
// that alias after preset resolution) collapse to the first occurrence.
// Any invalid cell fails the whole expansion with the cell's coordinates
// in the error.
func (s Spec) Expand() ([]Cell, error) {
	wls, err := resolveWorkloads(s.Workloads)
	if err != nil {
		return nil, err
	}
	axes := s.Axes.active()
	for _, ax := range axes {
		vals := make(map[string]bool, len(ax.labels))
		for _, l := range ax.labels {
			if vals[l] {
				return nil, fmt.Errorf("%w: axes.%s: duplicate value %s", lab.ErrInvalid, ax.name, l)
			}
			vals[l] = true
		}
	}
	total := len(wls)
	for _, ax := range axes {
		total *= len(ax.labels)
		if total > MaxCells {
			return nil, fmt.Errorf("%w: grid exceeds %d cells (split the sweep)", lab.ErrInvalid, MaxCells)
		}
	}

	// idx walks the mixed-radix coordinate vector over the axes.
	idx := make([]int, len(axes))
	seen := make(map[string]bool, total)
	var cells []Cell
	for _, wl := range wls {
		for i := range idx {
			idx[i] = 0
		}
		for {
			spec := s.Base
			coords := make([]string, len(axes))
			for i, ax := range axes {
				ax.apply(&spec, idx[i])
				coords[i] = ax.labels[idx[i]]
			}
			cfg, err := spec.Config()
			if err != nil {
				return nil, fmt.Errorf("cell %s: %w", cellName(wl, axes, idx), err)
			}
			key := fmt.Sprintf("%s|%s@%d", wl, cfg.Key(), s.Budget)
			if !seen[key] {
				seen[key] = true
				cells = append(cells, Cell{
					Index:    len(cells),
					Workload: wl,
					Config:   spec,
					Coords:   coords,
					Key:      key,
				})
			}
			if !inc(idx, axes) {
				break
			}
		}
	}
	return cells, nil
}

// inc advances the mixed-radix coordinate vector; false means wrapped.
func inc(idx []int, axes []axis) bool {
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < len(axes[i].labels) {
			return true
		}
		idx[i] = 0
	}
	return false
}

// cellName renders a cell's coordinates for error messages.
func cellName(wl string, axes []axis, idx []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s", wl)
	for i, ax := range axes {
		fmt.Fprintf(&b, " %s=%s", ax.name, ax.labels[idx[i]])
	}
	return b.String()
}

// labelOrder returns an axis's labels in first-seen cell order; used by
// the marginal tables so rows follow the spec's declared value order.
func labelOrder(cells []Cell, axisIdx int) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range cells {
		l := c.Coords[axisIdx]
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// workloadOrder lists distinct workloads in cell order.
func workloadOrder(cells []Cell) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			out = append(out, c.Workload)
		}
	}
	return out
}
