package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"r3dla/internal/exp"
	"r3dla/internal/lab"
	"r3dla/internal/tier"
)

// Gate is the slice of the r3dlad server a sweep handler shares: request
// admission (503 at capacity, class-aware via the request's priority
// header), outcome accounting for /v1/healthz, and the per-request
// budget cap. *lab.Server implements it; a nil Gate means unlimited
// admission and no budget cap (library/test use).
type Gate interface {
	Admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool)
	Observe(ctx context.Context, err error)
	MaxBudget() uint64
}

// StreamLine is one NDJSON line of a POST /v1/sweeps response: a "cell"
// line per completed cell (in completion order), then exactly one
// terminal line — "result" carrying the aggregate report, or "error".
type StreamLine struct {
	Event   string         `json:"event"` // "cell", "result", "error"
	Done    int            `json:"done,omitempty"`
	Total   int            `json:"total,omitempty"`
	Cell    *Cell          `json:"cell,omitempty"`
	Run     *lab.RunResult `json:"run,omitempty"`
	Resumed bool           `json:"resumed,omitempty"`
	Result  *exp.Report    `json:"result,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// NewHandler returns the POST /v1/sweeps handler over l: the body is a
// sweep Spec (JSON), the response an NDJSON stream of completed cells
// followed by the aggregate report. Validation failures are proper 400s
// before the stream commits to 200. Sweeps are admitted through g exactly
// like runs; the server journals nothing — cross-request reuse comes from
// the Lab's singleflight result cache instead.
func NewHandler(l *lab.Lab, g Gate) http.Handler {
	tiers := &TierRunners{Lab: l}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", lab.ErrInvalid, err))
			return
		}
		spec, err := ParseSpec(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if g != nil {
			if max := g.MaxBudget(); max > 0 && spec.Budget > max {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("%w: budget %d exceeds server cap %d", lab.ErrInvalid, spec.Budget, max))
				return
			}
		}
		// Expand up front so bad grids are 400s with field-level messages,
		// not mid-stream errors; the cells are reused below.
		cells, err := spec.Expand()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}

		var release func()
		if g != nil {
			var ok bool
			if release, ok = g.Admit(w, r); !ok {
				return
			}
			defer release()
		}

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		var mu sync.Mutex
		enc := json.NewEncoder(w)
		emit := func(line StreamLine) {
			mu.Lock()
			defer mu.Unlock()
			enc.Encode(line)
			if flusher != nil {
				flusher.Flush()
			}
		}

		runner, err := tiers.Runner(spec.Fidelity, spec.Budget, 0)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}

		res, err := RunCells(r.Context(), runner, spec, cells, Options{
			Progress: func(ev Event) {
				c := ev.Cell
				emit(StreamLine{
					Event: "cell", Done: ev.Done, Total: ev.Total,
					Cell: &c, Run: ev.Result, Resumed: ev.Resumed,
				})
			},
		})
		if g != nil {
			g.Observe(r.Context(), err)
		}
		if err != nil {
			emit(StreamLine{Event: "error", Error: err.Error()})
			return
		}
		emit(StreamLine{Event: "result", Result: res.Report()})
	})
}

// TierRunners resolves fidelity names to Runners over one Lab, sharing
// calibrators across requests so a server calibrates each (workload,
// calibration-budget) pair once, not once per request. Both the sweep
// and the explore handlers hold one.
type TierRunners struct {
	Lab *lab.Lab

	mu   sync.Mutex
	cals map[uint64]*tier.Calibrator
}

// Runner returns the Runner for a fidelity name: the Lab itself for the
// cycle tier, a calibrated estimator otherwise. budget is the per-cell
// budget (it sizes the calibration run); seed fixes the Monte-Carlo
// tier's sampling streams.
func (t *TierRunners) Runner(fidelity string, budget uint64, seed uint64) (Runner, error) {
	tr, err := TierOf(fidelity)
	if err != nil {
		return nil, err
	}
	if tr == TierCycle {
		return t.Lab, nil
	}
	cal := t.calibrator(budget)
	if tr == TierAnalytic {
		return tier.NewAnalyticRunner(cal), nil
	}
	return tier.NewMonteCarloRunner(cal, seed), nil
}

func (t *TierRunners) calibrator(budget uint64) *tier.Calibrator {
	cb := tier.CalibBudgetFor(budget)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cals == nil {
		t.cals = make(map[uint64]*tier.Calibrator)
	}
	c := t.cals[cb]
	if c == nil {
		c = tier.NewCalibrator(t.Lab, cb, nil)
		t.cals[cb] = c
	}
	return c
}

// writeError mirrors the lab server's error body shape.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}
