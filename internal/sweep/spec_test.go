package sweep

import (
	"errors"
	"strings"
	"testing"

	"r3dla/internal/lab"
)

func TestExpandGrid(t *testing.T) {
	spec := Spec{
		Workloads: []string{"mcf", "libq"},
		Budget:    3000,
		Axes: Axes{
			Preset:  []string{"dla", "r3"},
			BOQSize: []int{128, 512},
		},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	// Deterministic order: workloads outermost, then axes in field order.
	if cells[0].Workload != "mcf" || cells[0].Coords[0] != "dla" || cells[0].Coords[1] != "128" {
		t.Fatalf("cell 0 wrong: %+v", cells[0])
	}
	if cells[3].Workload != "mcf" || cells[3].Coords[0] != "r3" || cells[3].Coords[1] != "512" {
		t.Fatalf("cell 3 wrong: %+v", cells[3])
	}
	if cells[4].Workload != "libq" {
		t.Fatalf("cell 4 wrong workload: %+v", cells[4])
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		if !strings.Contains(c.Key, "@3000") {
			t.Fatalf("budget missing from key: %s", c.Key)
		}
	}
	if names := spec.AxisNames(); len(names) != 2 || names[0] != "preset" || names[1] != "boq_size" {
		t.Fatalf("axis names: %v", names)
	}
}

// TestExpandDedup asserts cells whose resolved configurations coincide
// collapse: preset r3 already has t1 on, so the t1=true axis value
// aliases it.
func TestExpandDedup(t *testing.T) {
	spec := Spec{
		Workloads: []string{"mcf"},
		Base:      lab.ConfigSpec{Preset: "r3"},
		Axes:      Axes{T1: []bool{true}},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}

	// Same thing with a genuinely distinguishing axis: two cells.
	spec.Axes = Axes{T1: []bool{true, false}}
	cells, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
}

func TestExpandWorkloadSets(t *testing.T) {
	// A suite name expands to its workloads; "all" to everything;
	// duplicates collapse keeping first-mention order.
	cells, err := Spec{Workloads: []string{"crono", "mcf"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 3 || cells[len(cells)-1].Workload != "mcf" {
		t.Fatalf("suite expansion wrong: %d cells, last %q", len(cells), cells[len(cells)-1].Workload)
	}
	all, err := Spec{Workloads: []string{"all", "mcf"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 25 {
		t.Fatalf("all: %d cells, want 25", len(all))
	}
}

func TestExpandValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
		want string // substring of the field-level error
	}{
		{"no workloads", Spec{}, "workloads"},
		{"unknown workload", Spec{Workloads: []string{"nope"}}, `workloads[0]`},
		{"duplicate axis value", Spec{Workloads: []string{"mcf"}, Axes: Axes{BOQSize: []int{128, 128}}}, "duplicate value"},
		{"bad preset", Spec{Workloads: []string{"mcf"}, Axes: Axes{Preset: []string{"marvel"}}}, `preset "marvel"`},
		{"version out of range", Spec{Workloads: []string{"mcf"}, Base: lab.ConfigSpec{Preset: "dla"}, Axes: Axes{Version: []int{9}}}, "version 9"},
		{"version under recycle", Spec{Workloads: []string{"mcf"}, Base: lab.ConfigSpec{Preset: "r3"}, Axes: Axes{Version: []int{1}}}, "recycling"},
		{"version on baseline base", Spec{Workloads: []string{"mcf"}, Axes: Axes{Version: []int{0, 1}}}, "requires a look-ahead preset"},
		{"bad core model", Spec{Workloads: []string{"mcf"}, Axes: Axes{Cores: []lab.CoreSpec{{Model: "mega"}}}}, `core model "mega"`},
		{"huge grid", Spec{Workloads: []string{"all"}, Axes: Axes{BOQSize: manyInts(200)}}, "exceeds"},
	} {
		_, err := tc.spec.Expand()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, lab.ErrInvalid) {
			t.Errorf("%s: error %v not tagged ErrInvalid", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q misses %q", tc.name, err, tc.want)
		}
	}

	// Invalid cells name their coordinates.
	_, err := (Spec{
		Workloads: []string{"mcf"},
		Base:      lab.ConfigSpec{Preset: "dla"},
		Axes:      Axes{Version: []int{0, 9}},
	}).Expand()
	if err == nil || !strings.Contains(err.Error(), "workload=mcf version=9") {
		t.Fatalf("cell coordinates missing from error: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"workloads":["mcf"],"budget":5000,"axes":{"preset":["dla","r3"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Budget != 5000 || len(spec.Axes.Preset) != 2 {
		t.Fatalf("parsed wrong: %+v", spec)
	}
	for _, bad := range []string{
		`{"workloads":["mcf"],"bogus":1}`,          // unknown field
		`{"workloads":["mcf"],"axes":{"boq":[1]}}`, // unknown axis
		`not json`,                       // malformed
		`{"workloads":["mcf"]} trailing`, // trailing data
		`{"workloads":["mcf"],"axes":{"boq_size":["five"]}}`, // wrong type
	} {
		if _, err := ParseSpec([]byte(bad)); !errors.Is(err, lab.ErrInvalid) {
			t.Errorf("%s: error %v not tagged ErrInvalid", bad, err)
		}
	}
}

func TestCoreSpecAxis(t *testing.T) {
	spec := Spec{
		Workloads: []string{"mcf"},
		Axes:      Axes{Cores: []lab.CoreSpec{{Model: "default"}, {Model: "wide"}, {Model: "half", ROB: 512}}},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	if cells[2].Coords[0] != "half+rob=512" {
		t.Fatalf("core axis label: %q", cells[2].Coords[0])
	}
	// Distinct core configs must not alias in the canonical key.
	if cells[0].Key == cells[1].Key || cells[1].Key == cells[2].Key {
		t.Fatalf("core cells alias: %q / %q / %q", cells[0].Key, cells[1].Key, cells[2].Key)
	}
}

func manyInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 8 + i
	}
	return out
}
