package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"r3dla/internal/lab"
)

// newTestServer builds the full service shape cmd/r3dlad wires: the lab
// server with the sweep endpoint mounted as an extension route.
func newTestServer(t *testing.T, opts ...lab.ServerOption) (*httptest.Server, *lab.Lab) {
	t.Helper()
	l, err := lab.New(lab.WithBudget(2000), lab.WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	h := lab.NewServer(l, opts...)
	h.Handle("POST /v1/sweeps", NewHandler(l, h))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, l
}

func postSweep(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSweepEndpointStreams(t *testing.T) {
	srv, l := newTestServer(t)
	resp := postSweep(t, srv.URL, `{"workloads":["mcf"],"budget":2000,"axes":{"preset":["dla","r3"]}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	var lines []StreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 cells + result", len(lines))
	}
	seen := map[int]bool{}
	for _, line := range lines[:2] {
		if line.Event != "cell" || line.Total != 2 || line.Run == nil || line.Cell == nil {
			t.Fatalf("cell line wrong: %+v", line)
		}
		seen[line.Done] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("done counts wrong: %v", seen)
	}
	last := lines[2]
	if last.Event != "result" || last.Result == nil || len(last.Result.Tables) == 0 {
		t.Fatalf("terminal line wrong: %+v", last)
	}
	if got := len(last.Result.Tables[0].Rows); got != 2 {
		t.Fatalf("grid table has %d rows, want 2", got)
	}
	if l.RunCount() != 2 {
		t.Fatalf("executed %d simulations, want 2", l.RunCount())
	}
}

// TestSweepEndpointValidation asserts bad sweep specs are proper 400s
// with field-level messages, before the stream commits to 200.
func TestSweepEndpointValidation(t *testing.T) {
	srv, _ := newTestServer(t, lab.WithMaxBudget(10_000))
	for _, tc := range []struct {
		name, body, want string
		status           int
	}{
		{"malformed", `not json`, "sweep spec", http.StatusBadRequest},
		{"unknown field", `{"workloads":["mcf"],"bogus":1}`, "bogus", http.StatusBadRequest},
		{"no workloads", `{"axes":{"preset":["dla"]}}`, "workloads", http.StatusBadRequest},
		{"unknown workload", `{"workloads":["nope"]}`, "workloads[0]", http.StatusBadRequest},
		{"bad version cell", `{"workloads":["mcf"],"base":{"preset":"dla"},"axes":{"version":[9]}}`, "version 9", http.StatusBadRequest},
		{"over budget", `{"workloads":["mcf"],"budget":1000000}`, "exceeds server cap", http.StatusBadRequest},
	} {
		resp := postSweep(t, srv.URL, tc.body)
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if !strings.Contains(e.Error, tc.want) {
			t.Errorf("%s: error %q misses %q", tc.name, e.Error, tc.want)
		}
	}
}

// TestSweepEndpointAdmission asserts sweeps consume the same admission
// slots as runs: a server with zero free capacity answers 503.
func TestSweepEndpointAdmission(t *testing.T) {
	srv, _ := newTestServer(t, lab.WithMaxInflight(1))

	// Occupy the only slot with a long cancelable run, then try to admit
	// a sweep; cancel the run once the 503 is observed so the test (and
	// the server shutdown) doesn't wait out the long simulation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/runs",
		strings.NewReader(`{"workload":"mcf","config":{"preset":"dla"},"budget":30000000}`))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait until the run actually holds the slot, then the sweep gets 503.
	for i := 0; ; i++ {
		var h lab.Health
		resp, err := http.Get(srv.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if h.Active >= 1 {
			break
		}
		if i >= 500 {
			t.Fatal("long run never became active")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp := postSweep(t, srv.URL, `{"workloads":["mcf"],"budget":2000}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep at capacity: status %d, want 503", resp.StatusCode)
	}
	cancel()
	<-done
}
