package dse

import (
	"fmt"
	"math/rand"

	"r3dla/internal/lab"
)

// Sampler names accepted by Spec.Sampler.
const (
	SamplerRandom = "random"
	SamplerLHS    = "lhs"
)

// A Sampler draws batches of distinct cell indices from a Space. Draws
// are a deterministic stream: a sampler built from the same (space,
// seed) pair produces the same sequence of batches, which is what makes
// a fixed-seed exploration byte-identical across -jobs counts, backends
// and resumes — the search's random choices never depend on timing.
// Draw returns up to n indices not returned before; fewer (possibly
// zero) when the space is nearly exhausted.
type Sampler interface {
	Name() string
	Draw(n int) []int64
}

// NewSampler builds the named sampler over sp, seeded with seed.
func NewSampler(name string, sp *Space, seed int64) (Sampler, error) {
	switch name {
	case "", SamplerRandom:
		return &randomSampler{rng: rand.New(rand.NewSource(seed)), size: sp.Size(), drawn: map[int64]bool{}}, nil
	case SamplerLHS:
		return &lhsSampler{rng: rand.New(rand.NewSource(seed)), space: sp, drawn: map[int64]bool{}}, nil
	}
	return nil, fmt.Errorf("%w: unknown sampler %q (want random or lhs)", lab.ErrInvalid, name)
}

// randomSampler draws uniform cell indices without replacement across
// its lifetime (rejection sampling against the drawn set — cheap while
// the space dwarfs the draw count, still terminating when it doesn't).
type randomSampler struct {
	rng   *rand.Rand
	size  int64
	drawn map[int64]bool
}

func (s *randomSampler) Name() string { return SamplerRandom }

func (s *randomSampler) Draw(n int) []int64 {
	var out []int64
	for len(out) < n && int64(len(s.drawn)) < s.size {
		i := s.rng.Int63n(s.size)
		if !s.drawn[i] {
			s.drawn[i] = true
			out = append(out, i)
		}
	}
	return out
}

// lhsSampler draws Latin-hypercube blocks: each Draw(n) stratifies every
// dimension (workload + each axis) into n strata via an independent
// seeded permutation, so each dimension's values are hit near-uniformly
// — sample j takes value perm_d[j]*k_d/n in dimension d, which lands
// each of the k_d values either floor(n/k_d) or ceil(n/k_d) times. The
// exact integer stratum→value map (no jitter) keeps the stream
// platform-independent. Composed indices that alias cells drawn in an
// earlier block are dropped, so the stream stays without-replacement.
type lhsSampler struct {
	rng   *rand.Rand
	space *Space
	drawn map[int64]bool
}

func (s *lhsSampler) Name() string { return SamplerLHS }

func (s *lhsSampler) Draw(n int) []int64 {
	if n < 1 {
		return nil
	}
	dims := s.space.Dims()
	perms := make([][]int, len(dims))
	for d := range dims {
		perms[d] = s.rng.Perm(n)
	}
	var out []int64
	idx := make([]int64, len(dims))
	for j := 0; j < n; j++ {
		for d, k := range dims {
			idx[d] = int64(perms[d][j]) * k / int64(n)
		}
		i, err := s.space.Compose(idx)
		if err != nil {
			continue // unreachable: strata map inside every dimension
		}
		if !s.drawn[i] {
			s.drawn[i] = true
			out = append(out, i)
		}
	}
	return out
}
