package dse

import (
	"testing"

	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// TestDominates is the dominance truth table: maximize IPC, minimize
// energy, strict on at least one objective.
func TestDominates(t *testing.T) {
	cases := []struct {
		name string
		p, q Point
		want bool
	}{
		{"better on both", Point{2, 1}, Point{1, 2}, true},
		{"better ipc, equal energy", Point{2, 1}, Point{1, 1}, true},
		{"equal ipc, better energy", Point{2, 1}, Point{2, 2}, true},
		{"identical", Point{2, 1}, Point{2, 1}, false},
		{"worse ipc", Point{1, 1}, Point{2, 1}, false},
		{"worse energy", Point{2, 2}, Point{2, 1}, false},
		{"tradeoff (better ipc, worse energy)", Point{3, 5}, Point{2, 1}, false},
		{"tradeoff (worse ipc, better energy)", Point{2, 1}, Point{3, 5}, false},
	}
	for _, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("%s: %+v dominates %+v = %v, want %v", c.name, c.p, c.q, got, c.want)
		}
	}
}

// cellAt builds a synthetic CellResult on the objective plane.
func cellAt(key string, ipc, energy float64) sweep.CellResult {
	c := sweep.CellResult{Result: &lab.RunResult{IPC: ipc, EnergyJ: energy}}
	c.Key = key
	return c
}

// TestFrontier pins selection and ordering: dominated cells drop, the
// survivors sort IPC-descending (energy, then key, breaking ties), and
// exact objective duplicates keep only their first occurrence.
func TestFrontier(t *testing.T) {
	cells := []sweep.CellResult{
		cellAt("a", 1.0, 5.0), // dominated by c and d
		cellAt("b", 3.0, 9.0), // frontier: fastest
		cellAt("c", 2.0, 4.0), // frontier: middle trade-off
		cellAt("d", 1.5, 2.0), // frontier: thriftiest
		cellAt("e", 2.0, 4.5), // dominated by c (same IPC, more energy)
		cellAt("f", 2.0, 4.0), // exact duplicate of c: dropped (first kept)
	}
	front := frontier(cells)
	want := []string{"b", "c", "d"}
	if len(front) != len(want) {
		t.Fatalf("frontier has %d cells %v, want %v", len(front), keysOf(front), want)
	}
	for i, k := range want {
		if front[i].Key != k {
			t.Fatalf("frontier order %v, want %v", keysOf(front), want)
		}
	}
}

// TestFrontierSinglePoint: one cell is its own frontier; empty input
// yields an empty frontier.
func TestFrontierDegenerate(t *testing.T) {
	if f := frontier(nil); len(f) != 0 {
		t.Fatalf("empty input produced frontier %v", keysOf(f))
	}
	f := frontier([]sweep.CellResult{cellAt("only", 1, 1)})
	if len(f) != 1 || f[0].Key != "only" {
		t.Fatalf("single cell frontier wrong: %v", keysOf(f))
	}
}

func keysOf(cells []sweep.CellResult) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = c.Key
	}
	return out
}
