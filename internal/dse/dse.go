// Package dse is the adaptive design-space exploration layer: where
// internal/sweep enumerates a grid exhaustively (and caps it at
// sweep.MaxCells), dse describes the same axes symbolically as a lazy
// Space, draws cells from it with pluggable samplers (seeded random,
// Latin hypercube), and runs iterative searchers — successive halving on
// IPC across rising budgets, Pareto-frontier search over IPC vs energy —
// that submit deterministic batches through the existing sweep.Runner
// interface. Because evaluation happens on that boundary, everything the
// sweep engine already provides composes for free: the Lab's (or fleet
// pool's) singleflight result cache, the NDJSON checkpoint journal with
// crash-safe resume, and the byte-identity contract — a fixed seed
// yields byte-identical output at any -jobs count, local or distributed,
// interrupted or not. The search loop is separated from the evaluation
// workers in the RESIDSE style: samplers and searchers never touch a
// simulator, they only pick cell indices and rank deterministic results.
package dse

import (
	"bytes"
	"encoding/json"
	"fmt"

	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// Strategy names accepted by Spec.Strategy.
const (
	// StrategyRandom evaluates one seeded uniform sample of the space.
	StrategyRandom = "random"
	// StrategyLHS evaluates one Latin-hypercube-stratified sample.
	StrategyLHS = "lhs"
	// StrategyHalving runs successive halving on IPC: a broad candidate
	// draw at a small budget, the best 1/eta promoted to an eta-times
	// larger budget, repeated until the full budget decides the survivors.
	StrategyHalving = "halving"
	// StrategyPareto accumulates sampler draws round by round and keeps
	// the non-dominated IPC-vs-energy frontier of everything evaluated.
	StrategyPareto = "pareto"
)

// FidelityLadder turns a halving or pareto exploration into a tiered
// one: the whole space is scored by the analytic tier, the top fraction
// is promoted to the Monte-Carlo tier, and only the finalists run on the
// cycle-accurate runner — rungs become (runner, budget) pairs instead of
// budgets alone, and the report carries per-tier estimator error against
// the cycle-accurate ground truth.
const FidelityLadder = "ladder"

// Defaults applied by normalize for fields left zero.
const (
	DefaultSamples = 256
	DefaultRounds  = 4
	DefaultEta     = 4

	// maxSamples and maxRounds bound one exploration's evaluation volume
	// (the per-round sample cap times the round cap), so a malformed spec
	// cannot ask a server for unbounded compute.
	maxSamples = 65536
	maxRounds  = 64
)

// Spec is the declarative description of one exploration: the space (a
// sweep spec, minus its cell cap) plus the search strategy and its
// parameters. The zero values of the tuning knobs mean "default", so the
// minimal spec is just a space, a strategy and a seed.
type Spec struct {
	// Space describes the axes to search — exactly a sweep spec, but
	// enumerated lazily, so spaces far beyond sweep.MaxCells are legal.
	// Space.Budget is the full-fidelity evaluation budget.
	Space sweep.Spec `json:"space"`

	// Strategy selects the search loop ("" means random).
	Strategy string `json:"strategy,omitempty"`

	// Sampler selects the candidate source for the iterative strategies
	// ("random" or "lhs"; "" means random). The one-shot strategies name
	// their sampler directly and ignore this.
	Sampler string `json:"sampler,omitempty"`

	// Seed drives every random choice. Equal seeds mean byte-identical
	// exploration output — the determinism contract under randomness.
	Seed int64 `json:"seed"`

	// Samples is the cells drawn per round (and the one-shot sample
	// size); 0 means DefaultSamples.
	Samples int `json:"samples,omitempty"`

	// Rounds bounds the Pareto strategy's draw-evaluate rounds; 0 means
	// DefaultRounds. Halving derives its round count from the budgets.
	Rounds int `json:"rounds,omitempty"`

	// Eta is the halving reduction factor: each round keeps ceil(n/eta)
	// candidates and multiplies the budget by eta; 0 means DefaultEta.
	Eta int `json:"eta,omitempty"`

	// MinBudget is halving's round-0 budget; 0 derives it from the full
	// budget (Space.Budget / eta^3, floored at 1000).
	MinBudget uint64 `json:"min_budget,omitempty"`

	// Fidelity selects tiered evaluation: "" runs every rung on the
	// cycle-accurate runner, FidelityLadder climbs analytic → Monte-Carlo
	// → cycle-accurate instead of (halving) or alongside (pareto) the
	// budget ladder.
	Fidelity string `json:"fidelity,omitempty"`
}

// ParseSpec decodes a JSON exploration spec, rejecting unknown fields
// and trailing garbage, mirroring sweep.ParseSpec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: explore spec: %v", lab.ErrInvalid, err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("%w: explore spec: trailing data after JSON object", lab.ErrInvalid)
	}
	return s, nil
}

// normalize validates the spec and fills defaults, returning the
// resolved copy the searchers run on. The space itself is validated by
// NewSpace (workloads, axes, size), not here.
func (s Spec) normalize() (Spec, error) {
	switch s.Strategy {
	case "":
		s.Strategy = StrategyRandom
	case StrategyRandom, StrategyLHS, StrategyHalving, StrategyPareto:
	default:
		return Spec{}, fmt.Errorf("%w: unknown strategy %q (want random, lhs, halving or pareto)", lab.ErrInvalid, s.Strategy)
	}
	switch s.Sampler {
	case "":
		s.Sampler = SamplerRandom
	case SamplerRandom, SamplerLHS:
	default:
		return Spec{}, fmt.Errorf("%w: unknown sampler %q (want random or lhs)", lab.ErrInvalid, s.Sampler)
	}
	// The one-shot strategies are their sampler; keep the two coherent so
	// the report header never contradicts itself.
	switch s.Strategy {
	case StrategyRandom:
		s.Sampler = SamplerRandom
	case StrategyLHS:
		s.Sampler = SamplerLHS
	}
	if s.Samples == 0 {
		s.Samples = DefaultSamples
	}
	if s.Samples < 1 || s.Samples > maxSamples {
		return Spec{}, fmt.Errorf("%w: samples %d, want 1..%d", lab.ErrInvalid, s.Samples, maxSamples)
	}
	if s.Rounds == 0 {
		s.Rounds = DefaultRounds
	}
	if s.Rounds < 1 || s.Rounds > maxRounds {
		return Spec{}, fmt.Errorf("%w: rounds %d, want 1..%d", lab.ErrInvalid, s.Rounds, maxRounds)
	}
	if s.Eta == 0 {
		s.Eta = DefaultEta
	}
	if s.Eta < 2 || s.Eta > 64 {
		return Spec{}, fmt.Errorf("%w: eta %d, want 2..64", lab.ErrInvalid, s.Eta)
	}
	switch s.Fidelity {
	case "":
	case FidelityLadder:
		if s.Strategy != StrategyHalving && s.Strategy != StrategyPareto {
			return Spec{}, fmt.Errorf("%w: fidelity ladder needs an iterative strategy (halving or pareto), not %q", lab.ErrInvalid, s.Strategy)
		}
		if s.Space.Budget == 0 {
			return Spec{}, fmt.Errorf("%w: fidelity ladder needs an explicit space budget (every rung evaluates at it)", lab.ErrInvalid)
		}
		if s.Space.Fidelity != "" {
			return Spec{}, fmt.Errorf("%w: set fidelity on the exploration, not the space (space fidelity %q conflicts with the ladder)", lab.ErrInvalid, s.Space.Fidelity)
		}
	default:
		return Spec{}, fmt.Errorf("%w: unknown fidelity %q (want \"\" or %q)", lab.ErrInvalid, s.Fidelity, FidelityLadder)
	}
	if s.Strategy == StrategyHalving {
		if s.Space.Budget == 0 {
			return Spec{}, fmt.Errorf("%w: halving needs an explicit space budget (the rising-budget ladder tops out there)", lab.ErrInvalid)
		}
		if s.MinBudget == 0 {
			eta := uint64(s.Eta)
			s.MinBudget = s.Space.Budget / (eta * eta * eta)
			if s.MinBudget < 1000 {
				s.MinBudget = 1000
			}
			if s.MinBudget > s.Space.Budget {
				s.MinBudget = s.Space.Budget
			}
		}
		if s.MinBudget > s.Space.Budget {
			return Spec{}, fmt.Errorf("%w: min_budget %d exceeds the space budget %d", lab.ErrInvalid, s.MinBudget, s.Space.Budget)
		}
	}
	return s, nil
}
