package dse

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"r3dla/internal/lab"
)

// newTestServer builds the service shape cmd/r3dlad wires: the lab
// server with the explore endpoint mounted as an extension route.
func newTestServer(t *testing.T, opts ...lab.ServerOption) (*httptest.Server, *lab.Lab) {
	t.Helper()
	l, err := lab.New(lab.WithBudget(2000), lab.WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	h := lab.NewServer(l, opts...)
	h.Handle("POST /v1/explore", NewHandler(l, h))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, l
}

func postExplore(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

const exploreBody = `{
  "space": {"workloads":["mcf"],"budget":2000,"axes":{"preset":["dla","r3"],"boq_size":[64,512]}},
  "strategy": "pareto", "seed": 4, "samples": 3, "rounds": 1
}`

func TestExploreEndpointStreams(t *testing.T) {
	srv, l := newTestServer(t)
	resp := postExplore(t, srv.URL, exploreBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	var lines []StreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 cells + result", len(lines))
	}
	for _, line := range lines[:3] {
		if line.Event != "cell" || line.Run == nil || line.Cell == nil {
			t.Fatalf("cell line wrong: %+v", line)
		}
		if line.Run.EnergyJ <= 0 {
			t.Fatalf("cell result misses energy: %+v", line.Run)
		}
	}
	last := lines[3]
	if last.Event != "result" || last.Result == nil || last.Result.ID != "explore" {
		t.Fatalf("terminal line wrong: %+v", last)
	}
	if l.RunCount() != 3 {
		t.Fatalf("executed %d simulations, want 3", l.RunCount())
	}
}

// TestExploreEndpointValidation asserts bad explore specs are proper
// 400s with field-level messages, before the stream commits to 200.
func TestExploreEndpointValidation(t *testing.T) {
	srv, _ := newTestServer(t, lab.WithMaxBudget(5000))
	cases := []struct {
		name, body, wantMsg string
	}{
		{"malformed json", `{`, "explore spec"},
		{"unknown field", `{"space":{},"temperature":1}`, "unknown field"},
		{"unknown strategy", `{"space":{"workloads":["mcf"]},"strategy":"anneal"}`, "unknown strategy"},
		{"unknown workload", `{"space":{"workloads":["nosuch"]}}`, "unknown workload"},
		{"budget over cap", `{"space":{"workloads":["mcf"],"budget":9000}}`, "exceeds server cap"},
		{"halving without budget", `{"space":{"workloads":["mcf"]},"strategy":"halving"}`, "halving needs an explicit space budget"},
	}
	for _, c := range cases {
		resp := postExplore(t, srv.URL, c.body)
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: decoding error body: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, body.Error)
			continue
		}
		if !strings.Contains(body.Error, c.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", c.name, body.Error, c.wantMsg)
		}
	}
}
