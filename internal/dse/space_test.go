package dse

import (
	"errors"
	"strings"
	"testing"

	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// testSpaceSpec is the small grid the pure dse tests share: 2 workloads x
// 2 presets x 4 BOQ sizes x 3 FQ sizes = 48 cells, all distinct.
func testSpaceSpec() sweep.Spec {
	return sweep.Spec{
		Workloads: []string{"mcf", "libq"},
		Budget:    2000,
		Axes: sweep.Axes{
			Preset:  []string{"dla", "r3"},
			BOQSize: []int{16, 64, 256, 1024},
			FQSize:  []int{16, 64, 256},
		},
	}
}

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	sp, err := NewSpace(testSpaceSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestSpaceMatchesExpand pins the core lazy-enumeration contract: cell i
// of the Space is cell i of the exhaustive sweep expansion — same key,
// same coordinates — so a sampled exploration and a full sweep agree on
// every cell identity.
func TestSpaceMatchesExpand(t *testing.T) {
	sp := newTestSpace(t)
	cells, err := testSpaceSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != int64(len(cells)) {
		t.Fatalf("space size %d, expand produced %d cells", sp.Size(), len(cells))
	}
	if sp.Size() != 48 {
		t.Fatalf("space size %d, want 48", sp.Size())
	}
	for i := int64(0); i < sp.Size(); i++ {
		c, err := sp.CellAt(i, testSpaceSpec().Budget)
		if err != nil {
			t.Fatal(err)
		}
		if c.Key != cells[i].Key {
			t.Fatalf("cell %d key mismatch:\n space  %s\n expand %s", i, c.Key, cells[i].Key)
		}
		if strings.Join(c.Coords, "|") != strings.Join(cells[i].Coords, "|") {
			t.Fatalf("cell %d coords mismatch: %v vs %v", i, c.Coords, cells[i].Coords)
		}
	}
}

// TestSpaceComposeRoundtrip walks every coordinate vector and asserts
// Compose inverts CellAt's mixed-radix decomposition.
func TestSpaceComposeRoundtrip(t *testing.T) {
	sp := newTestSpace(t)
	dims := sp.Dims()
	var next int64
	idx := make([]int64, len(dims))
	var walk func(d int)
	walk = func(d int) {
		if d == len(dims) {
			i, err := sp.Compose(idx)
			if err != nil {
				t.Fatal(err)
			}
			if i != next {
				t.Fatalf("Compose(%v) = %d, want %d", idx, i, next)
			}
			next++
			return
		}
		for v := int64(0); v < dims[d]; v++ {
			idx[d] = v
			walk(d + 1)
		}
	}
	walk(0)
	if next != sp.Size() {
		t.Fatalf("walked %d vectors, space has %d", next, sp.Size())
	}
}

func TestSpaceComposeRejects(t *testing.T) {
	sp := newTestSpace(t)
	if _, err := sp.Compose([]int64{0, 0}); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("short vector: %v", err)
	}
	bad := make([]int64, len(sp.Dims()))
	bad[0] = sp.Dims()[0]
	if _, err := sp.Compose(bad); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("out-of-range value: %v", err)
	}
	if _, err := sp.CellAt(sp.Size(), 2000); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("out-of-range index: %v", err)
	}
}

// TestSpaceCellAtBudget asserts re-keying an index at another budget
// changes only the budget suffix — halving's rising-budget ladder keys
// the same configuration at each rung.
func TestSpaceCellAtBudget(t *testing.T) {
	sp := newTestSpace(t)
	a, err := sp.CellAt(7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.CellAt(7, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(a.Key, "@2000") || !strings.HasSuffix(b.Key, "@16000") {
		t.Fatalf("budget suffixes wrong: %q vs %q", a.Key, b.Key)
	}
	if strings.TrimSuffix(a.Key, "@2000") != strings.TrimSuffix(b.Key, "@16000") {
		t.Fatalf("config identity changed with budget:\n %s\n %s", a.Key, b.Key)
	}
}

// TestSpaceBeyondSweepCap builds a space far over sweep.MaxCells — the
// whole point of lazy enumeration — and spot-checks indexed cells.
func TestSpaceBeyondSweepCap(t *testing.T) {
	spec := sweep.Spec{
		Workloads: []string{"mcf"},
		Budget:    2000,
		Axes: sweep.Axes{
			Preset:  []string{"dla", "r3"},
			BOQSize: manyInts(64, 1),
			FQSize:  manyInts(64, 1),
			VQSize:  manyInts(64, 1),
		},
	}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("expand accepted a grid over sweep.MaxCells")
	} else if !strings.Contains(err.Error(), "r3dla explore") {
		t.Fatalf("cap error does not point at explore: %v", err)
	}
	sp, err := NewSpace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * 64 * 64 * 64); sp.Size() != want {
		t.Fatalf("size %d, want %d", sp.Size(), want)
	}
	c, err := sp.CellAt(sp.Size()-1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workload != "mcf" || len(c.Coords) != 4 {
		t.Fatalf("last cell wrong: %+v", c)
	}
}

// manyInts returns n distinct ints starting at base*step spacing.
func manyInts(n, step int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = (i + 1) * step * 8
	}
	return out
}

// TestCellsDedupAcrossBatches asserts the cross-batch seen set keeps a
// canonical key from reaching the Runner twice in one exploration.
func TestCellsDedupAcrossBatches(t *testing.T) {
	sp := newTestSpace(t)
	seen := make(map[string]bool)
	a, err := sp.cells([]int64{0, 1, 2}, 2000, seen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.cells([]int64{2, 3, 0}, 2000, seen)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 || len(b) != 1 {
		t.Fatalf("batches sized %d/%d, want 3/1", len(a), len(b))
	}
	if b[0].Key != mustCell(t, sp, 3).Key {
		t.Fatalf("second batch kept %s, want index 3", b[0].Key)
	}
}

func mustCell(t *testing.T, sp *Space, i int64) sweep.Cell {
	t.Helper()
	c, err := sp.CellAt(i, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
