package dse

import (
	"encoding/json"
	"testing"
)

// FuzzExploreSpecRoundtrip asserts the explore-spec invariant: any spec
// that parses, normalizes and opens as a Space must survive marshal →
// unmarshal → normalize with the identical resolved search (strategy,
// sampler, seed, budgets) and the identical space — same size and, for a
// fixed seed, the same first sampler draw resolving to the same cell
// keys. Committed seeds live in testdata/fuzz/FuzzExploreSpecRoundtrip
// and run as ordinary cases under plain `go test`.
func FuzzExploreSpecRoundtrip(f *testing.F) {
	for _, seed := range []string{
		`{"space":{"workloads":["mcf"]},"seed":1}`,
		`{"space":{"workloads":["all"],"budget":3000},"strategy":"random","samples":16}`,
		`{"space":{"workloads":["mcf","libq"],"budget":2000,"axes":{"preset":["dla","r3"],"boq_size":[64,512]}},"strategy":"lhs","seed":7}`,
		`{"space":{"workloads":["mcf"],"budget":64000,"base":{"preset":"dla"},"axes":{"boq_size":[16,64,256,1024]}},"strategy":"halving","seed":3,"samples":8,"eta":4}`,
		`{"space":{"workloads":["spec"],"budget":5000,"base":{"preset":"r3"},"axes":{"fq_size":[16,64,256],"vq_size":[16,64]}},"strategy":"pareto","seed":11,"samples":32,"rounds":4}`,
		`{"space":{"workloads":["mcf"],"axes":{"cores":[{"model":"default"},{"model":"wide"}]}},"strategy":"pareto","sampler":"lhs","seed":2}`,
		`{"space":{"workloads":["crono"],"budget":100000,"base":{"preset":"dla"},"axes":{"version":[0,1,2,3,4,5]}},"strategy":"halving","seed":5,"min_budget":2000}`,
		`{"space":{"workloads":["mcf"],"budget":2000,"axes":{"t1":[true,false],"value_reuse":[true,false]},"base":{"preset":"r3"}},"seed":9,"samples":4}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := ParseSpec([]byte(data))
		if err != nil {
			t.Skip() // not an explore spec
		}
		norm, err := spec.normalize()
		if err != nil {
			return // invalid searches may reject; the invariant is for valid ones
		}
		sp, err := NewSpace(norm.Space)
		if err != nil {
			return // invalid spaces may reject
		}

		wire, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		spec2, err := ParseSpec(wire)
		if err != nil {
			t.Fatalf("marshaled spec does not re-parse: %s: %v", wire, err)
		}
		norm2, err := spec2.normalize()
		if err != nil {
			t.Fatalf("round-tripped spec no longer normalizes: %s: %v", wire, err)
		}
		if norm.Strategy != norm2.Strategy || norm.Sampler != norm2.Sampler ||
			norm.Seed != norm2.Seed || norm.Samples != norm2.Samples ||
			norm.Rounds != norm2.Rounds || norm.Eta != norm2.Eta ||
			norm.MinBudget != norm2.MinBudget {
			t.Fatalf("round trip changed the resolved search:\n before %+v\n after  %+v", norm, norm2)
		}
		sp2, err := NewSpace(norm2.Space)
		if err != nil {
			t.Fatalf("round-tripped space no longer opens: %s: %v", wire, err)
		}
		if sp.Size() != sp2.Size() {
			t.Fatalf("round trip changed the space: %d cells vs %d", sp.Size(), sp2.Size())
		}

		// The search's first batch must resolve identically: same sampler
		// stream, same cells.
		n := 8
		if int64(n) > sp.Size() {
			n = int(sp.Size())
		}
		s1, err := NewSampler(norm.Sampler, sp, norm.Seed)
		if err != nil {
			return // samplers reject what normalize didn't (nothing today)
		}
		s2, err := NewSampler(norm2.Sampler, sp2, norm2.Seed)
		if err != nil {
			t.Fatalf("round-tripped sampler rejected: %v", err)
		}
		d1, d2 := s1.Draw(n), s2.Draw(n)
		if len(d1) != len(d2) {
			t.Fatalf("round trip changed the draw: %v vs %v", d1, d2)
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("round trip changed the draw: %v vs %v", d1, d2)
			}
			c1, err1 := sp.CellAt(d1[i], norm.Space.Budget)
			c2, err2 := sp2.CellAt(d2[i], norm2.Space.Budget)
			if err1 != nil || err2 != nil {
				t.Fatalf("drawn cell failed to materialize: %v / %v", err1, err2)
			}
			if c1.Key != c2.Key {
				t.Fatalf("cell %d key changed:\n before %s\n after  %s", i, c1.Key, c2.Key)
			}
		}
	})
}
