package dse

import (
	"testing"
)

// drawAll drains s in batches of n and returns the concatenated stream.
func drawAll(s Sampler, n int) []int64 {
	var out []int64
	for {
		batch := s.Draw(n)
		if len(batch) == 0 {
			return out
		}
		out = append(out, batch...)
	}
}

func sameStream(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSamplerReproducible pins the seed contract for both samplers: the
// same (space, seed) pair yields the same draw stream, batch for batch;
// a different seed yields a different one. This is the root of the
// exploration byte-identity guarantee.
func TestSamplerReproducible(t *testing.T) {
	for _, name := range []string{SamplerRandom, SamplerLHS} {
		sp := newTestSpace(t)
		mk := func(seed int64) Sampler {
			s, err := NewSampler(name, sp, seed)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		a := drawAll(mk(42), 7)
		b := drawAll(mk(42), 7)
		if !sameStream(a, b) {
			t.Fatalf("%s: same seed, different streams:\n %v\n %v", name, a, b)
		}
		c := drawAll(mk(43), 7)
		if sameStream(a, c) {
			t.Fatalf("%s: seeds 42 and 43 drew identical streams", name)
		}
	}
}

// TestSamplerWithoutReplacement asserts the lifetime draw stream never
// repeats an index, stays in range, and (for the random sampler) covers
// the whole space before going dry.
func TestSamplerWithoutReplacement(t *testing.T) {
	for _, name := range []string{SamplerRandom, SamplerLHS} {
		sp := newTestSpace(t)
		s, err := NewSampler(name, sp, 7)
		if err != nil {
			t.Fatal(err)
		}
		stream := drawAll(s, 5)
		seen := map[int64]bool{}
		for _, i := range stream {
			if i < 0 || i >= sp.Size() {
				t.Fatalf("%s drew out-of-range index %d", name, i)
			}
			if seen[i] {
				t.Fatalf("%s drew index %d twice", name, i)
			}
			seen[i] = true
		}
		if name == SamplerRandom && int64(len(stream)) != sp.Size() {
			t.Fatalf("random sampler exhausted after %d of %d cells", len(stream), sp.Size())
		}
	}
}

// TestLHSStratification checks the Latin hypercube property on a space
// where one dimension has exactly n values (so no two samples of a block
// can collide): with Draw(n), every dimension's value v is hit between
// floor(n/k) and ceil(n/k) times.
func TestLHSStratification(t *testing.T) {
	sp := newTestSpace(t) // dims [2 (workload), 2 (preset), 4 (boq), 3 (fq)]
	dims := sp.Dims()
	n := 12 // one full stratification block; 12 % {2,4,3} == 0
	s, err := NewSampler(SamplerLHS, sp, 11)
	if err != nil {
		t.Fatal(err)
	}
	draw := s.Draw(n)
	if len(draw) != n {
		// Collisions are possible in principle; with 12 samples over 48
		// cells and independent permutations they indicate a broken
		// stratum map, not bad luck — the block must cover each (boq, fq)
		// stratum pair at most... keep the test strict and fail loudly.
		t.Fatalf("LHS block dropped samples: drew %d of %d", len(draw), n)
	}
	counts := make([]map[int64]int, len(dims))
	for d := range counts {
		counts[d] = map[int64]int{}
	}
	for _, i := range draw {
		// Decompose i back into per-dimension values (inverse of Compose).
		rest := i
		for d := len(dims) - 1; d >= 0; d-- {
			counts[d][rest%dims[d]]++
			rest /= dims[d]
		}
	}
	for d, k := range dims {
		lo, hi := int64(n)/k, (int64(n)+k-1)/k
		for v := int64(0); v < k; v++ {
			if c := int64(counts[d][v]); c < lo || c > hi {
				t.Fatalf("dim %d value %d hit %d times, want %d..%d (counts %v)", d, v, c, lo, hi, counts[d])
			}
		}
	}
}

func TestNewSamplerRejectsUnknown(t *testing.T) {
	if _, err := NewSampler("sobol", newTestSpace(t), 1); err == nil {
		t.Fatal("unknown sampler accepted")
	}
}
