package dse

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"r3dla/internal/exp"
	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// StreamLine is one NDJSON line of a POST /v1/explore response: a "cell"
// line per completed evaluation (in completion order; Done/Total are
// relative to the current search batch), then exactly one terminal line
// — "result" carrying the exploration report, or "error".
type StreamLine struct {
	Event   string         `json:"event"` // "cell", "result", "error"
	Done    int            `json:"done,omitempty"`
	Total   int            `json:"total,omitempty"`
	Cell    *sweep.Cell    `json:"cell,omitempty"`
	Run     *lab.RunResult `json:"run,omitempty"`
	Resumed bool           `json:"resumed,omitempty"`
	Result  *exp.Report    `json:"result,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// NewHandler returns the POST /v1/explore handler over l: the body is an
// exploration Spec (JSON), the response an NDJSON stream of completed
// cells followed by the exploration report. Validation failures are
// proper 400s before the stream commits to 200. Explorations are
// admitted through g exactly like runs and sweeps; the server journals
// nothing — cross-request reuse comes from the Lab's singleflight result
// cache instead.
func NewHandler(l *lab.Lab, g sweep.Gate) http.Handler {
	tiers := &sweep.TierRunners{Lab: l}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", lab.ErrInvalid, err))
			return
		}
		spec, err := ParseSpec(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Normalize and open the space up front so bad strategies, bad
		// axes and oversized budgets are 400s with field-level messages,
		// not mid-stream errors.
		spec, err = spec.normalize()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if _, err := NewSpace(spec.Space); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if g != nil {
			if max := g.MaxBudget(); max > 0 && spec.Space.Budget > max {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("%w: budget %d exceeds server cap %d", lab.ErrInvalid, spec.Space.Budget, max))
				return
			}
		}

		// Resolve the runners before the stream commits to 200: the base
		// runner follows the space's own fidelity (an all-analytic or
		// all-MC exploration runs entirely on an estimator); a ladder
		// exploration additionally gets the two estimator tiers, seeded by
		// the exploration seed. Resolution only builds calibrator handles —
		// no simulation happens until cells run.
		runner, err := tiers.Runner(spec.Space.Fidelity, spec.Space.Budget, uint64(spec.Seed))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var topts *Tiers
		if spec.Fidelity == FidelityLadder {
			analytic, aerr := tiers.Runner(sweep.TierAnalytic, spec.Space.Budget, uint64(spec.Seed))
			mc, merr := tiers.Runner(sweep.TierMC, spec.Space.Budget, uint64(spec.Seed))
			if aerr != nil || merr != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("%w: fidelity ladder tiers unavailable", lab.ErrInvalid))
				return
			}
			topts = &Tiers{Analytic: analytic, MC: mc}
		}

		var release func()
		if g != nil {
			var ok bool
			if release, ok = g.Admit(w, r); !ok {
				return
			}
			defer release()
		}

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		var mu sync.Mutex
		enc := json.NewEncoder(w)
		emit := func(line StreamLine) {
			mu.Lock()
			defer mu.Unlock()
			enc.Encode(line)
			if flusher != nil {
				flusher.Flush()
			}
		}

		res, err := Explore(r.Context(), runner, spec, Options{
			Progress: func(ev sweep.Event) {
				c := ev.Cell
				emit(StreamLine{
					Event: "cell", Done: ev.Done, Total: ev.Total,
					Cell: &c, Run: ev.Result, Resumed: ev.Resumed,
				})
			},
			Tiers: topts,
		})
		if g != nil {
			g.Observe(r.Context(), err)
		}
		if err != nil {
			emit(StreamLine{Event: "error", Error: err.Error()})
			return
		}
		emit(StreamLine{Event: "result", Result: res.Report()})
	})
}

// writeError mirrors the lab server's error body shape.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}
