package dse

import (
	"fmt"

	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// Space is a lazily-indexed design space: the symbolic axes of a sweep
// spec with cells constructed on demand from their enumeration index.
// Describing a 10^6-point space is free; only the cells a sampler draws
// are ever materialized. Dimension 0 is the workload, then each active
// axis in sweep field order — the same mixed-radix layout sweep.Expand
// walks, so a dse cell and the corresponding exhaustive-sweep cell are
// the same simulation with the same canonical key.
type Space struct {
	spec sweep.Spec
	enum *sweep.Enum
	dims []int64
}

// NewSpace validates spec (workloads, axes, duplicate values, overflow)
// and returns its lazy view. There is no sweep.MaxCells cap here — that
// cap exists because Expand materializes; a Space never does.
func NewSpace(spec sweep.Spec) (*Space, error) {
	e, err := spec.Enumerate()
	if err != nil {
		return nil, err
	}
	dims := []int64{int64(len(e.Workloads()))}
	for _, ax := range e.Axes() {
		dims = append(dims, int64(ax.Len()))
	}
	return &Space{spec: spec, enum: e, dims: dims}, nil
}

// Size is the total number of cells in the space.
func (s *Space) Size() int64 { return s.enum.Size() }

// Budget is the space's full-fidelity evaluation budget.
func (s *Space) Budget() uint64 { return s.spec.Budget }

// Dims lists the dimension sizes: workloads first, then each active axis
// in field order. The Latin hypercube sampler stratifies per dimension.
func (s *Space) Dims() []int64 { return append([]int64(nil), s.dims...) }

// CellAt materializes the cell at enumeration index i, keyed at budget.
func (s *Space) CellAt(i int64, budget uint64) (sweep.Cell, error) {
	return s.enum.CellAt(i, budget)
}

// Compose folds one value index per dimension (workload first, axes
// after, in Dims order) into the cell's enumeration index — the inverse
// of the decomposition CellAt performs.
func (s *Space) Compose(idx []int64) (int64, error) {
	if len(idx) != len(s.dims) {
		return 0, fmt.Errorf("%w: coordinate vector has %d dims, space has %d", lab.ErrInvalid, len(idx), len(s.dims))
	}
	var out int64
	for d, v := range idx {
		if v < 0 || v >= s.dims[d] {
			return 0, fmt.Errorf("%w: dim %d value %d outside 0..%d", lab.ErrInvalid, d, v, s.dims[d]-1)
		}
		out = out*s.dims[d] + v
	}
	return out, nil
}

// cells materializes a batch of drawn indices at one budget, collapsing
// indices whose resolved configurations alias to the same canonical key
// (first occurrence wins, as in sweep.Expand). Order is draw order — the
// deterministic backbone of the whole exploration. seen carries the
// dedup set across batches so a key never reaches the Runner twice from
// one exploration; pass nil for an independent batch.
func (s *Space) cells(indices []int64, budget uint64, seen map[string]bool) ([]sweep.Cell, error) {
	if seen == nil {
		seen = make(map[string]bool, len(indices))
	}
	cells := make([]sweep.Cell, 0, len(indices))
	for _, i := range indices {
		c, err := s.enum.CellAt(i, budget)
		if err != nil {
			return nil, err
		}
		if !seen[c.Key] {
			seen[c.Key] = true
			cells = append(cells, c)
		}
	}
	return cells, nil
}
