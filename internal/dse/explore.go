package dse

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"r3dla/internal/exp"
	"r3dla/internal/lab"
	"r3dla/internal/stats"
	"r3dla/internal/sweep"
)

// Options configure one exploration execution. They mirror sweep.Options
// because evaluation *is* the sweep engine: every batch a searcher
// submits goes through sweep.RunCells with these settings, so the
// journal accumulates cells from every round and a killed exploration
// resumes without repeating any completed simulation.
type Options struct {
	// Journal, when non-empty, checkpoints every completed cell (NDJSON,
	// keyed by the cell's canonical workload|configKey@budget identity —
	// halving rounds at different budgets journal as distinct cells).
	Journal string

	// Resume restores journaled cells before the first batch runs.
	// Requires Journal. Later batches of the same exploration always
	// consult the journal — that is what makes a crash mid-round
	// resumable at cell granularity, not round granularity.
	Resume bool

	// Progress receives one sweep.Event per completed cell (Done/Total
	// are batch-relative). May be called from multiple goroutines.
	Progress func(sweep.Event)

	// Tiers supplies the estimator runners a fidelity-ladder exploration
	// climbs before touching the cycle-accurate runner. Required when
	// Spec.Fidelity is FidelityLadder, ignored otherwise.
	Tiers *Tiers
}

// Tiers bundles the lower-fidelity runners of a ladder exploration. The
// cycle-accurate tier is the Runner passed to Explore itself.
type Tiers struct {
	Analytic sweep.Runner
	MC       sweep.Runner
}

// Round summarizes one searcher iteration. Tier records which runner
// evaluated the round explicitly (empty means cycle-accurate, matching
// sweep.TierCycle) — ladder rungs are (runner, budget) pairs, and
// nothing may infer the runner from the budget.
type Round struct {
	Round   int     `json:"round"`
	Tier    string  `json:"tier,omitempty"`
	Budget  uint64  `json:"budget"`
	Cells   int     `json:"cells"`     // fresh cells evaluated this round
	Kept    int     `json:"kept"`      // candidates promoted / frontier size
	BestIPC float64 `json:"best_ipc"`  // best IPC seen by this round's rank
	BestKey string  `json:"best_cell"` // human label of that cell (workload + coords)
}

// TierError is one estimator tier's accuracy against the cycle-accurate
// ground truth, measured over the ladder finalists.
type TierError struct {
	Tier  string  `json:"tier"`
	Cells int     `json:"cells"`
	MAPE  float64 `json:"mape"` // mean absolute percentage error on IPC, as a fraction
}

// Finalist pairs one ladder finalist's cycle-accurate IPC with the
// lower-tier estimates that promoted it — the estimator-error audit
// trail every promoted cell carries.
type Finalist struct {
	Workload    string   `json:"workload"`
	Coords      []string `json:"coords,omitempty"`
	Key         string   `json:"key"`
	AnalyticIPC float64  `json:"analytic_ipc"`
	MCIPC       float64  `json:"mc_ipc"`
	CycleIPC    float64  `json:"cycle_ipc"`
}

// Result is a completed exploration. Everything in it is a pure function
// of (spec, seed) — Evaluated holds every cell in deterministic
// evaluation order (round by round, draw order within a round), so the
// rendered report is byte-identical for any worker count, any Runner,
// and any interruption history.
type Result struct {
	Spec      Spec               `json:"spec"`
	SpaceSize int64              `json:"space_size"`
	Rounds    []Round            `json:"rounds"`
	Evaluated []sweep.CellResult `json:"evaluated"`
	Survivors []sweep.CellResult `json:"survivors,omitempty"` // halving: final top candidates
	Frontier  []sweep.CellResult `json:"frontier,omitempty"`  // non-dominated IPC-vs-energy set
	Resumed   int                `json:"resumed"`             // cells restored from the journal

	// TierErrors and Finalists are filled by ladder explorations: the
	// per-tier estimator error against cycle-accurate ground truth, and
	// each finalist's estimates alongside its true IPC.
	TierErrors []TierError `json:"tier_errors,omitempty"`
	Finalists  []Finalist  `json:"finalists,omitempty"`
}

// explorer carries one exploration's state across rounds.
type explorer struct {
	spec    Spec
	space   *Space
	sampler Sampler
	runner  sweep.Runner
	opts    Options
	res     *Result
	seen    map[string]bool // canonical keys already submitted
	batches int
}

// Explore runs one exploration through r: the spec is validated and
// defaulted, the space opened lazily, and the selected strategy draws
// and evaluates batches until it converges. r is any sweep.Runner — the
// in-process Lab or a fleet pool — and because batch composition depends
// only on the seed and on deterministic results, output is byte-stable
// whichever executes the cells.
func Explore(ctx context.Context, r sweep.Runner, spec Spec, opts Options) (*Result, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	if opts.Resume && opts.Journal == "" {
		return nil, fmt.Errorf("%w: resume requires a journal path", lab.ErrInvalid)
	}
	space, err := NewSpace(spec.Space)
	if err != nil {
		return nil, err
	}
	smp, err := NewSampler(spec.Sampler, space, spec.Seed)
	if err != nil {
		return nil, err
	}
	e := &explorer{
		spec: spec, space: space, sampler: smp, runner: r, opts: opts,
		res:  &Result{Spec: spec, SpaceSize: space.Size()},
		seen: make(map[string]bool),
	}
	switch {
	case spec.Fidelity == FidelityLadder:
		err = e.runLadder(ctx)
	case spec.Strategy == StrategyHalving:
		err = e.runHalving(ctx)
	case spec.Strategy == StrategyPareto:
		err = e.runPareto(ctx)
	default: // random, lhs
		err = e.runOneShot(ctx)
	}
	if err != nil {
		return nil, err
	}
	e.res.Frontier = frontier(e.fullBudgetEvals())
	return e.res, nil
}

// fullBudgetEvals filters Evaluated down to full-fidelity results — the
// only ones comparable on the objective plane (halving's probe rounds
// ran cheaper, noisier simulations; ladder rungs ran estimators).
func (e *explorer) fullBudgetEvals() []sweep.CellResult {
	return e.res.fullEvals()
}

// eval submits one batch through the cycle-accurate runner (or whichever
// runner the caller paired with Spec.Space.Fidelity).
func (e *explorer) eval(ctx context.Context, cells []sweep.Cell, budget uint64) ([]sweep.CellResult, error) {
	return e.evalTier(ctx, e.runner, e.spec.Space.Fidelity, cells, budget)
}

// evalTier submits one batch through the sweep engine on an explicit
// (runner, fidelity) pair and folds the results into the running
// exploration. The fidelity tags the journal keys and the CellResult
// provenance; the runner must actually be that tier — the engine cannot
// check it.
func (e *explorer) evalTier(ctx context.Context, r sweep.Runner, fidelity string, cells []sweep.Cell, budget uint64) ([]sweep.CellResult, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	bspec := e.spec.Space
	bspec.Budget = budget
	bspec.Fidelity = fidelity
	// The first batch resumes only on request; every later batch of this
	// exploration consults the journal unconditionally — cells completed
	// before a crash restore no matter which round they belonged to.
	resume := e.opts.Journal != "" && (e.opts.Resume || e.batches > 0)
	e.batches++
	sres, err := sweep.RunCells(ctx, r, bspec, cells, sweep.Options{
		Journal:  e.opts.Journal,
		Resume:   resume,
		Progress: e.opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	e.res.Resumed += sres.Resumed
	e.res.Evaluated = append(e.res.Evaluated, sres.Cells...)
	return sres.Cells, nil
}

// runOneShot evaluates a single sampler draw at the full budget.
func (e *explorer) runOneShot(ctx context.Context) error {
	draw := e.sampler.Draw(e.spec.Samples)
	if len(draw) == 0 {
		return fmt.Errorf("%w: empty space", lab.ErrInvalid)
	}
	cells, err := e.space.cells(draw, e.spec.Space.Budget, e.seen)
	if err != nil {
		return err
	}
	batch, err := e.eval(ctx, cells, e.spec.Space.Budget)
	if err != nil {
		return err
	}
	best := bestByIPC(batch)
	e.res.Rounds = append(e.res.Rounds, Round{
		Round: 0, Budget: e.spec.Space.Budget, Cells: len(batch),
		Kept: len(batch), BestIPC: best.Result.IPC, BestKey: cellLabel(best.Cell),
	})
	return nil
}

// runPareto accumulates sampler draws round by round, maintaining the
// non-dominated archive over everything evaluated so far.
func (e *explorer) runPareto(ctx context.Context) error {
	full := e.spec.Space.Budget
	for round := 0; round < e.spec.Rounds; round++ {
		draw := e.sampler.Draw(e.spec.Samples)
		if len(draw) == 0 {
			break // space exhausted
		}
		cells, err := e.space.cells(draw, full, e.seen)
		if err != nil {
			return err
		}
		if _, err := e.eval(ctx, cells, full); err != nil {
			return err
		}
		front := frontier(e.res.Evaluated)
		r := Round{Round: round, Budget: full, Cells: len(cells), Kept: len(front)}
		if len(front) > 0 {
			r.BestIPC, r.BestKey = front[0].Result.IPC, cellLabel(front[0].Cell)
		}
		e.res.Rounds = append(e.res.Rounds, r)
	}
	if len(e.res.Evaluated) == 0 {
		return fmt.Errorf("%w: empty space", lab.ErrInvalid)
	}
	return nil
}

// runHalving is successive halving on IPC: a broad candidate draw probes
// at MinBudget, each round keeps the top ceil(n/eta) and multiplies the
// budget by eta (capped at the full budget), and the last round — at
// full fidelity — selects the survivors. Cheap early rounds are noisy
// estimators of the full-budget objective; rising budgets spend
// simulation time only on candidates that keep earning it.
func (e *explorer) runHalving(ctx context.Context) error {
	cand := e.sampler.Draw(e.spec.Samples)
	if len(cand) == 0 {
		return fmt.Errorf("%w: empty space", lab.ErrInvalid)
	}
	full := e.spec.Space.Budget
	// The budget ladder is derived by division from the full budget —
	// MinBudget, then every full/eta^j above it, ending exactly at full —
	// so the final round always runs at full fidelity and never lands one
	// rounding error short of it (which would cost a near-duplicate round).
	rungs := []uint64{e.spec.MinBudget}
	var above []uint64
	for b := full; b > e.spec.MinBudget; b /= uint64(e.spec.Eta) {
		above = append(above, b)
	}
	for i := len(above) - 1; i >= 0; i-- {
		rungs = append(rungs, above[i])
	}
	for round := 0; ; round++ {
		budget := rungs[round]
		cells, err := e.space.cells(cand, budget, e.seen)
		if err != nil {
			return err
		}
		batch, err := e.eval(ctx, cells, budget)
		if err != nil {
			return err
		}
		byKey := make(map[string]*lab.RunResult, len(batch))
		for _, cr := range batch {
			byKey[cr.Key] = cr.Result
		}

		// Rank the candidate pool by this round's IPC, deduping indices
		// that alias to one canonical configuration (first index wins).
		// Ties break on the enumeration index, so ranking is total and
		// deterministic.
		type scored struct {
			idx  int64
			key  string
			cell sweep.Cell
			ipc  float64
		}
		var ranked []scored
		seenKey := make(map[string]bool, len(cand))
		for _, i := range cand {
			c, err := e.space.CellAt(i, budget)
			if err != nil {
				return err
			}
			if seenKey[c.Key] {
				continue
			}
			seenKey[c.Key] = true
			r, ok := byKey[c.Key]
			if !ok {
				return fmt.Errorf("dse: internal: no result for cell %s", c.Key)
			}
			ranked = append(ranked, scored{idx: i, key: c.Key, cell: c, ipc: r.IPC})
		}
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].ipc != ranked[j].ipc {
				return ranked[i].ipc > ranked[j].ipc
			}
			return ranked[i].idx < ranked[j].idx
		})

		keep := (len(ranked) + e.spec.Eta - 1) / e.spec.Eta
		if keep < 1 {
			keep = 1
		}
		if keep > len(ranked) {
			keep = len(ranked)
		}
		e.res.Rounds = append(e.res.Rounds, Round{
			Round: round, Budget: budget, Cells: len(batch), Kept: keep,
			BestIPC: ranked[0].ipc, BestKey: cellLabel(ranked[0].cell),
		})

		if round == len(rungs)-1 {
			// Full fidelity reached: the top of this ranking survives.
			for _, s := range ranked[:keep] {
				e.res.Survivors = append(e.res.Survivors, sweep.CellResult{Cell: s.cell, Result: byKey[s.key]})
			}
			return nil
		}
		cand = cand[:0]
		for _, s := range ranked[:keep] {
			cand = append(cand, s.idx)
		}
	}
}

// Ladder rung sizing: the analytic pass scores at most ladderMaxScore
// cells (beyond that a seeded sampler draw stands in for exhaustion),
// submitted to the estimator in ladderChunk batches so a huge space
// never materializes one giant cell slice.
const (
	ladderMaxScore = 1 << 20
	ladderChunk    = 4096
)

// runLadder climbs the fidelity ladder: the whole space is scored by the
// analytic tier at the full budget, the top fraction is promoted to the
// Monte-Carlo tier, and only those finalists run cycle-accurately. Rungs
// are (runner, budget) pairs — every rung evaluates at the full budget;
// what rises is fidelity, not cycles. The analytic rung is pure math
// over one calibration, cheap and deterministic to recompute, so it is
// neither journaled nor folded into Evaluated; the MC and cycle rungs
// checkpoint under tier-tagged journal keys, so one journal resumes the
// whole ladder without cross-tier collisions.
func (e *explorer) runLadder(ctx context.Context) error {
	t := e.opts.Tiers
	if t == nil || t.Analytic == nil || t.MC == nil {
		return fmt.Errorf("%w: fidelity ladder needs analytic and Monte-Carlo runners (Options.Tiers)", lab.ErrInvalid)
	}
	full := e.spec.Space.Budget

	// Rung 0 — analytic: score everything (or a seeded draw when the
	// space exceeds ladderMaxScore).
	var indices []int64
	if n := e.space.Size(); n <= ladderMaxScore {
		indices = make([]int64, n)
		for i := range indices {
			indices[i] = int64(i)
		}
	} else {
		indices = e.sampler.Draw(ladderMaxScore)
	}
	if len(indices) == 0 {
		return fmt.Errorf("%w: empty space", lab.ErrInvalid)
	}
	aspec := e.spec.Space
	aspec.Fidelity = sweep.TierAnalytic
	scoreSeen := make(map[string]bool, len(indices))
	var scored []sweep.CellResult
	for start := 0; start < len(indices); start += ladderChunk {
		end := start + ladderChunk
		if end > len(indices) {
			end = len(indices)
		}
		cells, err := e.space.cells(indices[start:end], full, scoreSeen)
		if err != nil {
			return err
		}
		if len(cells) == 0 {
			continue
		}
		sres, err := sweep.RunCells(ctx, t.Analytic, aspec, cells, sweep.Options{})
		if err != nil {
			return err
		}
		scored = append(scored, sres.Cells...)
	}
	rankByIPC(scored)
	nMC := promoteCount(len(scored), e.spec.Eta)
	if nMC > e.spec.Samples {
		nMC = e.spec.Samples
	}
	promoted := scored[:nMC]
	if e.spec.Strategy == StrategyPareto {
		promoted = paretoPromote(scored, nMC)
	}
	e.res.Rounds = append(e.res.Rounds, Round{
		Round: 0, Tier: sweep.TierAnalytic, Budget: full,
		Cells: len(scored), Kept: len(promoted),
		BestIPC: scored[0].Result.IPC, BestKey: cellLabel(scored[0].Cell),
	})
	analyticIPC := make(map[string]float64, len(promoted))
	for _, c := range promoted {
		analyticIPC[c.Key] = c.Result.IPC
	}

	// Rung 1 — Monte-Carlo: the promoted cells re-run through the
	// stochastic queue model, journaled and counted as real evaluations.
	mcRes, err := e.evalTier(ctx, t.MC, sweep.TierMC, cellsOf(promoted), full)
	if err != nil {
		return err
	}
	mcRes = append([]sweep.CellResult(nil), mcRes...)
	rankByIPC(mcRes)
	nCycle := promoteCount(len(mcRes), e.spec.Eta)
	finalists := mcRes[:nCycle]
	if e.spec.Strategy == StrategyPareto {
		finalists = paretoPromote(mcRes, nCycle)
	}
	e.res.Rounds = append(e.res.Rounds, Round{
		Round: 1, Tier: sweep.TierMC, Budget: full,
		Cells: len(mcRes), Kept: len(finalists),
		BestIPC: mcRes[0].Result.IPC, BestKey: cellLabel(mcRes[0].Cell),
	})
	mcIPC := make(map[string]float64, len(finalists))
	for _, c := range finalists {
		mcIPC[c.Key] = c.Result.IPC
	}

	// Rung 2 — cycle-accurate ground truth for the finalists only.
	cycRes, err := e.evalTier(ctx, e.runner, sweep.TierCycle, cellsOf(finalists), full)
	if err != nil {
		return err
	}
	cycRes = append([]sweep.CellResult(nil), cycRes...)
	rankByIPC(cycRes)
	e.res.Rounds = append(e.res.Rounds, Round{
		Round: 2, Tier: sweep.TierCycle, Budget: full,
		Cells: len(cycRes), Kept: len(cycRes),
		BestIPC: cycRes[0].Result.IPC, BestKey: cellLabel(cycRes[0].Cell),
	})
	if e.spec.Strategy == StrategyHalving {
		e.res.Survivors = cycRes
	}

	// Every finalist carries its lower-tier estimates; the per-tier MAPE
	// against the cycle-accurate IPC is the ladder's error report.
	var aerr, merr float64
	for _, c := range cycRes {
		f := Finalist{
			Workload: c.Workload, Coords: c.Coords, Key: c.Key,
			AnalyticIPC: analyticIPC[c.Key], MCIPC: mcIPC[c.Key], CycleIPC: c.Result.IPC,
		}
		e.res.Finalists = append(e.res.Finalists, f)
		if c.Result.IPC > 0 {
			aerr += abs(f.AnalyticIPC-f.CycleIPC) / f.CycleIPC
			merr += abs(f.MCIPC-f.CycleIPC) / f.CycleIPC
		}
	}
	if n := len(cycRes); n > 0 {
		e.res.TierErrors = []TierError{
			{Tier: sweep.TierAnalytic, Cells: n, MAPE: aerr / float64(n)},
			{Tier: sweep.TierMC, Cells: n, MAPE: merr / float64(n)},
		}
	}
	return nil
}

// rankByIPC sorts cell results by IPC descending, breaking ties on the
// enumeration index and then the canonical key, so every ladder ranking
// is total and deterministic.
func rankByIPC(cells []sweep.CellResult) {
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Result.IPC != cells[j].Result.IPC {
			return cells[i].Result.IPC > cells[j].Result.IPC
		}
		if cells[i].Index != cells[j].Index {
			return cells[i].Index < cells[j].Index
		}
		return cells[i].Key < cells[j].Key
	})
}

// promoteCount is the ladder's keep rule: ceil(n/eta), at least one, at
// most n.
func promoteCount(n, eta int) int {
	k := (n + eta - 1) / eta
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// paretoPromote promotes up to n cells from an IPC-ranked list, the
// IPC-vs-energy non-dominated set first (found by a linear sweep over
// the ranking — O(n), unlike the archive frontier), then the best
// remaining IPC ranks. Pareto ladders must not starve the frontier's
// low-power end just because its IPC is mid-pack.
func paretoPromote(ranked []sweep.CellResult, n int) []sweep.CellResult {
	if n >= len(ranked) {
		return ranked
	}
	out := make([]sweep.CellResult, 0, n)
	taken := make(map[string]bool, n)
	minEnergy := 0.0
	for i, c := range ranked {
		if len(out) == n {
			break
		}
		if i == 0 || c.Result.EnergyJ < minEnergy {
			minEnergy = c.Result.EnergyJ
			out = append(out, c)
			taken[c.Key] = true
		}
	}
	for _, c := range ranked {
		if len(out) == n {
			break
		}
		if !taken[c.Key] {
			out = append(out, c)
			taken[c.Key] = true
		}
	}
	rankByIPC(out)
	return out
}

// cellsOf strips results back to bare cells for the next rung.
func cellsOf(cells []sweep.CellResult) []sweep.Cell {
	out := make([]sweep.Cell, len(cells))
	for i, c := range cells {
		out[i] = c.Cell
	}
	return out
}

// abs avoids importing math for one call site.
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// tierLabel names a tier in report tables (the cycle tier's canonical
// name is the empty string, which would render as a blank cell).
func tierLabel(t string) string {
	if t == sweep.TierCycle {
		return "cycle"
	}
	return t
}

// cellLabel is the compact human name of a cell: workload plus axis
// value labels (canonical keys dump whole config specs — fine as
// identities, unreadable in a trajectory table).
func cellLabel(c sweep.Cell) string {
	if len(c.Coords) == 0 {
		return c.Workload
	}
	return c.Workload + " " + strings.Join(c.Coords, " ")
}

// bestByIPC picks the best cell of a batch (IPC descending, key
// ascending on ties).
func bestByIPC(cells []sweep.CellResult) sweep.CellResult {
	best := cells[0]
	for _, c := range cells[1:] {
		if c.Result.IPC > best.Result.IPC ||
			(c.Result.IPC == best.Result.IPC && c.Key < best.Key) {
			best = c
		}
	}
	return best
}

// ------------------------------------------------------------- reporting

// maxTopCells bounds the "top cells by IPC" table.
const maxTopCells = 16

// Report renders the exploration as an experiment-style report: a
// summary header, the per-round trajectory, the survivor set (halving),
// the IPC-vs-energy Pareto frontier, a top-cells table and an objective
// summary. Like the sweep report it is a pure function of the result,
// byte-identical however the cells were computed.
func (r *Result) Report() *exp.Report {
	axes := r.Spec.Space.AxisNames()

	title := fmt.Sprintf("explore: %s over a %d-cell space, %d evaluated (seed %d)",
		r.Spec.Strategy, r.SpaceSize, len(r.Evaluated), r.Spec.Seed)
	summary := &stats.Table{
		Title: title,
		// No "resumed" column: the report is byte-identical for resumed and
		// uninterrupted runs, and a resume count would (correctly) differ.
		Header: []string{"strategy", "sampler", "seed", "space_cells", "evaluated", "rounds", "survivors", "frontier"},
	}
	summary.AddRow(r.Spec.Strategy, r.Spec.Sampler, fmt.Sprintf("%d", r.Spec.Seed),
		fmt.Sprintf("%d", r.SpaceSize), fmt.Sprintf("%d", len(r.Evaluated)),
		fmt.Sprintf("%d", len(r.Rounds)),
		fmt.Sprintf("%d", len(r.Survivors)), fmt.Sprintf("%d", len(r.Frontier)))

	rep := exp.NewReport(summary)
	rep.ID = "explore"
	rep.Title = title

	if len(r.Rounds) > 0 {
		// The tier column appears only when some round ran off the cycle
		// tier, so pre-ladder reports stay byte-identical.
		tiered := false
		for _, rd := range r.Rounds {
			if rd.Tier != sweep.TierCycle {
				tiered = true
			}
		}
		t := &stats.Table{Title: "search trajectory (one row per round)"}
		if tiered {
			t.Header = []string{"round", "tier", "budget", "cells", "kept", "best_ipc", "best_cell"}
		} else {
			t.Header = []string{"round", "budget", "cells", "kept", "best_ipc", "best_cell"}
		}
		for _, rd := range r.Rounds {
			row := []string{fmt.Sprintf("%d", rd.Round)}
			if tiered {
				row = append(row, tierLabel(rd.Tier))
			}
			row = append(row, fmt.Sprintf("%d", rd.Budget),
				fmt.Sprintf("%d", rd.Cells), fmt.Sprintf("%d", rd.Kept),
				fmt.Sprintf("%.4f", rd.BestIPC), rd.BestKey)
			t.AddRow(row...)
		}
		rep.Add(t)
	}

	if len(r.TierErrors) > 0 {
		t := &stats.Table{
			Title:  "estimator error vs cycle-accurate ground truth (over ladder finalists)",
			Header: []string{"tier", "cells", "mape_pct"},
		}
		for _, te := range r.TierErrors {
			t.AddRow(tierLabel(te.Tier), fmt.Sprintf("%d", te.Cells), fmt.Sprintf("%.2f", 100*te.MAPE))
		}
		rep.Add(t)
	}

	if len(r.Finalists) > 0 {
		t := &stats.Table{}
		t.Title = "ladder finalists: lower-tier estimates vs cycle-accurate IPC"
		t.Header = append(append([]string{"workload"}, axes...),
			"analytic_ipc", "mc_ipc", "cycle_ipc")
		for _, f := range r.Finalists {
			row := append([]string{f.Workload}, f.Coords...)
			row = append(row,
				fmt.Sprintf("%.4f", f.AnalyticIPC),
				fmt.Sprintf("%.4f", f.MCIPC),
				fmt.Sprintf("%.4f", f.CycleIPC))
			t.AddRow(row...)
		}
		rep.Add(t)
	}

	cellTable := func(title string, cells []sweep.CellResult) {
		if len(cells) == 0 {
			return
		}
		t := &stats.Table{Title: title}
		t.Header = append(append([]string{"workload"}, axes...),
			"ipc", "energy_j", "power_w", "cycles")
		for _, c := range cells {
			row := append([]string{c.Workload}, c.Coords...)
			row = append(row,
				fmt.Sprintf("%.4f", c.Result.IPC),
				fmt.Sprintf("%.3e", c.Result.EnergyJ),
				fmt.Sprintf("%.3f", c.Result.PowerW),
				fmt.Sprintf("%d", c.Result.Cycles),
			)
			t.AddRow(row...)
		}
		rep.Add(t)
	}

	cellTable(fmt.Sprintf("survivors (successive halving, final budget %d)", r.Spec.Space.Budget), r.Survivors)
	cellTable("IPC-vs-energy Pareto frontier (non-dominated, IPC descending)", r.Frontier)

	// Top cells by IPC over the full-budget evaluations, for strategies
	// whose headline is not already a ranked table.
	if len(r.Survivors) == 0 {
		full := r.fullEvals()
		ranked := append([]sweep.CellResult(nil), full...)
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].Result.IPC != ranked[j].Result.IPC {
				return ranked[i].Result.IPC > ranked[j].Result.IPC
			}
			return ranked[i].Key < ranked[j].Key
		})
		if len(ranked) > maxTopCells {
			ranked = ranked[:maxTopCells]
		}
		cellTable(fmt.Sprintf("top %d cells by IPC", len(ranked)), ranked)
	}

	if full := r.fullEvals(); len(full) > 0 {
		t := &stats.Table{
			Title:  "objective summary over full-budget evaluations",
			Header: []string{"objective", "n", "geomean", "mean", "min", "max"},
		}
		var ipcs, energies []float64
		for _, c := range full {
			ipcs = append(ipcs, c.Result.IPC)
			energies = append(energies, c.Result.EnergyJ)
		}
		si, se := stats.Summarize(ipcs), stats.Summarize(energies)
		t.AddRow("ipc", fmt.Sprintf("%d", si.N), fmt.Sprintf("%.4f", si.Geomean),
			fmt.Sprintf("%.4f", si.Mean), fmt.Sprintf("%.4f", si.Min), fmt.Sprintf("%.4f", si.Max))
		t.AddRow("energy_j", fmt.Sprintf("%d", se.N), fmt.Sprintf("%.3e", se.Geomean),
			fmt.Sprintf("%.3e", se.Mean), fmt.Sprintf("%.3e", se.Min), fmt.Sprintf("%.3e", se.Max))
		rep.Add(t)
	}
	return rep
}

// fullEvals filters Evaluated down to the exploration's target tier at
// the full budget. Provenance comes from CellResult.Tier, never from the
// budget: budget 0 used to mean "everything is full fidelity", which
// silently swept estimator results into the objective tables once
// lower tiers existed. The target tier is the space's own fidelity
// (cycle for ladder explorations — the ladder's estimator rungs are
// intermediate, not comparable ground truth).
func (r *Result) fullEvals() []sweep.CellResult {
	target, err := sweep.TierOf(r.Spec.Space.Fidelity)
	if err != nil {
		target = sweep.TierCycle
	}
	var out []sweep.CellResult
	for _, c := range r.Evaluated {
		if c.Tier != target {
			continue
		}
		if r.Spec.Space.Budget != 0 && c.Result.Budget != r.Spec.Space.Budget {
			continue
		}
		out = append(out, c)
	}
	return out
}
