package dse

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"r3dla/internal/exp"
	"r3dla/internal/lab"
	"r3dla/internal/stats"
	"r3dla/internal/sweep"
)

// Options configure one exploration execution. They mirror sweep.Options
// because evaluation *is* the sweep engine: every batch a searcher
// submits goes through sweep.RunCells with these settings, so the
// journal accumulates cells from every round and a killed exploration
// resumes without repeating any completed simulation.
type Options struct {
	// Journal, when non-empty, checkpoints every completed cell (NDJSON,
	// keyed by the cell's canonical workload|configKey@budget identity —
	// halving rounds at different budgets journal as distinct cells).
	Journal string

	// Resume restores journaled cells before the first batch runs.
	// Requires Journal. Later batches of the same exploration always
	// consult the journal — that is what makes a crash mid-round
	// resumable at cell granularity, not round granularity.
	Resume bool

	// Progress receives one sweep.Event per completed cell (Done/Total
	// are batch-relative). May be called from multiple goroutines.
	Progress func(sweep.Event)
}

// Round summarizes one searcher iteration.
type Round struct {
	Round   int     `json:"round"`
	Budget  uint64  `json:"budget"`
	Cells   int     `json:"cells"`     // fresh cells evaluated this round
	Kept    int     `json:"kept"`      // candidates promoted / frontier size
	BestIPC float64 `json:"best_ipc"`  // best IPC seen by this round's rank
	BestKey string  `json:"best_cell"` // human label of that cell (workload + coords)
}

// Result is a completed exploration. Everything in it is a pure function
// of (spec, seed) — Evaluated holds every cell in deterministic
// evaluation order (round by round, draw order within a round), so the
// rendered report is byte-identical for any worker count, any Runner,
// and any interruption history.
type Result struct {
	Spec      Spec               `json:"spec"`
	SpaceSize int64              `json:"space_size"`
	Rounds    []Round            `json:"rounds"`
	Evaluated []sweep.CellResult `json:"evaluated"`
	Survivors []sweep.CellResult `json:"survivors,omitempty"` // halving: final top candidates
	Frontier  []sweep.CellResult `json:"frontier,omitempty"`  // non-dominated IPC-vs-energy set
	Resumed   int                `json:"resumed"`             // cells restored from the journal
}

// explorer carries one exploration's state across rounds.
type explorer struct {
	spec    Spec
	space   *Space
	sampler Sampler
	runner  sweep.Runner
	opts    Options
	res     *Result
	seen    map[string]bool // canonical keys already submitted
	batches int
}

// Explore runs one exploration through r: the spec is validated and
// defaulted, the space opened lazily, and the selected strategy draws
// and evaluates batches until it converges. r is any sweep.Runner — the
// in-process Lab or a fleet pool — and because batch composition depends
// only on the seed and on deterministic results, output is byte-stable
// whichever executes the cells.
func Explore(ctx context.Context, r sweep.Runner, spec Spec, opts Options) (*Result, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	if opts.Resume && opts.Journal == "" {
		return nil, fmt.Errorf("%w: resume requires a journal path", lab.ErrInvalid)
	}
	space, err := NewSpace(spec.Space)
	if err != nil {
		return nil, err
	}
	smp, err := NewSampler(spec.Sampler, space, spec.Seed)
	if err != nil {
		return nil, err
	}
	e := &explorer{
		spec: spec, space: space, sampler: smp, runner: r, opts: opts,
		res:  &Result{Spec: spec, SpaceSize: space.Size()},
		seen: make(map[string]bool),
	}
	switch spec.Strategy {
	case StrategyHalving:
		err = e.runHalving(ctx)
	case StrategyPareto:
		err = e.runPareto(ctx)
	default: // random, lhs
		err = e.runOneShot(ctx)
	}
	if err != nil {
		return nil, err
	}
	e.res.Frontier = frontier(e.fullBudgetEvals())
	return e.res, nil
}

// fullBudgetEvals filters Evaluated down to full-fidelity results — the
// only ones comparable on the objective plane (halving's probe rounds
// ran cheaper, noisier simulations).
func (e *explorer) fullBudgetEvals() []sweep.CellResult {
	if e.spec.Space.Budget == 0 {
		return e.res.Evaluated // single-budget strategies at the runner default
	}
	var out []sweep.CellResult
	for _, c := range e.res.Evaluated {
		if c.Result.Budget == e.spec.Space.Budget {
			out = append(out, c)
		}
	}
	return out
}

// eval submits one batch through the sweep engine and folds the results
// into the running exploration.
func (e *explorer) eval(ctx context.Context, cells []sweep.Cell, budget uint64) ([]sweep.CellResult, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	bspec := e.spec.Space
	bspec.Budget = budget
	// The first batch resumes only on request; every later batch of this
	// exploration consults the journal unconditionally — cells completed
	// before a crash restore no matter which round they belonged to.
	resume := e.opts.Journal != "" && (e.opts.Resume || e.batches > 0)
	e.batches++
	sres, err := sweep.RunCells(ctx, e.runner, bspec, cells, sweep.Options{
		Journal:  e.opts.Journal,
		Resume:   resume,
		Progress: e.opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	e.res.Resumed += sres.Resumed
	e.res.Evaluated = append(e.res.Evaluated, sres.Cells...)
	return sres.Cells, nil
}

// runOneShot evaluates a single sampler draw at the full budget.
func (e *explorer) runOneShot(ctx context.Context) error {
	draw := e.sampler.Draw(e.spec.Samples)
	if len(draw) == 0 {
		return fmt.Errorf("%w: empty space", lab.ErrInvalid)
	}
	cells, err := e.space.cells(draw, e.spec.Space.Budget, e.seen)
	if err != nil {
		return err
	}
	batch, err := e.eval(ctx, cells, e.spec.Space.Budget)
	if err != nil {
		return err
	}
	best := bestByIPC(batch)
	e.res.Rounds = append(e.res.Rounds, Round{
		Round: 0, Budget: e.spec.Space.Budget, Cells: len(batch),
		Kept: len(batch), BestIPC: best.Result.IPC, BestKey: cellLabel(best.Cell),
	})
	return nil
}

// runPareto accumulates sampler draws round by round, maintaining the
// non-dominated archive over everything evaluated so far.
func (e *explorer) runPareto(ctx context.Context) error {
	full := e.spec.Space.Budget
	for round := 0; round < e.spec.Rounds; round++ {
		draw := e.sampler.Draw(e.spec.Samples)
		if len(draw) == 0 {
			break // space exhausted
		}
		cells, err := e.space.cells(draw, full, e.seen)
		if err != nil {
			return err
		}
		if _, err := e.eval(ctx, cells, full); err != nil {
			return err
		}
		front := frontier(e.res.Evaluated)
		r := Round{Round: round, Budget: full, Cells: len(cells), Kept: len(front)}
		if len(front) > 0 {
			r.BestIPC, r.BestKey = front[0].Result.IPC, cellLabel(front[0].Cell)
		}
		e.res.Rounds = append(e.res.Rounds, r)
	}
	if len(e.res.Evaluated) == 0 {
		return fmt.Errorf("%w: empty space", lab.ErrInvalid)
	}
	return nil
}

// runHalving is successive halving on IPC: a broad candidate draw probes
// at MinBudget, each round keeps the top ceil(n/eta) and multiplies the
// budget by eta (capped at the full budget), and the last round — at
// full fidelity — selects the survivors. Cheap early rounds are noisy
// estimators of the full-budget objective; rising budgets spend
// simulation time only on candidates that keep earning it.
func (e *explorer) runHalving(ctx context.Context) error {
	cand := e.sampler.Draw(e.spec.Samples)
	if len(cand) == 0 {
		return fmt.Errorf("%w: empty space", lab.ErrInvalid)
	}
	full := e.spec.Space.Budget
	// The budget ladder is derived by division from the full budget —
	// MinBudget, then every full/eta^j above it, ending exactly at full —
	// so the final round always runs at full fidelity and never lands one
	// rounding error short of it (which would cost a near-duplicate round).
	rungs := []uint64{e.spec.MinBudget}
	var above []uint64
	for b := full; b > e.spec.MinBudget; b /= uint64(e.spec.Eta) {
		above = append(above, b)
	}
	for i := len(above) - 1; i >= 0; i-- {
		rungs = append(rungs, above[i])
	}
	for round := 0; ; round++ {
		budget := rungs[round]
		cells, err := e.space.cells(cand, budget, e.seen)
		if err != nil {
			return err
		}
		batch, err := e.eval(ctx, cells, budget)
		if err != nil {
			return err
		}
		byKey := make(map[string]*lab.RunResult, len(batch))
		for _, cr := range batch {
			byKey[cr.Key] = cr.Result
		}

		// Rank the candidate pool by this round's IPC, deduping indices
		// that alias to one canonical configuration (first index wins).
		// Ties break on the enumeration index, so ranking is total and
		// deterministic.
		type scored struct {
			idx  int64
			key  string
			cell sweep.Cell
			ipc  float64
		}
		var ranked []scored
		seenKey := make(map[string]bool, len(cand))
		for _, i := range cand {
			c, err := e.space.CellAt(i, budget)
			if err != nil {
				return err
			}
			if seenKey[c.Key] {
				continue
			}
			seenKey[c.Key] = true
			r, ok := byKey[c.Key]
			if !ok {
				return fmt.Errorf("dse: internal: no result for cell %s", c.Key)
			}
			ranked = append(ranked, scored{idx: i, key: c.Key, cell: c, ipc: r.IPC})
		}
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].ipc != ranked[j].ipc {
				return ranked[i].ipc > ranked[j].ipc
			}
			return ranked[i].idx < ranked[j].idx
		})

		keep := (len(ranked) + e.spec.Eta - 1) / e.spec.Eta
		if keep < 1 {
			keep = 1
		}
		if keep > len(ranked) {
			keep = len(ranked)
		}
		e.res.Rounds = append(e.res.Rounds, Round{
			Round: round, Budget: budget, Cells: len(batch), Kept: keep,
			BestIPC: ranked[0].ipc, BestKey: cellLabel(ranked[0].cell),
		})

		if round == len(rungs)-1 {
			// Full fidelity reached: the top of this ranking survives.
			for _, s := range ranked[:keep] {
				e.res.Survivors = append(e.res.Survivors, sweep.CellResult{Cell: s.cell, Result: byKey[s.key]})
			}
			return nil
		}
		cand = cand[:0]
		for _, s := range ranked[:keep] {
			cand = append(cand, s.idx)
		}
	}
}

// cellLabel is the compact human name of a cell: workload plus axis
// value labels (canonical keys dump whole config specs — fine as
// identities, unreadable in a trajectory table).
func cellLabel(c sweep.Cell) string {
	if len(c.Coords) == 0 {
		return c.Workload
	}
	return c.Workload + " " + strings.Join(c.Coords, " ")
}

// bestByIPC picks the best cell of a batch (IPC descending, key
// ascending on ties).
func bestByIPC(cells []sweep.CellResult) sweep.CellResult {
	best := cells[0]
	for _, c := range cells[1:] {
		if c.Result.IPC > best.Result.IPC ||
			(c.Result.IPC == best.Result.IPC && c.Key < best.Key) {
			best = c
		}
	}
	return best
}

// ------------------------------------------------------------- reporting

// maxTopCells bounds the "top cells by IPC" table.
const maxTopCells = 16

// Report renders the exploration as an experiment-style report: a
// summary header, the per-round trajectory, the survivor set (halving),
// the IPC-vs-energy Pareto frontier, a top-cells table and an objective
// summary. Like the sweep report it is a pure function of the result,
// byte-identical however the cells were computed.
func (r *Result) Report() *exp.Report {
	axes := r.Spec.Space.AxisNames()

	title := fmt.Sprintf("explore: %s over a %d-cell space, %d evaluated (seed %d)",
		r.Spec.Strategy, r.SpaceSize, len(r.Evaluated), r.Spec.Seed)
	summary := &stats.Table{
		Title: title,
		// No "resumed" column: the report is byte-identical for resumed and
		// uninterrupted runs, and a resume count would (correctly) differ.
		Header: []string{"strategy", "sampler", "seed", "space_cells", "evaluated", "rounds", "survivors", "frontier"},
	}
	summary.AddRow(r.Spec.Strategy, r.Spec.Sampler, fmt.Sprintf("%d", r.Spec.Seed),
		fmt.Sprintf("%d", r.SpaceSize), fmt.Sprintf("%d", len(r.Evaluated)),
		fmt.Sprintf("%d", len(r.Rounds)),
		fmt.Sprintf("%d", len(r.Survivors)), fmt.Sprintf("%d", len(r.Frontier)))

	rep := exp.NewReport(summary)
	rep.ID = "explore"
	rep.Title = title

	if len(r.Rounds) > 0 {
		t := &stats.Table{
			Title:  "search trajectory (one row per round)",
			Header: []string{"round", "budget", "cells", "kept", "best_ipc", "best_cell"},
		}
		for _, rd := range r.Rounds {
			t.AddRow(fmt.Sprintf("%d", rd.Round), fmt.Sprintf("%d", rd.Budget),
				fmt.Sprintf("%d", rd.Cells), fmt.Sprintf("%d", rd.Kept),
				fmt.Sprintf("%.4f", rd.BestIPC), rd.BestKey)
		}
		rep.Add(t)
	}

	cellTable := func(title string, cells []sweep.CellResult) {
		if len(cells) == 0 {
			return
		}
		t := &stats.Table{Title: title}
		t.Header = append(append([]string{"workload"}, axes...),
			"ipc", "energy_j", "power_w", "cycles")
		for _, c := range cells {
			row := append([]string{c.Workload}, c.Coords...)
			row = append(row,
				fmt.Sprintf("%.4f", c.Result.IPC),
				fmt.Sprintf("%.3e", c.Result.EnergyJ),
				fmt.Sprintf("%.3f", c.Result.PowerW),
				fmt.Sprintf("%d", c.Result.Cycles),
			)
			t.AddRow(row...)
		}
		rep.Add(t)
	}

	cellTable(fmt.Sprintf("survivors (successive halving, final budget %d)", r.Spec.Space.Budget), r.Survivors)
	cellTable("IPC-vs-energy Pareto frontier (non-dominated, IPC descending)", r.Frontier)

	// Top cells by IPC over the full-budget evaluations, for strategies
	// whose headline is not already a ranked table.
	if len(r.Survivors) == 0 {
		full := r.fullEvals()
		ranked := append([]sweep.CellResult(nil), full...)
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].Result.IPC != ranked[j].Result.IPC {
				return ranked[i].Result.IPC > ranked[j].Result.IPC
			}
			return ranked[i].Key < ranked[j].Key
		})
		if len(ranked) > maxTopCells {
			ranked = ranked[:maxTopCells]
		}
		cellTable(fmt.Sprintf("top %d cells by IPC", len(ranked)), ranked)
	}

	if full := r.fullEvals(); len(full) > 0 {
		t := &stats.Table{
			Title:  "objective summary over full-budget evaluations",
			Header: []string{"objective", "n", "geomean", "mean", "min", "max"},
		}
		var ipcs, energies []float64
		for _, c := range full {
			ipcs = append(ipcs, c.Result.IPC)
			energies = append(energies, c.Result.EnergyJ)
		}
		si, se := stats.Summarize(ipcs), stats.Summarize(energies)
		t.AddRow("ipc", fmt.Sprintf("%d", si.N), fmt.Sprintf("%.4f", si.Geomean),
			fmt.Sprintf("%.4f", si.Mean), fmt.Sprintf("%.4f", si.Min), fmt.Sprintf("%.4f", si.Max))
		t.AddRow("energy_j", fmt.Sprintf("%d", se.N), fmt.Sprintf("%.3e", se.Geomean),
			fmt.Sprintf("%.3e", se.Mean), fmt.Sprintf("%.3e", se.Min), fmt.Sprintf("%.3e", se.Max))
		rep.Add(t)
	}
	return rep
}

// fullEvals is fullBudgetEvals reachable from a deserialized Result.
func (r *Result) fullEvals() []sweep.CellResult {
	if r.Spec.Space.Budget == 0 {
		return r.Evaluated
	}
	var out []sweep.CellResult
	for _, c := range r.Evaluated {
		if c.Result.Budget == r.Spec.Space.Budget {
			out = append(out, c)
		}
	}
	return out
}
