package dse

import (
	"sort"

	"r3dla/internal/sweep"
)

// Point is one evaluated cell projected onto the search objectives:
// IPC to maximize, total energy in joules to minimize.
type Point struct {
	IPC     float64
	EnergyJ float64
}

// Dominates reports strict Pareto dominance: p is at least as good as q
// on both objectives and strictly better on at least one.
func (p Point) Dominates(q Point) bool {
	return p.IPC >= q.IPC && p.EnergyJ <= q.EnergyJ &&
		(p.IPC > q.IPC || p.EnergyJ < q.EnergyJ)
}

// pointOf projects a cell result onto the objective plane.
func pointOf(c sweep.CellResult) Point {
	return Point{IPC: c.Result.IPC, EnergyJ: c.Result.EnergyJ}
}

// frontier filters cells down to the non-dominated set and orders it
// along the front: IPC descending, then energy ascending, then cell key
// — a pure function of the (deterministic) results, so the frontier
// table is byte-stable. Cells whose objectives tie exactly keep one
// representative each (equal points never dominate each other).
func frontier(cells []sweep.CellResult) []sweep.CellResult {
	var front []sweep.CellResult
	for i, c := range cells {
		p := pointOf(c)
		dominated := false
		for j, o := range cells {
			if i == j {
				continue
			}
			q := pointOf(o)
			if q.Dominates(p) {
				dominated = true
				break
			}
			// Exact objective ties: keep the first occurrence only.
			if q == p && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.SliceStable(front, func(i, j int) bool {
		a, b := pointOf(front[i]), pointOf(front[j])
		if a.IPC != b.IPC {
			return a.IPC > b.IPC
		}
		if a.EnergyJ != b.EnergyJ {
			return a.EnergyJ < b.EnergyJ
		}
		return front[i].Key < front[j].Key
	})
	return front
}
