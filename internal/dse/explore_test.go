package dse

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"r3dla/internal/lab"
	"r3dla/internal/sweep"
	"r3dla/internal/tier"
)

// fakeRunner is a synthetic sweep.Runner: IPC and energy are cheap pure
// functions of the configuration (keyed on BOQ size), so searcher logic
// — ranking, promotion, dominance — is testable without a simulator.
type fakeRunner struct {
	mu    sync.Mutex
	runs  int
	objFn func(boq int, budget uint64) (ipc, energy float64)
}

func (f *fakeRunner) Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
	f.mu.Lock()
	f.runs++
	f.mu.Unlock()
	boq := 0
	if req.Config.BOQSize != nil {
		boq = *req.Config.BOQSize
	}
	ipc, energy := f.objFn(boq, req.Budget)
	return &lab.RunResult{
		Workload: req.Workload,
		Budget:   req.Budget,
		IPC:      ipc,
		EnergyJ:  energy,
		Cycles:   req.Budget,
	}, nil
}

// fakeSpec is a 16-cell one-axis space over BOQ sizes 8,16,...,128.
func fakeSpec(budget uint64) sweep.Spec {
	boqs := make([]int, 16)
	for i := range boqs {
		boqs[i] = (i + 1) * 8
	}
	return sweep.Spec{
		Workloads: []string{"mcf"},
		Budget:    budget,
		Base:      lab.ConfigSpec{Preset: "dla"},
		Axes:      sweep.Axes{BOQSize: boqs},
	}
}

// TestHalvingSelectsSurvivor runs successive halving against a synthetic
// objective monotone in BOQ size: the survivor must be the largest BOQ
// among the round-0 candidates, the budget ladder must rise MinBudget ->
// xEta -> full, and the candidate pool must shrink by eta each round.
func TestHalvingSelectsSurvivor(t *testing.T) {
	r := &fakeRunner{objFn: func(boq int, budget uint64) (float64, float64) {
		return float64(boq), 1000 / float64(boq)
	}}
	spec := Spec{
		Space:    fakeSpec(64000),
		Strategy: StrategyHalving,
		Seed:     9,
		Samples:  8,
		Eta:      4, // MinBudget derives to 64000/4^3 = 1000
	}
	res, err := Explore(context.Background(), r, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}

	wantBudgets := []uint64{1000, 4000, 16000, 64000}
	wantCells := []int{8, 2, 1, 1}
	wantKept := []int{2, 1, 1, 1}
	if len(res.Rounds) != len(wantBudgets) {
		t.Fatalf("ran %d rounds, want %d: %+v", len(res.Rounds), len(wantBudgets), res.Rounds)
	}
	for i, rd := range res.Rounds {
		if rd.Budget != wantBudgets[i] || rd.Cells != wantCells[i] || rd.Kept != wantKept[i] {
			t.Fatalf("round %d = {budget %d, cells %d, kept %d}, want {%d, %d, %d}",
				i, rd.Budget, rd.Cells, rd.Kept, wantBudgets[i], wantCells[i], wantKept[i])
		}
	}
	if want := 8 + 2 + 1 + 1; len(res.Evaluated) != want || r.runs != want {
		t.Fatalf("evaluated %d cells, ran %d simulations, want %d", len(res.Evaluated), r.runs, want)
	}

	// Replay the sampler: the survivor must be the best (largest-BOQ)
	// round-0 candidate, evaluated at the full budget.
	sp, err := NewSpace(spec.Space)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := NewSampler(SamplerRandom, sp, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	bestIPC := -1.0
	for _, i := range smp.Draw(spec.Samples) {
		c, err := sp.CellAt(i, 64000)
		if err != nil {
			t.Fatal(err)
		}
		// IPC of the fake objective is the BOQ size = 8*(index+1).
		if ipc := float64(8 * (i + 1)); ipc > bestIPC {
			bestIPC = ipc
			_ = c
		}
	}
	if len(res.Survivors) != 1 {
		t.Fatalf("got %d survivors, want 1", len(res.Survivors))
	}
	s := res.Survivors[0]
	if s.Result.IPC != bestIPC || s.Result.Budget != 64000 {
		t.Fatalf("survivor ipc %.0f at budget %d, want %.0f at 64000", s.Result.IPC, s.Result.Budget, bestIPC)
	}
	// The frontier only considers full-budget evaluations.
	for _, c := range res.Frontier {
		if c.Result.Budget != 64000 {
			t.Fatalf("frontier includes probe-budget cell %s", c.Key)
		}
	}
}

// TestHalvingRanksPerRound flips the objective's ordering between probe
// and full budgets for one candidate: promotion must follow the budget
// the round actually ran at, not the final one.
func TestHalvingPromotionUsesRoundBudget(t *testing.T) {
	// At small budgets BOQ 8 looks best by far; at the full budget the
	// ranking is monotone in BOQ. The winner must be whatever survived the
	// early rounds — i.e. BOQ 8 if it was drawn (it always scores highest
	// at probes), showing probe results drive promotion.
	r := &fakeRunner{objFn: func(boq int, budget uint64) (float64, float64) {
		if budget < 64000 && boq == 8 {
			return 1e6, 1
		}
		return float64(boq), 1000 / float64(boq)
	}}
	spec := Spec{
		Space:    fakeSpec(64000),
		Strategy: StrategyHalving,
		Seed:     1, // must draw index 0 (BOQ 8) among 8 of 16 candidates... pinned below
		Samples:  16,
		Eta:      16, // one probe round keeps 1, then the full-budget round
	}
	res, err := Explore(context.Background(), r, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Samples=16 covers the whole space, so BOQ 8 is certainly drawn; with
	// eta=16 only it survives the probe round.
	if len(res.Survivors) != 1 {
		t.Fatalf("got %d survivors, want 1", len(res.Survivors))
	}
	if got := res.Survivors[0].Result.IPC; got != 8 {
		t.Fatalf("survivor IPC %.0f, want 8 (probe-round winner)", got)
	}
}

// TestParetoSyntheticFrontier runs the Pareto strategy against an
// objective with genuine trade-offs and asserts the reported frontier is
// exactly the non-dominated subset of everything evaluated.
func TestParetoSyntheticFrontier(t *testing.T) {
	// ipc and energy both "improve" with BOQ along different residues, so
	// the plane has real trade-offs (spot-checked non-trivial below).
	r := &fakeRunner{objFn: func(boq int, budget uint64) (float64, float64) {
		return float64((boq * 7) % 13), float64((boq*5)%11 + 1)
	}}
	spec := Spec{
		Space:    fakeSpec(2000),
		Strategy: StrategyPareto,
		Seed:     5,
		Samples:  6,
		Rounds:   2,
	}
	res, err := Explore(context.Background(), r, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 || len(res.Evaluated) != 12 {
		t.Fatalf("rounds %d evaluated %d, want 2 rounds over 12 cells", len(res.Rounds), len(res.Evaluated))
	}
	if len(res.Frontier) < 2 {
		t.Fatalf("degenerate frontier (%d points) — objective should force trade-offs", len(res.Frontier))
	}
	for _, f := range res.Frontier {
		for _, o := range res.Evaluated {
			if pointOf(o).Dominates(pointOf(f)) {
				t.Fatalf("frontier cell %s is dominated by %s", f.Key, o.Key)
			}
		}
	}
	// Every evaluated cell outside the frontier is dominated or an exact
	// duplicate of a frontier point.
	onFront := map[string]bool{}
	for _, f := range res.Frontier {
		onFront[f.Key] = true
	}
	for _, o := range res.Evaluated {
		if onFront[o.Key] {
			continue
		}
		ok := false
		for _, f := range res.Frontier {
			if pointOf(f).Dominates(pointOf(o)) || pointOf(f) == pointOf(o) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("cell %s is non-dominated but missing from the frontier", o.Key)
		}
	}
}

// --------------------------------------------------------- real-lab tests

func newTestLab(t *testing.T, jobs int) *lab.Lab {
	t.Helper()
	l, err := lab.New(lab.WithBudget(2000), lab.WithJobs(jobs))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// labSpec is the exploration the real-simulator tests share: pareto
// search, 2 rounds x 4 samples over the 48-cell test space at budget
// 2000.
func labSpec() Spec {
	return Spec{
		Space:    testSpaceSpec(),
		Strategy: StrategyPareto,
		Seed:     21,
		Samples:  4,
		Rounds:   2,
	}
}

// renderAll renders an exploration every way the CLI surfaces it.
func renderAll(t *testing.T, r *Result) []byte {
	t.Helper()
	rep := r.Report()
	var b bytes.Buffer
	b.WriteString(rep.String())
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestExploreDeterministicAcrossJobs is the headline guarantee: a fixed
// seed renders byte-identically for one worker and many (run under -race
// in CI).
func TestExploreDeterministicAcrossJobs(t *testing.T) {
	serial, err := Explore(context.Background(), newTestLab(t, 1), labSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Explore(context.Background(), newTestLab(t, 8), labSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderAll(t, serial), renderAll(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("-jobs 1 and -jobs 8 explore output differ:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
	}
}

// TestExploreJournalAndResume kills an exploration partway (context
// cancellation after two completed cells), resumes it from the journal
// on a fresh Lab, and requires the journaled cells not to re-execute and
// the final report to byte-match an uninterrupted run's.
func TestExploreJournalAndResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "explore.ndjson")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	completed := 0
	_, err := Explore(ctx, newTestLab(t, 2), labSpec(), Options{
		Journal: journal,
		Progress: func(ev sweep.Event) {
			mu.Lock()
			completed++
			if completed == 2 {
				cancel()
			}
			mu.Unlock()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted explore error: %v", err)
	}

	// Uninterrupted reference run (its own lab, no journal).
	full, err := Explore(context.Background(), newTestLab(t, 2), labSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := len(full.Evaluated)

	l := newTestLab(t, 2)
	resumed, err := Explore(context.Background(), l, labSpec(), Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed < 2 {
		t.Fatalf("resumed %d cells, want >= 2", resumed.Resumed)
	}
	if got, want := l.RunCount(), total-resumed.Resumed; got != want {
		t.Fatalf("resume executed %d simulations, want %d (journaled cells re-ran)", got, want)
	}
	if !bytes.Equal(renderAll(t, resumed), renderAll(t, full)) {
		t.Fatal("resumed explore output differs from uninterrupted run")
	}

	// A second resume restores everything and runs nothing.
	l2 := newTestLab(t, 2)
	again, err := Explore(context.Background(), l2, labSpec(), Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Resumed != total || l2.RunCount() != 0 {
		t.Fatalf("full resume still ran work: resumed %d/%d, runs %d", again.Resumed, total, l2.RunCount())
	}
	if !bytes.Equal(renderAll(t, again), renderAll(t, full)) {
		t.Fatal("fully-resumed explore output differs from uninterrupted run")
	}
}

// TestExploreHalvingOnLab exercises the budget ladder against the real
// simulator and pins jobs-independence for the multi-round strategy too.
func TestExploreHalvingOnLab(t *testing.T) {
	spec := Spec{
		Space:     testSpaceSpec(),
		Strategy:  StrategyHalving,
		Seed:      3,
		Samples:   6,
		Eta:       3,
		MinBudget: 500,
	}
	a, err := Explore(context.Background(), newTestLab(t, 1), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(context.Background(), newTestLab(t, 8), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, a), renderAll(t, b)) {
		t.Fatal("halving output differs across -jobs")
	}
	if len(a.Survivors) == 0 {
		t.Fatal("halving selected no survivors")
	}
	last := a.Rounds[len(a.Rounds)-1]
	if last.Budget != 2000 {
		t.Fatalf("final round budget %d, want the full 2000", last.Budget)
	}
}

// ------------------------------------------------------------ validation

func TestExploreOptionAndSpecValidation(t *testing.T) {
	r := &fakeRunner{objFn: func(boq int, budget uint64) (float64, float64) { return 1, 1 }}
	cases := []struct {
		name string
		spec Spec
		opts Options
	}{
		{"resume without journal", Spec{Space: fakeSpec(2000)}, Options{Resume: true}},
		{"unknown strategy", Spec{Space: fakeSpec(2000), Strategy: "anneal"}, Options{}},
		{"unknown sampler", Spec{Space: fakeSpec(2000), Strategy: StrategyPareto, Sampler: "sobol"}, Options{}},
		{"halving without budget", Spec{Space: fakeSpec(0), Strategy: StrategyHalving}, Options{}},
		{"min budget over full", Spec{Space: fakeSpec(2000), Strategy: StrategyHalving, MinBudget: 4000}, Options{}},
		{"samples over cap", Spec{Space: fakeSpec(2000), Samples: maxSamples + 1}, Options{}},
		{"negative samples", Spec{Space: fakeSpec(2000), Samples: -1}, Options{}},
		{"eta of one", Spec{Space: fakeSpec(2000), Strategy: StrategyHalving, Eta: 1}, Options{}},
		{"rounds over cap", Spec{Space: fakeSpec(2000), Strategy: StrategyPareto, Rounds: maxRounds + 1}, Options{}},
		{"unknown workload", Spec{Space: sweep.Spec{Workloads: []string{"nosuch"}, Budget: 2000}}, Options{}},
	}
	for _, c := range cases {
		if _, err := Explore(context.Background(), r, c.spec, c.opts); !errors.Is(err, lab.ErrInvalid) {
			t.Errorf("%s: error %v, want lab.ErrInvalid", c.name, err)
		}
	}
}

// TestSpecNormalizeDefaults pins the resolved defaults the report
// surfaces.
func TestSpecNormalizeDefaults(t *testing.T) {
	s, err := Spec{Space: fakeSpec(2000)}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy != StrategyRandom || s.Sampler != SamplerRandom {
		t.Fatalf("defaults: strategy %q sampler %q", s.Strategy, s.Sampler)
	}
	if s.Samples != DefaultSamples || s.Rounds != DefaultRounds || s.Eta != DefaultEta {
		t.Fatalf("defaults: samples %d rounds %d eta %d", s.Samples, s.Rounds, s.Eta)
	}
	// One-shot strategies force the matching sampler.
	s, err = Spec{Space: fakeSpec(2000), Strategy: StrategyLHS, Sampler: SamplerRandom}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Sampler != SamplerLHS {
		t.Fatalf("lhs strategy kept sampler %q", s.Sampler)
	}
	// Halving's MinBudget derives from the full budget.
	s, err = Spec{Space: fakeSpec(640_000), Strategy: StrategyHalving}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.MinBudget != 10_000 {
		t.Fatalf("derived min budget %d, want 10000", s.MinBudget)
	}
}

func TestParseSpecRejects(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"space":{},"warmth":3}`)); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("unknown field: %v", err)
	}
	if _, err := ParseSpec([]byte(`{"space":{}} trailing`)); !errors.Is(err, lab.ErrInvalid) {
		t.Fatalf("trailing data: %v", err)
	}
	if _, err := ParseSpec([]byte(`{"space":{"workloads":["mcf"]},"strategy":"pareto","seed":4}`)); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// ------------------------------------------------------------ ladder tests

// ladderTiers builds the estimator tiers a ladder test needs, calibrated
// against the given lab with no persistence.
func ladderTiers(l *lab.Lab, budget uint64, seed int64) *Tiers {
	cal := tier.NewCalibrator(l, tier.CalibBudgetFor(budget), nil)
	return &Tiers{Analytic: tier.NewAnalyticRunner(cal), MC: tier.NewMonteCarloRunner(cal, uint64(seed))}
}

// ladderSpec is the small ladder exploration the real-lab tests share.
func ladderSpec() Spec {
	return Spec{
		Space:    testSpaceSpec(),
		Strategy: StrategyHalving,
		Fidelity: FidelityLadder,
		Seed:     13,
		Samples:  8,
		Eta:      4,
	}
}

// TestLadderMechanics drives the full ladder with three synthetic
// runners whose objectives differ by a known bias, so every promotion
// count, tier tag and error figure is checkable by hand: 16 candidates
// score analytically, ceil(16/4)=4 promote to MC, ceil(4/4)=1 runs
// cycle-accurately, and the reported MAPEs are exactly the planted
// biases (analytic 10% high, MC 5% high).
func TestLadderMechanics(t *testing.T) {
	cycle := &fakeRunner{objFn: func(boq int, budget uint64) (float64, float64) {
		return float64(boq), 1000 / float64(boq)
	}}
	analytic := &fakeRunner{objFn: func(boq int, budget uint64) (float64, float64) {
		return float64(boq) * 1.1, 1000 / float64(boq)
	}}
	mc := &fakeRunner{objFn: func(boq int, budget uint64) (float64, float64) {
		return float64(boq) * 1.05, 1000 / float64(boq)
	}}
	spec := Spec{
		Space:    fakeSpec(64000),
		Strategy: StrategyHalving,
		Fidelity: FidelityLadder,
		Seed:     2,
		Samples:  16,
		Eta:      4,
	}
	res, err := Explore(context.Background(), cycle, spec, Options{Tiers: &Tiers{Analytic: analytic, MC: mc}})
	if err != nil {
		t.Fatal(err)
	}

	if analytic.runs != 16 || mc.runs != 4 || cycle.runs != 1 {
		t.Fatalf("tier dispatch = analytic %d, mc %d, cycle %d; want 16/4/1", analytic.runs, mc.runs, cycle.runs)
	}
	wantRounds := []Round{
		{Round: 0, Tier: sweep.TierAnalytic, Budget: 64000, Cells: 16, Kept: 4},
		{Round: 1, Tier: sweep.TierMC, Budget: 64000, Cells: 4, Kept: 1},
		{Round: 2, Tier: sweep.TierCycle, Budget: 64000, Cells: 1, Kept: 1},
	}
	if len(res.Rounds) != len(wantRounds) {
		t.Fatalf("got %d rounds, want %d: %+v", len(res.Rounds), len(wantRounds), res.Rounds)
	}
	for i, want := range wantRounds {
		got := res.Rounds[i]
		if got.Round != want.Round || got.Tier != want.Tier || got.Budget != want.Budget ||
			got.Cells != want.Cells || got.Kept != want.Kept {
			t.Fatalf("round %d = %+v, want %+v", i, got, want)
		}
	}

	// Evaluated holds only the journaled rungs (MC + cycle), each with
	// explicit tier provenance; the analytic scoring pass never lands
	// there.
	if len(res.Evaluated) != 5 {
		t.Fatalf("evaluated %d cells, want 5 (4 mc + 1 cycle)", len(res.Evaluated))
	}
	tiers := map[string]int{}
	for _, c := range res.Evaluated {
		tiers[c.Tier]++
	}
	if tiers[sweep.TierMC] != 4 || tiers[sweep.TierCycle] != 1 {
		t.Fatalf("tier counts %v, want mc:4 cycle:1", tiers)
	}

	// The finalist is the largest BOQ (IPC is monotone at every tier) and
	// carries both estimates; the MAPEs are the planted biases.
	if len(res.Finalists) != 1 {
		t.Fatalf("got %d finalists, want 1", len(res.Finalists))
	}
	f := res.Finalists[0]
	if f.CycleIPC != 128 || f.AnalyticIPC != 128*1.1 || f.MCIPC != 128*1.05 {
		t.Fatalf("finalist estimates = %+v, want cycle 128, analytic 140.8, mc 134.4", f)
	}
	if len(res.TierErrors) != 2 {
		t.Fatalf("got %d tier errors, want 2", len(res.TierErrors))
	}
	const eps = 1e-9
	if a := res.TierErrors[0]; a.Tier != sweep.TierAnalytic || a.Cells != 1 || abs(a.MAPE-0.1) > eps {
		t.Fatalf("analytic error %+v, want MAPE 0.10", a)
	}
	if m := res.TierErrors[1]; m.Tier != sweep.TierMC || m.Cells != 1 || abs(m.MAPE-0.05) > eps {
		t.Fatalf("mc error %+v, want MAPE 0.05", m)
	}

	// Survivors and frontier are cycle-tier only — estimates must never
	// leak onto the objective plane.
	if len(res.Survivors) != 1 || res.Survivors[0].Tier != sweep.TierCycle {
		t.Fatalf("survivors %+v, want exactly the cycle finalist", res.Survivors)
	}
	for _, c := range res.Frontier {
		if c.Tier != sweep.TierCycle {
			t.Fatalf("frontier includes %s-tier cell %s", c.Tier, c.Key)
		}
	}
}

// TestParetoPromote pins the linear-sweep promotion rule: frontier cells
// first (the low-energy end must survive mid-pack IPC), then IPC rank.
func TestParetoPromote(t *testing.T) {
	mk := func(key string, idx int, ipc, energy float64) sweep.CellResult {
		return sweep.CellResult{
			Cell:   sweep.Cell{Index: idx, Key: key},
			Result: &lab.RunResult{IPC: ipc, EnergyJ: energy},
		}
	}
	// IPC-ranked; "frugal" is dominated on IPC by three cells but has the
	// lowest energy, so it is on the frontier and must be promoted ahead
	// of "filler" cells with better IPC.
	ranked := []sweep.CellResult{
		mk("best", 0, 10, 5),
		mk("fill1", 1, 9, 6),
		mk("fill2", 2, 8, 7),
		mk("frugal", 3, 2, 1),
		mk("tail", 4, 1, 2),
	}
	got := paretoPromote(ranked, 3)
	want := []string{"best", "fill1", "frugal"}
	if len(got) != len(want) {
		t.Fatalf("promoted %d cells, want %d", len(got), len(want))
	}
	for i, k := range want {
		if got[i].Key != k {
			t.Fatalf("promoted[%d] = %s, want %s (full: %+v)", i, got[i].Key, k, got)
		}
	}
}

// TestLadderDeterministicAcrossJobs pins the ladder's byte-identity
// contract on the real simulator: one worker and many render the same
// report, including the estimator-error tables.
func TestLadderDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) *Result {
		l := newTestLab(t, jobs)
		res, err := Explore(context.Background(), l, ladderSpec(), Options{Tiers: ladderTiers(l, 2000, 13)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := renderAll(t, run(1)), renderAll(t, run(8))
	if !bytes.Equal(a, b) {
		t.Fatalf("-jobs 1 and -jobs 8 ladder output differ:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte("estimator error")) {
		t.Fatal("ladder report is missing the estimator-error table")
	}
}

// TestLadderJournalAndResume interrupts a ladder exploration after two
// journaled cells, resumes it, and requires the output to byte-match an
// uninterrupted run — the tier-tagged journal keys must restore the MC
// and cycle rungs without cross-tier collisions.
func TestLadderJournalAndResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "ladder.ndjson")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	completed := 0
	il := newTestLab(t, 2)
	_, err := Explore(ctx, il, ladderSpec(), Options{
		Journal: journal,
		Tiers:   ladderTiers(il, 2000, 13),
		Progress: func(ev sweep.Event) {
			mu.Lock()
			completed++
			if completed == 2 {
				cancel()
			}
			mu.Unlock()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted ladder error: %v", err)
	}

	fl := newTestLab(t, 2)
	full, err := Explore(context.Background(), fl, ladderSpec(), Options{Tiers: ladderTiers(fl, 2000, 13)})
	if err != nil {
		t.Fatal(err)
	}

	rl := newTestLab(t, 2)
	resumed, err := Explore(context.Background(), rl, ladderSpec(), Options{
		Journal: journal, Resume: true, Tiers: ladderTiers(rl, 2000, 13),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed < 2 {
		t.Fatalf("resumed %d cells, want >= 2", resumed.Resumed)
	}
	if !bytes.Equal(renderAll(t, resumed), renderAll(t, full)) {
		t.Fatal("resumed ladder output differs from uninterrupted run")
	}
}

// hugeSpaceSpec is a 131072-cell space (2 workloads x 2 presets x 7
// feature bits x 8 BOQ x 8 FQ x 4 VQ sizes) — past the 10^5 mark the
// ladder exists for, and far past sweep.MaxCells.
func hugeSpaceSpec() sweep.Spec {
	return sweep.Spec{
		Workloads: []string{"mcf", "libq"},
		Budget:    2000,
		Axes: sweep.Axes{
			Preset:       []string{"dla", "r3"},
			T1:           []bool{false, true},
			ValueReuse:   []bool{false, true},
			FetchBuffer:  []bool{false, true},
			Recycle:      []bool{false, true},
			BOP:          []bool{false, true},
			Stride:       []bool{false, true},
			PrefetchOnly: []bool{false, true},
			BOQSize:      []int{32, 64, 128, 256, 512, 1024, 2048, 4096},
			FQSize:       []int{16, 32, 64, 128, 256, 512, 1024, 2048},
			VQSize:       []int{8, 16, 32, 64},
		},
	}
}

// TestLadderHugeSpace is the headline scale guarantee: a >=10^5-point
// space completes with at most 5% of its cells (in fact a few dozen)
// ever reaching the cycle-accurate runner, and reports per-tier
// estimator error.
func TestLadderHugeSpace(t *testing.T) {
	spec := Spec{
		Space:    hugeSpaceSpec(),
		Strategy: StrategyHalving,
		Fidelity: FidelityLadder,
		Seed:     7,
		Samples:  64,
		Eta:      4,
	}
	l := newTestLab(t, 8)
	res, err := Explore(context.Background(), l, spec, Options{Tiers: ladderTiers(l, 2000, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpaceSize < 100_000 {
		t.Fatalf("space has %d cells, want >= 100000", res.SpaceSize)
	}
	cycleCells := 0
	for _, c := range res.Evaluated {
		if c.Tier == sweep.TierCycle {
			cycleCells++
		}
	}
	// Every cycle-accurate dispatch: the finalists plus the calibration
	// runs the lab counted.
	if total := uint64(l.RunCount()); total > uint64(res.SpaceSize)/20 {
		t.Fatalf("dispatched %d cycle-accurate runs over a %d-cell space (> 5%%)", total, res.SpaceSize)
	}
	if want := 16; cycleCells != want { // ceil(64/4)
		t.Fatalf("cycle tier evaluated %d cells, want %d", cycleCells, want)
	}
	if len(res.TierErrors) != 2 || res.TierErrors[0].Cells != 16 {
		t.Fatalf("tier errors %+v, want analytic+mc over 16 finalists", res.TierErrors)
	}
	for _, te := range res.TierErrors {
		if te.MAPE < 0 || te.MAPE > 1 {
			t.Fatalf("%s MAPE %.3f outside sanity band [0,1]", te.Tier, te.MAPE)
		}
	}
	if len(res.Finalists) != 16 {
		t.Fatalf("got %d finalists, want 16", len(res.Finalists))
	}
	for _, f := range res.Finalists {
		if f.AnalyticIPC <= 0 || f.MCIPC <= 0 || f.CycleIPC <= 0 {
			t.Fatalf("finalist %s is missing an estimate: %+v", f.Key, f)
		}
	}
}

// TestLadderValidation pins the spec-level rejections.
func TestLadderValidation(t *testing.T) {
	r := &fakeRunner{objFn: func(boq int, budget uint64) (float64, float64) { return 1, 1 }}
	cases := []struct {
		name string
		spec Spec
		opts Options
	}{
		{"ladder on one-shot strategy", Spec{Space: fakeSpec(2000), Strategy: StrategyRandom, Fidelity: FidelityLadder}, Options{}},
		{"ladder without budget", Spec{Space: fakeSpec(0), Strategy: StrategyPareto, Fidelity: FidelityLadder}, Options{}},
		{"unknown fidelity", Spec{Space: fakeSpec(2000), Fidelity: "quantum"}, Options{}},
		{"ladder without tiers", Spec{Space: fakeSpec(2000), Strategy: StrategyHalving, Fidelity: FidelityLadder}, Options{}},
	}
	sf := fakeSpec(2000)
	sf.Fidelity = sweep.TierAnalytic
	cases = append(cases, struct {
		name string
		spec Spec
		opts Options
	}{"ladder over space fidelity", Spec{Space: sf, Strategy: StrategyHalving, Fidelity: FidelityLadder}, Options{}})
	for _, c := range cases {
		if _, err := Explore(context.Background(), r, c.spec, c.opts); !errors.Is(err, lab.ErrInvalid) {
			t.Errorf("%s: error %v, want lab.ErrInvalid", c.name, err)
		}
	}
}
