// Package dram models main memory timing and energy in the style of the
// paper's DDR3-1600 configuration (Table I): channels, ranks and banks
// with open-row policy, bank busy windows, and per-channel data-bus
// serialization. Latencies are expressed in CPU cycles at the 3 GHz
// operating point.
package dram

import "r3dla/internal/cache"

// Config describes the memory system. All timing fields are CPU cycles.
type Config struct {
	Channels     int
	BanksPerChan int // ranks*banks folded into one dimension
	RowBytes     int
	TRCD         uint64 // activate-to-read
	TRP          uint64 // precharge
	TCAS         uint64 // read latency from open row
	TBurst       uint64 // data transfer occupancy per 64B block
	CtrlLatency  uint64 // controller queuing/decode overhead
}

// DefaultConfig mirrors Table I (DDR3 1600MHz, 2 channels, 2 ranks/channel,
// 8 banks/rank, tRCD=13.75ns, tRP=13.75ns) at 3 GHz (1ns = 3 cycles).
func DefaultConfig() Config {
	return Config{
		Channels:     2,
		BanksPerChan: 16, // 2 ranks x 8 banks
		RowBytes:     8192,
		TRCD:         41, // 13.75ns
		TRP:          41,
		TCAS:         41,
		TBurst:       15, // 64B at ~12.8GB/s
		CtrlLatency:  24,
	}
}

// Stats counts memory events for traffic and energy reporting.
type Stats struct {
	Reads      uint64
	Writes     uint64
	Activates  uint64
	RowHits    uint64
	BusyStalls uint64 // requests delayed by bank/bus occupancy
}

type bank struct {
	openRow   int64
	nextReady uint64
}

type channel struct {
	banks   []bank
	busFree uint64
}

// DRAM is the memory device; it implements cache.Level.
type DRAM struct {
	cfg   Config
	chans []channel
	Stats Stats
}

// New returns a DRAM with all rows closed.
func New(cfg Config) *DRAM {
	d := &DRAM{cfg: cfg, chans: make([]channel, cfg.Channels)}
	for i := range d.chans {
		d.chans[i].banks = make([]bank, cfg.BanksPerChan)
		for b := range d.chans[i].banks {
			d.chans[i].banks[b].openRow = -1
		}
	}
	return d
}

// Access services a memory request and returns its completion time.
// The write flag marks writebacks (timing handled the same; counted
// separately). Result.Level is always 4.
func (d *DRAM) Access(addr uint64, write, prefetch bool, now uint64) cache.Result {
	// Address mapping: block-interleave channels, then banks, then rows.
	blk := addr >> 6
	ci := int(blk) % d.cfg.Channels
	bi := int(blk/uint64(d.cfg.Channels)) % d.cfg.BanksPerChan
	row := int64(addr / uint64(d.cfg.RowBytes) / uint64(d.cfg.Channels))

	ch := &d.chans[ci]
	bk := &ch.banks[bi]

	start := now + d.cfg.CtrlLatency
	if bk.nextReady > start {
		start = bk.nextReady
		d.Stats.BusyStalls++
	}

	var lat uint64
	switch {
	case bk.openRow == row:
		lat = d.cfg.TCAS
		d.Stats.RowHits++
	case bk.openRow < 0:
		lat = d.cfg.TRCD + d.cfg.TCAS
		d.Stats.Activates++
	default:
		lat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		d.Stats.Activates++
	}
	bk.openRow = row

	dataStart := start + lat
	if ch.busFree > dataStart {
		dataStart = ch.busFree
		d.Stats.BusyStalls++
	}
	done := dataStart + d.cfg.TBurst
	ch.busFree = done
	bk.nextReady = done

	if write {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
	}
	return cache.Result{Done: done, Level: 4}
}

// Writeback counts a dirty eviction arriving from the cache above. The
// data movement occupies bandwidth lazily: we charge it to the statistics
// (traffic, energy) without blocking the read path.
func (d *DRAM) Writeback() { d.Stats.Writes++ }

// Traffic reports total blocks moved to/from memory.
func (d *DRAM) Traffic() uint64 { return d.Stats.Reads + d.Stats.Writes }
