package dram

import (
	"testing"

	"r3dla/internal/cache"
)

var _ cache.Level = (*DRAM)(nil)

func TestRowHitFasterThanRowMiss(t *testing.T) {
	d := New(DefaultConfig())
	r1 := d.Access(0x0, false, false, 0) // row activate
	lat1 := r1.Done
	// Same channel (blk%2==0), same bank ((blk/2)%16==0), same row:
	// blk=32 -> addr 0x800. Row hit after the bank frees.
	r2 := d.Access(0x800, false, false, r1.Done)
	lat2 := r2.Done - r1.Done
	if lat2 >= lat1 {
		t.Fatalf("row hit latency %d not faster than activate %d", lat2, lat1)
	}
	if d.Stats.RowHits != 1 || d.Stats.Activates != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
}

func TestRowConflictSlower(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	r1 := d.Access(0x0, false, false, 0)
	// Same channel & bank, different row: need channels*banks stride *
	// rowBytes... easier: rowBytes*channels stride maps to same bank group
	// pattern; use a huge stride and verify at least one conflict occurs.
	conflictAddr := uint64(cfg.RowBytes) * uint64(cfg.Channels) * uint64(cfg.BanksPerChan) * 8
	r2 := d.Access(conflictAddr, false, false, r1.Done)
	_ = r2
	if d.Stats.Activates < 1 {
		t.Fatalf("no activates recorded: %+v", d.Stats)
	}
}

func TestChannelBusSerializes(t *testing.T) {
	d := New(DefaultConfig())
	// Two requests to the same channel at the same time must not overlap
	// on the data bus.
	a := d.Access(0x0, false, false, 0)
	b := d.Access(0x0+0x40*2, false, false, 0) // +2 blocks: same channel (2 channels), diff bank
	if a.Done == b.Done {
		t.Fatalf("bus transfers overlapped: both done at %d", a.Done)
	}
}

func TestReadWriteCounts(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, false, false, 0)
	d.Access(64, true, false, 0)
	d.Writeback()
	if d.Stats.Reads != 1 || d.Stats.Writes != 2 {
		t.Fatalf("reads=%d writes=%d, want 1/2", d.Stats.Reads, d.Stats.Writes)
	}
	if d.Traffic() != 3 {
		t.Fatalf("traffic = %d, want 3", d.Traffic())
	}
}

func TestLatencyMonotoneUnderLoad(t *testing.T) {
	d := New(DefaultConfig())
	var prev uint64
	for i := 0; i < 64; i++ {
		r := d.Access(uint64(i)*64, false, false, 0)
		if r.Done < prev && i > 0 {
			// Different banks may complete out of order, but the bus on a
			// channel serializes; just sanity-check nothing finishes at 0.
			if r.Done == 0 {
				t.Fatal("zero completion time")
			}
		}
		prev = r.Done
	}
	if d.Stats.BusyStalls == 0 {
		t.Fatal("64 simultaneous requests produced no queuing")
	}
}
