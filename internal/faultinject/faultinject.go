// Package faultinject is the deterministic fault plane: a registry of
// named fault points threaded through every layer that touches disk or
// network, driven by policies whose random choices all derive from one
// seed. The same seed always arms the same schedule and draws the same
// per-point decision sequence, so any chaos run is replayable — failures
// become a reproducible *input* to the system, the way the dse samplers
// made search reproducible under a seed.
//
// The plane is strictly opt-in and free when absent: components hold a
// nil *Plane in production, every hook is guarded by that nil check, and
// no fault-injection code runs on any hot path. A non-nil plane is armed
// with Policies (error, ENOSPC, delay, torn write, silent corruption,
// stream cut) at registered points; the component at each point calls At
// and applies whatever Outcome fires.
//
// Determinism model: each armed policy owns a private splitmix64 stream
// seeded from (plane seed, point name, arm index). The n-th arrival at a
// point therefore draws the same numbers in every run with that seed —
// "the 3rd resultstore put tears" is a property of the seed, independent
// of how goroutines interleave across *different* points. (Arrival order
// at a single point still follows scheduling; the chaos harness asserts
// seed-deterministic schedules and invariants, not wall-clock timing.)
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"syscall"
	"time"
)

// ErrInjected marks every error the plane fabricates; errors.Is(err,
// ErrInjected) distinguishes injected faults from organic ones in tests
// and invariant checks.
var ErrInjected = errors.New("faultinject: injected fault")

// The registered fault points. Each names the single call site in the
// component that consults the plane; Arm rejects unregistered names so a
// typo'd schedule fails loudly instead of silently arming nothing.
const (
	// ResultStoreGet fires on resultstore.Store.Get: an error reads as a
	// miss, a delay models slow disk.
	ResultStoreGet = "resultstore.get"
	// ResultStorePut fires on resultstore.Store.Put: torn simulates a
	// crash mid-write (a truncated frame at the final path), corrupt
	// flips one byte silently, enospc/error fail the write.
	ResultStorePut = "resultstore.put"
	// PrepCacheLoad fires on prepcache.Cache.Load (error = miss, delay).
	PrepCacheLoad = "prepcache.load"
	// PrepCacheStore fires on prepcache.Cache.Store (torn, corrupt,
	// enospc, error, delay — the same write faults as ResultStorePut).
	PrepCacheStore = "prepcache.store"
	// JournalAppend fires on each sweep-journal line append: torn writes
	// a line prefix with no terminator, corrupt flips a byte in the
	// line; both are silent (the damage surfaces only on resume, where
	// quarantine must catch it). error/enospc fail the append.
	JournalAppend = "sweep.journal.append"
	// JournalLoad fires on journal load at resume (error, delay).
	JournalLoad = "sweep.journal.load"
	// RemoteConnect fires before each fleet.Remote HTTP round trip: an
	// error models a refused/reset connection, a delay a latency spike.
	RemoteConnect = "fleet.remote.connect"
	// RemoteStream fires on each response: drop cuts the body after N
	// bytes (mid-stream truncation), a delay stalls the first byte.
	RemoteStream = "fleet.remote.stream"
	// ServerRun fires at the top of the lab server's simulation
	// handlers: an error sheds the request with 503 (a shed burst), a
	// delay models a slow response.
	ServerRun = "lab.server.run"
)

// PointInfo describes one registered fault point.
type PointInfo struct {
	Name string
	Doc  string
}

var registry = map[string]string{
	ResultStoreGet: "result-store read (error = miss, delay)",
	ResultStorePut: "result-store write (torn, corrupt, enospc, error, delay)",
	PrepCacheLoad:  "prep-cache read (error = miss, delay)",
	PrepCacheStore: "prep-cache write (torn, corrupt, enospc, error, delay)",
	JournalAppend:  "sweep-journal line append (torn, corrupt, enospc, error, delay)",
	JournalLoad:    "sweep-journal load on resume (error, delay)",
	RemoteConnect:  "fleet HTTP round trip (error = connect fault, delay = latency spike)",
	RemoteStream:   "fleet HTTP response body (drop = mid-stream cut, delay)",
	ServerRun:      "lab server simulation handler (error = 503 shed burst, delay = slow response)",
}

// Points lists every registered fault point, sorted by name (the chaos
// report and DESIGN.md derive their tables from it).
func Points() []PointInfo {
	out := make([]PointInfo, 0, len(registry))
	for name, doc := range registry {
		out = append(out, PointInfo{Name: name, Doc: doc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Mode selects what an armed policy does when it fires.
type Mode string

const (
	// Error fails the operation with Policy.Err (ErrInjected by default).
	Error Mode = "error"
	// ENOSPC fails the operation with a wrapped syscall.ENOSPC.
	ENOSPC Mode = "enospc"
	// Delay stalls the operation by Policy.Delay, then proceeds.
	Delay Mode = "delay"
	// Torn truncates a write at a seed-chosen fraction and reports a
	// crash — the file at the final path holds a partial frame, exactly
	// what a power loss before fsync used to leave behind.
	Torn Mode = "torn"
	// Corrupt flips one seed-chosen byte of a write and reports success
	// — silent media corruption the reader's checksum must catch.
	Corrupt Mode = "corrupt"
	// Drop cuts a stream after Policy.Drop bytes — a connection dying
	// mid-response.
	Drop Mode = "drop"
)

// Policy arms one behavior at one point.
type Policy struct {
	Point string        // registered point name
	Mode  Mode          // what firing does
	Prob  float64       // per-arrival fire probability (0 means 1)
	After int           // arrivals passed through untouched before eligibility
	Limit int           // max fires (0 = unlimited)
	Delay time.Duration // Delay mode: how long to stall
	Drop  int64         // Drop mode: bytes to pass before the cut
	Err   error         // Error mode: override for the injected error
}

// String renders the policy deterministically for schedules and logs.
func (p Policy) String() string {
	prob := p.Prob
	if prob == 0 {
		prob = 1
	}
	s := fmt.Sprintf("%s %s prob=%g", p.Point, p.Mode, prob)
	if p.After > 0 {
		s += fmt.Sprintf(" after=%d", p.After)
	}
	if p.Limit > 0 {
		s += fmt.Sprintf(" limit=%d", p.Limit)
	}
	switch p.Mode {
	case Delay:
		s += fmt.Sprintf(" delay=%s", p.Delay)
	case Drop:
		s += fmt.Sprintf(" bytes=%d", p.Drop)
	}
	return s
}

// Outcome is what one arrival at a point drew. The zero Outcome means
// "no fault"; Frac carries the policy stream's position draw so torn and
// corrupt faults damage a seed-chosen location instead of a fixed one.
type Outcome struct {
	Err     error         // fail the operation with this error
	Delay   time.Duration // stall before proceeding
	Torn    bool          // truncate the write, report a crash
	Corrupt bool          // flip one byte, report success
	Drop    bool          // cut the stream after DropBytes
	Frac    float64       // position draw in [0,1) for torn/corrupt
	// DropBytes is the byte count for Drop outcomes.
	DropBytes int64
}

// Fired reports whether any fault was drawn.
func (o Outcome) Fired() bool {
	return o.Err != nil || o.Delay > 0 || o.Torn || o.Corrupt || o.Drop
}

// injected wraps a fabricated error so it matches both ErrInjected and
// the underlying sentinel (syscall.ENOSPC, a caller-provided error).
type injected struct {
	point string
	err   error
}

func (e *injected) Error() string   { return "faultinject: " + e.point + ": " + e.err.Error() }
func (e *injected) Unwrap() []error { return []error{ErrInjected, e.err} }

// armed is one policy plus its private deterministic stream and counters.
type armed struct {
	pol      Policy
	rng      uint64 // splitmix64 state
	arrivals int
	fires    int
}

// Plane is one seeded fault-injection domain: a set of armed policies
// over the registered points. The zero value is not usable; call New. A
// nil *Plane is the disabled plane — every method is nil-safe, so
// components hold a nil pointer in production and pay one nil check.
// Arm the plane fully before sharing it; At is safe for concurrent use.
type Plane struct {
	seed int64

	mu     sync.Mutex
	points map[string][]*armed
	order  []*armed // arm order, for Schedule
}

// New builds an empty plane whose every future draw derives from seed.
func New(seed int64) *Plane {
	return &Plane{seed: seed, points: make(map[string][]*armed)}
}

// Seed reports the plane's seed (0 for a nil plane).
func (p *Plane) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Arm adds one policy. Policies at the same point are consulted in arm
// order and at most one fires per arrival. The policy's random stream is
// fixed by (seed, point, arm index) at this moment, so a schedule armed
// in a deterministic order replays exactly.
func (p *Plane) Arm(pol Policy) error {
	if p == nil {
		return errors.New("faultinject: Arm on a nil plane")
	}
	if _, ok := registry[pol.Point]; !ok {
		return fmt.Errorf("faultinject: unregistered point %q", pol.Point)
	}
	switch pol.Mode {
	case Error, ENOSPC, Delay, Torn, Corrupt, Drop:
	default:
		return fmt.Errorf("faultinject: unknown mode %q", pol.Mode)
	}
	if pol.Prob < 0 || pol.Prob > 1 {
		return fmt.Errorf("faultinject: probability %g outside [0,1]", pol.Prob)
	}
	if pol.Mode == Delay && pol.Delay <= 0 {
		return fmt.Errorf("faultinject: delay mode needs a positive Delay")
	}
	if pol.Mode == Drop && pol.Drop < 0 {
		return fmt.Errorf("faultinject: negative drop byte count")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	h := fnv.New64a()
	h.Write([]byte(pol.Point))
	a := &armed{pol: pol, rng: uint64(p.seed) ^ h.Sum64() ^ (uint64(len(p.order)+1) * 0x9e3779b97f4a7c15)}
	p.points[pol.Point] = append(p.points[pol.Point], a)
	p.order = append(p.order, a)
	return nil
}

// MustArm is Arm for statically-known-good policies (the chaos schedule
// builder); it panics on the programming errors Arm rejects.
func (p *Plane) MustArm(pol Policy) {
	if err := p.Arm(pol); err != nil {
		panic(err)
	}
}

// At records one arrival at a point and returns the outcome that fired,
// if any. Nil-safe: a nil plane always returns the zero Outcome — this
// call (behind the caller's own nil check) is the entire disabled-path
// cost of the fault plane.
func (p *Plane) At(point string) Outcome {
	if p == nil {
		return Outcome{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out Outcome
	fired := false
	for _, a := range p.points[point] {
		a.arrivals++
		if fired || a.arrivals <= a.pol.After {
			continue
		}
		if a.pol.Limit > 0 && a.fires >= a.pol.Limit {
			continue
		}
		// Always draw, so a policy's stream position depends only on its
		// eligible-arrival count, never on sibling policies' outcomes.
		u := f64(&a.rng)
		prob := a.pol.Prob
		if prob == 0 {
			prob = 1
		}
		if u >= prob {
			continue
		}
		a.fires++
		fired = true
		out = a.outcome(point)
	}
	return out
}

// outcome materializes one firing of a.pol.
func (a *armed) outcome(point string) Outcome {
	frac := f64(&a.rng)
	switch a.pol.Mode {
	case Error:
		err := a.pol.Err
		if err == nil {
			err = errors.New("fault")
		}
		return Outcome{Err: &injected{point, err}, Frac: frac}
	case ENOSPC:
		return Outcome{Err: &injected{point, syscall.ENOSPC}, Frac: frac}
	case Delay:
		return Outcome{Delay: a.pol.Delay, Frac: frac}
	case Torn:
		return Outcome{Torn: true, Frac: frac}
	case Corrupt:
		return Outcome{Corrupt: true, Frac: frac}
	default: // Drop
		return Outcome{Drop: true, DropBytes: a.pol.Drop, Frac: frac}
	}
}

// Schedule renders the armed policies in arm order — the deterministic
// half of a chaos run's report.
func (p *Plane) Schedule() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.order))
	for i, a := range p.order {
		out[i] = a.pol.String()
	}
	return out
}

// Fires reports how many faults actually fired per point (observability;
// unlike the schedule, counts depend on traffic interleaving and are not
// part of the replayable report).
func (p *Plane) Fires() map[string]int {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int)
	for point, as := range p.points {
		for _, a := range as {
			out[point] += a.fires
		}
	}
	return out
}

// splitmix64: tiny, seedable, and stable — the same generator the dse
// samplers rely on for replayable draws.
func next(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func f64(s *uint64) float64 { return float64(next(s)>>11) / (1 << 53) }

// Rand returns a fresh deterministic stream derived from (seed, name) —
// the harness uses it for schedule construction so every choice in a
// chaos run traces back to the one seed.
func Rand(seed int64, name string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &Stream{state: uint64(seed) ^ h.Sum64()}
}

// Stream is a deterministic random stream (not safe for concurrent use).
type Stream struct{ state uint64 }

// Float64 draws from [0,1).
func (s *Stream) Float64() float64 { return f64(&s.state) }

// Intn draws from [0,n) (n must be positive).
func (s *Stream) Intn(n int) int { return int(next(&s.state) % uint64(n)) }
