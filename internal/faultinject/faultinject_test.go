package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"
	"time"
)

// Replaying the same seed and arm order must reproduce the same outcome
// sequence at every point — the property the whole chaos harness rests on.
func TestDeterministicReplay(t *testing.T) {
	build := func() *Plane {
		p := New(42)
		p.MustArm(Policy{Point: ResultStorePut, Mode: Torn, Prob: 0.5})
		p.MustArm(Policy{Point: ResultStorePut, Mode: Corrupt, Prob: 0.3})
		p.MustArm(Policy{Point: JournalAppend, Mode: ENOSPC, Prob: 0.2, After: 3})
		p.MustArm(Policy{Point: RemoteStream, Mode: Drop, Prob: 0.4, Drop: 100})
		return p
	}
	trace := func(p *Plane) []string {
		var out []string
		for i := 0; i < 200; i++ {
			for _, pt := range []string{ResultStorePut, JournalAppend, RemoteStream} {
				o := p.At(pt)
				out = append(out, fmt.Sprintf("%s err=%v torn=%v corrupt=%v drop=%v frac=%.6f",
					pt, o.Err != nil, o.Torn, o.Corrupt, o.Drop, o.Frac))
			}
		}
		return out
	}
	a, b := trace(build()), trace(build())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at draw %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// A point's stream must not shift when traffic at *other* points changes:
// cross-point interleaving is exactly what a live fleet can't control.
func TestPointStreamsIndependent(t *testing.T) {
	trace := func(noise int) []bool {
		p := New(7)
		p.MustArm(Policy{Point: ResultStoreGet, Mode: Error, Prob: 0.5})
		p.MustArm(Policy{Point: ServerRun, Mode: Error, Prob: 0.5})
		var out []bool
		for i := 0; i < 50; i++ {
			for j := 0; j < noise; j++ {
				p.At(ServerRun)
			}
			out = append(out, p.At(ResultStoreGet).Err != nil)
		}
		return out
	}
	a, b := trace(0), trace(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("resultstore.get stream shifted with server.run traffic at arrival %d", i)
		}
	}
}

func TestNilPlaneIsDisabled(t *testing.T) {
	var p *Plane
	if o := p.At(ResultStorePut); o.Fired() {
		t.Fatalf("nil plane fired: %+v", o)
	}
	if s := p.Schedule(); s != nil {
		t.Fatalf("nil plane schedule: %v", s)
	}
	if f := p.Fires(); f != nil {
		t.Fatalf("nil plane fires: %v", f)
	}
	if err := p.Arm(Policy{Point: ResultStorePut, Mode: Error}); err == nil {
		t.Fatal("Arm on a nil plane should error")
	}
	if p.Seed() != 0 {
		t.Fatal("nil plane seed should be 0")
	}
}

func TestArmValidation(t *testing.T) {
	p := New(1)
	cases := []Policy{
		{Point: "no.such.point", Mode: Error},
		{Point: ResultStorePut, Mode: "explode"},
		{Point: ResultStorePut, Mode: Error, Prob: 1.5},
		{Point: ResultStorePut, Mode: Error, Prob: -0.1},
		{Point: ResultStorePut, Mode: Delay},        // no positive Delay
		{Point: RemoteStream, Mode: Drop, Drop: -1}, // negative cut
	}
	for _, c := range cases {
		if err := p.Arm(c); err == nil {
			t.Errorf("Arm(%+v) should have failed", c)
		}
	}
	if len(p.Schedule()) != 0 {
		t.Fatalf("rejected policies leaked into the schedule: %v", p.Schedule())
	}
}

func TestAfterAndLimit(t *testing.T) {
	p := New(3)
	p.MustArm(Policy{Point: ServerRun, Mode: Error, After: 2, Limit: 3})
	fired := 0
	for i := 0; i < 20; i++ {
		o := p.At(ServerRun)
		if o.Err != nil {
			fired++
			if i < 2 {
				t.Fatalf("fired during After window at arrival %d", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want exactly Limit=3", fired)
	}
	if got := p.Fires()[ServerRun]; got != 3 {
		t.Fatalf("Fires reports %d, want 3", got)
	}
}

// At most one policy fires per arrival, and a later policy's stream stays
// fixed whether or not an earlier sibling fired.
func TestFirstFiringPolicyWins(t *testing.T) {
	p := New(11)
	p.MustArm(Policy{Point: ResultStorePut, Mode: Torn})    // always fires
	p.MustArm(Policy{Point: ResultStorePut, Mode: Corrupt}) // shadowed
	for i := 0; i < 10; i++ {
		o := p.At(ResultStorePut)
		if !o.Torn || o.Corrupt {
			t.Fatalf("arrival %d: want torn only, got %+v", i, o)
		}
	}
	if p.Fires()[ResultStorePut] != 10 {
		t.Fatalf("fires = %d, want 10", p.Fires()[ResultStorePut])
	}
}

func TestInjectedErrorWrapping(t *testing.T) {
	p := New(5)
	sentinel := errors.New("boom")
	p.MustArm(Policy{Point: ResultStoreGet, Mode: Error, Err: sentinel, Limit: 1})
	p.MustArm(Policy{Point: PrepCacheStore, Mode: ENOSPC, Limit: 1})

	o := p.At(ResultStoreGet)
	if !errors.Is(o.Err, ErrInjected) || !errors.Is(o.Err, sentinel) {
		t.Fatalf("error outcome %v should match ErrInjected and the sentinel", o.Err)
	}
	o = p.At(PrepCacheStore)
	if !errors.Is(o.Err, ErrInjected) || !errors.Is(o.Err, syscall.ENOSPC) {
		t.Fatalf("enospc outcome %v should match ErrInjected and syscall.ENOSPC", o.Err)
	}
}

func TestDelayAndDropOutcomes(t *testing.T) {
	p := New(9)
	p.MustArm(Policy{Point: RemoteConnect, Mode: Delay, Delay: 5 * time.Millisecond})
	p.MustArm(Policy{Point: RemoteStream, Mode: Drop, Drop: 64})
	if o := p.At(RemoteConnect); o.Delay != 5*time.Millisecond || o.Err != nil {
		t.Fatalf("delay outcome: %+v", o)
	}
	if o := p.At(RemoteStream); !o.Drop || o.DropBytes != 64 {
		t.Fatalf("drop outcome: %+v", o)
	}
}

func TestScheduleRendersInArmOrder(t *testing.T) {
	p := New(2)
	p.MustArm(Policy{Point: ServerRun, Mode: Delay, Delay: time.Millisecond, Prob: 0.25, After: 1, Limit: 2})
	p.MustArm(Policy{Point: RemoteStream, Mode: Drop, Drop: 32})
	want := []string{
		"lab.server.run delay prob=0.25 after=1 limit=2 delay=1ms",
		"fleet.remote.stream drop prob=1 bytes=32",
	}
	got := p.Schedule()
	if len(got) != len(want) {
		t.Fatalf("schedule %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPointsRegistry(t *testing.T) {
	pts := Points()
	if len(pts) != len(registry) {
		t.Fatalf("Points() returned %d entries, registry has %d", len(pts), len(registry))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Name >= pts[i].Name {
			t.Fatalf("Points() not sorted: %q before %q", pts[i-1].Name, pts[i].Name)
		}
	}
}

// Concurrent At calls must be safe (the plane sits on hot fleet paths
// under -race in the chaos soak).
func TestConcurrentAt(t *testing.T) {
	p := New(13)
	p.MustArm(Policy{Point: ServerRun, Mode: Error, Prob: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.At(ServerRun)
			}
		}()
	}
	wg.Wait()
	arr := 0
	p.mu.Lock()
	for _, a := range p.points[ServerRun] {
		arr = a.arrivals
	}
	p.mu.Unlock()
	if arr != 4000 {
		t.Fatalf("arrivals = %d, want 4000", arr)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := Rand(17, "schedule"), Rand(17, "schedule")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() || a.Intn(10) != b.Intn(10) {
			t.Fatalf("Stream diverged at draw %d", i)
		}
	}
	c := Rand(17, "other")
	same := true
	for i := 0; i < 10; i++ {
		if Rand(17, "schedule").Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("differently-named streams should not coincide")
	}
}
