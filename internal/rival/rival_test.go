package rival

import (
	"testing"

	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/workloads"
)

const budget = 40_000

func prep(t *testing.T, name string) (*workloads.Workload, func(*emu.Memory), *core.Profile) {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("workload %s missing", name)
	}
	prog, trainSetup := w.Build(1)
	prof := core.Collect(prog, trainSetup, budget)
	return w, trainSetup, prof
}

func TestSlipStreamRuns(t *testing.T) {
	w, _, prof := prep(t, "mcf")
	prog, setup := w.Build(2)
	r := RunSlipStream(prog, setup, prof, budget)
	if r.MT.Deadlocked || r.MT.Committed < budget {
		t.Fatalf("slipstream run broken: %+v", r.MT)
	}
}

func TestSlipStreamLeaderKeepsAllMemory(t *testing.T) {
	// SlipStream's A-stream keeps every memory instruction (it removes
	// only ineffectual work), unlike the DLA skeleton.
	w, _, prof := prep(t, "mcf")
	prog, _ := w.Build(2)
	ss := core.GenerateSlipstream(prog, prof)
	for pc := range prog.Insts {
		if prog.Insts[pc].Op.IsMem() && !ss.Baseline.Include[pc] {
			t.Fatalf("memory inst @%d missing from slipstream leader", pc)
		}
	}
	dla := core.Generate(prog, prof)
	if ss.Baseline.Size < dla.Baseline.Size {
		t.Fatalf("slipstream leader (%d) smaller than the DLA skeleton (%d)",
			ss.Baseline.Size, dla.Baseline.Size)
	}
}

func TestCRERuns(t *testing.T) {
	w, _, prof := prep(t, "mcf")
	prog, setup := w.Build(2)
	r := RunCRE(prog, setup, prof, budget)
	if r.MT.Deadlocked || r.MT.Committed < budget {
		t.Fatalf("CRE run broken: committed=%d", r.MT.Committed)
	}
	// CRE's MT predicts for itself: its direction source must never
	// stall fetch on the helper.
	if r.MT.FetchStallBOQ != 0 {
		t.Fatalf("CRE stalled MT fetch %d cycles on helper queue", r.MT.FetchStallBOQ)
	}
}

func TestCREChainsSmallerThanDLASkeleton(t *testing.T) {
	w, _, prof := prep(t, "mcf")
	prog, _ := w.Build(2)
	cre := core.GenerateCRE(prog, prof)
	dla := core.Generate(prog, prof)
	if cre.Baseline.Size > dla.Baseline.Size {
		t.Fatalf("CRE chains (%d) should not exceed the DLA skeleton (%d)",
			cre.Baseline.Size, dla.Baseline.Size)
	}
}

func TestBFetchRunsAndPrefetches(t *testing.T) {
	w := workloads.ByName("libq")
	prog, setup := w.Build(2)
	m := RunBFetch(prog, setup, budget)
	if m.Deadlocked || m.Committed < budget {
		t.Fatal("bfetch run broken")
	}
}

func TestRivalOrderingOnGather(t *testing.T) {
	// On a gather-dominated workload (sparse matvec) the look-ahead
	// thread runs ahead computing gather addresses, so full DLA should
	// beat the prefetch-only CRE — the paper's Fig. 9-b ordering.
	w, _, prof := prep(t, "cg")
	prog, setup := w.Build(2)
	set := core.Generate(prog, prof)

	dla := core.NewSystem(prog, setup, set, prof, core.DLAOptions()).Run(budget)
	cre := RunCRE(prog, setup, prof, budget)
	if dla.IPC() < cre.IPC()*0.95 {
		t.Fatalf("DLA (%.3f) should not lose to CRE (%.3f) on gathers", dla.IPC(), cre.IPC())
	}
}
