// Package rival implements the related designs the paper compares against
// in Fig. 9-b: B-Fetch (branch-predictor-directed prefetching), SlipStream
// (an A-stream/R-stream leader-follower with ineffectual-code removal),
// and CRE (the Continuous Runahead Engine prefetching delinquent-load
// chains into L1). SlipStream and CRE are realized as configurations of
// the DLA machinery with their respective leader programs; B-Fetch is a
// standalone prefetcher wired into a baseline core.
package rival

import (
	"r3dla/internal/branch"
	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
	"r3dla/internal/memsys"
	"r3dla/internal/pipeline"
)

// RunSlipStream executes prog under a SlipStream-style leader thread.
func RunSlipStream(prog *isa.Program, setup func(*emu.Memory), prof *core.Profile, budget uint64) *core.Results {
	set := core.GenerateSlipstream(prog, prof)
	sys := core.NewSystem(prog, setup, set, prof, core.Options{WithBOP: true})
	return sys.Run(budget)
}

// RunCRE executes prog with a Continuous-Runahead-style helper: chains of
// delinquent loads prefetching into the MT's L1, no branch outcome
// delivery. The helper runs on a small runahead engine (the original is a
// 2-wide, 32-entry buffer at the memory controller), not a full core.
func RunCRE(prog *isa.Program, setup func(*emu.Memory), prof *core.Profile, budget uint64) *core.Results {
	set := core.GenerateCRE(prog, prof)
	engine := pipeline.DefaultConfig()
	engine.FetchWidth = 4
	engine.DecodeWidth = 2
	engine.IssueWidth = 2
	engine.CommitWidth = 2
	engine.ROB = 32
	engine.LSQ = 16
	engine.IntFUs = 2
	engine.MemFUs = 2
	engine.FPFUs = 1
	sys := core.NewSystem(prog, setup, set, prof, core.Options{
		WithBOP: true, PrefetchOnly: true, LTCfg: &engine,
	})
	return sys.Run(budget)
}

// bfetchEntry tracks one load PC observed downstream of a branch. The
// B-Fetch table maps branch PCs to up to 4 downstream loads with their
// strides; on a branch prediction it prefetches each load's projected
// next address (the lookahead the real design computes along the
// predicted path).
type bfetchEntry struct {
	loadPC   int32
	lastAddr uint64
	stride   int64
	conf     int8
	valid    bool
}

// RunBFetch executes prog on a baseline core (Table I + BOP) augmented
// with a B-Fetch prefetcher.
func RunBFetch(prog *isa.Program, setup func(*emu.Memory), budget uint64) *pipeline.Metrics {
	mem := emu.NewMemory()
	if setup != nil {
		setup(mem)
	}
	mach := emu.NewMachine(prog, mem)
	feed := &pipeline.MachineFeeder{M: mach, Budget: 0}

	table := make(map[int]*[4]bfetchEntry)
	var lastBranchPC int

	tage := &pipeline.TageSource{P: branch.NewPredictor(branch.DefaultConfig())}
	var c *pipeline.Core
	var priv *memsys.Private

	dir := pipeline.DirFunc(func(pc int, actual bool, now uint64) (bool, bool) {
		pred, ok := tage.PredictAndTrain(pc, actual, now)
		lastBranchPC = pc
		// Prefetch along the predicted path: project each associated
		// load one stride ahead.
		if ents, hit := table[pc]; hit {
			for i := range ents {
				e := &ents[i]
				if e.valid && e.conf >= 2 && e.stride != 0 {
					priv.L1D.Access(uint64(int64(e.lastAddr)+2*e.stride), false, true, now)
				}
			}
		}
		return pred, ok
	})

	c, priv, _ = memsys.NewBaselineCore(pipeline.DefaultConfig(), feed, dir, memsys.Options{WithBOP: true})
	inner := priv.LoadHook()
	c.Hooks.OnLoadAccess = func(d *emu.DynInst, level int, done, now uint64) {
		inner(d, level, done, now)
		// Train: associate this load with the most recent branch.
		ents := table[lastBranchPC]
		if ents == nil {
			ents = new([4]bfetchEntry)
			table[lastBranchPC] = ents
		}
		var slot *bfetchEntry
		for i := range ents {
			if ents[i].valid && ents[i].loadPC == int32(d.PC) {
				slot = &ents[i]
				break
			}
		}
		if slot == nil {
			for i := range ents {
				if !ents[i].valid {
					slot = &ents[i]
					break
				}
			}
		}
		if slot == nil {
			slot = &ents[0]
			*slot = bfetchEntry{}
		}
		if !slot.valid || slot.loadPC != int32(d.PC) {
			*slot = bfetchEntry{loadPC: int32(d.PC), lastAddr: d.EA, valid: true}
			return
		}
		stride := int64(d.EA) - int64(slot.lastAddr)
		if stride == slot.stride {
			if slot.conf < 3 {
				slot.conf++
			}
		} else {
			if slot.conf > 0 {
				slot.conf--
			} else {
				slot.stride = stride
			}
		}
		slot.lastAddr = d.EA
	}
	return c.Run(budget)
}
