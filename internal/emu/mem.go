// Package emu provides the functional (architectural) emulator for the isa
// package: a paged 64-bit word memory, an overlay memory used to contain
// look-ahead speculation, and a Machine that executes one instruction per
// Step, producing the dynamic record stream every timing model consumes.
package emu

const (
	pageShift = 12 // 4096 words = 32 KiB per page
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

type page [pageWords]uint64

// Mem is the minimal memory interface the Machine needs. Addresses are
// byte addresses; accesses are 8-byte-word granular (addr>>3 selects the
// word, low bits are ignored — the workloads keep data 8-byte aligned).
type Mem interface {
	Read(addr uint64) uint64
	Write(addr uint64, v uint64)
}

// Memory is a sparse paged memory. The zero value is not usable; call
// NewMemory.
type Memory struct {
	pages map[uint64]*page

	// owned, when non-nil, marks this Memory as a copy-on-write fork:
	// pages not in the set are shared with the parent image and must be
	// copied before the first write (see Fork).
	owned map[uint64]bool
}

// NewMemory returns an empty memory; all words read as zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Fork returns a copy-on-write copy of m: reads are served from m's
// pages until the fork first writes a page, which is then copied. The
// parent must not be written after the first Fork — the prepared-workload
// images the experiment harness forks per run are frozen by contract
// (exp.Prepared is immutable once built), so runs start from identical
// memory without re-executing the workload's setup, removing the
// dominant per-run allocation cost the profile attributed to setup.
func (m *Memory) Fork() *Memory {
	pages := make(map[uint64]*page, len(m.pages)+8)
	for k, v := range m.pages {
		pages[k] = v
	}
	return &Memory{pages: pages, owned: make(map[uint64]bool, 8)}
}

// Read returns the 64-bit word containing addr.
func (m *Memory) Read(addr uint64) uint64 {
	w := addr >> 3
	p := m.pages[w>>pageShift]
	if p == nil {
		return 0
	}
	return p[w&pageMask]
}

// Write stores v into the 64-bit word containing addr.
func (m *Memory) Write(addr uint64, v uint64) {
	w := addr >> 3
	idx := w >> pageShift
	p := m.pages[idx]
	if p == nil {
		p = new(page)
		m.pages[idx] = p
		if m.owned != nil {
			m.owned[idx] = true
		}
	} else if m.owned != nil && !m.owned[idx] {
		cp := *p
		p = &cp
		m.pages[idx] = p
		m.owned[idx] = true
	}
	p[w&pageMask] = v
}

// Footprint reports the number of allocated pages (for tests/diagnostics).
func (m *Memory) Footprint() int { return len(m.pages) }

// Overlay is a copy-on-write view over a base memory. Writes land in the
// overlay and are visible to subsequent overlay reads; the base is never
// modified. This is the containment mechanism for the look-ahead thread:
// its dirty lines live here and are discarded (Reset) on reboot, exactly
// like the paper's discard-on-eviction private caches, except we never
// lose overlay data to eviction (a fidelity note recorded in DESIGN.md).
type Overlay struct {
	Base  Mem
	dirty map[uint64]uint64 // word address -> value
}

// NewOverlay returns an overlay over base with no local writes.
func NewOverlay(base Mem) *Overlay {
	return &Overlay{Base: base, dirty: make(map[uint64]uint64)}
}

// Read returns the overlay value if written, else the base value.
func (o *Overlay) Read(addr uint64) uint64 {
	if v, ok := o.dirty[addr>>3]; ok {
		return v
	}
	return o.Base.Read(addr)
}

// Write records v in the overlay only.
func (o *Overlay) Write(addr uint64, v uint64) {
	o.dirty[addr>>3] = v
}

// Reset discards all overlay writes (look-ahead reboot).
func (o *Overlay) Reset() {
	if len(o.dirty) > 0 {
		o.dirty = make(map[uint64]uint64)
	}
}

// DirtyWords reports how many distinct words the overlay holds.
func (o *Overlay) DirtyWords() int { return len(o.dirty) }
