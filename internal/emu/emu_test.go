package emu

import (
	"testing"
	"testing/quick"

	"r3dla/internal/isa"
)

// sumProgram computes sum of 1..n into r2 via a loop and stores it at
// address 0x1000.
func sumProgram(n int64) *isa.Program {
	b := isa.NewBuilder("sum")
	b.Li(1, n) // r1 = n
	b.Li(2, 0) // r2 = 0
	b.Label("loop")
	b.R(isa.ADD, 2, 2, 1) // r2 += r1
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "loop")
	b.Li(3, 0x1000)
	b.St(2, 3, 0)
	b.Halt()
	return b.Program()
}

func TestSumLoop(t *testing.T) {
	mem := NewMemory()
	m := NewMachine(sumProgram(10), mem)
	m.Run(10000, nil)
	if !m.Halted {
		t.Fatal("machine did not halt")
	}
	if got := mem.Read(0x1000); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestCallRet(t *testing.T) {
	b := isa.NewBuilder("callret")
	b.Li(1, 5)
	b.Call("double")
	b.Li(3, 0x2000)
	b.St(2, 3, 0)
	b.Halt()
	b.Label("double")
	b.R(isa.ADD, 2, 1, 1)
	b.Ret()
	mem := NewMemory()
	m := NewMachine(b.Program(), mem)
	m.Run(100, nil)
	if got := mem.Read(0x2000); got != 10 {
		t.Fatalf("double(5) = %d, want 10", got)
	}
}

func TestIndirectJump(t *testing.T) {
	b := isa.NewBuilder("jr")
	b.LabelAddr(1, "dest")
	b.Jr(1)
	b.Li(2, 111) // skipped
	b.Halt()
	b.Label("dest")
	b.Li(2, 42)
	b.Halt()
	m := NewMachine(b.Program(), NewMemory())
	m.Run(100, nil)
	if m.Reg[2] != 42 {
		t.Fatalf("r2 = %d, want 42", m.Reg[2])
	}
}

func TestFloatOps(t *testing.T) {
	b := isa.NewBuilder("fp")
	b.Li(1, 3)
	b.R(isa.FCVT, isa.FReg(0), 1, 0) // f0 = 3.0
	b.Li(1, 4)
	b.R(isa.FCVT, isa.FReg(1), 1, 0)                     // f1 = 4.0
	b.R(isa.FMUL, isa.FReg(2), isa.FReg(0), isa.FReg(1)) // f2 = 12.0
	b.R(isa.FADD, isa.FReg(2), isa.FReg(2), isa.FReg(1)) // f2 = 16.0
	b.R(isa.FDIV, isa.FReg(3), isa.FReg(2), isa.FReg(0)) // f3 = 16/3
	b.R(isa.FCMP, 5, isa.FReg(0), isa.FReg(1))           // r5 = (3<4) = 1
	b.Halt()
	m := NewMachine(b.Program(), NewMemory())
	m.Run(100, nil)
	if got := f64(m.Reg[isa.FReg(2)]); got != 16.0 {
		t.Fatalf("f2 = %v, want 16", got)
	}
	if m.Reg[5] != 1 {
		t.Fatalf("fcmp = %d, want 1", m.Reg[5])
	}
}

func TestDivByZeroIsZero(t *testing.T) {
	b := isa.NewBuilder("div0")
	b.Li(1, 7)
	b.R(isa.DIV, 2, 1, isa.RegZero)
	b.Halt()
	m := NewMachine(b.Program(), NewMemory())
	m.Run(10, nil)
	if m.Reg[2] != 0 {
		t.Fatalf("div by zero = %d, want 0", m.Reg[2])
	}
}

func TestRegZeroIsHardwired(t *testing.T) {
	b := isa.NewBuilder("r0")
	b.I(isa.ADDI, isa.RegZero, isa.RegZero, 99)
	b.R(isa.ADD, 1, isa.RegZero, isa.RegZero)
	b.Halt()
	m := NewMachine(b.Program(), NewMemory())
	m.Run(10, nil)
	if m.Reg[1] != 0 {
		t.Fatalf("r0 writable: r1 = %d", m.Reg[1])
	}
}

func TestDynInstRecords(t *testing.T) {
	p := sumProgram(2)
	m := NewMachine(p, NewMemory())
	var branches, loads, stores int
	var lastTaken bool
	m.Run(1000, func(d DynInst) {
		if d.In.Op.IsCondBranch() {
			branches++
			lastTaken = d.Taken
		}
		if d.In.Op.IsLoad() {
			loads++
		}
		if d.In.Op.IsStore() {
			stores++
		}
	})
	if branches != 2 {
		t.Fatalf("branches = %d, want 2", branches)
	}
	if lastTaken {
		t.Fatal("final loop branch should be not-taken")
	}
	if stores != 1 || loads != 0 {
		t.Fatalf("loads/stores = %d/%d, want 0/1", loads, stores)
	}
}

func TestStepForcedOverridesBranch(t *testing.T) {
	b := isa.NewBuilder("forced")
	b.Label("top")
	b.Li(1, 1)
	b.Br(isa.BEQ, 1, isa.RegZero, "top") // actually not taken
	b.Halt()
	m := NewMachine(b.Program(), NewMemory())
	m.Step() // li (expands to one addi)
	d := m.StepForced(true)
	if !d.Taken || d.NextPC != 0 {
		t.Fatalf("forced branch not honored: %+v", d)
	}
	if m.PC != 0 {
		t.Fatalf("PC = %d, want 0", m.PC)
	}
}

func TestHaltedMachineStaysHalted(t *testing.T) {
	b := isa.NewBuilder("h")
	b.Halt()
	m := NewMachine(b.Program(), NewMemory())
	m.Step()
	if !m.Halted {
		t.Fatal("not halted")
	}
	d := m.Step()
	if d.In.Op != isa.HALT || m.PC != 0 {
		t.Fatalf("halted step misbehaved: %+v pc=%d", d, m.PC)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Read(0xdeadbeef0) != 0 {
		t.Fatal("uninitialized memory not zero")
	}
	m.Write(0x10, 42)
	if m.Read(0x10) != 42 {
		t.Fatal("write lost")
	}
	// Word granularity: addr 0x11 hits the same word.
	if m.Read(0x11) != 42 {
		t.Fatal("sub-word aliasing broken")
	}
}

// Property: Memory behaves as a map from word addresses to last-written
// values.
func TestMemoryProperty(t *testing.T) {
	f := func(addrs []uint32, vals []uint64) bool {
		m := NewMemory()
		ref := map[uint64]uint64{}
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a := uint64(addrs[i]) &^ 7
			m.Write(a, vals[i])
			ref[a] = vals[i]
		}
		for a, v := range ref {
			if m.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayContainment(t *testing.T) {
	base := NewMemory()
	base.Write(0x100, 7)
	o := NewOverlay(base)
	if o.Read(0x100) != 7 {
		t.Fatal("overlay does not read through")
	}
	o.Write(0x100, 9)
	o.Write(0x200, 5)
	if o.Read(0x100) != 9 || o.Read(0x200) != 5 {
		t.Fatal("overlay writes not visible locally")
	}
	if base.Read(0x100) != 7 || base.Read(0x200) != 0 {
		t.Fatal("overlay leaked into base")
	}
	if o.DirtyWords() != 2 {
		t.Fatalf("dirty words = %d, want 2", o.DirtyWords())
	}
	o.Reset()
	if o.Read(0x100) != 7 || o.DirtyWords() != 0 {
		t.Fatal("reset did not discard overlay")
	}
}

// Property: two machines running the same program produce identical
// dynamic streams (determinism — required for DLA's LT/MT agreement).
func TestMachineDeterminism(t *testing.T) {
	p := sumProgram(50)
	m1 := NewMachine(p, NewMemory())
	m2 := NewMachine(p, NewMemory())
	for i := 0; i < 500; i++ {
		d1, d2 := m1.Step(), m2.Step()
		if d1.PC != d2.PC || d1.Val != d2.Val || d1.Taken != d2.Taken || d1.EA != d2.EA {
			t.Fatalf("divergence at step %d: %+v vs %+v", i, d1, d2)
		}
		if m1.Halted {
			break
		}
	}
}

func TestCopyArchState(t *testing.T) {
	p := sumProgram(10)
	mt := NewMachine(p, NewMemory())
	lt := NewMachine(p, NewOverlay(NewMemory()))
	for i := 0; i < 5; i++ {
		mt.Step()
	}
	lt.CopyArchState(mt)
	if lt.PC != mt.PC || lt.Reg != mt.Reg {
		t.Fatal("arch state copy incomplete")
	}
}
