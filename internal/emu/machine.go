package emu

import (
	"fmt"
	"math"

	"r3dla/internal/isa"
)

// DynInst is the dynamic record of one executed instruction. It carries
// everything a timing model needs: identity, control outcome, memory
// effective address, and the produced value (for value reuse).
type DynInst struct {
	Seq    uint64    // dynamic sequence number within this Machine
	PC     int       // static instruction index
	In     *isa.Inst // the static instruction
	NextPC int       // architectural next PC
	Taken  bool      // conditional branch outcome (or true for taken jumps)
	EA     uint64    // effective address for loads/stores
	Val    uint64    // value written to Dest (meaningful when HasVal)
	HasVal bool      // instruction produced a register value
	Tag    uint64    // opaque tag stamped by the consumer (e.g. BOQ epoch)
}

// Machine is an architectural-state interpreter for one thread.
type Machine struct {
	Prog   *isa.Program
	Reg    [isa.NumRegs]uint64
	Mem    Mem
	PC     int
	Halted bool
	Seq    uint64
}

// NewMachine returns a Machine at the program entry with zeroed registers.
func NewMachine(p *isa.Program, mem Mem) *Machine {
	return &Machine{Prog: p, Mem: mem, PC: p.Entry}
}

// CopyArchState copies registers, PC and halt status from src (the reboot
// path: LT re-initialized from MT).
func (m *Machine) CopyArchState(src *Machine) {
	m.Reg = src.Reg
	m.PC = src.PC
	m.Halted = src.Halted
}

func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func bits(f float64) uint64   { return math.Float64bits(f) }
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Step executes the instruction at PC and returns its dynamic record.
// Stepping a halted machine returns a HALT record without advancing.
func (m *Machine) Step() DynInst {
	if m.Halted {
		return DynInst{Seq: m.Seq, PC: m.PC, In: &haltInst, NextPC: m.PC}
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Insts) {
		m.Halted = true
		return DynInst{Seq: m.Seq, PC: m.PC, In: &haltInst, NextPC: m.PC}
	}
	in := &m.Prog.Insts[m.PC]
	d := m.exec(in)
	m.Seq++
	m.PC = d.NextPC
	return d
}

var haltInst = isa.Inst{Op: isa.HALT}

// StepForced executes the conditional branch at PC with a forced direction
// instead of evaluating its condition. It is used by look-ahead skeletons
// that converted biased branches to unconditional flow. For non-branch
// instructions it falls back to Step.
func (m *Machine) StepForced(taken bool) DynInst {
	if m.Halted || m.PC < 0 || m.PC >= len(m.Prog.Insts) {
		return m.Step()
	}
	in := &m.Prog.Insts[m.PC]
	if !in.Op.IsCondBranch() {
		return m.Step()
	}
	next := m.PC + 1
	if taken {
		next = int(in.Targ)
	}
	d := DynInst{Seq: m.Seq, PC: m.PC, In: in, NextPC: next, Taken: taken}
	m.Seq++
	m.PC = next
	return d
}

// exec executes in at the current PC, updating register/memory state, and
// returns the dynamic record. It does not advance PC or Seq.
func (m *Machine) exec(in *isa.Inst) DynInst {
	d := DynInst{Seq: m.Seq, PC: m.PC, In: in, NextPC: m.PC + 1}
	r := &m.Reg
	rv := func(i uint8) uint64 {
		if i == isa.RegZero {
			return 0
		}
		return r[i]
	}
	setd := func(reg uint8, v uint64) {
		d.Val, d.HasVal = v, true
		if reg != isa.RegZero {
			r[reg] = v
		}
	}

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		setd(in.Rd, rv(in.Rs1)+rv(in.Rs2))
	case isa.SUB:
		setd(in.Rd, rv(in.Rs1)-rv(in.Rs2))
	case isa.MUL:
		setd(in.Rd, rv(in.Rs1)*rv(in.Rs2))
	case isa.DIV:
		den := rv(in.Rs2)
		if den == 0 {
			setd(in.Rd, 0)
		} else {
			setd(in.Rd, rv(in.Rs1)/den)
		}
	case isa.AND:
		setd(in.Rd, rv(in.Rs1)&rv(in.Rs2))
	case isa.OR:
		setd(in.Rd, rv(in.Rs1)|rv(in.Rs2))
	case isa.XOR:
		setd(in.Rd, rv(in.Rs1)^rv(in.Rs2))
	case isa.SHL:
		setd(in.Rd, rv(in.Rs1)<<(rv(in.Rs2)&63))
	case isa.SHR:
		setd(in.Rd, rv(in.Rs1)>>(rv(in.Rs2)&63))
	case isa.SLT:
		setd(in.Rd, b2u(int64(rv(in.Rs1)) < int64(rv(in.Rs2))))
	case isa.ADDI:
		setd(in.Rd, rv(in.Rs1)+uint64(in.Imm))
	case isa.ANDI:
		setd(in.Rd, rv(in.Rs1)&uint64(in.Imm))
	case isa.ORI:
		setd(in.Rd, rv(in.Rs1)|uint64(in.Imm))
	case isa.XORI:
		setd(in.Rd, rv(in.Rs1)^uint64(in.Imm))
	case isa.SHLI:
		setd(in.Rd, rv(in.Rs1)<<(uint64(in.Imm)&63))
	case isa.SHRI:
		setd(in.Rd, rv(in.Rs1)>>(uint64(in.Imm)&63))
	case isa.SLTI:
		setd(in.Rd, b2u(int64(rv(in.Rs1)) < in.Imm))
	case isa.LUI:
		setd(in.Rd, uint64(in.Imm)<<32)

	case isa.FADD:
		setd(in.Rd, bits(f64(rv(in.Rs1))+f64(rv(in.Rs2))))
	case isa.FSUB:
		setd(in.Rd, bits(f64(rv(in.Rs1))-f64(rv(in.Rs2))))
	case isa.FMUL:
		setd(in.Rd, bits(f64(rv(in.Rs1))*f64(rv(in.Rs2))))
	case isa.FDIV:
		setd(in.Rd, bits(f64(rv(in.Rs1))/f64(rv(in.Rs2))))
	case isa.FCVT:
		setd(in.Rd, bits(float64(int64(rv(in.Rs1)))))
	case isa.FCMP:
		setd(in.Rd, b2u(f64(rv(in.Rs1)) < f64(rv(in.Rs2))))

	case isa.LD, isa.FLD:
		d.EA = rv(in.Rs1) + uint64(in.Imm)
		setd(in.Rd, m.Mem.Read(d.EA))
	case isa.ST, isa.FST:
		d.EA = rv(in.Rs1) + uint64(in.Imm)
		m.Mem.Write(d.EA, rv(in.Rs2))

	case isa.BEQ:
		d.Taken = rv(in.Rs1) == rv(in.Rs2)
	case isa.BNE:
		d.Taken = rv(in.Rs1) != rv(in.Rs2)
	case isa.BLT:
		d.Taken = int64(rv(in.Rs1)) < int64(rv(in.Rs2))
	case isa.BGE:
		d.Taken = int64(rv(in.Rs1)) >= int64(rv(in.Rs2))

	case isa.JMP:
		d.Taken = true
		d.NextPC = int(in.Targ)
	case isa.JR:
		d.Taken = true
		d.NextPC = int(rv(in.Rs1))
	case isa.CALL:
		d.Taken = true
		setd(isa.RegLink, uint64(m.PC+1))
		d.NextPC = int(in.Targ)
	case isa.CALR:
		d.Taken = true
		tgt := int(rv(in.Rs1))
		setd(isa.RegLink, uint64(m.PC+1))
		d.NextPC = tgt
	case isa.RET:
		d.Taken = true
		d.NextPC = int(rv(isa.RegLink))

	case isa.HALT:
		m.Halted = true
		d.NextPC = m.PC

	default:
		panic(fmt.Sprintf("emu: unimplemented opcode %v", in.Op))
	}

	if in.Op.IsCondBranch() {
		if d.Taken {
			d.NextPC = int(in.Targ)
		} else {
			d.NextPC = m.PC + 1
		}
	}
	return d
}

// Run executes up to budget instructions or until HALT, discarding the
// records. It returns the number of instructions executed. It is the fast
// path used by profiling and training runs that attach their own observers.
func (m *Machine) Run(budget uint64, observe func(DynInst)) uint64 {
	var n uint64
	for n < budget && !m.Halted {
		d := m.Step()
		n++
		if observe != nil {
			observe(d)
		}
	}
	return n
}
