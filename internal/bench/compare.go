package bench

import (
	"errors"
	"fmt"
)

// Tolerances bound how far a fresh measurement may drift above the
// committed trajectory before Check fails.
type Tolerances struct {
	// NsRatio is the wall-time band: a fresh ns/op may exceed the
	// committed ns/op by this factor. Wide by design — CI runners are
	// shared and slow, so this catches order-of-magnitude regressions,
	// while the alloc gate below catches the silent creep.
	NsRatio float64

	// AllocRatio is the allocation band: allocs/op is deterministic up
	// to map-growth scheduling, so the band is tight.
	AllocRatio float64

	// AllocSlack is an absolute allowance on top of AllocRatio, so
	// near-zero benchmarks (a queue op at 0 allocs) don't fail on +1.
	AllocSlack int64
}

// DefaultTolerances is the CI gate configuration.
func DefaultTolerances() Tolerances {
	return Tolerances{NsRatio: 2.5, AllocRatio: 1.10, AllocSlack: 16}
}

// Improvement floors the committed file must prove on the headline
// benchmark (acceptance criteria of the optimization pass): the seed-core
// baseline must be at least NsX slower and AllocsX more allocation-heavy
// than the current core.
type Improvement struct {
	Name    string
	NsX     float64
	AllocsX float64
}

// HeadlineImprovement is the floor the committed BENCH_core.json must
// demonstrate on the single-cell run benchmark.
func HeadlineImprovement() Improvement {
	return Improvement{Name: "CoreRun/mcf_r3", NsX: 1.5, AllocsX: 2.0}
}

// Check compares a fresh run against the committed trajectory file:
//
//  1. every committed benchmark must have been re-measured, and each
//     fresh measurement must stay inside the tolerance band;
//  2. when the committed file carries a Baseline section, its in-file
//     improvement ratios must meet the floors (both sections of the
//     committed file were measured on one machine, so the ratio is
//     meaningful even though CI hardware differs).
//
// It returns all violations joined into one error, or nil.
func Check(fresh []Result, committed *File, tol Tolerances, floors ...Improvement) error {
	byName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	var errs []error
	for _, want := range committed.Benchmarks {
		got, ok := byName[want.Name]
		if !ok {
			errs = append(errs, fmt.Errorf("%s: committed but not re-measured", want.Name))
			continue
		}
		if maxNs := want.NsPerOp * tol.NsRatio; got.NsPerOp > maxNs {
			errs = append(errs, fmt.Errorf("%s: ns/op regression: %.0f > %.0f (committed %.0f x band %.2f)",
				want.Name, got.NsPerOp, maxNs, want.NsPerOp, tol.NsRatio))
		}
		maxAllocs := int64(float64(want.AllocsPerOp)*tol.AllocRatio) + tol.AllocSlack
		if got.AllocsPerOp > maxAllocs {
			errs = append(errs, fmt.Errorf("%s: allocs/op regression: %d > %d (committed %d x band %.2f + %d)",
				want.Name, got.AllocsPerOp, maxAllocs, want.AllocsPerOp, tol.AllocRatio, tol.AllocSlack))
		}
	}
	for _, fl := range floors {
		base, okB := committed.Baseline[fl.Name]
		cur, okC := committed.Lookup(fl.Name)
		if !okB || !okC {
			errs = append(errs, fmt.Errorf("%s: improvement floor declared but baseline/current missing from committed file", fl.Name))
			continue
		}
		if cur.NsPerOp <= 0 || cur.AllocsPerOp <= 0 {
			errs = append(errs, fmt.Errorf("%s: committed current measurement is empty", fl.Name))
			continue
		}
		if r := base.NsPerOp / cur.NsPerOp; r < fl.NsX {
			errs = append(errs, fmt.Errorf("%s: committed ns/op improvement %.2fx is below the %.1fx floor", fl.Name, r, fl.NsX))
		}
		if r := float64(base.AllocsPerOp) / float64(cur.AllocsPerOp); r < fl.AllocsX {
			errs = append(errs, fmt.Errorf("%s: committed allocs/op improvement %.2fx is below the %.1fx floor", fl.Name, r, fl.AllocsX))
		}
	}
	return errors.Join(errs...)
}
