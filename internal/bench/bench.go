// Package bench is the in-repo performance trajectory: a fixed suite of
// benchmarks over the simulation core (and the fleet distribution layer),
// run programmatically through testing.Benchmark, serialized to the
// committed BENCH_core.json / BENCH_fleet.json files, and diffed in CI by
// Check so a ns/op or allocs/op regression beyond the tolerance band is a
// red X instead of a silent drift.
//
// The headline benchmark is CoreRun/mcf_r3 — one warm-prep cycle-accurate
// single-cell simulation, the unit of work every sweep, experiment and
// fleet request fans out over. The committed file records both the seed
// core (Baseline section, measured before the optimization pass and
// carried forward verbatim) and the current core, so the speedup is a
// reviewable artifact rather than a claim.
package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"r3dla/internal/core"
	"r3dla/internal/fleet"
	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// Def is one suite member: a stable name and a standard benchmark body.
type Def struct {
	Name string
	F    func(b *testing.B)
}

// CoreBudget is the committed-instruction budget of the single-cell
// benchmarks. Changing it invalidates the committed trajectory.
const CoreBudget = 10_000

// coreWorkload is the workload the core suite exercises: mcf is the
// paper's poster child (highest L2 MPKI in the suite, heavy look-ahead
// activity, all four R3 mechanisms engaged under the r3 preset).
const coreWorkload = "mcf"

// prepFor prepares coreWorkload once at the suite budget; every
// iteration then measures simulation only, never preparation.
func prepFor(tb testing.TB) *lab.Prepared {
	l, err := lab.New(lab.WithBudget(CoreBudget))
	if err != nil {
		tb.Fatal(err)
	}
	p, err := l.Prepare(context.Background(), coreWorkload)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// CoreSuite returns the core benchmarks in presentation order.
func CoreSuite() []Def {
	var prep *lab.Prepared
	getPrep := func(b *testing.B) *lab.Prepared {
		b.Helper()
		if prep == nil {
			prep = prepFor(b)
		}
		return prep
	}
	runOnce := func(b *testing.B, opt core.Options) {
		p := getPrep(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys := core.NewSystemWithMemory(p.Prog, p.Image().Fork(), p.Set, p.Prof, opt)
			if r := sys.Run(CoreBudget); r.MT.Committed == 0 {
				b.Fatal("no instructions committed")
			}
		}
	}
	return []Def{
		{
			// The headline: one full R3-DLA cell, system construction +
			// cycle loop, at a warm prep.
			Name: "CoreRun/mcf_r3",
			F:    func(b *testing.B) { runOnce(b, core.R3Options()) },
		},
		{
			Name: "CoreRun/mcf_dla",
			F:    func(b *testing.B) { runOnce(b, core.DLAOptions()) },
		},
		{
			Name: "CoreRun/mcf_baseline",
			F:    func(b *testing.B) { runOnce(b, core.Options{Disable: true, WithBOP: true}) },
		},
		{
			// The binary-analysis pass alone: profile-driven skeleton
			// generation for the whole recycle pool.
			Name: "SkeletonGen/mcf",
			F: func(b *testing.B) {
				p := getPrep(b)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if s := core.Generate(p.Prog, p.Prof); s.Baseline == nil {
						b.Fatal("no baseline skeleton")
					}
				}
			},
		},
		{
			// Queue substrate: one BOQ push+pop and one FQ push+pop per op.
			Name: "Queues/boq_fq",
			F: func(b *testing.B) {
				boq := core.NewBOQ(512)
				fq := core.NewFQ(128)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					boq.Push(i&1 == 0)
					boq.Pop()
					fq.Push(core.FQEntry{PC: i, Addr: uint64(i)})
					fq.Pop()
				}
			},
		},
	}
}

// FleetSweepSpec is the fixed grid of the fleet suite (mirrors the
// BenchmarkFleetSweep grid in bench_test.go).
func FleetSweepSpec(budget uint64) sweep.Spec {
	return sweep.Spec{
		Workloads: []string{"mcf"},
		Budget:    budget,
		Axes: sweep.Axes{
			Preset:  []string{"dla", "r3"},
			BOQSize: []int{64, 512},
		},
	}
}

// fleetBudget keeps the fleet suite CI-friendly; the delta between the
// members is the interesting number, not the absolute time.
const fleetBudget = 6_000

// FleetSuite returns the distribution-layer benchmarks: the same fixed
// sweep locally, through one r3dlad-shaped server, and sharded over
// three. Fresh labs/servers per iteration so singleflight caches never
// turn later iterations into cache reads.
func FleetSuite() []Def {
	bench := func(nBackends int) func(b *testing.B) {
		return func(b *testing.B) {
			spec := FleetSweepSpec(fleetBudget)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				runner, cleanup, err := newFleetRunner(nBackends)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := sweep.Run(context.Background(), runner, spec, sweep.Options{}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				cleanup()
				b.StartTimer()
			}
		}
	}
	return []Def{
		{Name: "FleetSweep/local", F: bench(0)},
		{Name: "FleetSweep/1backend", F: bench(1)},
		{Name: "FleetSweep/3backends", F: bench(3)},
	}
}

// newFleetRunner builds the sweep runner of one fleet-bench iteration:
// an in-process Lab for 0 backends, otherwise a Pool over n
// r3dlad-shaped httptest servers.
func newFleetRunner(n int) (sweep.Runner, func(), error) {
	if n == 0 {
		l, err := lab.New(lab.WithBudget(fleetBudget))
		return l, func() {}, err
	}
	var members []fleet.Backend
	var servers []*httptest.Server
	for j := 0; j < n; j++ {
		l, err := lab.New(lab.WithBudget(fleetBudget))
		if err != nil {
			return nil, nil, err
		}
		h := lab.NewServer(l)
		h.Handle("POST /v1/sweeps", sweep.NewHandler(l, h))
		srv := httptest.NewServer(h)
		servers = append(servers, srv)
		r, err := fleet.NewRemote(srv.URL)
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		members = append(members, r)
	}
	pool, err := fleet.NewPool(members)
	if err != nil {
		return nil, nil, err
	}
	return pool, func() {
		pool.Close()
		for _, srv := range servers {
			srv.Close()
		}
	}, nil
}

// Suite resolves a suite by name ("core" or "fleet").
func Suite(name string) ([]Def, error) {
	switch name {
	case "core":
		return CoreSuite(), nil
	case "fleet":
		return FleetSuite(), nil
	}
	return nil, fmt.Errorf("bench: unknown suite %q (want core or fleet)", name)
}

// RunSuite executes the defs in order and returns one Result per def.
// Benchmark timing honors the testing benchtime configured by the caller
// (see cmd/r3dla's bench subcommand).
func RunSuite(defs []Def, progress func(Result)) []Result {
	out := make([]Result, 0, len(defs))
	for _, d := range defs {
		br := testing.Benchmark(d.F)
		r := Result{
			Name:        d.Name,
			Iterations:  br.N,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		out = append(out, r)
		if progress != nil {
			progress(r)
		}
	}
	return out
}
