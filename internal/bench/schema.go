package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion guards the committed file format.
const SchemaVersion = 1

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// File is the committed trajectory document (BENCH_core.json,
// BENCH_fleet.json): the current measurements plus, for the core suite,
// the seed-core baseline the improvement is asserted against.
type File struct {
	Schema     int      `json:"schema"`
	Suite      string   `json:"suite"`
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`

	// Baseline holds the pre-optimization (seed core) measurements,
	// taken on the same machine as the Benchmarks section of the commit
	// that introduced the file, keyed by benchmark name. CI asserts the
	// in-file improvement ratios, which are machine-consistent because
	// both sections were measured together.
	Baseline map[string]Result `json:"baseline,omitempty"`
}

// ReadFile loads a trajectory file.
func ReadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema %d (want %d)", path, f.Schema, SchemaVersion)
	}
	return &f, nil
}

// WriteFile writes f to path with stable formatting.
func (f *File) WriteFile(path string) error {
	sort.SliceStable(f.Benchmarks, func(i, j int) bool { return f.Benchmarks[i].Name < f.Benchmarks[j].Name })
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Lookup finds a benchmark by name in the Benchmarks section.
func (f *File) Lookup(name string) (Result, bool) {
	for _, r := range f.Benchmarks {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}
