package limit

import (
	"testing"

	"r3dla/internal/emu"
	"r3dla/internal/workloads"
)

func run(name string, window int, real bool) float64 {
	w := workloads.ByName(name)
	prog, setup := w.Build(2)
	return IPC(prog, func(m *emu.Memory) { setup(m) }, Config{Window: window, Real: real, Budget: 40_000})
}

func TestIdealParallelismGrowsWithWindow(t *testing.T) {
	ipc128 := run("bzip", 128, false)
	ipc2048 := run("bzip", 2048, false)
	if ipc2048 < ipc128 {
		t.Fatalf("window growth reduced IPC: %f -> %f", ipc128, ipc2048)
	}
	if ipc128 <= 0 {
		t.Fatal("zero ideal IPC")
	}
}

func TestRealConstraintsReduceIPC(t *testing.T) {
	// Fig. 1's headline: real supply constraints cut implicit parallelism
	// by a large factor.
	for _, name := range []string{"mcf", "bzip", "omnet"} {
		ideal := run(name, 512, false)
		real := run(name, 512, true)
		if real >= ideal {
			t.Fatalf("%s: real (%f) >= ideal (%f)", name, real, ideal)
		}
	}
}

func TestIdealGapIsLargeForMemoryBound(t *testing.T) {
	ideal := run("mcf", 2048, false)
	real := run("mcf", 2048, true)
	if ideal/real < 2 {
		t.Fatalf("mcf ideal/real = %.2f, expected a large gap", ideal/real)
	}
}

func TestSerialChainLimitsIdealIPC(t *testing.T) {
	// A serial dependency chain caps ideal IPC near 1 regardless of
	// window; use md5 (long mixing chains).
	ipc := run("md5", 2048, false)
	if ipc > 4 {
		t.Fatalf("md5 ideal IPC %f too high for a serial-chain workload", ipc)
	}
}
