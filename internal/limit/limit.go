// Package limit implements the Fig. 1 limit study: the implicit
// parallelism of a program measured with a moving instruction window,
// under an idealized instruction/data supply ("ideal") and under
// realistic branch misprediction and cache miss constraints ("real").
package limit

import (
	"r3dla/internal/branch"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
	"r3dla/internal/memsys"
)

// Config selects the study's parameters.
type Config struct {
	Window int    // moving window size (128 / 512 / 2048 in Fig. 1)
	Real   bool   // apply realistic supply constraints
	Budget uint64 // dynamic instructions to analyze
}

// IPC performs the dataflow-limit analysis: each instruction is scheduled
// at max(operand-ready times, window constraint) + its latency; IPC is
// instructions over the critical-path span.
//
// In ideal mode loads cost an L1 hit and branches are free (perfect
// prediction). In real mode load latencies come from a cache-hierarchy
// simulation of the same trace and every mispredicted branch (TAGE)
// serializes younger instructions behind its resolution plus a redirect
// penalty.
func IPC(prog *isa.Program, setup func(*emu.Memory), cfg Config) float64 {
	mem := emu.NewMemory()
	if setup != nil {
		setup(mem)
	}
	m := emu.NewMachine(prog, mem)

	var pred *branch.Predictor
	var hier *memsys.Private
	if cfg.Real {
		pred = branch.NewPredictor(branch.DefaultConfig())
		hier = memsys.NewPrivate(memsys.NewShared(), memsys.Options{WithBOP: true})
	}

	w := cfg.Window
	ring := make([]uint64, w) // finish times of the last w instructions
	regReady := make([]uint64, isa.NumRegs)
	memReady := make(map[uint64]uint64) // word -> store finish time

	var maxT uint64
	var n uint64
	var fetchFloor uint64 // serialization point from mispredicted branches
	var buf [2]uint8

	const (
		aluLat = 1
		l1Lat  = 3
		redir  = 14
	)

	for n = 0; n < cfg.Budget && !m.Halted; n++ {
		d := m.Step()
		op := d.In.Op

		start := fetchFloor
		if w > 0 {
			if t := ring[n%uint64(w)]; t > start {
				start = t // window: can't start before inst n-w finished
			}
		}
		for _, r := range d.In.Sources(buf[:0]) {
			if r == isa.RegZero {
				continue
			}
			if regReady[r] > start {
				start = regReady[r]
			}
		}

		var lat uint64 = aluLat
		switch {
		case op.IsLoad():
			lat = l1Lat
			if cfg.Real {
				res := hier.L1D.Access(d.EA, false, false, start)
				lat = res.Done - start
			}
			if t := memReady[d.EA>>3]; t > start {
				start = t
			}
		case op.IsStore():
			lat = 1
			if cfg.Real {
				hier.L1D.Access(d.EA, true, false, start)
			}
			memReady[d.EA>>3] = start + 1
		case op == isa.MUL:
			lat = 3
		case op == isa.DIV:
			lat = 12
		case op.Class() == isa.ClassFP:
			lat = 4
		case op == isa.FDIV:
			lat = 16
		}

		finish := start + lat
		if cfg.Real && op.IsCondBranch() {
			p := pred.Predict(d.PC)
			pred.Update(d.PC, d.Taken)
			if p != d.Taken {
				// Younger instructions wait for resolution + redirect.
				if finish+redir > fetchFloor {
					fetchFloor = finish + redir
				}
			}
		}

		if dst := d.In.Dest(); dst != isa.NoReg && dst != isa.RegZero {
			regReady[dst] = finish
		}
		if w > 0 {
			ring[n%uint64(w)] = finish
		}
		if finish > maxT {
			maxT = finish
		}
	}
	if maxT == 0 {
		return 0
	}
	return float64(n) / float64(maxT)
}
