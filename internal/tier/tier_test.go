package tier

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"r3dla/internal/lab"
	"r3dla/internal/prepcache"
)

const testBudget = 2000

// Shared cycle-accurate lab + calibrator: calibration is the expensive
// part of these tests, so every test reuses one capture per workload.
var (
	fixOnce sync.Once
	fixLab  *lab.Lab
	fixCal  *Calibrator
)

func fixture(t *testing.T) (*lab.Lab, *Calibrator) {
	t.Helper()
	fixOnce.Do(func() {
		l, err := lab.New(lab.WithBudget(testBudget))
		if err != nil {
			panic(err)
		}
		fixLab = l
		fixCal = NewCalibrator(l, testBudget, nil)
	})
	return fixLab, fixCal
}

func intp(v int) *int       { return &v }
func boolp(v bool) *bool    { return &v }
func u64p(v uint64) *uint64 { return &v }

// testCells is a small but diverse cell set: presets, queue sizings, the
// fetch buffer toggle, reboot cost and core sizing all vary.
func testCells() []lab.RunRequest {
	specs := []lab.ConfigSpec{
		{Preset: "baseline"},
		{Preset: "dla"},
		{Preset: "dla", FetchBuffer: boolp(true)},
		{Preset: "r3"},
		{Preset: "r3", BOQSize: intp(64)},
		{Preset: "r3", BOQSize: intp(2048), VQSize: intp(128)},
		{Preset: "r3", RebootCost: u64p(512)},
		{Preset: "r3", Cores: &lab.CoreSpec{Model: "half"}},
	}
	reqs := make([]lab.RunRequest, len(specs))
	for i, s := range specs {
		reqs[i] = lab.RunRequest{Workload: "mcf", Config: s, Budget: testBudget}
	}
	return reqs
}

type runner interface {
	Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error)
}

func runAll(t *testing.T, r runner, reqs []lab.RunRequest) []*lab.RunResult {
	t.Helper()
	out := make([]*lab.RunResult, len(reqs))
	for i, req := range reqs {
		res, err := r.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		out[i] = res
	}
	return out
}

// TestAnalyticDeterministicOrderIndependent pins the tier determinism
// contract: any evaluation order, any concurrency, fresh or reused
// runner — identical results cell for cell.
func TestAnalyticDeterministicOrderIndependent(t *testing.T) {
	_, cal := fixture(t)
	reqs := testCells()
	forward := runAll(t, NewAnalyticRunner(cal), reqs)

	// Reverse order on a fresh runner (cold memo).
	rev := NewAnalyticRunner(cal)
	backward := make([]*lab.RunResult, len(reqs))
	for i := len(reqs) - 1; i >= 0; i-- {
		res, err := rev.Run(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		backward[i] = res
	}

	// Fully concurrent on a third runner.
	conc := NewAnalyticRunner(cal)
	parallel := make([]*lab.RunResult, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := conc.Run(context.Background(), reqs[i])
			if err != nil {
				t.Error(err)
				return
			}
			parallel[i] = res
		}(i)
	}
	wg.Wait()

	for i := range reqs {
		if !reflect.DeepEqual(forward[i], backward[i]) {
			t.Errorf("cell %d: forward vs backward diverge:\n%+v\n%+v", i, forward[i], backward[i])
		}
		if !reflect.DeepEqual(forward[i], parallel[i]) {
			t.Errorf("cell %d: sequential vs concurrent diverge:\n%+v\n%+v", i, forward[i], parallel[i])
		}
	}
}

// TestAnalyticDistinguishesCells guards against the estimator collapsing
// to a constant: different configurations must price differently, and
// the R3 estimate must beat the baseline estimate (as it does in every
// cycle-accurate run).
func TestAnalyticDistinguishesCells(t *testing.T) {
	_, cal := fixture(t)
	res := runAll(t, NewAnalyticRunner(cal), testCells())
	distinct := make(map[uint64]bool)
	for _, r := range res {
		distinct[r.Cycles] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("estimator collapsed: only %d distinct cycle counts across %d cells", len(distinct), len(res))
	}
	if res[3].IPC <= res[0].IPC {
		t.Fatalf("analytic tier ranks r3 (%.3f) below baseline (%.3f)", res[3].IPC, res[0].IPC)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	_, cal := fixture(t)
	reqs := testCells()
	a := runAll(t, NewMonteCarloRunner(cal, 7), reqs)
	b := runAll(t, NewMonteCarloRunner(cal, 7), reqs)
	for i := range reqs {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("cell %d: two runs with the same seed diverge:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c := runAll(t, NewMonteCarloRunner(cal, 8), reqs)
	var moved bool
	for i := range reqs {
		if a[i].Cycles != c[i].Cycles {
			moved = true
		}
	}
	if !moved {
		t.Error("changing the seed changed nothing — the sampler is not actually sampling")
	}
}

// TestEstimatorErrorBand is the estimator-error golden: on three
// workloads and a small probe set, both tiers must land within a stated
// MAPE band of the cycle-accurate ground truth. The band is generous —
// these are steering estimates, not replacements — but it pins the
// estimator to reality: a refactor that breaks calibration or the
// scaling factors blows way past it.
func TestEstimatorErrorBand(t *testing.T) {
	l, cal := fixture(t)
	const band = 0.15 // MAPE ≤ 15% (measured ~3% on the seed calibration)
	probes := []lab.ConfigSpec{
		{Preset: "r3"},
		{Preset: "dla"},
		{Preset: "r3", BOQSize: intp(64)},
	}
	for _, tierRun := range []struct {
		name string
		r    runner
	}{
		{"analytic", NewAnalyticRunner(cal)},
		{"mc", NewMonteCarloRunner(cal, 7)},
	} {
		var sum float64
		var n int
		for _, wl := range []string{"mcf", "gobmk", "bzip"} {
			for _, spec := range probes {
				req := lab.RunRequest{Workload: wl, Config: spec, Budget: testBudget}
				truth, err := l.Run(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				est, err := tierRun.r.Run(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if est.Workload != truth.Workload || est.Config != truth.Config || est.Budget != truth.Budget {
					t.Fatalf("%s: estimate carries wrong identity: %s/%s@%d", tierRun.name, est.Workload, est.Config, est.Budget)
				}
				sum += math.Abs(est.IPC-truth.IPC) / truth.IPC
				n++
			}
		}
		mape := sum / float64(n)
		t.Logf("%s tier MAPE over %d probes: %.3f", tierRun.name, n, mape)
		if mape > band {
			t.Errorf("%s tier MAPE %.3f exceeds the %.2f band", tierRun.name, mape, band)
		}
	}
}

// TestCalibrationCacheReuse proves the "captured once, cached through
// prepcache" contract: a second process (fresh Lab over the same cache
// directory) prices cells without a single simulation.
func TestCalibrationCacheReuse(t *testing.T) {
	dir := t.TempDir()
	pc, err := prepcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}

	l1, err := lab.New(lab.WithBudget(testBudget), lab.WithPrepCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCalibrator(l1, testBudget, pc)
	cal1, err := c1.Get(context.Background(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if l1.RunCount() == 0 {
		t.Fatal("cold calibration ran no simulations?")
	}

	l2, err := lab.New(lab.WithBudget(testBudget), lab.WithPrepCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCalibrator(l2, testBudget, pc)
	cal2, err := c2.Get(context.Background(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if n := l2.RunCount(); n != 0 {
		t.Fatalf("warm calibration still ran %d simulations", n)
	}
	if !reflect.DeepEqual(cal1, cal2) {
		t.Fatal("calibration loaded from the blob differs from the captured one")
	}

	// And the runner built over the warm calibrator produces identical
	// estimates to one over the cold calibrator.
	req := lab.RunRequest{Workload: "mcf", Config: lab.ConfigSpec{Preset: "r3"}, Budget: testBudget}
	r1, err := NewAnalyticRunner(c1).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewAnalyticRunner(c2).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("estimates diverge across processes:\n%+v\n%+v", r1, r2)
	}
}

// TestBudgetDefaultsToLab covers the Budget==0 path: the tier must fall
// back to the calibrator lab's default, mirroring RunPrepared.
func TestBudgetDefaultsToLab(t *testing.T) {
	_, cal := fixture(t)
	r := NewAnalyticRunner(cal)
	res, err := r.Run(context.Background(), lab.RunRequest{Workload: "mcf", Config: lab.ConfigSpec{Preset: "r3"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != testBudget {
		t.Fatalf("budget defaulted to %d, want the lab default %d", res.Budget, testBudget)
	}
	if res.Committed != testBudget {
		t.Fatalf("committed %d, want %d", res.Committed, testBudget)
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	_, cal := fixture(t)
	r := NewAnalyticRunner(cal)
	_, err := r.Run(context.Background(), lab.RunRequest{Workload: "nope", Config: lab.ConfigSpec{Preset: "r3"}})
	if err == nil {
		t.Fatal("unknown workload priced without error")
	}
}
