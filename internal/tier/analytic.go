package tier

import (
	"context"
	"sync"

	"r3dla/internal/analytic"
	"r3dla/internal/lab"
)

// AnalyticRunner estimates RunResults through the Appendix B Markov
// fetch-buffer model: the cell's effective fetch-queue capacity is priced
// by the chain's expected bubble rate, scaled off the preset's
// cycle-accurate anchor, with structural deltas priced by closed-form
// factors. A Run costs one steady-state solve (memoized per workload ×
// capacity), so the full 10^5-cell rung of a ladder explore is cheaper
// than a single cycle-accurate cell.
//
// Results are pure functions of (workload, config, budget) and the
// calibration, so they are deterministic and order-independent under any
// concurrency.
type AnalyticRunner struct {
	cal *Calibrator

	mu  sync.Mutex
	eff map[effKey]float64
}

type effKey struct {
	workload string
	capacity int
}

// NewAnalyticRunner builds the analytic tier over a calibrator.
func NewAnalyticRunner(c *Calibrator) *AnalyticRunner {
	return &AnalyticRunner{cal: c, eff: make(map[effKey]float64)}
}

// Run satisfies the sweep engine's Runner contract.
func (r *AnalyticRunner) Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
	cfg, err := req.Config.Config()
	if err != nil {
		return nil, err
	}
	cal, err := r.cal.Get(ctx, req.Workload)
	if err != nil {
		return nil, err
	}
	budget := req.Budget
	if budget == 0 {
		budget = r.cal.l.Budget()
	}

	opt := cfg.SystemOptions()
	ref := presetOptions(cfg.Preset())
	anchor := cal.Anchors[cfg.Preset()]

	ipc := anchor.IPC
	// Frontend: the Markov chain prices the cell's fetch-queue depth
	// relative to the depth the anchor ran with (this is where the fetch
	// buffer feature and FetchBufSize sizing show up).
	fCell := r.frontendEff(cal, capacityOf(opt))
	fRef := r.frontendEff(cal, capacityOf(ref))
	if fRef > 0 {
		ipc *= fCell / fRef
	}
	ipc *= structureFactor(opt, ref, cal.Spread(), anchor)
	return synthesize(req.Workload, cfg, budget, ipc, anchor), nil
}

// frontendEff is the modeled fraction of decode demand the fetch queue
// satisfies at the given capacity: 1 − E[bubbles]/E[demand], floored so a
// divergent or degenerate model never zeroes an estimate. Memoized — the
// steady-state solve is the only non-trivial arithmetic in this tier.
func (r *AnalyticRunner) frontendEff(cal *Calibration, capacity int) float64 {
	key := effKey{cal.Workload, capacity}
	r.mu.Lock()
	if v, ok := r.eff[key]; ok {
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()

	v := 1.0
	if m, err := analytic.NewModel(cal.Demand, cal.Supply); err == nil {
		var meanD float64
		for j, p := range m.D {
			meanD += float64(j) * p
		}
		if meanD > 0 {
			v = clamp(1-m.ExpectedBubbles(capacity)/meanD, 0.05, 1)
		}
	}

	r.mu.Lock()
	r.eff[key] = v
	r.mu.Unlock()
	return v
}
