// Package tier implements the fidelity ladder's cheap evaluation tiers:
// runners that satisfy the sweep engine's Runner contract (the same
// RunRequest → RunResult shape as a Lab) but estimate results instead of
// simulating them cycle by cycle.
//
// Two tiers are provided. AnalyticRunner prices a configuration through
// the Appendix B Markov fetch-buffer model, parameterized by per-workload
// demand/supply profiles captured once from a short cycle-accurate
// calibration run. MonteCarloRunner sits between the analytic tier and
// the cycle-accurate core: it replays the same empirical distributions
// through a seeded stochastic fetch-queue simulation (SNIPPETS §3 SpAtten
// style — sample what the lookahead supplies against what decode demands
// and report the recall), so it captures queue dynamics the closed-form
// chain averages away while remaining thousands of times cheaper than the
// core. Both tiers are deterministic functions of (workload, config,
// budget) plus a fixed seed, so their results are byte-identical across
// -jobs, across processes, and across journal resume.
//
// Calibration is captured by a Calibrator and optionally persisted
// through prepcache blobs, so a restarted r3dlad prices its first ladder
// rung from a file read.
package tier

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"

	"r3dla/internal/lab"
	"r3dla/internal/prepcache"
)

// DefaultCalibBudget is the calibration-run length used when the caller
// does not specify one: long enough for the anchor IPCs and the
// supply/demand histograms to stabilize, short next to any real sweep
// budget.
const DefaultCalibBudget = 20_000

// minCalibBudget floors CalibBudgetFor: below this the anchor rates are
// too noisy to scale.
const minCalibBudget = 1000

// CalibBudgetFor derives a calibration budget from a sweep's per-cell
// budget: a quarter of it, floored at 1000 and never above the cell
// budget itself (the calibration must stay the cheap part). Budget 0
// (caller uses the lab default) selects DefaultCalibBudget.
func CalibBudgetFor(budget uint64) uint64 {
	if budget == 0 {
		return DefaultCalibBudget
	}
	cb := budget / 4
	if cb < minCalibBudget {
		cb = minCalibBudget
	}
	if cb > budget {
		cb = budget
	}
	return cb
}

// Anchor is the cycle-accurate ground truth for one preset at the
// calibration budget: the absolute quantities the estimators scale.
type Anchor struct {
	IPC              float64 // committed MT IPC
	EPI              float64 // joules per committed instruction
	MPKI             float64 // L1D misses per kilo-instruction
	RebootsPerKCycle float64 // LT resyncs per 1000 cycles
	BOQWrongPerKInst float64 // wrong BOQ outcomes per 1000 instructions
	DRAMPerKInst     float64 // DRAM bytes per 1000 instructions
}

// Calibration is everything the estimator tiers know about one workload:
// the Appendix B demand/supply distributions and the per-preset anchors.
// It is a plain value, gob-serializable for the prepcache blob.
type Calibration struct {
	Workload string
	Budget   uint64
	Demand   []float64 // P(decode demands j instructions per cycle)
	Supply   []float64 // P(fetch supplies s instructions per cycle)
	Anchors  map[string]Anchor
}

// Spread reports how much the full R3 machine gains over classic DLA on
// this workload — the per-feature scale the structure factor spreads
// across the individual feature toggles.
func (c *Calibration) Spread() float64 {
	dla, r3 := c.Anchors[lab.DLA.Name()], c.Anchors[lab.R3.Name()]
	if dla.IPC <= 0 || r3.IPC <= 0 {
		return 1
	}
	return r3.IPC / dla.IPC
}

// Calibrator captures (and memoizes) per-workload calibrations against a
// cycle-accurate Lab. Safe for concurrent use: concurrent Gets for the
// same workload block on one capture.
type Calibrator struct {
	l      *lab.Lab
	budget uint64
	cache  *prepcache.Cache // nil: in-memory only

	mu      sync.Mutex
	entries map[string]*calEntry
}

type calEntry struct {
	mu  sync.Mutex
	cal *Calibration
}

// NewCalibrator builds a calibrator over l. calibBudget 0 selects
// DefaultCalibBudget; cache may be nil to skip persistence.
func NewCalibrator(l *lab.Lab, calibBudget uint64, cache *prepcache.Cache) *Calibrator {
	if calibBudget == 0 {
		calibBudget = DefaultCalibBudget
	}
	return &Calibrator{l: l, budget: calibBudget, cache: cache, entries: make(map[string]*calEntry)}
}

// Budget reports the calibration-run budget.
func (c *Calibrator) Budget() uint64 { return c.budget }

// Lab returns the underlying cycle-accurate lab (the tiers use its
// default budget for requests that don't carry one).
func (c *Calibrator) Lab() *lab.Lab { return c.l }

// Get returns the calibration for workload, capturing it on first use.
// Failures (unknown workload, cancellation) are not cached; a later Get
// retries.
func (c *Calibrator) Get(ctx context.Context, workload string) (*Calibration, error) {
	c.mu.Lock()
	e := c.entries[workload]
	if e == nil {
		e = &calEntry{}
		c.entries[workload] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cal != nil {
		return e.cal, nil
	}
	cal, err := c.capture(ctx, workload)
	if err != nil {
		return nil, err
	}
	e.cal = cal
	return cal, nil
}

// blobKey names the prepcache blob holding one workload's calibration.
func (c *Calibrator) blobKey(workload string) string {
	return fmt.Sprintf("tiercal-%s@%d", workload, c.budget)
}

// capture runs the calibration: the Appendix B frontend profile plus one
// cycle-accurate anchor run per preset, all at the (short) calibration
// budget. With a warm prepcache blob the lab is never touched.
func (c *Calibrator) capture(ctx context.Context, workload string) (*Calibration, error) {
	p, err := c.l.Prepare(ctx, workload)
	if err != nil {
		return nil, err
	}
	fp := prepcache.Fingerprint(p.Prog)
	key := c.blobKey(workload)
	if c.cache != nil {
		if raw, ok := c.cache.LoadBlob(key, fp); ok {
			var cal Calibration
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&cal); err == nil &&
				cal.Workload == workload && cal.Budget == c.budget && len(cal.Anchors) > 0 {
				return &cal, nil
			}
			// Undecodable or mismatched blob: fall through and recapture.
		}
	}

	demand, supply, err := c.l.FrontendProfile(ctx, workload, c.budget)
	if err != nil {
		return nil, err
	}
	cal := &Calibration{
		Workload: workload,
		Budget:   c.budget,
		Demand:   demand,
		Supply:   supply,
		Anchors:  make(map[string]Anchor, 3),
	}
	for _, preset := range lab.Presets() {
		r, err := c.l.Run(ctx, lab.RunRequest{
			Workload: workload,
			Config:   lab.ConfigSpec{Preset: preset.Name()},
			Budget:   c.budget,
		})
		if err != nil {
			return nil, err
		}
		cal.Anchors[preset.Name()] = anchorOf(r)
	}

	if c.cache != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cal); err == nil {
			// A failed store only costs the next process a recapture.
			_ = c.cache.StoreBlob(key, fp, buf.Bytes())
		}
	}
	return cal, nil
}

// anchorOf reduces a cycle-accurate run to the rates the estimators
// scale.
func anchorOf(r *lab.RunResult) Anchor {
	a := Anchor{IPC: r.IPC, MPKI: r.L1DMPKI}
	if r.Committed > 0 {
		inst := float64(r.Committed)
		a.EPI = r.EnergyJ / inst
		a.BOQWrongPerKInst = 1000 * float64(r.BOQWrong) / inst
		a.DRAMPerKInst = 1000 * float64(r.DRAMTraffic) / inst
	}
	if r.Cycles > 0 {
		a.RebootsPerKCycle = 1000 * float64(r.Reboots) / float64(r.Cycles)
	}
	return a
}
