package tier

import (
	"math"

	"r3dla/internal/core"
	"r3dla/internal/energy"
	"r3dla/internal/lab"
	"r3dla/internal/pipeline"
)

// Default hardware sizings shared with the core layer (a zero in
// core.Options means "default").
const (
	defBOQ    = 512
	defFQ     = 128
	defVQ     = 32
	defReboot = 64
)

// fbCapacity is the DLA fetch buffer's extra decoupling depth (the
// 32-entry BOQ-driven MT fetch buffer of the "reuse" mechanism).
const fbCapacity = 32

// maxModelCapacity bounds the Markov/MC queue size: transition matrices
// are O(cap²) and efficiency saturates long before this.
const maxModelCapacity = 96

// capacityOf maps a configuration to the effective fetch-queue capacity
// the frontend model prices: the core's fetch buffer, deepened by the DLA
// fetch buffer when that mechanism is on.
func capacityOf(opt core.Options) int {
	cc := pipeline.DefaultConfig()
	if opt.CoreCfg != nil {
		cc = *opt.CoreCfg
	}
	capacity := cc.FetchBufSize
	if opt.FetchBuffer {
		capacity += fbCapacity
	}
	if capacity < 1 {
		capacity = 1
	}
	if capacity > maxModelCapacity {
		capacity = maxModelCapacity
	}
	return capacity
}

// presetOptions returns the core options a bare preset resolves to — the
// reference point the estimators scale the preset's anchor away from.
func presetOptions(preset string) core.Options {
	p, ok := lab.PresetByName(preset)
	if !ok {
		return core.Options{}
	}
	cfg, err := lab.NewConfig(p)
	if err != nil {
		return core.Options{}
	}
	return cfg.SystemOptions()
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func orDef(n, def int) int {
	if n == 0 {
		return def
	}
	return n
}

// queueFactor prices a queue resized from ref to n: a saturating
// diminishing-returns curve n/(n+ref), normalized to 1 at n == ref, with
// weight w bounding the total swing to (1-w, 1+w).
func queueFactor(n, ref int, w float64) float64 {
	r := 2 * float64(n) / float64(n+ref)
	return 1 + w*(r-1)
}

// flip prices toggling one look-ahead feature away from the preset's
// default: per > 1 is the per-feature gain inferred from the workload's
// r3-vs-dla anchor spread.
func flip(on, ref bool, per float64) float64 {
	switch {
	case on && !ref:
		return per
	case !on && ref:
		return 1 / per
	}
	return 1
}

// coreFactor prices a non-default pipeline sizing with the classic
// sublinear width/window exponents.
func coreFactor(opt core.Options) float64 {
	if opt.CoreCfg == nil {
		return 1
	}
	def := pipeline.DefaultConfig()
	f := math.Pow(float64(opt.CoreCfg.DecodeWidth)/float64(def.DecodeWidth), 0.4)
	f *= math.Pow(float64(opt.CoreCfg.ROB)/float64(def.ROB), 0.25)
	return f
}

// structureFactor prices every structural delta between a cell's options
// and its preset's defaults that the frontend queue model does not
// already cover: queue sizings, feature toggles, core sizing, reboot
// cost, and a fixed skeleton version. spread is Calibration.Spread().
func structureFactor(opt, ref core.Options, spread float64, a Anchor) float64 {
	f := queueFactor(orDef(opt.BOQSize, defBOQ), orDef(ref.BOQSize, defBOQ), 0.10)
	f *= queueFactor(orDef(opt.FQSize, defFQ), orDef(ref.FQSize, defFQ), 0.05)
	f *= queueFactor(orDef(opt.VQSize, defVQ), orDef(ref.VQSize, defVQ), 0.03)

	// The r3/dla anchor gap is the joint gain of the R3 features; spread
	// it as a uniform per-feature multiplier across the three toggles the
	// frontend model doesn't price (the fetch buffer is priced there).
	per := math.Cbrt(clamp(spread, 0.8, 1.3))
	f *= flip(opt.T1, ref.T1, per)
	f *= flip(opt.ValueReuse, ref.ValueReuse, per)
	f *= flip(opt.Recycle, ref.Recycle, per)
	f *= flip(opt.WithStride, ref.WithStride, 1.01)
	f *= flip(opt.PrefetchOnly, ref.PrefetchOnly, 0.96)

	if opt.HasFixedVersion {
		// Deeper reductions speculate more and pay more divergence.
		f *= 1 - 0.01*float64(opt.FixedVersion)
	}

	// Costlier reboots hurt in proportion to how often this workload
	// actually reboots (the anchor rate).
	rate := a.RebootsPerKCycle / 1000
	rbRef := float64(orDef(int(ref.RebootCost), defReboot))
	rbOpt := float64(orDef(int(opt.RebootCost), defReboot))
	f *= (1 + rate*rbRef) / (1 + rate*rbOpt)

	f *= coreFactor(opt) / coreFactor(ref)
	return f
}

// synthesize builds a full RunResult around an estimated IPC, scaling the
// anchor's per-instruction rates to the requested budget. Cycles and IPC
// are made self-consistent (IPC = budget/cycles exactly), matching the
// invariant cycle-accurate results satisfy.
func synthesize(workload string, cfg lab.Config, budget uint64, ipc float64, a Anchor) *lab.RunResult {
	ipc = clamp(ipc, 1e-3, 16)
	cycles := uint64(math.Round(float64(budget) / ipc))
	if cycles < 1 {
		cycles = 1
	}
	out := &lab.RunResult{
		Workload:    workload,
		Config:      cfg.Key(),
		Budget:      budget,
		IPC:         float64(budget) / float64(cycles),
		Cycles:      cycles,
		Committed:   budget,
		Reboots:     uint64(math.Round(a.RebootsPerKCycle * float64(cycles) / 1000)),
		BOQWrong:    uint64(math.Round(a.BOQWrongPerKInst * float64(budget) / 1000)),
		L1DMPKI:     a.MPKI,
		DRAMTraffic: uint64(math.Round(a.DRAMPerKInst * float64(budget) / 1000)),
		EnergyJ:     a.EPI * float64(budget),
	}
	p := energy.DefaultParams()
	if secs := float64(cycles) / (p.ClockGHz * 1e9); secs > 0 {
		out.PowerW = out.EnergyJ / secs
	}
	return out
}
