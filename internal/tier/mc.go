package tier

import (
	"context"
	"hash/fnv"

	"r3dla/internal/core"
	"r3dla/internal/lab"
)

// mcCycles is the stochastic fetch-queue simulation length per
// configuration. Long enough for the recall estimate to settle, ~10^3×
// cheaper than a cycle-accurate cell.
const mcCycles = 4096

// MonteCarloRunner is the ladder's middle tier: instead of the chain's
// closed-form steady state it samples the empirical supply and demand
// distributions through a small stochastic fetch-queue simulation — the
// SpAtten-style estimator shape, where the lookahead's usefulness is
// measured as recall (instructions the sampled supply delivers against
// what decode demands) rather than derived analytically. Reboot stalls
// are sampled at the anchor's measured rate, so the cell's RebootCost
// axis has a dynamic (not just closed-form) effect.
//
// Every cell draws its randomness from a splitmix64 stream seeded by
// (runner seed, canonical run key) alone — never by scheduling order —
// so results are byte-identical across -jobs, across processes, and
// across journal resume.
type MonteCarloRunner struct {
	cal  *Calibrator
	seed uint64
}

// NewMonteCarloRunner builds the Monte-Carlo tier; seed fixes the
// sampling streams (the dse ladder passes the explore seed).
func NewMonteCarloRunner(c *Calibrator, seed uint64) *MonteCarloRunner {
	return &MonteCarloRunner{cal: c, seed: seed}
}

// Run satisfies the sweep engine's Runner contract.
func (r *MonteCarloRunner) Run(ctx context.Context, req lab.RunRequest) (*lab.RunResult, error) {
	cfg, err := req.Config.Config()
	if err != nil {
		return nil, err
	}
	cal, err := r.cal.Get(ctx, req.Workload)
	if err != nil {
		return nil, err
	}
	budget := req.Budget
	if budget == 0 {
		budget = r.cal.l.Budget()
	}

	opt := cfg.SystemOptions()
	ref := presetOptions(cfg.Preset())
	anchor := cal.Anchors[cfg.Preset()]

	// Two independent streams per cell — one for the cell's own queue
	// simulation, one for the anchor reference — both derived purely from
	// the cell's identity.
	h := fnv.New64a()
	h.Write([]byte(lab.RunKey(req.Workload, cfg, budget)))
	base := r.seed ^ h.Sum64()

	effCell := simulateQueue(cal, opt, anchor, newSplitmix(base))
	effRef := simulateQueue(cal, ref, anchor, newSplitmix(base+0x9e3779b97f4a7c15))

	ipc := anchor.IPC
	if effRef > 0 {
		ipc *= effCell / effRef
	}
	ipc *= structureFactor(opt, ref, cal.Spread(), anchor)
	return synthesize(req.Workload, cfg, budget, ipc, anchor), nil
}

// simulateQueue plays mcCycles of the fetch queue: each cycle the fetch
// side delivers a sampled supply (unless a sampled reboot has it
// stalled), decode consumes a sampled demand, and the queue saturates at
// the configuration's capacity. The return value is the frontend's
// recall: served demand over total demand.
func simulateQueue(cal *Calibration, opt core.Options, anchor Anchor, rng *splitmix) float64 {
	capacity := capacityOf(opt)
	supply := newSampler(cal.Supply)
	demand := newSampler(cal.Demand)
	rebootP := clamp(anchor.RebootsPerKCycle/1000, 0, 1)
	rebootStall := orDef(int(opt.RebootCost), defReboot)

	queue, stall := 0, 0
	var served, demanded float64
	for cyc := 0; cyc < mcCycles; cyc++ {
		if stall > 0 {
			stall--
		} else {
			queue += supply.draw(rng)
			if queue > capacity {
				queue = capacity
			}
			if rebootP > 0 && rng.float64() < rebootP {
				stall = rebootStall
			}
		}
		d := demand.draw(rng)
		take := d
		if take > queue {
			take = queue
		}
		queue -= take
		served += float64(take)
		demanded += float64(d)
	}
	if demanded == 0 {
		return 1
	}
	return clamp(served/demanded, 0.05, 1)
}

// sampler inverts an empirical distribution's CDF.
type sampler struct {
	cdf []float64
}

func newSampler(dist []float64) *sampler {
	cdf := make([]float64, len(dist))
	var acc, total float64
	for _, p := range dist {
		if p > 0 {
			total += p
		}
	}
	if total == 0 {
		// Degenerate profile: point mass at 0.
		cdf = []float64{1}
		return &sampler{cdf: cdf}
	}
	for i, p := range dist {
		if p > 0 {
			acc += p / total
		}
		cdf[i] = acc
	}
	cdf[len(cdf)-1] = 1
	return &sampler{cdf: cdf}
}

func (s *sampler) draw(rng *splitmix) int {
	u := rng.float64()
	for i, c := range s.cdf {
		if u < c {
			return i
		}
	}
	return len(s.cdf) - 1
}

// splitmix is the splitmix64 generator: tiny, fast, and fully determined
// by its seed — exactly what per-cell order-independent sampling needs.
type splitmix struct {
	s uint64
}

func newSplitmix(seed uint64) *splitmix { return &splitmix{s: seed} }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
