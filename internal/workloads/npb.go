package workloads

import (
	"math/rand"

	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

// npbSuite reproduces the NAS Parallel Benchmarks kernels.
func npbSuite() []*Workload {
	return []*Workload{
		{Name: "cg", Suite: "npb", Build: buildCG},
		{Name: "mg", Suite: "npb", Build: buildMG},
		{Name: "ft", Suite: "npb", Build: buildFT},
		{Name: "is", Suite: "npb", Build: buildIS},
		{Name: "ep", Suite: "npb", Build: buildEP},
		{Name: "lu", Suite: "npb", Build: buildLU},
	}
}

// cg: conjugate-gradient flavour — sparse matrix-vector product (CSR
// gather) with FP accumulation.
func buildCG(seed int64) (*isa.Program, func(*emu.Memory)) {
	const rows = 1 << 14
	f0, f1, f2 := isa.FReg(0), isa.FReg(1), isa.FReg(2)
	b := isa.NewBuilder("cg")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, 0) // row
	b.Label("rloop")
	b.Li(rD, regA)
	b.I(isa.SHLI, rE, rA, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rB, rD, 0)
	b.Ld(rC, rD, 8)
	b.Li(rL, 0)
	b.R(isa.FCVT, f1, rL, 0)
	b.Label("eloop")
	b.R(isa.SLT, rE, rB, rC)
	b.Br(isa.BEQ, rE, isa.RegZero, "wb")
	b.Li(rD, regB)
	b.I(isa.SHLI, rE, rB, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rH, rD, 0)                 // col
	b.Fld(f2, rD, int64(regF-regB)) // a[e] stored parallel to colIdx
	b.Li(rI, regC)
	b.I(isa.SHLI, rE, rH, 3)
	b.R(isa.ADD, rI, rI, rE)
	b.Fld(f0, rI, 0) // x[col] gather
	b.R(isa.FMUL, f0, f0, f2)
	b.R(isa.FADD, f1, f1, f0)
	b.I(isa.ADDI, rB, rB, 1)
	b.Jmp("eloop")
	b.Label("wb")
	b.Li(rI, regD)
	b.I(isa.SHLI, rE, rA, 3)
	b.R(isa.ADD, rI, rI, rE)
	b.Fst(f1, rI, 0)
	emitPayloadFP(b, f1, 26)
	b.I(isa.ADDI, rA, rA, 1)
	b.Li(rE, rows)
	b.Br(isa.BNE, rA, rE, "rloop")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		g := buildCSR(m, rng, rows, 6)
		for e := 0; e < g.E; e++ {
			m.Write(regF+uint64(e)*8, floatBits(rng.Float64()))
		}
		for v := 0; v < rows; v++ {
			m.Write(regC+uint64(v)*8, floatBits(rng.Float64()))
		}
	}
}

// mg: multigrid flavour — 7-point stencil over a 3D grid: multiple
// parallel strided streams at +-1, +-nx, +-nx*ny words.
func buildMG(seed int64) (*isa.Program, func(*emu.Memory)) {
	const nx, ny, nz = 64, 64, 32
	const plane = nx * ny
	f0, f1 := isa.FReg(0), isa.FReg(1)
	b := isa.NewBuilder("mg")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, regA+plane*8+nx*8+8) // first interior cell
	b.Li(rI, (nz-2)*plane-2*nx-2)
	b.Label("cell")
	b.Fld(f0, rA, 0)
	b.Fld(f1, rA, 8)
	b.R(isa.FADD, f0, f0, f1)
	b.Fld(f1, rA, -8)
	b.R(isa.FADD, f0, f0, f1)
	b.Fld(f1, rA, nx*8)
	b.R(isa.FADD, f0, f0, f1)
	b.Fld(f1, rA, -nx*8)
	b.R(isa.FADD, f0, f0, f1)
	b.Fld(f1, rA, plane*8)
	b.R(isa.FADD, f0, f0, f1)
	b.Fld(f1, rA, -plane*8)
	b.R(isa.FADD, f0, f0, f1)
	b.Fst(f0, rA, int64(regB-regA))
	b.I(isa.ADDI, rA, rA, 8)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "cell")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regA, nx*ny*nz, func(i int) uint64 { return floatBits(rng.Float64()) })
	}
}

// ft: FFT flavour — butterfly passes with power-of-two strides.
func buildFT(seed int64) (*isa.Program, func(*emu.Memory)) {
	const n = 1 << 16
	f0, f1, f2 := isa.FReg(0), isa.FReg(1), isa.FReg(2)
	b := isa.NewBuilder("ft")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rK, 8) // stride in bytes, doubles per stage
	b.Label("stage")
	b.Li(rA, regA)
	b.Li(rI, n/2)
	b.Label("bfly")
	b.Fld(f0, rA, 0)
	b.R(isa.ADD, rC, rA, rK)
	b.Fld(f1, rC, 0)
	b.R(isa.FADD, f2, f0, f1)
	b.R(isa.FSUB, f0, f0, f1)
	b.Fst(f2, rA, 0)
	b.Fst(f0, rC, 0)
	b.I(isa.SHLI, rD, rK, 1)
	b.R(isa.ADD, rA, rA, rD)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "bfly")
	b.I(isa.SHLI, rK, rK, 1)
	b.Li(rE, 8*256) // 8 stages
	b.Br(isa.BNE, rK, rE, "stage")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regA, n, func(i int) uint64 { return floatBits(rng.NormFloat64()) })
	}
}

// is: integer-sort flavour — key histogram (random small stores) then
// scatter into buckets (random large stores).
func buildIS(seed int64) (*isa.Program, func(*emu.Memory)) {
	const keys = 1 << 16
	const buckets = 1 << 10
	b := isa.NewBuilder("is")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, regA) // keys
	b.Li(rI, keys)
	b.Label("hist")
	b.Ld(rB, rA, 0)
	b.Li(rC, buckets-1)
	b.R(isa.AND, rC, rB, rC)
	b.I(isa.SHLI, rC, rC, 3)
	b.Li(rD, regB)
	b.R(isa.ADD, rD, rD, rC)
	b.Ld(rE, rD, 0)
	b.I(isa.ADDI, rE, rE, 1)
	b.St(rE, rD, 0)
	// Scatter key into its bucket region (random long-range store).
	b.I(isa.SHLI, rF, rC, 8)
	b.Li(rG, regC)
	b.R(isa.ADD, rG, rG, rF)
	b.I(isa.ANDI, rH, rE, 255)
	b.I(isa.SHLI, rH, rH, 3)
	b.R(isa.ADD, rG, rG, rH)
	b.St(rB, rG, 0)
	b.I(isa.ADDI, rA, rA, 8)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "hist")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regA, keys, func(i int) uint64 { return rng.Uint64() })
	}
}

// ep: embarrassingly-parallel flavour — PRNG + FP transform, no memory
// traffic at all (the compute-bound extreme).
func buildEP(seed int64) (*isa.Program, func(*emu.Memory)) {
	f0, f1, f2 := isa.FReg(0), isa.FReg(1), isa.FReg(2)
	b := isa.NewBuilder("ep")
	b.Li(rO, 1<<30)
	b.Li(rJ, int64(seed)|1)
	b.Label("outer")
	b.Li(rI, 4096)
	b.Label("iter")
	emitXorshift(b, rJ, rK)
	b.I(isa.SHRI, rL, rJ, 12)
	b.R(isa.FCVT, f0, rL, 0)
	b.R(isa.FMUL, f1, f0, f0)
	b.R(isa.FADD, f2, f2, f1)
	b.R(isa.FDIV, f1, f1, f0)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "iter")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {}
}

// lu: dense-solver flavour — Gaussian elimination sweeps over a dense FP
// matrix (row-strided streams with cross-row dependences).
func buildLU(seed int64) (*isa.Program, func(*emu.Memory)) {
	const n = 128
	f0, f1, f2, f3 := isa.FReg(0), isa.FReg(1), isa.FReg(2), isa.FReg(3)
	b := isa.NewBuilder("lu")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, 0) // k
	b.Label("kloop")
	// pivot = a[k][k]
	b.Li(rB, n*8)
	b.R(isa.MUL, rC, rA, rB)
	b.I(isa.SHLI, rD, rA, 3)
	b.R(isa.ADD, rC, rC, rD)
	b.Li(rE, regA)
	b.R(isa.ADD, rC, rC, rE) // &a[k][k]
	b.Fld(f0, rC, 0)
	b.I(isa.ADDI, rF, rA, 1) // i = k+1
	b.Label("iloop")
	b.Li(rE, n)
	b.R(isa.SLT, rG, rF, rE)
	b.Br(isa.BEQ, rG, isa.RegZero, "knext")
	// a[i][k] /= pivot
	b.Li(rB, n*8)
	b.R(isa.MUL, rG, rF, rB)
	b.I(isa.SHLI, rD, rA, 3)
	b.R(isa.ADD, rG, rG, rD)
	b.Li(rE, regA)
	b.R(isa.ADD, rG, rG, rE) // &a[i][k]
	b.Fld(f1, rG, 0)
	b.R(isa.FDIV, f1, f1, f0)
	b.Fst(f1, rG, 0)
	// a[i][j] -= a[i][k] * a[k][j] for j in (k, n)
	b.I(isa.ADDI, rH, rA, 1) // j
	b.Label("jloop")
	b.Li(rE, n)
	b.R(isa.SLT, rI, rH, rE)
	b.Br(isa.BEQ, rI, isa.RegZero, "inext")
	b.I(isa.SHLI, rD, rH, 3)
	b.R(isa.SUB, rI, rD, rA) // offset within row... compute &a[k][j]
	b.Li(rB, n*8)
	b.R(isa.MUL, rJ, rA, rB)
	b.R(isa.ADD, rJ, rJ, rD)
	b.Li(rE, regA)
	b.R(isa.ADD, rJ, rJ, rE)
	b.Fld(f2, rJ, 0) // a[k][j]
	b.R(isa.MUL, rJ, rF, rB)
	b.R(isa.ADD, rJ, rJ, rD)
	b.R(isa.ADD, rJ, rJ, rE)
	b.Fld(f3, rJ, 0) // a[i][j]
	b.R(isa.FMUL, f2, f2, f1)
	b.R(isa.FSUB, f3, f3, f2)
	b.Fst(f3, rJ, 0)
	b.I(isa.ADDI, rH, rH, 1)
	b.Jmp("jloop")
	b.Label("inext")
	b.I(isa.ADDI, rF, rF, 1)
	b.Jmp("iloop")
	b.Label("knext")
	b.I(isa.ADDI, rA, rA, 1)
	b.Li(rE, n-1)
	b.Br(isa.BNE, rA, rE, "kloop")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regA, n*n, func(i int) uint64 { return floatBits(rng.Float64() + 1.0) })
	}
}
