package workloads

import (
	"math/rand"

	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

// specSuite reproduces the behaviour classes of the SPEC2006 benchmarks
// named in the paper's figures.
func specSuite() []*Workload {
	return []*Workload{
		{Name: "bzip", Suite: "spec", Build: buildBzip},
		{Name: "mcf", Suite: "spec", Build: buildMcf},
		{Name: "gobmk", Suite: "spec", Build: buildGobmk},
		{Name: "hmmer", Suite: "spec", Build: buildHmmer},
		{Name: "sjeng", Suite: "spec", Build: buildSjeng},
		{Name: "libq", Suite: "spec", Build: buildLibquantum},
		{Name: "h264", Suite: "spec", Build: buildH264},
		{Name: "omnet", Suite: "spec", Build: buildOmnetpp},
		{Name: "astar", Suite: "spec", Build: buildAstar},
		{Name: "xalan", Suite: "spec", Build: buildXalan},
	}
}

// bzip: entropy-coding flavour — streaming byte scan with a scattered
// 256-entry frequency table update and data-dependent branches.
func buildBzip(seed int64) (*isa.Program, func(*emu.Memory)) {
	const n = 1 << 17 // 128K words (1MB)
	b := isa.NewBuilder("bzip")
	b.Li(rO, 1<<30) // effectively endless outer loop
	b.Label("outer")
	b.Li(rA, regA) // input
	b.Li(rI, n)
	b.Label("scan")
	b.Ld(rB, rA, 0) // v = in[i]
	b.I(isa.ANDI, rC, rB, 255)
	b.I(isa.SHLI, rC, rC, 3) // bucket offset
	b.Li(rD, regB)
	b.R(isa.ADD, rD, rD, rC)
	b.Ld(rE, rD, 0) // freq[bucket]
	b.I(isa.ADDI, rE, rE, 1)
	b.St(rE, rD, 0)
	b.I(isa.ANDI, rF, rB, 1)
	b.Br(isa.BEQ, rF, isa.RegZero, "even")
	b.I(isa.SHRI, rB, rB, 1) // odd path: shift
	b.R(isa.ADD, rG, rG, rB)
	b.Jmp("cont")
	b.Label("even")
	b.R(isa.XOR, rG, rG, rB)
	b.Label("cont")
	b.I(isa.ADDI, rA, rA, 8)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "scan")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regA, n, func(i int) uint64 { return rng.Uint64() >> 32 })
	}
}

// mcf: network-simplex pricing flavour — a strided scan over the arc
// array dereferencing each arc's head-node pointer (an L3-hostile random
// gather), followed by reduced-cost arithmetic on the loaded node data.
// The gather addresses are computable ahead of the data, which is exactly
// the structure that lets a look-ahead thread (and no pattern prefetcher)
// cover the misses.
func buildMcf(seed int64) (*isa.Program, func(*emu.Memory)) {
	const arcs = 1 << 17  // arc: [headIdx, cost] = 16B -> 2MB
	const nodes = 1 << 18 // node: [potential, ...] 64B apart -> 16MB
	b := isa.NewBuilder("mcf")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, regA) // arc cursor
	b.Li(rI, arcs)
	b.Label("arc")
	b.Ld(rB, rA, 0) // head node index
	b.Ld(rC, rA, 8) // arc cost
	// node = nodes[head] (random gather over 16MB)
	b.I(isa.SHLI, rD, rB, 6)
	b.Li(rE, regB)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rF, rD, 0) // node potential
	// Reduced cost and data-dependent pivot test.
	b.R(isa.SUB, rG, rC, rF)
	b.R(isa.SLT, rH, rG, isa.RegZero)
	b.Br(isa.BEQ, rH, isa.RegZero, "nopivot")
	b.St(rG, rD, 8) // update node (rare-ish, data dependent)
	b.Label("nopivot")
	// Pricing bookkeeping (the bulk of real mcf's work; skeleton-free).
	emitPayloadInt(b, rG, 22)
	b.I(isa.ADDI, rA, rA, 16)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "arc")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < arcs; i++ {
			m.Write(regA+uint64(i)*16, uint64(rng.Intn(nodes)))
			m.Write(regA+uint64(i)*16+8, uint64(rng.Intn(1000)))
		}
		for i := 0; i < nodes; i += 16 { // touch sparsely; pages allocate on write
			m.Write(regB+uint64(i)*64, uint64(rng.Intn(500)))
		}
	}
}

// gobmk: board-search flavour — bounded recursion with data-dependent
// move branches and small-table reads.
func buildGobmk(seed int64) (*isa.Program, func(*emu.Memory)) {
	b := isa.NewBuilder("gobmk")
	b.Li(rO, 1<<30)
	b.Li(rJ, int64(seed)|1) // PRNG state
	b.Li(rP, regF)          // memory stack grows down from regF
	b.Label("outer")
	b.Li(rA, 7) // recursion depth
	b.Call("eval")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()

	// eval(depth=rA): explores two moves per level.
	b.Label("eval")
	b.Br(isa.BEQ, rA, isa.RegZero, "leaf")
	// Save depth and link on a memory stack (rP = stack pointer).
	b.I(isa.ADDI, rP, rP, -24)
	b.St(isa.RegLink, rP, 0)
	b.St(rA, rP, 8)
	emitXorshift(b, rJ, rK)
	b.I(isa.ANDI, rL, rJ, 1023)
	b.I(isa.SHLI, rL, rL, 3)
	b.Li(rM, regB)
	b.R(isa.ADD, rM, rM, rL)
	b.Ld(rN, rM, 0) // board-pattern table read
	b.St(rN, rP, 16)
	// Move 1 (taken only when pattern bit set: data dependent).
	b.I(isa.ANDI, rL, rN, 1)
	b.Br(isa.BEQ, rL, isa.RegZero, "skip1")
	b.I(isa.ADDI, rA, rA, -1)
	b.Call("eval")
	b.Ld(rA, rP, 8)
	b.Label("skip1")
	// Move 2 (always).
	b.I(isa.ADDI, rA, rA, -1)
	b.Call("eval")
	b.Ld(rA, rP, 8)
	b.Ld(rN, rP, 16)
	b.R(isa.ADD, rG, rG, rN)
	b.Ld(isa.RegLink, rP, 0)
	b.I(isa.ADDI, rP, rP, 24)
	b.Ret()
	b.Label("leaf")
	b.I(isa.ADDI, rG, rG, 1)
	b.Ret()

	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regB, 1024, func(i int) uint64 { return rng.Uint64() })
	}
}

// hmmer: dynamic-programming flavour — three sequential streams combined
// with max() selects in a tight inner loop.
func buildHmmer(seed int64) (*isa.Program, func(*emu.Memory)) {
	const m = 1 << 15 // model length
	b := isa.NewBuilder("hmmer")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, regA) // match[]
	b.Li(rB, regB) // insert[]
	b.Li(rC, regC) // emit[]
	b.Li(rI, m)
	b.Li(rD, 0) // prev
	b.Label("dp")
	b.Ld(rE, rA, 0) // match[j]
	b.Ld(rF, rB, 0) // insert[j]
	b.Ld(rG, rC, 0) // emit[j]
	b.R(isa.ADD, rE, rE, rG)
	b.R(isa.ADD, rF, rF, rD)
	b.R(isa.SLT, rH, rE, rF) // h = (e < f)
	b.Br(isa.BEQ, rH, isa.RegZero, "keepE")
	b.Mov(rE, rF)
	b.Label("keepE")
	b.St(rE, rA, 0)
	b.Mov(rD, rE)
	emitPayloadInt(b, rE, 10)
	b.I(isa.ADDI, rA, rA, 8)
	b.I(isa.ADDI, rB, rB, 8)
	b.I(isa.ADDI, rC, rC, 8)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "dp")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(mem *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(mem, regA, m, func(i int) uint64 { return uint64(rng.Intn(100)) })
		fillWords(mem, regB, m, func(i int) uint64 { return uint64(rng.Intn(100)) })
		fillWords(mem, regC, m, func(i int) uint64 { return uint64(rng.Intn(10)) })
	}
}

// sjeng: game-tree flavour — recursion plus transposition-table probes
// over a large hash region.
func buildSjeng(seed int64) (*isa.Program, func(*emu.Memory)) {
	const hashWords = 1 << 19 // 4MB table
	b := isa.NewBuilder("sjeng")
	b.Li(rO, 1<<30)
	b.Li(rJ, int64(seed)|1)
	b.Li(rP, regF) // memory stack
	b.Label("outer")
	b.Li(rA, 6)
	b.Call("search")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()

	b.Label("search")
	b.Br(isa.BEQ, rA, isa.RegZero, "sleaf")
	b.I(isa.ADDI, rP, rP, -16)
	b.St(isa.RegLink, rP, 0)
	b.St(rA, rP, 8)
	emitXorshift(b, rJ, rK)
	// Transposition probe.
	b.Li(rL, int64(hashWords-1))
	b.R(isa.AND, rL, rJ, rL)
	b.I(isa.SHLI, rL, rL, 3)
	b.Li(rM, regC)
	b.R(isa.ADD, rM, rM, rL)
	b.Ld(rN, rM, 0)
	// Cutoff if probe parity matches (unpredictable).
	b.R(isa.XOR, rN, rN, rJ)
	b.I(isa.ANDI, rN, rN, 3)
	b.Br(isa.BEQ, rN, isa.RegZero, "cutoff")
	b.I(isa.ADDI, rA, rA, -1)
	b.Call("search")
	b.Ld(rA, rP, 8)
	b.I(isa.ADDI, rA, rA, -1)
	b.Call("search")
	b.Ld(rA, rP, 8)
	b.Label("cutoff")
	b.St(rJ, rM, 0) // update table
	b.Ld(isa.RegLink, rP, 0)
	b.I(isa.ADDI, rP, rP, 16)
	b.Ret()
	b.Label("sleaf")
	b.I(isa.ADDI, rG, rG, 1)
	b.Ret()

	return b.Program(), func(mem *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(mem, regC, hashWords/64, func(i int) uint64 { return rng.Uint64() })
	}
}

// libquantum: gate-toggle flavour — pure long-stride streaming passes
// over a multi-megabyte register file.
func buildLibquantum(seed int64) (*isa.Program, func(*emu.Memory)) {
	const n = 1 << 19 // 4MB
	b := isa.NewBuilder("libq")
	b.Li(rO, 1<<30)
	b.Li(rM, 0x5555)
	b.Label("outer")
	b.Li(rA, regA)
	b.Li(rI, n)
	b.Label("gate")
	b.Ld(rB, rA, 0)
	b.R(isa.XOR, rB, rB, rM)
	b.St(rB, rA, 0)
	b.I(isa.ADDI, rA, rA, 8)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "gate")
	b.I(isa.XORI, rM, rM, 0x3333)
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(mem *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(mem, regA, n, func(i int) uint64 { return rng.Uint64() })
	}
}

// h264: motion-estimation flavour — blocked SAD over two frames with a
// running minimum.
func buildH264(seed int64) (*isa.Program, func(*emu.Memory)) {
	const w = 512 // frame width in words
	const rows = 256
	b := isa.NewBuilder("h264")
	b.Li(rO, 1<<30)
	b.Li(rH, 1<<40) // running minimum SAD
	b.Label("outer")
	b.Li(rA, regA) // cur frame
	b.Li(rB, regB) // ref frame
	b.Li(rI, int64(rows))
	b.Label("row")
	b.Li(rJ, w/8)
	b.Label("blk")
	b.Li(rG, 0) // SAD
	// 8-sample SAD, unrolled.
	for k := int64(0); k < 8; k++ {
		lbl := "pos" + itoa(int(k))
		b.Ld(rC, rA, k*8)
		b.Ld(rD, rB, k*8)
		b.R(isa.SUB, rE, rC, rD)
		b.R(isa.SLT, rF, rE, isa.RegZero)
		b.Br(isa.BEQ, rF, isa.RegZero, lbl)
		b.R(isa.SUB, rE, isa.RegZero, rE)
		b.Label(lbl)
		b.R(isa.ADD, rG, rG, rE)
	}
	// Track minimum SAD (branch, data dependent).
	b.R(isa.SLT, rF, rG, rH)
	b.Br(isa.BEQ, rF, isa.RegZero, "nomin")
	b.Mov(rH, rG)
	b.Label("nomin")
	emitPayloadInt(b, rG, 12)
	b.I(isa.ADDI, rA, rA, 64)
	b.I(isa.ADDI, rB, rB, 64)
	b.I(isa.ADDI, rJ, rJ, -1)
	b.Br(isa.BNE, rJ, isa.RegZero, "blk")
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "row")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(mem *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(mem, regA, w*rows, func(i int) uint64 { return uint64(rng.Intn(256)) })
		fillWords(mem, regB, w*rows, func(i int) uint64 { return uint64(rng.Intn(256)) })
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// omnetpp: event-simulation flavour — a binary heap in memory with
// unpredictable comparison branches.
func buildOmnetpp(seed int64) (*isa.Program, func(*emu.Memory)) {
	const heapCap = 1 << 14
	b := isa.NewBuilder("omnet")
	b.Li(rO, 1<<30)
	b.Li(rJ, int64(seed)|1)
	b.Li(rN, heapCap/2) // heap size (fixed; we replace the root each event)
	b.Label("outer")
	b.Li(rI, 2048) // events per outer iteration
	b.Label("event")
	// Replace root with a new random key, then sift down.
	emitXorshift(b, rJ, rK)
	b.Li(rA, 1) // index (1-based)
	b.Li(rB, regA)
	b.I(isa.SHLI, rC, rA, 3)
	b.R(isa.ADD, rC, rB, rC)
	b.St(rJ, rC, 0)
	b.Label("sift")
	b.I(isa.SHLI, rD, rA, 1) // left child index
	b.R(isa.SLT, rE, rN, rD) // child beyond heap?
	b.Br(isa.BNE, rE, isa.RegZero, "done")
	// Load parent and left child.
	b.I(isa.SHLI, rC, rA, 3)
	b.R(isa.ADD, rC, rB, rC)
	b.Ld(rF, rC, 0) // parent val
	b.I(isa.SHLI, rE, rD, 3)
	b.R(isa.ADD, rE, rB, rE)
	b.Ld(rG, rE, 0)          // child val
	b.R(isa.SLT, rH, rG, rF) // child < parent ?
	b.Br(isa.BEQ, rH, isa.RegZero, "done")
	// Swap and descend.
	b.St(rF, rE, 0)
	b.St(rG, rC, 0)
	b.Mov(rA, rD)
	b.Jmp("sift")
	b.Label("done")
	emitPayloadInt(b, rG, 12)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "event")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(mem *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(mem, regA, heapCap, func(i int) uint64 { return rng.Uint64() })
	}
}

// astar: path-search flavour — greedy neighbour descent over a weighted
// grid with random restarts.
func buildAstar(seed int64) (*isa.Program, func(*emu.Memory)) {
	const w = 512
	const cells = w * w
	b := isa.NewBuilder("astar")
	b.Li(rO, 1<<30)
	b.Li(rJ, int64(seed)|1)
	b.Label("outer")
	// Random start cell (away from borders).
	emitXorshift(b, rJ, rK)
	b.Li(rA, int64(cells-2*w-2))
	b.R(isa.AND, rA, rJ, rA) // not uniform; adequate
	b.I(isa.ADDI, rA, rA, int64(w+1))
	b.Li(rI, 512) // steps per restart
	b.Label("step")
	// Load 4 neighbour costs.
	b.Li(rB, regA)
	b.I(isa.SHLI, rC, rA, 3)
	b.R(isa.ADD, rB, rB, rC)
	b.Ld(rD, rB, 8)           // right
	b.Ld(rE, rB, -8)          // left
	b.Ld(rF, rB, int64(w*8))  // down
	b.Ld(rG, rB, int64(-w*8)) // up
	// Pick the minimum-cost direction (branch ladder).
	b.Mov(rH, rD)
	b.I(isa.ADDI, rL, rA, 1)
	b.R(isa.SLT, rM, rE, rH)
	b.Br(isa.BEQ, rM, isa.RegZero, "n1")
	b.Mov(rH, rE)
	b.I(isa.ADDI, rL, rA, -1)
	b.Label("n1")
	b.R(isa.SLT, rM, rF, rH)
	b.Br(isa.BEQ, rM, isa.RegZero, "n2")
	b.Mov(rH, rF)
	b.I(isa.ADDI, rL, rA, int64(w))
	b.Label("n2")
	b.R(isa.SLT, rM, rG, rH)
	b.Br(isa.BEQ, rM, isa.RegZero, "n3")
	b.Mov(rH, rG)
	b.I(isa.ADDI, rL, rA, int64(-w))
	b.Label("n3")
	// Mark the visited cell (store) and move.
	b.I(isa.ADDI, rD, rH, 1)
	b.St(rD, rB, 0)
	b.Mov(rA, rL)
	emitPayloadInt(b, rH, 20)
	// Keep in bounds: wrap into the interior if needed.
	b.Li(rM, int64(cells-2*w))
	b.R(isa.SLT, rN, rA, rM)
	b.Br(isa.BNE, rN, isa.RegZero, "inb")
	b.Li(rA, int64(w+1))
	b.Label("inb")
	b.Li(rM, int64(w))
	b.R(isa.SLT, rN, rM, rA)
	b.Br(isa.BNE, rN, isa.RegZero, "inb2")
	b.Li(rA, int64(w+1))
	b.Label("inb2")
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "step")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(mem *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(mem, regA, cells, func(i int) uint64 { return uint64(rng.Intn(1 << 20)) })
	}
}

// xalan: document-tree flavour — DFS over a random tree with an explicit
// memory stack and type-dispatch branches.
func buildXalan(seed int64) (*isa.Program, func(*emu.Memory)) {
	const nodes = 1 << 16 // node: [type, child0, child1, child2] = 32B
	b := isa.NewBuilder("xalan")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rP, regF)  // stack pointer
	b.Li(rA, regA)  // current node = root
	b.Li(rI, 16384) // visits per outer iteration
	b.Label("visit")
	b.Ld(rB, rA, 0) // type
	b.I(isa.ANDI, rC, rB, 3)
	b.Br(isa.BEQ, rC, isa.RegZero, "leafy")
	// Push children (up to type&3 of them).
	b.Ld(rD, rA, 8)
	b.I(isa.ADDI, rP, rP, -8)
	b.St(rD, rP, 0)
	b.I(isa.SLTI, rE, rC, 2)
	b.Br(isa.BNE, rE, isa.RegZero, "leafy")
	b.Ld(rD, rA, 16)
	b.I(isa.ADDI, rP, rP, -8)
	b.St(rD, rP, 0)
	b.Label("leafy")
	b.R(isa.ADD, rG, rG, rB)
	emitPayloadInt(b, rB, 24)
	// Pop next node; reset to root if the stack is empty.
	b.Li(rE, regF)
	b.Br(isa.BEQ, rP, rE, "reset")
	b.Ld(rA, rP, 0)
	b.I(isa.ADDI, rP, rP, 8)
	b.Jmp("next")
	b.Label("reset")
	b.Li(rA, regA)
	b.Label("next")
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "visit")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(mem *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < nodes; i++ {
			base := uint64(regA) + uint64(i)*32
			mem.Write(base, uint64(rng.Intn(4)))
			mem.Write(base+8, uint64(regA)+uint64(rng.Intn(nodes))*32)
			mem.Write(base+16, uint64(regA)+uint64(rng.Intn(nodes))*32)
		}
	}
}
