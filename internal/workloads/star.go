package workloads

import (
	"math"
	"math/rand"

	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

// starSuite reproduces the STARBENCH embedded/multimedia workloads.
func starSuite() []*Workload {
	return []*Workload{
		{Name: "md5", Suite: "star", Build: buildMD5},
		{Name: "rgbyuv", Suite: "star", Build: buildRGBYUV},
		{Name: "rotate", Suite: "star", Build: buildRotate},
		{Name: "kmeans", Suite: "star", Build: buildKmeans},
	}
}

// md5: hash-streaming flavour — long serial ALU mixing chains over a
// sequentially-read message; compute bound, near-perfect branches.
func buildMD5(seed int64) (*isa.Program, func(*emu.Memory)) {
	const words = 1 << 16
	b := isa.NewBuilder("md5")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, regA)
	b.Li(rI, words)
	b.Li(rB, 0x67452301)
	b.Li(rC, 0x7fcdab89) // state
	b.Label("blk")
	b.Ld(rD, rA, 0)
	// Mixing rounds (serial dependency chain, as in real MD5).
	for i := 0; i < 4; i++ {
		b.R(isa.ADD, rB, rB, rD)
		b.R(isa.XOR, rC, rC, rB)
		b.I(isa.SHLI, rE, rB, 7)
		b.I(isa.SHRI, rF, rB, 25)
		b.R(isa.OR, rB, rE, rF)
		b.R(isa.ADD, rC, rC, rB)
		b.I(isa.SHLI, rE, rC, 12)
		b.I(isa.SHRI, rF, rC, 20)
		b.R(isa.OR, rC, rE, rF)
	}
	b.I(isa.ADDI, rA, rA, 8)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "blk")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regA, words, func(i int) uint64 { return rng.Uint64() })
	}
}

// rgbyuv: pixel-conversion flavour — three input streams, three output
// streams, integer multiply-accumulate per pixel.
func buildRGBYUV(seed int64) (*isa.Program, func(*emu.Memory)) {
	const pixels = 1 << 16
	b := isa.NewBuilder("rgbyuv")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, regA) // interleaved r,g,b (3 words per pixel)
	b.Li(rB, regB) // output y,u,v
	b.Li(rI, pixels)
	b.Li(rK, 66)
	b.Li(rL, 129)
	b.Li(rM, 25)
	b.Label("px")
	b.Ld(rC, rA, 0)
	b.Ld(rD, rA, 8)
	b.Ld(rE, rA, 16)
	b.R(isa.MUL, rF, rC, rK)
	b.R(isa.MUL, rG, rD, rL)
	b.R(isa.ADD, rF, rF, rG)
	b.R(isa.MUL, rG, rE, rM)
	b.R(isa.ADD, rF, rF, rG)
	b.I(isa.SHRI, rF, rF, 8)
	b.St(rF, rB, 0)
	b.R(isa.SUB, rG, rE, rF)
	b.St(rG, rB, 8)
	b.R(isa.SUB, rG, rC, rF)
	b.St(rG, rB, 16)
	b.I(isa.ADDI, rA, rA, 24)
	b.I(isa.ADDI, rB, rB, 24)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "px")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regA, pixels*3, func(i int) uint64 { return uint64(rng.Intn(256)) })
	}
}

// rotate: image-rotation flavour — sequential reads, long-stride writes
// (the column-major store stream defeats L1 but is perfectly strided).
func buildRotate(seed int64) (*isa.Program, func(*emu.Memory)) {
	const w = 1024
	const h = 256
	b := isa.NewBuilder("rotate")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, 0) // y
	b.Label("row")
	b.Li(rB, 0) // x
	// in row base = regA + y*w*8 ; out col base = regB + y*8
	b.Li(rC, regA)
	b.Li(rE, w*8)
	b.R(isa.MUL, rE, rA, rE)
	b.R(isa.ADD, rC, rC, rE)
	b.Li(rD, regB)
	b.I(isa.SHLI, rE, rA, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Label("col")
	b.Ld(rF, rC, 0)
	b.St(rF, rD, 0)
	b.I(isa.ADDI, rC, rC, 8)
	b.I(isa.ADDI, rD, rD, int64(h*8)) // out[x*h + y]
	b.I(isa.ADDI, rB, rB, 1)
	b.Li(rE, w)
	b.Br(isa.BNE, rB, rE, "col")
	b.I(isa.ADDI, rA, rA, 1)
	b.Li(rE, h)
	b.Br(isa.BNE, rA, rE, "row")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regA, w*h, func(i int) uint64 { return uint64(rng.Intn(1 << 24)) })
	}
}

// kmeans: clustering flavour — FP distance loops over points with a
// centroid argmin and assignment stores.
func buildKmeans(seed int64) (*isa.Program, func(*emu.Memory)) {
	const points = 1 << 15
	const k = 8
	const dims = 4
	f0, f1, f2, f3 := isa.FReg(0), isa.FReg(1), isa.FReg(2), isa.FReg(3)
	b := isa.NewBuilder("kmeans")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, regA) // point base
	b.Li(rI, points)
	b.Label("pt")
	b.Li(rJ, 0)     // best centroid
	b.Li(rK, 0)     // centroid index
	b.Li(rL, 1<<40) // best distance (int compare of FP bits is fine for
	b.Li(rB, regB)  // positive floats)
	b.Label("cent")
	// Squared distance over dims.
	b.Li(rM, 0)
	b.R(isa.FCVT, f3, rM, 0)
	for d := int64(0); d < dims; d++ {
		b.Fld(f0, rA, d*8)
		b.Fld(f1, rB, d*8)
		b.R(isa.FSUB, f2, f0, f1)
		b.R(isa.FMUL, f2, f2, f2)
		b.R(isa.FADD, f3, f3, f2)
	}
	// Compare via FCMP.
	b.Li(rN, regE)
	b.Fst(f3, rN, 0)
	b.Ld(rM, rN, 0) // raw bits of non-negative float order like ints
	b.R(isa.SLT, rE, rM, rL)
	b.Br(isa.BEQ, rE, isa.RegZero, "nobest")
	b.Mov(rL, rM)
	b.Mov(rJ, rK)
	b.Label("nobest")
	b.I(isa.ADDI, rB, rB, dims*8)
	b.I(isa.ADDI, rK, rK, 1)
	b.Li(rE, k)
	b.Br(isa.BNE, rK, rE, "cent")
	// assignment store
	b.Li(rC, regC)
	b.R(isa.ADD, rC, rC, rI) // reuse counter as offset surrogate
	b.St(rJ, rC, 0)
	b.I(isa.ADDI, rA, rA, dims*8)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "pt")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		fillWords(m, regA, points*dims, func(i int) uint64 { return floatBits(rng.Float64() * 100) })
		fillWords(m, regB, k*dims, func(i int) uint64 { return floatBits(rng.Float64() * 100) })
	}
}
