package workloads

import (
	"testing"

	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	ws := All()
	if len(ws) != 25 {
		t.Fatalf("expected 25 workloads, got %d", len(ws))
	}
	for _, w := range ws {
		prog, setup := w.Build(1)
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if setup == nil {
			t.Fatalf("%s: nil setup", w.Name)
		}
	}
}

func TestAllWorkloadsExecute(t *testing.T) {
	// Every workload must run 50k instructions functionally without
	// halting, jumping out of range, or dividing the machine into a
	// stuck state.
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, setup := w.Build(1)
			mem := emu.NewMemory()
			setup(mem)
			m := emu.NewMachine(prog, mem)
			n := m.Run(50_000, nil)
			if n < 50_000 {
				t.Fatalf("halted after %d instructions", n)
			}
			if m.Halted {
				t.Fatal("machine halted prematurely")
			}
		})
	}
}

func TestWorkloadsAreDeterministicPerSeed(t *testing.T) {
	for _, w := range All()[:5] {
		p1, s1 := w.Build(7)
		p2, s2 := w.Build(7)
		m1, m2 := emu.NewMemory(), emu.NewMemory()
		s1(m1)
		s2(m2)
		a := emu.NewMachine(p1, m1)
		b := emu.NewMachine(p2, m2)
		for i := 0; i < 5000; i++ {
			d1, d2 := a.Step(), b.Step()
			if d1.PC != d2.PC || d1.Val != d2.Val {
				t.Fatalf("%s: diverged at step %d", w.Name, i)
			}
		}
	}
}

func TestSeedsChangeData(t *testing.T) {
	// Different seeds must produce different dynamic behaviour for at
	// least the data-dependent workloads (training vs evaluation inputs).
	w := ByName("mcf")
	p1, s1 := w.Build(1)
	p2, s2 := w.Build(2)
	m1, m2 := emu.NewMemory(), emu.NewMemory()
	s1(m1)
	s2(m2)
	a := emu.NewMachine(p1, m1)
	b := emu.NewMachine(p2, m2)
	differ := false
	for i := 0; i < 20000; i++ {
		d1, d2 := a.Step(), b.Step()
		if d1.In.Op.IsLoad() && d2.In.Op.IsLoad() && d1.EA != d2.EA {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("seeds 1 and 2 produce identical address streams")
	}
}

func TestSuiteMembership(t *testing.T) {
	counts := map[string]int{}
	for _, w := range All() {
		counts[w.Suite]++
	}
	want := map[string]int{"spec": 10, "crono": 5, "star": 4, "npb": 6}
	for s, n := range want {
		if counts[s] != n {
			t.Fatalf("suite %s has %d workloads, want %d", s, counts[s], n)
		}
	}
	for _, s := range Suites {
		if len(BySuite(s)) != want[s] {
			t.Fatalf("BySuite(%s) inconsistent", s)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if ByName("nonexistent") != nil {
		t.Fatal("ByName returned a workload for a bogus name")
	}
	if len(Names()) != 25 {
		t.Fatal("Names() incomplete")
	}
	for _, n := range Names() {
		if ByName(n) == nil {
			t.Fatalf("round trip failed for %s", n)
		}
	}
}

// Behavioural sanity: libq must be overwhelmingly strided; mcf's loads
// must be irregular; md5 must be branch-predictable and low-miss.
func TestWorkloadBehaviourClasses(t *testing.T) {
	loadStrides := func(name string, steps int) (regular, total int) {
		w := ByName(name)
		prog, setup := w.Build(1)
		mem := emu.NewMemory()
		setup(mem)
		m := emu.NewMachine(prog, mem)
		last := map[int]uint64{}
		stride := map[int]int64{}
		for i := 0; i < steps; i++ {
			d := m.Step()
			if !d.In.Op.IsLoad() {
				continue
			}
			if la, ok := last[d.PC]; ok {
				s := int64(d.EA) - int64(la)
				if st, ok2 := stride[d.PC]; ok2 {
					total++
					if s == st && s != 0 {
						regular++
					}
				}
				stride[d.PC] = s
			}
			last[d.PC] = d.EA
		}
		return regular, total
	}

	reg, tot := loadStrides("libq", 50_000)
	if tot == 0 || float64(reg)/float64(tot) < 0.95 {
		t.Fatalf("libq not strided: %d/%d", reg, tot)
	}
	// mcf mixes a strided arc scan with an irregular node gather: a
	// substantial fraction of its load pairs must be non-strided.
	reg, tot = loadStrides("mcf", 50_000)
	if tot > 0 && float64(reg)/float64(tot) > 0.8 {
		t.Fatalf("mcf too regular: %d/%d", reg, tot)
	}
}

var _ = isa.NOP // keep the import for builders referenced in tests
