// Package workloads provides the 25 synthetic benchmarks used to
// reproduce the paper's evaluation. Each workload reproduces the dominant
// microarchitectural behaviour of one benchmark from the paper's four
// suites (SPEC2006, CRONO, STARBENCH, NPB): its memory access structure
// (strided / pointer-chasing / gather / scatter), branch behaviour, and
// compute mix. Workloads are parameterized by an input seed; the harness
// profiles on one seed (the "training input") and evaluates on another,
// exactly as the paper uses training inputs for skeleton construction.
package workloads

import (
	"math/rand"
	"sort"

	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

// Workload is one benchmark: a program builder and its data initializer.
type Workload struct {
	Name  string
	Suite string // "spec", "crono", "star", "npb"
	Build func(seed int64) (*isa.Program, func(*emu.Memory))
}

// Suites lists the suite names in the paper's presentation order.
var Suites = []string{"spec", "crono", "star", "npb"}

// All returns every workload in deterministic order.
func All() []*Workload {
	var out []*Workload
	out = append(out, specSuite()...)
	out = append(out, cronoSuite()...)
	out = append(out, starSuite()...)
	out = append(out, npbSuite()...)
	return out
}

// BySuite returns the workloads of one suite.
func BySuite(suite string) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Suite == suite {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the named workload or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Names returns all workload names.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------- common

// Register conventions shared by the builders below.
const (
	rA = 1 + iota // generic temporaries / loop counters
	rB
	rC
	rD
	rE
	rF
	rG
	rH
	rI
	rJ
	rK
	rL
	rM
	rN
	rO
	rP
)

// Memory regions (byte addresses). Regions are spaced far apart so
// footprints never collide.
const (
	regA       = 0x0100_0000
	regB       = 0x0800_0000
	regC       = 0x1000_0000
	regD       = 0x1800_0000
	regE       = 0x2000_0000
	regF       = 0x2800_0000
	regScratch = 0x3000_0000 // write-only bookkeeping sink
)

// fillWords writes n sequential words at base with values from gen.
func fillWords(m *emu.Memory, base uint64, n int, gen func(i int) uint64) {
	for i := 0; i < n; i++ {
		m.Write(base+uint64(i)*8, gen(i))
	}
}

// csr is a compressed-sparse-row graph laid out in memory:
//
//	rowPtr: regA + v*8        (V+1 words)
//	colIdx: regB + e*8        (E words)
//	data1:  regC + v*8        (per-vertex value)
//	data2:  regD + v*8        (per-vertex scratch)
type csr struct {
	V, E int
}

// buildCSR materializes a random graph with out-degree ~deg.
func buildCSR(m *emu.Memory, rng *rand.Rand, v, deg int) csr {
	edges := make([][]int32, v)
	total := 0
	for i := range edges {
		d := 1 + rng.Intn(deg*2)
		edges[i] = make([]int32, d)
		for j := range edges[i] {
			edges[i][j] = int32(rng.Intn(v))
		}
		total += d
	}
	off := 0
	for i := 0; i < v; i++ {
		m.Write(regA+uint64(i)*8, uint64(off))
		for _, c := range edges[i] {
			m.Write(regB+uint64(off)*8, uint64(c))
			off++
		}
	}
	m.Write(regA+uint64(v)*8, uint64(off))
	return csr{V: v, E: total}
}

// emitXorshift appends a xorshift64 step on reg, clobbering tmp.
func emitXorshift(b *isa.Builder, reg, tmp uint8) {
	b.I(isa.SHLI, tmp, reg, 13)
	b.R(isa.XOR, reg, reg, tmp)
	b.I(isa.SHRI, tmp, reg, 7)
	b.R(isa.XOR, reg, reg, tmp)
	b.I(isa.SHLI, tmp, reg, 17)
	b.R(isa.XOR, reg, reg, tmp)
}

// Payload registers: bookkeeping work uses registers no builder touches
// for control or addressing, so the skeleton generator provably excludes
// the payload (it feeds neither branches nor any included load's address).
// This mirrors real programs, whose loop bodies mostly transform loaded
// data rather than compute addresses — exactly the work a look-ahead
// skeleton strips (the paper's skeletons average ~1/3 of the program).
const (
	pR1 = 20
	pR2 = 21
	pR3 = 22
)

// emitPayloadInt appends ~n integer ALU instructions of loop-carried
// data processing seeded from src, ending in a store to the write-only
// scratch region (never reloaded, so the whole chain is skeleton-free).
func emitPayloadInt(b *isa.Builder, src uint8, n int) {
	ops := []func(i int64){
		func(i int64) { b.R(isa.ADD, pR1, pR1, src) },
		func(i int64) { b.R(isa.XOR, pR2, pR2, pR1) },
		func(i int64) { b.I(isa.SHRI, pR3, pR2, 5) },
		func(i int64) { b.R(isa.SUB, pR1, pR1, pR3) },
		func(i int64) { b.R(isa.MUL, pR2, pR2, pR1) },
		func(i int64) { b.I(isa.ADDI, pR1, pR1, 17) },
		func(i int64) { b.I(isa.SHLI, pR3, pR1, 3) },
		func(i int64) { b.R(isa.OR, pR2, pR2, pR3) },
	}
	for i := 0; i < n; i++ {
		ops[i%len(ops)](int64(i))
	}
	b.Li(pR3, regScratch)
	b.St(pR2, pR3, 0)
}

// emitPayloadFP appends ~n floating-point instructions of loop-carried
// data processing seeded from the FP register fsrc, ending in a store to
// the scratch region.
func emitPayloadFP(b *isa.Builder, fsrc uint8, n int) {
	fa, fb := isa.FReg(10), isa.FReg(11)
	ops := []func(){
		func() { b.R(isa.FADD, fa, fa, fsrc) },
		func() { b.R(isa.FMUL, fb, fb, fsrc) },
		func() { b.R(isa.FSUB, fa, fa, fb) },
		func() { b.R(isa.FADD, fb, fb, fa) },
		func() { b.R(isa.FMUL, fa, fa, fa) },
	}
	for i := 0; i < n; i++ {
		ops[i%len(ops)]()
	}
	b.Li(pR3, regScratch+8)
	b.Fst(fa, pR3, 0)
}
