package workloads

import (
	"math/rand"

	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

// cronoSuite reproduces the CRONO graph-analytics workloads over random
// CSR graphs (the paper uses google/amazon/twitter/road-network inputs;
// we use seeded synthetic graphs of the same irregular-gather character).
func cronoSuite() []*Workload {
	return []*Workload{
		{Name: "bfs", Suite: "crono", Build: buildBFS},
		{Name: "sssp", Suite: "crono", Build: buildSSSP},
		{Name: "pagerank", Suite: "crono", Build: buildPagerank},
		{Name: "cc", Suite: "crono", Build: buildCC},
		{Name: "tri", Suite: "crono", Build: buildTri},
	}
}

const (
	graphV   = 1 << 16
	graphDeg = 4
)

// emitEdgeLoopHeader emits the standard CSR edge-scan prologue: for
// vertex rA, loads edge range [rB, rC) from rowPtr.
func emitEdgeLoopHeader(b *isa.Builder) {
	b.Li(rD, regA)
	b.I(isa.SHLI, rE, rA, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rB, rD, 0) // rowPtr[v]
	b.Ld(rC, rD, 8) // rowPtr[v+1]
}

// bfs: frontier-less sweep variant — iterate all vertices, and for the
// unvisited ones whose distance is set, relax neighbours (level-
// synchronous BFS as CRONO implements it).
func buildBFS(seed int64) (*isa.Program, func(*emu.Memory)) {
	b := isa.NewBuilder("bfs")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, 0) // vertex
	b.Label("vloop")
	// dist[v]
	b.Li(rF, regC)
	b.I(isa.SHLI, rE, rA, 3)
	b.R(isa.ADD, rF, rF, rE)
	b.Ld(rG, rF, 0)
	// Skip unreached vertices (depends on data: irregular branch).
	b.Br(isa.BEQ, rG, isa.RegZero, "nextv")
	emitPayloadInt(b, rG, 30)
	emitEdgeLoopHeader(b)
	b.Label("eloop")
	b.R(isa.SLT, rE, rB, rC)
	b.Br(isa.BEQ, rE, isa.RegZero, "nextv")
	// neighbour = colIdx[e]
	b.Li(rD, regB)
	b.I(isa.SHLI, rE, rB, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rH, rD, 0)
	// dist[n] = min(dist[n], dist[v]+1): gather + conditional store
	b.Li(rI, regC)
	b.I(isa.SHLI, rE, rH, 3)
	b.R(isa.ADD, rI, rI, rE)
	b.Ld(rJ, rI, 0)
	b.I(isa.ADDI, rK, rG, 1)
	b.R(isa.SLT, rE, rK, rJ)
	b.Br(isa.BEQ, rE, isa.RegZero, "norelax")
	b.St(rK, rI, 0)
	b.Label("norelax")
	b.I(isa.ADDI, rB, rB, 1)
	b.Jmp("eloop")
	b.Label("nextv")
	b.I(isa.ADDI, rA, rA, 1)
	b.Li(rE, graphV)
	b.Br(isa.BNE, rA, rE, "vloop")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), graphSetup(seed, true)
}

// graphSetup builds the CSR plus per-vertex arrays.
func graphSetup(seed int64, distances bool) func(*emu.Memory) {
	return func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		buildCSR(m, rng, graphV, graphDeg)
		for v := 0; v < graphV; v++ {
			if distances {
				// Sparse initial reachability, large distances elsewhere.
				d := uint64(1 << 30)
				if rng.Intn(64) == 0 {
					d = uint64(rng.Intn(4) + 1)
				}
				m.Write(regC+uint64(v)*8, d)
			} else {
				m.Write(regC+uint64(v)*8, uint64(rng.Intn(1000)+1))
			}
			m.Write(regD+uint64(v)*8, uint64(v))
		}
	}
}

// sssp: Bellman-Ford-style relaxation sweeps with weighted edges (weight
// derived from the neighbour id to avoid a third array).
func buildSSSP(seed int64) (*isa.Program, func(*emu.Memory)) {
	b := isa.NewBuilder("sssp")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, 0)
	b.Label("vloop")
	b.Li(rF, regC)
	b.I(isa.SHLI, rE, rA, 3)
	b.R(isa.ADD, rF, rF, rE)
	b.Ld(rG, rF, 0) // dist[v]
	emitPayloadInt(b, rG, 30)
	emitEdgeLoopHeader(b)
	b.Label("eloop")
	b.R(isa.SLT, rE, rB, rC)
	b.Br(isa.BEQ, rE, isa.RegZero, "nextv")
	b.Li(rD, regB)
	b.I(isa.SHLI, rE, rB, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rH, rD, 0) // neighbour
	b.I(isa.ANDI, rL, rH, 63)
	b.I(isa.ADDI, rL, rL, 1) // weight
	b.R(isa.ADD, rK, rG, rL)
	b.Li(rI, regC)
	b.I(isa.SHLI, rE, rH, 3)
	b.R(isa.ADD, rI, rI, rE)
	b.Ld(rJ, rI, 0)
	b.R(isa.SLT, rE, rK, rJ)
	b.Br(isa.BEQ, rE, isa.RegZero, "norelax")
	b.St(rK, rI, 0)
	b.Label("norelax")
	b.I(isa.ADDI, rB, rB, 1)
	b.Jmp("eloop")
	b.Label("nextv")
	b.I(isa.ADDI, rA, rA, 1)
	b.Li(rE, graphV)
	b.Br(isa.BNE, rA, rE, "vloop")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), graphSetup(seed, false)
}

// pagerank: rank gather over incoming neighbours with FP accumulation.
func buildPagerank(seed int64) (*isa.Program, func(*emu.Memory)) {
	b := isa.NewBuilder("pagerank")
	f0, f1, f2 := isa.FReg(0), isa.FReg(1), isa.FReg(2)
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, 0)
	b.Label("vloop")
	b.Li(rL, 0)
	b.R(isa.FCVT, f1, rL, 0) // sum = 0.0
	emitEdgeLoopHeader(b)
	b.Label("eloop")
	b.R(isa.SLT, rE, rB, rC)
	b.Br(isa.BEQ, rE, isa.RegZero, "flush")
	b.Li(rD, regB)
	b.I(isa.SHLI, rE, rB, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rH, rD, 0) // neighbour
	// rank[n] (FP gather)
	b.Li(rI, regC)
	b.I(isa.SHLI, rE, rH, 3)
	b.R(isa.ADD, rI, rI, rE)
	b.Fld(f0, rI, 0)
	b.R(isa.FADD, f1, f1, f0)
	b.I(isa.ADDI, rB, rB, 1)
	b.Jmp("eloop")
	b.Label("flush")
	// newrank[v] = 0.85 * sum (damping constant preloaded at regE)
	b.Li(rI, regE)
	b.Fld(f2, rI, 0)
	b.R(isa.FMUL, f1, f1, f2)
	b.Li(rI, regD)
	b.I(isa.SHLI, rE, rA, 3)
	b.R(isa.ADD, rI, rI, rE)
	b.Fst(f1, rI, 0)
	emitPayloadFP(b, f1, 24)
	b.I(isa.ADDI, rA, rA, 1)
	b.Li(rE, graphV)
	b.Br(isa.BNE, rA, rE, "vloop")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		buildCSR(m, rng, graphV, graphDeg)
		for v := 0; v < graphV; v++ {
			m.Write(regC+uint64(v)*8, floatBits(1.0/float64(graphV)))
		}
		m.Write(regE, floatBits(0.85))
	}
}

// cc: connected components by label propagation.
func buildCC(seed int64) (*isa.Program, func(*emu.Memory)) {
	b := isa.NewBuilder("cc")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, 0)
	b.Label("vloop")
	b.Li(rF, regD)
	b.I(isa.SHLI, rE, rA, 3)
	b.R(isa.ADD, rF, rF, rE)
	b.Ld(rG, rF, 0) // label[v]
	emitEdgeLoopHeader(b)
	b.Label("eloop")
	b.R(isa.SLT, rE, rB, rC)
	b.Br(isa.BEQ, rE, isa.RegZero, "wb")
	b.Li(rD, regB)
	b.I(isa.SHLI, rE, rB, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rH, rD, 0)
	b.Li(rI, regD)
	b.I(isa.SHLI, rE, rH, 3)
	b.R(isa.ADD, rI, rI, rE)
	b.Ld(rJ, rI, 0)          // label[n]
	b.R(isa.SLT, rE, rJ, rG) // adopt smaller label
	b.Br(isa.BEQ, rE, isa.RegZero, "noadopt")
	b.Mov(rG, rJ)
	b.Label("noadopt")
	b.I(isa.ADDI, rB, rB, 1)
	b.Jmp("eloop")
	b.Label("wb")
	b.St(rG, rF, 0)
	emitPayloadInt(b, rG, 30)
	b.I(isa.ADDI, rA, rA, 1)
	b.Li(rE, graphV)
	b.Br(isa.BNE, rA, rE, "vloop")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), graphSetup(seed, false)
}

// tri: triangle counting — for each vertex, for each neighbour pair,
// probe adjacency via a hashed edge-signature table (CRONO's intersection
// flavour with unpredictable probe branches).
func buildTri(seed int64) (*isa.Program, func(*emu.Memory)) {
	b := isa.NewBuilder("tri")
	b.Li(rO, 1<<30)
	b.Label("outer")
	b.Li(rA, 0)
	b.Label("vloop")
	emitEdgeLoopHeader(b)
	b.Label("e1")
	b.R(isa.SLT, rE, rB, rC)
	b.Br(isa.BEQ, rE, isa.RegZero, "nextv")
	b.Li(rD, regB)
	b.I(isa.SHLI, rE, rB, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rH, rD, 0) // u
	b.I(isa.ADDI, rI, rB, 1)
	b.Label("e2")
	b.R(isa.SLT, rE, rI, rC)
	b.Br(isa.BEQ, rE, isa.RegZero, "e1next")
	b.Li(rD, regB)
	b.I(isa.SHLI, rE, rI, 3)
	b.R(isa.ADD, rD, rD, rE)
	b.Ld(rJ, rD, 0) // w
	// Probe the edge-signature table for (u,w).
	b.I(isa.SHLI, rK, rH, 16)
	b.R(isa.XOR, rK, rK, rJ)
	b.Li(rL, graphV-1)
	b.R(isa.AND, rK, rK, rL)
	b.I(isa.SHLI, rK, rK, 3)
	b.Li(rL, regE)
	b.R(isa.ADD, rL, rL, rK)
	b.Ld(rM, rL, 0)
	b.R(isa.XOR, rM, rM, rH)
	b.I(isa.ANDI, rM, rM, 7)
	b.Br(isa.BNE, rM, isa.RegZero, "notri")
	b.I(isa.ADDI, rG, rG, 1) // triangle found
	b.Label("notri")
	emitPayloadInt(b, rM, 16)
	b.I(isa.ADDI, rI, rI, 1)
	b.Jmp("e2")
	b.Label("e1next")
	b.I(isa.ADDI, rB, rB, 1)
	b.Jmp("e1")
	b.Label("nextv")
	b.I(isa.ADDI, rA, rA, 1)
	b.Li(rE, graphV)
	b.Br(isa.BNE, rA, rE, "vloop")
	b.I(isa.ADDI, rO, rO, -1)
	b.Br(isa.BNE, rO, isa.RegZero, "outer")
	b.Halt()
	return b.Program(), func(m *emu.Memory) {
		rng := rand.New(rand.NewSource(seed))
		buildCSR(m, rng, graphV, graphDeg)
		fillWords(m, regE, graphV, func(i int) uint64 { return rng.Uint64() })
	}
}

func floatBits(f float64) uint64 {
	return mathFloat64bits(f)
}
