// Package resultstore persists finished simulation answers on disk, so
// the whole answer set survives an r3dlad restart: a rebooted server (or
// a sibling process sharing the directory) serves a repeated request from
// a file read instead of re-running the cycle-accurate simulation. It is
// the durable tier of the multi-tenant result fabric — the in-memory
// singleflight caches dedup within a process lifetime, the store dedups
// across lifetimes and across tenants.
//
// The store is content-addressed by the caller's canonical run key
// (workload|configKey@budget) and holds opaque byte payloads, so it never
// imports the result types it persists. Entries follow the prep cache's
// integrity discipline: a magic/version/fingerprint/key/length/checksum
// header guards every payload, writes are atomic (unique per-process temp
// file + rename), and any anomaly on read — torn write, version bump,
// fingerprint or key mismatch, checksum failure — is a silent miss that
// also deletes the damaged file, never an error. The caller regenerates
// and overwrites.
//
// The store is LRU-bounded by entry count: recency is the file mtime
// (refreshed on every hit), so the eviction order itself survives
// restarts. Concurrent use by multiple goroutines is safe; concurrent use
// by multiple processes is safe in the prep cache's sense — atomic renames
// mean readers only ever observe complete files.
package resultstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"r3dla/internal/atomicio"
	"r3dla/internal/faultinject"
)

// Version is the on-disk format version; bumping it orphans (and thereby
// regenerates) every existing entry.
const Version = 1

// magic identifies a result-store file.
var magic = [4]byte{'R', '3', 'R', 'S'}

// ext is the entry file suffix.
const ext = ".res"

// Stats is a point-in-time snapshot of the store's counters. Hits,
// Misses, Evictions and Puts are cumulative for this process; Entries is
// the live entry count.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Puts      int64 `json:"puts"`
	Entries   int   `json:"entries"`
}

// Store is a directory of result entries plus an in-memory LRU index.
// The zero value is not usable; call Open.
type Store struct {
	dir    string
	fp     uint64             // caller's fingerprint, folded into every entry header
	max    int                // entry bound (0 = unlimited)
	faults *faultinject.Plane // nil in production; Get/Put fault gates

	mu      sync.Mutex
	order   []string // keys, least-recently-used first
	present map[string]bool

	hits, misses, evictions, puts int64
}

// Open opens (creating if needed) a result store rooted at dir.
// fingerprint ties every entry to the caller's result semantics — bump it
// (or fold a version constant into it) and every existing entry reads as
// a miss. maxEntries bounds the store size (0 = unlimited); existing
// entries beyond the bound are evicted oldest-first immediately.
func Open(dir string, fingerprint uint64, maxEntries int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{dir: dir, fp: fingerprint, max: maxEntries, present: make(map[string]bool)}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictOverLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetFaults attaches a fault-injection plane (nil detaches). Chaos-only:
// call before the store sees traffic.
func (s *Store) SetFaults(p *faultinject.Plane) { s.faults = p }

// Len reports the live entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Evictions: s.evictions, Puts: s.puts,
		Entries: len(s.order),
	}
}

// scan rebuilds the LRU index from the directory: every well-formed entry
// file joins the index ordered by mtime (oldest first); unreadable or
// foreign files are left alone (they read as misses and are reclaimed
// when their key is next written).
func (s *Store) scan() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	type rec struct {
		key string
		mod time.Time
	}
	var recs []rec
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ext) {
			continue
		}
		key, ok := readKey(filepath.Join(s.dir, name))
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		recs = append(recs, rec{key: key, mod: info.ModTime()})
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].mod.Equal(recs[j].mod) {
			return recs[i].mod.Before(recs[j].mod)
		}
		return recs[i].key < recs[j].key // deterministic order for equal mtimes
	})
	for _, r := range recs {
		if !s.present[r.key] {
			s.present[r.key] = true
			s.order = append(s.order, r.key)
		}
	}
	return nil
}

// path maps a key to its file, sanitized so keys never escape the store
// directory. Sanitization collisions are harmless: the exact key is
// embedded in the header and verified on load.
func (s *Store) path(key string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '@', r == '.':
			return r
		}
		return '_'
	}, key)
	return filepath.Join(s.dir, clean+ext)
}

// encode renders the framed entry: header (magic, version, fingerprint,
// key) then length-prefixed, checksummed body.
func (s *Store) encode(key string, body []byte) []byte {
	var f bytes.Buffer
	f.Grow(len(key) + len(body) + 32)
	f.Write(magic[:])
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], Version)
	f.Write(u32[:])
	binary.LittleEndian.PutUint64(u64[:], s.fp)
	f.Write(u64[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(key)))
	f.Write(u32[:])
	f.WriteString(key)
	binary.LittleEndian.PutUint64(u64[:], uint64(len(body)))
	f.Write(u64[:])
	sum := fnv.New64a()
	sum.Write(body)
	binary.LittleEndian.PutUint64(u64[:], sum.Sum64())
	f.Write(u64[:])
	f.Write(body)
	return f.Bytes()
}

// fixedHeader is the byte length of the fields before the variable key.
const fixedHeader = 4 + 4 + 8 + 4 // magic, version, fingerprint, keyLen

// readKey extracts the embedded key from an entry file without
// validating the body (index-rebuild use). ok=false on any header
// anomaly.
func readKey(path string) (string, bool) {
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) < fixedHeader {
		return "", false
	}
	if !bytes.Equal(raw[:4], magic[:]) {
		return "", false
	}
	if binary.LittleEndian.Uint32(raw[4:8]) != Version {
		return "", false
	}
	keyLen := int(binary.LittleEndian.Uint32(raw[16:20]))
	if keyLen < 0 || len(raw) < fixedHeader+keyLen {
		return "", false
	}
	return string(raw[fixedHeader : fixedHeader+keyLen]), true
}

// decode validates a framed entry against key and the store fingerprint,
// returning the body. ok=false on any anomaly.
func (s *Store) decode(raw []byte, key string) ([]byte, bool) {
	if len(raw) < fixedHeader {
		return nil, false
	}
	if !bytes.Equal(raw[:4], magic[:]) {
		return nil, false
	}
	if binary.LittleEndian.Uint32(raw[4:8]) != Version {
		return nil, false
	}
	if binary.LittleEndian.Uint64(raw[8:16]) != s.fp {
		return nil, false
	}
	keyLen := int(binary.LittleEndian.Uint32(raw[16:20]))
	rest := raw[fixedHeader:]
	if keyLen < 0 || len(rest) < keyLen+16 {
		return nil, false
	}
	if string(rest[:keyLen]) != key {
		return nil, false
	}
	rest = rest[keyLen:]
	bodyLen := binary.LittleEndian.Uint64(rest[:8])
	wantSum := binary.LittleEndian.Uint64(rest[8:16])
	body := rest[16:]
	if uint64(len(body)) != bodyLen {
		return nil, false
	}
	sum := fnv.New64a()
	sum.Write(body)
	if sum.Sum64() != wantSum {
		return nil, false
	}
	return body, true
}

// Get returns the stored payload for key. Any anomaly — missing file,
// damaged header or body, wrong fingerprint — is a miss; a damaged file
// is deleted so the next Put rebuilds it cleanly. A hit refreshes the
// entry's recency (in memory and, best-effort, the file mtime, so LRU
// order survives restarts).
func (s *Store) Get(key string) ([]byte, bool) {
	if s.faults != nil {
		o := s.faults.At(faultinject.ResultStoreGet)
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Err != nil {
			// An injected read fault is the same silent miss a damaged
			// frame would be — the caller regenerates.
			s.mu.Lock()
			s.misses++
			s.mu.Unlock()
			return nil, false
		}
	}
	path := s.path(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses++
		s.dropLocked(key)
		return nil, false
	}
	body, ok := s.decode(raw, key)
	if !ok {
		s.misses++
		s.dropLocked(key)
		os.Remove(path)
		return nil, false
	}
	s.hits++
	s.touchLocked(key)
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort: persists recency across restarts
	return body, true
}

// Put stores payload under key (overwriting any previous entry) and
// evicts least-recently-used entries beyond the bound. The write is
// atomic and durable: temp file + fsync + rename + parent-directory
// fsync, so concurrent readers — in this process or another sharing the
// directory — see either the old entry or the new one, never a torn
// file, and a power loss after Put returns cannot roll the entry back.
func (s *Store) Put(key string, payload []byte) error {
	framed := s.encode(key, payload)
	if err := atomicio.WriteFile(s.path(key), framed, 0o644, s.faults, faultinject.ResultStorePut); err != nil {
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	s.mu.Lock()
	s.puts++
	s.touchLocked(key)
	s.evictOverLocked()
	s.mu.Unlock()
	return nil
}

// touchLocked moves key to the most-recently-used end (inserting it if
// new).
func (s *Store) touchLocked(key string) {
	if s.present[key] {
		for i, k := range s.order {
			if k == key {
				s.order = append(append(s.order[:i:i], s.order[i+1:]...), key)
				return
			}
		}
	}
	s.present[key] = true
	s.order = append(s.order, key)
}

// dropLocked removes key from the index (file already gone or damaged).
func (s *Store) dropLocked(key string) {
	if !s.present[key] {
		return
	}
	delete(s.present, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			return
		}
	}
}

// evictOverLocked deletes least-recently-used entries until the store is
// within its bound.
func (s *Store) evictOverLocked() {
	if s.max <= 0 {
		return
	}
	for len(s.order) > s.max {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.present, victim)
		os.Remove(s.path(victim))
		s.evictions++
	}
}
