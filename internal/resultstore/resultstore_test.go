package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

const testFP = 0xfeedface

func open(t *testing.T, dir string, max int) *Store {
	t.Helper()
	s, err := Open(dir, testFP, max)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	key := "mcf|dla@150000"
	payload := []byte(`{"workload":"mcf","ipc":1.25}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store served a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: ok=%v got=%q want=%q", ok, got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestStoreSurvivesRestart is the store's reason to exist: a fresh Store
// over a warm directory serves the old process's answers.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	if err := s1.Put("bfs|r3@2000", []byte("answer")); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 0)
	if got, ok := s2.Get("bfs|r3@2000"); !ok || string(got) != "answer" {
		t.Fatalf("restart lost the entry: ok=%v got=%q", ok, got)
	}
	if s2.Len() != 1 {
		t.Fatalf("restart index has %d entries, want 1", s2.Len())
	}
}

// TestStoreFingerprintMismatch: entries written under a different
// fingerprint (older simulator semantics) read as misses.
func TestStoreFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	if err := s1.Put("k", []byte("old semantics")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, testFP+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("k"); ok {
		t.Fatal("fingerprint mismatch served a hit")
	}
}

// TestStoreCorruptionIsMiss walks the fault catalogue: every damaged
// byte, truncation or foreign file must load as a clean miss, never an
// error or a wrong payload, and the damaged file must be reclaimed.
func TestStoreCorruptionIsMiss(t *testing.T) {
	key := "mcf|r3@4000"
	payload := []byte("the cached answer bytes")
	for _, tc := range []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"truncated header", func(t *testing.T, path string) { rewrite(t, path, func(b []byte) []byte { return b[:8] }) }},
		{"truncated body", func(t *testing.T, path string) { rewrite(t, path, func(b []byte) []byte { return b[:len(b)-3] }) }},
		{"wrong magic", func(t *testing.T, path string) {
			rewrite(t, path, func(b []byte) []byte { b[0] ^= 0xff; return b })
		}},
		{"wrong version", func(t *testing.T, path string) {
			rewrite(t, path, func(b []byte) []byte { b[4] ^= 0xff; return b })
		}},
		{"flipped body byte", func(t *testing.T, path string) {
			rewrite(t, path, func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
		}},
		{"flipped checksum", func(t *testing.T, path string) {
			rewrite(t, path, func(b []byte) []byte { b[len(b)-len(payload)-1] ^= 1; return b })
		}},
		{"empty file", func(t *testing.T, path string) { rewrite(t, path, func([]byte) []byte { return nil }) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, 0)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			tc.damage(t, s.path(key))
			if got, ok := s.Get(key); ok {
				t.Fatalf("damaged entry served a hit: %q", got)
			}
			if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
				t.Fatal("damaged file was not reclaimed")
			}
			// The store still works for the same key afterwards.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("store unusable after damage: ok=%v got=%q", ok, got)
			}
		})
	}
}

// TestStoreKeyMismatch: a file renamed onto another key's path (or a
// sanitization collision) must miss — the embedded key is authoritative.
func TestStoreKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.Put("key-a", []byte("a's answer")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path("key-a"), s.path("key-b")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("key-b"); ok {
		t.Fatalf("renamed entry served the wrong key: %q", got)
	}
}

// TestStorePathSanitization: hostile keys stay inside the store
// directory and still round-trip.
func TestStorePathSanitization(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	key := "../../etc/passwd|evil/../@42"
	if err := s.Put(key, []byte("contained")); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("store dir has %d entries, want 1 (escaped?)", len(ents))
	}
	if got, ok := s.Get(key); !ok || string(got) != "contained" {
		t.Fatalf("hostile key round trip: ok=%v got=%q", ok, got)
	}
	if _, err := os.Stat(filepath.Join(dir, "..", "..", "etc", "passwd")); err == nil {
		t.Fatal("key escaped the store directory")
	}
}

// TestStoreLRUEviction: the bound holds, the oldest (least recently
// touched) entry goes first, and a Get refreshes recency.
func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 3)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	if err := s.Put("k3", []byte{3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("LRU victim k1 survived")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted, want k1 only", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats %+v, want 1 eviction and 3 entries", st)
	}
}

// TestStoreRestartEvictsOverBound: reopening with a smaller bound trims
// oldest-first, using mtimes persisted by the previous process.
func TestStoreRestartEvictsOverBound(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	for i := 0; i < 4; i++ {
		if err := s1.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the restart scan sees an unambiguous order.
		past := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(s1.path(fmt.Sprintf("k%d", i)), past, past); err != nil {
			t.Fatal(err)
		}
	}
	s2 := open(t, dir, 2)
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2", s2.Len())
	}
	for _, k := range []string{"k0", "k1"} {
		if _, ok := s2.Get(k); ok {
			t.Fatalf("oldest entry %s survived the restart trim", k)
		}
	}
	for _, k := range []string{"k2", "k3"} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("newest entry %s was trimmed", k)
		}
	}
}

// TestStoreConcurrentAccess hammers one store from many goroutines (run
// under -race in CI): every Get must return either a miss or a complete,
// valid payload for its key.
func TestStoreConcurrentAccess(t *testing.T) {
	s := open(t, t.TempDir(), 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12)
				want := []byte("payload-" + key)
				if err := s.Put(key, want); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
				if got, ok := s.Get(key); ok && !bytes.Equal(got, want) {
					t.Errorf("get %s: wrong payload %q", key, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// rewrite mutates a stored file in place.
func rewrite(t *testing.T, path string, f func([]byte) []byte) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}
