package resultstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"r3dla/internal/faultinject"
)

// A torn Put — the crash-before-sync shape — must leave the store
// serving a silent miss, never an error or a wrong payload, and the next
// Put must repair the entry.
func TestTornPutReadsAsSilentMiss(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	p := faultinject.New(31)
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.Torn, Limit: 1})
	s.SetFaults(p)

	key := "mcf|r3@4000"
	payload := []byte("the cached answer bytes, long enough to tear meaningfully")
	err := s.Put(key, payload)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn Put returned %v, want ErrInjected", err)
	}
	// The torn frame is on disk at the final path — exactly what a power
	// loss before fsync used to leave. Reading it must be a miss that
	// also reclaims the damaged file.
	if _, ok := s.Get(key); ok {
		t.Fatal("torn frame served a hit")
	}
	if _, serr := os.Stat(s.path(key)); !os.IsNotExist(serr) {
		t.Fatal("damaged frame was not reclaimed")
	}
	// Limit spent: the retry writes a clean, durable frame.
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != string(payload) {
		t.Fatalf("repaired entry: ok=%v got=%q", ok, got)
	}
}

// Silent single-byte corruption (the write reports success) must be
// caught by the frame checksum on read.
func TestCorruptPutCaughtByChecksum(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	p := faultinject.New(32)
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.Corrupt, Limit: 1})
	s.SetFaults(p)

	key := "libq|dla@2000"
	if err := s.Put(key, []byte("payload that will rot on the way down")); err != nil {
		t.Fatalf("corrupt Put should report success, got %v", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupted frame served a hit")
	}
}

func TestENOSPCPutSurfacesError(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	p := faultinject.New(33)
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.ENOSPC, Limit: 1})
	s.SetFaults(p)

	err := s.Put("k", []byte("v"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("got %v, want ENOSPC", err)
	}
	if !strings.Contains(err.Error(), "resultstore") {
		t.Fatalf("error %q lost its package prefix", err)
	}
	// Nothing landed, nothing is indexed.
	if s.Len() != 0 {
		t.Fatalf("failed Put indexed an entry (len=%d)", s.Len())
	}
}

// An injected Get fault is a silent miss — the caller's regenerate path,
// not an error path.
func TestInjectedGetFaultIsMiss(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	p := faultinject.New(34)
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStoreGet, Mode: faultinject.Error, Limit: 1})
	s.SetFaults(p)

	if _, ok := s.Get("k"); ok {
		t.Fatal("injected read fault served a hit")
	}
	// The fault budget is spent; the entry itself is intact.
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("entry damaged by an injected read fault: ok=%v got=%q", ok, got)
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 miss + 1 hit", st)
	}
}

// The durable Put leaves no temp litter even across injected failures.
func TestNoTempLitterAfterFaults(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	p := faultinject.New(35)
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.ENOSPC, Prob: 0.5})
	s.SetFaults(p)
	for i := 0; i < 20; i++ {
		s.Put("k", []byte("v")) // errors expected; litter is not
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", filepath.Join(dir, e.Name()))
		}
	}
}
