package lab

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/energy"
	"r3dla/internal/exp"
	"r3dla/internal/faultinject"
	"r3dla/internal/isa"
	"r3dla/internal/pipeline"
	"r3dla/internal/prepcache"
	"r3dla/internal/workloads"
)

// Sentinel errors for name lookups; the service maps them to 404.
var (
	ErrUnknownWorkload   = errors.New("lab: unknown workload")
	ErrUnknownExperiment = errors.New("lab: unknown experiment")
)

// Re-exported engine types: lab requests resolve to these.
type (
	// Event is one progress notification (prep / run / exp stage).
	Event = exp.Event
	// Report is the structured result of one experiment.
	Report = exp.Report
	// ExperimentResult is one experiment's outcome (report or error).
	ExperimentResult = exp.Result
	// Prepared is a workload ready to run: program + profile + skeletons.
	Prepared = exp.Prepared
)

// Lab is the simulation client: it owns budgets and a bounded worker
// pool, and memoizes per-workload preparation and configuration runs
// across every request it serves (singleflight — concurrent requests for
// the same work block on one computation). A Lab is safe for concurrent
// use; the r3dlad service serves all requests from one shared Lab.
type Lab struct {
	c *exp.Context

	// trainSet records an explicit WithTrainBudget, so a later
	// WithBudget doesn't silently overwrite it (options are
	// order-independent).
	trainSet bool

	// prep and faults are recorded during option processing and wired
	// together in New after all options ran, so WithFaults and
	// WithPrepCache compose in either order.
	prep   *prepcache.Cache
	faults *faultinject.Plane
}

// ClientOption configures a Lab at construction.
type ClientOption func(*Lab) error

// WithBudget sets the default evaluation budget in committed MT
// instructions (0 keeps the 150k default). Requests can override it
// per-run.
func WithBudget(n uint64) ClientOption {
	return func(l *Lab) error {
		if n > 0 {
			l.c.Budget = n
			if !l.trainSet {
				l.c.TrainBudget = n / 2
			}
		}
		return nil
	}
}

// WithTrainBudget overrides the training-run budget (default: half the
// evaluation budget).
func WithTrainBudget(n uint64) ClientOption {
	return func(l *Lab) error {
		if n == 0 {
			return fmt.Errorf("%w: training budget 0", ErrInvalid)
		}
		l.c.TrainBudget = n
		l.trainSet = true
		return nil
	}
}

// WithJobs bounds how many simulations run concurrently (the worker-pool
// semaphore every heavy operation acquires); <= 0 means GOMAXPROCS.
func WithJobs(n int) ClientOption {
	return func(l *Lab) error { l.c.Jobs = n; return nil }
}

// WithProgress installs a progress observer. It may be called from
// multiple goroutines and must be safe for that.
func WithProgress(f func(Event)) ClientOption {
	return func(l *Lab) error { l.c.Progress = f; return nil }
}

// WithPrepCache persists preparation artifacts (profiles + skeletons) in
// dir, surviving process restarts: a new Lab over a warm directory serves
// its first Prepare from a file read instead of re-simulating the
// training run. Entries are fingerprint-guarded and corruption-tolerant —
// stale or damaged files silently regenerate (see internal/prepcache).
func WithPrepCache(dir string) ClientOption {
	return func(l *Lab) error {
		pc, err := prepcache.New(dir)
		if err != nil {
			return err
		}
		l.c.Cache = pc
		l.prep = pc
		return nil
	}
}

// WithFaults arms a fault-injection plane on the Lab's durable layers
// (currently the prep cache, when one is configured). A nil plane is a
// no-op; production Labs never pay for the hook.
func WithFaults(p *faultinject.Plane) ClientOption {
	return func(l *Lab) error {
		l.faults = p
		return nil
	}
}

// WithDetailLog enables verbose per-workload detail lines on w.
func WithDetailLog(w io.Writer) ClientOption {
	return func(l *Lab) error {
		l.c.Verbose = true
		l.c.LogW = w
		return nil
	}
}

// New builds a Lab client.
func New(opts ...ClientOption) (*Lab, error) {
	l := &Lab{c: exp.NewContext(0)}
	for _, o := range opts {
		if err := o(l); err != nil {
			return nil, err
		}
	}
	if l.faults != nil {
		l.prep.SetFaults(l.faults)
	}
	return l, nil
}

// Budget reports the lab's default evaluation budget.
func (l *Lab) Budget() uint64 { return l.c.Budget }

// WithProgress returns a Lab whose operations report progress to f. The
// worker pool and memoization caches stay shared with l, so per-request
// observers (the service's NDJSON streams) still hit the shared caches.
func (l *Lab) WithProgress(f func(Event)) *Lab {
	return &Lab{c: l.c.WithProgress(f)}
}

// PrepCount reports how many times preparation actually executed for a
// workload — at most 1 under any concurrency (singleflight
// instrumentation; the service smoke tests observe it).
func (l *Lab) PrepCount(workload string) int { return l.c.PrepCount(workload) }

// RunCount reports how many memoized simulations actually executed
// across every request this Lab served (cache misses only — runs served
// from the singleflight cache don't count). Sweep resume and
// cache-sharing tests assert against it.
func (l *Lab) RunCount() int { return l.c.RunCount() }

// guarded runs f against a request-scoped engine context, recovering the
// engine's cancellation panic back into an ordinary error.
func (l *Lab) guarded(ctx context.Context, f func(c *exp.Context)) (err error) {
	c := l.c
	if ctx != nil {
		c = c.WithCancel(ctx)
	}
	defer func() {
		if r := recover(); r != nil {
			cerr, ok := exp.CancelError(r)
			if !ok {
				panic(r)
			}
			err = cerr
		}
	}()
	f(c)
	return nil
}

// ------------------------------------------------------------- requests

// RunRequest asks for one simulation: a workload, a configuration, and
// an optional budget override (0 uses the lab default).
type RunRequest struct {
	Workload string     `json:"workload"`
	Config   ConfigSpec `json:"config"`
	Budget   uint64     `json:"budget,omitempty"`
}

// LTStats is the look-ahead thread's slice of a RunResult.
type LTStats struct {
	IPC       float64 `json:"ipc"`
	Committed uint64  `json:"committed"`
	Skipped   uint64  `json:"skipped"` // fetch-deleted (masked) instructions
}

// RunResult is the architectural outcome of one simulation. All fields
// are deterministic functions of (workload, config, budget), so results
// are cacheable and responses are byte-stable.
type RunResult struct {
	Workload string `json:"workload"`
	Config   string `json:"config"` // canonical configuration key
	Budget   uint64 `json:"budget"`

	IPC       float64 `json:"ipc"`
	Cycles    uint64  `json:"cycles"`
	Committed uint64  `json:"committed"`

	Reboots     uint64   `json:"reboots"`
	BOQWrong    uint64   `json:"boq_wrong"`
	T1Issued    uint64   `json:"t1_issued,omitempty"`
	SkeletonUse []uint64 `json:"skeleton_use,omitempty"`

	L1DMPKI     float64 `json:"l1d_mpki"`
	DRAMTraffic uint64  `json:"dram_traffic"`

	// EnergyJ and PowerW are the run's total energy (both cores, shared
	// L3, DRAM — energy.Core/Shared/DRAM under the default calibration)
	// and average power over the MT's wall time. Deterministic like every
	// other field, so energy is a first-class search objective: the dse
	// Pareto searcher trades it against IPC.
	EnergyJ float64 `json:"energy_j"`
	PowerW  float64 `json:"power_w"`

	LT *LTStats `json:"lt,omitempty"`

	Deadlocked bool `json:"deadlocked,omitempty"`
}

func newRunResult(workload string, cfg Config, budget uint64, r *core.Results) *RunResult {
	out := &RunResult{
		Workload:    workload,
		Config:      cfg.Key(),
		Budget:      budget,
		IPC:         r.IPC(),
		Cycles:      r.MT.Cycles,
		Committed:   r.MT.Committed,
		Reboots:     r.Reboots,
		BOQWrong:    r.BOQWrong,
		T1Issued:    r.T1Issued,
		SkeletonUse: r.SkeletonUse,
		L1DMPKI:     r.MTMem.L1D.Stats.MPKI(r.MT.Committed),
		DRAMTraffic: r.Shared.DRAM.Traffic(),
		Deadlocked:  r.MT.Deadlocked,
	}
	p := energy.DefaultParams()
	cpuJ, dramJ := exp.RunEnergy(r, p)
	out.EnergyJ = cpuJ + dramJ
	if secs := float64(r.MT.Cycles) / (p.ClockGHz * 1e9); secs > 0 {
		out.PowerW = out.EnergyJ / secs
	}
	if r.LT != nil {
		out.LT = &LTStats{IPC: r.LT.IPC(), Committed: r.LT.Committed, Skipped: r.LTSkipped}
	}
	return out
}

// Prepare profiles and generates skeletons for a named workload
// (memoized, singleflight). The returned Prepared is immutable and
// shared by all runs on it.
func (l *Lab) Prepare(ctx context.Context, workload string) (*Prepared, error) {
	if workloads.ByName(workload) == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, workload)
	}
	var p *Prepared
	err := l.guarded(ctx, func(c *exp.Context) { p = c.Prep(workload) })
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Run executes one simulation request: the workload is prepared (or
// found in cache), the configuration resolved and validated, and the run
// memoized under its canonical key so identical requests are served from
// cache. ctx cancels cooperatively, even mid-simulation.
func (l *Lab) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	cfg, err := req.Config.Config()
	if err != nil {
		return nil, err
	}
	return l.RunConfig(ctx, req.Workload, cfg, req.Budget)
}

// RunConfig is Run with an already-built Config.
func (l *Lab) RunConfig(ctx context.Context, workload string, cfg Config, budget uint64) (*RunResult, error) {
	p, err := l.Prepare(ctx, workload)
	if err != nil {
		return nil, err
	}
	return l.RunPrepared(ctx, p, cfg, budget)
}

// RunPrepared runs a configuration on already-prepared material (named
// workloads from Prepare, or custom programs from PrepareProgram).
func (l *Lab) RunPrepared(ctx context.Context, p *Prepared, cfg Config, budget uint64) (*RunResult, error) {
	if cfg.preset == "" {
		return nil, fmt.Errorf("%w: zero Config (use lab.NewConfig)", ErrInvalid)
	}
	if budget == 0 {
		budget = l.c.Budget
	}
	var res *core.Results
	err := l.guarded(ctx, func(c *exp.Context) {
		res = c.RunCachedAt(cfg.Key(), p, cfg.SystemOptions(), budget)
	})
	if err != nil {
		return nil, err
	}
	return newRunResult(p.W.Name, cfg, budget, res), nil
}

// FrontendProfile measures the Appendix B demand and I-cache supply
// distributions of a workload at the given budget (0 uses the lab
// default): demand under a perfect frontend, supply under an infinite
// backend. The tier package's calibrator runs this once per workload at
// a short calibration budget to parameterize its analytic estimator.
func (l *Lab) FrontendProfile(ctx context.Context, workload string, budget uint64) (demand, supply []float64, err error) {
	p, err := l.Prepare(ctx, workload)
	if err != nil {
		return nil, nil, err
	}
	if budget == 0 {
		budget = l.c.Budget
	}
	err = l.guarded(ctx, func(c *exp.Context) {
		demand, supply, _ = exp.MeasureSupplyDemand(c, p, budget)
	})
	if err != nil {
		return nil, nil, err
	}
	return demand, supply, nil
}

// CoreIPC runs a standalone single core with an arbitrary pipeline
// configuration on prepared material (the SMT / wide-vs-half studies)
// and returns its IPC.
func (l *Lab) CoreIPC(ctx context.Context, p *Prepared, cfg pipeline.Config, budget uint64, bop bool) (float64, error) {
	if err := validCoreCfg(cfg); err != nil {
		return 0, err
	}
	if budget == 0 {
		budget = l.c.Budget
	}
	var ipc float64
	err := l.guarded(ctx, func(c *exp.Context) {
		c.Do(func() {
			m, _ := exp.BaselineMetricsOn(p, cfg, budget, bop)
			ipc = m.IPC()
		})
	})
	return ipc, err
}

// PrepareProgram profiles a caller-supplied program and generates its
// skeletons (the training pass), yielding material RunPrepared accepts.
// name keys the Lab's run cache, so it must be unique per (program,
// setup, trainBudget) triple.
func PrepareProgram(name string, prog *isa.Program, setup func(*emu.Memory), trainBudget uint64) *Prepared {
	prof := core.Collect(prog, setup, trainBudget)
	set := core.Generate(prog, prof)
	return &Prepared{
		W:     &workloads.Workload{Name: name, Suite: "custom"},
		Prog:  prog,
		Setup: setup,
		Prof:  prof,
		Set:   set,
	}
}

// ---------------------------------------------------------- experiments

// ExperimentRequest asks for one paper artifact by id ("tab1", "fig9a",
// …; see ListExperiments).
type ExperimentRequest struct {
	ID string `json:"id"`
}

// ExperimentInfo describes one regenerable artifact.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// ListExperiments lists the regenerable artifacts in registry
// (presentation) order.
func ListExperiments() []ExperimentInfo {
	out := make([]ExperimentInfo, 0, len(exp.Registry))
	for _, e := range exp.Registry {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}

// FormatExperiments renders the experiment listing as help text, one
// `id  title` line per artifact.
func FormatExperiments() string {
	var b strings.Builder
	for _, e := range ListExperiments() {
		fmt.Fprintf(&b, "  %-8s %s\n", e.ID, e.Title)
	}
	return b.String()
}

// ExperimentByID resolves one experiment id.
func ExperimentByID(id string) (ExperimentInfo, bool) {
	e, ok := exp.ByID(id)
	if !ok {
		return ExperimentInfo{}, false
	}
	return ExperimentInfo{ID: e.ID, Title: e.Title}, true
}

// ExperimentIDs lists all experiment ids, sorted.
func ExperimentIDs() []string { return exp.IDs() }

// Experiment regenerates one artifact and returns its report. Runs,
// preparation and standard-configuration results are shared with every
// other request through the Lab's caches.
func (l *Lab) Experiment(ctx context.Context, req ExperimentRequest) (*Report, error) {
	if _, ok := exp.ByID(req.ID); !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, req.ID)
	}
	results, err := l.Experiments(ctx, []string{req.ID}, nil)
	if err != nil {
		return nil, err
	}
	if results[0].Err != nil {
		return nil, results[0].Err
	}
	return results[0].Report, nil
}

// Experiments regenerates several artifacts concurrently on the lab's
// worker pool, returning results in id order regardless of scheduling.
// onResult, when non-nil, receives each result as soon as its ordered
// prefix completes.
func (l *Lab) Experiments(ctx context.Context, ids []string, onResult func(ExperimentResult)) ([]ExperimentResult, error) {
	results, err := exp.Run(ctx, l.c, ids, onResult)
	if err != nil && results == nil {
		// exp.Run rejects unknown ids up front.
		return nil, fmt.Errorf("%w: %v", ErrUnknownExperiment, err)
	}
	return results, err
}

// ------------------------------------------------------------ workloads

// WorkloadInfo describes one benchmark of the evaluation suite.
type WorkloadInfo struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
}

// ListWorkloads lists the evaluation suite in deterministic order.
func ListWorkloads() []WorkloadInfo {
	all := workloads.All()
	out := make([]WorkloadInfo, 0, len(all))
	for _, w := range all {
		out = append(out, WorkloadInfo{Name: w.Name, Suite: w.Suite})
	}
	return out
}
