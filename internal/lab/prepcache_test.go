package lab

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestPrepCacheColdWarmByteIdentity pins the persistent prep cache to the
// byte-identity contract: a Lab with a cold cache, a second Lab warming
// from the first one's entries, and a third Lab recovering from a
// corrupted entry must all produce RunResults byte-identical to the
// committed seed-core goldens.
func TestPrepCacheColdWarmByteIdentity(t *testing.T) {
	dir := t.TempDir()
	golden, err := os.ReadFile(filepath.Join("testdata", "runs", "mcf_r3.json"))
	if err != nil {
		t.Fatal(err)
	}

	runOnce := func(t *testing.T, phase string) {
		t.Helper()
		l, err := New(WithBudget(goldenBudget), WithPrepCache(dir))
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Run(context.Background(), RunRequest{
			Workload: "mcf",
			Config:   ConfigSpec{Preset: "r3"},
			Budget:   goldenBudget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := goldenRunJSON(t, res); !bytes.Equal(got, golden) {
			t.Errorf("%s run drifted from the golden.\n--- want ---\n%s--- got ---\n%s",
				phase, golden, got)
		}
	}

	runOnce(t, "cold-cache")

	entries, err := filepath.Glob(filepath.Join(dir, "*.prep"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cold run should persist exactly one prep entry, got %v (err %v)", entries, err)
	}

	runOnce(t, "warm-cache")

	// A torn entry must be treated as a miss: the third Lab regenerates
	// and still matches the golden, then rewrites a fresh entry.
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	runOnce(t, "corrupt-cache-recovery")
	// The recovery run rewrites a complete entry. Byte-comparing it to the
	// original would be flaky (gob map ordering), so just check it grew
	// back past the truncation point.
	if again, err := os.ReadFile(entries[0]); err != nil || len(again) <= len(raw)/2 {
		t.Errorf("recovery run should rewrite the torn entry (err %v, %d bytes)", err, len(again))
	}
}
