package lab

import (
	"context"
	"errors"
	"sync"
)

// Cross-client request coalescing. The Lab's own singleflight cells
// dedup concurrent identical work, but each caller's cancellation
// propagates into the shared computation (a canceled leader hands over
// to a waiter, who re-runs from wherever the engine can resume). At the
// serving layer we want a stronger contract: N concurrent identical
// /v1/runs perform exactly one simulation, and one client disconnecting
// never disturbs the answer the others are waiting for. runFlight
// provides it by running the simulation on a context detached from every
// request, canceled only when the last waiter has gone away.

// runFlight is one shared simulation in progress: the first request for
// a key starts the computation and every concurrent request for the same
// key joins as a waiter.
type runFlight struct {
	done chan struct{} // closed when res/err are published
	res  *RunResult
	err  error

	cancel context.CancelFunc // cancels the shared computation

	mu      sync.Mutex
	waiters int
	nextSub int
	subs    map[int]func(Event) // streaming waiters' progress sinks
}

// broadcast fans one engine progress event out to every subscribed
// waiter.
func (fl *runFlight) broadcast(ev Event) {
	fl.mu.Lock()
	fns := make([]func(Event), 0, len(fl.subs))
	for _, f := range fl.subs {
		fns = append(fns, f)
	}
	fl.mu.Unlock()
	for _, f := range fns {
		f(ev)
	}
}

// join registers a waiter, subscribing onEvent (when non-nil) to the
// flight's progress; it returns the id to pass to leave/unsubscribe.
func (fl *runFlight) join(onEvent func(Event)) int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.waiters++
	if onEvent == nil {
		return -1
	}
	id := fl.nextSub
	fl.nextSub++
	fl.subs[id] = onEvent
	return id
}

// leave unregisters a waiter that gave up (its own request context
// ended). The last waiter out cancels the shared computation — nobody is
// left to read the answer.
func (fl *runFlight) leave(sub int) {
	fl.mu.Lock()
	fl.waiters--
	if sub >= 0 {
		delete(fl.subs, sub)
	}
	last := fl.waiters == 0
	fl.mu.Unlock()
	if last {
		fl.cancel()
	}
}

// unsubscribe drops just the progress subscription, for waiters that got
// their answer (waiter accounting no longer matters once the flight is
// done).
func (fl *runFlight) unsubscribe(sub int) {
	if sub < 0 {
		return
	}
	fl.mu.Lock()
	delete(fl.subs, sub)
	fl.mu.Unlock()
}

// runShared answers one run request through the coalescing layer: at
// most one simulation per key is in flight server-wide, every concurrent
// request shares its answer, and the computation is canceled only when
// every waiter has gone away. If the shared run dies of cancellation
// while this caller is still alive (it joined just as the previous
// waiters left), the caller takes over as the new leader and retries.
func (s *Server) runShared(ctx context.Context, key string, req RunRequest, onEvent func(Event)) (*RunResult, error) {
	for {
		s.flightMu.Lock()
		fl, ok := s.flights[key]
		if !ok {
			runCtx, cancel := context.WithCancel(context.Background())
			fl = &runFlight{
				done:   make(chan struct{}),
				cancel: cancel,
				subs:   make(map[int]func(Event)),
			}
			s.flights[key] = fl
			s.flightMu.Unlock()
			go s.leadFlight(runCtx, key, fl, req)
		} else {
			s.flightMu.Unlock()
			s.coalesced.Add(1)
		}
		sub := fl.join(onEvent)
		select {
		case <-fl.done:
			fl.unsubscribe(sub)
			if fl.err != nil && ctx.Err() == nil &&
				(errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded)) {
				// The shared run was canceled because its waiters left —
				// not us, we're still here. Run it again.
				continue
			}
			return fl.res, fl.err
		case <-ctx.Done():
			fl.leave(sub)
			return nil, ctx.Err()
		}
	}
}

// leadFlight runs the shared simulation and publishes its outcome. The
// context is detached from any single request; progress fans out to the
// flight's subscribers. A successful answer is persisted to the result
// store before the flight resolves, so the answer is durable by the time
// any waiter sees it.
func (s *Server) leadFlight(ctx context.Context, key string, fl *runFlight, req RunRequest) {
	defer fl.cancel() // releases the detached context's resources
	res, err := s.lab.WithProgress(fl.broadcast).Run(ctx, req)
	if err == nil {
		s.storePut(key, res)
	}
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	fl.res, fl.err = res, err
	close(fl.done)
}
