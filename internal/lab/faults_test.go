package lab

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"r3dla/internal/faultinject"
)

// TestServerInjectedShed: an armed Error policy on lab.server.run makes
// POST /v1/runs shed with 503 exactly like admission overload, so fleet
// clients exercise their normal backpressure path; once the fault budget
// is spent the same request succeeds.
func TestServerInjectedShed(t *testing.T) {
	p := faultinject.New(71)
	p.MustArm(faultinject.Policy{Point: faultinject.ServerRun, Mode: faultinject.Error, Limit: 1})
	srv, _ := newTestService(t, WithServerFaults(p))

	body := `{"workload":"mcf","config":{"preset":"dla"},"budget":2000}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "injected shed") {
		t.Fatalf("shed body %q does not identify the injection", raw)
	}
	if got := p.Fires()[faultinject.ServerRun]; got != 1 {
		t.Fatalf("plane fired %d times, want 1", got)
	}

	// Fault budget spent: the retry goes through.
	resp, err = http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault status %d, want 200", resp.StatusCode)
	}
}

// TestServerInjectedDelay: an armed Delay policy stalls the response
// (the slow-backend shape) but the request still completes.
func TestServerInjectedDelay(t *testing.T) {
	p := faultinject.New(72)
	p.MustArm(faultinject.Policy{Point: faultinject.ServerRun, Mode: faultinject.Delay, Delay: 30 * time.Millisecond, Limit: 1})
	srv, _ := newTestService(t, WithServerFaults(p))

	body := `{"workload":"mcf","config":{"preset":"dla"},"budget":2000}`
	start := time.Now()
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("injected delay did not stall the response: %v", elapsed)
	}
}

// TestLabWithFaultsReachesPrepCache: WithFaults must arm the plane on
// the Lab's prep cache regardless of option order — the injected load
// fault fires (proving the wiring) and reads as a silent miss, so the
// run still succeeds against a warm cache.
func TestLabWithFaultsReachesPrepCache(t *testing.T) {
	dir := t.TempDir()
	req := RunRequest{Workload: "mcf", Config: ConfigSpec{Preset: "dla"}, Budget: 2000}

	// Warm the cache with a fault-free Lab.
	warm, err := New(WithBudget(2000), WithPrepCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		opts func(p *faultinject.Plane) []ClientOption
	}{
		{"faults-first", func(p *faultinject.Plane) []ClientOption {
			return []ClientOption{WithFaults(p), WithBudget(2000), WithPrepCache(dir)}
		}},
		{"faults-last", func(p *faultinject.Plane) []ClientOption {
			return []ClientOption{WithBudget(2000), WithPrepCache(dir), WithFaults(p)}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := faultinject.New(73)
			p.MustArm(faultinject.Policy{Point: faultinject.PrepCacheLoad, Mode: faultinject.Error, Limit: 1})
			l, err := New(tc.opts(p)...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.Run(context.Background(), req); err != nil {
				t.Fatalf("run with injected prep-cache miss failed: %v", err)
			}
			if got := p.Fires()[faultinject.PrepCacheLoad]; got != 1 {
				t.Fatalf("plane fired %d times, want 1 (WithFaults not threaded to the prep cache)", got)
			}
		})
	}
}

// TestLabWithFaultsWithoutPrepCache: arming faults on a Lab with no prep
// cache must not panic (SetFaults is nil-receiver-safe).
func TestLabWithFaultsWithoutPrepCache(t *testing.T) {
	p := faultinject.New(74)
	l, err := New(WithBudget(2000), WithFaults(p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Run(context.Background(), RunRequest{Workload: "mcf", Config: ConfigSpec{Preset: "dla"}, Budget: 2000}); err != nil {
		t.Fatal(err)
	}
}
