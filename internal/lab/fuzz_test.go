package lab

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzConfigSpecRoundtrip asserts the wire-format invariant every spec
// that validates must satisfy: marshal → unmarshal → validate yields the
// same canonical configuration key and a byte-identical re-marshal.
// Committed seeds live in testdata/fuzz/FuzzConfigSpecRoundtrip and run
// as ordinary cases under plain `go test`.
func FuzzConfigSpecRoundtrip(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"preset":"dla"}`,
		`{"preset":"R3"}`,
		`{"preset":"dla","t1":true,"boq_size":1024,"version":0}`,
		`{"preset":"baseline","bop":false,"stride":true}`,
		`{"preset":"dla","fq_size":4,"vq_size":1,"reboot_cost":64,"trial_insts":1500}`,
		`{"preset":"dla","cores":{"model":"wide"}}`,
		`{"preset":"r3","cores":{"model":"half","rob":512,"fetch_width":2}}`,
		`{"preset":"r3","recycle":false,"version":5}`,
		`{"preset":"dla","prefetch_only":true,"value_reuse":false,"fetch_buffer":true}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		var spec ConfigSpec
		if err := json.Unmarshal([]byte(data), &spec); err != nil {
			t.Skip() // not a spec at all
		}
		cfg, err := spec.Config()
		if err != nil {
			return // invalid specs may reject; the invariant is for valid ones
		}

		wire, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		var spec2 ConfigSpec
		if err := json.Unmarshal(wire, &spec2); err != nil {
			t.Fatalf("marshaled spec does not unmarshal: %s: %v", wire, err)
		}
		cfg2, err := spec2.Config()
		if err != nil {
			t.Fatalf("round-tripped spec no longer validates: %s: %v", wire, err)
		}
		if cfg.Key() != cfg2.Key() {
			t.Fatalf("round trip changed the canonical key:\n before %s\n after  %s", cfg.Key(), cfg2.Key())
		}
		wire2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("re-marshal unstable:\n first  %s\n second %s", wire, wire2)
		}
	})
}
