package lab

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestService(t *testing.T, opts ...ServerOption) (*httptest.Server, *Lab) {
	t.Helper()
	l, err := New(WithBudget(2_000), WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(l, opts...))
	t.Cleanup(srv.Close)
	return srv, l
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func TestServerHealthz(t *testing.T) {
	srv, _ := newTestService(t)
	var h Health
	getJSON(t, srv.URL+"/v1/healthz", &h)
	if h.Status != "ok" || h.Experiments != 15 || h.Workloads != 25 || h.Budget != 2_000 {
		t.Fatalf("unexpected health: %+v", h)
	}
}

// TestServerStats pins the /v1/stats body across server configurations:
// the admission semaphore's occupancy and capacity are observable, the
// policy knobs are advertised, and the Lab's cache-miss counter moves
// only when simulations actually execute.
func TestServerStats(t *testing.T) {
	runBody := `{"workload":"mcf","config":{"preset":"dla"},"budget":2000}`
	for _, tc := range []struct {
		name string
		opts []ServerOption
		prep func(t *testing.T, url string) // traffic to generate before reading stats
		want Stats
	}{
		{
			name: "unlimited defaults",
			want: Stats{Budget: 2_000},
		},
		{
			name: "bounded admission and budget",
			opts: []ServerOption{WithMaxInflight(7), WithMaxBudget(9_000)},
			want: Stats{Capacity: 7, MaxBudget: 9_000, Budget: 2_000},
		},
		{
			name: "counters after one run",
			opts: []ServerOption{WithMaxInflight(3)},
			prep: func(t *testing.T, url string) {
				resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(runBody))
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("run status %d", resp.StatusCode)
				}
			},
			want: Stats{Capacity: 3, Budget: 2_000, Completed: 1, Runs: 1,
				Interactive: ClassStats{Admitted: 1}},
		},
		{
			name: "cache hit executes nothing new",
			opts: []ServerOption{WithMaxInflight(3)},
			prep: func(t *testing.T, url string) {
				for i := 0; i < 2; i++ {
					resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(runBody))
					if err != nil {
						t.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("run status %d", resp.StatusCode)
					}
				}
			},
			want: Stats{Capacity: 3, Budget: 2_000, Completed: 2, Runs: 1,
				Interactive: ClassStats{Admitted: 2}},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, _ := newTestService(t, tc.opts...)
			if tc.prep != nil {
				tc.prep(t, srv.URL)
			}
			var st Stats
			getJSON(t, srv.URL+"/v1/stats", &st)
			if st != tc.want {
				t.Fatalf("stats %+v, want %+v", st, tc.want)
			}
		})
	}
}

// TestServerStatsInflight observes a live request through the stats
// semaphore view: occupancy rises to 1 while a simulation is admitted and
// falls back to 0 when it finishes.
func TestServerStatsInflight(t *testing.T) {
	srv, _ := newTestService(t, WithMaxInflight(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/runs",
		strings.NewReader(`{"workload":"mcf","config":{"preset":"dla"},"budget":30000000}`))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	for i := 0; ; i++ {
		var st Stats
		getJSON(t, srv.URL+"/v1/stats", &st)
		if st.Inflight == 1 {
			break
		}
		if i >= 500 {
			t.Fatal("inflight never became observable")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done
	for i := 0; ; i++ {
		var st Stats
		getJSON(t, srv.URL+"/v1/stats", &st)
		if st.Inflight == 0 {
			break
		}
		if i >= 500 {
			t.Fatal("inflight never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerListEndpoints(t *testing.T) {
	srv, _ := newTestService(t)
	var exps []ExperimentInfo
	getJSON(t, srv.URL+"/v1/experiments", &exps)
	if len(exps) != 15 || exps[0].ID != "tab1" {
		t.Fatalf("experiments list wrong: %+v", exps)
	}
	var wls []WorkloadInfo
	getJSON(t, srv.URL+"/v1/workloads", &wls)
	if len(wls) != 25 {
		t.Fatalf("workloads list wrong: %d entries", len(wls))
	}

	resp, err := http.Get(srv.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown endpoint: %d", resp.StatusCode)
	}
}

// TestServerExperimentMatchesWriteJSON is the service's central
// contract: the POST /v1/experiments/{id} body is byte-identical to the
// engine's WriteJSON rendering of the same report at the same budget.
func TestServerExperimentMatchesWriteJSON(t *testing.T) {
	srv, _ := newTestService(t)
	resp, err := http.Post(srv.URL+"/v1/experiments/tab1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Reference rendering through an independent Lab at the same budget.
	ref, err := New(WithBudget(2_000))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ref.Experiment(context.Background(), ExperimentRequest{ID: "tab1"})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := rep.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("service body differs from WriteJSON:\n--- want ---\n%s\n--- got ---\n%s", want.Bytes(), got)
	}

	resp, err = http.Post(srv.URL+"/v1/experiments/bogus", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus experiment: %d", resp.StatusCode)
	}
}

// TestServerExperimentSingleflight fires concurrent requests for the
// same experiment: every response must be identical and its workload
// prepared exactly once.
func TestServerExperimentSingleflight(t *testing.T) {
	srv, l := newTestService(t)
	const n = 4
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/experiments/fig5", "application/json", nil)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	// fig5's only workload: prepared once despite n concurrent requests.
	if c := l.PrepCount("gobmk"); c != 1 {
		t.Fatalf("gobmk prepared %d times, want 1", c)
	}
}

func TestServerRun(t *testing.T) {
	srv, _ := newTestService(t)
	body := `{"workload":"mcf","config":{"preset":"r3"},"budget":3000}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var res RunResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Committed < 3000 || res.Workload != "mcf" {
		t.Fatalf("implausible run result: %+v", res)
	}

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"workload":"nope","config":{"preset":"dla"}}`, http.StatusNotFound},
		{`{"workload":"mcf","config":{"preset":"marvel"}}`, http.StatusBadRequest},
		{`{"workload":"mcf","config":{"preset":"dla","boq_size":-2}}`, http.StatusBadRequest},
		{`{"workload":"mcf","config":{"preset":"dla"},"bogus_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

// TestServerRunValidationMessages closes the sweep-relevant test gap:
// invalid configuration combinations must come back as 400s whose bodies
// carry field-level messages (the offending field and value), end-to-end
// through the server — most importantly a fixed skeleton version outside
// the recycle-pool range, and one that conflicts with online recycling.
func TestServerRunValidationMessages(t *testing.T) {
	srv, _ := newTestService(t)
	for _, tc := range []struct {
		name, body, want string
	}{
		{"version above pool", `{"workload":"mcf","config":{"preset":"dla","version":9}}`, "skeleton version 9, want 0..5"},
		{"version negative", `{"workload":"mcf","config":{"preset":"dla","version":-1}}`, "skeleton version -1"},
		{"version under recycle", `{"workload":"mcf","config":{"preset":"r3","version":2}}`, "conflicts with online recycling"},
		{"unknown preset", `{"workload":"mcf","config":{"preset":"marvel"}}`, `unknown preset "marvel"`},
		{"boq too small", `{"workload":"mcf","config":{"preset":"dla","boq_size":0}}`, "BOQ size 0, want >= 1"},
		{"fq below split", `{"workload":"mcf","config":{"preset":"dla","fq_size":3}}`, "FQ size 3, want >= 4"},
		{"zero reboot cost", `{"workload":"mcf","config":{"preset":"dla","reboot_cost":0}}`, "reboot cost 0"},
		{"unknown core model", `{"workload":"mcf","config":{"preset":"dla","cores":{"model":"mega"}}}`, `unknown core model "mega"`},
		{"version on baseline", `{"workload":"mcf","config":{"preset":"baseline","version":3}}`, "requires a look-ahead preset"},
		{"t1 on baseline", `{"workload":"mcf","config":{"t1":true}}`, "requires a look-ahead preset"},
		{"negative core sizing", `{"workload":"mcf","config":{"preset":"dla","cores":{"rob":-1}}}`, "negative core sizing -1"},
	} {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e apiError
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: body not an error document: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(e.Error, tc.want) {
			t.Errorf("%s: error %q misses field-level message %q", tc.name, e.Error, tc.want)
		}
	}
}

// TestServerStreamValidatesFirst asserts ?stream=1 requests fail with
// real HTTP statuses (400/404) for invalid bodies, instead of a 200
// stream carrying an error line.
func TestServerStreamValidatesFirst(t *testing.T) {
	srv, _ := newTestService(t)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"workload":"mcf","config":{"preset":"bogus"}}`, http.StatusBadRequest},
		{`{"workload":"mcf","config":{"preset":"dla","boq_size":-2}}`, http.StatusBadRequest},
		{`{"workload":"nope","config":{"preset":"dla"}}`, http.StatusNotFound},
	} {
		resp, err := http.Post(srv.URL+"/v1/runs?stream=1", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("stream %s: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

func TestServerMaxBudget(t *testing.T) {
	srv, _ := newTestService(t, WithMaxBudget(10_000))
	body := `{"workload":"mcf","config":{"preset":"dla"},"budget":1000000}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-budget request: %d, want 400", resp.StatusCode)
	}
}

// TestServerRunCancel cancels an in-flight run and asserts 499-style
// cleanup: the client error surfaces, the active gauge drains, the
// cancellation is counted, and the server keeps serving.
func TestServerRunCancel(t *testing.T) {
	srv, _ := newTestService(t)

	// A budget big enough that the run is still going when we cancel.
	body := `{"workload":"mcf","config":{"preset":"dla"},"budget":50000000}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/runs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request completed with status %d", resp.StatusCode)
		}
		done <- err
	}()

	// Wait until the server reports the run in flight, then cut the client.
	waitHealth(t, srv.URL, func(h Health) bool { return h.Active >= 1 })
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled request reported success")
	}

	// Cleanup: active drains to 0 and the cancellation is accounted.
	h := waitHealth(t, srv.URL, func(h Health) bool { return h.Active == 0 && h.Canceled >= 1 })
	if h.Completed != 0 {
		t.Fatalf("canceled run counted as completed: %+v", h)
	}

	// The server is still healthy and can serve new work.
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"mcf","config":{"preset":"dla"},"budget":2000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel run: status %d", resp.StatusCode)
	}
}

// waitHealth polls /v1/healthz until cond holds (or the deadline).
func waitHealth(t *testing.T, url string, cond func(Health) bool) Health {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var h Health
	for time.Now().Before(deadline) {
		getJSON(t, url+"/v1/healthz", &h)
		if cond(h) {
			return h
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("health condition never held; last: %+v", h)
	return h
}

// TestServerStream exercises the NDJSON progress stream: event lines
// followed by exactly one terminal result line.
func TestServerStream(t *testing.T) {
	srv, _ := newTestService(t)
	resp, err := http.Post(srv.URL+"/v1/experiments/fig5?stream=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	var lines []StreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l StreamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("want progress + result lines, got %d", len(lines))
	}
	last := lines[len(lines)-1]
	if last.Event != "result" || last.Result == nil {
		t.Fatalf("terminal line wrong: %+v", last)
	}
	sawPrep := false
	for _, l := range lines[:len(lines)-1] {
		if l.Event == "prep" {
			sawPrep = true
		}
		if l.Event == "result" {
			t.Fatal("result line before the end")
		}
	}
	if !sawPrep {
		t.Fatal("no prep event in stream")
	}
}
