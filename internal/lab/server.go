package lab

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"r3dla/internal/faultinject"
	"r3dla/internal/resultstore"
	"r3dla/internal/workloads"
)

// StatusClientClosedRequest is the nginx-style status recorded when the
// client goes away while its simulation is in flight; the response can
// no longer be delivered, but the server accounts for the cleanup.
const StatusClientClosedRequest = 499

// PriorityHeader selects a request's admission class. Recognized values
// are PriorityInteractive (the default) and PriorityBatch; anything else
// is treated as interactive.
const PriorityHeader = "X-R3DLA-Priority"

// The admission classes. Interactive requests may use the whole
// admission capacity; batch requests (sweeps, explorations, bulk
// clients) are capped below it so a flood of batch work can never
// starve interactive runs.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

const (
	classInteractive = iota
	classBatch
	numClasses
)

// ResultsFingerprint ties persisted RunResults to the simulation
// semantics that produced them; it is the fingerprint to pass to
// resultstore.Open for a store serving this package's results. Bump it
// whenever RunResult's encoding or the simulator's observable behavior
// changes, so a store written by an older binary reads as all misses
// instead of wrong answers.
const ResultsFingerprint uint64 = 1

// Server is the r3dlad HTTP handler: a JSON/NDJSON API over one shared
// Lab, so every request hits the same singleflight caches and the same
// bounded worker pool (the server-wide job semaphore).
//
//	GET  /v1/healthz              liveness + request counters
//	GET  /v1/stats                load + admission policy (the fleet router balances on it)
//	GET  /metrics                 the same counters in Prometheus text format
//	GET  /v1/experiments          the regenerable artifacts
//	GET  /v1/workloads            the evaluation suite
//	POST /v1/experiments/{id}     regenerate one artifact (?stream=1 for NDJSON progress)
//	POST /v1/runs                 one simulation: RunRequest -> RunResult (?stream=1 likewise)
//
// Identical concurrent /v1/runs coalesce server-side into one shared
// simulation (see runShared), and — when a result store is configured —
// finished answers persist across restarts.
type Server struct {
	lab   *Lab
	mux   *http.ServeMux
	start time.Time

	maxBudget uint64 // largest per-request budget accepted (0 = unlimited)

	// Admission control. capacity bounds total admitted requests;
	// reserve is headroom only interactive requests may use, so batch
	// admission is capped at capacity-reserve.
	capacity int
	reserve  int
	admMu    sync.Mutex
	admTotal int
	admBatch int
	classes  [numClasses]classCounters

	store *resultstore.Store // persistent result tier (nil = off)

	faults *faultinject.Plane // injection plane for chaos runs (nil = off)

	// Cross-client coalescing: at most one simulation per run key is in
	// flight server-wide.
	flightMu  sync.Mutex
	flights   map[string]*runFlight
	coalesced atomic.Int64 // requests that joined another request's flight

	active    atomic.Int64 // simulation requests in flight
	completed atomic.Int64 // simulation requests answered 200
	canceled  atomic.Int64 // simulation requests whose client went away
}

// classCounters are one admission class's cumulative and live counters.
type classCounters struct {
	inflight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxBudget caps the per-request budget override (0 = unlimited).
func WithMaxBudget(n uint64) ServerOption {
	return func(s *Server) { s.maxBudget = n }
}

// WithMaxInflight bounds how many simulation requests are admitted
// concurrently; excess requests get 503 immediately instead of queueing
// (<= 0 = unlimited). A quarter of the capacity (at least one slot) is
// reserved for interactive requests: batch-class requests are shed once
// they occupy the rest, so sweeps can't starve interactive runs. This
// bounds admission; actual compute parallelism is bounded by the Lab's
// worker pool either way.
func WithMaxInflight(n int) ServerOption {
	return func(s *Server) {
		if n <= 0 {
			return
		}
		s.capacity = n
		s.reserve = n / 4
		if s.reserve < 1 {
			s.reserve = 1
		}
	}
}

// WithServerFaults arms a fault-injection plane on the request path: an
// armed faultinject.ServerRun policy makes POST /v1/runs stall (Delay)
// or shed with 503 (Error) before touching the store or admission — the
// degraded-backend behaviors the fleet's breaker and retry machinery
// must absorb. A nil plane is a no-op.
func WithServerFaults(p *faultinject.Plane) ServerOption {
	return func(s *Server) { s.faults = p }
}

// WithResultStore attaches a persistent result store: finished /v1/runs
// answers are written through to it, and repeated requests — across
// clients, restarts, and processes sharing the directory — are served
// from it without admission or simulation. Open the store with
// ResultsFingerprint so semantics changes invalidate it.
func WithResultStore(st *resultstore.Store) ServerOption {
	return func(s *Server) { s.store = st }
}

// NewServer builds the service handler over a shared Lab.
func NewServer(l *Lab, opts ...ServerOption) *Server {
	s := &Server{
		lab:     l,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		flights: make(map[string]*runFlight),
	}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	s.mux.HandleFunc("GET /v1/workloads", s.handleListWorkloads)
	s.mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Every request carries an outcome cell, so classification into the
	// completed/canceled counters is idempotent no matter how many layers
	// (extension handlers calling Observe plus the server's own finish
	// paths) classify the same request.
	r = r.WithContext(context.WithValue(r.Context(), outcomeKey{}, new(outcomeCell)))
	s.mux.ServeHTTP(w, r)
}

// Handle mounts an extension route (the sweep endpoint) on the server's
// mux. Extension handlers share the server's Lab, admission policy and
// request counters through Admit/Observe.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Admit reserves an admission slot for an extension handler's simulation
// request, exactly as the built-in run/experiment endpoints do: when the
// server is at capacity for the request's class (the PriorityHeader on
// r) the client gets 503 and ok is false; otherwise the request counts
// as active until release is called.
func (s *Server) Admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	return s.admitRequest(w, r)
}

// Observe classifies an extension request's outcome into the healthz
// counters: nil marks it completed, a cancellation (the client went away)
// marks it canceled. It does not write a response. Accounting is
// idempotent per request: the first classification wins, repeats are
// no-ops.
func (s *Server) Observe(ctx context.Context, err error) { s.observe(ctx, err) }

// MaxBudget reports the per-request budget cap (0 = unlimited), so
// extension handlers enforce the same admission policy as POST /v1/runs.
func (s *Server) MaxBudget() uint64 { return s.maxBudget }

// ------------------------------------------------------------- plumbing

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// errorStatus maps a lab error to an HTTP status.
func errorStatus(ctx context.Context, err error) int {
	switch {
	case ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return StatusClientClosedRequest
	case errors.Is(err, ErrUnknownWorkload), errors.Is(err, ErrUnknownExperiment):
		return http.StatusNotFound
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// outcomeKey carries a request's outcomeCell in its context.
type outcomeKey struct{}

// outcomeCell latches the first outcome classification for one request,
// making repeated Observe/finish calls on the same request idempotent.
type outcomeCell struct{ done atomic.Bool }

// observe classifies a request's outcome into the completed/canceled
// counters, at most once per request (requests without a cell — bare
// contexts in tests or embedded use — count every call).
func (s *Server) observe(ctx context.Context, err error) {
	if cell, ok := ctx.Value(outcomeKey{}).(*outcomeCell); ok {
		if !cell.done.CompareAndSwap(false, true) {
			return
		}
	}
	if err == nil {
		s.completed.Add(1)
		return
	}
	if errorStatus(ctx, err) == StatusClientClosedRequest {
		s.canceled.Add(1)
	}
}

// requestClass maps a request's PriorityHeader to its admission class.
func requestClass(r *http.Request) int {
	if r != nil && strings.EqualFold(r.Header.Get(PriorityHeader), PriorityBatch) {
		return classBatch
	}
	return classInteractive
}

// admitRequest reserves an admission slot for the request's class (when
// bounded) and marks the request active; the returned release undoes
// both. Interactive requests may use the whole capacity; batch requests
// only capacity-reserve of it. Shedding is immediate (503), never
// queued, so the fleet router's backpressure semantics are unchanged.
func (s *Server) admitRequest(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	class := requestClass(r)
	if s.capacity > 0 {
		s.admMu.Lock()
		overTotal := s.admTotal >= s.capacity
		overClass := class == classBatch && s.admBatch >= s.capacity-s.reserve
		if overTotal || overClass {
			s.admMu.Unlock()
			s.classes[class].shed.Add(1)
			if overClass && !overTotal {
				writeError(w, http.StatusServiceUnavailable,
					errors.New("server at batch capacity (interactive reserve), retry later"))
			} else {
				writeError(w, http.StatusServiceUnavailable, errors.New("server at capacity, retry later"))
			}
			return nil, false
		}
		s.admTotal++
		if class == classBatch {
			s.admBatch++
		}
		s.admMu.Unlock()
	}
	s.classes[class].admitted.Add(1)
	s.classes[class].inflight.Add(1)
	s.active.Add(1)
	return func() {
		s.active.Add(-1)
		s.classes[class].inflight.Add(-1)
		if s.capacity > 0 {
			s.admMu.Lock()
			s.admTotal--
			if class == classBatch {
				s.admBatch--
			}
			s.admMu.Unlock()
		}
	}, true
}

// finish classifies a request's outcome into the server counters and
// writes the error response (when the client is still there to read it).
func (s *Server) finish(w http.ResponseWriter, r *http.Request, err error) {
	if err == nil {
		s.observe(r.Context(), nil)
		return
	}
	status := errorStatus(r.Context(), err)
	s.observe(r.Context(), err)
	if status == StatusClientClosedRequest {
		// The client is gone; the status line is for the access log only.
		w.WriteHeader(StatusClientClosedRequest)
		return
	}
	writeError(w, status, err)
}

// ------------------------------------------------------ result store IO

// storeGet consults the persistent result tier. Anomalies (including a
// payload a newer binary can't decode) read as misses.
func (s *Server) storeGet(key string) (*RunResult, bool) {
	if s.store == nil {
		return nil, false
	}
	data, ok := s.store.Get(key)
	if !ok {
		return nil, false
	}
	var res RunResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// storePut persists a finished answer (best effort: a full disk must not
// fail the request that computed the result).
func (s *Server) storePut(key string, res *RunResult) {
	if s.store == nil {
		return
	}
	if data, err := json.Marshal(res); err == nil {
		s.store.Put(key, data)
	}
}

// ------------------------------------------------------------- handlers

// Health is the healthz response body.
type Health struct {
	Status      string  `json:"status"`
	UptimeSec   float64 `json:"uptime_sec"`
	Budget      uint64  `json:"budget"`
	Active      int64   `json:"active"`
	Completed   int64   `json:"completed"`
	Canceled    int64   `json:"canceled"`
	Experiments int     `json:"experiments"`
	Workloads   int     `json:"workloads"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:      "ok",
		UptimeSec:   time.Since(s.start).Seconds(),
		Budget:      s.lab.Budget(),
		Active:      s.active.Load(),
		Completed:   s.completed.Load(),
		Canceled:    s.canceled.Load(),
		Experiments: len(ListExperiments()),
		Workloads:   len(ListWorkloads()),
	})
}

// ClassStats is one admission class's live and cumulative counters.
type ClassStats struct {
	Inflight int64 `json:"inflight"` // admitted requests in flight
	Admitted int64 `json:"admitted"` // cumulative admissions
	Shed     int64 `json:"shed"`     // cumulative 503s
}

// Stats is the /v1/stats response body: live admission occupancy and
// policy, per-class counters, the coalescing and result-store counters,
// and the shared Lab's cache-miss count. A fleet router reads it to
// balance on real load (Inflight counts every client's requests, not
// just the caller's) and to know how much headroom a member has before
// admission control sheds to 503. `?format=prometheus` (or GET /metrics)
// renders the same counters in Prometheus text format.
type Stats struct {
	Inflight    int64             `json:"inflight"`          // simulation requests currently admitted
	Capacity    int               `json:"capacity"`          // admission bound (0 = unlimited)
	MaxBudget   uint64            `json:"max_budget"`        // per-request budget cap (0 = unlimited)
	Budget      uint64            `json:"budget"`            // default per-run budget
	Completed   int64             `json:"completed"`         // requests answered successfully
	Canceled    int64             `json:"canceled"`          // requests whose client went away
	Runs        int               `json:"runs"`              // simulations actually executed (cache misses)
	Coalesced   int64             `json:"coalesced_waiters"` // requests that shared another request's simulation
	Interactive ClassStats        `json:"interactive"`
	Batch       ClassStats        `json:"batch"`
	Store       resultstore.Stats `json:"store"` // persistent result tier (zeros when off)
}

// statsSnapshot gathers the Stats body (shared by the JSON and
// Prometheus renderings).
func (s *Server) statsSnapshot() Stats {
	st := Stats{
		Inflight:  s.active.Load(),
		Capacity:  s.capacity,
		MaxBudget: s.maxBudget,
		Budget:    s.lab.Budget(),
		Completed: s.completed.Load(),
		Canceled:  s.canceled.Load(),
		Runs:      s.lab.RunCount(),
		Coalesced: s.coalesced.Load(),
		Interactive: ClassStats{
			Inflight: s.classes[classInteractive].inflight.Load(),
			Admitted: s.classes[classInteractive].admitted.Load(),
			Shed:     s.classes[classInteractive].shed.Load(),
		},
		Batch: ClassStats{
			Inflight: s.classes[classBatch].inflight.Load(),
			Admitted: s.classes[classBatch].admitted.Load(),
			Shed:     s.classes[classBatch].shed.Load(),
		},
	}
	if s.store != nil {
		st.Store = s.store.Stats()
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		s.handleMetrics(w, r)
		return
	}
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListExperiments())
}

func (s *Server) handleListWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListWorkloads())
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := ExperimentByID(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownExperiment, id))
		return
	}
	release, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	defer release()

	if r.URL.Query().Get("stream") != "" {
		s.streamRequest(w, r, func(l *Lab) (any, error) {
			rep, err := l.Experiment(r.Context(), ExperimentRequest{ID: id})
			return rep, err
		})
		return
	}

	rep, err := s.lab.Experiment(r.Context(), ExperimentRequest{ID: id})
	if err != nil {
		s.finish(w, r, err)
		return
	}
	// The report is computed; count it completed like handleRun does,
	// whether or not the client sticks around for the body. The body is
	// exactly the engine's WriteJSON rendering — byte-identical to
	// `r3dla -exp <id> -format json` at the same budget.
	s.observe(r.Context(), nil)
	w.Header().Set("Content-Type", "application/json")
	rep.WriteJSON(w)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.faults != nil {
		o := s.faults.At(faultinject.ServerRun)
		if o.Delay > 0 {
			// A slow backend, not a dead one: stall the whole response
			// (clients see a latency spike) but respect disconnects.
			t := time.NewTimer(o.Delay)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return
			}
		}
		if o.Err != nil {
			// Shed exactly like admission does, so clients exercise their
			// normal 503 backpressure path (fleet maps it to ErrOverloaded).
			s.classes[requestClass(r)].shed.Add(1)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("injected shed: %v", o.Err))
			return
		}
	}
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrInvalid, err))
		return
	}
	if s.maxBudget > 0 && req.Budget > s.maxBudget {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: budget %d exceeds server cap %d", ErrInvalid, req.Budget, s.maxBudget))
		return
	}
	// Resolve the request up front so validation failures are proper 400s
	// and unknown workloads 404s — in particular before a ?stream=1
	// response commits to status 200.
	cfg, err := req.Config.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if workloads.ByName(req.Workload) == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownWorkload, req.Workload))
		return
	}
	// The canonical identity of this simulation — the same key the Lab's
	// in-memory cache, the fleet router and the persistent store all use.
	budget := req.Budget
	if budget == 0 {
		budget = s.lab.Budget()
	}
	key := RunKey(req.Workload, cfg, budget)
	stream := r.URL.Query().Get("stream") != ""

	// Durable tier first: a persisted answer needs no admission slot and
	// no simulation, and re-encoding the decoded result is byte-identical
	// to a cold run's response (RunResult's JSON encoding is
	// deterministic).
	if res, ok := s.storeGet(key); ok {
		s.observe(r.Context(), nil)
		if stream {
			s.writeStreamResult(w, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}

	release, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	defer release()

	if stream {
		s.streamRun(w, r, key, req)
		return
	}

	res, err := s.runShared(r.Context(), key, req, nil)
	if err != nil {
		s.finish(w, r, err)
		return
	}
	s.observe(r.Context(), nil)
	writeJSON(w, http.StatusOK, res)
}

// ------------------------------------------------------------ streaming

// StreamLine is one NDJSON line of a ?stream=1 response: progress events
// ("prep", "run", "exp") as work happens, then exactly one terminal line
// ("result" with the payload, or "error").
type StreamLine struct {
	Event     string  `json:"event"`
	Workload  string  `json:"workload,omitempty"`
	Key       string  `json:"key,omitempty"`
	ID        string  `json:"id,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Result    any     `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// writeStreamResult answers a ?stream=1 request whose result needed no
// computation (a store hit): just the terminal line.
func (s *Server) writeStreamResult(w http.ResponseWriter, res *RunResult) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(StreamLine{Event: "result", Result: res})
}

// streamRun is the ?stream=1 path of /v1/runs, through the coalescing
// layer: progress events come from the shared flight (which may have
// been started by another client).
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request, key string, req RunRequest) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(line StreamLine) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	res, err := s.runShared(r.Context(), key, req, func(ev Event) {
		emit(StreamLine{
			Event:     ev.Stage,
			Workload:  ev.Workload,
			Key:       ev.Key,
			ID:        ev.Exp,
			ElapsedMS: float64(ev.Elapsed.Microseconds()) / 1000,
		})
	})
	if err != nil {
		s.observe(r.Context(), err)
		emit(StreamLine{Event: "error", Error: err.Error()})
		return
	}
	s.observe(r.Context(), nil)
	emit(StreamLine{Event: "result", Result: res})
}

// streamRequest runs f with a progress-observing Lab and writes NDJSON:
// one line per engine event, then the terminal result/error line. (The
// experiment endpoint's streaming path; runs go through streamRun.)
func (s *Server) streamRequest(w http.ResponseWriter, r *http.Request, f func(l *Lab) (any, error)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(line StreamLine) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	ll := s.lab.WithProgress(func(ev Event) {
		emit(StreamLine{
			Event:     ev.Stage,
			Workload:  ev.Workload,
			Key:       ev.Key,
			ID:        ev.Exp,
			ElapsedMS: float64(ev.Elapsed.Microseconds()) / 1000,
		})
	})
	res, err := f(ll)
	if err != nil {
		s.observe(r.Context(), err)
		emit(StreamLine{Event: "error", Error: err.Error()})
		return
	}
	s.observe(r.Context(), nil)
	emit(StreamLine{Event: "result", Result: res})
}
