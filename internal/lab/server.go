package lab

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"r3dla/internal/workloads"
)

// StatusClientClosedRequest is the nginx-style status recorded when the
// client goes away while its simulation is in flight; the response can
// no longer be delivered, but the server accounts for the cleanup.
const StatusClientClosedRequest = 499

// Server is the r3dlad HTTP handler: a JSON/NDJSON API over one shared
// Lab, so every request hits the same singleflight caches and the same
// bounded worker pool (the server-wide job semaphore).
//
//	GET  /v1/healthz              liveness + request counters
//	GET  /v1/stats                load + admission policy (the fleet router balances on it)
//	GET  /v1/experiments          the regenerable artifacts
//	GET  /v1/workloads            the evaluation suite
//	POST /v1/experiments/{id}     regenerate one artifact (?stream=1 for NDJSON progress)
//	POST /v1/runs                 one simulation: RunRequest -> RunResult (?stream=1 likewise)
type Server struct {
	lab   *Lab
	mux   *http.ServeMux
	start time.Time

	maxBudget uint64        // largest per-request budget accepted (0 = unlimited)
	admit     chan struct{} // request admission semaphore (nil = unlimited)

	active    atomic.Int64 // simulation requests in flight
	completed atomic.Int64 // simulation requests answered 200
	canceled  atomic.Int64 // simulation requests whose client went away
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxBudget caps the per-request budget override (0 = unlimited).
func WithMaxBudget(n uint64) ServerOption {
	return func(s *Server) { s.maxBudget = n }
}

// WithMaxInflight bounds how many simulation requests are admitted
// concurrently; excess requests get 503 immediately instead of queueing
// (<= 0 = unlimited). This bounds admission; actual compute parallelism
// is bounded by the Lab's worker pool either way.
func WithMaxInflight(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.admit = make(chan struct{}, n)
		}
	}
}

// NewServer builds the service handler over a shared Lab.
func NewServer(l *Lab, opts ...ServerOption) *Server {
	s := &Server{lab: l, mux: http.NewServeMux(), start: time.Now()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	s.mux.HandleFunc("GET /v1/workloads", s.handleListWorkloads)
	s.mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Handle mounts an extension route (the sweep endpoint) on the server's
// mux. Extension handlers share the server's Lab, admission semaphore and
// request counters through Admit/Observe.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Admit reserves an admission slot for an extension handler's simulation
// request, exactly as the built-in run/experiment endpoints do: when the
// server is at capacity the client gets 503 and ok is false; otherwise
// the request counts as active until release is called.
func (s *Server) Admit(w http.ResponseWriter) (release func(), ok bool) {
	return s.admitRequest(w)
}

// Observe classifies an extension request's outcome into the healthz
// counters: nil marks it completed, a cancellation (the client went away)
// marks it canceled. It does not write a response.
func (s *Server) Observe(ctx context.Context, err error) {
	if err == nil {
		s.completed.Add(1)
		return
	}
	if errorStatus(ctx, err) == StatusClientClosedRequest {
		s.canceled.Add(1)
	}
}

// MaxBudget reports the per-request budget cap (0 = unlimited), so
// extension handlers enforce the same admission policy as POST /v1/runs.
func (s *Server) MaxBudget() uint64 { return s.maxBudget }

// ------------------------------------------------------------- plumbing

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// errorStatus maps a lab error to an HTTP status.
func errorStatus(ctx context.Context, err error) int {
	switch {
	case ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return StatusClientClosedRequest
	case errors.Is(err, ErrUnknownWorkload), errors.Is(err, ErrUnknownExperiment):
		return http.StatusNotFound
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// admitRequest reserves an admission slot (when bounded) and marks the
// request active; the returned release undoes both.
func (s *Server) admitRequest(w http.ResponseWriter) (release func(), ok bool) {
	if s.admit != nil {
		select {
		case s.admit <- struct{}{}:
		default:
			writeError(w, http.StatusServiceUnavailable, errors.New("server at capacity, retry later"))
			return nil, false
		}
	}
	s.active.Add(1)
	return func() {
		s.active.Add(-1)
		if s.admit != nil {
			<-s.admit
		}
	}, true
}

// finish classifies a request's outcome into the server counters and
// writes the error response (when the client is still there to read it).
func (s *Server) finish(w http.ResponseWriter, r *http.Request, err error) {
	if err == nil {
		s.completed.Add(1)
		return
	}
	status := errorStatus(r.Context(), err)
	if status == StatusClientClosedRequest {
		s.canceled.Add(1)
		// The client is gone; the status line is for the access log only.
		w.WriteHeader(StatusClientClosedRequest)
		return
	}
	writeError(w, status, err)
}

// ------------------------------------------------------------- handlers

// Health is the healthz response body.
type Health struct {
	Status      string  `json:"status"`
	UptimeSec   float64 `json:"uptime_sec"`
	Budget      uint64  `json:"budget"`
	Active      int64   `json:"active"`
	Completed   int64   `json:"completed"`
	Canceled    int64   `json:"canceled"`
	Experiments int     `json:"experiments"`
	Workloads   int     `json:"workloads"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:      "ok",
		UptimeSec:   time.Since(s.start).Seconds(),
		Budget:      s.lab.Budget(),
		Active:      s.active.Load(),
		Completed:   s.completed.Load(),
		Canceled:    s.canceled.Load(),
		Experiments: len(ListExperiments()),
		Workloads:   len(ListWorkloads()),
	})
}

// Stats is the /v1/stats response body: the admission semaphore's live
// occupancy and capacity, the admission policy knobs, and the shared
// Lab's cache counters. A fleet router reads it to balance on real load
// (Inflight counts every client's requests, not just the caller's) and to
// know how much headroom a member has before admission control sheds to
// 503.
type Stats struct {
	Inflight  int64  `json:"inflight"`   // simulation requests currently admitted
	Capacity  int    `json:"capacity"`   // admission bound (0 = unlimited)
	MaxBudget uint64 `json:"max_budget"` // per-request budget cap (0 = unlimited)
	Budget    uint64 `json:"budget"`     // default per-run budget
	Completed int64  `json:"completed"`  // requests answered successfully
	Canceled  int64  `json:"canceled"`   // requests whose client went away
	Runs      int    `json:"runs"`       // simulations actually executed (cache misses)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Stats{
		Inflight:  s.active.Load(),
		Capacity:  cap(s.admit),
		MaxBudget: s.maxBudget,
		Budget:    s.lab.Budget(),
		Completed: s.completed.Load(),
		Canceled:  s.canceled.Load(),
		Runs:      s.lab.RunCount(),
	})
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListExperiments())
}

func (s *Server) handleListWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListWorkloads())
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := ExperimentByID(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownExperiment, id))
		return
	}
	release, ok := s.admitRequest(w)
	if !ok {
		return
	}
	defer release()

	if r.URL.Query().Get("stream") != "" {
		s.streamRequest(w, r, func(l *Lab) (any, error) {
			rep, err := l.Experiment(r.Context(), ExperimentRequest{ID: id})
			return rep, err
		})
		return
	}

	rep, err := s.lab.Experiment(r.Context(), ExperimentRequest{ID: id})
	if err != nil {
		s.finish(w, r, err)
		return
	}
	// The report is computed; count it completed like handleRun does,
	// whether or not the client sticks around for the body. The body is
	// exactly the engine's WriteJSON rendering — byte-identical to
	// `r3dla -exp <id> -format json` at the same budget.
	s.completed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	rep.WriteJSON(w)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrInvalid, err))
		return
	}
	if s.maxBudget > 0 && req.Budget > s.maxBudget {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: budget %d exceeds server cap %d", ErrInvalid, req.Budget, s.maxBudget))
		return
	}
	// Resolve the request up front so validation failures are proper 400s
	// and unknown workloads 404s — in particular before a ?stream=1
	// response commits to status 200.
	if _, err := req.Config.Config(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if workloads.ByName(req.Workload) == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownWorkload, req.Workload))
		return
	}
	release, ok := s.admitRequest(w)
	if !ok {
		return
	}
	defer release()

	if r.URL.Query().Get("stream") != "" {
		s.streamRequest(w, r, func(l *Lab) (any, error) {
			res, err := l.Run(r.Context(), req)
			return res, err
		})
		return
	}

	res, err := s.lab.Run(r.Context(), req)
	if err != nil {
		s.finish(w, r, err)
		return
	}
	s.completed.Add(1)
	writeJSON(w, http.StatusOK, res)
}

// ------------------------------------------------------------ streaming

// StreamLine is one NDJSON line of a ?stream=1 response: progress events
// ("prep", "run", "exp") as work happens, then exactly one terminal line
// ("result" with the payload, or "error").
type StreamLine struct {
	Event     string  `json:"event"`
	Workload  string  `json:"workload,omitempty"`
	Key       string  `json:"key,omitempty"`
	ID        string  `json:"id,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Result    any     `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// streamRequest runs f with a progress-observing Lab and writes NDJSON:
// one line per engine event, then the terminal result/error line.
func (s *Server) streamRequest(w http.ResponseWriter, r *http.Request, f func(l *Lab) (any, error)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(line StreamLine) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	ll := s.lab.WithProgress(func(ev Event) {
		emit(StreamLine{
			Event:     ev.Stage,
			Workload:  ev.Workload,
			Key:       ev.Key,
			ID:        ev.Exp,
			ElapsedMS: float64(ev.Elapsed.Microseconds()) / 1000,
		})
	})
	res, err := f(ll)
	if err != nil {
		if errorStatus(r.Context(), err) == StatusClientClosedRequest {
			s.canceled.Add(1)
		}
		emit(StreamLine{Event: "error", Error: err.Error()})
		return
	}
	s.completed.Add(1)
	emit(StreamLine{Event: "result", Result: res})
}
