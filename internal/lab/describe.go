package lab

import (
	"fmt"

	"r3dla/internal/core"
	"r3dla/internal/exp"
	"r3dla/internal/isa"
	"r3dla/internal/workloads"
)

// WorkloadStats characterizes one benchmark under a training run:
// dynamic instruction mix, cache-miss profile, and how much of its load
// stream is strided (the T1-coverable fraction).
type WorkloadStats struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`

	LoadPct   float64 `json:"load_pct"`
	StorePct  float64 `json:"store_pct"`
	BranchPct float64 `json:"branch_pct"`

	L1MPKI       float64 `json:"l1_mpki"`
	L2MPKI       float64 `json:"l2_mpki"`
	StridedLoads int     `json:"strided_loads"` // static load PCs with a stable stride
}

// Characterize profiles a named workload on the training input and
// summarizes what it stresses (the wlinfo view).
func Characterize(name string, budget uint64) (*WorkloadStats, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, name)
	}
	prog, setup := w.Build(exp.TrainSeed)
	prof := core.Collect(prog, setup, budget)

	var loads, stores, branches, total uint64
	var l1m, l2m uint64
	strided := 0
	for pc := range prog.Insts {
		st := &prof.PCs[pc]
		total += st.Exec
		op := prog.Insts[pc].Op
		switch {
		case op.IsLoad():
			loads += st.Exec
			l1m += st.L1Miss
			l2m += st.L2Miss
			if st.Strided() {
				strided++
			}
		case op.IsStore():
			stores += st.Exec
		case op.Class() == isa.ClassBranch:
			branches += st.Exec
		}
	}
	out := &WorkloadStats{Name: w.Name, Suite: w.Suite, StridedLoads: strided}
	if total > 0 {
		pct := func(x uint64) float64 { return float64(x) / float64(total) * 100 }
		out.LoadPct, out.StorePct, out.BranchPct = pct(loads), pct(stores), pct(branches)
		out.L1MPKI = float64(l1m) / float64(total) * 1000
		out.L2MPKI = float64(l2m) / float64(total) * 1000
	}
	return out, nil
}

// SkeletonInfo describes the skeleton set generated for one workload:
// per-version sizes, T1 marks, and (optionally) the masked listing of
// the baseline skeleton (the skelgen view).
type SkeletonInfo struct {
	Workload    string   `json:"workload"`
	Suite       string   `json:"suite"`
	StaticInsts int      `json:"static_insts"`
	Baseline    string   `json:"baseline"`
	Versions    []string `json:"versions"` // recycle pool a–f
	SBitMarks   int      `json:"s_bit_marks"`
	Listing     []string `json:"listing,omitempty"`
}

// DescribeSkeletons profiles a named workload on the training input,
// generates its skeleton set, and summarizes it. With listing, each
// static instruction is rendered with its include mask, S-bit and forced
// direction.
func DescribeSkeletons(name string, trainBudget uint64, listing bool) (*SkeletonInfo, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, name)
	}
	prog, setup := w.Build(exp.TrainSeed)
	prof := core.Collect(prog, setup, trainBudget)
	set := core.Generate(prog, prof)

	info := &SkeletonInfo{
		Workload:    w.Name,
		Suite:       w.Suite,
		StaticInsts: len(prog.Insts),
		Baseline:    set.Baseline.Describe(),
	}
	for _, v := range set.Versions {
		info.Versions = append(info.Versions, v.Describe())
	}
	for _, s := range set.SBits {
		if s {
			info.SBitMarks++
		}
	}
	if listing {
		for pc, in := range prog.Insts {
			mark := " "
			if set.Baseline.Include[pc] {
				mark = "*"
			}
			s := ""
			if set.SBits[pc] {
				s = " [S]"
			}
			f := ""
			if t, ok := set.Baseline.Forced(pc); ok {
				f = fmt.Sprintf(" [forced %v]", t)
			}
			info.Listing = append(info.Listing, fmt.Sprintf("%4d  %s  %v%s%s", pc, mark, in.String(), s, f))
		}
	}
	return info, nil
}
