package lab

// Tests for the multi-tenant result fabric: cross-client coalescing,
// the persistent result store, priority-class admission, idempotent
// outcome accounting, and the Prometheus metrics rendering.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"r3dla/internal/resultstore"
)

// waitStats polls /v1/stats until cond holds (or the deadline).
func waitStats(t *testing.T, url string, cond func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var st Stats
	for time.Now().Before(deadline) {
		getJSON(t, url+"/v1/stats", &st)
		if cond(st) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("stats condition never held; last: %+v", st)
	return st
}

// postRun POSTs one run body and returns (status, response bytes).
func postRun(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServerRunCoalescing is the fabric's headline contract: N
// concurrent identical /v1/runs perform exactly one simulation, all
// waiters share its answer, and every response is byte-identical.
func TestServerRunCoalescing(t *testing.T) {
	srv, l := newTestService(t)
	// A budget big enough (hundreds of ms of simulation; seconds under
	// -race) that the first request is still in flight when the rest
	// arrive, small enough that waiting for completion stays fast.
	body := `{"workload":"mcf","config":{"preset":"dla"},"budget":300000}`
	const n = 4
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	post := func(i int) {
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			errs[i] = err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		bodies[i], errs[i] = io.ReadAll(resp.Body)
	}
	wg.Add(1)
	go post(0)
	waitStats(t, srv.URL, func(st Stats) bool { return st.Inflight >= 1 })
	for i := 1; i < n; i++ {
		wg.Add(1)
		go post(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	if c := l.RunCount(); c != 1 {
		t.Fatalf("%d concurrent identical runs executed %d simulations, want 1", n, c)
	}
	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.Coalesced == 0 {
		t.Fatal("no request was coalesced into the shared flight")
	}
	if st.Completed != n {
		t.Fatalf("completed %d, want %d", st.Completed, n)
	}
}

// TestServerCoalescingSurvivesCancel pins the cancellation contract
// (run under -race in CI): the first client cancels mid-simulation, and
// a second waiter on the same key still receives the full result — one
// waiter's cancellation must not leak into the shared computation.
func TestServerCoalescingSurvivesCancel(t *testing.T) {
	srv, l := newTestService(t)
	body := `{"workload":"mcf","config":{"preset":"dla"},"budget":300000}`

	// Client A: cancelable, becomes the flight leader.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reqA, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/runs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	doneA := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(reqA)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request completed with status %d", resp.StatusCode)
		}
		doneA <- err
	}()
	waitStats(t, srv.URL, func(st Stats) bool { return st.Inflight >= 1 })

	// Client B: joins A's flight.
	doneB := make(chan struct{})
	var statusB int
	var bodyB []byte
	go func() {
		defer close(doneB)
		statusB, bodyB = postRun(t, srv.URL, body)
	}()
	waitStats(t, srv.URL, func(st Stats) bool { return st.Coalesced >= 1 })

	// A goes away mid-simulation; B must still get the whole answer.
	cancel()
	if err := <-doneA; err == nil {
		t.Fatal("canceled request reported success")
	}
	<-doneB
	if statusB != http.StatusOK {
		t.Fatalf("surviving waiter got status %d: %s", statusB, bodyB)
	}
	if !bytes.Contains(bodyB, []byte(`"workload": "mcf"`)) {
		t.Fatalf("surviving waiter got a partial body: %s", bodyB)
	}
	// The cancellation neither killed nor restarted the shared run.
	if c := l.RunCount(); c != 1 {
		t.Fatalf("shared run executed %d times, want 1", c)
	}
	waitStats(t, srv.URL, func(st Stats) bool { return st.Canceled == 1 && st.Completed == 1 })
}

// TestServerResultStoreRestart is the durable-tier contract: a fresh
// server (fresh Lab, fresh process in real life) over a warm store
// answers a repeated request with zero new simulations and a
// byte-identical body.
func TestServerResultStoreRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"workload":"mcf","config":{"preset":"r3"},"budget":3000}`

	st1, err := resultstore.Open(dir, ResultsFingerprint, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv1, l1 := newTestService(t, WithResultStore(st1))
	status, cold := postRun(t, srv1.URL, body)
	if status != http.StatusOK {
		t.Fatalf("cold run status %d: %s", status, cold)
	}
	if c := l1.RunCount(); c != 1 {
		t.Fatalf("cold run executed %d simulations, want 1", c)
	}
	if s := st1.Stats(); s.Puts != 1 {
		t.Fatalf("cold run persisted %d entries, want 1: %+v", s.Puts, s)
	}
	srv1.Close()

	// "Restart": a brand-new Lab and server over the same directory.
	st2, err := resultstore.Open(dir, ResultsFingerprint, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv2, l2 := newTestService(t, WithResultStore(st2))
	status, warm := postRun(t, srv2.URL, body)
	if status != http.StatusOK {
		t.Fatalf("warm run status %d: %s", status, warm)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("store hit is not byte-identical:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if c := l2.RunCount(); c != 0 {
		t.Fatalf("restarted server executed %d simulations, want 0 (store hit)", c)
	}
	var st Stats
	getJSON(t, srv2.URL+"/v1/stats", &st)
	if st.Store.Hits != 1 || st.Completed != 1 {
		t.Fatalf("warm stats %+v, want 1 store hit and 1 completed", st)
	}
	// A default-budget request hits the same entry: budget 0 resolves to
	// the server's default before the key is formed.
	status, def := postRun(t, srv2.URL, `{"workload":"mcf","config":{"preset":"r3"},"budget":2000}`)
	if status != http.StatusOK {
		t.Fatal("default-budget request failed")
	}
	_ = def
	if c := l2.RunCount(); c != 1 {
		t.Fatalf("distinct budget should simulate once, got %d", c)
	}
}

// TestServerPriorityAdmission walks the fair-share policy at capacity 4
// (reserve 1): batch may fill 3 slots, the 4th batch request sheds while
// an interactive one still fits, and a full house sheds everything.
func TestServerPriorityAdmission(t *testing.T) {
	l, err := New(WithBudget(2_000), WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(l, WithMaxInflight(4))

	admit := func(class string) (func(), int) {
		r := httptest.NewRequest(http.MethodPost, "/v1/runs", nil)
		if class != "" {
			r.Header.Set(PriorityHeader, class)
		}
		w := httptest.NewRecorder()
		release, ok := s.admitRequest(w, r)
		if !ok {
			return nil, w.Code
		}
		return release, http.StatusOK
	}

	var releases []func()
	for i := 0; i < 3; i++ {
		release, code := admit(PriorityBatch)
		if code != http.StatusOK {
			t.Fatalf("batch admission %d shed with %d", i, code)
		}
		releases = append(releases, release)
	}
	// Batch is now at capacity-reserve: the next batch request sheds...
	if _, code := admit(PriorityBatch); code != http.StatusServiceUnavailable {
		t.Fatalf("4th batch request got %d, want 503", code)
	}
	// ...but the interactive reserve still admits.
	releaseI, code := admit("")
	if code != http.StatusOK {
		t.Fatalf("interactive request shed with %d despite reserve", code)
	}
	// Full house: everything sheds now.
	if _, code := admit(""); code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity interactive got %d, want 503", code)
	}
	if _, code := admit(PriorityBatch); code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity batch got %d, want 503", code)
	}

	st := s.statsSnapshot()
	want := Stats{
		Inflight: 4, Capacity: 4, Budget: 2_000,
		Interactive: ClassStats{Inflight: 1, Admitted: 1, Shed: 1},
		Batch:       ClassStats{Inflight: 3, Admitted: 3, Shed: 2},
	}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}

	// Releasing a batch slot reopens batch admission.
	releases[0]()
	release, code := admit(PriorityBatch)
	if code != http.StatusOK {
		t.Fatalf("batch after release got %d", code)
	}
	release()
	releaseI()
	for _, r := range releases[1:] {
		r()
	}
	if st := s.statsSnapshot(); st.Inflight != 0 || st.Interactive.Inflight != 0 || st.Batch.Inflight != 0 {
		t.Fatalf("inflight did not drain: %+v", st)
	}
}

// TestServerObserveIdempotent pins the outcome-accounting fix: however
// many layers classify one request (extension Observe plus the server's
// own finish paths), each request moves completed/canceled by at most
// one — table-driven against /v1/stats.
func TestServerObserveIdempotent(t *testing.T) {
	canceledErr := context.Canceled
	for _, tc := range []struct {
		name          string
		handle        func(s *Server, w http.ResponseWriter, r *http.Request)
		wantCompleted int64
		wantCanceled  int64
	}{
		{
			name: "double cancel observation",
			handle: func(s *Server, w http.ResponseWriter, r *http.Request) {
				s.Observe(r.Context(), canceledErr)
				s.Observe(r.Context(), canceledErr)
			},
			wantCanceled: 1,
		},
		{
			name: "extension observe then server finish",
			handle: func(s *Server, w http.ResponseWriter, r *http.Request) {
				s.Observe(r.Context(), canceledErr)
				s.finish(w, r, canceledErr)
			},
			wantCanceled: 1,
		},
		{
			name: "double success observation",
			handle: func(s *Server, w http.ResponseWriter, r *http.Request) {
				s.Observe(r.Context(), nil)
				s.Observe(r.Context(), nil)
			},
			wantCompleted: 1,
		},
		{
			name: "first classification wins",
			handle: func(s *Server, w http.ResponseWriter, r *http.Request) {
				s.Observe(r.Context(), nil)
				s.Observe(r.Context(), canceledErr)
			},
			wantCompleted: 1,
		},
		{
			name: "separate requests count separately",
			handle: func(s *Server, w http.ResponseWriter, r *http.Request) {
				s.Observe(r.Context(), canceledErr)
			},
			wantCanceled: 2, // the handler runs twice below
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, err := New(WithBudget(2_000), WithJobs(2))
			if err != nil {
				t.Fatal(err)
			}
			s := NewServer(l)
			s.Handle("POST /v1/ext", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				tc.handle(s, w, r)
			}))
			srv := httptest.NewServer(s)
			defer srv.Close()
			calls := 1
			if tc.name == "separate requests count separately" {
				calls = 2
			}
			for i := 0; i < calls; i++ {
				resp, err := http.Post(srv.URL+"/v1/ext", "application/json", nil)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
			}
			var st Stats
			getJSON(t, srv.URL+"/v1/stats", &st)
			if st.Completed != tc.wantCompleted || st.Canceled != tc.wantCanceled {
				t.Fatalf("completed=%d canceled=%d, want %d/%d",
					st.Completed, st.Canceled, tc.wantCompleted, tc.wantCanceled)
			}
		})
	}
}

// TestServerMetrics scrapes /metrics (and the ?format=prometheus alias)
// and spot-checks the exposition format.
func TestServerMetrics(t *testing.T) {
	dir := t.TempDir()
	st, err := resultstore.Open(dir, ResultsFingerprint, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newTestService(t, WithMaxInflight(8), WithResultStore(st))
	if status, _ := postRun(t, srv.URL, `{"workload":"mcf","config":{"preset":"dla"},"budget":2000}`); status != http.StatusOK {
		t.Fatalf("seed run status %d", status)
	}

	for _, path := range []string{"/metrics", "/v1/stats?format=prometheus"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("%s: content-type %q", path, ct)
		}
		for _, want := range []string{
			"# TYPE r3dlad_inflight gauge",
			"r3dlad_admission_capacity 8",
			"r3dlad_requests_completed_total 1",
			"r3dlad_simulations_total 1",
			`r3dlad_class_admitted_total{class="interactive"} 1`,
			`r3dlad_class_admitted_total{class="batch"} 0`,
			"r3dlad_store_misses_total 1",
			"r3dlad_store_puts_total 1",
			"r3dlad_store_entries 1",
		} {
			if !strings.Contains(string(body), want) {
				t.Errorf("%s: missing %q in:\n%s", path, want, body)
			}
		}
	}
}

// TestServerStoreHitStream: a ?stream=1 request served from the store
// answers with just the terminal result line.
func TestServerStoreHitStream(t *testing.T) {
	dir := t.TempDir()
	st, err := resultstore.Open(dir, ResultsFingerprint, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newTestService(t, WithResultStore(st))
	body := `{"workload":"mcf","config":{"preset":"dla"},"budget":2000}`
	if status, _ := postRun(t, srv.URL, body); status != http.StatusOK {
		t.Fatal("cold run failed")
	}
	resp, err := http.Post(srv.URL+"/v1/runs?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"event":"result"`) {
		t.Fatalf("store-hit stream should be one result line, got %d lines:\n%s", len(lines), raw)
	}
}
