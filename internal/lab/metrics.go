package lab

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// handleMetrics renders the server's counters in the Prometheus text
// exposition format (version 0.0.4), mounted on GET /metrics and on
// GET /v1/stats?format=prometheus. Hand-rolled on purpose: the module
// carries no external dependencies, and the counter set is small enough
// that a client library would dwarf the code it replaced.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.statsSnapshot()
	var b strings.Builder
	metric := func(name, typ, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	perClass := func(name, typ, help string, f func(ClassStats) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		fmt.Fprintf(&b, "%s{class=%q} %d\n", name, PriorityInteractive, f(st.Interactive))
		fmt.Fprintf(&b, "%s{class=%q} %d\n", name, PriorityBatch, f(st.Batch))
	}

	metric("r3dlad_inflight", "gauge", "Simulation requests currently admitted.", st.Inflight)
	metric("r3dlad_admission_capacity", "gauge", "Admission bound (0 = unlimited).", st.Capacity)
	metric("r3dlad_requests_completed_total", "counter", "Requests answered successfully.", st.Completed)
	metric("r3dlad_requests_canceled_total", "counter", "Requests whose client went away mid-flight.", st.Canceled)
	metric("r3dlad_simulations_total", "counter", "Simulations actually executed (cache misses).", st.Runs)
	metric("r3dlad_coalesced_waiters_total", "counter", "Requests served by joining another request's in-flight simulation.", st.Coalesced)
	perClass("r3dlad_class_inflight", "gauge", "Admitted requests in flight per priority class.",
		func(c ClassStats) int64 { return c.Inflight })
	perClass("r3dlad_class_admitted_total", "counter", "Cumulative admissions per priority class.",
		func(c ClassStats) int64 { return c.Admitted })
	perClass("r3dlad_class_shed_total", "counter", "Cumulative 503s per priority class.",
		func(c ClassStats) int64 { return c.Shed })
	metric("r3dlad_store_hits_total", "counter", "Persistent result store hits.", st.Store.Hits)
	metric("r3dlad_store_misses_total", "counter", "Persistent result store misses.", st.Store.Misses)
	metric("r3dlad_store_evictions_total", "counter", "Persistent result store LRU evictions.", st.Store.Evictions)
	metric("r3dlad_store_puts_total", "counter", "Persistent result store writes.", st.Store.Puts)
	metric("r3dlad_store_entries", "gauge", "Persistent result store live entries.", st.Store.Entries)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, b.String())
}
