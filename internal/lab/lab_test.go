package lab

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestPresetConfigs(t *testing.T) {
	for _, tc := range []struct {
		p    Preset
		dis  bool
		r3on bool
	}{
		{Baseline, true, false},
		{DLA, false, false},
		{R3, false, true},
	} {
		cfg, err := NewConfig(tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.p.Name(), err)
		}
		o := cfg.SystemOptions()
		if o.Disable != tc.dis {
			t.Errorf("%s: Disable = %t", tc.p.Name(), o.Disable)
		}
		if (o.T1 && o.ValueReuse && o.FetchBuffer && o.Recycle) != tc.r3on {
			t.Errorf("%s: R3 flags wrong: %+v", tc.p.Name(), o)
		}
		if !o.WithBOP {
			t.Errorf("%s: presets include BOP", tc.p.Name())
		}
	}
	if _, ok := PresetByName("DLA"); !ok {
		t.Error("preset lookup should be case-insensitive")
	}
	if _, ok := PresetByName("nope"); ok {
		t.Error("unknown preset resolved")
	}
}

func TestOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opts []Option
	}{
		{"negative BOQ", []Option{WithBOQ(-1)}},
		{"zero BOQ", []Option{WithBOQ(0)}},
		{"tiny FQ", []Option{WithFQ(3)}},
		{"zero VQ", []Option{WithVQ(0)}},
		{"zero reboot", []Option{WithRebootCost(0)}},
		{"zero trials", []Option{WithTrials(0)}},
		{"version too high", []Option{WithVersion(6)}},
		{"version negative", []Option{WithVersion(-1)}},
		{"version under recycle", []Option{WithRecycle(true), WithVersion(1)}},
		{"empty LCT", []Option{WithStaticLCT(nil)}},
		{"LCT bad version", []Option{WithStaticLCT(map[int]int{4: 9})}},
	}
	for _, tc := range bad {
		if _, err := NewConfig(DLA, tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v not tagged ErrInvalid", tc.name, err)
		}
	}

	// Look-ahead options on the baseline preset are contradictions (no
	// LT exists), not silent no-ops: each value would otherwise be an
	// inert-but-distinct cache key, and a sweep axis over it would
	// simulate identical baselines N times.
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"t1 on baseline", WithT1(true)},
		{"value reuse on baseline", WithValueReuse(true)},
		{"recycle on baseline", WithRecycle(true)},
		{"version on baseline", WithVersion(2)},
		{"BOQ on baseline", WithBOQ(1024)},
		{"static LCT on baseline", WithStaticLCT(map[int]int{0: 1})},
	} {
		if _, err := NewConfig(Baseline, tc.opt); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v not tagged ErrInvalid", tc.name, err)
		}
	}
	// Only true contradictions reject: false toggles, stride/BOP and MT
	// core sizing stay valid on the baseline.
	if _, err := NewConfig(Baseline, WithT1(false), WithStride(true), WithBOP(false)); err != nil {
		t.Errorf("benign baseline options rejected: %v", err)
	}
	if _, err := NewConfig(Preset{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero preset: %v", err)
	}

	cfg, err := NewConfig(DLA, WithT1(true), WithBOQ(1024), WithVersion(0))
	if err != nil {
		t.Fatal(err)
	}
	o := cfg.SystemOptions()
	if !o.T1 || o.BOQSize != 1024 || !o.HasFixedVersion || o.FixedVersion != 0 {
		t.Fatalf("options not applied: %+v", o)
	}
}

// TestWithVersionZeroIsExplicit is the lab-level face of the FixedVersion
// sentinel fix: version 0 must produce a different canonical key (and
// thus a different cached run) than "no fixed version".
func TestWithVersionZeroIsExplicit(t *testing.T) {
	plain := MustConfig(DLA)
	v0 := MustConfig(DLA, WithVersion(0))
	if plain.Key() == v0.Key() {
		t.Fatalf("version 0 aliases the unversioned config: %s", plain.Key())
	}
	if !strings.Contains(v0.Key(), "v=0") {
		t.Fatalf("version 0 missing from key: %s", v0.Key())
	}
}

func TestCoreSpec(t *testing.T) {
	// A bare model resolves to its pipeline config.
	wide, err := CoreSpec{Model: "wide"}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if wide.ROB != 512 || wide.FetchWidth != 16 {
		t.Fatalf("wide model wrong: %+v", wide)
	}
	// Overrides apply on top of the model; zero fields keep defaults.
	cfg, err := CoreSpec{Model: "half", ROB: 999, FetchWidth: 2}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ROB != 999 || cfg.FetchWidth != 2 || cfg.DecodeWidth != 6 {
		t.Fatalf("overrides wrong: %+v", cfg)
	}
	// Model names are case-insensitive; "" means default.
	if _, err := (CoreSpec{Model: "WIDE"}).Config(); err != nil {
		t.Fatal(err)
	}
	def, err := CoreSpec{}.Config()
	if err != nil || def.ROB != 192 {
		t.Fatalf("default model: %v %+v", err, def)
	}

	for _, bad := range []CoreSpec{
		{Model: "mega"},
		{ROB: -1},
		{FetchWidth: -4},
	} {
		if _, err := bad.Config(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%+v: error %v not tagged ErrInvalid", bad, err)
		}
	}

	// Keys are canonical axis labels.
	if k := (CoreSpec{}).Key(); k != "default" {
		t.Errorf("zero key %q", k)
	}
	if k := (CoreSpec{Model: "Half", ROB: 512, FetchWidth: 2}).Key(); k != "half+fetch=2+rob=512" {
		t.Errorf("override key %q", k)
	}

	// Through ConfigSpec: distinct core specs yield distinct run keys.
	c1, err := (ConfigSpec{Preset: "dla", Cores: &CoreSpec{Model: "wide"}}).Config()
	if err != nil {
		t.Fatal(err)
	}
	c2 := MustConfig(DLA)
	if c1.Key() == c2.Key() {
		t.Fatalf("wide cores alias the default config key: %s", c1.Key())
	}
}

func TestConfigSpecRoundtrip(t *testing.T) {
	on, sz, v := true, 1024, 2
	spec := ConfigSpec{Preset: "dla", T1: &on, BOQSize: &sz, Version: &v}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	o := cfg.SystemOptions()
	if !o.T1 || o.BOQSize != 1024 || o.FixedVersion != 2 || !o.HasFixedVersion {
		t.Fatalf("spec not applied: %+v", o)
	}

	if _, err := (ConfigSpec{Preset: "bogus"}).Config(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bogus preset: %v", err)
	}
	neg := -3
	if _, err := (ConfigSpec{Preset: "r3", BOQSize: &neg}).Config(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative BOQ via spec: %v", err)
	}
	// Empty preset means baseline.
	cfg, err = ConfigSpec{}.Config()
	if err != nil || cfg.Preset() != "baseline" {
		t.Fatalf("empty spec: %v / %q", err, cfg.Preset())
	}
}

// TestClientOptionOrder asserts WithBudget and WithTrainBudget compose
// order-independently: an explicit training budget survives a later
// WithBudget.
func TestClientOptionOrder(t *testing.T) {
	a, err := New(WithTrainBudget(60_000), WithBudget(150_000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithBudget(150_000), WithTrainBudget(60_000))
	if err != nil {
		t.Fatal(err)
	}
	if ta, tb := a.c.TrainBudget, b.c.TrainBudget; ta != 60_000 || tb != 60_000 {
		t.Fatalf("train budgets order-dependent: %d vs %d, want 60000", ta, tb)
	}
	// Without an explicit training budget, WithBudget defaults it to half.
	c, err := New(WithBudget(150_000))
	if err != nil {
		t.Fatal(err)
	}
	if c.c.TrainBudget != 75_000 {
		t.Fatalf("default train budget %d, want 75000", c.c.TrainBudget)
	}
}

func TestLabRunAndCache(t *testing.T) {
	l, err := New(WithBudget(3_000), WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	r, err := l.Run(ctx, RunRequest{Workload: "mcf", Config: ConfigSpec{Preset: "dla"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.Committed < 3_000 || r.LT == nil {
		t.Fatalf("implausible result: %+v", r)
	}
	if r.Budget != 3_000 {
		t.Fatalf("budget %d, want lab default 3000", r.Budget)
	}

	// Identical request: served from cache, identical values.
	r2, err := l.Run(ctx, RunRequest{Workload: "mcf", Config: ConfigSpec{Preset: "dla"}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.IPC != r.IPC || r2.Cycles != r.Cycles || r2.Reboots != r.Reboots {
		t.Fatalf("cached rerun diverged: %+v vs %+v", r2, r)
	}
	if n := l.PrepCount("mcf"); n != 1 {
		t.Fatalf("mcf prepared %d times, want 1", n)
	}

	// A budget override is a distinct cache entry with a longer run.
	r3, err := l.Run(ctx, RunRequest{Workload: "mcf", Config: ConfigSpec{Preset: "dla"}, Budget: 6_000})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Committed < 6_000 || r3.Budget != 6_000 {
		t.Fatalf("budget override ignored: %+v", r3)
	}
	if n := l.PrepCount("mcf"); n != 1 {
		t.Fatalf("budget override re-prepared: %d", n)
	}

	if _, err := l.Run(ctx, RunRequest{Workload: "nope", Config: ConfigSpec{Preset: "dla"}}); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("unknown workload: %v", err)
	}
}

// TestLabRunVersionZero runs recycle-pool version 0 end-to-end through
// the request path and checks it does not silently fall back to the
// baseline skeleton (the old sentinel bug's observable symptom).
func TestLabRunVersionZero(t *testing.T) {
	l, err := New(WithBudget(4_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	v := 0
	v0, err := l.Run(ctx, RunRequest{Workload: "libq", Config: ConfigSpec{Preset: "dla", Version: &v}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := l.Run(ctx, RunRequest{Workload: "libq", Config: ConfigSpec{Preset: "dla"}})
	if err != nil {
		t.Fatal(err)
	}
	if v0.LT == nil || plain.LT == nil {
		t.Fatal("missing LT stats")
	}
	if v0.LT.Committed >= plain.LT.Committed {
		t.Fatalf("version 0 (reduced skeleton) LT committed %d >= baseline skeleton's %d",
			v0.LT.Committed, plain.LT.Committed)
	}
}

// TestLabConcurrentSingleflight hammers the same request from many
// goroutines: preparation and the simulation itself must each execute
// once.
func TestLabConcurrentSingleflight(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	l, err := New(WithBudget(3_000), WithJobs(4), WithProgress(func(ev Event) {
		if ev.Stage == "run" {
			mu.Lock()
			runs++
			mu.Unlock()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = l.Run(context.Background(), RunRequest{Workload: "bzip", Config: ConfigSpec{Preset: "r3"}})
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
	if n := l.PrepCount("bzip"); n != 1 {
		t.Fatalf("bzip prepared %d times, want 1", n)
	}
	if runs != 1 {
		t.Fatalf("simulation ran %d times, want 1", runs)
	}
}

// TestLabCancellation asserts a canceled context aborts a run with the
// context's error, and that the lab stays usable afterwards.
func TestLabCancellation(t *testing.T) {
	l, err := New(WithBudget(3_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Run(ctx, RunRequest{Workload: "mcf", Config: ConfigSpec{Preset: "dla"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: %v", err)
	}
	if _, err := l.Run(context.Background(), RunRequest{Workload: "mcf", Config: ConfigSpec{Preset: "dla"}}); err != nil {
		t.Fatalf("lab poisoned after cancellation: %v", err)
	}
}

func TestCharacterizeAndDescribe(t *testing.T) {
	st, err := Characterize("mcf", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.LoadPct <= 0 || st.Name != "mcf" {
		t.Fatalf("empty characterization: %+v", st)
	}
	if _, err := Characterize("nope", 10_000); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("unknown workload: %v", err)
	}

	info, err := DescribeSkeletons("mcf", 10_000, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 6 || info.Baseline == "" {
		t.Fatalf("skeleton info incomplete: %+v", info)
	}
	if len(info.Listing) != info.StaticInsts {
		t.Fatalf("listing has %d lines for %d static insts", len(info.Listing), info.StaticInsts)
	}
}
