package lab

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateRunGoldens = flag.Bool("update-run-goldens", false,
	"rewrite RunResult golden files under testdata/runs/")

// goldenBudget keeps the golden grid cheap enough to run under -race in
// CI while still exercising reboots, recycling and the queue machinery.
const goldenBudget = 4000

// goldenGrid is the preset x workload matrix the byte-identity goldens
// pin. One workload per suite keeps the grid representative without
// making the -race run expensive.
var goldenGrid = struct {
	workloads []string
	presets   []string
}{
	workloads: []string{"mcf", "libq", "bfs", "rotate"},
	presets:   []string{"baseline", "dla", "r3"},
}

// goldenRunJSON renders a RunResult exactly as the service serializes it.
func goldenRunJSON(t *testing.T, res *RunResult) []byte {
	t.Helper()
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestRunResultGoldens asserts that the simulation core produces output
// byte-identical to the committed goldens recorded from the seed core.
// Any optimization of the cycle loop, the queues, skeleton generation or
// workload setup must keep every one of these bytes unchanged — this is
// the contract that makes aggressive optimization safe.
func TestRunResultGoldens(t *testing.T) {
	l, err := New(WithBudget(goldenBudget))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range goldenGrid.workloads {
		for _, preset := range goldenGrid.presets {
			w, preset := w, preset
			t.Run(w+"_"+preset, func(t *testing.T) {
				t.Parallel()
				res, err := l.Run(context.Background(), RunRequest{
					Workload: w,
					Config:   ConfigSpec{Preset: preset},
					Budget:   goldenBudget,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := goldenRunJSON(t, res)
				path := filepath.Join("testdata", "runs", fmt.Sprintf("%s_%s.json", w, preset))
				if *updateRunGoldens {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run `go test ./internal/lab -run TestRunResultGoldens -update-run-goldens`): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s/%s drifted from the seed-core golden.\n--- want ---\n%s--- got ---\n%s",
						w, preset, want, got)
				}
			})
		}
	}
}
