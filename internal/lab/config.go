// Package lab is the production client layer of the simulator: an
// explicit, validated, serializable configuration surface (presets +
// functional options), a Lab client that memoizes preparation and runs
// across requests (singleflight, bounded worker pool, context
// cancellation), and the typed request/response values the r3dlad
// service speaks. The root package r3dla re-exports this API; commands,
// examples and the service are all built on it, so core.Options
// construction happens in exactly one place.
package lab

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"r3dla/internal/core"
	"r3dla/internal/pipeline"
)

// ErrInvalid tags request-validation failures (bad option values,
// malformed specs); the service maps it to 400. Use errors.Is.
var ErrInvalid = errors.New("lab: invalid request")

// Preset is an immutable named base configuration. The three presets
// mirror the paper's comparison points; a Config starts from a preset
// and layers functional options on top.
type Preset struct {
	name string
	opt  func() core.Options
}

// The named presets: the plain single-core baseline every experiment
// normalizes against, the classic decoupled look-ahead design of
// Sec. III-A, and the full R3-DLA machine (T1 offload + value reuse +
// fetch buffer + recycling). All three include the BOP prefetcher, as in
// the paper's default comparison.
var (
	Baseline = Preset{"baseline", func() core.Options { return core.Options{Disable: true, WithBOP: true} }}
	DLA      = Preset{"dla", core.DLAOptions}
	R3       = Preset{"r3", core.R3Options}
)

// Presets lists the named presets in presentation order.
func Presets() []Preset { return []Preset{Baseline, DLA, R3} }

// PresetByName resolves a preset by its wire name ("baseline", "dla",
// "r3"); names are case-insensitive.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets() {
		if strings.EqualFold(name, p.name) {
			return p, true
		}
	}
	return Preset{}, false
}

// Name returns the preset's wire name.
func (p Preset) Name() string { return p.name }

// Config selects a complete system configuration. Configs are built by
// NewConfig from a preset plus options, are valid by construction, and
// are plain values — copy freely, share freely.
type Config struct {
	preset string
	opt    core.Options
}

// Option is one functional configuration option, applied by NewConfig.
// Options validate their arguments and return errors instead of silently
// clamping.
type Option func(*Config) error

// NewConfig builds a configuration from a preset and options. The first
// failing option aborts construction.
func NewConfig(p Preset, opts ...Option) (Config, error) {
	if p.name == "" {
		return Config{}, fmt.Errorf("%w: zero Preset (use lab.Baseline, lab.DLA or lab.R3)", ErrInvalid)
	}
	c := Config{preset: p.name, opt: p.opt()}
	for _, o := range opts {
		if err := o(&c); err != nil {
			return Config{}, err
		}
	}
	if c.opt.Recycle && c.opt.HasFixedVersion {
		return Config{}, fmt.Errorf("%w: a fixed skeleton version conflicts with online recycling (disable one)", ErrInvalid)
	}
	// The baseline preset spawns no look-ahead thread, so look-ahead
	// options are contradictions, not no-ops: accepting them would make
	// every value an inert-but-distinct cache key, and a sweep axis over
	// them would simulate N identical baselines and report a meaningless
	// marginal. Reject them with the offending field named.
	if c.opt.Disable {
		var inert string
		switch {
		case c.opt.T1:
			inert = "the T1 offload"
		case c.opt.ValueReuse:
			inert = "value reuse"
		case c.opt.FetchBuffer:
			inert = "the fetch buffer"
		case c.opt.Recycle:
			inert = "recycling"
		case c.opt.PrefetchOnly:
			inert = "prefetch-only mode"
		case c.opt.HasFixedVersion:
			inert = "a fixed skeleton version"
		case c.opt.StaticLCT != nil:
			inert = "a static LCT"
		case c.opt.BOQSize != 0:
			inert = "BOQ sizing"
		case c.opt.FQSize != 0:
			inert = "FQ sizing"
		case c.opt.VQSize != 0:
			inert = "VQ sizing"
		case c.opt.RebootCost != 0:
			inert = "reboot cost"
		case c.opt.TrialInsts != 0:
			inert = "a trial window"
		case c.opt.LTCfg != nil:
			inert = "a look-ahead core config"
		}
		if inert != "" {
			return Config{}, fmt.Errorf("%w: %s requires a look-ahead preset (baseline runs no look-ahead thread; use dla or r3)", ErrInvalid, inert)
		}
	}
	return c, nil
}

// MustConfig is NewConfig for static configurations known to be valid;
// it panics on error.
func MustConfig(p Preset, opts ...Option) Config {
	c, err := NewConfig(p, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Preset returns the name of the preset the config was built from.
func (c Config) Preset() string { return c.preset }

// SystemOptions lowers the configuration to the core layer's option
// struct. This is the only path from the public API to core.Options.
func (c Config) SystemOptions() core.Options { return c.opt }

// Key returns the canonical memoization key of the configuration: equal
// keys mean identical simulation semantics, so the Lab's result cache
// can share runs across requests.
func (c Config) Key() string {
	o := c.opt
	var b strings.Builder
	fmt.Fprintf(&b, "t1=%t,vr=%t,fb=%t,rc=%t,bop=%t,stride=%t,po=%t,dis=%t",
		o.T1, o.ValueReuse, o.FetchBuffer, o.Recycle, o.WithBOP, o.WithStride, o.PrefetchOnly, o.Disable)
	fmt.Fprintf(&b, ",boq=%d,fq=%d,vq=%d,reboot=%d,trial=%d",
		o.BOQSize, o.FQSize, o.VQSize, o.RebootCost, o.TrialInsts)
	if o.HasFixedVersion {
		fmt.Fprintf(&b, ",v=%d", o.FixedVersion)
	}
	if o.StaticLCT != nil {
		loops := make([]int, 0, len(o.StaticLCT))
		for l := range o.StaticLCT {
			loops = append(loops, l)
		}
		sort.Ints(loops)
		b.WriteString(",lct=")
		for i, l := range loops {
			if i > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(&b, "%d:%d", l, o.StaticLCT[l])
		}
	}
	if o.CoreCfg != nil {
		fmt.Fprintf(&b, ",core={%+v}", *o.CoreCfg)
	}
	if o.LTCfg != nil {
		fmt.Fprintf(&b, ",ltcore={%+v}", *o.LTCfg)
	}
	return b.String()
}

// RunKey renders the canonical identity of one simulation request:
// workload, resolved configuration key, and budget. Equal keys mean
// identical simulation semantics — the Lab's result cache, the fleet
// pool's client-side cache, and the sweep/dse checkpoint journals all
// match on this one string.
func RunKey(workload string, cfg Config, budget uint64) string {
	return fmt.Sprintf("%s|%s@%d", workload, cfg.Key(), budget)
}

// ------------------------------------------------------- feature options

// WithT1 toggles the T1 strided-prefetch offload FSM ("reduce").
func WithT1(on bool) Option {
	return func(c *Config) error { c.opt.T1 = on; return nil }
}

// WithValueReuse toggles SIF-filtered value predictions through the VQ
// ("reuse").
func WithValueReuse(on bool) Option {
	return func(c *Config) error { c.opt.ValueReuse = on; return nil }
}

// WithFetchBuffer toggles the 32-entry BOQ-driven MT fetch buffer
// ("reuse").
func WithFetchBuffer(on bool) Option {
	return func(c *Config) error { c.opt.FetchBuffer = on; return nil }
}

// WithRecycle toggles online skeleton cycling ("recycle").
func WithRecycle(on bool) Option {
	return func(c *Config) error { c.opt.Recycle = on; return nil }
}

// WithBOP toggles the BOP prefetcher at both cores' L2.
func WithBOP(on bool) Option {
	return func(c *Config) error { c.opt.WithBOP = on; return nil }
}

// WithStride toggles the tuned hardware stride prefetcher at the MT L1
// (the Fig. 12 comparator).
func WithStride(on bool) Option {
	return func(c *Config) error { c.opt.WithStride = on; return nil }
}

// WithPrefetchOnly models CRE-style helpers: the leading thread only
// prefetches, and BOQ entries serve purely as a divergence check.
func WithPrefetchOnly(on bool) Option {
	return func(c *Config) error { c.opt.PrefetchOnly = on; return nil }
}

// -------------------------------------------------------- sizing options

// WithBOQ sets the branch outcome queue depth (default 512).
func WithBOQ(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return fmt.Errorf("%w: BOQ size %d, want >= 1", ErrInvalid, n)
		}
		c.opt.BOQSize = n
		return nil
	}
}

// WithFQ sets the footnote queue capacity (default 128), partitioned 3:1
// between prefetch hints and indirect targets — so it must be at least 4.
func WithFQ(n int) Option {
	return func(c *Config) error {
		if n < 4 {
			return fmt.Errorf("%w: FQ size %d, want >= 4 (3:1 prefetch/indirect split)", ErrInvalid, n)
		}
		c.opt.FQSize = n
		return nil
	}
}

// WithVQ sets the value queue (VPT) capacity (default 32).
func WithVQ(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return fmt.Errorf("%w: VQ size %d, want >= 1", ErrInvalid, n)
		}
		c.opt.VQSize = n
		return nil
	}
}

// WithRebootCost sets the LT resynchronization cost in cycles (default
// 64).
func WithRebootCost(cycles uint64) Option {
	return func(c *Config) error {
		if cycles == 0 {
			return fmt.Errorf("%w: reboot cost 0 (the default is applied by leaving it unset)", ErrInvalid)
		}
		c.opt.RebootCost = cycles
		return nil
	}
}

// WithTrials sets the recycle measurement window in committed MT
// instructions (default scales with the run budget).
func WithTrials(insts uint64) Option {
	return func(c *Config) error {
		if insts == 0 {
			return fmt.Errorf("%w: trial window 0", ErrInvalid)
		}
		c.opt.TrialInsts = insts
		return nil
	}
}

// ------------------------------------------------------ skeleton options

// WithVersion pins the look-ahead thread to recycle-pool version k
// (0-based, versions a–f of Sec. III-E1) instead of the baseline
// skeleton. Version 0 — the reduced skeleton — is a first-class value
// here; the old core-level sentinel made it unselectable.
func WithVersion(k int) Option {
	return func(c *Config) error {
		if k < 0 || k >= core.NumVersions {
			return fmt.Errorf("%w: skeleton version %d, want 0..%d", ErrInvalid, k, core.NumVersions-1)
		}
		c.opt.FixedVersion, c.opt.HasFixedVersion = k, true
		return nil
	}
}

// WithStaticLCT preloads the loop->version table from an offline tuning
// run (static recycling). The map is copied; versions are validated.
func WithStaticLCT(lct map[int]int) Option {
	return func(c *Config) error {
		if len(lct) == 0 {
			return fmt.Errorf("%w: empty static LCT", ErrInvalid)
		}
		cp := make(map[int]int, len(lct))
		for loop, v := range lct {
			if v < 0 || v >= core.NumVersions {
				return fmt.Errorf("%w: static LCT maps loop %d to version %d, want 0..%d",
					ErrInvalid, loop, v, core.NumVersions-1)
			}
			cp[loop] = v
		}
		c.opt.StaticLCT = cp
		return nil
	}
}

// ---------------------------------------------------------- core options

// WithCores sets the pipeline configuration of both cores (Table I by
// default).
func WithCores(cfg pipeline.Config) Option {
	return func(c *Config) error {
		if err := validCoreCfg(cfg); err != nil {
			return err
		}
		cp := cfg
		c.opt.CoreCfg = &cp
		return nil
	}
}

// WithLTCore overrides the look-ahead core's pipeline configuration
// (defaults to the MT's).
func WithLTCore(cfg pipeline.Config) Option {
	return func(c *Config) error {
		if err := validCoreCfg(cfg); err != nil {
			return err
		}
		cp := cfg
		c.opt.LTCfg = &cp
		return nil
	}
}

func validCoreCfg(cfg pipeline.Config) error {
	if cfg.FetchWidth < 1 || cfg.DecodeWidth < 1 || cfg.CommitWidth < 1 || cfg.ROB < 1 {
		return fmt.Errorf("%w: degenerate core config (fetch %d, decode %d, commit %d, ROB %d)",
			ErrInvalid, cfg.FetchWidth, cfg.DecodeWidth, cfg.CommitWidth, cfg.ROB)
	}
	return nil
}

// ----------------------------------------------------------- wire format

// ConfigSpec is the serializable form of a configuration: a preset name
// plus explicit overrides. Nil fields mean "preset default". It is the
// wire format POST /v1/runs accepts; Config() resolves and validates it
// through the same functional options programmatic callers use.
type ConfigSpec struct {
	Preset string `json:"preset"` // "baseline", "dla", "r3"; "" means baseline

	T1           *bool `json:"t1,omitempty"`
	ValueReuse   *bool `json:"value_reuse,omitempty"`
	FetchBuffer  *bool `json:"fetch_buffer,omitempty"`
	Recycle      *bool `json:"recycle,omitempty"`
	BOP          *bool `json:"bop,omitempty"`
	Stride       *bool `json:"stride,omitempty"`
	PrefetchOnly *bool `json:"prefetch_only,omitempty"`

	BOQSize    *int    `json:"boq_size,omitempty"`
	FQSize     *int    `json:"fq_size,omitempty"`
	VQSize     *int    `json:"vq_size,omitempty"`
	RebootCost *uint64 `json:"reboot_cost,omitempty"`
	TrialInsts *uint64 `json:"trial_insts,omitempty"`

	Version *int `json:"version,omitempty"` // fixed skeleton version, 0-based

	Cores *CoreSpec `json:"cores,omitempty"` // pipeline sizing of both cores
}

// CoreSpec is the serializable form of a pipeline configuration: a named
// model plus explicit width/capacity overrides (0 means "model default").
// It resolves through WithCores, so the same validation applies to wire
// requests and programmatic callers.
type CoreSpec struct {
	Model string `json:"model,omitempty"` // "default" (Table I), "wide", "half"; "" means default

	FetchWidth  int `json:"fetch_width,omitempty"`
	DecodeWidth int `json:"decode_width,omitempty"`
	IssueWidth  int `json:"issue_width,omitempty"`
	CommitWidth int `json:"commit_width,omitempty"`
	ROB         int `json:"rob,omitempty"`
	LSQ         int `json:"lsq,omitempty"`
}

// coreModels maps CoreSpec model names to their base configurations.
func coreModel(name string) (pipeline.Config, error) {
	switch strings.ToLower(name) {
	case "", "default":
		return pipeline.DefaultConfig(), nil
	case "wide":
		return pipeline.WideConfig(), nil
	case "half":
		return pipeline.HalfConfig(), nil
	}
	return pipeline.Config{}, fmt.Errorf("%w: unknown core model %q (want default, wide or half)", ErrInvalid, name)
}

// Config resolves the spec to a full pipeline configuration: the named
// model's sizing with non-zero overrides applied.
func (s CoreSpec) Config() (pipeline.Config, error) {
	cfg, err := coreModel(s.Model)
	if err != nil {
		return pipeline.Config{}, err
	}
	for _, o := range []struct {
		v   int
		dst *int
	}{
		{s.FetchWidth, &cfg.FetchWidth},
		{s.DecodeWidth, &cfg.DecodeWidth},
		{s.IssueWidth, &cfg.IssueWidth},
		{s.CommitWidth, &cfg.CommitWidth},
		{s.ROB, &cfg.ROB},
		{s.LSQ, &cfg.LSQ},
	} {
		if o.v < 0 {
			return pipeline.Config{}, fmt.Errorf("%w: negative core sizing %d", ErrInvalid, o.v)
		}
		if o.v > 0 {
			*o.dst = o.v
		}
	}
	return cfg, nil
}

// Key returns the spec's canonical short form ("wide", "default+rob=512",
// …), used as a sweep axis label.
func (s CoreSpec) Key() string {
	name := strings.ToLower(s.Model)
	if name == "" {
		name = "default"
	}
	var b strings.Builder
	b.WriteString(name)
	for _, o := range []struct {
		tag string
		v   int
	}{
		{"fetch", s.FetchWidth}, {"decode", s.DecodeWidth}, {"issue", s.IssueWidth},
		{"commit", s.CommitWidth}, {"rob", s.ROB}, {"lsq", s.LSQ},
	} {
		if o.v != 0 {
			fmt.Fprintf(&b, "+%s=%d", o.tag, o.v)
		}
	}
	return b.String()
}

// Config resolves the spec into a validated Config.
func (s ConfigSpec) Config() (Config, error) {
	name := s.Preset
	if name == "" {
		name = Baseline.Name()
	}
	p, ok := PresetByName(name)
	if !ok {
		return Config{}, fmt.Errorf("%w: unknown preset %q (want baseline, dla or r3)", ErrInvalid, s.Preset)
	}
	var opts []Option
	addB := func(v *bool, o func(bool) Option) {
		if v != nil {
			opts = append(opts, o(*v))
		}
	}
	addB(s.T1, WithT1)
	addB(s.ValueReuse, WithValueReuse)
	addB(s.FetchBuffer, WithFetchBuffer)
	addB(s.Recycle, WithRecycle)
	addB(s.BOP, WithBOP)
	addB(s.Stride, WithStride)
	addB(s.PrefetchOnly, WithPrefetchOnly)
	if s.BOQSize != nil {
		opts = append(opts, WithBOQ(*s.BOQSize))
	}
	if s.FQSize != nil {
		opts = append(opts, WithFQ(*s.FQSize))
	}
	if s.VQSize != nil {
		opts = append(opts, WithVQ(*s.VQSize))
	}
	if s.RebootCost != nil {
		opts = append(opts, WithRebootCost(*s.RebootCost))
	}
	if s.TrialInsts != nil {
		opts = append(opts, WithTrials(*s.TrialInsts))
	}
	if s.Version != nil {
		opts = append(opts, WithVersion(*s.Version))
	}
	if s.Cores != nil {
		cfg, err := s.Cores.Config()
		if err != nil {
			return Config{}, err
		}
		opts = append(opts, WithCores(cfg))
	}
	return NewConfig(p, opts...)
}
