package stats

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}
	if g := Geomean([]float64{2, 8}); !approx(g, 4) {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	// Non-positive entries are ignored, not NaN-poisoning.
	if g := Geomean([]float64{2, 8, 0, -3}); !approx(g, 4) {
		t.Errorf("Geomean with non-positives = %v, want 4", g)
	}
	if g := Geomean([]float64{0, -1}); g != 0 {
		t.Errorf("Geomean of all-non-positive = %v, want 0", g)
	}
}

func TestMeanMedianMinMax(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 6}); !approx(m, 3) {
		t.Errorf("Mean = %v, want 3", m)
	}
	if m := Median([]float64{5, 1, 3}); !approx(m, 3) {
		t.Errorf("odd Median = %v, want 3", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); !approx(m, 2.5) {
		t.Errorf("even Median = %v, want 2.5", m)
	}
	// Median must not reorder its input.
	xs := []float64{5, 1, 3}
	Median(xs)
	if !reflect.DeepEqual(xs, []float64{5, 1, 3}) {
		t.Errorf("Median mutated its input: %v", xs)
	}
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v,%v), want (-1,7)", lo, hi)
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = (%v,%v), want zeros", lo, hi)
	}
}

// TestSummarize pins the Summary shape the sweep engine's per-axis
// marginals are built from.
func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 8, 4})
	want := Summary{N: 3, Geomean: 4, Mean: 14.0 / 3, Min: 2, Max: 8}
	if s.N != want.N || !approx(s.Geomean, want.Geomean) || !approx(s.Mean, want.Mean) ||
		s.Min != want.Min || s.Max != want.Max {
		t.Errorf("Summarize = %+v, want %+v", s, want)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero value", z)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 2, 9, -3} { // 9 clamps to 4, -3 to 0
		h.Add(v)
	}
	if h.Total != 6 {
		t.Fatalf("Total = %d, want 6", h.Total)
	}
	if !approx(h.P(1), 2.0/6) || !approx(h.P(4), 1.0/6) || h.P(99) != 0 {
		t.Errorf("P wrong: P(1)=%v P(4)=%v P(99)=%v", h.P(1), h.P(4), h.P(99))
	}
	wantDist := []float64{2.0 / 6, 2.0 / 6, 1.0 / 6, 0, 1.0 / 6}
	for i, p := range h.Dist() {
		if !approx(p, wantDist[i]) {
			t.Errorf("Dist[%d] = %v, want %v", i, p, wantDist[i])
		}
	}
	if m := h.Mean(); !approx(m, (0*2+1*2+2*1+4*1)/6.0) {
		t.Errorf("Mean = %v", m)
	}
}

func sampleTable() *Table {
	tb := &Table{
		Title:  "IPC by preset",
		Header: []string{"workload", "bl", "r3"},
	}
	tb.AddRow("mcf", "0.41", "0.87")
	tb.AddRowF(2, "libq", 0.5, 1.25)
	return tb
}

func TestTableConstruction(t *testing.T) {
	tb := sampleTable()
	want := [][]string{
		{"mcf", "0.41", "0.87"},
		{"libq", "0.50", "1.25"},
	}
	if !reflect.DeepEqual(tb.Rows, want) {
		t.Errorf("Rows = %v, want %v", tb.Rows, want)
	}
	s := tb.String()
	for _, frag := range []string{"== IPC by preset ==", "workload", "0.87", "1.25", "---"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

// TestTableJSONRoundTrip: a Table marshals through its exported fields and
// unmarshals back to an equal value — the experiment reports depend on it.
func TestTableJSONRoundTrip(t *testing.T) {
	tb := sampleTable()
	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*tb, back) {
		t.Errorf("JSON round-trip: got %+v, want %+v", back, *tb)
	}
}

// TestTableCSVRoundTrip: WriteCSV emits a `# title` comment, the header,
// then rows, and the data parses back losslessly with encoding/csv.
func TestTableCSVRoundTrip(t *testing.T) {
	tb := sampleTable()
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 2)
	if lines[0] != "# IPC by preset" {
		t.Errorf("first line = %q, want title comment", lines[0])
	}
	recs, err := csv.NewReader(strings.NewReader(lines[1])).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := append([][]string{tb.Header}, tb.Rows...)
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("CSV round-trip: got %v, want %v", recs, want)
	}

	// An untitled table emits no comment line.
	var buf2 bytes.Buffer
	if err := (&Table{Header: []string{"a"}}).WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf2.String(), "#") {
		t.Errorf("untitled table emitted a comment: %q", buf2.String())
	}
}

func TestBar(t *testing.T) {
	if b := Bar(5, 10, 10); b != "#####....." {
		t.Errorf("Bar(5,10,10) = %q", b)
	}
	if b := Bar(20, 10, 10); b != "##########" {
		t.Errorf("overflow Bar = %q", b)
	}
	if b := Bar(-1, 10, 4); b != "...." {
		t.Errorf("negative Bar = %q", b)
	}
	if b := Bar(1, 0, 4); b != "####" {
		t.Errorf("zero-scale Bar = %q", b)
	}
}
