// Package stats provides the small statistical and reporting helpers shared
// by the experiment harness: geometric means, ranges, histograms, and the
// Table type the experiment drivers emit — renderable as fixed-width text
// (mirroring the paper's tables/figures), as RFC-4180 CSV, or serialized
// to JSON through its exported fields.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs. Non-positive entries are
// ignored (they would be NaN in log space); an empty input yields 0.
func Geomean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// MinMax returns the extrema of xs (0,0 for empty input).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Summary captures the distribution of one group of samples: sample
// count, geometric and arithmetic means, and extrema. The sweep engine's
// per-axis marginals are Summaries of cell IPCs grouped by axis value.
type Summary struct {
	N       int
	Geomean float64
	Mean    float64
	Min     float64
	Max     float64
}

// Summarize computes the Summary of xs (zero value for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	lo, hi := MinMax(xs)
	return Summary{
		N:       len(xs),
		Geomean: Geomean(xs),
		Mean:    Mean(xs),
		Min:     lo,
		Max:     hi,
	}
}

// Histogram is a fixed-bin counting histogram over small non-negative
// integers (queue lengths, widths per cycle, …).
type Histogram struct {
	Counts []uint64
	Total  uint64
}

// NewHistogram returns a histogram with bins [0, n].
func NewHistogram(n int) *Histogram {
	return &Histogram{Counts: make([]uint64, n+1)}
}

// Add counts one observation of value v (clamped into range).
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Counts) {
		v = len(h.Counts) - 1
	}
	h.Counts[v]++
	h.Total++
}

// P returns the empirical probability of bin v.
func (h *Histogram) P(v int) float64 {
	if h.Total == 0 || v < 0 || v >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.Total)
}

// Dist returns the whole distribution as probabilities.
func (h *Histogram) Dist() []float64 {
	d := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		if h.Total > 0 {
			d[i] = float64(c) / float64(h.Total)
		}
	}
	return d
}

// Mean returns the histogram's mean value.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	var s float64
	for v, c := range h.Counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.Total)
}

// Table is one table of an experiment report: a title, a header, and
// rows of pre-formatted cells. It renders as fixed-width text or CSV and
// marshals directly to JSON.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowF appends a row where float cells are formatted with %.*f.
func (t *Table) AddRowF(prec int, label string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.*f", prec, v))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// WriteCSV writes the table as RFC-4180 CSV: a `# title` comment line
// (when titled), the header row, then the data rows.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Bar renders a crude one-line ASCII bar for value v against full-scale hi.
func Bar(v, hi float64, width int) string {
	if hi <= 0 {
		hi = 1
	}
	n := int(v / hi * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
