package memsys

import (
	"testing"

	"r3dla/internal/emu"
)

func TestHierarchyWiring(t *testing.T) {
	sh := NewShared()
	p1 := NewPrivate(sh, Options{WithBOP: true})
	p2 := NewPrivate(sh, Options{DiscardDirty: true})

	// A miss in p1 walks L1D -> L2 -> L3 -> DRAM.
	r := p1.L1D.Access(0x10000, false, false, 0)
	if r.Level != 4 {
		t.Fatalf("cold miss served by level %d, want 4", r.Level)
	}
	if sh.DRAM.Stats.Reads != 1 {
		t.Fatalf("DRAM reads = %d", sh.DRAM.Stats.Reads)
	}

	// p2 misses to the now-warm L3.
	r2 := p2.L1D.Access(0x10000, false, false, r.Done+100)
	if r2.Level != 3 {
		t.Fatalf("second core's miss served by level %d, want 3 (shared L3)", r2.Level)
	}

	if !p2.L1D.DiscardDirty || !p2.L2.DiscardDirty {
		t.Fatal("containment mode not applied to private levels")
	}
	if p1.L1D.DiscardDirty {
		t.Fatal("containment leaked to the other core")
	}
	if p1.BOP == nil || p2.BOP != nil {
		t.Fatal("BOP wiring wrong")
	}
}

func TestLoadHookDrivesBOP(t *testing.T) {
	sh := NewShared()
	p := NewPrivate(sh, Options{WithBOP: true})
	hook := p.LoadHook()
	// Stream of L2-level accesses with stride 1 block: BOP should learn
	// and issue prefetches into L2.
	d := &emu.DynInst{}
	addr := uint64(1 << 20)
	now := uint64(0)
	for i := 0; i < 60000; i++ {
		d.EA = addr
		hook(d, 2, now+100, now)
		addr += 64
		now += 10
	}
	if p.L2.Stats.PrefIssued == 0 {
		t.Fatal("BOP never issued through the load hook")
	}
}

func TestStrideOptionWiring(t *testing.T) {
	sh := NewShared()
	p := NewPrivate(sh, Options{WithStride: true})
	hook := p.LoadHook()
	d := &emu.DynInst{PC: 52}
	addr := uint64(1 << 21)
	for i := 0; i < 32; i++ {
		d.EA = addr
		hook(d, 1, 10, uint64(i*10))
		addr += 128
	}
	if p.L1D.Stats.PrefIssued == 0 {
		t.Fatal("stride prefetcher never issued into L1")
	}
}
