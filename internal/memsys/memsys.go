// Package memsys wires the memory hierarchy of Table I: per-core private
// L1I/L1D/L2 over a shared L3 and DRAM, with optional prefetchers (BOP at
// L2, stride at L1) attached through the pipeline's load-access hook.
package memsys

import (
	"r3dla/internal/cache"
	"r3dla/internal/dram"
	"r3dla/internal/emu"
	"r3dla/internal/pipeline"
	"r3dla/internal/prefetch"
)

// Shared is the portion of the memory system shared by all cores.
type Shared struct {
	L3   *cache.Cache
	DRAM *dram.DRAM
}

// NewShared builds the shared L3 + DRAM (Table I: 2MB, 16-way, 12ns L3).
func NewShared() *Shared {
	d := dram.New(dram.DefaultConfig())
	l3 := cache.New(cache.Config{
		Name: "L3", SizeBytes: 2 << 20, Ways: 16, BlockBits: 6,
		Latency: 36, MSHRs: 64,
	}, d)
	return &Shared{L3: l3, DRAM: d}
}

// Private is one core's private cache stack.
type Private struct {
	L1I, L1D, L2 *cache.Cache
	Shared       *Shared

	BOP    *prefetch.BOP
	Stride *prefetch.Stride

	strideBuf []uint64
}

// Options selects the prefetchers and containment mode of a private stack.
type Options struct {
	WithBOP      bool // Best-Offset prefetcher at L2 (baseline default)
	WithStride   bool // tuned stride prefetcher at L1 (Sec. IV-C1 baseline)
	DiscardDirty bool // look-ahead containment: private dirty lines dropped
}

// NewPrivate builds a private L1I/L1D/L2 stack over shared (Table I:
// 32KB+32KB L1, 1ns; 256KB 8-way L2, 3ns).
func NewPrivate(shared *Shared, opt Options) *Private {
	l2 := cache.New(cache.Config{
		Name: "L2", SizeBytes: 256 << 10, Ways: 8, BlockBits: 6,
		Latency: 9, MSHRs: 32,
	}, shared.L3)
	l1i := cache.New(cache.Config{
		Name: "L1I", SizeBytes: 32 << 10, Ways: 4, BlockBits: 6,
		Latency: 3, MSHRs: 8,
	}, l2)
	l1d := cache.New(cache.Config{
		Name: "L1D", SizeBytes: 32 << 10, Ways: 4, BlockBits: 6,
		Latency: 3, MSHRs: 32,
	}, l2)
	p := &Private{L1I: l1i, L1D: l1d, L2: l2, Shared: shared}
	if opt.DiscardDirty {
		l1d.DiscardDirty = true
		l2.DiscardDirty = true
	}
	if opt.WithBOP {
		p.BOP = prefetch.NewBOP(256)
	}
	if opt.WithStride {
		p.Stride = prefetch.NewStride(32, 4)
	}
	return p
}

// LoadHook returns the pipeline OnLoadAccess hook that drives the attached
// prefetchers. Chain it with any additional hook the caller needs.
func (p *Private) LoadHook() func(d *emu.DynInst, level int, done, now uint64) {
	blockBits := p.L2.BlockBits()
	return func(d *emu.DynInst, level int, done, now uint64) {
		if p.Stride != nil {
			p.strideBuf = p.Stride.Observe(d.PC, d.EA, p.strideBuf[:0])
			for _, a := range p.strideBuf {
				p.L1D.Access(a, false, true, now)
			}
		}
		if p.BOP != nil && level >= 2 {
			// The access reached L2: BOP observes the L2 block stream.
			block := d.EA >> blockBits
			p.BOP.OnFill(block, false, done)
			if pref, ok := p.BOP.Observe(block, now); ok {
				res := p.L2.Access(pref<<blockBits, false, true, now)
				p.BOP.OnFill(pref, true, res.Done)
			}
		}
	}
}

// NewBaselineCore assembles a complete baseline core (Table I + BOP) over
// a fresh shared memory system, returning the core and its private stack.
// This is the configuration every experiment normalizes against.
func NewBaselineCore(cfg pipeline.Config, feed pipeline.Feeder, dir pipeline.DirectionSource, opt Options) (*pipeline.Core, *Private, *Shared) {
	sh := NewShared()
	priv := NewPrivate(sh, opt)
	core := pipeline.New(cfg, feed, dir, priv.L1I, priv.L1D)
	core.Hooks.OnLoadAccess = priv.LoadHook()
	return core, priv, sh
}
