package prepcache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
	"r3dla/internal/workloads"
)

// Shared preparation artifacts, built once: Collect runs a real training
// simulation, so every test reusing the same entry keeps the suite fast.
const (
	testBudget = 2000
	testKey    = "mcf@2000"
)

type fixture struct {
	train, eval *isa.Program
	evalSetup   func(*emu.Memory)
	prof        *core.Profile
	set         *core.Set
}

var (
	fixOnce sync.Once
	fix     fixture
)

func prepFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		w := workloads.ByName("mcf")
		trainProg, trainSetup := w.Build(1)
		evalProg, evalSetup := w.Build(2)
		prof := core.Collect(trainProg, trainSetup, testBudget)
		set := core.Generate(evalProg, prof)
		fix = fixture{train: trainProg, eval: evalProg, evalSetup: evalSetup, prof: prof, set: set}
	})
	return &fix
}

func storeFixture(t *testing.T) (*Cache, *fixture) {
	t.Helper()
	f := prepFixture(t)
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(testKey, f.train, f.eval, f.prof, f.set); err != nil {
		t.Fatal(err)
	}
	return c, f
}

// runResults runs a short DLA simulation with the given artifacts; the
// round-trip test compares full Results structs, which is the equality
// that actually matters (gob byte-compare would be flaky for maps).
func runResults(f *fixture, prof *core.Profile, set *core.Set) *core.Results {
	sys := core.NewSystem(f.eval, f.evalSetup, set, prof, core.Options{TrialInsts: 1500})
	return sys.Run(testBudget)
}

func TestRoundTrip(t *testing.T) {
	c, f := storeFixture(t)
	prof, set, ok := c.Load(testKey, f.train, f.eval)
	if !ok {
		t.Fatal("Load missed immediately after Store")
	}
	if set.Prog != f.eval {
		t.Error("loaded Set.Prog not reattached to the eval program")
	}
	want := runResults(f, f.prof, f.set)
	got := runResults(f, prof, set)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("simulation with cached artifacts diverges from original:\nwant MT=%+v\ngot  MT=%+v", want.MT, got.MT)
	}
}

func TestMissOnAbsentEntry(t *testing.T) {
	f := prepFixture(t)
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Load(testKey, f.train, f.eval); ok {
		t.Fatal("Load hit on an empty cache")
	}
}

// entryFile returns the single .prep file the fixture Store produced.
func entryFile(t *testing.T, c *Cache) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(c.Dir(), "*.prep"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one .prep entry, got %v (err %v)", matches, err)
	}
	return matches[0]
}

// corrupt rewrites the stored entry through fn and asserts Load misses
// (never errors, never panics) afterwards.
func corrupt(t *testing.T, name string, fn func([]byte) []byte) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		c, f := storeFixture(t)
		path := entryFile(t, c)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := c.Load(testKey, f.train, f.eval); ok {
			t.Fatalf("Load hit on a %s entry", name)
		}
	})
}

func TestCorruptEntriesLoadAsMiss(t *testing.T) {
	corrupt(t, "torn-write-truncated", func(b []byte) []byte { return b[:len(b)*3/5] })
	corrupt(t, "truncated-inside-header", func(b []byte) []byte { return b[:10] })
	corrupt(t, "empty-file", func(b []byte) []byte { return nil })
	corrupt(t, "wrong-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	corrupt(t, "wrong-version", func(b []byte) []byte { b[4] ^= 0xFF; return b })
	corrupt(t, "flipped-body-byte", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	// Header layout: magic(4) version(4) fingerprint(8) keyLen(4) key
	// bodyLen(8) checksum(8) body — the checksum sits at 28+len(key).
	corrupt(t, "flipped-checksum", func(b []byte) []byte { b[28+len(testKey)] ^= 0x01; return b })
	corrupt(t, "garbage-body", func(b []byte) []byte {
		// Valid header framing but a body gob cannot decode: zero the
		// payload and fix up the checksum so only decoding fails.
		headerLen := 20 + len(testKey) + 16
		body := b[headerLen:]
		for i := range body {
			body[i] = 0
		}
		sum := fnvSum(body)
		for i := 0; i < 8; i++ {
			b[headerLen-8+i] = byte(sum >> (8 * i))
		}
		return b
	})
}

// fnvSum mirrors the checksum the cache uses (FNV-64a), for tests that
// re-frame a corrupted body.
func fnvSum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// A renamed or copied entry (the "budget mismatch" failure: same workload
// cached at a different training budget) must miss on the embedded key.
func TestKeyMismatchIsMiss(t *testing.T) {
	c, f := storeFixture(t)
	const otherKey = "mcf@9999"
	raw, err := os.ReadFile(entryFile(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(otherKey, ".prep"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Load(otherKey, f.train, f.eval); ok {
		t.Fatal("Load hit under a different key than the entry was stored with")
	}
	// The original key still hits.
	if _, _, ok := c.Load(testKey, f.train, f.eval); !ok {
		t.Fatal("original key stopped hitting")
	}
}

// An entry stored for one workload build must miss when loaded against
// different programs (the fingerprint guard).
func TestFingerprintMismatchIsMiss(t *testing.T) {
	c, f := storeFixture(t)
	w := workloads.ByName("libq")
	otherTrain, _ := w.Build(1)
	otherEval, _ := w.Build(2)
	if _, _, ok := c.Load(testKey, otherTrain, otherEval); ok {
		t.Fatal("Load hit against programs with a different fingerprint")
	}
	if _, _, ok := c.Load(testKey, f.train, otherEval); ok {
		t.Fatal("Load hit with a different eval program")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	f := prepFixture(t)
	other, _ := workloads.ByName("libq").Build(1)
	base := Fingerprint(f.train, other)
	if Fingerprint(f.train, other) != base {
		t.Fatal("Fingerprint not deterministic")
	}
	if Fingerprint(other, f.train) == base {
		t.Error("Fingerprint ignores program order")
	}
	mutated := *f.train
	mutated.Insts = append([]isa.Inst(nil), f.train.Insts...)
	mutated.Insts[0].Imm++
	if Fingerprint(&mutated, other) == base {
		t.Error("Fingerprint ignores instruction changes")
	}
}

// Store must be atomic: the cache directory never accumulates temp files,
// and overwriting an entry keeps it loadable.
func TestStoreAtomicAndOverwritable(t *testing.T) {
	c, f := storeFixture(t)
	if err := c.Store(testKey, f.train, f.eval, f.prof, f.set); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("cache dir should hold exactly the entry, got %v", names)
	}
	if _, _, ok := c.Load(testKey, f.train, f.eval); !ok {
		t.Fatal("entry unreadable after overwrite")
	}
}

func TestPathSanitizesKeys(t *testing.T) {
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := c.path("../../evil/../key@1", ".prep")
	if filepath.Dir(p) != c.Dir() {
		t.Fatalf("sanitized path %q escapes the cache directory", p)
	}
}

// TestConcurrentWritersRoundTrip pins the multi-writer contract: many
// goroutines storing the same entry into one shared directory (the shape
// of several r3dlad instances racing a cold cache) leave exactly one
// loadable entry, no stranded temp files, and the loaded artifacts drive
// a simulation identical to the original.
func TestConcurrentWritersRoundTrip(t *testing.T) {
	f := prepFixture(t)
	dir := t.TempDir()
	const writers = 8
	caches := make([]*Cache, writers)
	for i := range caches {
		c, err := New(dir)
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = c
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if err := caches[i].Store(testKey, f.train, f.eval, f.prof, f.set); err != nil {
					errs[i] = err
					return
				}
				if _, _, ok := caches[i].Load(testKey, f.train, f.eval); !ok {
					// A concurrent rename may be mid-flight, but a completed
					// Store must always read back: loads only see whole files.
					errs[i] = fmt.Errorf("writer %d: load missed after store", i)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("shared dir should hold exactly one entry after the race, got %v", names)
	}
	prof, set, ok := caches[0].Load(testKey, f.train, f.eval)
	if !ok {
		t.Fatal("entry unreadable after concurrent writes")
	}
	want := runResults(f, f.prof, f.set)
	got := runResults(f, prof, set)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("artifacts surviving the write race diverge:\nwant MT=%+v\ngot  MT=%+v", want.MT, got.MT)
	}
}

func TestBlobRoundTrip(t *testing.T) {
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("calibration payload \x00\x01\x02")
	const key, fp = "tiercal-mcf@2000", 0xdeadbeefcafef00d
	if _, ok := c.LoadBlob(key, fp); ok {
		t.Fatal("blob hit before any store")
	}
	if err := c.StoreBlob(key, fp, body); err != nil {
		t.Fatal(err)
	}
	got, ok := c.LoadBlob(key, fp)
	if !ok {
		t.Fatal("blob miss after store")
	}
	if !reflect.DeepEqual(got, body) {
		t.Fatalf("blob body mangled: got %q want %q", got, body)
	}
	// A fingerprint change (a rebuilt workload) must read as a miss.
	if _, ok := c.LoadBlob(key, fp+1); ok {
		t.Fatal("blob hit under the wrong fingerprint")
	}
	// Blobs and prep entries live in separate namespaces even when the
	// keys coincide: neither reads the other's file.
	if _, _, ok := c.Load(key, nil, nil); ok {
		t.Fatal("prep Load read a blob entry")
	}
}

func TestBlobCorruptionIsMiss(t *testing.T) {
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key, fp = "tiercal-bzip2@1000", uint64(42)
	if err := c.StoreBlob(key, fp, []byte("twelve bytes")); err != nil {
		t.Fatal(err)
	}
	path := c.path(key, ".blob")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the body: the checksum must catch it.
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadBlob(key, fp); ok {
		t.Fatal("corrupted blob read as a hit")
	}
	// Truncation too.
	if err := os.WriteFile(path, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadBlob(key, fp); ok {
		t.Fatal("truncated blob read as a hit")
	}
}
