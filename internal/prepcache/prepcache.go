// Package prepcache persists workload preparation artifacts (the training
// Profile and the generated skeleton Set) on disk, so a restarted process
// — most importantly a rebooted r3dlad — serves its first request from a
// cheap file read instead of re-running the training simulation and the
// skeleton generator.
//
// Entries are keyed by "workload@trainBudget" and guarded by a fingerprint
// over the training and evaluation programs: any change to the workload
// builder invalidates the entry. Writes are atomic (temp file + rename)
// and loads are corruption-tolerant — a torn write, a version bump, a key
// or fingerprint mismatch, or a checksum failure all read as a cache miss,
// never an error, so the caller silently regenerates.
package prepcache

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"time"

	"r3dla/internal/atomicio"
	"r3dla/internal/core"
	"r3dla/internal/faultinject"
	"r3dla/internal/isa"
)

// Version is the on-disk format version; bumping it orphans (and thereby
// regenerates) every existing entry.
const Version = 1

// magic identifies a prep-cache file; blobMagic identifies a generic
// blob entry (StoreBlob/LoadBlob), so the two kinds can never be
// confused for one another even if their keys collide after
// sanitization.
var (
	magic     = [4]byte{'R', '3', 'P', 'C'}
	blobMagic = [4]byte{'R', '3', 'P', 'B'}
)

// Cache is a directory of serialized preparation entries. The zero value
// is not usable; call New. A Cache is safe for concurrent use by multiple
// goroutines and processes: writes are atomic renames and readers only
// ever observe complete files.
type Cache struct {
	dir    string
	faults *faultinject.Plane // nil in production; Load/Store fault gates
}

// New opens (creating if needed) a prep cache rooted at dir.
func New(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("prepcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("prepcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir reports the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// SetFaults attaches a fault-injection plane (nil detaches). Chaos-only:
// call before the cache sees traffic. Nil-receiver-safe so callers can
// forward without a cache configured.
func (c *Cache) SetFaults(p *faultinject.Plane) {
	if c != nil {
		c.faults = p
	}
}

// payload is the gob-serialized body of an entry. Set.Prog is stripped
// before encoding (the program is rebuilt by the caller and reattached on
// load) — programs are large and the fingerprint already covers them.
type payload struct {
	Prof *core.Profile
	Set  *core.Set
}

// Fingerprint hashes the instruction streams of the given programs; it is
// the guard that ties a cache entry to the exact workload builds that
// produced it.
func Fingerprint(progs ...*isa.Program) uint64 {
	h := fnv.New64a()
	var buf [28]byte
	for _, p := range progs {
		binary.LittleEndian.PutUint64(buf[:8], uint64(p.Entry))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(len(p.Insts)))
		h.Write(buf[:16])
		for i := range p.Insts {
			in := &p.Insts[i]
			buf[0] = byte(in.Op)
			buf[1] = in.Rd
			buf[2] = in.Rs1
			buf[3] = in.Rs2
			binary.LittleEndian.PutUint64(buf[4:12], uint64(in.Imm))
			binary.LittleEndian.PutUint32(buf[12:16], uint32(in.Targ))
			h.Write(buf[:16])
		}
	}
	return h.Sum64()
}

// path maps a key to its file, sanitized so keys never escape the cache
// directory. Collisions after sanitization are harmless: the exact key is
// embedded in the header and verified on load.
func (c *Cache) path(key, suffix string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '@', r == '.':
			return r
		}
		return '_'
	}, key)
	return filepath.Join(c.dir, clean+suffix)
}

// encodeFrame wraps body in the on-disk framing shared by prep entries
// and blobs: magic | version | fingerprint | keyLen | key | bodyLen |
// FNV-1a(body) | body.
func encodeFrame(kind [4]byte, key string, fingerprint uint64, body []byte) []byte {
	var f bytes.Buffer
	f.Write(kind[:])
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], Version)
	f.Write(u32[:])
	binary.LittleEndian.PutUint64(u64[:], fingerprint)
	f.Write(u64[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(key)))
	f.Write(u32[:])
	f.WriteString(key)
	binary.LittleEndian.PutUint64(u64[:], uint64(len(body)))
	f.Write(u64[:])
	sum := fnv.New64a()
	sum.Write(body)
	binary.LittleEndian.PutUint64(u64[:], sum.Sum64())
	f.Write(u64[:])
	f.Write(body)
	return f.Bytes()
}

// decodeFrame validates raw against (kind, key, fingerprint) and returns
// the framed body. Any anomaly — wrong magic or version, key or
// fingerprint mismatch, truncation, checksum failure — is ok=false.
func decodeFrame(kind [4]byte, key string, fingerprint uint64, raw []byte) (body []byte, ok bool) {
	const fixed = 4 + 4 + 8 + 4 // magic, version, fingerprint, keyLen
	if len(raw) < fixed {
		return nil, false
	}
	if !bytes.Equal(raw[:4], kind[:]) {
		return nil, false
	}
	if binary.LittleEndian.Uint32(raw[4:8]) != Version {
		return nil, false
	}
	if binary.LittleEndian.Uint64(raw[8:16]) != fingerprint {
		return nil, false
	}
	keyLen := int(binary.LittleEndian.Uint32(raw[16:20]))
	rest := raw[20:]
	if keyLen < 0 || len(rest) < keyLen+16 {
		return nil, false
	}
	if string(rest[:keyLen]) != key {
		return nil, false
	}
	rest = rest[keyLen:]
	bodyLen := binary.LittleEndian.Uint64(rest[:8])
	wantSum := binary.LittleEndian.Uint64(rest[8:16])
	body = rest[16:]
	if uint64(len(body)) != bodyLen {
		return nil, false
	}
	sum := fnv.New64a()
	sum.Write(body)
	if sum.Sum64() != wantSum {
		return nil, false
	}
	return body, true
}

// Store serializes (prof, set) under key, guarded by the fingerprint of
// (train, eval). The write is atomic: concurrent readers see either the
// old entry or the new one, never a torn file.
func (c *Cache) Store(key string, train, eval *isa.Program, prof *core.Profile, set *core.Set) error {
	stripped := *set
	stripped.Prog = nil
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload{Prof: prof, Set: &stripped}); err != nil {
		return fmt.Errorf("prepcache: encode %s: %w", key, err)
	}

	frame := encodeFrame(magic, key, Fingerprint(train, eval), body.Bytes())
	// atomicio carries the full durability ceremony: pid-unique temp file,
	// fsync before rename, parent-directory fsync after.
	if err := atomicio.WriteFile(c.path(key, ".prep"), frame, 0o644, c.faults, faultinject.PrepCacheStore); err != nil {
		return fmt.Errorf("prepcache: write %s: %w", key, err)
	}
	return nil
}

// Load reads the entry for key, validating it against the fingerprint of
// (train, eval). Any problem — missing file, wrong magic or version, key
// or fingerprint mismatch, truncation, checksum failure, undecodable body
// — is a miss (ok=false), signaling the caller to regenerate. On a hit the
// returned Set has eval reattached as its Prog.
func (c *Cache) Load(key string, train, eval *isa.Program) (prof *core.Profile, set *core.Set, ok bool) {
	if c.faults != nil {
		o := c.faults.At(faultinject.PrepCacheLoad)
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Err != nil {
			return nil, nil, false // injected read fault = silent miss
		}
	}
	raw, err := os.ReadFile(c.path(key, ".prep"))
	if err != nil {
		return nil, nil, false
	}
	body, ok := decodeFrame(magic, key, Fingerprint(train, eval), raw)
	if !ok {
		return nil, nil, false
	}
	var p payload
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&p); err != nil {
		return nil, nil, false
	}
	if p.Prof == nil || p.Set == nil {
		return nil, nil, false
	}
	p.Set.Prog = eval
	return p.Prof, p.Set, true
}

// StoreBlob persists an opaque body under key, guarded by an arbitrary
// caller-supplied fingerprint. Blobs share the prep entries' framing,
// atomicity, and corruption tolerance but use their own magic and file
// suffix, so the two namespaces never collide. The tier package uses
// blobs to persist per-workload calibration profiles.
func (c *Cache) StoreBlob(key string, fingerprint uint64, body []byte) error {
	frame := encodeFrame(blobMagic, key, fingerprint, body)
	if err := atomicio.WriteFile(c.path(key, ".blob"), frame, 0o644, c.faults, faultinject.PrepCacheStore); err != nil {
		return fmt.Errorf("prepcache: write blob %s: %w", key, err)
	}
	return nil
}

// LoadBlob reads the blob stored under key, validating it against
// fingerprint. Like Load, every anomaly is a miss (ok=false), never an
// error.
func (c *Cache) LoadBlob(key string, fingerprint uint64) (body []byte, ok bool) {
	if c.faults != nil {
		o := c.faults.At(faultinject.PrepCacheLoad)
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Err != nil {
			return nil, false // injected read fault = silent miss
		}
	}
	raw, err := os.ReadFile(c.path(key, ".blob"))
	if err != nil {
		return nil, false
	}
	return decodeFrame(blobMagic, key, fingerprint, raw)
}
