package prepcache

import (
	"errors"
	"testing"

	"r3dla/internal/faultinject"
)

// A torn Store — crash before the durable write completes — must leave
// the cache answering with a silent miss, so the caller regenerates.
func TestTornStoreLoadsAsMiss(t *testing.T) {
	f := prepFixture(t)
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := faultinject.New(41)
	p.MustArm(faultinject.Policy{Point: faultinject.PrepCacheStore, Mode: faultinject.Torn, Limit: 1})
	c.SetFaults(p)

	if err := c.Store(testKey, f.train, f.eval, f.prof, f.set); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn Store returned %v, want ErrInjected", err)
	}
	if _, _, ok := c.Load(testKey, f.train, f.eval); ok {
		t.Fatal("torn entry served a hit")
	}
	// Limit spent: the retry repairs the entry.
	if err := c.Store(testKey, f.train, f.eval, f.prof, f.set); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Load(testKey, f.train, f.eval); !ok {
		t.Fatal("repaired entry still misses")
	}
}

// Silent corruption on Store (reported as success) must be caught by the
// checksum on Load.
func TestCorruptStoreCaughtOnLoad(t *testing.T) {
	f := prepFixture(t)
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := faultinject.New(42)
	p.MustArm(faultinject.Policy{Point: faultinject.PrepCacheStore, Mode: faultinject.Corrupt, Limit: 1})
	c.SetFaults(p)

	if err := c.Store(testKey, f.train, f.eval, f.prof, f.set); err != nil {
		t.Fatalf("corrupt Store should report success, got %v", err)
	}
	if _, _, ok := c.Load(testKey, f.train, f.eval); ok {
		t.Fatal("corrupted entry served a hit")
	}
}

// An injected Load fault is a miss, never an error, and leaves the
// underlying entry intact.
func TestInjectedLoadFaultIsMiss(t *testing.T) {
	c, f := storeFixture(t)
	p := faultinject.New(43)
	p.MustArm(faultinject.Policy{Point: faultinject.PrepCacheLoad, Mode: faultinject.Error, Limit: 1})
	c.SetFaults(p)

	if _, _, ok := c.Load(testKey, f.train, f.eval); ok {
		t.Fatal("injected read fault served a hit")
	}
	if _, _, ok := c.Load(testKey, f.train, f.eval); !ok {
		t.Fatal("entry damaged by an injected read fault")
	}
}

// SetFaults on a nil cache is a no-op, so callers forward planes without
// caring whether a prep cache is configured.
func TestSetFaultsNilReceiver(t *testing.T) {
	var c *Cache
	c.SetFaults(faultinject.New(1)) // must not panic
}
