package core

import (
	"testing"

	"r3dla/internal/isa"
)

func TestSkeletonIncludesAllControl(t *testing.T) {
	prog, _, _, set := mixProfile()
	for _, sk := range append([]*Skeleton{set.Baseline}, set.Versions...) {
		for pc := range prog.Insts {
			if prog.Insts[pc].Op.IsControl() && !sk.Include[pc] {
				t.Fatalf("%s: control inst @%d (%v) not in skeleton", sk.Name, pc, prog.Insts[pc].Op)
			}
		}
	}
}

func TestSkeletonBackwardClosure(t *testing.T) {
	// Every included, non-forced instruction must have, for each source
	// register, at least one included producer among its backward
	// reaching definitions (or no producer exists at all in the program).
	prog, _, _, set := mixProfile()
	sk := set.Baseline
	preds := predecessors(prog)

	reachingDefs := func(pc int, reg uint8) []int {
		var defs []int
		seen := make(map[int]bool)
		stack := make([]int, 0, 16)
		for _, q := range preds[pc] {
			stack = append(stack, int(q))
		}
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[q] {
				continue
			}
			seen[q] = true
			if prog.Insts[q].Dest() == reg {
				defs = append(defs, q)
				continue
			}
			for _, p := range preds[q] {
				stack = append(stack, int(p))
			}
		}
		return defs
	}

	var buf [2]uint8
	for pc := range prog.Insts {
		if !sk.Include[pc] {
			continue
		}
		if _, forced := sk.Forced(pc); forced {
			continue
		}
		for _, r := range prog.Insts[pc].Sources(buf[:0]) {
			if r == isa.RegZero {
				continue
			}
			defs := reachingDefs(pc, r)
			if len(defs) == 0 {
				continue // register set before entry (initial state)
			}
			anyIncluded := false
			for _, d := range defs {
				if sk.Include[d] {
					anyIncluded = true
					break
				}
			}
			if !anyIncluded {
				t.Fatalf("inst @%d (%v) source r%d has %d producers, none in skeleton",
					pc, prog.Insts[pc], r, len(defs))
			}
		}
	}
}

func TestSkeletonSmallerThanProgram(t *testing.T) {
	_, _, _, set := mixProfile()
	if f := set.Baseline.Fraction(); f >= 1.0 || f <= 0.05 {
		t.Fatalf("baseline skeleton fraction %.2f implausible", f)
	}
}

func TestReducedSkeletonSmallerThanBaseline(t *testing.T) {
	_, _, _, set := mixProfile()
	reduced := set.Versions[0]
	if reduced.Size > set.Baseline.Size {
		t.Fatalf("reduced skeleton (%d) larger than baseline (%d)", reduced.Size, set.Baseline.Size)
	}
}

func TestT1MarksAreStridedLoads(t *testing.T) {
	prog, _, prof, set := mixProfile()
	marks := 0
	for pc, s := range set.SBits {
		if !s {
			continue
		}
		marks++
		if !prog.Insts[pc].Op.IsLoad() {
			t.Fatalf("S bit on non-load @%d", pc)
		}
		if !prof.PCs[pc].Strided() {
			t.Fatalf("S bit on non-strided load @%d", pc)
		}
		if set.SLoop[pc] < 0 {
			t.Fatalf("S-marked load @%d has no loop", pc)
		}
	}
	if marks == 0 {
		t.Fatal("no T1 marks found; mix program has a strided loop")
	}
}

func TestBiasedVersionForcesBranches(t *testing.T) {
	prog, _, prof, set := mixProfile()
	biased := set.Versions[3] // "reduced+bias"
	forced := 0
	for pc, f := range biased.Force {
		if f < 0 {
			continue
		}
		forced++
		if !prog.Insts[pc].Op.IsCondBranch() {
			t.Fatalf("forced non-branch @%d", pc)
		}
		_, p := prof.PCs[pc].Bias()
		if p < biasThreshold {
			t.Fatalf("forced branch @%d has bias %.4f < %v", pc, p, biasThreshold)
		}
	}
	// The mix loop branches are heavily taken (n=512 iterations): at
	// least one should qualify.
	if forced == 0 {
		t.Fatal("no branches forced in biased version")
	}
}

func TestEmptySkeleton(t *testing.T) {
	prog, _, _, _ := mixProfile()
	e := EmptySkeleton(prog)
	if e.Size != 0 {
		t.Fatal("empty skeleton not empty")
	}
	for _, inc := range e.Include {
		if inc {
			t.Fatal("empty skeleton includes an instruction")
		}
	}
}

func TestSkeletonVersionsDiffer(t *testing.T) {
	_, _, _, set := mixProfile()
	if len(set.Versions) != 6 {
		t.Fatalf("want 6 versions, got %d", len(set.Versions))
	}
	// At least some pair of versions must differ in content.
	distinct := false
	for i := 1; i < len(set.Versions); i++ {
		if set.Versions[i].Size != set.Versions[0].Size {
			distinct = true
		}
	}
	forcedSomewhere := false
	for _, v := range set.Versions {
		for _, f := range v.Force {
			if f >= 0 {
				forcedSomewhere = true
			}
		}
	}
	if !distinct && !forcedSomewhere {
		t.Fatal("all six versions identical")
	}
}

func TestDescribe(t *testing.T) {
	_, _, _, set := mixProfile()
	if s := set.Baseline.Describe(); s == "" {
		t.Fatal("empty description")
	}
}
