// Package core implements the paper's contribution: the Decoupled
// Look-Ahead architecture (baseline DLA) and the four R3 optimizations —
// T1 strided-prefetch offloading (reduce), value reuse and fetch-buffer
// control-flow reuse (reuse), and skeleton recycling (recycle).
//
// The package is organized as:
//
//	profile.go    – training-run profiling (Appendix A inputs)
//	skeleton.go   – skeleton generation: seeds + backward dependence closure
//	queues.go     – BOQ and FQ
//	t1.go         – the T1 prefetch FSM
//	valuereuse.go – SIF (slow-instruction filter) and the value queue
//	recycle.go    – loop detection, trial controller, LCT
//	feeder.go     – the look-ahead skeleton walker
//	system.go     – the two-core DLA system driver
//
// Concurrency: a System (and everything it owns — cores, caches, queues)
// is single-goroutine, but the artifacts of preparation (Profile, Set,
// Skeleton, and the isa.Program they annotate) are immutable once built,
// so one prepared workload may back any number of Systems running in
// parallel goroutines. The experiment harness relies on this to share
// preparation across concurrent runs.
package core

import (
	"r3dla/internal/branch"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
	"r3dla/internal/memsys"
	"r3dla/internal/pipeline"
)

// PCStat aggregates per-static-instruction training statistics.
type PCStat struct {
	Exec       uint64
	L1Miss     uint64 // load accesses supplied by L2 or below
	L2Miss     uint64 // load accesses supplied by L3 or below
	Taken      uint64
	NotTaken   uint64
	DispExec   uint64 // sum of dispatch-to-execute latencies
	DispExecN  uint64
	StrideHits uint64 // consecutive same-stride pairs
	StrideObs  uint64 // observed consecutive pairs
}

// Bias returns the dominant-direction probability of a branch PC.
func (s *PCStat) Bias() (taken bool, p float64) {
	t, n := float64(s.Taken), float64(s.NotTaken)
	if t+n == 0 {
		return false, 0
	}
	if t >= n {
		return true, t / (t + n)
	}
	return false, n / (t + n)
}

// MissRateL1 returns the L1 demand miss ratio of a load PC.
func (s *PCStat) MissRateL1() float64 {
	if s.Exec == 0 {
		return 0
	}
	return float64(s.L1Miss) / float64(s.Exec)
}

// MissRateL2 returns the L2 miss ratio of a load PC.
func (s *PCStat) MissRateL2() float64 {
	if s.Exec == 0 {
		return 0
	}
	return float64(s.L2Miss) / float64(s.Exec)
}

// AvgDispExec returns the mean dispatch-to-execute latency of the PC.
func (s *PCStat) AvgDispExec() float64 {
	if s.DispExecN == 0 {
		return 0
	}
	return float64(s.DispExec) / float64(s.DispExecN)
}

// Strided reports whether the PC's address stream is dominantly strided.
func (s *PCStat) Strided() bool {
	return s.StrideObs >= 8 && float64(s.StrideHits) >= 0.9*float64(s.StrideObs)
}

// Profile holds the result of a training run (the paper uses training
// inputs; callers pass a differently-seeded instance of the workload).
type Profile struct {
	PCs []PCStat

	// MemDeps maps a load PC to the store PCs observed feeding it
	// (bounded; used for skeleton memory dependences).
	MemDeps map[int][]int

	// LoopBranch[pc] = innermost enclosing backward-branch PC, or -1.
	LoopBranch []int

	// PerLoopSpeed, filled by TrainRecycle, maps loop-branch PC ->
	// skeleton version -> measured IPC (static recycle tuning).
	PerLoopSpeed map[int][]float64

	Insts uint64
}

type strideTrack struct {
	last   uint64
	stride int64
	have   bool
	have2  bool
}

// Collect runs prog for budget instructions on a baseline core (Table I +
// BOP) gathering the per-PC statistics the skeleton generator needs.
// setup, if non-nil, initializes data memory before the run.
func Collect(prog *isa.Program, setup func(*emu.Memory), budget uint64) *Profile {
	p := &Profile{
		PCs:        make([]PCStat, len(prog.Insts)),
		MemDeps:    make(map[int][]int),
		LoopBranch: innermostLoops(prog),
	}

	mem := emu.NewMemory()
	if setup != nil {
		setup(mem)
	}
	mach := emu.NewMachine(prog, mem)
	feed := &pipeline.MachineFeeder{M: mach, Budget: budget}
	dir := &pipeline.TageSource{P: branch.NewPredictor(branch.DefaultConfig())}
	coreC, priv, _ := memsys.NewBaselineCore(pipeline.DefaultConfig(), feed, dir, memsys.Options{WithBOP: true})

	lastStore := make(map[uint64]int) // word -> store PC
	strides := make([]strideTrack, len(prog.Insts))

	loadHook := priv.LoadHook()
	coreC.Hooks.OnLoadAccess = func(d *emu.DynInst, level int, done, now uint64) {
		loadHook(d, level, done, now)
		st := &p.PCs[d.PC]
		if level >= 2 {
			st.L1Miss++
		}
		if level >= 3 {
			st.L2Miss++
		}
	}
	coreC.Hooks.OnIssue = func(d *emu.DynInst, dispatchCycle, execDone uint64) {
		st := &p.PCs[d.PC]
		st.DispExec += execDone - dispatchCycle
		st.DispExecN++
	}
	coreC.Hooks.OnCommit = func(d *emu.DynInst, now uint64) {
		st := &p.PCs[d.PC]
		st.Exec++
		op := d.In.Op
		switch {
		case op.IsCondBranch():
			if d.Taken {
				st.Taken++
			} else {
				st.NotTaken++
			}
		case op.IsLoad():
			if spc, ok := lastStore[d.EA>>3]; ok {
				addMemDep(p.MemDeps, d.PC, spc)
			}
			tr := &strides[d.PC]
			if tr.have {
				s := int64(d.EA) - int64(tr.last)
				if tr.have2 {
					st.StrideObs++
					if s == tr.stride {
						st.StrideHits++
					}
				}
				tr.stride = s
				tr.have2 = true
			}
			tr.last = d.EA
			tr.have = true
		case op.IsStore():
			lastStore[d.EA>>3] = d.PC
		}
	}

	m := coreC.Run(budget)
	p.Insts = m.Committed
	return p
}

// addMemDep records a store PC feeding a load PC (bounded set of 4).
func addMemDep(deps map[int][]int, loadPC, storePC int) {
	l := deps[loadPC]
	for _, s := range l {
		if s == storePC {
			return
		}
	}
	if len(l) < 4 {
		deps[loadPC] = append(l, storePC)
	}
}

// innermostLoops computes, for every instruction, the PC of the innermost
// enclosing static loop (a backward conditional branch b with
// target <= pc <= b), or -1.
func innermostLoops(prog *isa.Program) []int {
	out := make([]int, len(prog.Insts))
	for i := range out {
		out[i] = -1
	}
	type loop struct{ lo, hi int }
	var loops []loop
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if in.Op.IsCondBranch() && int(in.Targ) <= i {
			loops = append(loops, loop{int(in.Targ), i})
		}
	}
	// Innermost = smallest containing span.
	for pc := range out {
		best := -1
		bestSpan := 1 << 30
		for _, l := range loops {
			if l.lo <= pc && pc <= l.hi && l.hi-l.lo < bestSpan {
				best = l.hi
				bestSpan = l.hi - l.lo
			}
		}
		out[pc] = best
	}
	return out
}

// LoopBranches returns the set of loop-branch PCs of the program.
func LoopBranches(prog *isa.Program) map[int]bool {
	set := make(map[int]bool)
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if in.Op.IsCondBranch() && int(in.Targ) <= i {
			set[i] = true
		}
	}
	return set
}

// LoopSet returns the PCs the recycle controller treats as loop branches:
// static backward branches plus hot call sites outside any static loop
// (standing in for recursive functions, Sec. III-E2).
func LoopSet(prog *isa.Program, prof *Profile) map[int]bool {
	set := LoopBranches(prog)
	for pc := range prog.Insts {
		in := &prog.Insts[pc]
		if (in.Op == isa.CALL || in.Op == isa.CALR) &&
			prof.PCs[pc].Exec >= 64 && prof.LoopBranch[pc] < 0 {
			set[pc] = true
		}
	}
	return set
}
