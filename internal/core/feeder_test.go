package core

import (
	"testing"

	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

func TestSkeletonFeederSkipsMasked(t *testing.T) {
	b := isa.NewBuilder("f")
	b.Li(1, 5)                  // 0: included (feeds branch)
	b.Label("loop")             //
	b.I(isa.ADDI, 2, 2, 7)      // 1: masked off
	b.I(isa.ADDI, 3, 3, 9)      // 2: masked off
	b.I(isa.ADDI, 1, 1, -1)     // 3: included
	b.Br(isa.BNE, 1, 0, "loop") // 4: included (control)
	b.Halt()                    // 5: included
	prog := b.Program()

	sk := &Skeleton{Name: "t", Include: []bool{true, false, false, true, true, true},
		Force: []int8{-1, -1, -1, -1, -1, -1}}
	m := emu.NewMachine(prog, emu.NewMemory())
	f := NewSkeletonFeeder(m, sk)

	var pcs []int
	for {
		d, ok := f.Peek()
		if !ok {
			break
		}
		pcs = append(pcs, d.PC)
		f.Advance()
		if d.In.Op == isa.HALT {
			break
		}
	}
	for _, pc := range pcs {
		if !sk.Include[pc] {
			t.Fatalf("feeder yielded masked-off pc %d", pc)
		}
	}
	if f.Skipped == 0 {
		t.Fatal("no skips recorded")
	}
	// Register 2 and 3 must be untouched (masked), register 1 must have
	// been decremented to 0 (included path executed).
	if m.Reg[2] != 0 || m.Reg[3] != 0 {
		t.Fatal("masked instructions executed")
	}
	if m.Reg[1] != 0 {
		t.Fatalf("included loop did not run: r1=%d", m.Reg[1])
	}
}

func TestSkeletonFeederForcedBranch(t *testing.T) {
	b := isa.NewBuilder("f2")
	b.Li(1, 1)
	b.Br(isa.BEQ, 1, 0, "skip") // actually NOT taken (r1=1)
	b.I(isa.ADDI, 2, 2, 1)
	b.Label("skip")
	b.Halt()
	prog := b.Program()
	n := len(prog.Insts)
	sk := &Skeleton{Include: make([]bool, n), Force: make([]int8, n)}
	for i := range sk.Include {
		sk.Include[i] = true
		sk.Force[i] = -1
	}
	// Force the branch taken (wrong direction on purpose).
	for pc := range prog.Insts {
		if prog.Insts[pc].Op.IsCondBranch() {
			sk.Force[pc] = 1
		}
	}
	m := emu.NewMachine(prog, emu.NewMemory())
	f := NewSkeletonFeeder(m, sk)
	sawTaken := false
	for {
		d, ok := f.Peek()
		if !ok {
			break
		}
		f.Advance()
		if d.In.Op.IsCondBranch() {
			if !d.Taken {
				t.Fatal("forced direction not applied")
			}
			sawTaken = true
		}
		if d.In.Op == isa.HALT {
			break
		}
	}
	if !sawTaken {
		t.Fatal("no branch seen")
	}
	if m.Reg[2] != 0 {
		t.Fatal("forced-taken branch still fell through")
	}
}

func TestSkeletonFeederBudget(t *testing.T) {
	prog, setup, _, set := mixProfile()
	mem := emu.NewMemory()
	setup(mem)
	m := emu.NewMachine(prog, mem)
	f := NewSkeletonFeeder(m, set.Baseline)
	f.Budget = 100
	n := 0
	for {
		_, ok := f.Peek()
		if !ok {
			break
		}
		f.Advance()
		n++
	}
	if n != 100 {
		t.Fatalf("budget not honored: %d", n)
	}
}

func TestSkeletonFeederSwitchKeepsControlAlignment(t *testing.T) {
	// Switching versions mid-stream must still yield every control
	// instruction (BOQ alignment invariant).
	prog, setup, _, set := mixProfile()
	mem := emu.NewMemory()
	setup(mem)
	m := emu.NewMachine(prog, mem)
	f := NewSkeletonFeeder(m, set.Versions[0])

	// Reference: pure functional run recording conditional branches.
	mem2 := emu.NewMemory()
	setup(mem2)
	ref := emu.NewMachine(prog, mem2)
	var refBranches []int
	for len(refBranches) < 400 && !ref.Halted {
		d := ref.Step()
		if d.In.Op.IsCondBranch() {
			refBranches = append(refBranches, d.PC)
		}
	}

	var got []int
	i := 0
	for len(got) < 400 {
		d, ok := f.Peek()
		if !ok {
			break
		}
		f.Advance()
		if d.In.Op.IsCondBranch() {
			got = append(got, d.PC)
		}
		i++
		if i%97 == 0 { // switch versions frequently
			f.SetSkeleton(set.Versions[(i/97)%len(set.Versions)])
		}
	}
	for i := range got {
		if got[i] != refBranches[i] {
			t.Fatalf("branch stream diverged at %d: %d vs %d", i, got[i], refBranches[i])
		}
	}
}
