package core

import "r3dla/internal/cache"

// T1 is the "dumb FSM" strided-prefetch offload engine of Sec. III-C. It
// lives in the MT core, watches instructions marked with the S bit, and
// carries out the mundane address-arithmetic prefetching so those loads
// (and their backward slices) can be dropped from the skeleton.
//
// Per Fig. 3, each prefetch-table entry tracks {state, loop PC, inst PC,
// eff. addr, stride, cur. time, pref. distance}. Entries move from invalid
// through transient states (guarding against out-of-order stride noise)
// into a steady state that issues one prefetch per iteration, after a
// catch-up burst that establishes the prefetch distance.
type T1 struct {
	entries []t1Entry
	target  *cache.Cache
	degree  int // catch-up burst size cap

	// running average of observed L1 miss latency (for distance).
	missLatSum uint64
	missLatN   uint64

	Issued    uint64
	CatchUps  uint64
	LoopClear uint64
}

type t1State uint8

const (
	t1Invalid t1State = iota
	t1Training
	t1Transient
	t1Steady
)

type t1Entry struct {
	state    t1State
	loopPC   int
	instPC   int
	lastAddr uint64
	stride   int64
	lastTime uint64
	interval uint64 // smoothed time between instances
	dist     int64  // prefetch distance in iterations
	lru      uint64
}

// NewT1 returns a T1 engine with n prefetch-table entries (Table I: 16)
// issuing into the given cache (MT's L1D).
func NewT1(n int, target *cache.Cache) *T1 {
	return &T1{entries: make([]t1Entry, n), target: target, degree: 8}
}

// NoteMissLatency feeds the running average used to size the prefetch
// distance (average access latency / iteration interval, Sec. III-C1).
func (t *T1) NoteMissLatency(lat uint64) {
	t.missLatSum += lat
	t.missLatN++
}

func (t *T1) avgMissLat() uint64 {
	if t.missLatN == 0 {
		return 60 // a reasonable prior before any miss is observed
	}
	return t.missLatSum / t.missLatN
}

// Observe processes one executed S-marked memory instruction on the MT.
func (t *T1) Observe(pc int, loopPC int, addr uint64, now uint64) {
	e := t.lookup(pc)
	if e == nil {
		e = t.allocate(pc, loopPC, now)
		e.lastAddr = addr
		e.state = t1Training
		return
	}
	e.lru = now
	stride := int64(addr) - int64(e.lastAddr)
	iv := now - e.lastTime
	e.lastTime = now
	e.lastAddr = addr

	switch e.state {
	case t1Training:
		if stride != 0 {
			e.stride = stride
			e.state = t1Transient
			e.interval = iv
		}
	case t1Transient:
		if stride != e.stride {
			// Out-of-order noise or a new pattern: retrain.
			e.stride = stride
			return
		}
		e.interval = (e.interval + iv) / 2
		// Stride confirmed: compute prefetch distance and catch up.
		e.dist = t.distance(e)
		e.state = t1Steady
		t.CatchUps++
		burst := int(e.dist)
		if burst > t.degree {
			burst = t.degree
		}
		for i := 1; i <= burst; i++ {
			off := e.stride * (e.dist + int64(i-1))
			t.issue(uint64(int64(addr)+off), now)
		}
	case t1Steady:
		if stride != e.stride {
			e.state = t1Transient
			e.stride = stride
			return
		}
		e.interval = (e.interval*7 + iv) / 8
		e.dist = t.distance(e)
		t.issue(uint64(int64(addr)+e.stride*e.dist), now)
	}
}

// distance computes the prefetch distance: average miss latency divided by
// the iteration interval, clamped to a sane range. Tight loops iterate in
// one or two cycles, so covering a DRAM-class miss needs distances in the
// low hundreds of iterations.
func (t *T1) distance(e *t1Entry) int64 {
	iv := e.interval
	if iv == 0 {
		iv = 1
	}
	d := int64(t.avgMissLat()/iv) + 1
	if d < 1 {
		d = 1
	}
	if d > 256 {
		d = 256
	}
	return d
}

func (t *T1) issue(addr uint64, now uint64) {
	t.target.Access(addr, false, true, now)
	t.Issued++
}

// OnLoopEnd clears all entries belonging to a terminated loop (the loop
// branch retired not-taken, Sec. III-C3: "all entries in the table are
// cleared when a loop terminates").
func (t *T1) OnLoopEnd(loopPC int) {
	for i := range t.entries {
		if t.entries[i].state != t1Invalid && t.entries[i].loopPC == loopPC {
			t.entries[i] = t1Entry{}
			t.LoopClear++
		}
	}
}

func (t *T1) lookup(pc int) *t1Entry {
	for i := range t.entries {
		if t.entries[i].state != t1Invalid && t.entries[i].instPC == pc {
			return &t.entries[i]
		}
	}
	return nil
}

func (t *T1) allocate(pc, loopPC int, now uint64) *t1Entry {
	vi := 0
	for i := range t.entries {
		if t.entries[i].state == t1Invalid {
			vi = i
			break
		}
		if t.entries[i].lru < t.entries[vi].lru {
			vi = i
		}
	}
	t.entries[vi] = t1Entry{instPC: pc, loopPC: loopPC, lastTime: now, lru: now}
	return &t.entries[vi]
}
