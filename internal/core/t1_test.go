package core

import (
	"testing"

	"r3dla/internal/cache"
)

type sink struct {
	lat   uint64
	addrs []uint64
}

func (s *sink) Access(addr uint64, write, prefetch bool, now uint64) cache.Result {
	if prefetch {
		s.addrs = append(s.addrs, addr)
	}
	return cache.Result{Done: now + s.lat, Level: 4}
}

func newT1Sink() (*T1, *sink, *cache.Cache) {
	s := &sink{lat: 100}
	l1 := cache.New(cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 4, BlockBits: 6, Latency: 3, MSHRs: 32}, s)
	return NewT1(4, l1), s, l1
}

func TestT1LearnsStrideAndPrefetches(t *testing.T) {
	t1, _, l1 := newT1Sink()
	t1.NoteMissLatency(200)
	addr := uint64(0x1000)
	now := uint64(0)
	for i := 0; i < 20; i++ {
		t1.Observe(100, 50, addr, now)
		addr += 64
		now += 10
	}
	if t1.Issued == 0 {
		t.Fatal("T1 issued no prefetches on a perfect stride")
	}
	// The prefetch distance must cover the miss latency: 200 cycles at
	// 10 cycles/iter = 20 iterations ahead.
	future := addr + 64*19
	if !l1.Contains(future, now+1000) {
		t.Logf("distance check: future block not yet present (acceptable if ramping)")
	}
}

func TestT1IgnoresIrregular(t *testing.T) {
	t1, s, _ := newT1Sink()
	addrs := []uint64{0x100, 0x9000, 0x44, 0x123000, 0x8, 0x700000}
	for i, a := range addrs {
		t1.Observe(100, 50, a, uint64(i*10))
	}
	if len(s.addrs) != 0 {
		t.Fatalf("T1 prefetched on irregular stream: %v", s.addrs)
	}
}

func TestT1TransientGuardsAgainstNoise(t *testing.T) {
	t1, _, _ := newT1Sink()
	// One noisy sample between two strides must not reach steady.
	now := uint64(0)
	t1.Observe(7, 3, 0x1000, now)
	t1.Observe(7, 3, 0x1040, now+10) // stride 64 -> transient
	t1.Observe(7, 3, 0x9999, now+20) // noise -> retrain, not steady
	if t1.Issued != 0 {
		t.Fatalf("T1 issued %d prefetches from noisy transient", t1.Issued)
	}
}

func TestT1LoopEndClears(t *testing.T) {
	t1, _, _ := newT1Sink()
	now := uint64(0)
	for i := 0; i < 8; i++ {
		t1.Observe(7, 3, uint64(0x1000+i*64), now)
		now += 10
	}
	issued := t1.Issued
	t1.OnLoopEnd(3)
	if t1.LoopClear == 0 {
		t.Fatal("loop end cleared nothing")
	}
	// After clearing, the entry must retrain before prefetching again.
	t1.Observe(7, 3, 0x9000, now)
	if t1.Issued != issued {
		t.Fatal("T1 prefetched immediately after a loop clear")
	}
}

func TestT1EntryReplacementLRU(t *testing.T) {
	t1, _, _ := newT1Sink() // 4 entries
	now := uint64(0)
	for pc := 0; pc < 6; pc++ { // 6 distinct PCs -> evictions
		for i := 0; i < 4; i++ {
			t1.Observe(pc, 3, uint64(pc*0x100000+i*64), now)
			now += 5
		}
	}
	// The most recent PC must still be tracked (lookup finds it).
	if t1.lookup(5) == nil {
		t.Fatal("most recent PC evicted")
	}
	if t1.lookup(0) != nil {
		t.Fatal("oldest PC survived in a full table")
	}
}

func TestT1DistanceScalesWithLatency(t *testing.T) {
	t1, _, _ := newT1Sink()
	e := &t1Entry{interval: 10}
	t1.NoteMissLatency(100)
	d1 := t1.distance(e)
	t1Hot, _, _ := newT1Sink()
	t1Hot.NoteMissLatency(1000)
	d2 := t1Hot.distance(e)
	if d2 <= d1 {
		t.Fatalf("distance did not grow with latency: %d vs %d", d1, d2)
	}
}
