package core

// BOQEntry is one Branch Outcome Queue entry: a direction bit plus a
// footnote marker (Sec. III-A(ii)).
type BOQEntry struct {
	Taken    bool
	Footnote bool
	Index    uint64 // monotonically increasing push index (epoch)
}

// BOQ is the Branch Outcome Queue: a bounded FIFO of branch outcomes
// written by the look-ahead thread at commit and consumed by the main
// thread at fetch. Its occupancy *is* the look-ahead depth (in dynamic
// basic blocks), and its size bounds run-away prefetching (Table I: 512
// entries).
type BOQ struct {
	buf        []BOQEntry
	head, size int
	pushes     uint64
	pops       uint64

	Overflows uint64 // push attempts while full (LT stalls)
}

// NewBOQ returns an empty BOQ with the given capacity.
func NewBOQ(capacity int) *BOQ {
	return &BOQ{buf: make([]BOQEntry, capacity)}
}

// Full reports whether a push would overflow (the LT must stall).
func (q *BOQ) Full() bool { return q.size == len(q.buf) }

// Len reports current occupancy (the look-ahead depth in basic blocks).
func (q *BOQ) Len() int { return q.size }

// PushIndex reports the index the next pushed entry will get.
func (q *BOQ) PushIndex() uint64 { return q.pushes }

// PopIndex reports the index of the next entry to be popped.
func (q *BOQ) PopIndex() uint64 { return q.pops }

// Push appends an outcome; it returns false (and counts an overflow) when
// full.
func (q *BOQ) Push(taken bool) bool {
	if q.Full() {
		q.Overflows++
		return false
	}
	idx := q.head + q.size
	if idx >= len(q.buf) {
		idx -= len(q.buf)
	}
	q.buf[idx] = BOQEntry{Taken: taken, Index: q.pushes}
	q.size++
	q.pushes++
	return true
}

// Pop removes and returns the oldest outcome.
func (q *BOQ) Pop() (BOQEntry, bool) {
	if q.size == 0 {
		return BOQEntry{}, false
	}
	e := q.buf[q.head]
	if q.head++; q.head == len(q.buf) {
		q.head = 0
	}
	q.size--
	q.pops++
	return e, true
}

// Flush empties the queue (look-ahead reboot) and realigns push/pop
// indices.
func (q *BOQ) Flush() {
	q.head, q.size = 0, 0
	q.pops = q.pushes
}

// FQKind tags Footnote Queue payload types (Sec. III-A(ii), Fig. 8).
type FQKind uint8

// Footnote payload kinds.
const (
	FQL1Prefetch FQKind = iota // L1 prefetch target address
	FQL2Prefetch               // L2 prefetch target address
	FQIndirect                 // indirect branch target
	FQValue                    // value-reuse payload
)

// FQEntry is one Footnote Queue entry. Epoch is the BOQ push index current
// when the LT generated the hint; the MT releases prefetch hints when it
// pops that BOQ entry (just-in-time prefetching, Sec. III-A "¯").
type FQEntry struct {
	Kind  FQKind
	PC    int    // generating static instruction (matching key)
	Addr  uint64 // prefetch address / value payload
	Epoch uint64
}

// FQ is the Footnote Queue: wider, lower-rate hint traffic from LT to MT
// (Table I: 128 entries). Overflowing hints are dropped — they are
// semantically hints, so dropping is safe.
type FQ struct {
	buf        []FQEntry
	head, size int

	Drops uint64
}

// NewFQ returns an empty FQ with the given capacity.
func NewFQ(capacity int) *FQ {
	return &FQ{buf: make([]FQEntry, capacity)}
}

// Len reports current occupancy.
func (q *FQ) Len() int { return q.size }

// Push appends a hint, dropping it (with a count) when full.
func (q *FQ) Push(e FQEntry) bool {
	if q.size == len(q.buf) {
		q.Drops++
		return false
	}
	idx := q.head + q.size
	if idx >= len(q.buf) {
		idx -= len(q.buf)
	}
	q.buf[idx] = e
	q.size++
	return true
}

// Peek returns the oldest entry without removing it.
func (q *FQ) Peek() (FQEntry, bool) {
	if q.size == 0 {
		return FQEntry{}, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest entry.
func (q *FQ) Pop() (FQEntry, bool) {
	e, ok := q.Peek()
	if ok {
		if q.head++; q.head == len(q.buf) {
			q.head = 0
		}
		q.size--
	}
	return e, ok
}

// Flush empties the queue (look-ahead reboot).
func (q *FQ) Flush() { q.head, q.size = 0, 0 }
