package core

import (
	"testing"
	"testing/quick"
)

func TestBOQFIFO(t *testing.T) {
	q := NewBOQ(4)
	seq := []bool{true, false, true, true}
	for _, b := range seq {
		if !q.Push(b) {
			t.Fatal("push failed below capacity")
		}
	}
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Push(true) {
		t.Fatal("push succeeded on full queue")
	}
	if q.Overflows != 1 {
		t.Fatalf("overflows = %d", q.Overflows)
	}
	for i, want := range seq {
		e, ok := q.Pop()
		if !ok || e.Taken != want {
			t.Fatalf("pop %d = %v,%v want %v", i, e.Taken, ok, want)
		}
		if e.Index != uint64(i) {
			t.Fatalf("pop %d index = %d", i, e.Index)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestBOQFlushRealigns(t *testing.T) {
	q := NewBOQ(8)
	q.Push(true)
	q.Push(false)
	q.Pop()
	q.Flush()
	if q.Len() != 0 {
		t.Fatal("flush did not empty")
	}
	if q.PopIndex() != q.PushIndex() {
		t.Fatalf("indices misaligned after flush: pop=%d push=%d", q.PopIndex(), q.PushIndex())
	}
	q.Push(true)
	e, _ := q.Pop()
	if e.Index != 2 {
		t.Fatalf("post-flush index = %d, want 2", e.Index)
	}
}

// Property: BOQ behaves as a bounded FIFO; occupancy = pushes - pops and
// never exceeds capacity.
func TestBOQProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewBOQ(16)
		var model []bool
		for _, op := range ops {
			if op {
				ok := q.Push(true)
				if ok != (len(model) < 16) {
					return false
				}
				if ok {
					model = append(model, true)
				}
			} else {
				e, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if e.Taken != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFQDropsWhenFull(t *testing.T) {
	q := NewFQ(2)
	q.Push(FQEntry{PC: 1})
	q.Push(FQEntry{PC: 2})
	if q.Push(FQEntry{PC: 3}) {
		t.Fatal("push succeeded on full FQ")
	}
	if q.Drops != 1 {
		t.Fatalf("drops = %d", q.Drops)
	}
	e, _ := q.Pop()
	if e.PC != 1 {
		t.Fatalf("FIFO order broken: %d", e.PC)
	}
}

func TestFQPeekPop(t *testing.T) {
	q := NewFQ(4)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty")
	}
	q.Push(FQEntry{PC: 9, Addr: 42})
	e, ok := q.Peek()
	if !ok || e.Addr != 42 {
		t.Fatal("peek wrong")
	}
	if q.Len() != 1 {
		t.Fatal("peek consumed entry")
	}
	q.Pop()
	if q.Len() != 0 {
		t.Fatal("pop did not consume")
	}
}

func TestSIFInsertDeleteContains(t *testing.T) {
	s := NewSIF(8)
	if s.Contains(100) {
		t.Fatal("empty filter contains")
	}
	s.Insert(100)
	if !s.Contains(100) {
		t.Fatal("inserted PC missing")
	}
	s.Delete(100)
	if s.Contains(100) {
		t.Fatal("deleted PC still present")
	}
}

func TestSIFClear(t *testing.T) {
	s := NewSIF(8)
	for pc := 0; pc < 50; pc++ {
		s.Insert(pc * 7)
	}
	s.Clear()
	for pc := 0; pc < 50; pc++ {
		if s.Contains(pc * 7) {
			t.Fatalf("pc %d survives clear", pc*7)
		}
	}
}

// Property: no false negatives — every inserted (and not deleted) PC is
// reported present.
func TestSIFNoFalseNegatives(t *testing.T) {
	f := func(pcs []uint16) bool {
		s := NewSIF(10)
		for _, pc := range pcs {
			s.Insert(int(pc))
		}
		for _, pc := range pcs {
			if !s.Contains(int(pc)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
