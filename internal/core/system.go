package core

import (
	"context"
	"sort"

	"r3dla/internal/branch"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
	"r3dla/internal/memsys"
	"r3dla/internal/pipeline"
)

// Options selects the DLA system configuration. The zero value is the
// baseline DLA of Sec. III-A; enabling all four R3 flags yields R3-DLA.
type Options struct {
	T1          bool        // reduce: offload strided prefetch to the T1 FSM
	ValueReuse  bool        // reuse: SIF-filtered value predictions through the VQ
	FetchBuffer bool        // reuse: 32-entry MT fetch buffer driven by the BOQ
	Recycle     bool        // recycle: online skeleton cycling
	StaticLCT   map[int]int // preloaded loop->version table (offline tuning)

	WithBOP    bool // BOP at L2 of both cores
	WithStride bool // tuned stride prefetcher at MT L1 (fig12 comparator)

	// FixedVersion, when HasFixedVersion is set and recycling is off,
	// runs LT on that recycle-pool version instead of the baseline
	// skeleton. The explicit flag replaces the old "0 means unset"
	// convention, under which version 0 (the reduced skeleton) was
	// unselectable.
	FixedVersion    int
	HasFixedVersion bool

	BOQSize    int    // default 512
	FQSize     int    // default 128 (prefetch + indirect hints)
	VQSize     int    // default 32 (value payloads)
	RebootCost uint64 // default 64 cycles
	TrialInsts uint64 // recycle measurement window (default 4000)

	CoreCfg *pipeline.Config // MT core; nil = Table I default
	LTCfg   *pipeline.Config // LT core; nil = same as CoreCfg

	// PrefetchOnly models CRE-style helpers: the leading thread's work
	// only prefetches (into the MT's L1); the MT uses its own branch
	// predictor, and BOQ entries serve purely as a divergence check that
	// resynchronizes the helper.
	PrefetchOnly bool

	// Disable spawns no look-ahead thread at all; the MT runs alone on
	// its own predictor (used by harness baselines sharing this driver).
	Disable bool
}

func (o *Options) fill() {
	if o.BOQSize == 0 {
		o.BOQSize = 512
	}
	if o.FQSize == 0 {
		o.FQSize = 128
	}
	if o.VQSize == 0 {
		o.VQSize = 32
	}
	if o.RebootCost == 0 {
		o.RebootCost = 64
	}
}

// R3Options returns the full R3-DLA configuration.
func R3Options() Options {
	return Options{T1: true, ValueReuse: true, FetchBuffer: true, Recycle: true, WithBOP: true}
}

// DLAOptions returns the baseline DLA configuration (with BOP, as in the
// paper's default comparison).
func DLAOptions() Options {
	return Options{WithBOP: true}
}

// Results aggregates a DLA run's observables.
type Results struct {
	MT, LT *pipeline.Metrics

	Reboots         uint64
	WatchdogReboots uint64 // forced resyncs after MT starvation
	BOQWrong        uint64 // BOQ-fed predictions that proved wrong
	FQDrops         uint64
	VQDrops         uint64
	LTSkipped       uint64 // masked-off instructions (fetch-deleted)
	T1Issued        uint64
	SIFInserts      uint64
	SIFDeletes      uint64
	SkeletonUse     []uint64 // committed MT insts attributed per version

	MTMem, LTMem *memsys.Private
	Shared       *memsys.Shared
}

// IPC reports the MT (architectural) IPC.
func (r *Results) IPC() float64 { return r.MT.IPC() }

// System couples a look-ahead core and a main core through the BOQ/FQ.
type System struct {
	opt  Options
	prog *isa.Program
	set  *Set
	prof *Profile

	shared *memsys.Shared
	mtMem  *memsys.Private
	ltMem  *memsys.Private

	mtMach *emu.Machine
	ltMach *emu.Machine
	ltOver *emu.Overlay

	mtFeed *pipeline.MachineFeeder
	ltFeed *SkeletonFeeder

	mt *pipeline.Core
	lt *pipeline.Core

	boq *BOQ
	fq  *FQ // prefetch hints (epoch-released) + shares capacity with ind
	ind *FQ // indirect target hints
	vq  *FQ // value payloads (the VPT)

	t1  *T1
	sif *SIF
	rc  *Recycle

	// SIF training window state. sifInserted is generation-stamped per
	// PC: a slot is "inserted this window" iff it equals sifGen, so a new
	// training window is opened by bumping the generation instead of
	// allocating a fresh map (the seed reallocated one per loop change).
	sifLoop     int
	sifIters    int
	sifInserted []uint32
	sifGen      uint32

	loopMask []bool // loopMask[pc]: recycle-relevant loop branch (hot-path LoopSet)

	pendingMismatch bool
	rebootAt        uint64
	rebootArmed     bool
	ltStallUntil    uint64

	// Watchdog: a diverged LT can wander into a loop that commits no
	// conditional branches (e.g. chasing a garbage return address), which
	// would starve the MT forever — the BOQ mismatch detector never fires
	// because no outcomes arrive. The watchdog reboots the LT whenever
	// the MT has made no progress for a long window.
	wdLastCommitted uint64
	wdStall         uint64

	now uint64
	res Results
}

// watchdogWindow is the no-MT-progress window (cycles) that forces an LT
// resynchronization.
const watchdogWindow = 15_000

// NewSystem builds a DLA system for prog. setup initializes data memory;
// set/prof come from Generate/Collect on the training input.
func NewSystem(prog *isa.Program, setup func(*emu.Memory), set *Set, prof *Profile, opt Options) *System {
	base := emu.NewMemory()
	if setup != nil {
		setup(base)
	}
	return NewSystemWithMemory(prog, base, set, prof, opt)
}

// NewSystemWithMemory is NewSystem with data memory supplied directly: base
// becomes the MT's memory and the LT overlays it. The experiment harness
// passes copy-on-write forks of a prepared image (emu.Memory.Fork), making
// workload setup a one-time cost instead of a per-run one — the heap
// profile attributed ~74% of per-run allocation to re-running setup.
// Results are identical either way: a fork reads exactly the parent image.
func NewSystemWithMemory(prog *isa.Program, base *emu.Memory, set *Set, prof *Profile, opt Options) *System {
	opt.fill()
	cfg := pipeline.DefaultConfig()
	if opt.CoreCfg != nil {
		cfg = *opt.CoreCfg
	}
	mtCfg := cfg
	if opt.FetchBuffer {
		mtCfg.FetchBufSize = 32
	}
	if opt.ValueReuse {
		mtCfg.SkipValidation = true
	}

	s := &System{opt: opt, prog: prog, set: set, prof: prof, sifLoop: -1}

	s.shared = memsys.NewShared()
	s.mtMem = memsys.NewPrivate(s.shared, memsys.Options{WithBOP: opt.WithBOP, WithStride: opt.WithStride})
	s.ltMem = memsys.NewPrivate(s.shared, memsys.Options{WithBOP: opt.WithBOP, DiscardDirty: true})

	s.mtMach = emu.NewMachine(prog, base)
	s.ltOver = emu.NewOverlay(base)
	s.ltMach = emu.NewMachine(prog, s.ltOver)

	s.boq = NewBOQ(opt.BOQSize)
	s.fq = NewFQ(opt.FQSize * 3 / 4)
	s.ind = NewFQ(opt.FQSize / 4)
	s.vq = NewFQ(opt.VQSize)
	s.sif = NewSIF(8)
	s.sifInserted = make([]uint32, len(prog.Insts))
	s.sifGen = 1
	loopSet := LoopSet(prog, prof)
	s.loopMask = make([]bool, len(prog.Insts))
	for pc := range loopSet {
		s.loopMask[pc] = true
	}

	// Main thread core.
	s.mtFeed = &pipeline.MachineFeeder{M: s.mtMach}
	var mtDir pipeline.DirectionSource
	if opt.Disable {
		mtDir = &pipeline.TageSource{P: branch.NewPredictor(branch.DefaultConfig())}
	} else {
		mtDir = &boqSource{s: s, fallback: &pipeline.TageSource{P: branch.NewPredictor(branch.DefaultConfig())}}
	}
	s.mt = pipeline.New(mtCfg, s.mtFeed, mtDir, s.mtMem.L1I, s.mtMem.L1D)

	mtLoad := s.mtMem.LoadHook()
	s.mt.Hooks.OnLoadAccess = func(d *emu.DynInst, level int, done, now uint64) {
		mtLoad(d, level, done, now)
		if level >= 2 && s.t1 != nil {
			s.t1.NoteMissLatency(done - now)
		}
	}
	s.mt.Hooks.OnCommit = s.onMTCommit
	s.mt.Hooks.OnBranchResolve = s.onMTResolve
	if opt.ValueReuse {
		s.mt.Vals = &valueSource{s: s}
		s.mt.Hooks.OnIssue = s.onMTIssue
	}
	if !opt.Disable {
		if !opt.PrefetchOnly {
			s.mt.Hooks.TargetHint = s.targetHint // CRE supplies no targets
		}
		s.mt.Hooks.FetchTag = func() uint64 { return s.boq.PopIndex() }
	}

	if opt.Disable {
		return s
	}

	// Look-ahead core.
	skel := s.pickInitialSkeleton()
	s.ltFeed = NewSkeletonFeeder(s.ltMach, skel)
	ltDir := &pipeline.TageSource{P: branch.NewPredictor(branch.DefaultConfig())}
	ltCfg := cfg
	if opt.LTCfg != nil {
		ltCfg = *opt.LTCfg
	}
	s.lt = pipeline.New(ltCfg, s.ltFeed, ltDir, s.ltMem.L1I, s.ltMem.L1D)
	ltLoad := s.ltMem.LoadHook()
	s.lt.Hooks.OnLoadAccess = func(d *emu.DynInst, level int, done, now uint64) {
		ltLoad(d, level, done, now)
		if level >= 2 {
			s.fq.Push(FQEntry{Kind: FQL1Prefetch, PC: d.PC, Addr: d.EA, Epoch: s.boq.PushIndex()})
		}
	}
	s.lt.Hooks.OnCommit = s.onLTCommit

	if opt.T1 {
		s.t1 = NewT1(16, s.mtMem.L1D)
	}
	if opt.Recycle || opt.StaticLCT != nil {
		s.rc = NewRecycle(len(set.Versions), loopSet, s.onSkeletonSwitch, s.onNewLoop)
		if opt.TrialInsts > 0 {
			s.rc.TrialInsts = opt.TrialInsts
		}
		if opt.StaticLCT != nil {
			s.rc.Static = true
			// Preload in sorted order: LCT insertion stamps LRU state, so
			// map-iteration order would make later evictions (and thus the
			// whole run) nondeterministic.
			loops := make([]int, 0, len(opt.StaticLCT))
			for loop := range opt.StaticLCT {
				loops = append(loops, loop)
			}
			sort.Ints(loops)
			for _, loop := range loops {
				s.rc.Preload(loop, opt.StaticLCT[loop])
			}
		}
	}
	return s
}

func (s *System) pickInitialSkeleton() *Skeleton {
	if s.opt.Recycle || s.opt.StaticLCT != nil {
		return s.set.Versions[0]
	}
	if s.opt.HasFixedVersion && s.opt.FixedVersion >= 0 && s.opt.FixedVersion < len(s.set.Versions) {
		return s.set.Versions[s.opt.FixedVersion]
	}
	if s.opt.T1 {
		return s.set.Versions[0] // the reduced skeleton
	}
	return s.set.Baseline
}

// ---------------------------------------------------------------- hooks

// boqSource feeds MT branch directions from the BOQ (Sec. III-A).
type boqSource struct {
	s        *System
	fallback *pipeline.TageSource
}

func (b *boqSource) PredictAndTrain(pc int, actual bool, now uint64) (bool, bool) {
	s := b.s
	if s.opt.PrefetchOnly {
		// CRE mode: the MT predicts for itself; a popped mismatch only
		// resynchronizes the helper thread.
		pred, _ := b.fallback.PredictAndTrain(pc, actual, now)
		if e, ok := s.boq.Pop(); ok {
			s.releaseHints(e.Index+hintLead, now)
			if e.Taken != actual && !s.rebootArmed {
				s.res.BOQWrong++
				s.rebootAt = now + 1
				s.rebootArmed = true
			}
		}
		return pred, true
	}
	if e, ok := s.boq.Pop(); ok {
		s.releaseHints(e.Index+hintLead, now)
		if e.Taken != actual {
			s.res.BOQWrong++
			s.pendingMismatch = true
		}
		return e.Taken, true
	}
	if s.ltDead() {
		return b.fallback.PredictAndTrain(pc, actual, now)
	}
	return false, false
}

// hintLead releases prefetch hints a few basic blocks before the MT
// reaches the hint's program position, covering the L3-to-L1 pull latency
// while still bounding how early (and thus how polluting) a prefetch can
// be — the just-in-time release of Sec. III-A with a small lead.
const hintLead = 4

// releaseHints issues the just-in-time L1 prefetches associated with BOQ
// entries up to (and including) epoch.
func (s *System) releaseHints(epoch uint64, now uint64) {
	for {
		e, ok := s.fq.Peek()
		if !ok || e.Epoch > epoch {
			return
		}
		s.fq.Pop()
		if e.Kind == FQL1Prefetch {
			s.mtMem.L1D.Access(e.Addr, false, true, now)
		}
	}
}

// matchFQ aligns an FQ stream with a dynamic MT instance: entries whose
// epoch predates the instance's fetch epoch (d.Tag) are stale (their MT
// instance passed without consuming them, e.g. after drops) and are
// discarded; a head with the same epoch and PC is the matching payload.
func matchFQ(q *FQ, d *emu.DynInst) (FQEntry, bool) {
	for {
		e, ok := q.Peek()
		if !ok {
			return FQEntry{}, false
		}
		if e.Epoch < d.Tag {
			q.Pop() // stale
			continue
		}
		if e.Epoch == d.Tag && e.PC == d.PC {
			q.Pop()
			return e, true
		}
		return FQEntry{}, false
	}
}

// targetHint serves indirect branch targets recorded by LT.
func (s *System) targetHint(d *emu.DynInst) (int, bool) {
	e, ok := matchFQ(s.ind, d)
	if !ok {
		return 0, false
	}
	return int(e.Addr), true
}

// valueSource serves LT-computed values in program order (Sec. III-D1).
type valueSource struct{ s *System }

func (v *valueSource) Lookup(d *emu.DynInst) (uint64, bool) {
	e, ok := matchFQ(v.s.vq, d)
	if !ok {
		return 0, false
	}
	return e.Addr, true
}

func (v *valueSource) OnOutcome(d *emu.DynInst, correct bool) {
	if !correct {
		v.s.sif.Delete(d.PC)
	}
}

// onMTIssue trains the SIF during the first iterations of a loop.
func (s *System) onMTIssue(d *emu.DynInst, dispatchCycle, execDone uint64) {
	if s.sifIters <= 0 || !d.HasVal {
		return
	}
	if execDone-dispatchCycle < uint64(slowLatency) {
		return
	}
	if s.sifInserted[d.PC] == s.sifGen {
		return
	}
	s.sifInserted[d.PC] = s.sifGen
	s.sif.Insert(d.PC)
}

func (s *System) onMTCommit(d *emu.DynInst, now uint64) {
	op := d.In.Op
	pc := d.PC

	if s.t1 != nil && s.set.SBits[pc] && op.IsMem() {
		s.t1.Observe(pc, s.set.SLoop[pc], d.EA, now)
	}
	if op.IsCondBranch() && s.loopMask[pc] {
		if s.t1 != nil && !d.Taken {
			s.t1.OnLoopEnd(pc)
		}
		s.onLoopBranchCommit(pc)
	} else if (op == isa.CALL || op == isa.CALR) && s.loopMask[pc] {
		s.onLoopBranchCommit(pc)
	}
}

// onLoopBranchCommit advances SIF training windows and the recycle
// controller.
func (s *System) onLoopBranchCommit(pc int) {
	if s.opt.ValueReuse {
		if pc != s.sifLoop {
			s.sifLoop = pc
			s.sif.Clear()
			s.sifGen++
			s.sifIters = 8
		} else if s.sifIters > 0 {
			s.sifIters--
		}
	}
	if s.rc != nil {
		s.rc.OnLoopBranch(pc, s.mt.M.Committed, s.mt.M.Cycles)
	}
}

// onMTResolve schedules a look-ahead reboot when a BOQ-fed direction
// proves wrong (Sec. III-A: "we will reboot LT from the current state of
// MT").
func (s *System) onMTResolve(d *emu.DynInst, mispredicted bool, at uint64) {
	if !mispredicted || !d.In.Op.IsCondBranch() || !s.pendingMismatch {
		return
	}
	s.pendingMismatch = false
	if !s.rebootArmed || at < s.rebootAt {
		s.rebootAt = at
		s.rebootArmed = true
	}
}

func (s *System) onLTCommit(d *emu.DynInst, now uint64) {
	op := d.In.Op
	switch {
	case op.IsCondBranch():
		s.boq.Push(d.Taken)
	case op.IsIndirect():
		s.ind.Push(FQEntry{Kind: FQIndirect, PC: d.PC, Addr: uint64(d.NextPC), Epoch: s.boq.PushIndex()})
	}
	if s.opt.ValueReuse && d.HasVal && s.sif.Contains(d.PC) {
		s.vq.Push(FQEntry{Kind: FQValue, PC: d.PC, Addr: d.Val, Epoch: s.boq.PushIndex()})
	}
}

func (s *System) onSkeletonSwitch(version int) {
	s.ltFeed.SetSkeleton(s.set.Versions[version])
	// A version switch changes which dataflow the LT maintains; registers
	// produced by newly-included chains would be stale until the next
	// natural reinitialization. Resynchronize the LT from the MT (a
	// reboot), exactly as the divergence path does.
	if !s.rebootArmed {
		s.rebootArmed = true
		s.rebootAt = s.now + 1
	}
}

func (s *System) onNewLoop(loopPC int) {
	// SIF handling is driven from onLoopBranchCommit; nothing extra here.
}

// ltDead reports whether the look-ahead thread can produce no more
// outcomes (its feeder is drained — program halted, walked off the
// skeleton, or the skeleton is empty — and the BOQ is dry): the MT falls
// back to its own predictor. A reboot revives the feeder, so this is
// re-evaluated every fetch.
func (s *System) ltDead() bool {
	return s.lt == nil || (s.lt.Done() && s.boq.Len() == 0)
}

// --------------------------------------------------------------- reboot

func (s *System) doReboot() {
	s.rebootArmed = false
	s.res.Reboots++

	s.ltMach.CopyArchState(s.mtMach)
	s.ltOver.Reset()
	s.ltFeed.Reset()
	s.lt.Flush()
	s.ltMem.L1D.DropDirty()
	s.ltMem.L2.DropDirty()

	s.boq.Flush()
	s.fq.Flush()
	s.ind.Flush()
	s.vq.Flush()

	s.ltStallUntil = s.now + s.opt.RebootCost
}

// ------------------------------------------------------------------ run

// Run executes until the MT commits budget instructions (or the program
// ends) and returns the results.
func (s *System) Run(budget uint64) *Results {
	r, _ := s.RunContext(nil, budget)
	return r
}

// cancelCheckMask spaces out RunContext's cancellation polls: ctx.Err is
// consulted once every 4096 cycles, cheap enough to be invisible in the
// simulation hot loop while bounding cancellation latency to microseconds.
const cancelCheckMask = 4096 - 1

// RunContext is Run with cooperative cancellation: ctx (when non-nil) is
// polled periodically, and a canceled run stops early, returning the
// partial results alongside ctx's error. A nil ctx never cancels.
func (s *System) RunContext(ctx context.Context, budget uint64) (*Results, error) {
	guard := budget*3000 + 3_000_000
	ltGate := 0
	if s.lt != nil {
		ltGate = s.lt.Cfg.CommitWidth
	}
	for !s.mt.Done() && (budget == 0 || s.mt.M.Committed < budget) {
		if ctx != nil && s.now&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return s.Results(), err
			}
		}
		if s.lt != nil {
			switch {
			case s.rebootArmed && s.now >= s.rebootAt:
				s.doReboot()
				s.lt.StallTick()
			case s.now < s.ltStallUntil,
				s.boq.Len() > s.opt.BOQSize-ltGate,
				s.lt.Done():
				s.lt.StallTick()
			default:
				s.lt.Tick()
			}
			// Watchdog: force a resync if the MT has stopped advancing.
			if s.mt.M.Committed != s.wdLastCommitted {
				s.wdLastCommitted = s.mt.M.Committed
				s.wdStall = 0
			} else if s.wdStall++; s.wdStall > watchdogWindow && !s.rebootArmed {
				s.rebootArmed = true
				s.rebootAt = s.now
				s.res.WatchdogReboots++
			}
		}
		s.mt.Tick()
		s.now++
		if s.now > guard {
			s.mt.M.Deadlocked = true
			break
		}
	}
	return s.Results(), nil
}

// MTLoadHook returns the MT core's current load-access hook (for harness
// instrumentation chaining).
func (s *System) MTLoadHook() func(d *emu.DynInst, level int, done, now uint64) {
	return s.mt.Hooks.OnLoadAccess
}

// SetMTLoadHook replaces the MT core's load-access hook.
func (s *System) SetMTLoadHook(h func(d *emu.DynInst, level int, done, now uint64)) {
	s.mt.Hooks.OnLoadAccess = h
}

// LCTSnapshot exports the recycle controller's learned loop->version
// decisions (the offline/static tuning path trains on one input and
// preloads these on another).
func (s *System) LCTSnapshot() map[int]int {
	out := make(map[int]int)
	if s.rc == nil {
		return out
	}
	for _, e := range s.rc.lct.entries {
		if e.valid {
			out[e.loopPC] = e.version
		}
	}
	return out
}

// Results snapshots the run's observables.
func (s *System) Results() *Results {
	r := &s.res
	r.MT = &s.mt.M
	if s.lt != nil {
		r.LT = &s.lt.M
		r.LTSkipped = s.ltFeed.Skipped
	}
	r.FQDrops = s.fq.Drops + s.ind.Drops
	r.VQDrops = s.vq.Drops
	if s.t1 != nil {
		r.T1Issued = s.t1.Issued
	}
	r.SIFInserts = s.sif.Inserts
	r.SIFDeletes = s.sif.Deletes
	if s.rc != nil {
		s.rc.Finish(s.mt.M.Committed, s.mt.M.Cycles)
		r.SkeletonUse = s.rc.UseInsts
	}
	r.MTMem, r.LTMem, r.Shared = s.mtMem, s.ltMem, s.shared
	return r
}
