package core

// Recycle is the skeleton re-cycling controller of Sec. III-E2 (Fig. 7).
// It detects the current "loop" (a backward loop branch, or a hot call
// site standing in for a recursive function), cycles the look-ahead
// thread through the available skeleton versions measuring MT speed, and
// caches the best version per loop in the Loop-Config Table (LCT).
//
// Trial progress is kept per loop, so programs that interleave several
// short loop phases still complete their sweeps: each re-entry resumes
// the loop's trial where it left off (measurement accumulates only over
// contiguous stretches of the same loop).
type Recycle struct {
	NumVersions int
	TrialInsts  uint64 // committed MT instructions measured per version

	lct     lct
	loopSet map[int]bool // PCs treated as loop branches

	cur     int // active skeleton version
	curLoop int // current loop branch PC (-1 = none)

	trials map[int]*trialState
	active *trialState // trial of curLoop, nil when decided
	lastM  measure     // measurement checkpoint within current loop

	// Static mode: the LCT is preloaded from training runs and trials are
	// disabled (Sec. III-E2: offline tuning needs no hardware support).
	Static bool

	onSwitch  func(version int)
	onNewLoop func(loopPC int)

	Switches uint64
	UseInsts []uint64 // committed instructions attributed to each version
	lastUse  measure
}

type measure struct {
	insts  uint64
	cycles uint64
}

type trialState struct {
	ver        int
	accI, accC uint64
	bestVer    int
	bestSpeed  float64
}

type lctEntry struct {
	loopPC  int
	version int
	lru     uint64
	valid   bool
}

type lct struct {
	entries [16]lctEntry
	clock   uint64
}

func (t *lct) lookup(loopPC int) (int, bool) {
	t.clock++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.loopPC == loopPC {
			e.lru = t.clock
			return e.version, true
		}
	}
	return 0, false
}

func (t *lct) insert(loopPC, version int) {
	t.clock++
	vi := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			vi = i
			break
		}
		if t.entries[i].lru < t.entries[vi].lru {
			vi = i
		}
	}
	t.entries[vi] = lctEntry{loopPC: loopPC, version: version, lru: t.clock, valid: true}
}

// NewRecycle builds a controller over numVersions skeletons. onSwitch is
// invoked whenever the active version changes; onNewLoop whenever a new
// loop is entered (the system uses it to reset SIF training).
func NewRecycle(numVersions int, loopSet map[int]bool, onSwitch func(int), onNewLoop func(int)) *Recycle {
	return &Recycle{
		NumVersions: numVersions,
		// Each version must run well past the BOQ's look-ahead depth
		// (512 basic blocks) for the measurement to reflect it, not its
		// predecessor's queued-up benefit.
		TrialInsts: 4000,
		loopSet:    loopSet,
		curLoop:    -1,
		trials:     make(map[int]*trialState),
		UseInsts:   make([]uint64, numVersions),
		onSwitch:   onSwitch,
		onNewLoop:  onNewLoop,
	}
}

// Preload installs a training-time decision (static tuning).
func (r *Recycle) Preload(loopPC, version int) {
	r.lct.insert(loopPC, version)
}

// Current reports the active skeleton version.
func (r *Recycle) Current() int { return r.cur }

// InLoopSet reports whether pc is treated as a loop branch.
func (r *Recycle) InLoopSet(pc int) bool { return r.loopSet[pc] }

func (r *Recycle) switchTo(v int, m measure) {
	r.account(m)
	if v == r.cur {
		return
	}
	r.cur = v
	r.Switches++
	if r.onSwitch != nil {
		r.onSwitch(v)
	}
}

// account attributes the instructions committed since the last checkpoint
// to the active version (Fig. 15 data).
func (r *Recycle) account(m measure) {
	if m.insts >= r.lastUse.insts {
		r.UseInsts[r.cur] += m.insts - r.lastUse.insts
	}
	r.lastUse = m
}

// OnLoopBranch is called at MT commit of any PC in the loop set, with the
// MT's running committed-instruction and cycle counters.
func (r *Recycle) OnLoopBranch(pc int, committed, cycles uint64) {
	m := measure{committed, cycles}
	if pc != r.curLoop {
		r.enterLoop(pc, m)
		return
	}
	if r.active == nil {
		return // steady state for this loop
	}
	st := r.active
	st.accI += m.insts - r.lastM.insts
	st.accC += m.cycles - r.lastM.cycles
	r.lastM = m
	if st.accI < r.TrialInsts {
		return
	}
	// Version st.ver measured: score it.
	dc := st.accC
	if dc == 0 {
		dc = 1
	}
	speed := float64(st.accI) / float64(dc)
	if speed > st.bestSpeed {
		st.bestSpeed = speed
		st.bestVer = st.ver
	}
	st.accI, st.accC = 0, 0
	st.ver++
	if st.ver >= r.NumVersions {
		// Sweep done: commit the winner.
		r.lct.insert(pc, st.bestVer)
		delete(r.trials, pc)
		r.active = nil
		r.switchTo(st.bestVer, m)
		return
	}
	r.switchTo(st.ver, m)
}

// enterLoop handles a transition to a (possibly new) loop.
func (r *Recycle) enterLoop(pc int, m measure) {
	r.curLoop = pc
	r.lastM = m
	if r.onNewLoop != nil {
		r.onNewLoop(pc)
	}
	if v, ok := r.lct.lookup(pc); ok {
		r.active = nil
		r.switchTo(v, m)
		return
	}
	if r.Static {
		// Unknown loop under static tuning: stay on the default version.
		r.active = nil
		r.switchTo(0, m)
		return
	}
	st := r.trials[pc]
	if st == nil {
		st = &trialState{bestSpeed: -1}
		if len(r.trials) > 64 {
			r.trials = make(map[int]*trialState) // bound memory
		}
		r.trials[pc] = st
	}
	r.active = st
	r.switchTo(st.ver, m)
}

// Finish flushes use accounting at end of run.
func (r *Recycle) Finish(committed, cycles uint64) {
	r.account(measure{committed, cycles})
}
