package core

import "testing"

// The queue hot paths (BOQ and FQ push/pop, SIF insert/delete) run once
// per skeleton-slice hand-off and sit inside the cycle loop, so they must
// not allocate at all in steady state.
func TestQueueOpsAllocFree(t *testing.T) {
	boq := NewBOQ(16)
	if allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			boq.Push(i&1 == 0)
		}
		for i := 0; i < 16; i++ {
			boq.Pop()
		}
	}); allocs != 0 {
		t.Errorf("BOQ push/pop allocates %.1f objects per cycle, want 0", allocs)
	}

	fq := NewFQ(16)
	if allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			fq.Push(FQEntry{PC: i, Addr: uint64(i) * 64})
		}
		for i := 0; i < 16; i++ {
			fq.Pop()
		}
	}); allocs != 0 {
		t.Errorf("FQ push/pop allocates %.1f objects per cycle, want 0", allocs)
	}

	sif := NewSIF(10)
	if allocs := testing.AllocsPerRun(200, func() {
		for pc := 0; pc < 32; pc++ {
			sif.Insert(pc * 3)
		}
		for pc := 0; pc < 32; pc++ {
			sif.Delete(pc * 3)
		}
	}); allocs != 0 {
		t.Errorf("SIF insert/delete allocates %.1f objects per cycle, want 0", allocs)
	}
}

// Skeleton builds after the first must reuse the generator's scratch
// (needAt marks, work queue): each extra build may allocate only its
// resulting Skeleton, not rebuild the traversal state. The bound is
// deliberately loose — it catches a reintroduced per-node allocation
// (which shows up as thousands), not small constant-factor drift.
func TestSkeletonBuildAllocsBounded(t *testing.T) {
	prog, _, prof, _ := mixProfile()
	g := newGenerator(prog, prof)
	memSeeds := g.memorySeeds()
	biased := g.biasedBranches()
	g.build("warmup", memSeeds, nil, biased)
	allocs := testing.AllocsPerRun(20, func() {
		g.build("steady", memSeeds, nil, biased)
	})
	const maxAllocs = 64
	if allocs > maxAllocs {
		t.Errorf("steady-state skeleton build allocates %.0f objects, want <= %d", allocs, maxAllocs)
	}
}
