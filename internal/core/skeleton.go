package core

import (
	"fmt"

	"r3dla/internal/isa"
)

// Skeleton is one generated look-ahead program version: an include mask
// over the static program plus per-PC forced directions for converted
// biased branches (Sec. III-E1).
type Skeleton struct {
	Name    string
	Include []bool
	Force   []int8 // -1 = evaluate; 0 = force not-taken; 1 = force taken
	Size    int    // number of included instructions
}

// Forced returns the forced direction of pc, if any.
func (s *Skeleton) Forced(pc int) (taken bool, ok bool) {
	f := s.Force[pc]
	if f < 0 {
		return false, false
	}
	return f == 1, true
}

// Fraction reports the skeleton's static size as a fraction of the
// program.
func (s *Skeleton) Fraction() float64 {
	if len(s.Include) == 0 {
		return 0
	}
	return float64(s.Size) / float64(len(s.Include))
}

// Set is the full output of skeleton generation for one program: the
// baseline-DLA skeleton, the six recycle versions, and the T1 S-bit marks
// (which annotate the *main* thread's binary, Sec. III-C2).
type Set struct {
	Prog     *isa.Program
	Baseline *Skeleton   // version used by the (non-R3) DLA baseline
	Versions []*Skeleton // the recycle pool (six versions, Sec. III-E1)
	SBits    []bool      // per-PC T1 marks on the MT binary
	SLoop    []int       // loop-branch PC owning each S-marked load (-1)
}

// Generation thresholds (Appendix A and Sec. III-E1).
const (
	seedL1Rate      = 0.01  // memory seed: >1% chance of missing in L1
	seedL2Rate      = 0.001 // memory seed: >0.1% chance of missing in L2
	l1TargetRate    = 0.002 // "L1 prefetch targets" recycle option
	slowLatency     = 20.0  // value-reuse target: >=20 cycle disp-to-exec
	biasThreshold   = 0.999 // biased-branch conversion
	maxStoreLoadGap = 1000  // ignore far store->load deps (Appendix A)
	minBranchExec   = 32    // ignore bias of barely-executed branches
)

// NumVersions is the size of the recycle pool Generate emits (versions
// a–f of Sec. III-E1); Options.FixedVersion must lie in [0, NumVersions).
const NumVersions = 6

// Generate builds the skeleton set for prog using training statistics.
func Generate(prog *isa.Program, prof *Profile) *Set {
	g := newGenerator(prog, prof)

	// Seed categories.
	memSeeds := g.memorySeeds()
	t1Loads := g.t1Loads()
	l1Targets := g.l1Targets()
	valueTargets := g.valueTargets()
	biased := g.biasedBranches()

	memMinus := without(memSeeds, t1Loads)

	set := &Set{
		Prog:  prog,
		SBits: make([]bool, len(prog.Insts)),
		SLoop: make([]int, len(prog.Insts)),
	}
	for i := range set.SLoop {
		set.SLoop[i] = -1
	}
	for pc := range t1Loads {
		set.SBits[pc] = true
		set.SLoop[pc] = prof.LoopBranch[pc]
	}

	// Baseline DLA skeleton: all control + all memory seeds (T1 is an R3
	// optimization; the baseline keeps strided loads in the skeleton).
	set.Baseline = g.build("base", memSeeds, nil, nil)

	// Recycle pool: the "reduced" skeleton (minus T1 loads) combined with
	// the Sec. III-E1 options.
	set.Versions = []*Skeleton{
		g.build("reduced", memMinus, nil, nil),
		g.build("reduced+L1", union(memMinus, l1Targets), nil, nil),
		g.build("reduced+VR", union(memMinus, valueTargets), nil, nil),
		g.build("reduced+bias", memMinus, nil, biased),
		g.build("reduced+T1back", memSeeds, nil, nil),
		g.build("reduced+L1+VR+bias", union(union(memMinus, l1Targets), valueTargets), nil, biased),
	}
	return set
}

// GenerateSlipstream builds a SlipStream-style A-stream skeleton
// (Sundaramoorthy et al.): the full program minus ineffectual work —
// biased branches are converted to unconditional flow, but unlike the DLA
// skeleton every memory instruction stays in, so the leading thread is
// substantially larger (and slower) than DLA's.
func GenerateSlipstream(prog *isa.Program, prof *Profile) *Set {
	g := newGenerator(prog, prof)
	allMem := make(map[int]bool)
	for pc := range prog.Insts {
		if prog.Insts[pc].Op.IsMem() {
			allMem[pc] = true
		}
	}
	// SlipStream removes more aggressively-biased branches (0.99+).
	biased := make(map[int]bool)
	for pc := range prog.Insts {
		if !prog.Insts[pc].Op.IsCondBranch() {
			continue
		}
		st := &prof.PCs[pc]
		if st.Taken+st.NotTaken < minBranchExec {
			continue
		}
		if taken, p := st.Bias(); p >= 0.99 {
			biased[pc] = taken
		}
	}
	s := g.build("slipstream", allMem, nil, biased)
	return &Set{
		Prog:     prog,
		Baseline: s,
		Versions: []*Skeleton{s},
		SBits:    make([]bool, len(prog.Insts)),
		SLoop:    makeNegOnes(len(prog.Insts)),
	}
}

// GenerateCRE builds a Continuous-Runahead-Engine-style chain set
// (Hashemi et al.): only the dependence chains of the delinquent loads
// that dominate L2 misses (plus control flow to steer them). The engine
// produced from it prefetches but supplies no branch outcomes.
func GenerateCRE(prog *isa.Program, prof *Profile) *Set {
	g := newGenerator(prog, prof)
	// Rank loads by absolute L2 miss count; keep those covering 90%.
	var loads []loadMiss
	var total uint64
	for pc := range prog.Insts {
		if prog.Insts[pc].Op.IsLoad() && prof.PCs[pc].L2Miss > 0 {
			loads = append(loads, loadMiss{pc, prof.PCs[pc].L2Miss})
			total += prof.PCs[pc].L2Miss
		}
	}
	sortLoadsByMisses(loads)
	seeds := make(map[int]bool)
	var cum uint64
	for _, l := range loads {
		if total > 0 && cum*10 >= total*9 {
			break
		}
		seeds[l.pc] = true
		cum += l.misses
	}
	s := g.build("cre-chains", seeds, nil, nil)
	return &Set{
		Prog:     prog,
		Baseline: s,
		Versions: []*Skeleton{s},
		SBits:    make([]bool, len(prog.Insts)),
		SLoop:    makeNegOnes(len(prog.Insts)),
	}
}

type loadMiss struct {
	pc     int
	misses uint64
}

func sortLoadsByMisses(loads []loadMiss) {
	for i := 1; i < len(loads); i++ {
		for j := i; j > 0 && loads[j].misses > loads[j-1].misses; j-- {
			loads[j], loads[j-1] = loads[j-1], loads[j]
		}
	}
}

func makeNegOnes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	return out
}

// EmptySkeleton returns a skeleton that executes nothing (the SMT
// recycling option that gives all resources to the main thread).
func EmptySkeleton(prog *isa.Program) *Skeleton {
	s := &Skeleton{
		Name:    "empty",
		Include: make([]bool, len(prog.Insts)),
		Force:   make([]int8, len(prog.Insts)),
	}
	for i := range s.Force {
		s.Force[i] = -1
	}
	return s
}

// generator holds the static structures shared by all versions, plus the
// per-build scratch (needAt bitsets and the propagation worklist) reused
// across the seven build calls of one Generate instead of reallocated.
type generator struct {
	prog  *isa.Program
	prof  *Profile
	preds [][]int32

	needAt []uint64 // register-need bitset scratch, cleared per build
	queue  []genWork
}

// genWork is one backward-propagation worklist item of generator.build.
type genWork struct {
	pc  int
	reg uint8
}

func newGenerator(prog *isa.Program, prof *Profile) *generator {
	return &generator{
		prog:   prog,
		prof:   prof,
		preds:  predecessors(prog),
		needAt: make([]uint64, len(prog.Insts)),
	}
}

// predecessors builds the CFG predecessor lists. Fallthrough edges exist
// from every non-terminating instruction (CALL falls through to model the
// eventual return); direct branch/jump/call targets get edges; callee
// entries get edges from their call sites (so callee slices can reach
// caller-computed arguments); and every RET gets edges to every
// call-return point (a conservative over-approximation of the
// interprocedural return edges — without it, slices starting after a call
// can never reach the callee's epilogue, and state the callee restores
// before returning, such as a stack pointer, would be wrongly excluded).
// Indirect jumps (JR) contribute no edges.
func predecessors(prog *isa.Program) [][]int32 {
	preds := make([][]int32, len(prog.Insts))
	add := func(to, from int) {
		if to >= 0 && to < len(preds) {
			preds[to] = append(preds[to], int32(from))
		}
	}
	var returnPoints []int
	var rets []int
	for i := range prog.Insts {
		in := &prog.Insts[i]
		switch in.Op {
		case isa.JMP:
			add(int(in.Targ), i)
		case isa.CALL:
			add(int(in.Targ), i)
			add(i+1, i) // summary edge: the callee eventually returns here
			returnPoints = append(returnPoints, i+1)
		case isa.CALR:
			add(i+1, i)
			returnPoints = append(returnPoints, i+1)
		case isa.RET:
			rets = append(rets, i)
		case isa.JR, isa.HALT:
			// no static target edges
		default:
			if in.Op.IsCondBranch() {
				add(int(in.Targ), i)
			}
			add(i+1, i)
		}
	}
	for _, rp := range returnPoints {
		for _, r := range rets {
			add(rp, r)
		}
	}
	return preds
}

// memorySeeds selects loads exceeding the Appendix A miss thresholds.
func (g *generator) memorySeeds() map[int]bool {
	seeds := make(map[int]bool)
	for pc := range g.prog.Insts {
		if !g.prog.Insts[pc].Op.IsLoad() {
			continue
		}
		st := &g.prof.PCs[pc]
		if st.Exec == 0 {
			continue
		}
		if st.MissRateL1() > seedL1Rate || st.MissRateL2() > seedL2Rate {
			seeds[pc] = true
		}
	}
	return seeds
}

// t1Loads selects the strided in-loop loads that T1 offloads.
func (g *generator) t1Loads() map[int]bool {
	out := make(map[int]bool)
	for pc := range g.prog.Insts {
		if !g.prog.Insts[pc].Op.IsLoad() {
			continue
		}
		st := &g.prof.PCs[pc]
		if st.Strided() && g.prof.LoopBranch[pc] >= 0 {
			out[pc] = true
		}
	}
	return out
}

// l1Targets selects loads for the more aggressive "L1 prefetch targets"
// recycle option.
func (g *generator) l1Targets() map[int]bool {
	out := make(map[int]bool)
	for pc := range g.prog.Insts {
		if !g.prog.Insts[pc].Op.IsLoad() {
			continue
		}
		if g.prof.PCs[pc].MissRateL1() > l1TargetRate {
			out[pc] = true
		}
	}
	return out
}

// valueTargets selects slow instructions with more than one dependent
// (Sec. III-D1: candidates to add back for value reuse).
func (g *generator) valueTargets() map[int]bool {
	out := make(map[int]bool)
	for pc := range g.prog.Insts {
		st := &g.prof.PCs[pc]
		if st.AvgDispExec() >= slowLatency && st.DispExecN >= 16 && g.staticDependents(pc) > 1 {
			out[pc] = true
		}
	}
	return out
}

// staticDependents approximates the number of instructions consuming pc's
// result: uses of the destination register along the fallthrough window
// before redefinition.
func (g *generator) staticDependents(pc int) int {
	dest := g.prog.Insts[pc].Dest()
	if dest == isa.NoReg || dest == isa.RegZero {
		return 0
	}
	n := 0
	var buf [2]uint8
	for i := pc + 1; i < len(g.prog.Insts) && i < pc+24; i++ {
		in := &g.prog.Insts[i]
		for _, s := range in.Sources(buf[:0]) {
			if s == dest {
				n++
			}
		}
		if in.Dest() == dest {
			break
		}
		if in.Op == isa.JMP || in.Op == isa.RET || in.Op == isa.JR || in.Op == isa.HALT {
			break
		}
	}
	return n
}

// biasedBranches selects conditional branches above the bias threshold and
// returns their forced directions.
func (g *generator) biasedBranches() map[int]bool {
	out := make(map[int]bool)
	for pc := range g.prog.Insts {
		if !g.prog.Insts[pc].Op.IsCondBranch() {
			continue
		}
		st := &g.prof.PCs[pc]
		if st.Taken+st.NotTaken < minBranchExec {
			continue
		}
		taken, p := st.Bias()
		if p >= biasThreshold {
			out[pc] = taken
		}
	}
	return out
}

// build produces one skeleton version: control seeds + the given memory
// seeds + extra seeds, with biased branches (if any) converted to forced
// direction (their operand chains are then not needed).
func (g *generator) build(name string, memSeeds, extraSeeds, forced map[int]bool) *Skeleton {
	n := len(g.prog.Insts)
	s := &Skeleton{
		Name:    name,
		Include: make([]bool, n),
		Force:   make([]int8, n),
	}
	for i := range s.Force {
		s.Force[i] = -1
	}
	for pc, taken := range forced {
		if taken {
			s.Force[pc] = 1
		} else {
			s.Force[pc] = 0
		}
	}

	// needAt[pc] is a register bitset: the value of reg r is needed at the
	// *exit* of pc.
	needAt := g.needAt
	for i := range needAt {
		needAt[i] = 0
	}
	queue := g.queue[:0]
	addNeed := func(pc int, reg uint8) {
		if pc < 0 || pc >= n || reg == isa.RegZero || reg == isa.NoReg {
			return
		}
		bit := uint64(1) << (reg & 63)
		if needAt[pc]&bit == 0 {
			needAt[pc] |= bit
			queue = append(queue, genWork{pc, reg})
		}
	}

	var include func(pc int)
	needSources := func(pc int) {
		var buf [2]uint8
		for _, r := range g.prog.Insts[pc].Sources(buf[:0]) {
			for _, q := range g.preds[pc] {
				addNeed(int(q), r)
			}
		}
	}
	include = func(pc int) {
		if s.Include[pc] {
			return
		}
		s.Include[pc] = true
		s.Size++
		if s.Force[pc] >= 0 {
			return // forced branch: no operands needed
		}
		needSources(pc)
		// Memory dependences for included loads (Appendix A).
		if g.prog.Insts[pc].Op.IsLoad() {
			for _, spc := range g.prof.MemDeps[pc] {
				if abs(spc-pc) <= maxStoreLoadGap {
					include(spc)
				}
			}
		}
	}

	// Seeds: all control instructions, the memory seeds, extras.
	for pc := range g.prog.Insts {
		if g.prog.Insts[pc].Op.IsControl() {
			include(pc)
		}
	}
	for pc := range memSeeds {
		include(pc)
	}
	for pc := range extraSeeds {
		include(pc)
	}

	// Fixpoint: propagate needs backward to reaching definitions.
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		in := &g.prog.Insts[w.pc]
		if in.Dest() == w.reg {
			include(w.pc)
			continue // the definition kills further backward propagation
		}
		for _, q := range g.preds[w.pc] {
			addNeed(int(q), w.reg)
		}
	}
	g.queue = queue[:0] // keep the grown worklist for the next build
	return s
}

// Describe summarizes a skeleton for tooling.
func (s *Skeleton) Describe() string {
	forced := 0
	for _, f := range s.Force {
		if f >= 0 {
			forced++
		}
	}
	return fmt.Sprintf("%s: %d/%d insts (%.1f%%), %d forced branches",
		s.Name, s.Size, len(s.Include), 100*s.Fraction(), forced)
}

func union(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func without(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool, len(a))
	for k := range a {
		if !b[k] {
			out[k] = true
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
