package core

import (
	"r3dla/internal/emu"
	"r3dla/internal/isa"
)

// mixProgram is the shared integration-test workload: a loop combining a
// strided streaming phase, a pointer-chase phase, and data-dependent
// branches — the three behaviour classes DLA interacts with.
//
// Memory layout (provided by mixSetup):
//
//	0x10_0000: array of n words (strided reads)
//	0x40_0000: linked ring of n nodes, stride 8KB (pointer chase)
func mixProgram(outer int64, n int64) *isa.Program {
	b := isa.NewBuilder("mix")
	const (
		rOut   = 1
		rI     = 2
		rAddr  = 3
		rAcc   = 4
		rNode  = 5
		rTmp   = 6
		rN     = 7
		rBit   = 8
		rState = 9
	)
	b.Li(rOut, outer)
	b.Li(rState, 0x7e3779b97f4a7c15)
	b.Label("outer")

	// Phase 1: strided sum over the array.
	b.Li(rAddr, 0x100000)
	b.Li(rI, n)
	b.Label("stride")
	b.Ld(rTmp, rAddr, 0)
	b.R(isa.ADD, rAcc, rAcc, rTmp)
	b.I(isa.ADDI, rAddr, rAddr, 8)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "stride")

	// Phase 2: pointer chase around the ring.
	b.Li(rNode, 0x400000)
	b.Li(rI, n/4)
	b.Label("chase")
	b.Ld(rNode, rNode, 0)
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "chase")

	// Phase 3: data-dependent branches on a PRNG.
	b.Li(rI, n/2)
	b.Label("branchy")
	b.I(isa.SHLI, rTmp, rState, 13)
	b.R(isa.XOR, rState, rState, rTmp)
	b.I(isa.SHRI, rTmp, rState, 7)
	b.R(isa.XOR, rState, rState, rTmp)
	b.I(isa.ANDI, rBit, rState, 1)
	b.Br(isa.BEQ, rBit, isa.RegZero, "notinc")
	b.I(isa.ADDI, rAcc, rAcc, 3)
	b.Label("notinc")
	// A heavily biased branch (taken ~2047/2048 of the time).
	b.I(isa.ANDI, rTmp, rState, 2047)
	b.Br(isa.BNE, rTmp, isa.RegZero, "common")
	b.I(isa.ADDI, rAcc, rAcc, 7)
	b.Label("common")
	b.I(isa.ADDI, rI, rI, -1)
	b.Br(isa.BNE, rI, isa.RegZero, "branchy")

	b.I(isa.ADDI, rOut, rOut, -1)
	b.Br(isa.BNE, rOut, isa.RegZero, "outer")
	b.Li(rN, 0x800000)
	b.St(rAcc, rN, 0)
	b.Halt()
	return b.Program()
}

// mixSetup initializes the data structures mixProgram walks.
func mixSetup(n int64) func(*emu.Memory) {
	return func(m *emu.Memory) {
		for i := int64(0); i < n; i++ {
			m.Write(uint64(0x100000+i*8), uint64(i*3+1))
		}
		// Linked ring with an 8KB node stride (L1/L2-hostile).
		base := uint64(0x400000)
		for i := int64(0); i < n; i++ {
			next := base + uint64((i+1)%n)*8192
			m.Write(base+uint64(i)*8192, next)
		}
	}
}

const mixN = 512

func mixProfile() (*isa.Program, func(*emu.Memory), *Profile, *Set) {
	prog := mixProgram(1000, mixN)
	setup := mixSetup(mixN)
	prof := Collect(prog, setup, 120_000)
	set := Generate(prog, prof)
	return prog, setup, prof, set
}
