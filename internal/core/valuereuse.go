package core

// SIF is the Slow Instruction Filter of Sec. III-D1: a small counting
// Bloom filter over PCs of instructions worth value-reusing (identified at
// run time: dispatch-to-execute latency of at least 20 cycles during the
// first iterations of a loop). Counting cells make deletion possible (the
// confidence mechanism deletes a PC after a value misprediction).
type SIF struct {
	cells []uint8
	mask  uint32

	Inserts uint64
	Deletes uint64
}

// NewSIF returns a filter with 2^bits counting cells.
func NewSIF(bits int) *SIF {
	n := 1 << bits
	return &SIF{cells: make([]uint8, n), mask: uint32(n - 1)}
}

func (s *SIF) idx(pc int) (uint32, uint32) {
	h1 := uint32(pc) * 2654435761
	h2 := (uint32(pc) ^ 0x9e3779b9) * 40503
	return h1 & s.mask, h2 & s.mask
}

// Insert adds pc to the filter.
func (s *SIF) Insert(pc int) {
	i, j := s.idx(pc)
	if s.cells[i] < 255 {
		s.cells[i]++
	}
	if j != i && s.cells[j] < 255 {
		s.cells[j]++
	}
	s.Inserts++
}

// Contains reports (possibly with false positives) whether pc was
// inserted.
func (s *SIF) Contains(pc int) bool {
	i, j := s.idx(pc)
	return s.cells[i] > 0 && s.cells[j] > 0
}

// Delete removes one insertion of pc (the confidence mechanism after a
// value misprediction).
func (s *SIF) Delete(pc int) {
	i, j := s.idx(pc)
	if s.cells[i] > 0 {
		s.cells[i]--
	}
	if j != i && s.cells[j] > 0 {
		s.cells[j]--
	}
	s.Deletes++
}

// Clear empties the filter (on entering a new loop, Sec. III-D1).
func (s *SIF) Clear() {
	for i := range s.cells {
		s.cells[i] = 0
	}
}
