package core

import (
	"testing"

	"r3dla/internal/isa"
)

// Failure-injection tests: the DLA machinery must degrade gracefully, not
// deadlock or misalign, under queue pressure, pathological skeletons and
// reboot storms.

func TestTinyQueuesNoDeadlock(t *testing.T) {
	f := getFixture()
	r := f.run(Options{WithBOP: true, BOQSize: 4, FQSize: 4, VQSize: 2}, 20_000)
	if r.MT.Deadlocked {
		t.Fatal("deadlocked with tiny queues")
	}
	if r.MT.Committed < 20_000 {
		t.Fatalf("committed only %d", r.MT.Committed)
	}
}

func TestFQOverflowIsDroppedNotFatal(t *testing.T) {
	f := getFixture()
	r := f.run(Options{WithBOP: true, FQSize: 4}, 20_000)
	if r.FQDrops == 0 {
		t.Skip("no hint pressure on this workload/budget")
	}
	if r.MT.Deadlocked {
		t.Fatal("hint drops broke the run")
	}
}

func TestValueReuseSurvivesVQOverflow(t *testing.T) {
	// A 1-entry VPT forces constant drops; epoch matching must keep the
	// surviving predictions aligned (high accuracy).
	f := getFixture()
	r := f.run(Options{WithBOP: true, ValueReuse: true, VQSize: 1}, 40_000)
	if r.MT.ValuePreds == 0 {
		t.Skip("no predictions generated")
	}
	rate := float64(r.MT.ValueMispreds) / float64(r.MT.ValuePreds)
	if rate > 0.2 {
		t.Fatalf("VQ overflow misaligned value reuse: %.2f wrong", rate)
	}
}

// allForcedWrong builds a skeleton whose forced branches are deliberately
// wrong, provoking a reboot storm; the system must make forward progress
// via reboots.
func TestRebootStormProgress(t *testing.T) {
	prog, setup, prof, set := mixProfile()
	// Force every loop branch not-taken in version 0 (usually wrong).
	bad := &Skeleton{
		Name:    "sabotaged",
		Include: append([]bool(nil), set.Baseline.Include...),
		Force:   make([]int8, len(prog.Insts)),
	}
	for i := range bad.Force {
		bad.Force[i] = -1
	}
	forced := 0
	for pc := range prog.Insts {
		in := &prog.Insts[pc]
		if in.Op.IsCondBranch() && int(in.Targ) <= pc && forced < 1 {
			bad.Force[pc] = 0 // loop branches are overwhelmingly taken
			forced++
		}
	}
	sabotaged := &Set{
		Prog:     prog,
		Baseline: bad,
		Versions: []*Skeleton{bad},
		SBits:    set.SBits,
		SLoop:    set.SLoop,
	}
	sys := NewSystem(prog, setup, sabotaged, prof, Options{WithBOP: true})
	r := sys.Run(15_000)
	if r.MT.Deadlocked {
		t.Fatal("reboot storm deadlocked the system")
	}
	if r.Reboots == 0 {
		t.Fatal("sabotaged skeleton caused no reboots")
	}
	if r.MT.Committed < 15_000 {
		t.Fatalf("no forward progress under reboot storm: %d", r.MT.Committed)
	}
}

// TestLTHaltFallback: when the skeleton runs out (program end), the MT
// must finish on its own predictor.
func TestLTHaltFallback(t *testing.T) {
	b := isa.NewBuilder("short")
	b.Li(1, 3000)
	b.Label("loop")
	b.I(isa.ADDI, 2, 2, 1)
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "loop")
	b.Halt()
	prog := b.Program()
	prof := Collect(prog, nil, 10_000)
	set := Generate(prog, prof)
	sys := NewSystem(prog, nil, set, prof, Options{WithBOP: true})
	r := sys.Run(0) // run to completion
	if r.MT.Deadlocked {
		t.Fatal("deadlocked at program end")
	}
	if !sys.mtMach.Halted {
		t.Fatal("MT did not finish")
	}
}

// TestEmptySkeletonSystem: an LT running the empty skeleton produces no
// outcomes; the MT must fall back rather than hang (the SMT recycling
// option that gives all resources to the main thread).
func TestEmptySkeletonSystem(t *testing.T) {
	prog, setup, prof, set := mixProfile()
	empty := EmptySkeleton(prog)
	es := &Set{Prog: prog, Baseline: empty, Versions: []*Skeleton{empty},
		SBits: set.SBits, SLoop: set.SLoop}
	sys := NewSystem(prog, setup, es, prof, Options{WithBOP: true})
	r := sys.Run(10_000)
	if r.MT.Deadlocked {
		t.Fatal("empty skeleton deadlocked the MT")
	}
	if r.MT.Committed < 10_000 {
		t.Fatalf("MT starved behind an empty skeleton: %d", r.MT.Committed)
	}
}

// TestMaskArrivalDefault: Sec. III-A(iii): before mask bits arrive the
// hardware defaults to all-ones (include everything). A skeleton of all
// ones must behave like SlipStream-without-removal: correct, just slow.
func TestMaskArrivalDefaultAllOnes(t *testing.T) {
	prog, setup, prof, set := mixProfile()
	all := &Skeleton{Name: "all-ones", Include: make([]bool, len(prog.Insts)),
		Force: make([]int8, len(prog.Insts))}
	for i := range all.Include {
		all.Include[i] = true
		all.Force[i] = -1
	}
	as := &Set{Prog: prog, Baseline: all, Versions: []*Skeleton{all},
		SBits: set.SBits, SLoop: set.SLoop}
	sys := NewSystem(prog, setup, as, prof, Options{WithBOP: true})
	r := sys.Run(15_000)
	if r.MT.Deadlocked {
		t.Fatal("all-ones mask deadlocked")
	}
	// With a full copy of the program, LT diverges only through timing,
	// so BOQ accuracy should be near-perfect.
	if r.BOQWrong > r.MT.Committed/1000 {
		t.Fatalf("all-ones skeleton diverged: %d wrong outcomes", r.BOQWrong)
	}
}
