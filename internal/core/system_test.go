package core

import (
	"context"
	"sync"
	"testing"
)

// Shared fixture: profiling + skeleton generation are relatively
// expensive, so compute once.
type fixture struct {
	run func(opt Options, budget uint64) *Results
}

var fixtureOnce sync.Once
var fix *fixture

func getFixture() *fixture {
	fixtureOnce.Do(func() {
		prog, setup, prof, set := mixProfile()
		fix = &fixture{
			run: func(opt Options, budget uint64) *Results {
				sys := NewSystem(prog, setup, set, prof, opt)
				return sys.Run(budget)
			},
		}
	})
	return fix
}

const testBudget = 60_000

func TestMTAloneRuns(t *testing.T) {
	r := getFixture().run(Options{Disable: true, WithBOP: true}, testBudget)
	if r.MT.Deadlocked {
		t.Fatal("baseline deadlocked")
	}
	if r.MT.Committed < testBudget {
		t.Fatalf("committed %d < budget", r.MT.Committed)
	}
	if r.IPC() <= 0 {
		t.Fatal("zero IPC")
	}
}

func TestDLARunsAndStaysAligned(t *testing.T) {
	r := getFixture().run(DLAOptions(), testBudget)
	if r.MT.Deadlocked {
		t.Fatal("DLA deadlocked")
	}
	if r.MT.Committed < testBudget {
		t.Fatalf("committed %d < budget", r.MT.Committed)
	}
	// The BOQ-fed direction stream must be overwhelmingly correct:
	// mispredict rate well under the core predictor's.
	wrongPerK := float64(r.BOQWrong) / float64(r.MT.Committed) * 1000
	if wrongPerK > 5 {
		t.Fatalf("BOQ wrong %.2f per kinst: LT diverges too much", wrongPerK)
	}
}

func TestDLASpeedsUpMemoryBoundMix(t *testing.T) {
	f := getFixture()
	base := f.run(Options{Disable: true, WithBOP: true}, testBudget)
	dla := f.run(DLAOptions(), testBudget)
	if dla.IPC() <= base.IPC() {
		t.Fatalf("DLA (%.3f) not faster than baseline (%.3f)", dla.IPC(), base.IPC())
	}
}

func TestR3FasterThanDLA(t *testing.T) {
	f := getFixture()
	dla := f.run(DLAOptions(), testBudget)
	r3 := f.run(R3Options(), testBudget)
	if r3.MT.Deadlocked {
		t.Fatal("R3 deadlocked")
	}
	// R3 should not lose to baseline DLA on the mix workload (the paper's
	// average gain is 1.25x; allow noise but no regression).
	if r3.IPC() < dla.IPC()*0.97 {
		t.Fatalf("R3-DLA (%.3f) slower than DLA (%.3f)", r3.IPC(), dla.IPC())
	}
}

func TestLTExecutesFewerInstructions(t *testing.T) {
	r := getFixture().run(DLAOptions(), testBudget)
	if r.LT == nil {
		t.Fatal("no LT metrics")
	}
	if r.LT.Committed >= r.MT.Committed {
		t.Fatalf("LT committed %d >= MT %d: skeleton not reducing work",
			r.LT.Committed, r.MT.Committed)
	}
	if r.LTSkipped == 0 {
		t.Fatal("LT never skipped a masked instruction")
	}
}

func TestRebootsAreBounded(t *testing.T) {
	r := getFixture().run(DLAOptions(), testBudget)
	// Paper: ~0.6 reboots per 10k instructions on average. Allow a loose
	// bound of 20 per 10k.
	per10k := float64(r.Reboots) / float64(r.MT.Committed) * 10000
	if per10k > 20 {
		t.Fatalf("reboot storm: %.1f per 10k instructions", per10k)
	}
}

func TestT1IssuesPrefetches(t *testing.T) {
	f := getFixture()
	r := f.run(Options{WithBOP: true, T1: true}, testBudget)
	if r.T1Issued == 0 {
		t.Fatal("T1 enabled but issued no prefetches on a strided workload")
	}
}

func TestT1ShrinksLT(t *testing.T) {
	f := getFixture()
	dla := f.run(DLAOptions(), testBudget)
	t1 := f.run(Options{WithBOP: true, T1: true}, testBudget)
	if t1.LT.Committed >= dla.LT.Committed {
		t.Fatalf("T1 did not shrink LT work: %d vs %d", t1.LT.Committed, dla.LT.Committed)
	}
}

func TestValueReuseProducesPredictions(t *testing.T) {
	f := getFixture()
	r := f.run(Options{WithBOP: true, ValueReuse: true}, testBudget)
	if r.MT.ValuePreds == 0 {
		t.Skip("no value predictions on this workload (SIF found no slow insts)")
	}
	// >98% of LT values should match (paper's empirical observation).
	rate := float64(r.MT.ValueMispreds) / float64(r.MT.ValuePreds)
	if rate > 0.1 {
		t.Fatalf("value misprediction rate %.3f too high", rate)
	}
}

func TestRecycleSwitchesSkeletons(t *testing.T) {
	f := getFixture()
	r := f.run(Options{WithBOP: true, Recycle: true}, testBudget)
	if r.SkeletonUse == nil {
		t.Fatal("no skeleton use accounting")
	}
	used := 0
	var total uint64
	for _, u := range r.SkeletonUse {
		if u > 0 {
			used++
		}
		total += u
	}
	if used < 2 {
		t.Fatalf("recycle never tried more than %d versions", used)
	}
	if total == 0 {
		t.Fatal("no instructions attributed to any version")
	}
}

func TestFetchBufferOptionApplies(t *testing.T) {
	f := getFixture()
	r := f.run(Options{WithBOP: true, FetchBuffer: true}, testBudget)
	if r.MT.Deadlocked {
		t.Fatal("deadlock with fetch buffer")
	}
}

func TestNoPrefetcherConfigsRun(t *testing.T) {
	f := getFixture()
	base := f.run(Options{Disable: true}, testBudget)
	dla := f.run(Options{}, testBudget)
	if base.MT.Deadlocked || dla.MT.Deadlocked {
		t.Fatal("noPF configurations deadlocked")
	}
	// Without BOP the baseline is slower than with it (mix is
	// prefetch-friendly in phase 1).
	withBOP := f.run(Options{Disable: true, WithBOP: true}, testBudget)
	if withBOP.IPC() <= base.IPC() {
		t.Fatalf("BOP does not help the baseline: %.3f vs %.3f", withBOP.IPC(), base.IPC())
	}
}

func TestSmallBOQBoundsLookahead(t *testing.T) {
	f := getFixture()
	r := f.run(Options{WithBOP: true, BOQSize: 8}, testBudget)
	if r.MT.Deadlocked {
		t.Fatal("deadlocked with tiny BOQ")
	}
	big := f.run(Options{WithBOP: true, BOQSize: 512}, testBudget)
	// Deeper look-ahead should not be slower (usually faster).
	if big.IPC() < r.IPC()*0.9 {
		t.Fatalf("512-entry BOQ (%.3f) much slower than 8-entry (%.3f)?", big.IPC(), r.IPC())
	}
}

func TestRebootCostMatters(t *testing.T) {
	// Paper: raising reboot cost 64 -> 200 degrades performance < 2%.
	f := getFixture()
	cheap := f.run(DLAOptions(), testBudget)
	opt := DLAOptions()
	opt.RebootCost = 200
	dear := f.run(opt, testBudget)
	if dear.IPC() < cheap.IPC()*0.90 {
		t.Fatalf("reboot cost 200 degraded IPC by >10%%: %.3f vs %.3f", dear.IPC(), cheap.IPC())
	}
}

func TestFixedVersionSelection(t *testing.T) {
	f := getFixture()
	for v := 0; v < NumVersions; v++ {
		opt := Options{WithBOP: true, FixedVersion: v, HasFixedVersion: true}
		r := f.run(opt, testBudget/4)
		if r.MT.Deadlocked {
			t.Fatalf("version %d deadlocked", v)
		}
	}
	// Unset fixed version exercises the baseline-skeleton path.
	r := f.run(Options{WithBOP: true}, testBudget/4)
	if r.MT.Deadlocked {
		t.Fatal("baseline skeleton deadlocked")
	}
}

// TestFixedVersionZeroSelectsReducedSkeleton is the regression test for
// the old sentinel bug: fill() rewrote FixedVersion 0 to -1, so version 0
// (the reduced skeleton) silently ran the baseline skeleton instead. With
// the explicit HasFixedVersion flag, version 0 must be reachable — the
// reduced skeleton strips T1-covered strided loads, so its LT commits
// strictly fewer instructions than the baseline skeleton's.
func TestFixedVersionZeroSelectsReducedSkeleton(t *testing.T) {
	f := getFixture()
	base := f.run(DLAOptions(), testBudget/2)
	opt := DLAOptions()
	opt.FixedVersion, opt.HasFixedVersion = 0, true
	v0 := f.run(opt, testBudget/2)
	if v0.LT == nil || base.LT == nil {
		t.Fatal("missing LT metrics")
	}
	if v0.LT.Committed == base.LT.Committed && v0.LTSkipped == base.LTSkipped {
		t.Fatalf("FixedVersion 0 ran the baseline skeleton (LT committed %d, skipped %d)",
			v0.LT.Committed, v0.LTSkipped)
	}
	if v0.LT.Committed >= base.LT.Committed {
		t.Fatalf("version 0 (reduced) LT committed %d >= baseline skeleton's %d",
			v0.LT.Committed, base.LT.Committed)
	}
}

// TestRunContextCancel asserts a canceled context stops a run early and
// surfaces the context's error, while a nil/background context runs to
// completion.
func TestRunContextCancel(t *testing.T) {
	prog, setup, prof, set := mixProfile()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := NewSystem(prog, setup, set, prof, DLAOptions())
	r, err := sys.RunContext(ctx, testBudget)
	if err == nil {
		t.Fatal("RunContext returned nil error on canceled context")
	}
	if r == nil {
		t.Fatal("RunContext returned nil results on cancellation")
	}
	if r.MT.Committed >= testBudget {
		t.Fatalf("canceled run completed the full budget (%d)", r.MT.Committed)
	}
}
