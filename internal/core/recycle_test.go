package core

import "testing"

// driveLoop feeds the controller n loop-branch commits for loopPC,
// advancing committed/cycles at the given per-iteration IPC.
type rcDriver struct {
	rc        *Recycle
	committed uint64
	cycles    uint64
}

func (d *rcDriver) iterate(loopPC int, insts uint64, ipc float64) {
	d.committed += insts
	d.cycles += uint64(float64(insts) / ipc)
	d.rc.OnLoopBranch(loopPC, d.committed, d.cycles)
}

func TestRecycleSweepsAllVersionsAndPicksFastest(t *testing.T) {
	var switches []int
	rc := NewRecycle(3, map[int]bool{100: true}, func(v int) { switches = append(switches, v) }, nil)
	rc.TrialInsts = 100

	// Version speeds: v0 slow, v1 fastest, v2 middling.
	speed := map[int]float64{0: 0.5, 1: 2.0, 2: 1.0}
	d := &rcDriver{rc: rc}
	for i := 0; i < 60; i++ {
		d.iterate(100, 20, speed[rc.Current()])
	}
	if rc.Current() != 1 {
		t.Fatalf("controller settled on version %d, want 1 (the fastest)", rc.Current())
	}
	if v, ok := rc.lct.lookup(100); !ok || v != 1 {
		t.Fatalf("LCT entry = %d,%v; want 1", v, ok)
	}
}

func TestRecycleUsesLCTOnRevisit(t *testing.T) {
	rc := NewRecycle(2, map[int]bool{1: true, 2: true}, nil, nil)
	rc.TrialInsts = 50
	speed := map[int]float64{0: 1.0, 1: 3.0}
	d := &rcDriver{rc: rc}
	// Finish loop 1's sweep.
	for i := 0; i < 30; i++ {
		d.iterate(1, 20, speed[rc.Current()])
	}
	if rc.Current() != 1 {
		t.Fatalf("loop 1 settled on %d", rc.Current())
	}
	// Different loop, then revisit loop 1: must jump straight to 1.
	d.iterate(2, 20, 1)
	swBefore := rc.Switches
	d.iterate(1, 20, 1)
	if rc.Current() != 1 {
		t.Fatal("LCT not consulted on revisit")
	}
	if rc.Switches > swBefore+1 {
		t.Fatal("revisit restarted a trial instead of using the LCT")
	}
}

func TestRecycleResumesInterruptedTrial(t *testing.T) {
	rc := NewRecycle(4, map[int]bool{1: true, 2: true}, nil, nil)
	rc.TrialInsts = 100
	d := &rcDriver{rc: rc}
	// Partial trial on loop 1 (not enough insts to finish a version).
	d.iterate(1, 30, 1)
	d.iterate(1, 30, 1)
	verBefore := rc.trials[1].ver
	// Interleave loop 2.
	d.iterate(2, 30, 1)
	// Return to loop 1: trial must resume, not restart.
	d.iterate(1, 30, 1)
	if rc.trials[1] == nil {
		t.Fatal("trial state dropped on loop interleave")
	}
	if rc.trials[1].ver < verBefore {
		t.Fatal("trial restarted from scratch")
	}
}

func TestRecycleStaticModeNeverTrials(t *testing.T) {
	var switches []int
	rc := NewRecycle(6, map[int]bool{1: true}, func(v int) { switches = append(switches, v) }, nil)
	rc.Static = true
	rc.Preload(1, 4)
	d := &rcDriver{rc: rc}
	for i := 0; i < 50; i++ {
		d.iterate(1, 20, 1)
	}
	if rc.Current() != 4 {
		t.Fatalf("static mode ignored preload: version %d", rc.Current())
	}
	if len(switches) != 1 {
		t.Fatalf("static mode switched %d times, want exactly 1", len(switches))
	}
}

func TestRecycleAccountsUsage(t *testing.T) {
	rc := NewRecycle(2, map[int]bool{1: true}, nil, nil)
	rc.TrialInsts = 100
	d := &rcDriver{rc: rc}
	for i := 0; i < 40; i++ {
		d.iterate(1, 25, 1)
	}
	rc.Finish(d.committed, d.cycles)
	var total uint64
	for _, u := range rc.UseInsts {
		total += u
	}
	if total != d.committed {
		t.Fatalf("usage accounting: %d attributed of %d committed", total, d.committed)
	}
}

func TestRecycleNewLoopCallback(t *testing.T) {
	var loops []int
	rc := NewRecycle(2, map[int]bool{1: true, 2: true},
		nil, func(pc int) { loops = append(loops, pc) })
	d := &rcDriver{rc: rc}
	d.iterate(1, 10, 1)
	d.iterate(1, 10, 1)
	d.iterate(2, 10, 1)
	d.iterate(1, 10, 1)
	want := []int{1, 2, 1}
	if len(loops) != len(want) {
		t.Fatalf("new-loop events %v, want %v", loops, want)
	}
}
