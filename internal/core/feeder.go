package core

import (
	"r3dla/internal/emu"
	"r3dla/internal/pipeline"
)

// SkeletonFeeder walks a program under the active skeleton mask: masked-off
// instructions are skipped without execution ("deleted immediately upon
// fetch", Sec. III-A(iii)), forced branches follow their bias without
// evaluating the condition. The active skeleton can be switched at any
// time (recycling); control instructions are present in every version, so
// the BOQ stream stays aligned across switches.
type SkeletonFeeder struct {
	M    *emu.Machine
	skel *Skeleton

	cur  emu.DynInst
	have bool

	Budget  uint64 // stop after this many skeleton instructions (0 = off)
	fed     uint64
	Skipped uint64 // masked-off instructions stepped over
}

var _ pipeline.Feeder = (*SkeletonFeeder)(nil)

// NewSkeletonFeeder returns a feeder over m using skel.
func NewSkeletonFeeder(m *emu.Machine, skel *Skeleton) *SkeletonFeeder {
	return &SkeletonFeeder{M: m, skel: skel}
}

// SetSkeleton switches the active version (recycle controller).
func (f *SkeletonFeeder) SetSkeleton(s *Skeleton) { f.skel = s }

// Skeleton reports the active version.
func (f *SkeletonFeeder) Skeleton() *Skeleton { return f.skel }

// Peek returns the next skeleton instruction.
func (f *SkeletonFeeder) Peek() (emu.DynInst, bool) {
	if f.have {
		return f.cur, true
	}
	if f.Budget > 0 && f.fed >= f.Budget {
		return emu.DynInst{}, false
	}
	for !f.M.Halted {
		pc := f.M.PC
		if pc < 0 || pc >= len(f.skel.Include) {
			return emu.DynInst{}, false
		}
		if !f.skel.Include[pc] {
			// Masked off. Control instructions are always included, so
			// falling through is always the correct flow.
			f.M.PC++
			f.Skipped++
			continue
		}
		if taken, forced := f.skel.Forced(pc); forced {
			f.cur = f.M.StepForced(taken)
		} else {
			f.cur = f.M.Step()
		}
		f.have = true
		f.fed++
		return f.cur, true
	}
	return emu.DynInst{}, false
}

// Advance consumes the peeked instruction.
func (f *SkeletonFeeder) Advance() { f.have = false }

// Reset drops any peeked instruction (reboot path: the machine state is
// about to be replaced).
func (f *SkeletonFeeder) Reset() { f.have = false }
