package chaos

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestSoakPassesAndReplays is the harness's own soak: one full chaos run
// must hold every invariant, and a second run with the same seed must
// render byte-identical report output — the replayability contract the
// CI smoke compares across processes.
func TestSoakPassesAndReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("full soak in -short mode")
	}
	run := func() []byte {
		t.Helper()
		rep, err := Soak(context.Background(), Config{Seed: 7, Kills: 1, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass() {
			var b bytes.Buffer
			rep.Render(&b)
			t.Fatalf("soak failed invariants:\n%s", b.String())
		}
		var b bytes.Buffer
		if err := rep.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first := run()
	if second := run(); !bytes.Equal(first, second) {
		t.Fatalf("same seed rendered different reports:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if !strings.Contains(string(first), "result: PASS") {
		t.Fatalf("report missing verdict:\n%s", first)
	}
}

// TestSoakRejectsLoneKilledServer: kills require a survivor.
func TestSoakRejectsLoneKilledServer(t *testing.T) {
	if _, err := Soak(context.Background(), Config{Seed: 1, Servers: 1, Kills: 1}); err == nil {
		t.Fatal("single-server soak with kills was accepted")
	}
}

// TestReportRender pins the report wire format: a failing invariant
// renders FAIL with its detail and flips the verdict.
func TestReportRender(t *testing.T) {
	rep := &Report{
		Seed: 3, Servers: 2, Budget: 2000,
		Workloads: []string{"mcf", "libq"},
		Schedule:  []string{"resultstore.put torn prob=1 limit=1"},
		Invariants: []Invariant{
			{Name: "sweep-byte-identity", Pass: true},
			{Name: "goroutine-leak", Pass: false, Detail: "3 goroutines above the pre-soak count after teardown"},
		},
	}
	if rep.Pass() {
		t.Fatal("report with a failing invariant passed")
	}
	var b bytes.Buffer
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"seed:      3",
		"workloads: mcf,libq",
		"  resultstore.put torn prob=1 limit=1",
		"sweep-byte-identity    PASS",
		"goroutine-leak         FAIL",
		"3 goroutines above the pre-soak count",
		"result: FAIL",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
