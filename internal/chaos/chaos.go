// Package chaos is the soak harness behind `r3dla chaos`: it boots an
// in-process mini-fleet of r3dlad servers on real loopback sockets, arms
// a seeded fault schedule on every layer the fault plane reaches (result
// store, prep cache, sweep journal, fleet transport, server handlers),
// drives concurrent sweep + explore + run traffic through a fleet pool —
// with scheduled hard kills and restarts of backends along the way — and
// then asserts the system's robustness invariants:
//
//   - byte-identity: every output (sweep report, exploration report,
//     individual run results) is byte-identical to a fault-free local
//     baseline computed first;
//   - journal quarantine: damage injected into the checkpoint journal is
//     quarantined on resume and the resumed report is byte-identical —
//     no corrupt line ever escapes into results;
//   - metrics monotone: server counters sampled throughout the soak
//     (including across kill/restart cycles) never regress;
//   - goroutine leak: after teardown the process settles back to its
//     pre-soak goroutine count.
//
// The run is replayable: the schedule, the traffic plan and every random
// draw derive from one seed, so `r3dla chaos -seed S` renders the same
// report bytes on every passing run — determinism under failure, the
// same contract the simulator makes under concurrency.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"r3dla/internal/dse"
	"r3dla/internal/faultinject"
	"r3dla/internal/fleet"
	"r3dla/internal/lab"
	"r3dla/internal/resultstore"
	"r3dla/internal/sweep"
)

// Config parameterizes one soak.
type Config struct {
	Seed    int64     // drives the schedule and every random draw
	Servers int       // mini-fleet size (default 2, minimum 2 when Kills > 0)
	Budget  uint64    // committed instructions per simulation (default 2000)
	Kills   int       // scheduled kill/restart cycles (default 1)
	Dir     string    // scratch directory (default: a fresh temp dir, removed on success)
	Diag    io.Writer // diagnostics stream (default: discard); NOT byte-stable
}

// Invariant is one checked property of the soak.
type Invariant struct {
	Name   string
	Pass   bool
	Detail string // populated only on failure; not part of the stable report
}

// Report is the outcome of one soak. Everything Render writes for a
// passing run is a pure function of the Config, so two runs with the
// same seed produce byte-identical reports.
type Report struct {
	Seed         int64
	Servers      int
	Budget       uint64
	Workloads    []string
	Kills        int
	Schedule     []string
	SweepCells   int
	ExploreEvals int
	RunRequests  int
	Invariants   []Invariant
}

// Pass reports whether every invariant held.
func (r *Report) Pass() bool {
	for _, inv := range r.Invariants {
		if !inv.Pass {
			return false
		}
	}
	return true
}

// Render writes the report. Passing runs render deterministically;
// failing invariants append their (free-form) detail lines.
func (r *Report) Render(w io.Writer) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "r3dla chaos soak\n")
	fmt.Fprintf(&b, "seed:      %d\n", r.Seed)
	fmt.Fprintf(&b, "servers:   %d\n", r.Servers)
	fmt.Fprintf(&b, "budget:    %d\n", r.Budget)
	fmt.Fprintf(&b, "workloads: %s\n", joinList(r.Workloads))
	fmt.Fprintf(&b, "kills:     %d\n", r.Kills)
	fmt.Fprintf(&b, "schedule:\n")
	for _, line := range r.Schedule {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	fmt.Fprintf(&b, "traffic:\n")
	fmt.Fprintf(&b, "  sweep:   %d cells\n", r.SweepCells)
	fmt.Fprintf(&b, "  explore: %d evaluations\n", r.ExploreEvals)
	fmt.Fprintf(&b, "  runs:    %d requests\n", r.RunRequests)
	fmt.Fprintf(&b, "invariants:\n")
	for _, inv := range r.Invariants {
		verdict := "PASS"
		if !inv.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  %-22s %s\n", inv.Name, verdict)
		if !inv.Pass && inv.Detail != "" {
			fmt.Fprintf(&b, "    %s\n", inv.Detail)
		}
	}
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "result: %s\n", verdict)
	_, err := w.Write(b.Bytes())
	return err
}

func joinList(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// The fixed traffic plan. Small on purpose: the soak's value is in the
// interleaving of faults with concurrent traffic, not in simulation
// volume — CI runs it under -race twice and compares report bytes.
var (
	soakWorkloads = []string{"mcf", "libq"}

	runConfigs = []lab.ConfigSpec{
		{Preset: "baseline"},
		{Preset: "dla"},
		{Preset: "r3"},
		{Preset: "r3", BOQSize: intp(256)},
	}
)

func intp(v int) *int { return &v }

func sweepSpec(budget uint64) sweep.Spec {
	return sweep.Spec{
		Workloads: soakWorkloads,
		Budget:    budget,
		Axes: sweep.Axes{
			Preset:  []string{"dla", "r3"},
			BOQSize: []int{128, 512},
		},
	}
}

func exploreSpec(seed int64, budget uint64) dse.Spec {
	return dse.Spec{
		Space: sweep.Spec{
			Workloads: soakWorkloads[:1],
			Budget:    budget,
			Axes: sweep.Axes{
				Preset:  []string{"r3"},
				BOQSize: []int{16, 64, 256, 1024},
				FQSize:  []int{16, 64},
			},
		},
		Strategy: dse.StrategyRandom,
		Seed:     seed,
		Samples:  6,
	}
}

// armSchedule builds the seeded fault schedule. Arm order is fixed;
// the seed chooses offsets, probabilities, delays and damage positions,
// so the rendered schedule is a deterministic function of the seed.
// Every destructive policy is Limit-bounded: the soak must degrade the
// system, not wedge it (retry budgets absorb bounded fault chains).
func armSchedule(p *faultinject.Plane, seed int64) {
	s := faultinject.Rand(seed, "chaos.schedule")
	p.MustArm(faultinject.Policy{Point: faultinject.RemoteConnect, Mode: faultinject.Error, Limit: 3, After: s.Intn(4)})
	p.MustArm(faultinject.Policy{Point: faultinject.RemoteConnect, Mode: faultinject.Delay, Delay: time.Duration(1+s.Intn(5)) * time.Millisecond, Prob: 0.5, Limit: 4})
	p.MustArm(faultinject.Policy{Point: faultinject.RemoteStream, Mode: faultinject.Drop, Drop: int64(40 + s.Intn(200)), Limit: 2, After: s.Intn(3)})
	p.MustArm(faultinject.Policy{Point: faultinject.ServerRun, Mode: faultinject.Error, Limit: 3, After: s.Intn(4)})
	p.MustArm(faultinject.Policy{Point: faultinject.ServerRun, Mode: faultinject.Delay, Delay: time.Duration(1+s.Intn(8)) * time.Millisecond, Prob: 0.5, Limit: 4})
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStoreGet, Mode: faultinject.Error, Limit: 2})
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.Torn, Limit: 1, After: s.Intn(3)})
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.Corrupt, Limit: 1, After: s.Intn(3)})
	p.MustArm(faultinject.Policy{Point: faultinject.ResultStorePut, Mode: faultinject.ENOSPC, Limit: 1})
	p.MustArm(faultinject.Policy{Point: faultinject.PrepCacheLoad, Mode: faultinject.Error, Limit: 1})
	p.MustArm(faultinject.Policy{Point: faultinject.PrepCacheStore, Mode: faultinject.Torn, Limit: 1})
	p.MustArm(faultinject.Policy{Point: faultinject.JournalAppend, Mode: faultinject.Torn, Limit: 1, After: 1 + s.Intn(3)})
	p.MustArm(faultinject.Policy{Point: faultinject.JournalAppend, Mode: faultinject.Corrupt, Limit: 1, After: 3 + s.Intn(3)})
}

// backend is one mini-fleet member: a shared Lab + Server handler that
// survives kill/restart cycles (only the http.Server and listener are
// replaced, so counters, caches and the store stay monotone and warm —
// exactly like a crashed daemon restarting over its directories).
type backend struct {
	name  string
	api   *lab.Server
	addr  string
	store *resultstore.Store

	mu  sync.Mutex
	srv *http.Server
	lis net.Listener
}

func (b *backend) serve() {
	b.mu.Lock()
	srv, lis := b.srv, b.lis
	b.mu.Unlock()
	srv.Serve(lis) // returns on Close; error is expected teardown noise
}

// kill hard-closes the backend: the listener and every active
// connection drop immediately (in-flight clients see a reset).
func (b *backend) kill() {
	b.mu.Lock()
	srv := b.srv
	b.mu.Unlock()
	srv.Close()
}

// restart rebinds the same address and serves again. The address was
// just released by kill, but the OS may lag; retry briefly.
func (b *backend) restart() error {
	var lis net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if lis, err = net.Listen("tcp", b.addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("chaos: restart %s: %v", b.name, err)
	}
	b.mu.Lock()
	b.srv = &http.Server{Handler: b.api}
	b.lis = lis
	b.mu.Unlock()
	go b.serve()
	return nil
}

func (b *backend) shutdown() {
	b.kill()
}

// newBackend boots one server: its own Lab (shared plane on the prep
// cache), its own result store (shared plane), and the server-side
// fault gate.
func newBackend(i int, dir string, budget uint64, plane *faultinject.Plane) (*backend, error) {
	name := fmt.Sprintf("backend-%d", i)
	storeDir := filepath.Join(dir, name, "store")
	prepDir := filepath.Join(dir, name, "prep")
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		return nil, err
	}
	l, err := lab.New(
		lab.WithBudget(budget),
		lab.WithJobs(2),
		lab.WithPrepCache(prepDir),
		lab.WithFaults(plane),
	)
	if err != nil {
		return nil, err
	}
	st, err := resultstore.Open(storeDir, lab.ResultsFingerprint, 0)
	if err != nil {
		return nil, err
	}
	st.SetFaults(plane)
	api := lab.NewServer(l,
		lab.WithMaxInflight(16),
		lab.WithResultStore(st),
		lab.WithServerFaults(plane),
	)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	b := &backend{
		name:  name,
		api:   api,
		addr:  lis.Addr().String(),
		store: st,
		srv:   &http.Server{Handler: api},
		lis:   lis,
	}
	go b.serve()
	return b, nil
}

// monitor samples every backend's /v1/stats throughout the soak and
// asserts the counters never regress — including across kill/restart
// cycles, where the Server object (and so its counters) survives the
// dead sockets. Fetch errors during a blackout are skipped, not
// violations.
type monitor struct {
	backends []*backend
	hc       *http.Client
	stop     chan struct{}
	done     chan struct{}

	mu         sync.Mutex
	samples    int
	violations []string
	last       map[string][]int64
}

func newMonitor(backends []*backend) *monitor {
	m := &monitor{
		backends: backends,
		hc:       &http.Client{Timeout: 2 * time.Second},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		last:     make(map[string][]int64),
	}
	go m.loop()
	return m
}

func counterVector(st *lab.Stats) []int64 {
	return []int64{
		st.Completed, st.Canceled, int64(st.Runs), st.Coalesced,
		st.Interactive.Admitted, st.Interactive.Shed,
		st.Batch.Admitted, st.Batch.Shed,
		st.Store.Puts, st.Store.Hits, st.Store.Misses, st.Store.Evictions,
	}
}

var counterNames = []string{
	"completed", "canceled", "runs", "coalesced_waiters",
	"interactive.admitted", "interactive.shed",
	"batch.admitted", "batch.shed",
	"store.puts", "store.hits", "store.misses", "store.evictions",
}

func (m *monitor) loop() {
	defer close(m.done)
	tick := time.NewTicker(15 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			for _, b := range m.backends {
				m.sample(b)
			}
		}
	}
}

func (m *monitor) sample(b *backend) {
	resp, err := m.hc.Get("http://" + b.addr + "/v1/stats")
	if err != nil {
		return // blackout window (killed backend): not a violation
	}
	var st lab.Stats
	derr := json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if derr != nil {
		return
	}
	vec := counterVector(&st)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples++
	if prev, ok := m.last[b.name]; ok {
		for i, v := range vec {
			if v < prev[i] {
				m.violations = append(m.violations,
					fmt.Sprintf("%s: counter %s regressed %d -> %d", b.name, counterNames[i], prev[i], v))
			}
		}
	}
	m.last[b.name] = vec
}

func (m *monitor) finish() (samples int, violations []string) {
	close(m.stop)
	<-m.done
	m.hc.CloseIdleConnections()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.samples, m.violations
}

// killer executes the seeded kill plan: after the pool's cumulative
// backend-call counter crosses each threshold, one backend is
// hard-killed, left dark briefly, and restarted on the same address.
// Thresholds are request-count-based, not wall-clock-based, so the plan
// is a function of the seed even on wildly different machines.
func killer(ctx context.Context, seed int64, kills int, backends []*backend, pool *fleet.Pool, diag io.Writer, stop <-chan struct{}) {
	s := faultinject.Rand(seed, "chaos.kills")
	threshold := int64(3 + s.Intn(5))
	for k := 0; k < kills; k++ {
		victim := backends[s.Intn(len(backends))]
		for pool.BackendCalls() < threshold {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		fmt.Fprintf(diag, "chaos: kill %d: %s after %d backend calls\n", k, victim.name, pool.BackendCalls())
		victim.kill()
		time.Sleep(30 * time.Millisecond)
		if err := victim.restart(); err != nil {
			fmt.Fprintf(diag, "chaos: %v\n", err)
			return
		}
		fmt.Fprintf(diag, "chaos: kill %d: %s restarted\n", k, victim.name)
		threshold += int64(6 + s.Intn(6))
	}
}

func reportJSON(rep interface{ WriteJSON(io.Writer) error }) ([]byte, error) {
	var b bytes.Buffer
	if err := rep.WriteJSON(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// baseline holds the fault-free expected bytes for every traffic stream.
type baseline struct {
	lab     *lab.Lab // kept: the journal-resume pass re-runs cells on it
	sweep   []byte
	explore []byte
	runs    [][]byte
}

// computeBaseline runs the whole traffic plan on one local fault-free
// Lab. Determinism makes these the expected bytes for the chaos pass no
// matter what the fault plane does.
func computeBaseline(ctx context.Context, cfg Config) (*baseline, error) {
	l, err := lab.New(lab.WithBudget(cfg.Budget))
	if err != nil {
		return nil, err
	}
	bl := &baseline{lab: l}

	sres, err := sweep.Run(ctx, l, sweepSpec(cfg.Budget), sweep.Options{})
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline sweep: %w", err)
	}
	if bl.sweep, err = reportJSON(sres.Report()); err != nil {
		return nil, err
	}

	eres, err := dse.Explore(ctx, l, exploreSpec(cfg.Seed, cfg.Budget), dse.Options{})
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline explore: %w", err)
	}
	if bl.explore, err = reportJSON(eres.Report()); err != nil {
		return nil, err
	}

	for i, c := range runConfigs {
		w := soakWorkloads[i%len(soakWorkloads)]
		res, err := l.Run(ctx, lab.RunRequest{Workload: w, Config: c, Budget: cfg.Budget})
		if err != nil {
			return nil, fmt.Errorf("chaos: baseline run %s: %w", w, err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		bl.runs = append(bl.runs, raw)
	}
	return bl, nil
}

// Soak executes one chaos soak and returns its report. A non-nil error
// means the harness itself could not run (setup failure, traffic that
// never completed); invariant failures are reported in the Report, not
// as errors.
func Soak(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Servers == 0 {
		cfg.Servers = 2
	}
	if cfg.Budget == 0 {
		cfg.Budget = 2000
	}
	if cfg.Kills < 0 {
		cfg.Kills = 0
	}
	if cfg.Kills > 0 && cfg.Servers < 2 {
		return nil, errors.New("chaos: kills require at least 2 servers (a lone killed backend strands traffic)")
	}
	if cfg.Diag == nil {
		cfg.Diag = io.Discard
	}
	cleanup := false
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "r3dla-chaos-*")
		if err != nil {
			return nil, err
		}
		cfg.Dir = dir
		cleanup = true
	}

	goroutines := runtime.NumGoroutine()

	rep := &Report{
		Seed:      cfg.Seed,
		Servers:   cfg.Servers,
		Budget:    cfg.Budget,
		Workloads: soakWorkloads,
		Kills:     cfg.Kills,
	}

	fmt.Fprintf(cfg.Diag, "chaos: computing fault-free baseline\n")
	bl, err := computeBaseline(ctx, cfg)
	if err != nil {
		return nil, err
	}

	// ---- boot the mini-fleet under one shared fault plane
	plane := faultinject.New(cfg.Seed)
	armSchedule(plane, cfg.Seed)
	rep.Schedule = plane.Schedule()

	backends := make([]*backend, cfg.Servers)
	for i := range backends {
		if backends[i], err = newBackend(i, cfg.Dir, cfg.Budget, plane); err != nil {
			return nil, err
		}
	}
	remotes := make([]fleet.Backend, cfg.Servers)
	for i, b := range backends {
		r, err := fleet.NewRemote(b.addr, fleet.WithFaults(plane))
		if err != nil {
			return nil, err
		}
		remotes[i] = r
	}
	pool, err := fleet.NewPool(remotes,
		fleet.WithJobs(8),
		fleet.WithRetries(8),
		fleet.WithProbeEvery(25*time.Millisecond),
		fleet.WithBreaker(3, 150*time.Millisecond),
	)
	if err != nil {
		return nil, err
	}

	mon := newMonitor(backends)
	killStop := make(chan struct{})
	var killWG sync.WaitGroup
	if cfg.Kills > 0 {
		killWG.Add(1)
		go func() {
			defer killWG.Done()
			killer(ctx, cfg.Seed, cfg.Kills, backends, pool, cfg.Diag, killStop)
		}()
	}

	// ---- concurrent traffic: sweep (journaled) + explore + runs
	fmt.Fprintf(cfg.Diag, "chaos: starting traffic against %d backends\n", cfg.Servers)
	journal := filepath.Join(cfg.Dir, "sweep.ndjson")
	var (
		wg          sync.WaitGroup
		trafficMu   sync.Mutex
		trafficErrs []error
		sweepBytes  []byte
		expBytes    []byte
		expEvals    int
		runBytes    = make([][]byte, len(runConfigs))
	)
	fail := func(err error) {
		trafficMu.Lock()
		trafficErrs = append(trafficErrs, err)
		trafficMu.Unlock()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := sweep.Run(ctx, pool, sweepSpec(cfg.Budget), sweep.Options{
			Journal: journal,
			Faults:  plane,
			Warn: func(format string, args ...any) {
				fmt.Fprintf(cfg.Diag, format+"\n", args...)
			},
		})
		if err != nil {
			fail(fmt.Errorf("chaos: sweep traffic: %w", err))
			return
		}
		raw, err := reportJSON(res.Report())
		if err != nil {
			fail(err)
			return
		}
		trafficMu.Lock()
		sweepBytes = raw
		rep.SweepCells = len(res.Cells)
		trafficMu.Unlock()
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := dse.Explore(ctx, pool, exploreSpec(cfg.Seed, cfg.Budget), dse.Options{})
		if err != nil {
			fail(fmt.Errorf("chaos: explore traffic: %w", err))
			return
		}
		raw, err := reportJSON(res.Report())
		if err != nil {
			fail(err)
			return
		}
		trafficMu.Lock()
		expBytes = raw
		expEvals = len(res.Evaluated)
		trafficMu.Unlock()
	}()

	for i, c := range runConfigs {
		wg.Add(1)
		go func(i int, c lab.ConfigSpec) {
			defer wg.Done()
			w := soakWorkloads[i%len(soakWorkloads)]
			res, err := pool.Run(ctx, lab.RunRequest{Workload: w, Config: c, Budget: cfg.Budget})
			if err != nil {
				fail(fmt.Errorf("chaos: run traffic %s: %w", w, err))
				return
			}
			raw, err := json.Marshal(res)
			if err != nil {
				fail(err)
				return
			}
			trafficMu.Lock()
			runBytes[i] = raw
			trafficMu.Unlock()
		}(i, c)
	}
	wg.Wait()
	close(killStop)
	killWG.Wait()

	if len(trafficErrs) > 0 {
		// The soak could not complete: that is a harness failure (faults
		// must degrade, never wedge), so report it as an error with every
		// stream's failure attached.
		return nil, errors.Join(trafficErrs...)
	}
	rep.ExploreEvals = expEvals
	rep.RunRequests = len(runConfigs)
	for pt, n := range plane.Fires() {
		fmt.Fprintf(cfg.Diag, "chaos: fired %d at %s\n", n, pt)
	}

	// ---- invariant: byte-identity of every traffic stream
	check := func(name string, pass bool, detail string, args ...any) {
		inv := Invariant{Name: name, Pass: pass}
		if !pass {
			inv.Detail = fmt.Sprintf(detail, args...)
		}
		rep.Invariants = append(rep.Invariants, inv)
	}
	check("sweep-byte-identity", bytes.Equal(sweepBytes, bl.sweep),
		"sweep report under faults differs from the fault-free baseline (%d vs %d bytes)", len(sweepBytes), len(bl.sweep))
	check("explore-byte-identity", bytes.Equal(expBytes, bl.explore),
		"exploration report under faults differs from the fault-free baseline (%d vs %d bytes)", len(expBytes), len(bl.explore))
	runsOK := true
	runsDetail := ""
	for i := range runConfigs {
		if !bytes.Equal(runBytes[i], bl.runs[i]) {
			runsOK = false
			runsDetail = fmt.Sprintf("run %d under faults differs from the fault-free baseline", i)
			break
		}
	}
	check("run-byte-identity", runsOK, "%s", runsDetail)

	// ---- invariant: journal damage is quarantined, resume heals
	check("journal-quarantine", true, "")
	if qres, err := resumeAfterDamage(ctx, cfg, bl, journal, plane); err != nil {
		rep.Invariants[len(rep.Invariants)-1] = Invariant{Name: "journal-quarantine", Pass: false, Detail: err.Error()}
	} else {
		fmt.Fprintf(cfg.Diag, "chaos: resume quarantined %d line(s), restored %d cells\n", qres.quarantined, qres.resumed)
	}

	// ---- teardown, then invariants over the runtime itself
	pool.Close()
	for _, b := range backends {
		b.shutdown()
	}
	samples, violations := mon.finish()
	fmt.Fprintf(cfg.Diag, "chaos: monitor took %d samples\n", samples)
	check("metrics-monotone", len(violations) == 0, "counter regressions: %v", violations)

	leaked := -1
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n := runtime.NumGoroutine(); n <= goroutines+2 {
			leaked = 0
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leaked != 0 {
		leaked = runtime.NumGoroutine() - goroutines
	}
	check("goroutine-leak", leaked == 0,
		"%d goroutines above the pre-soak count after teardown", leaked)

	if rep.Pass() && cleanup {
		os.RemoveAll(cfg.Dir)
	} else if !rep.Pass() {
		fmt.Fprintf(cfg.Diag, "chaos: scratch dir kept at %s\n", cfg.Dir)
	}
	return rep, nil
}

type resumeResult struct {
	quarantined int
	resumed     int
}

// resumeAfterDamage replays the sweep with -resume over the journal the
// chaos pass wrote under injected append damage. Every damaged line must
// be quarantined (never silently restored), the healed report must be
// byte-identical to the baseline, and a second resume must find a fully
// clean journal.
func resumeAfterDamage(ctx context.Context, cfg Config, bl *baseline, journal string, plane *faultinject.Plane) (*resumeResult, error) {
	res, err := sweep.Run(ctx, bl.lab, sweepSpec(cfg.Budget), sweep.Options{
		Journal: journal,
		Resume:  true,
		Warn:    func(string, ...any) {},
	})
	if err != nil {
		return nil, fmt.Errorf("resume over damaged journal failed: %w", err)
	}
	raw, err := reportJSON(res.Report())
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(raw, bl.sweep) {
		return nil, errors.New("resumed sweep report differs from the fault-free baseline: journal damage escaped quarantine")
	}
	if res.Quarantined > 0 {
		if _, err := os.Stat(journal + ".quarantine"); err != nil {
			return nil, fmt.Errorf("quarantined %d line(s) but no quarantine file: %v", res.Quarantined, err)
		}
	}
	// The journal is healed now: one more resume must restore every cell
	// and quarantine nothing.
	again, err := sweep.Run(ctx, bl.lab, sweepSpec(cfg.Budget), sweep.Options{
		Journal: journal,
		Resume:  true,
	})
	if err != nil {
		return nil, fmt.Errorf("second resume failed: %w", err)
	}
	if again.Quarantined != 0 {
		return nil, fmt.Errorf("second resume quarantined %d line(s); the first resume did not heal the journal", again.Quarantined)
	}
	if again.Resumed != len(again.Cells) {
		return nil, fmt.Errorf("second resume restored %d/%d cells; the healed journal is incomplete", again.Resumed, len(again.Cells))
	}
	return &resumeResult{quarantined: res.Quarantined, resumed: res.Resumed}, nil
}
