package prefetch

import "testing"

func TestBOPOffsetsAre52(t *testing.T) {
	if len(bopOffsets) != 52 {
		t.Fatalf("offset list has %d entries, want 52", len(bopOffsets))
	}
	for _, d := range bopOffsets {
		m := d
		for _, f := range []int{2, 3, 5} {
			for m%f == 0 {
				m /= f
			}
		}
		if m != 1 {
			t.Fatalf("offset %d not of form 2^i 3^j 5^k", d)
		}
	}
}

func TestBOPLearnsConstantOffset(t *testing.T) {
	b := NewBOP(256)
	// Stream with stride 4 blocks, one access per 10 cycles, fills take
	// 100 cycles (so a timely offset must cover >= 10 accesses ahead...
	// here any multiple of 4 present in RR scores).
	var block uint64 = 1000
	now := uint64(0)
	for i := 0; i < 20000; i++ {
		b.OnFill(block, false, now+100)
		b.Observe(block, now)
		block += 4
		now += 10
	}
	if b.BestOffset()%4 != 0 {
		t.Fatalf("BOP learned offset %d; want a multiple of the stride 4", b.BestOffset())
	}
	pref, ok := b.Observe(block, now)
	if !ok {
		t.Fatal("BOP not issuing prefetches after training")
	}
	if (pref-block)%4 != 0 {
		t.Fatalf("prefetch %d not stride-aligned from %d", pref, block)
	}
}

func TestBOPTurnsOffForRandomStream(t *testing.T) {
	b := NewBOP(256)
	// An adversarial stream with no reuse at any offset: large jumps.
	// BOP starts enabled (offset 1) but must switch itself off once the
	// first learning phase finds no scoring offset.
	var block uint64 = 5
	now := uint64(0)
	for i := 0; i < 2000; i++ { // > one full learning phase (16*52)
		b.OnFill(block, false, now+50)
		b.Observe(block, now)
		block += 997 // prime > 256, never matches RR at tested offsets
		now += 10
	}
	after := b.Issued
	for i := 0; i < 3000; i++ {
		b.OnFill(block, false, now+50)
		b.Observe(block, now)
		block += 997
		now += 10
	}
	if b.Issued != after {
		t.Fatalf("BOP kept prefetching an unprefetchable stream: %d new", b.Issued-after)
	}
}

func TestBOPTimeliness(t *testing.T) {
	// Fills that never complete must not train the RR table: after the
	// initial (enabled-by-default) phase, BOP must turn itself off.
	b := NewBOP(256)
	var block uint64 = 1000
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		b.OnFill(block, false, now+1<<40) // effectively never completes
		b.Observe(block, now)
		block += 4
		now += 10
	}
	after := b.Issued
	for i := 0; i < 18000; i++ {
		b.OnFill(block, false, now+1<<40)
		b.Observe(block, now)
		block += 4
		now += 10
	}
	if b.Issued != after {
		t.Fatalf("BOP trained on incomplete fills: issued %d more", b.Issued-after)
	}
}

func TestStrideLearnsAndIssuesDegree(t *testing.T) {
	s := NewStride(32, 4)
	var out []uint64
	addr := uint64(0x1000)
	for i := 0; i < 10; i++ {
		out = s.Observe(0x40, addr, out[:0])
		addr += 64
	}
	if len(out) != 4 {
		t.Fatalf("degree-4 prefetcher issued %d", len(out))
	}
	for i, p := range out {
		want := addr - 64 + uint64(64*(i+1))
		if p != want {
			t.Fatalf("prefetch[%d] = %#x, want %#x", i, p, want)
		}
	}
}

func TestStrideIgnoresIrregular(t *testing.T) {
	s := NewStride(32, 4)
	var out []uint64
	addrs := []uint64{10, 500, 30, 9000, 77, 123456}
	for _, a := range addrs {
		out = s.Observe(0x80, a, out[:0])
	}
	if len(out) != 0 {
		t.Fatalf("stride prefetcher fired on irregular stream: %v", out)
	}
}

func TestStrideSeparatePCs(t *testing.T) {
	s := NewStride(32, 2)
	var outA, outB []uint64
	a, b := uint64(0), uint64(1<<20)
	for i := 0; i < 8; i++ {
		outA = s.Observe(1, a, outA[:0])
		outB = s.Observe(2, b, outB[:0])
		a += 8
		b += 16
	}
	if len(outA) != 2 || len(outB) != 2 {
		t.Fatalf("per-PC streams not tracked: %d/%d", len(outA), len(outB))
	}
	if outA[0]-a+8 != 8 && outA[0] != a+8-8+8 {
		t.Logf("outA=%v a=%d", outA, a)
	}
	if outB[0] != b-16+16 {
		t.Fatalf("stream B prefetch %d, want %d", outB[0], b)
	}
}

func TestNextLine(t *testing.T) {
	n := &NextLine{}
	if _, ok := n.Observe(10, true); ok {
		t.Fatal("next-line fired on hit")
	}
	p, ok := n.Observe(10, false)
	if !ok || p != 11 {
		t.Fatalf("next-line = %d,%v", p, ok)
	}
}
