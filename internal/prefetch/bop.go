// Package prefetch implements the hardware prefetchers used in the paper's
// evaluation: the Best-Offset Prefetcher (BOP, Michaud HPCA'16) configured
// as in Table I (256 RR entries, 52 offsets), a per-PC stride prefetcher
// with degree 4 (the tuned L1 prefetcher in Sec. IV-C1), and a next-line
// prefetcher used in ablations.
package prefetch

// bopOffsets are the 52 candidate offsets of the form 2^i * 3^j * 5^k up
// to 256, as in the original BOP paper.
var bopOffsets = buildOffsets()

func buildOffsets() []int {
	var offs []int
	for n := 1; n <= 256; n++ {
		m := n
		for _, f := range []int{2, 3, 5} {
			for m%f == 0 {
				m /= f
			}
		}
		if m == 1 {
			offs = append(offs, n)
		}
	}
	return offs
}

// Learning constants. The original design uses SCOREMAX=31/ROUNDMAX=100;
// we scale them down so learning converges within simulation budgets of a
// few hundred thousand instructions (the paper simulates tens of millions).
const (
	bopScoreMax = 20
	bopRoundMax = 16
	bopBadScore = 1
)

// BOP is the Best-Offset Prefetcher. It observes the block-address stream
// at one cache level and emits prefetch block addresses.
type BOP struct {
	rrTable []uint64 // recent-request table of base block addresses
	rrMask  uint64

	scores    []int
	testIdx   int
	round     int
	bestOff   int
	bestScore int

	pending []pendingFill // fills not yet completed (timeliness learning)

	Issued uint64
}

type pendingFill struct {
	base uint64 // demand-stream base address to insert at completion
	done uint64
}

// NewBOP returns a BOP with an RR table of rrEntries (must be a power of
// two; Table I uses 256).
func NewBOP(rrEntries int) *BOP {
	if rrEntries&(rrEntries-1) != 0 {
		panic("prefetch: RR entries must be a power of two")
	}
	return &BOP{
		rrTable: make([]uint64, rrEntries),
		rrMask:  uint64(rrEntries - 1),
		scores:  make([]int, len(bopOffsets)),
		// Start prefetching next-line (offset 1) while learning, as the
		// original design does.
		bestOff:   1,
		bestScore: bopBadScore + 1,
	}
}

func (b *BOP) rrInsert(block uint64) {
	b.rrTable[block&b.rrMask] = block
}

func (b *BOP) rrHit(block uint64) bool {
	return b.rrTable[block&b.rrMask] == block
}

// Observe processes one demand access (block address) at the attached
// level at cycle now and returns a prefetch block address, or ok=false.
// Call OnFill for every miss and prefetch issue so the RR table learns
// timely offsets.
func (b *BOP) Observe(block uint64, now uint64) (pref uint64, ok bool) {
	b.drainFills(now)
	// Learning: test one offset per access, round-robin.
	d := bopOffsets[b.testIdx]
	if b.rrHit(block - uint64(d)) {
		b.scores[b.testIdx]++
		if b.scores[b.testIdx] >= bopScoreMax {
			b.adopt(b.testIdx)
		}
	}
	b.testIdx++
	if b.testIdx == len(bopOffsets) {
		b.testIdx = 0
		b.round++
		if b.round >= bopRoundMax {
			best := 0
			for i, s := range b.scores {
				if s > b.scores[best] {
					best = i
				}
			}
			b.adopt(best)
		}
	}

	if b.bestScore <= bopBadScore {
		return 0, false // prefetch off: learned offset too weak
	}
	b.Issued++
	return block + uint64(b.bestOff), true
}

// adopt ends the learning round and switches to the given offset.
func (b *BOP) adopt(idx int) {
	b.bestOff = bopOffsets[idx]
	b.bestScore = b.scores[idx]
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.round = 0
	b.testIdx = 0
}

// OnFill registers a fill that will complete at fillDone. For prefetch
// fills the inserted base is block - bestOffset (the demand access that
// triggered it), as in the original design; demand fills insert the block
// itself. The insertion becomes visible to Observe only once the fill has
// completed, which is how BOP learns timely (not merely correct) offsets.
func (b *BOP) OnFill(block uint64, wasPrefetch bool, fillDone uint64) {
	base := block
	if wasPrefetch {
		base = block - uint64(b.bestOff)
	}
	b.pending = append(b.pending, pendingFill{base: base, done: fillDone})
}

// drainFills moves completed fills into the RR table.
func (b *BOP) drainFills(now uint64) {
	w := 0
	for _, p := range b.pending {
		if p.done <= now {
			b.rrInsert(p.base)
		} else {
			b.pending[w] = p
			w++
		}
	}
	b.pending = b.pending[:w]
}

// BestOffset reports the currently adopted offset (for tests/diagnostics).
func (b *BOP) BestOffset() int { return b.bestOff }
