package prefetch

// Stride is a classic per-PC stride prefetcher (reference-prediction
// table): the "modified stride prefetcher" baseline the paper tunes to 32
// entries with prefetch degree 4 (Sec. IV-C1 footnote).
type Stride struct {
	entries []strideEntry
	mask    int
	degree  int
	Issued  uint64
}

type strideEntry struct {
	pc       int32
	lastAddr uint64
	stride   int64
	conf     int8 // 2-bit confidence
	valid    bool
}

// NewStride returns a stride prefetcher with the given table size (power
// of two) and prefetch degree.
func NewStride(entries, degree int) *Stride {
	if entries&(entries-1) != 0 {
		panic("prefetch: stride entries must be a power of two")
	}
	return &Stride{entries: make([]strideEntry, entries), mask: entries - 1, degree: degree}
}

// Observe processes one load (pc, byte address) and appends up to degree
// prefetch byte addresses to out, returning the extended slice.
func (s *Stride) Observe(pc int, addr uint64, out []uint64) []uint64 {
	e := &s.entries[(pc>>0)&s.mask]
	if !e.valid || e.pc != int32(pc) {
		*e = strideEntry{pc: int32(pc), lastAddr: addr, valid: true}
		return out
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = stride
		}
	}
	e.lastAddr = addr
	if e.conf >= 2 && e.stride != 0 {
		for i := 1; i <= s.degree; i++ {
			out = append(out, uint64(int64(addr)+e.stride*int64(i)))
			s.Issued++
		}
	}
	return out
}

// NextLine prefetches block+1 on every observed miss; the simplest
// ablation baseline.
type NextLine struct {
	Issued uint64
}

// Observe returns the next block address for a missing block.
func (n *NextLine) Observe(block uint64, hit bool) (uint64, bool) {
	if hit {
		return 0, false
	}
	n.Issued++
	return block + 1, true
}
