// Package analytic implements the Appendix B probabilistic fetch-buffer
// model: the fetch queue as a Markov chain whose transition structure
// derives from empirically measured instruction supply (I-cache or trace
// cache) and demand (decode) distributions. It regenerates Fig. 5 and the
// theoretical half of Fig. 14.
package analytic

// Model holds the two empirical distributions: D[j] = P(decode demands j
// instructions), S[s] = P(the fetch unit can supply s instructions).
type Model struct {
	D []float64
	S []float64
}

// NewModel normalizes the given distributions.
func NewModel(demand, supply []float64) *Model {
	return &Model{D: normalize(demand), S: normalize(supply)}
}

func normalize(xs []float64) []float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	out := make([]float64, len(xs))
	if sum == 0 {
		if len(out) > 0 {
			out[0] = 1
		}
		return out
	}
	for i, x := range xs {
		out[i] = x / sum
	}
	return out
}

// changeDist convolves supply and (negated) demand into the distribution
// of per-cycle queue-length change: C[δ + maxW] = P(change = δ),
// δ ∈ [-maxW, +maxS].
func (m *Model) changeDist() (c []float64, maxW int) {
	maxW = len(m.D) - 1
	maxS := len(m.S) - 1
	c = make([]float64, maxW+maxS+1)
	for s, ps := range m.S {
		for w, pw := range m.D {
			c[s-w+maxW] += ps * pw
		}
	}
	return c, maxW
}

// Transition builds the (N+1)x(N+1) column-stochastic transition matrix
// P[i][j] = P(queue becomes i | queue is j) for capacity N, with boundary
// absorption at 0 and N (Appendix B).
func (m *Model) Transition(capacity int) [][]float64 {
	c, maxW := m.changeDist()
	n := capacity
	p := make([][]float64, n+1)
	for i := range p {
		p[i] = make([]float64, n+1)
	}
	for j := 0; j <= n; j++ {
		for k, pk := range c {
			if pk == 0 {
				continue
			}
			delta := k - maxW
			i := j + delta
			if i < 0 {
				i = 0
			}
			if i > n {
				i = n
			}
			p[i][j] += pk
		}
	}
	return p
}

// QueueDist computes the steady-state queue-length distribution Qss for
// the given capacity by power iteration (Qss is the eigenvector of
// eigenvalue 1; Perron-Frobenius guarantees convergence).
func (m *Model) QueueDist(capacity int) []float64 {
	p := m.Transition(capacity)
	n := capacity + 1
	q := make([]float64, n)
	for i := range q {
		q[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < 100000; iter++ {
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += p[i][j] * q[j]
			}
			next[i] = s
		}
		var diff float64
		for i := range q {
			d := next[i] - q[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		q, next = next, q
		if diff < 1e-13 {
			break
		}
	}
	return q
}

// ExpectedBubbles computes E(FB) = Σ_i Q_i Σ_{j>i} D_j (j - i): the mean
// number of decode slots the queue fails to fill per cycle.
func (m *Model) ExpectedBubbles(capacity int) float64 {
	q := m.QueueDist(capacity)
	var e float64
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		var inner float64
		for j := i + 1; j < len(m.D); j++ {
			inner += m.D[j] * float64(j-i)
		}
		e += qi * inner
	}
	return e
}
