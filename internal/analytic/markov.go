// Package analytic implements the Appendix B probabilistic fetch-buffer
// model: the fetch queue as a Markov chain whose transition structure
// derives from empirically measured instruction supply (I-cache or trace
// cache) and demand (decode) distributions. It regenerates Fig. 5 and the
// theoretical half of Fig. 14, and parameterizes the tier package's
// analytic runner.
package analytic

import (
	"errors"
	"fmt"
)

// ErrInvalid tags model-construction failures (negative probability
// masses, empty distributions). Use errors.Is.
var ErrInvalid = errors.New("analytic: invalid distribution")

// Model holds the two empirical distributions: D[j] = P(decode demands j
// instructions), S[s] = P(the fetch unit can supply s instructions).
type Model struct {
	D []float64
	S []float64
}

// NewModel normalizes the given distributions into a Model. Negative
// masses are rejected: they would normalize into a transition matrix
// with negative "probabilities", whose power iteration can diverge or
// oscillate forever and silently return garbage.
func NewModel(demand, supply []float64) (*Model, error) {
	d, err := normalize(demand)
	if err != nil {
		return nil, fmt.Errorf("%w: demand: %v", ErrInvalid, err)
	}
	s, err := normalize(supply)
	if err != nil {
		return nil, fmt.Errorf("%w: supply: %v", ErrInvalid, err)
	}
	return &Model{D: d, S: s}, nil
}

func normalize(xs []float64) ([]float64, error) {
	var sum float64
	for i, x := range xs {
		if x < 0 {
			return nil, fmt.Errorf("negative mass %g at index %d", x, i)
		}
		sum += x
	}
	out := make([]float64, len(xs))
	if sum == 0 {
		if len(out) > 0 {
			out[0] = 1
		}
		return out, nil
	}
	for i, x := range xs {
		out[i] = x / sum
	}
	return out, nil
}

// changeDist convolves supply and (negated) demand into the distribution
// of per-cycle queue-length change: C[δ + maxW] = P(change = δ),
// δ ∈ [-maxW, +maxS].
func (m *Model) changeDist() (c []float64, maxW int) {
	maxW = len(m.D) - 1
	maxS := len(m.S) - 1
	c = make([]float64, maxW+maxS+1)
	for s, ps := range m.S {
		for w, pw := range m.D {
			c[s-w+maxW] += ps * pw
		}
	}
	return c, maxW
}

// Transition builds the (N+1)x(N+1) column-stochastic transition matrix
// P[i][j] = P(queue becomes i | queue is j) for capacity N, with boundary
// absorption at 0 and N (Appendix B).
func (m *Model) Transition(capacity int) [][]float64 {
	c, maxW := m.changeDist()
	n := capacity
	p := make([][]float64, n+1)
	for i := range p {
		p[i] = make([]float64, n+1)
	}
	for j := 0; j <= n; j++ {
		for k, pk := range c {
			if pk == 0 {
				continue
			}
			delta := k - maxW
			i := j + delta
			if i < 0 {
				i = 0
			}
			if i > n {
				i = n
			}
			p[i][j] += pk
		}
	}
	return p
}

// steadyIters and steadyTol bound the damped power iteration: the
// successive-iterate L1 difference must drop below steadyTol within
// steadyIters applications, or SteadyState reports non-convergence.
const (
	steadyIters = 100_000
	steadyTol   = 1e-13
)

// SteadyState computes the steady-state queue-length distribution Qss for
// the given capacity, reporting whether the iteration actually converged.
//
// The iterate is damped — q ← ½q + ½Pq — rather than the plain power
// iteration q ← Pq. Damping maps every eigenvalue λ of P to (1+λ)/2, so
// a peripheral eigenvalue on the unit circle at angle θ lands at modulus
// cos(θ/2) < 1: the oscillatory modes of a periodic chain (λ = -1 flips
// sign every step, and the plain iteration's successive difference never
// shrinks) decay instead of cycling forever. Fixed points are unchanged,
// because (I+P)/2 and P share the eigenspace of λ = 1.
func (m *Model) SteadyState(capacity int) (q []float64, converged bool) {
	p := m.Transition(capacity)
	n := capacity + 1
	q = make([]float64, n)
	for i := range q {
		q[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < steadyIters; iter++ {
		for i := 0; i < n; i++ {
			s := q[i]
			row := p[i]
			for j := 0; j < n; j++ {
				s += row[j] * q[j]
			}
			next[i] = s / 2
		}
		var diff float64
		for i := range q {
			d := next[i] - q[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		q, next = next, q
		// The damped successive difference is ½‖Pq - q‖₁, so this is a
		// residual test on the fixed-point equation, not just stagnation.
		if diff < steadyTol {
			return q, true
		}
	}
	return q, false
}

// QueueDist is SteadyState without the convergence signal, for callers
// that only render the distribution. With the validated non-negative
// distributions NewModel admits, the chain's boundary self-loops make it
// aperiodic and the damped iteration always converges.
func (m *Model) QueueDist(capacity int) []float64 {
	q, _ := m.SteadyState(capacity)
	return q
}

// ExpectedBubbles computes E(FB) = Σ_i Q_i Σ_{j>i} D_j (j - i): the mean
// number of decode slots the queue fails to fill per cycle.
func (m *Model) ExpectedBubbles(capacity int) float64 {
	q := m.QueueDist(capacity)
	var e float64
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		var inner float64
		for j := i + 1; j < len(m.D); j++ {
			inner += m.D[j] * float64(j-i)
		}
		e += qi * inner
	}
	return e
}
