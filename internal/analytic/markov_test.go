package analytic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustModel(t *testing.T, demand, supply []float64) *Model {
	t.Helper()
	m, err := NewModel(demand, supply)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func almostOne(xs []float64) bool {
	var s float64
	for _, x := range xs {
		s += x
	}
	return math.Abs(s-1) < 1e-9
}

func TestTransitionColumnsStochastic(t *testing.T) {
	m := mustModel(t, []float64{0.2, 0.3, 0.3, 0.1, 0.1}, []float64{0.1, 0.2, 0.3, 0.4})
	p := m.Transition(8)
	for j := 0; j <= 8; j++ {
		var s float64
		for i := 0; i <= 8; i++ {
			if p[i][j] < 0 {
				t.Fatalf("negative transition probability P[%d][%d] = %g", i, j, p[i][j])
			}
			s += p[i][j]
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("column %d sums to %f", j, s)
		}
	}
}

func TestNewModelRejectsNegativeMass(t *testing.T) {
	if _, err := NewModel([]float64{2, -1}, []float64{0, 1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative demand mass: error %v, want ErrInvalid", err)
	}
	if _, err := NewModel([]float64{0, 1}, []float64{-0.5, 1.5}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative supply mass: error %v, want ErrInvalid", err)
	}
	// All-zero distributions still degrade to the point mass at 0.
	m, err := NewModel([]float64{0, 0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if m.D[0] != 1 || m.D[1] != 0 {
		t.Fatalf("zero demand normalized to %v, want point mass at 0", m.D)
	}
}

// TestSteadyStatePeriodicChainRegression is the regression test for the
// power-iteration convergence bug. The two-point model below slips past
// the old mass check (each distribution sums to 1) but carries a negative
// demand mass, producing a lower-triangular transition matrix with
// diagonal -1 — a true eigenvalue on the unit circle. The old undamped
// iteration q ← Pq amplified the λ = -1 modes every step and, after its
// 100k iterations, silently returned an iterate with |Pq-q|₁ on the
// order of 1e24. The damped iteration kills those modes and lands on the
// chain's genuine fixed point (the point mass at capacity).
func TestSteadyStatePeriodicChainRegression(t *testing.T) {
	m := &Model{D: []float64{2, -1}, S: []float64{0, 1}}
	const cap = 6
	q, converged := m.SteadyState(cap)
	if !converged {
		t.Fatal("damped iteration did not converge on the periodic two-point chain")
	}
	p := m.Transition(cap)
	var res float64
	for i := 0; i <= cap; i++ {
		var s float64
		for j := 0; j <= cap; j++ {
			s += p[i][j] * q[j]
		}
		res += math.Abs(s - q[i])
	}
	if res > 1e-8 {
		t.Fatalf("steady state is not a fixed point: |Pq-q|_1 = %g (old iteration returned garbage here)", res)
	}
	if math.Abs(q[cap]-1) > 1e-8 {
		t.Fatalf("fixed point %v, want the point mass at capacity", q)
	}
}

// TestSteadyStateReportsNonConvergence hands SteadyState a matrix even
// damping cannot fix (diagonal mass -3 maps to a damped eigenvalue of
// -1): the iteration must say so instead of silently returning the
// oscillating iterate as if it were a steady state.
func TestSteadyStateReportsNonConvergence(t *testing.T) {
	m := &Model{D: []float64{4, -3}, S: []float64{0, 1}}
	if _, converged := m.SteadyState(4); converged {
		t.Fatal("SteadyState claimed convergence on a chain whose damped iteration oscillates")
	}
}

func TestQueueDistIsDistribution(t *testing.T) {
	m := mustModel(t, []float64{0.2, 0.2, 0.3, 0.2, 0.1}, []float64{0.3, 0.1, 0.2, 0.2, 0.2})
	q := m.QueueDist(16)
	if !almostOne(q) {
		t.Fatal("steady state not a distribution")
	}
	for i, p := range q {
		if p < -1e-12 {
			t.Fatalf("negative probability at %d: %g", i, p)
		}
	}
}

func TestSteadyStateIsFixedPoint(t *testing.T) {
	m := mustModel(t, []float64{0.3, 0.2, 0.2, 0.2, 0.1}, []float64{0.2, 0.1, 0.2, 0.2, 0.3})
	const cap = 12
	q, converged := m.SteadyState(cap)
	if !converged {
		t.Fatal("iteration did not converge")
	}
	p := m.Transition(cap)
	for i := 0; i <= cap; i++ {
		var s float64
		for j := 0; j <= cap; j++ {
			s += p[i][j] * q[j]
		}
		if math.Abs(s-q[i]) > 1e-8 {
			t.Fatalf("Pq != q at %d: %g vs %g", i, s, q[i])
		}
	}
}

func TestSupplyExceedsDemandFillsQueue(t *testing.T) {
	// Rich supply vs weak demand: queue should sit near capacity.
	m := mustModel(t,
		[]float64{0.8, 0.2, 0, 0, 0},         // demand mostly 0-1
		[]float64{0.05, 0.05, 0.1, 0.2, 0.6}, // supply mostly 4
	)
	q := m.QueueDist(8)
	if q[8] < 0.5 {
		t.Fatalf("queue not full under surplus supply: P(8)=%f", q[8])
	}
}

func TestDemandExceedsSupplyDrainsQueue(t *testing.T) {
	m := mustModel(t,
		[]float64{0, 0, 0.1, 0.3, 0.6},
		[]float64{0.6, 0.3, 0.1, 0, 0},
	)
	q := m.QueueDist(8)
	if q[0] < 0.5 {
		t.Fatalf("queue not empty under surplus demand: P(0)=%f", q[0])
	}
}

func TestBiggerBufferReducesBubbles(t *testing.T) {
	// Balanced but bursty flows: capacity should monotonically help.
	m := mustModel(t,
		[]float64{0.3, 0.1, 0.1, 0.2, 0.3},
		[]float64{0.35, 0.05, 0.1, 0.2, 0.2, 0.05, 0.05},
	)
	prev := math.Inf(1)
	for _, c := range []int{4, 8, 16, 32} {
		e := m.ExpectedBubbles(c)
		if e > prev+1e-9 {
			t.Fatalf("bubbles increased with capacity %d: %f > %f", c, e, prev)
		}
		prev = e
	}
}

func TestBubblesBoundedByDemand(t *testing.T) {
	f := func(ds, ss []uint8) bool {
		if len(ds) < 2 || len(ss) < 2 {
			return true
		}
		if len(ds) > 6 {
			ds = ds[:6]
		}
		if len(ss) > 8 {
			ss = ss[:8]
		}
		d := make([]float64, len(ds))
		s := make([]float64, len(ss))
		var dok, sok bool
		for i, v := range ds {
			d[i] = float64(v)
			if v > 0 {
				dok = true
			}
		}
		for i, v := range ss {
			s[i] = float64(v)
			if v > 0 {
				sok = true
			}
		}
		if !dok || !sok {
			return true
		}
		m, err := NewModel(d, s)
		if err != nil {
			return false // non-negative inputs must never be rejected
		}
		e := m.ExpectedBubbles(8)
		// E[FB] can never exceed mean demand.
		var meanD float64
		for j, p := range m.D {
			meanD += float64(j) * p
		}
		return e >= -1e-9 && e <= meanD+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
