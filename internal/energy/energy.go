// Package energy implements the event-based energy model standing in for
// McPAT + DRAMPower (see DESIGN.md §2): per-event energies for pipeline
// and cache activity plus static power for the cores, and
// activate/read/write/background energy for DRAM. The paper's energy
// results (Table II, Fig. 10) are activity ratios, which an
// event-proportional model reproduces by construction.
package energy

import (
	"r3dla/internal/cache"
	"r3dla/internal/dram"
	"r3dla/internal/pipeline"
)

// Params holds per-event energies (nanojoules) and static powers (watts)
// for a 22nm-class core at the Table I operating point (0.8V, 3GHz).
type Params struct {
	ClockGHz float64

	DecodeNJ float64 // per decoded instruction
	CommitNJ float64 // per committed instruction
	ExecNJ   float64 // per executed instruction (FU + wakeup + bypass)
	LoadNJ   float64 // additional per load/store (AGU + LSQ)

	L1NJ float64 // per L1 access
	L2NJ float64
	L3NJ float64

	CoreStaticW float64 // leakage + clock tree per core

	DRAMActNJ float64 // per activate
	DRAMRWNJ  float64 // per read/write burst
	DRAMBackW float64 // background power
}

// DefaultParams returns the calibration used across experiments: chosen
// so a baseline core spends roughly 55-65% of energy dynamically, with
// memory-bound workloads shifting the balance toward static+DRAM.
func DefaultParams() Params {
	return Params{
		ClockGHz:    3.0,
		DecodeNJ:    0.12,
		CommitNJ:    0.08,
		ExecNJ:      0.25,
		LoadNJ:      0.15,
		L1NJ:        0.08,
		L2NJ:        0.35,
		L3NJ:        1.2,
		CoreStaticW: 0.45,
		DRAMActNJ:   12.0,
		DRAMRWNJ:    8.0,
		DRAMBackW:   0.35,
	}
}

// Breakdown is the energy/power accounting of one component over a run.
type Breakdown struct {
	DynamicJ float64
	StaticJ  float64
	Seconds  float64
}

// TotalJ reports dynamic + static energy.
func (b Breakdown) TotalJ() float64 { return b.DynamicJ + b.StaticJ }

// DynPowerW reports average dynamic power.
func (b Breakdown) DynPowerW() float64 {
	if b.Seconds == 0 {
		return 0
	}
	return b.DynamicJ / b.Seconds
}

// StatPowerW reports average static power.
func (b Breakdown) StatPowerW() float64 {
	if b.Seconds == 0 {
		return 0
	}
	return b.StaticJ / b.Seconds
}

// PowerW reports average total power.
func (b Breakdown) PowerW() float64 { return b.DynPowerW() + b.StatPowerW() }

// CoreActivity captures the event counts of one core's run.
type CoreActivity struct {
	Metrics *pipeline.Metrics
	L1I     *cache.Stats
	L1D     *cache.Stats
	L2      *cache.Stats

	// WallCycles is the duration the core was powered (for static
	// energy); it can exceed Metrics.Cycles for a core that finished
	// early in a coupled system.
	WallCycles uint64
}

// Core computes one core's energy breakdown. Wrong-path activity
// estimates from the timing model are included in decode/execute events
// (per Table II's note that the baseline decodes 1.25 and executes 1.16
// instructions per commit).
func Core(a CoreActivity, p Params) Breakdown {
	m := a.Metrics
	decoded := float64(m.Dispatched + m.WrongPathDecoded)
	executed := float64(m.Issued + m.WrongPathExecuted)
	committed := float64(m.Committed)
	memops := float64(m.Loads + m.Stores)

	dyn := decoded*p.DecodeNJ + executed*p.ExecNJ + committed*p.CommitNJ + memops*p.LoadNJ
	dyn += float64(a.L1I.Accesses+a.L1D.Accesses+a.L1D.PrefIssued) * p.L1NJ
	dyn += float64(a.L2.Accesses+a.L2.PrefIssued) * p.L2NJ
	dyn *= 1e-9

	secs := float64(a.WallCycles) / (p.ClockGHz * 1e9)
	return Breakdown{DynamicJ: dyn, StaticJ: p.CoreStaticW * secs, Seconds: secs}
}

// Shared computes the shared L3's dynamic energy (attributed to the CPU
// total in Fig. 10a).
func Shared(l3 *cache.Stats, wallCycles uint64, p Params) Breakdown {
	dyn := float64(l3.Accesses+l3.PrefIssued) * p.L3NJ * 1e-9
	secs := float64(wallCycles) / (p.ClockGHz * 1e9)
	return Breakdown{DynamicJ: dyn, Seconds: secs}
}

// DRAM computes the memory energy breakdown (Fig. 10b).
func DRAM(d *dram.Stats, wallCycles uint64, p Params) Breakdown {
	dyn := float64(d.Activates)*p.DRAMActNJ + float64(d.Reads+d.Writes)*p.DRAMRWNJ
	dyn *= 1e-9
	secs := float64(wallCycles) / (p.ClockGHz * 1e9)
	return Breakdown{DynamicJ: dyn, StaticJ: p.DRAMBackW * secs, Seconds: secs}
}

// Activity is the Table II activity triple (decode, execute, commit).
type Activity struct {
	D, X, C float64
}

// ActivityOf extracts the D/X/C activity counts of a core run.
func ActivityOf(m *pipeline.Metrics) Activity {
	return Activity{
		D: float64(m.Dispatched + m.WrongPathDecoded),
		X: float64(m.Issued + m.WrongPathExecuted),
		C: float64(m.Committed),
	}
}

// Ratio divides two activities component-wise (normalization to a
// baseline).
func (a Activity) Ratio(base Activity) Activity {
	div := func(x, y float64) float64 {
		if y == 0 {
			return 0
		}
		return x / y
	}
	return Activity{D: div(a.D, base.D), X: div(a.X, base.X), C: div(a.C, base.C)}
}
