package energy

import (
	"testing"

	"r3dla/internal/cache"
	"r3dla/internal/dram"
	"r3dla/internal/pipeline"
)

func activity(dispatched, issued, committed, cycles uint64) CoreActivity {
	return CoreActivity{
		Metrics: &pipeline.Metrics{
			Dispatched: dispatched, Issued: issued, Committed: committed,
			Cycles: cycles,
		},
		L1I: &cache.Stats{}, L1D: &cache.Stats{}, L2: &cache.Stats{},
		WallCycles: cycles,
	}
}

func TestCoreEnergyScalesWithActivity(t *testing.T) {
	p := DefaultParams()
	small := Core(activity(1000, 1000, 1000, 10000), p)
	big := Core(activity(2000, 2000, 2000, 10000), p)
	if big.DynamicJ <= small.DynamicJ {
		t.Fatal("dynamic energy does not scale with activity")
	}
	if big.StaticJ != small.StaticJ {
		t.Fatal("static energy should depend on time, not activity")
	}
}

func TestStaticEnergyScalesWithTime(t *testing.T) {
	p := DefaultParams()
	short := Core(activity(1000, 1000, 1000, 10_000), p)
	long := Core(activity(1000, 1000, 1000, 40_000), p)
	if long.StaticJ <= short.StaticJ {
		t.Fatal("static energy does not scale with wall time")
	}
	if long.PowerW() >= short.PowerW() {
		t.Fatal("average power should fall when the same work takes longer")
	}
}

func TestDRAMEnergy(t *testing.T) {
	p := DefaultParams()
	s := &dram.Stats{Reads: 100, Writes: 50, Activates: 80}
	b := DRAM(s, 100_000, p)
	if b.DynamicJ <= 0 || b.StaticJ <= 0 {
		t.Fatalf("degenerate DRAM energy: %+v", b)
	}
	// Activates dominate per-event cost.
	s2 := &dram.Stats{Reads: 100, Writes: 50, Activates: 160}
	if DRAM(s2, 100_000, p).DynamicJ <= b.DynamicJ {
		t.Fatal("activates not accounted")
	}
}

func TestActivityRatio(t *testing.T) {
	a := Activity{D: 50, X: 40, C: 30}
	base := Activity{D: 100, X: 80, C: 30}
	r := a.Ratio(base)
	if r.D != 0.5 || r.X != 0.5 || r.C != 1.0 {
		t.Fatalf("ratio = %+v", r)
	}
	zero := a.Ratio(Activity{})
	if zero.D != 0 {
		t.Fatal("division by zero not guarded")
	}
}

func TestBreakdownAccessors(t *testing.T) {
	b := Breakdown{DynamicJ: 2, StaticJ: 1, Seconds: 2}
	if b.TotalJ() != 3 || b.DynPowerW() != 1 || b.StatPowerW() != 0.5 || b.PowerW() != 1.5 {
		t.Fatalf("accessors wrong: %+v", b)
	}
	var empty Breakdown
	if empty.DynPowerW() != 0 || empty.StatPowerW() != 0 {
		t.Fatal("zero-duration power not guarded")
	}
}
