// Package cache implements the on-chip memory hierarchy: set-associative
// write-back caches with LRU replacement, MSHR-limited non-blocking misses,
// prefetch fills, and the look-ahead containment mode (dirty lines
// discarded on eviction, never written back), per Sec. III-A(i) of the
// paper.
//
// Timing model: every access returns the cycle at which its data is
// available. A missing line is installed immediately with a readyAt
// timestamp equal to the fill completion time; later accesses that arrive
// before readyAt merge with the outstanding fill (the MSHR secondary-miss
// path).
package cache

// Level is anything that can service a memory request: a Cache or a DRAM.
type Level interface {
	Access(addr uint64, write, prefetch bool, now uint64) Result
}

// Result describes the completion of a memory access.
type Result struct {
	Done  uint64 // cycle at which data is available to the requester
	Level int    // level that supplied the data: 1=L1 .. 3=L3, 4=memory
}

// Stats counts cache events. Demand and prefetch streams are separated so
// the harness can compute MPKI (demand misses only) and traffic.
type Stats struct {
	Accesses   uint64 // demand accesses
	Misses     uint64 // demand misses (includes merges with in-flight fills)
	MergedMiss uint64 // demand misses merged into an outstanding fill
	Writebacks uint64 // dirty evictions written to the next level
	Discarded  uint64 // dirty evictions discarded (look-ahead mode)
	PrefIssued uint64 // prefetch accesses reaching this level
	PrefFills  uint64 // prefetch-installed lines
	PrefUseful uint64 // prefetched lines later hit by demand
	PrefWasted uint64 // prefetched lines evicted unused
	MSHRStalls uint64 // accesses delayed by MSHR exhaustion
}

// Config sizes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	BlockBits int    // log2 block size
	Latency   uint64 // access latency in cycles
	MSHRs     int
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	pref    bool   // installed by a prefetch, not yet demanded
	readyAt uint64 // fill completion time
	lastUse uint64
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg      Config
	sets     int
	setMask  uint64
	lines    []line // sets*ways, way-major within set
	next     Level
	fills    []uint64 // outstanding fill completion times (MSHR occupancy)
	useClock uint64

	// DiscardDirty puts the cache in look-ahead containment mode: dirty
	// evictions are dropped instead of written back.
	DiscardDirty bool

	// Observer, if set, is called on every demand access with its block
	// address and hit status. Prefetchers attach here.
	Observer func(addr uint64, hit bool, now uint64)

	Stats Stats
}

// New constructs a cache over the given next level.
func New(cfg Config, next Level) *Cache {
	blockBytes := 1 << cfg.BlockBits
	sets := cfg.SizeBytes / blockBytes / cfg.Ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: sets must be a positive power of two")
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		lines:   make([]line, sets*cfg.Ways),
		next:    next,
	}
}

// Name reports the configured level name.
func (c *Cache) Name() string { return c.cfg.Name }

// BlockBits reports the log2 block size.
func (c *Cache) BlockBits() int { return c.cfg.BlockBits }

func (c *Cache) set(block uint64) []line {
	s := int(block & c.setMask)
	return c.lines[s*c.cfg.Ways : (s+1)*c.cfg.Ways]
}

// pruneFills drops completed fills from the MSHR occupancy list.
func (c *Cache) pruneFills(now uint64) {
	w := 0
	for _, t := range c.fills {
		if t > now {
			c.fills[w] = t
			w++
		}
	}
	c.fills = c.fills[:w]
}

// Access services a request. Prefetch requests fill the cache but are not
// observed and do not update demand statistics.
func (c *Cache) Access(addr uint64, write, prefetch bool, now uint64) Result {
	block := addr >> c.cfg.BlockBits
	ws := c.set(block)
	tag := block >> 0 // full block address as tag (sets folded via mask)
	c.useClock++

	if prefetch {
		c.Stats.PrefIssued++
	} else {
		c.Stats.Accesses++
	}

	// Hit path.
	for i := range ws {
		ln := &ws[i]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.useClock
			if write {
				ln.dirty = true
			}
			if !prefetch && ln.pref {
				ln.pref = false
				c.Stats.PrefUseful++
			}
			done := now + c.cfg.Latency
			hitLvl := levelOf(c.cfg.Name)
			if ln.readyAt > now { // merge with in-flight fill
				if !prefetch {
					c.Stats.Misses++
					c.Stats.MergedMiss++
				}
				done = ln.readyAt + c.cfg.Latency
				hitLvl = levelOf(c.cfg.Name) + 1 // data actually came from below
			}
			if c.Observer != nil && !prefetch {
				c.Observer(addr, ln.readyAt <= now, now)
			}
			return Result{Done: done, Level: hitLvl}
		}
	}

	// Miss path.
	if !prefetch {
		c.Stats.Misses++
	}
	c.pruneFills(now)
	start := now
	if len(c.fills) >= c.cfg.MSHRs {
		// All MSHRs busy: wait for the earliest to free.
		earliest := c.fills[0]
		for _, t := range c.fills[1:] {
			if t < earliest {
				earliest = t
			}
		}
		start = earliest
		c.Stats.MSHRStalls++
		c.pruneFills(start)
	}

	res := c.next.Access(addr, false, prefetch, start+c.cfg.Latency)
	fillDone := res.Done
	c.fills = append(c.fills, fillDone)

	// Choose victim: invalid first, else LRU.
	vi := 0
	for i := range ws {
		if !ws[i].valid {
			vi = i
			break
		}
		if ws[i].lastUse < ws[vi].lastUse {
			vi = i
		}
	}
	v := &ws[vi]
	if v.valid {
		if v.pref {
			c.Stats.PrefWasted++
		}
		if v.dirty {
			if c.DiscardDirty {
				c.Stats.Discarded++
			} else {
				c.Stats.Writebacks++
				c.writeback()
			}
		}
	}
	*v = line{tag: tag, valid: true, dirty: write, pref: prefetch, readyAt: fillDone, lastUse: c.useClock}

	if c.Observer != nil && !prefetch {
		c.Observer(addr, false, now)
	}
	return Result{Done: fillDone + c.cfg.Latency, Level: res.Level}
}

// writeback delivers a dirty eviction to the next level. It affects
// traffic accounting only; its latency is off the critical path.
func (c *Cache) writeback() {
	if wb, ok := c.next.(interface{ Writeback() }); ok {
		wb.Writeback()
	} else if nc, ok := c.next.(*Cache); ok {
		nc.Stats.Writebacks++ // propagate as traffic into the level below
	}
}

// Contains reports whether addr's block is present and filled (for tests).
func (c *Cache) Contains(addr uint64, now uint64) bool {
	block := addr >> c.cfg.BlockBits
	for i := range c.set(block) {
		ln := &c.set(block)[i]
		if ln.valid && ln.tag == block && ln.readyAt <= now {
			return true
		}
	}
	return false
}

// InvalidateAll drops every line (used on look-ahead reboot: the paper
// discards LT's dirty private state; clean lines may stay warm, but we
// conservatively clear dirty ones only).
func (c *Cache) DropDirty() {
	for i := range c.lines {
		if c.lines[i].dirty {
			c.lines[i].valid = false
			c.Stats.Discarded++
		}
	}
}

// MPKI computes demand misses per kilo-instruction.
func (s *Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instructions) * 1000
}

func levelOf(name string) int {
	switch name {
	case "L1I", "L1D":
		return 1
	case "L2":
		return 2
	case "L3":
		return 3
	default:
		return 4
	}
}
