package cache

import (
	"testing"
	"testing/quick"
)

// flatMem is a fixed-latency backing store for tests.
type flatMem struct {
	lat      uint64
	accesses uint64
	wb       uint64
}

func (f *flatMem) Access(addr uint64, write, prefetch bool, now uint64) Result {
	f.accesses++
	return Result{Done: now + f.lat, Level: 4}
}
func (f *flatMem) Writeback() { f.wb++ }

func testCache(mshrs int) (*Cache, *flatMem) {
	m := &flatMem{lat: 100}
	c := New(Config{Name: "L1D", SizeBytes: 1024, Ways: 2, BlockBits: 6, Latency: 3, MSHRs: mshrs}, m)
	return c, m
}

func TestColdMissThenHit(t *testing.T) {
	c, m := testCache(8)
	r := c.Access(0x1000, false, false, 0)
	if r.Level != 4 {
		t.Fatalf("cold access level = %d, want 4", r.Level)
	}
	if r.Done < 100 {
		t.Fatalf("miss done = %d, want >= 100", r.Done)
	}
	fill := r.Done
	r2 := c.Access(0x1000, false, false, fill+1)
	if r2.Level != 1 {
		t.Fatalf("hit level = %d, want 1", r2.Level)
	}
	if r2.Done != fill+1+3 {
		t.Fatalf("hit done = %d, want %d", r2.Done, fill+1+3)
	}
	if m.accesses != 1 {
		t.Fatalf("backing accesses = %d, want 1", m.accesses)
	}
	if c.Stats.Misses != 1 || c.Stats.Accesses != 2 {
		t.Fatalf("stats misses=%d accesses=%d", c.Stats.Misses, c.Stats.Accesses)
	}
}

func TestInFlightMerge(t *testing.T) {
	c, m := testCache(8)
	r1 := c.Access(0x2000, false, false, 0)
	// Second access to the same block before fill completes: merges.
	r2 := c.Access(0x2000, false, false, 5)
	if m.accesses != 1 {
		t.Fatalf("merge issued a second fill: %d", m.accesses)
	}
	if r2.Done < r1.Done {
		t.Fatalf("merged access completed before the fill: %d < %d", r2.Done, r1.Done)
	}
	if c.Stats.MergedMiss != 1 {
		t.Fatalf("merged miss not counted: %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := testCache(8)
	// 2 ways, 8 sets of 64B blocks. Fill both ways of set 0, then a third
	// block in set 0 must evict the least recently used (the first).
	setStride := uint64(64 * 8) // sets * blocksize
	a, b2, c3 := uint64(0), setStride, 2*setStride
	c.Access(a, false, false, 0)
	c.Access(b2, false, false, 1000)
	c.Access(a, false, false, 2000) // touch a: b2 becomes LRU
	c.Access(c3, false, false, 3000)
	if !c.Contains(a, 5000) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(b2, 5000) {
		t.Fatal("LRU line survived")
	}
	if !c.Contains(c3, 5000) {
		t.Fatal("newly installed line missing")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c, m := testCache(8)
	setStride := uint64(64 * 8)
	c.Access(0, true, false, 0) // dirty
	c.Access(setStride, false, false, 1000)
	c.Access(2*setStride, false, false, 2000) // evicts dirty line 0
	if m.wb != 1 {
		t.Fatalf("writebacks = %d, want 1", m.wb)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("stats writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestDiscardDirtyMode(t *testing.T) {
	c, m := testCache(8)
	c.DiscardDirty = true
	setStride := uint64(64 * 8)
	c.Access(0, true, false, 0)
	c.Access(setStride, false, false, 1000)
	c.Access(2*setStride, false, false, 2000)
	if m.wb != 0 {
		t.Fatalf("look-ahead mode wrote back %d lines", m.wb)
	}
	if c.Stats.Discarded != 1 {
		t.Fatalf("discarded = %d, want 1", c.Stats.Discarded)
	}
}

func TestMSHRLimitDelays(t *testing.T) {
	c, _ := testCache(1)
	r1 := c.Access(0x0000, false, false, 0)
	r2 := c.Access(0x4000, false, false, 1) // different block, MSHR busy
	if r2.Done < r1.Done {
		t.Fatalf("second miss (%d) finished before MSHR freed (%d)", r2.Done, r1.Done)
	}
	if c.Stats.MSHRStalls != 1 {
		t.Fatalf("MSHR stalls = %d, want 1", c.Stats.MSHRStalls)
	}
}

func TestPrefetchLifecycle(t *testing.T) {
	c, _ := testCache(8)
	c.Access(0x8000, false, true, 0) // prefetch fill
	if c.Stats.PrefIssued != 1 {
		t.Fatal("prefetch not counted")
	}
	c.Access(0x8000, false, false, 500) // demand hit on prefetched line
	if c.Stats.PrefUseful != 1 {
		t.Fatalf("useful prefetch not counted: %+v", c.Stats)
	}
	// A wasted prefetch: filled then evicted unused.
	setStride := uint64(64 * 8)
	c.Access(0x10000, false, true, 1000)
	c.Access(0x10000+setStride, false, false, 2000)
	c.Access(0x10000+2*setStride, false, false, 3000)
	if c.Stats.PrefWasted == 0 {
		t.Fatal("wasted prefetch not counted")
	}
}

func TestObserverSeesDemandOnly(t *testing.T) {
	c, _ := testCache(8)
	var observed int
	var hits int
	c.Observer = func(addr uint64, hit bool, now uint64) {
		observed++
		if hit {
			hits++
		}
	}
	c.Access(0x100, false, false, 0)
	c.Access(0x100, false, false, 1000)
	c.Access(0x9999, false, true, 2000) // prefetch: unobserved
	if observed != 2 {
		t.Fatalf("observer saw %d events, want 2", observed)
	}
	if hits != 1 {
		t.Fatalf("observer hits = %d, want 1", hits)
	}
}

func TestDropDirty(t *testing.T) {
	c, _ := testCache(8)
	c.Access(0x40, true, false, 0)
	c.Access(0x80, false, false, 10)
	c.DropDirty()
	if c.Contains(0x40, 5000) {
		t.Fatal("dirty line survived DropDirty")
	}
	if !c.Contains(0x80, 5000) {
		t.Fatal("clean line dropped")
	}
}

func TestMPKI(t *testing.T) {
	s := Stats{Misses: 5}
	if got := s.MPKI(1000); got != 5 {
		t.Fatalf("MPKI = %f, want 5", got)
	}
	if s.MPKI(0) != 0 {
		t.Fatal("MPKI with zero instructions should be 0")
	}
}

// Property: completion time never precedes request time + level latency,
// and monotonically increasing request times keep completions sane.
func TestCompletionNeverEarly(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, _ := testCache(4)
		now := uint64(0)
		for _, a := range addrs {
			r := c.Access(uint64(a)<<4, a%3 == 0, false, now)
			if r.Done < now+3 {
				return false
			}
			now += 2
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a cache never holds two valid lines with the same block tag in
// one set.
func TestNoDuplicateLines(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, _ := testCache(4)
		now := uint64(0)
		for _, a := range addrs {
			c.Access(uint64(a)<<6, false, a%2 == 0, now)
			now += 5
		}
		for s := 0; s < c.sets; s++ {
			seen := map[uint64]bool{}
			for w := 0; w < c.cfg.Ways; w++ {
				ln := c.lines[s*c.cfg.Ways+w]
				if ln.valid {
					if seen[ln.tag] {
						return false
					}
					seen[ln.tag] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
