// Benchmarks regenerating every table and figure of the paper at reduced
// budgets (CI-friendly), plus ablation benches for the design choices
// DESIGN.md calls out and microbenchmarks of the simulator itself.
//
// The full-budget regeneration is `go run ./cmd/r3dla -exp all`.
package r3dla_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"

	"r3dla"
	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/exp"
	"r3dla/internal/fleet"
	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

const benchBudget = 6_000 // per-simulation budget inside table/figure benches

func runExp(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ctx := exp.NewContext(benchBudget)
		e, ok := exp.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		if out := e.Run(ctx).String(); len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// benchAll runs the full registry (the `-exp all` path) through the
// engine with the given worker-pool width; the Serial/Parallel pair
// measures the engine's wall-time win.
func benchAll(b *testing.B, jobs int) {
	b.Helper()
	if jobs != 1 && runtime.GOMAXPROCS(0) == 1 {
		b.Log("GOMAXPROCS=1: the parallel engine degenerates to serial on this machine")
	}
	ids := exp.IDs()
	for i := 0; i < b.N; i++ {
		ctx := exp.NewContext(benchBudget)
		ctx.Jobs = jobs
		results, err := exp.Run(context.Background(), ctx, ids, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.ID, r.Err)
			}
		}
	}
}

// BenchmarkExpAllSerial is `r3dla -exp all -jobs 1` at a CI budget.
func BenchmarkExpAllSerial(b *testing.B) { benchAll(b, 1) }

// BenchmarkExpAllParallel is `r3dla -exp all` on the full worker pool;
// compare against BenchmarkExpAllSerial for the engine speedup.
func BenchmarkExpAllParallel(b *testing.B) { benchAll(b, 0) }

// One bench per paper artifact.
func BenchmarkTable1(b *testing.B) { runExp(b, "tab1") }
func BenchmarkFig1(b *testing.B)   { runExp(b, "fig1") }
func BenchmarkFig5(b *testing.B)   { runExp(b, "fig5") }
func BenchmarkFig9a(b *testing.B)  { runExp(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { runExp(b, "fig9b") }
func BenchmarkTable2(b *testing.B) { runExp(b, "tab2") }
func BenchmarkFig10(b *testing.B)  { runExp(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExp(b, "fig11") }
func BenchmarkTable3(b *testing.B) { runExp(b, "tab3") }
func BenchmarkFig12(b *testing.B)  { runExp(b, "fig12") }
func BenchmarkFig13a(b *testing.B) { runExp(b, "fig13a") }
func BenchmarkFig13b(b *testing.B) { runExp(b, "fig13b") }
func BenchmarkFig13c(b *testing.B) { runExp(b, "fig13c") }
func BenchmarkFig14(b *testing.B)  { runExp(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExp(b, "fig15") }

// ---------------------------------------------------------------------
// Ablations: design-space sweeps around the paper's chosen points.

// prepMcf memoizes one prepared workload for the ablation benches.
var ablation *struct {
	prog  *r3dla.Program
	setup func(*r3dla.Memory)
	prof  *r3dla.TrainingProfile
	set   *r3dla.SkeletonSet
}

func prepAblation(b *testing.B) {
	b.Helper()
	if ablation != nil {
		return
	}
	w := r3dla.Workload("mcf")
	tp, ts := w.Build(1)
	prof := r3dla.Profile(tp, ts, 30_000)
	ep, es := w.Build(2)
	ablation = &struct {
		prog  *r3dla.Program
		setup func(*r3dla.Memory)
		prof  *r3dla.TrainingProfile
		set   *r3dla.SkeletonSet
	}{ep, es, prof, r3dla.Skeletons(ep, prof)}
}

func runDLA(b *testing.B, mut func(*core.Options)) float64 {
	b.Helper()
	prepAblation(b)
	opt := core.DLAOptions()
	if mut != nil {
		mut(&opt)
	}
	sys := r3dla.NewSystem(ablation.prog, ablation.setup, ablation.set, ablation.prof, opt)
	r := sys.Run(30_000)
	return r.IPC()
}

// BenchmarkAblationBOQSize sweeps the look-ahead depth bound.
func BenchmarkAblationBOQSize(b *testing.B) {
	for _, size := range []int{32, 128, 512, 2048} {
		size := size
		b.Run(itobench(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := runDLA(b, func(o *core.Options) { o.BOQSize = size })
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkAblationRebootCost sweeps the reboot penalty (paper: 64 -> 200
// costs < 2%).
func BenchmarkAblationRebootCost(b *testing.B) {
	for _, cost := range []uint64{16, 64, 200, 1000} {
		cost := cost
		b.Run(itobench(int(cost)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := runDLA(b, func(o *core.Options) { o.RebootCost = cost })
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkAblationFQSize sweeps the footnote queue capacity.
func BenchmarkAblationFQSize(b *testing.B) {
	for _, size := range []int{16, 64, 128, 512} {
		size := size
		b.Run(itobench(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := runDLA(b, func(o *core.Options) { o.FQSize = size })
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkAblationSkeletonVersion runs each fixed skeleton version.
func BenchmarkAblationSkeletonVersion(b *testing.B) {
	for v := 0; v < 6; v++ {
		v := v
		b.Run(itobench(v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := runDLA(b, func(o *core.Options) { o.FixedVersion, o.HasFixedVersion = v, true })
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

func itobench(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------
// Fleet: distributed sweep throughput. CI runs these and publishes the
// results as the BENCH_fleet.json artifact — the start of the perf
// trajectory for the distribution layer.

// fleetSweepSpec is the fixed grid the fleet benches dispatch: one
// workload x two presets x two BOQ depths = 4 cells.
func fleetSweepSpec() sweep.Spec {
	return sweep.Spec{
		Workloads: []string{"mcf"},
		Budget:    benchBudget,
		Axes: sweep.Axes{
			Preset:  []string{"dla", "r3"},
			BOQSize: []int{64, 512},
		},
	}
}

// benchFleetSweep measures one whole sweep per op, with a fresh Lab (and
// fresh backend servers) each iteration so the singleflight caches don't
// turn later iterations into cache reads. backends=0 is the in-process
// reference; otherwise the sweep routes through a fleet pool over that
// many r3dlad-shaped httptest servers.
func benchFleetSweep(b *testing.B, nBackends int) {
	b.Helper()
	newRunner := func() (sweep.Runner, func()) {
		if nBackends == 0 {
			l, err := lab.New(lab.WithBudget(benchBudget))
			if err != nil {
				b.Fatal(err)
			}
			return l, func() {}
		}
		var members []fleet.Backend
		var servers []*httptest.Server
		for j := 0; j < nBackends; j++ {
			l, err := lab.New(lab.WithBudget(benchBudget))
			if err != nil {
				b.Fatal(err)
			}
			h := lab.NewServer(l)
			h.Handle("POST /v1/sweeps", sweep.NewHandler(l, h))
			srv := httptest.NewServer(h)
			servers = append(servers, srv)
			r, err := fleet.NewRemote(srv.URL)
			if err != nil {
				b.Fatal(err)
			}
			members = append(members, r)
		}
		pool, err := fleet.NewPool(members)
		if err != nil {
			b.Fatal(err)
		}
		return pool, func() {
			pool.Close()
			for _, srv := range servers {
				srv.Close()
			}
		}
	}
	spec := fleetSweepSpec()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runner, cleanup := newRunner()
		b.StartTimer()
		if _, err := sweep.Run(context.Background(), runner, spec, sweep.Options{}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cleanup()
		b.StartTimer()
	}
}

// BenchmarkFleetSweepLocal is the single-process reference.
func BenchmarkFleetSweepLocal(b *testing.B) { benchFleetSweep(b, 0) }

// BenchmarkFleetSweep1Backend adds the wire: same grid through one
// r3dlad; the delta over Local is pure protocol overhead.
func BenchmarkFleetSweep1Backend(b *testing.B) { benchFleetSweep(b, 1) }

// BenchmarkFleetSweep3Backends shards the grid across three r3dlad
// instances; compare against 1Backend for the scale-out win (in-process
// servers share this machine's cores, so CI numbers understate a real
// cluster).
func BenchmarkFleetSweep3Backends(b *testing.B) { benchFleetSweep(b, 3) }

// ---------------------------------------------------------------------
// Microbenchmarks of the simulator substrate.

// BenchmarkEmulator measures raw functional-emulation throughput.
func BenchmarkEmulator(b *testing.B) {
	w := r3dla.Workload("bzip")
	prog, setup := w.Build(1)
	mem := r3dla.NewMemory()
	setup(mem)
	m := emu.NewMachine(prog, mem)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkTimingModel measures coupled two-core simulation throughput
// (committed MT instructions per benchmarked op).
func BenchmarkTimingModel(b *testing.B) {
	prepAblation(b)
	for i := 0; i < b.N; i++ {
		sys := r3dla.NewSystem(ablation.prog, ablation.setup, ablation.set, ablation.prof, core.DLAOptions())
		sys.Run(10_000)
	}
}

// BenchmarkSkeletonGeneration measures the binary-analysis pass.
func BenchmarkSkeletonGeneration(b *testing.B) {
	prepAblation(b)
	for i := 0; i < b.N; i++ {
		r3dla.Skeletons(ablation.prog, ablation.prof)
	}
}
