package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"r3dla/internal/chaos"
)

// runChaos is the `r3dla chaos` subcommand: a seeded soak test of the
// whole stack. It boots an in-process mini-fleet of r3dlad servers, arms
// a deterministic fault schedule (disk faults, torn and corrupt writes,
// connection faults, stream cuts, latency spikes, shed bursts) plus
// scheduled hard kills, drives concurrent sweep + explore + run traffic
// through a fleet pool, and verifies the robustness invariants:
// byte-identical output versus a fault-free baseline, journal damage
// quarantined on resume, monotone server metrics, and no goroutine
// leaks. The report on stdout is byte-identical for equal seeds, so a
// failing soak is replayed exactly by rerunning with its seed.
func runChaos(args []string) {
	fatalPrefix = "r3dla chaos"
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	var (
		seed    = fs.Int64("seed", 1, "fault-schedule seed; equal seeds replay identical soaks")
		servers = fs.Int("servers", 2, "mini-fleet size (in-process r3dlad instances)")
		budget  = fs.Uint64("budget", 2000, "committed instructions per simulation")
		kills   = fs.Int("kills", 1, "scheduled backend kill/restart cycles")
		dir     = fs.String("dir", "", "scratch directory (default: fresh temp dir, removed on pass)")
		quiet   = fs.Bool("q", false, "suppress diagnostics on stderr")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var diag io.Writer = os.Stderr
	if *quiet {
		diag = io.Discard
	}
	rep, err := chaos.Soak(ctx, chaos.Config{
		Seed:    *seed,
		Servers: *servers,
		Budget:  *budget,
		Kills:   *kills,
		Dir:     *dir,
		Diag:    diag,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		fatalf("%v", err)
	}
	if !rep.Pass() {
		fmt.Fprintln(os.Stderr, "r3dla chaos: invariants FAILED — rerun with the same -seed to replay")
		os.Exit(1)
	}
}
