package main

import (
	"reflect"
	"testing"

	"r3dla/internal/dse"
	"r3dla/internal/sweep"
)

// TestMergeSearchFlags pins the flag/spec precedence contract, in
// particular the zero-value corner: a flag explicitly set to zero must
// override a spec file's non-zero value (zero doubles as every knob's
// "use the package default" sentinel, so presence — not value — decides).
func TestMergeSearchFlags(t *testing.T) {
	defaults := searchFlags{
		budget:   150_000,
		strategy: dse.StrategyPareto,
		seed:     1,
	}
	specFile := func() dse.Spec {
		return dse.Spec{
			Space:     sweep.Spec{Budget: 40_000},
			Strategy:  "halving",
			Sampler:   "lhs",
			Seed:      7,
			Samples:   24,
			Rounds:    3,
			Eta:       4,
			MinBudget: 5_000,
		}
	}

	tests := []struct {
		name  string
		spec  dse.Spec
		flags searchFlags
		set   map[string]bool
		want  dse.Spec
	}{
		{
			name:  "no flags set, full spec file stands untouched",
			spec:  specFile(),
			flags: defaults,
			set:   map[string]bool{},
			want:  specFile(),
		},
		{
			name:  "no flags set, empty spec filled from flag defaults",
			spec:  dse.Spec{},
			flags: defaults,
			set:   map[string]bool{},
			want: dse.Spec{
				Space:    sweep.Spec{Budget: 150_000},
				Strategy: dse.StrategyPareto,
				Seed:     1,
			},
		},
		{
			name: "explicit non-zero flags beat the spec file",
			spec: specFile(),
			flags: searchFlags{
				budget: 90_000, strategy: "random", sampler: "random",
				seed: 2, samples: 8, rounds: 1, eta: 2, minBudget: 1_000,
			},
			set: map[string]bool{
				"budget": true, "strategy": true, "sampler": true, "seed": true,
				"samples": true, "rounds": true, "eta": true, "min-budget": true,
			},
			want: dse.Spec{
				Space:     sweep.Spec{Budget: 90_000},
				Strategy:  "random",
				Sampler:   "random",
				Seed:      2,
				Samples:   8,
				Rounds:    1,
				Eta:       2,
				MinBudget: 1_000,
			},
		},
		{
			name:  "explicit zero overrides a non-zero spec value",
			spec:  specFile(),
			flags: searchFlags{budget: defaults.budget, strategy: defaults.strategy, seed: defaults.seed},
			set:   map[string]bool{"samples": true, "rounds": true, "eta": true, "min-budget": true},
			want: dse.Spec{
				Space:     sweep.Spec{Budget: 40_000},
				Strategy:  "halving",
				Sampler:   "lhs",
				Seed:      7,
				Samples:   0, // forced back to the package default
				Rounds:    0,
				Eta:       0,
				MinBudget: 0,
			},
		},
		{
			name:  "unset flags never clobber spec values with flag defaults",
			spec:  specFile(),
			flags: searchFlags{budget: defaults.budget, strategy: defaults.strategy, seed: defaults.seed},
			set:   map[string]bool{},
			want:  specFile(),
		},
		{
			name: "-fidelity ladder sets the exploration mode",
			spec: specFile(),
			flags: searchFlags{
				budget: defaults.budget, strategy: defaults.strategy,
				seed: defaults.seed, fidelity: dse.FidelityLadder,
			},
			set: map[string]bool{"fidelity": true},
			want: func() dse.Spec {
				s := specFile()
				s.Fidelity = dse.FidelityLadder
				return s
			}(),
		},
		{
			name: "-fidelity analytic runs the whole space on the estimator",
			spec: specFile(),
			flags: searchFlags{
				budget: defaults.budget, strategy: defaults.strategy,
				seed: defaults.seed, fidelity: sweep.TierAnalytic,
			},
			set: map[string]bool{"fidelity": true},
			want: func() dse.Spec {
				s := specFile()
				s.Space.Fidelity = sweep.TierAnalytic
				return s
			}(),
		},
		{
			name: "-fidelity cycle overrides a spec file's ladder",
			spec: func() dse.Spec {
				s := specFile()
				s.Fidelity = dse.FidelityLadder
				s.Space.Fidelity = sweep.TierMC
				return s
			}(),
			flags: searchFlags{
				budget: defaults.budget, strategy: defaults.strategy,
				seed: defaults.seed, fidelity: "cycle",
			},
			set:  map[string]bool{"fidelity": true},
			want: specFile(),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.spec
			mergeSearchFlags(&got, tt.flags, tt.set)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("merged spec mismatch:\n got %+v\nwant %+v", got, tt.want)
			}
		})
	}
}
